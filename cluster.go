// Package nectar is a faithful reproduction, as a discrete-event-simulated
// Go library, of the system described in "Protocol Implementation on the
// Nectar Communication Processor" (Cooper, Steenkiste, Sansom, Zill;
// SIGCOMM 1990): a high-speed LAN whose host interface is a programmable
// communication processor (the CAB) running a flexible runtime system —
// preemptive priority threads, zero-copy mailboxes, lightweight syncs, and
// a shared-memory host interface — on which TCP/IP and Nectar-specific
// transport protocols execute.
//
// The package provides the cluster builder: it assembles HUB crossbars,
// fiber links, CABs, hosts and VME buses into a topology, boots the
// runtime system and protocol stacks on every node, and computes source
// routes. Everything runs in virtual time on a deterministic simulation
// kernel, with every hardware constant calibrated from the paper (see
// DESIGN.md); protocol code, headers, checksums and buffers are real.
//
// A minimal session:
//
//	cl := nectar.NewCluster(nil)          // default 1990 cost model
//	a := cl.AddNode()                     // host+CAB pair on the HUB
//	b := cl.AddNode()
//	... create mailboxes, run host processes / CAB threads ...
//	cl.Run()                              // drive the simulation
package nectar

import (
	"fmt"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/host"
	"nectar/internal/hw/hub"
	"nectar/internal/model"
	"nectar/internal/nectarine"
	"nectar/internal/obs"
	"nectar/internal/prof"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/ip"
	"nectar/internal/proto/nectar"
	"nectar/internal/proto/tcp"
	"nectar/internal/proto/udp"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/sim"
	"nectar/internal/sockets"
)

// Node is one host/CAB pair with its booted runtime system and protocol
// stacks.
type Node struct {
	ID   wire.NodeID
	CAB  *cab.CAB
	Host *host.Host
	IF   *hostif.IF

	Mailboxes *mailbox.Runtime
	Syncs     *syncs.Pool
	Datalink  *datalink.Layer

	Transports *nectar.Transports // datagram, RMP, RRP
	IP         *ip.Layer
	UDP        *udp.Layer
	TCP        *tcp.Layer

	API     *nectarine.API // the application interface (paper §3.5)
	Sockets *sockets.API   // the Berkeley-socket emulation (paper §5.2)

	hubIdx int
	port   int
}

// Config adjusts cluster construction.
type Config struct {
	Cost *model.CostModel // nil: model.Default1990()
	// RxThreadMode selects the §3.1 ablation: protocol input processing
	// in a high-priority thread instead of at interrupt time.
	RxThreadMode bool
	// HubPorts is the crossbar size (default hub.DefaultPorts).
	HubPorts int

	// Shards > 1 opts in to sharded execution: nodes are partitioned
	// into per-shard simulation kernels that run concurrently on OS
	// threads under a conservative time-window scheduler (see
	// internal/sim's Coupling). The HUB setup latency on cross-shard
	// fiber paths is the scheduler's lookahead, so results are
	// byte-identical to a sequential run. Sharded clusters are limited
	// to a single HUB and cannot open circuits (zero lookahead).
	// 0 or 1 means sequential execution on one kernel (the default).
	Shards int
	// ShardOf maps a node's index (in AddNode order) to its shard in
	// [0, Shards). nil: round-robin (index % Shards). Placing the two
	// ends of a busy flow on different shards is what buys parallelism;
	// placing chatty neighbors together minimizes window overhead.
	ShardOf func(nodeIdx int) int
	// Flows, when non-nil, declares the COMPLETE communication graph of
	// the workload as node-index pairs: node i may exchange frames with
	// node j only if {i,j} (in either order) appears here. The
	// declaration is a contract — a frame to an undeclared destination
	// panics deterministically — and it is what makes sharded execution
	// win: a gateway whose declared peers all live on its own shard can
	// never emit cross-shard, so it stops constraining the safe bound
	// entirely, and a flow-affinity partition (ShardByFlows over the
	// same list) runs whole scheduling horizons per window instead of
	// one transmit-latency margin. nil: any node may talk to any node
	// (the conservative default).
	Flows [][2]int
}

// Cluster is a simulated Nectar installation.
type Cluster struct {
	// K is the simulation kernel. Under sharded execution it is shard
	// 0's kernel, which also hosts cluster-wide metrics (HUB gauges);
	// use Run/RunFor/Now on the Cluster — not K directly — so all
	// shards advance.
	K    *sim.Kernel
	Cost *model.CostModel
	Hubs []*hub.Hub

	Nodes []*Node

	cfg      Config
	hubLinks []hubLink
	nextPort []int // per hub

	// Sharded execution state (nil/empty when sequential).
	coupling  *sim.Coupling
	domains   []*sim.Domain // one per shard
	nodeShard []int         // node index -> shard
	uplinks   []*fiber.Link // node index -> its CAB->HUB link (the shard gateway)

	// Declared traffic matrix (Config.Flows): node index -> set of peer
	// node indices it may exchange frames with. nil when undeclared.
	flowPeers []map[int]bool
}

type hubLink struct{ fromHub, fromPort, toHub, toPort int }

// NewCluster creates a cluster with one HUB and the given configuration
// (pass nil for defaults).
func NewCluster(cfg *Config) *Cluster {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	if c.Cost == nil {
		c.Cost = model.Default1990()
	}
	if c.HubPorts == 0 {
		c.HubPorts = hub.DefaultPorts
	}
	cl := &Cluster{Cost: c.Cost, cfg: c}
	if c.Flows != nil {
		n := 0
		for _, f := range c.Flows {
			if f[0] < 0 || f[1] < 0 {
				panic(fmt.Sprintf("nectar: Flows entry %v has a negative node index", f))
			}
			if f[0] >= n {
				n = f[0] + 1
			}
			if f[1] >= n {
				n = f[1] + 1
			}
		}
		cl.flowPeers = make([]map[int]bool, n)
		for _, f := range c.Flows {
			for _, i := range f {
				if cl.flowPeers[i] == nil {
					cl.flowPeers[i] = map[int]bool{}
				}
			}
			cl.flowPeers[f[0]][f[1]] = true
			cl.flowPeers[f[1]][f[0]] = true
		}
	}
	if c.Shards > 1 {
		cl.coupling = sim.NewCoupling()
		for i := 0; i < c.Shards; i++ {
			cl.domains = append(cl.domains, cl.coupling.AddDomain(sim.NewKernel()))
		}
		cl.K = cl.domains[0].Kernel()
	} else {
		cl.K = sim.NewKernel()
	}
	cl.AddHub()
	if cl.coupling != nil {
		cl.Hubs[0].SetSharded()
	}
	return cl
}

// AddHub adds a crossbar to the installation and returns its index.
func (cl *Cluster) AddHub() int {
	if cl.coupling != nil && len(cl.Hubs) > 0 {
		panic("nectar: sharded clusters support a single HUB")
	}
	h := hub.New(cl.K, cl.Cost, fmt.Sprintf("hub%d", len(cl.Hubs)), cl.cfg.HubPorts)
	cl.Hubs = append(cl.Hubs, h)
	cl.nextPort = append(cl.nextPort, 0)
	return len(cl.Hubs) - 1
}

// ConnectHubs joins two HUBs with a fiber pair, consuming one port on
// each (large Nectar systems are built this way, paper §2.1).
func (cl *Cluster) ConnectHubs(a, b int) {
	if cl.coupling != nil {
		panic("nectar: sharded clusters support a single HUB")
	}
	pa := cl.allocPort(a)
	pb := cl.allocPort(b)
	cl.Hubs[a].ConnectOut(pa, fiber.NewLink(cl.K, cl.Cost,
		fmt.Sprintf("hub%d.%d->hub%d", a, pa, b), cl.Hubs[b].InPort(pb)))
	cl.Hubs[b].ConnectOut(pb, fiber.NewLink(cl.K, cl.Cost,
		fmt.Sprintf("hub%d.%d->hub%d", b, pb, a), cl.Hubs[a].InPort(pa)))
	cl.hubLinks = append(cl.hubLinks, hubLink{a, pa, b, pb}, hubLink{b, pb, a, pa})
	cl.recomputeRoutes()
}

func (cl *Cluster) allocPort(hubIdx int) int {
	p := cl.nextPort[hubIdx]
	if p >= cl.Hubs[hubIdx].Ports() {
		panic(fmt.Sprintf("nectar: hub %d out of ports", hubIdx))
	}
	cl.nextPort[hubIdx]++
	return p
}

// AddNode attaches a new host/CAB pair to HUB 0.
func (cl *Cluster) AddNode() *Node { return cl.AddNodeAt(0) }

// AddNodeAt attaches a new host/CAB pair to the given HUB and boots its
// runtime system and protocol stacks.
//
// Under sharded execution the whole node — CAB, host, interface, runtime,
// protocol stacks, and both of its fiber endpoints — is built on its
// shard's kernel: the CAB->HUB uplink and the HUB input port it feeds run
// on the node's shard, and the HUB output link back to the CAB runs there
// too, so the only events that ever cross shards are HUB forwards (which
// carry the setup latency, the coupling's lookahead).
func (cl *Cluster) AddNodeAt(hubIdx int) *Node {
	id := wire.NodeID(len(cl.Nodes) + 1)
	port := cl.allocPort(hubIdx)

	k := cl.K
	shard := 0
	var dom *sim.Domain
	if cl.coupling != nil {
		shard = cl.shardOf(len(cl.Nodes))
		dom = cl.domains[shard]
		k = dom.Kernel()
	}

	c := cab.New(k, cl.Cost, id)
	if cl.cfg.RxThreadMode {
		c.SetRxInterruptMode(false)
	}
	h := host.New(k, cl.Cost, fmt.Sprintf("host%d", id), c)
	f := hostif.New(h, c)

	// Fibers: CAB -> hub input port, hub output port -> CAB.
	hb := cl.Hubs[hubIdx]
	var in fiber.Endpoint
	if dom != nil {
		in = hb.InPortOn(port, k, dom)
	} else {
		in = hb.InPort(port)
	}
	up := fiber.NewLink(k, cl.Cost, fmt.Sprintf("cab%d->hub%d", id, hubIdx), in)
	c.ConnectFiber(up)
	hb.ConnectOut(port, fiber.NewLink(k, cl.Cost, fmt.Sprintf("hub%d.%d->cab%d", hubIdx, port, id), c))
	if dom != nil {
		hb.SetOutDomain(port, dom)
		// The uplink is the shard's gateway: every cross-shard forward
		// is of a packet it delivered to the HUB input port, so its
		// earliest-output bound (delivery + HubSetup) covers them all.
		// The cross closure resolves the next route hop to the shard it
		// forwards into, giving the coupling one safe bound per
		// destination shard (per-channel lookahead).
		nodeIdx := len(cl.Nodes)
		up.SetGateway(sim.Duration(cl.Cost.HubSetup), func(out byte) (int, bool) {
			s, ok := cl.shardOfHubPort(int(out))
			if !ok || s == cl.nodeShard[nodeIdx] {
				return 0, false
			}
			return s, true
		})
		// Transmit-preparation floor: every frame this CAB can put on the
		// uplink goes through datalink.Send, which consumes DatalinkProcess
		// + DMASetup of CAB CPU time between the event that triggers it
		// and the fiber transmission (and brackets that compute with
		// BeginTxPrep/EndTxPrep). So with no preparation in flight, no
		// frame can start before the domain's activity floor plus that
		// margin; with one in flight, none can start before the earliest
		// outstanding ready time. This margin — not the 700 ns HUB setup —
		// is what grows safe windows enough for sharding to win.
		margin := sim.Time(cl.Cost.DatalinkProcess + cl.Cost.DMASetup)
		up.SetTxFloor(func(actFloor sim.Time) sim.Time {
			e := actFloor + margin
			if at, ok := c.TxReadyAt(); ok && at < e {
				e = at
			}
			return e
		})
		if cl.flowPeers != nil {
			// Declared channel topology: this gateway only constrains the
			// safe bound of domains holding one of the node's declared
			// peers. With a flow-affinity partition that is no domain at
			// all, and windows stretch to the scheduling horizon.
			up.SetReach(func(dstDom int) bool {
				if nodeIdx >= len(cl.flowPeers) {
					return false
				}
				for peer := range cl.flowPeers[nodeIdx] {
					if peer < len(cl.nodeShard) && cl.nodeShard[peer] == dstDom {
						return true
					}
				}
				return false
			})
		}
		dom.AddGateway(up)
	}
	cl.nodeShard = append(cl.nodeShard, shard)
	cl.uplinks = append(cl.uplinks, up)
	if cl.flowPeers != nil {
		// The declaration is enforced on every frame, sequential or
		// sharded, so a violating workload fails identically in both
		// modes instead of silently desynchronizing them.
		nodeIdx := len(cl.Nodes)
		up.SetSendGuard(func(out byte) {
			if dst := cl.nodeAtHubPort(int(out)); dst >= 0 && !cl.trafficAllowed(nodeIdx, dst) {
				panic(fmt.Sprintf("nectar: node %d sent a frame toward node %d, which Config.Flows does not declare", nodeIdx, dst))
			}
		})
	}

	// Runtime system.
	mrt := mailbox.NewRuntime(c)
	mrt.AttachHost(f)
	pool := syncs.NewPool(f)
	dl := datalink.NewLayer(c, mrt)

	n := &Node{
		ID: id, CAB: c, Host: h, IF: f,
		Mailboxes: mrt, Syncs: pool, Datalink: dl,
		hubIdx: hubIdx, port: port,
	}

	// Protocol stacks.
	n.Transports = nectar.Attach(dl, mrt, pool)
	n.IP = ip.NewLayer(dl, mrt)
	n.UDP = udp.NewLayer(n.IP, mrt)
	n.TCP = tcp.NewLayer(n.IP, mrt)
	n.API = nectarine.New(n.Mailboxes, n.Syncs, n.Transports, n.Host)
	n.Sockets = sockets.New(n.TCP, n.Mailboxes, n.IF, n.Syncs)

	cl.Nodes = append(cl.Nodes, n)
	cl.recomputeRoutes()
	return n
}

// recomputeRoutes rebuilds every CAB's source-route table: BFS over the
// HUB graph, then the destination CAB's attachment port.
func (cl *Cluster) recomputeRoutes() {
	for _, src := range cl.Nodes {
		for _, dst := range cl.Nodes {
			// src == dst is loopback: the crossbar routes the frame
			// straight back down the sender's own port, so node-local
			// transport traffic needs no special casing in software.
			if route, ok := cl.route(src.hubIdx, dst.hubIdx, dst.port); ok {
				src.CAB.SetRoute(dst.ID, route)
			}
		}
	}
}

// route returns the port bytes from HUB `from` to node attached at
// (hub `to`, port finalPort).
func (cl *Cluster) route(from, to, finalPort int) ([]byte, bool) {
	if from == to {
		return []byte{byte(finalPort)}, true
	}
	// BFS over hub links.
	type hop struct {
		hub  int
		path []byte
	}
	visited := make([]bool, len(cl.Hubs))
	visited[from] = true
	queue := []hop{{from, nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range cl.hubLinks {
			if l.fromHub != cur.hub || visited[l.toHub] {
				continue
			}
			path := append(append([]byte(nil), cur.path...), byte(l.fromPort))
			if l.toHub == to {
				return append(path, byte(finalPort)), true
			}
			visited[l.toHub] = true
			queue = append(queue, hop{l.toHub, path})
		}
	}
	return nil, false
}

// shardOf maps a node index to its shard.
func (cl *Cluster) shardOf(nodeIdx int) int {
	if cl.cfg.ShardOf != nil {
		s := cl.cfg.ShardOf(nodeIdx)
		if s < 0 || s >= cl.cfg.Shards {
			panic(fmt.Sprintf("nectar: ShardOf(%d) = %d out of range [0,%d)", nodeIdx, s, cl.cfg.Shards))
		}
		return s
	}
	return nodeIdx % cl.cfg.Shards
}

// ShardByFlows builds a topology-aware Config.ShardOf assignment from the
// traffic pattern: flows lists pairs of node indices (in AddNode order)
// expected to exchange most of the traffic, and the builder places both
// endpoints of every flow — transitively, whole connected components of
// the flow graph — on the same shard, balancing components across shards
// by node count. Chatty neighbors thus never pay the cross-shard barrier,
// while independent flows spread out to run in parallel; blind round-robin
// does the exact opposite (it splits every adjacent pair).
//
// The assignment is deterministic: components are considered in ascending
// order of their smallest node index and go to the least-loaded shard,
// lowest index first on ties. Nodes in no flow are singleton components.
func ShardByFlows(nodes, shards int, flows [][2]int) func(nodeIdx int) int {
	if shards < 1 {
		shards = 1
	}
	// Union-find with union-by-minimum: a component's root is its
	// smallest member, making component order deterministic.
	parent := make([]int, nodes)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, f := range flows {
		a, b := find(f[0]), find(f[1])
		if a != b {
			if b < a {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	size := make([]int, nodes) // per root
	for i := 0; i < nodes; i++ {
		size[find(i)]++
	}
	assign := make([]int, nodes)
	load := make([]int, shards)
	shardOfRoot := make([]int, nodes)
	for i := range shardOfRoot {
		shardOfRoot[i] = -1
	}
	for i := 0; i < nodes; i++ {
		r := find(i)
		if shardOfRoot[r] < 0 {
			s := 0
			for j := 1; j < shards; j++ {
				if load[j] < load[s] {
					s = j
				}
			}
			shardOfRoot[r] = s
			load[s] += size[r]
		}
		assign[i] = shardOfRoot[r]
	}
	return func(nodeIdx int) int { return assign[nodeIdx] }
}

// shardOfHubPort reports the shard of the node attached at HUB port p
// (sharded clusters have a single HUB, so the port identifies the node).
func (cl *Cluster) shardOfHubPort(p int) (int, bool) {
	for i, n := range cl.Nodes {
		if n.port == p {
			return cl.nodeShard[i], true
		}
	}
	return 0, false
}

// nodeAtHubPort resolves a HUB output port to the node index attached
// there (-1 if the port is unoccupied or leads to another HUB).
func (cl *Cluster) nodeAtHubPort(p int) int {
	for i, n := range cl.Nodes {
		if n.port == p {
			return i
		}
	}
	return -1
}

// trafficAllowed reports whether the declared traffic matrix permits
// frames between nodes src and dst (always true when undeclared).
func (cl *Cluster) trafficAllowed(src, dst int) bool {
	if cl.flowPeers == nil || src == dst {
		return true
	}
	if src >= len(cl.flowPeers) || cl.flowPeers[src] == nil {
		return false
	}
	return cl.flowPeers[src][dst]
}

// Shards returns the number of execution shards (1 when sequential).
func (cl *Cluster) Shards() int {
	if cl.coupling == nil {
		return 1
	}
	return len(cl.domains)
}

// Windows reports how many conservative safe windows the coupling
// scheduler has executed (0 when sequential).
func (cl *Cluster) Windows() uint64 {
	if cl.coupling == nil {
		return 0
	}
	return cl.coupling.Windows()
}

// MultiWindows reports how many safe windows had more than one active
// shard (0 when sequential).
func (cl *Cluster) MultiWindows() uint64 {
	if cl.coupling == nil {
		return 0
	}
	return cl.coupling.MultiWindows()
}

// ShardOfNode returns the shard executing node i (0 when sequential).
func (cl *Cluster) ShardOfNode(i int) int {
	if cl.coupling == nil {
		return 0
	}
	return cl.nodeShard[i]
}

// Kernels returns every simulation kernel of the cluster: one per shard,
// or just K when sequential. Per-shard observability (trace sinks, wire
// captures) is installed by attaching to each kernel's observer.
func (cl *Cluster) Kernels() []*sim.Kernel {
	if cl.coupling == nil {
		return []*sim.Kernel{cl.K}
	}
	ks := make([]*sim.Kernel, len(cl.domains))
	for i, d := range cl.domains {
		ks[i] = d.Kernel()
	}
	return ks
}

// EnableProfiling attaches a wall-clock profile to the coupling scheduler
// and returns it (nil, and a no-op, when the cluster is sequential — the
// profiler measures where the seconds of a *sharded* run go). Call before
// Run/RunFor; profiling does not perturb virtual time, so results remain
// byte-identical to an unprofiled run.
func (cl *Cluster) EnableProfiling() *prof.Profile {
	if cl.coupling == nil {
		return nil
	}
	p := prof.New(len(cl.domains))
	cl.coupling.SetProfile(p)
	return p
}

// ProfileReport exports the attached wall-clock profile with the
// cluster-level sampling counters filled in: total kernel dispatches
// across shards, wire-path traffic, and cross-shard frames. It returns
// nil when profiling was never enabled, and must only be called between
// runs (the coupling's worker-join barrier orders the collector reads).
func (cl *Cluster) ProfileReport() *prof.Report {
	if cl.coupling == nil {
		return nil
	}
	r := cl.coupling.Profile().Report()
	if r == nil {
		return nil
	}
	r.VirtualNS = cl.Now().Nanos()
	for _, k := range cl.Kernels() {
		r.KernelDispatches += k.Dispatched()
	}
	snap := cl.MetricsSnapshot()
	r.WireFrames = snap.Sum(obs.LayerFiber, "frames")
	r.WireBytes = snap.Sum(obs.LayerFiber, "bytes")
	for _, up := range cl.uplinks {
		r.CrossShardFrames += up.CrossShardFrames()
	}
	return r
}

// MetricsSnapshot exports the cluster's metrics at the current virtual
// time. Under sharded execution the per-shard registries are merged (sums
// of counters and gauges, bucket-level histogram merges) into one snapshot
// that is byte-identical to the sequential run's.
func (cl *Cluster) MetricsSnapshot() *obs.Snapshot {
	if cl.coupling == nil {
		return obs.Ensure(cl.K).Metrics().Snapshot(cl.Now())
	}
	regs := make([]*obs.Registry, len(cl.domains))
	for i, d := range cl.domains {
		regs[i] = obs.Ensure(d.Kernel()).Metrics()
	}
	return obs.MergeSnapshots(cl.Now(), regs...)
}

// Run drives the simulation until no events remain. It fails on deadlock
// or a model panic. Clusters with server threads never drain; use RunFor.
func (cl *Cluster) Run() error {
	if cl.coupling != nil {
		return cl.coupling.Run()
	}
	return cl.K.Run()
}

// RunFor drives the simulation for d of virtual time.
func (cl *Cluster) RunFor(d sim.Duration) error {
	if cl.coupling != nil {
		return cl.coupling.RunFor(d)
	}
	return cl.K.RunFor(d)
}

// Now returns the current virtual time.
func (cl *Cluster) Now() sim.Time {
	if cl.coupling != nil {
		return cl.coupling.Now()
	}
	return cl.K.Now()
}
