// Package nectar is a faithful reproduction, as a discrete-event-simulated
// Go library, of the system described in "Protocol Implementation on the
// Nectar Communication Processor" (Cooper, Steenkiste, Sansom, Zill;
// SIGCOMM 1990): a high-speed LAN whose host interface is a programmable
// communication processor (the CAB) running a flexible runtime system —
// preemptive priority threads, zero-copy mailboxes, lightweight syncs, and
// a shared-memory host interface — on which TCP/IP and Nectar-specific
// transport protocols execute.
//
// The package provides the cluster builder: it assembles HUB crossbars,
// fiber links, CABs, hosts and VME buses into a topology, boots the
// runtime system and protocol stacks on every node, and computes source
// routes. Everything runs in virtual time on a deterministic simulation
// kernel, with every hardware constant calibrated from the paper (see
// DESIGN.md); protocol code, headers, checksums and buffers are real.
//
// A minimal session:
//
//	cl := nectar.NewCluster(nil)          // default 1990 cost model
//	a := cl.AddNode()                     // host+CAB pair on the HUB
//	b := cl.AddNode()
//	... create mailboxes, run host processes / CAB threads ...
//	cl.Run()                              // drive the simulation
package nectar

import (
	"fmt"
	"sort"

	"nectar/internal/fabric"
	"nectar/internal/hw/cab"
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/host"
	"nectar/internal/hw/hub"
	"nectar/internal/model"
	"nectar/internal/nectarine"
	"nectar/internal/obs"
	"nectar/internal/prof"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/ip"
	"nectar/internal/proto/nectar"
	"nectar/internal/proto/tcp"
	"nectar/internal/proto/udp"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/sim"
	"nectar/internal/sockets"
)

// Node is one host/CAB pair with its booted runtime system and protocol
// stacks.
type Node struct {
	ID   wire.NodeID
	CAB  *cab.CAB
	Host *host.Host
	IF   *hostif.IF

	Mailboxes *mailbox.Runtime
	Syncs     *syncs.Pool
	Datalink  *datalink.Layer

	Transports *nectar.Transports // datagram, RMP, RRP
	IP         *ip.Layer
	UDP        *udp.Layer
	TCP        *tcp.Layer

	API     *nectarine.API // the application interface (paper §3.5)
	Sockets *sockets.API   // the Berkeley-socket emulation (paper §5.2)

	hubIdx int
	port   int
}

// Config adjusts cluster construction.
type Config struct {
	Cost *model.CostModel // nil: model.Default1990()
	// RxThreadMode selects the §3.1 ablation: protocol input processing
	// in a high-priority thread instead of at interrupt time.
	RxThreadMode bool
	// HubPorts is the crossbar size (default hub.DefaultPorts). Ignored
	// when Topology is set (the fabric defines per-HUB port counts).
	HubPorts int

	// Topology, when non-nil, builds the whole HUB fabric from data: the
	// cluster creates every crossbar and trunk fiber of the fabric up
	// front and registers each attachment point as a *compact* node — a
	// few bytes of arena state (hub, port, shard) instead of a booted
	// protocol stack. Node(i) materializes the full host/CAB pair at
	// attachment point i on first use, so a 100k-node fabric fits in
	// memory and only the nodes that actually carry traffic (declared by
	// Flows, typically) pay for stacks. Hand-wiring (AddHub, ConnectHubs,
	// AddNode) is unavailable on fabric clusters, and sharded execution
	// over multiple HUBs is available only through a Topology (trunk
	// ownership needs the whole fabric up front).
	Topology *fabric.Topology
	// CABDataBytes overrides each CAB's packet-memory size (0: the
	// default 1 MB). Scale experiments shrink it so tens of thousands of
	// materialized nodes fit in host memory.
	CABDataBytes int

	// Shards > 1 opts in to sharded execution: nodes are partitioned
	// into per-shard simulation kernels that run concurrently on OS
	// threads under a conservative time-window scheduler (see
	// internal/sim's Coupling). The HUB setup latency on cross-shard
	// fiber paths is the scheduler's lookahead, so results are
	// byte-identical to a sequential run. Sharded clusters are limited
	// to a single HUB and cannot open circuits (zero lookahead).
	// 0 or 1 means sequential execution on one kernel (the default).
	Shards int
	// ShardOf maps a node's index (in AddNode order) to its shard in
	// [0, Shards). nil: round-robin (index % Shards). Placing the two
	// ends of a busy flow on different shards is what buys parallelism;
	// placing chatty neighbors together minimizes window overhead.
	ShardOf func(nodeIdx int) int
	// Flows, when non-nil, declares the COMPLETE communication graph of
	// the workload as node-index pairs: node i may exchange frames with
	// node j only if {i,j} (in either order) appears here. The
	// declaration is a contract — a frame to an undeclared destination
	// panics deterministically — and it is what makes sharded execution
	// win: a gateway whose declared peers all live on its own shard can
	// never emit cross-shard, so it stops constraining the safe bound
	// entirely, and a flow-affinity partition (ShardByFlows over the
	// same list) runs whole scheduling horizons per window instead of
	// one transmit-latency margin. nil: any node may talk to any node
	// (the conservative default).
	Flows [][2]int
}

// Cluster is a simulated Nectar installation.
type Cluster struct {
	// K is the simulation kernel. Under sharded execution it is shard
	// 0's kernel, which also hosts cluster-wide metrics (HUB gauges);
	// use Run/RunFor/Now on the Cluster — not K directly — so all
	// shards advance.
	K    *sim.Kernel
	Cost *model.CostModel
	Hubs []*hub.Hub

	Nodes []*Node

	cfg      Config
	hubLinks []hubLink
	nextPort []int // per hub

	// Shared deduplicated route table: every CAB route entry is a
	// reference into it (one string per (srcHub, dstHub, dstPort)
	// triple), built lazily over the topology's closed-form router or a
	// BFS over hand-wired hub links.
	routeTab *fabric.RouteTable

	// Fabric state (Config.Topology; nil/empty otherwise). mat holds the
	// materialized node at each attachment point (nil = compact); trunks
	// holds the directed inter-HUB links in fabric.Trunks order.
	topo       *fabric.Topology
	mat        []*Node
	trunks     []*fiber.Link
	trunkOwner []int32 // directed trunk -> owning shard (sharded fabrics)

	// Sharded execution state (nil/empty when sequential).
	coupling  *sim.Coupling
	domains   []*sim.Domain // one per shard
	nodeShard []int32       // node index -> shard (arena; all attachment points on fabrics)
	uplinks   []*fiber.Link // node index -> its CAB->HUB link (the shard gateway); nil = compact

	// Materialized wire IDs back to node indices (send-guard resolution).
	idToIdx map[wire.NodeID]int32

	// Declared traffic matrix (Config.Flows): node index -> set of peer
	// node indices it may exchange frames with. nil when undeclared.
	flowPeers []map[int]bool
}

type hubLink struct{ fromHub, fromPort, toHub, toPort int }

// NewCluster creates a cluster with one HUB and the given configuration
// (pass nil for defaults).
func NewCluster(cfg *Config) *Cluster {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	if c.Cost == nil {
		c.Cost = model.Default1990()
	}
	if c.HubPorts == 0 {
		c.HubPorts = hub.DefaultPorts
	}
	cl := &Cluster{Cost: c.Cost, cfg: c, idToIdx: make(map[wire.NodeID]int32)}
	if c.Flows != nil {
		n := 0
		for _, f := range c.Flows {
			if f[0] < 0 || f[1] < 0 {
				sim.Panicf("nectar: Flows entry %v has a negative node index", f)
			}
			if f[0] >= n {
				n = f[0] + 1
			}
			if f[1] >= n {
				n = f[1] + 1
			}
		}
		cl.flowPeers = make([]map[int]bool, n)
		for _, f := range c.Flows {
			for _, i := range f {
				if cl.flowPeers[i] == nil {
					cl.flowPeers[i] = map[int]bool{}
				}
			}
			cl.flowPeers[f[0]][f[1]] = true
			cl.flowPeers[f[1]][f[0]] = true
		}
	}
	if c.Shards > 1 {
		cl.coupling = sim.NewCoupling()
		for i := 0; i < c.Shards; i++ {
			cl.domains = append(cl.domains, cl.coupling.AddDomain(sim.NewKernel()))
		}
		cl.K = cl.domains[0].Kernel()
	} else {
		cl.K = sim.NewKernel()
	}
	if c.Topology != nil {
		cl.buildFabric(c.Topology)
		return cl
	}
	cl.AddHub()
	if cl.coupling != nil {
		cl.Hubs[0].SetSharded()
	}
	return cl
}

// AddHub adds a crossbar to the installation and returns its index.
func (cl *Cluster) AddHub() int {
	if cl.topo != nil {
		panic("nectar: the HUB fabric comes from Config.Topology; hand-wiring is unavailable")
	}
	if cl.coupling != nil && len(cl.Hubs) > 0 {
		panic("nectar: sharded clusters hand-wire a single HUB; pass Config.Topology for a sharded multi-HUB fabric")
	}
	h := hub.New(cl.K, cl.Cost, fmt.Sprintf("hub%d", len(cl.Hubs)), cl.cfg.HubPorts)
	cl.Hubs = append(cl.Hubs, h)
	cl.nextPort = append(cl.nextPort, 0)
	return len(cl.Hubs) - 1
}

// ConnectHubs joins two HUBs with a fiber pair, consuming one port on
// each (large Nectar systems are built this way, paper §2.1).
func (cl *Cluster) ConnectHubs(a, b int) {
	if cl.topo != nil {
		panic("nectar: the HUB fabric comes from Config.Topology; hand-wiring is unavailable")
	}
	if cl.coupling != nil {
		panic("nectar: sharded clusters hand-wire a single HUB; pass Config.Topology for a sharded multi-HUB fabric")
	}
	pa := cl.allocPort(a)
	pb := cl.allocPort(b)
	cl.Hubs[a].ConnectOut(pa, fiber.NewLink(cl.K, cl.Cost,
		fmt.Sprintf("hub%d.%d->hub%d", a, pa, b), cl.Hubs[b].InPort(pb)))
	cl.Hubs[b].ConnectOut(pb, fiber.NewLink(cl.K, cl.Cost,
		fmt.Sprintf("hub%d.%d->hub%d", b, pb, a), cl.Hubs[a].InPort(pa)))
	cl.hubLinks = append(cl.hubLinks, hubLink{a, pa, b, pb}, hubLink{b, pb, a, pa})
	if cl.routeTab != nil {
		cl.routeTab.Reset() // hub paths changed; cached routes are stale
	}
	cl.recomputeRoutes()
}

func (cl *Cluster) allocPort(hubIdx int) int {
	p := cl.nextPort[hubIdx]
	if p >= cl.Hubs[hubIdx].Ports() {
		sim.Panicf("nectar: hub %d out of ports", hubIdx)
	}
	cl.nextPort[hubIdx]++
	return p
}

// AddNode attaches a new host/CAB pair to HUB 0.
func (cl *Cluster) AddNode() *Node { return cl.AddNodeAt(0) }

// AddNodeAt attaches a new host/CAB pair to the given HUB and boots its
// runtime system and protocol stacks.
//
// Under sharded execution the whole node — CAB, host, interface, runtime,
// protocol stacks, and both of its fiber endpoints — is built on its
// shard's kernel: the CAB->HUB uplink and the HUB input port it feeds run
// on the node's shard, and the HUB output link back to the CAB runs there
// too, so the only events that ever cross shards are HUB forwards (which
// carry the setup latency, the coupling's lookahead).
func (cl *Cluster) AddNodeAt(hubIdx int) *Node {
	if cl.topo != nil {
		panic("nectar: fabric clusters attach nodes at topology-defined points; use Node(i)")
	}
	port := cl.allocPort(hubIdx)
	idx := len(cl.Nodes)
	shard := 0
	if cl.coupling != nil {
		shard = cl.shardOf(idx)
	}
	cl.nodeShard = append(cl.nodeShard, int32(shard))
	n := cl.bootNode(idx, hubIdx, port)
	cl.recomputeRoutes()
	return n
}

// bootNode builds and boots the full host/CAB pair for node index idx at
// (hubIdx, port): hardware, fibers with their gateway role, runtime system
// and protocol stacks. cl.nodeShard[idx] must already be set. Route
// installation is the caller's job (eager all-pairs for hand-wired
// clusters, per-peer at materialization for fabrics).
func (cl *Cluster) bootNode(idx, hubIdx, port int) *Node {
	id := wire.NodeID(len(cl.Nodes) + 1)

	k := cl.K
	var dom *sim.Domain
	if cl.coupling != nil {
		dom = cl.domains[cl.nodeShard[idx]]
		k = dom.Kernel()
	}

	c := cab.NewSized(k, cl.Cost, id, cl.cfg.CABDataBytes)
	if cl.cfg.RxThreadMode {
		c.SetRxInterruptMode(false)
	}
	h := host.New(k, cl.Cost, fmt.Sprintf("host%d", id), c)
	f := hostif.New(h, c)

	// Fibers: CAB -> hub input port, hub output port -> CAB.
	hb := cl.Hubs[hubIdx]
	var in fiber.Endpoint
	if dom != nil {
		in = hb.InPortOn(port, k, dom)
	} else {
		in = hb.InPort(port)
	}
	up := fiber.NewLink(k, cl.Cost, fmt.Sprintf("cab%d->hub%d", id, hubIdx), in)
	c.ConnectFiber(up)
	hb.ConnectOut(port, fiber.NewLink(k, cl.Cost, fmt.Sprintf("hub%d.%d->cab%d", hubIdx, port, id), c))
	if dom != nil {
		hb.SetOutDomain(port, dom)
		// The uplink is the shard's gateway: every cross-shard forward
		// is of a packet it delivered to the HUB input port, so its
		// earliest-output bound (delivery + HubSetup) covers them all.
		// The cross closure resolves the next route hop to the shard it
		// forwards into, giving the coupling one safe bound per
		// destination shard (per-channel lookahead). On multi-HUB
		// fabrics the hop may enter a trunk, whose owning shard the
		// HUB's output-domain table resolves the same way.
		up.SetGateway(sim.Duration(cl.Cost.HubSetup), crossFn(hb, dom))
		// Transmit-preparation floor: every frame this CAB can put on the
		// uplink goes through datalink.Send, which consumes DatalinkProcess
		// + DMASetup of CAB CPU time between the event that triggers it
		// and the fiber transmission (and brackets that compute with
		// BeginTxPrep/EndTxPrep). So with no preparation in flight, no
		// frame can start before the domain's activity floor plus that
		// margin; with one in flight, none can start before the earliest
		// outstanding ready time. This margin — not the 700 ns HUB setup —
		// is what grows safe windows enough for sharding to win.
		margin := sim.Time(cl.Cost.DatalinkProcess + cl.Cost.DMASetup)
		up.SetTxFloor(func(actFloor sim.Time) sim.Time {
			e := actFloor + margin
			if at, ok := c.TxReadyAt(); ok && at < e {
				e = at
			}
			return e
		})
		if cl.flowPeers != nil {
			// Declared channel topology: this gateway only constrains the
			// safe bound of domains holding one of the node's declared
			// peers. With a flow-affinity partition that is no domain at
			// all, and windows stretch to the scheduling horizon.
			if cl.topo != nil {
				// Fabric: the domains the *first* forward after this
				// node's HUB can enter (same-HUB peers resolve to their
				// shard, farther peers to the owner of the path's first
				// trunk; later hops are covered by trunk gateways).
				// Precomputed into a bitmap — the closure runs per
				// (gateway, destination) in every window choose phase.
				reach := cl.firstHopReach(idx)
				up.SetReach(func(dstDom int) bool {
					return dstDom >= 0 && dstDom < len(reach) && reach[dstDom]
				})
			} else {
				up.SetReach(func(dstDom int) bool {
					if idx >= len(cl.flowPeers) {
						return false
					}
					for peer := range cl.flowPeers[idx] {
						if peer < len(cl.nodeShard) && int(cl.nodeShard[peer]) == dstDom {
							return true
						}
					}
					return false
				})
			}
		}
		dom.AddGateway(up)
	}
	if cl.topo != nil {
		cl.uplinks[idx] = up
	} else {
		cl.uplinks = append(cl.uplinks, up)
	}
	if cl.flowPeers != nil {
		// The declaration is enforced on every frame, sequential or
		// sharded, so a violating workload fails identically in both
		// modes instead of silently desynchronizing them. The destination
		// comes from the frame's datalink header — on a fabric the first
		// route byte names a trunk, not a node.
		up.SetSendGuard(func(pkt *fiber.Packet) {
			if dst, ok := cl.frameDst(pkt.Frame); ok && !cl.trafficAllowed(idx, dst) {
				sim.Panicf("nectar: node %d sent a frame toward node %d, which Config.Flows does not declare", idx, dst)
			}
		})
	}

	// Runtime system.
	mrt := mailbox.NewRuntime(c)
	mrt.AttachHost(f)
	pool := syncs.NewPool(f)
	dl := datalink.NewLayer(c, mrt)

	n := &Node{
		ID: id, CAB: c, Host: h, IF: f,
		Mailboxes: mrt, Syncs: pool, Datalink: dl,
		hubIdx: hubIdx, port: port,
	}

	// Protocol stacks.
	n.Transports = nectar.Attach(dl, mrt, pool)
	n.IP = ip.NewLayer(dl, mrt)
	n.UDP = udp.NewLayer(n.IP, mrt)
	n.TCP = tcp.NewLayer(n.IP, mrt)
	n.API = nectarine.New(n.Mailboxes, n.Syncs, n.Transports, n.Host)
	n.Sockets = sockets.New(n.TCP, n.Mailboxes, n.IF, n.Syncs)

	cl.Nodes = append(cl.Nodes, n)
	cl.idToIdx[id] = int32(idx)
	return n
}

// crossFn builds the gateway cross-resolution closure for a link feeding
// an input port of hb on domain own: a route byte crosses shards when the
// HUB output port it names is owned by another domain. Unconnected or
// out-of-range ports resolve local and fail with a routing diagnostic when
// the forward executes.
func crossFn(hb *hub.Hub, own *sim.Domain) func(out byte) (int, bool) {
	return func(out byte) (int, bool) {
		d := hb.OutDomain(int(out))
		if d == nil || d == own {
			return 0, false
		}
		return d.ID(), true
	}
}

// frameDst resolves a frame's datalink destination to a node index
// (materialized nodes only; false for short frames or unknown IDs).
func (cl *Cluster) frameDst(frame []byte) (int, bool) {
	if len(frame) < wire.DatalinkHeaderLen {
		return 0, false
	}
	id := wire.NodeID(uint16(frame[6])<<8 | uint16(frame[7]))
	idx, ok := cl.idToIdx[id]
	return int(idx), ok
}

// routes returns the cluster's shared route table, creating it on first
// use over the fabric's closed-form router (Config.Topology) or a BFS over
// the hand-wired hub links.
func (cl *Cluster) routes() *fabric.RouteTable {
	if cl.routeTab == nil {
		if cl.topo != nil {
			cl.routeTab = fabric.NewRouteTable(cl.topo.HubPath)
		} else {
			cl.routeTab = fabric.NewRouteTable(cl.bfsHubPath)
		}
	}
	return cl.routeTab
}

// RouteTableStats reports the shared route table's deduplicated size:
// distinct route strings and their total bytes. Every CAB route entry is a
// reference into this table.
func (cl *Cluster) RouteTableStats() (entries, bytes int) {
	return cl.routes().Entries(), cl.routes().Bytes()
}

// recomputeRoutes rebuilds every CAB's source-route table for hand-wired
// clusters. Entries are references into the shared route table, so nodes
// on the same HUB pair share backing arrays. src == dst is loopback: the
// crossbar routes the frame straight back down the sender's own port, so
// node-local transport traffic needs no special casing in software.
func (cl *Cluster) recomputeRoutes() {
	rt := cl.routes()
	for _, src := range cl.Nodes {
		for _, dst := range cl.Nodes {
			if route, ok := rt.Route(src.hubIdx, dst.hubIdx, dst.port); ok {
				src.CAB.SetRoute(dst.ID, route)
			}
		}
	}
}

// bfsHubPath returns the output-port bytes from HUB `from` to HUB `to`
// over the hand-wired hub links (excluding any final attachment port).
func (cl *Cluster) bfsHubPath(from, to int) ([]byte, bool) {
	if from == to {
		return nil, true
	}
	type hop struct {
		hub  int
		path []byte
	}
	visited := make([]bool, len(cl.Hubs))
	visited[from] = true
	queue := []hop{{from, nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range cl.hubLinks {
			if l.fromHub != cur.hub || visited[l.toHub] {
				continue
			}
			path := append(append([]byte(nil), cur.path...), byte(l.fromPort))
			if l.toHub == to {
				return path, true
			}
			visited[l.toHub] = true
			queue = append(queue, hop{l.toHub, path})
		}
	}
	return nil, false
}

// shardOf maps a node index to its shard.
func (cl *Cluster) shardOf(nodeIdx int) int {
	if cl.cfg.ShardOf != nil {
		s := cl.cfg.ShardOf(nodeIdx)
		if s < 0 || s >= cl.cfg.Shards {
			sim.Panicf("nectar: ShardOf(%d) = %d out of range [0,%d)", nodeIdx, s, cl.cfg.Shards)
		}
		return s
	}
	return nodeIdx % cl.cfg.Shards
}

// ShardByFlows builds a topology-aware Config.ShardOf assignment from the
// traffic pattern: flows lists pairs of node indices (in AddNode order)
// expected to exchange most of the traffic, and the builder places both
// endpoints of every flow — transitively, whole connected components of
// the flow graph — on the same shard, balancing components across shards
// by node count. Chatty neighbors thus never pay the cross-shard barrier,
// while independent flows spread out to run in parallel; blind round-robin
// does the exact opposite (it splits every adjacent pair).
//
// The assignment is deterministic: components are considered in ascending
// order of their smallest node index and go to the least-loaded shard,
// lowest index first on ties. Nodes in no flow are singleton components.
func ShardByFlows(nodes, shards int, flows [][2]int) func(nodeIdx int) int {
	assign := assignComponents(nodes, shards, flows, nil)
	return func(nodeIdx int) int { return assign[nodeIdx] }
}

// ShardByFlowsOnFabric is ShardByFlows made locality-aware across HUB
// tiers: flow components are placed in ascending order of their root's
// edge crossbar, and a component whose crossbar already has components on
// some shard joins that shard as long as its load stays within the
// balanced ideal (ceil(nodes/shards)) — pure least-loaded packing would
// split same-leaf components across shards every time sizes tie. On a
// fabric cluster that concentrates each shard's traffic on shard-owned
// trunks, which is what empties the trunk gateways' cross-shard reach and
// lets safe windows stretch to the horizon.
func ShardByFlowsOnFabric(topo *fabric.Topology, shards int, flows [][2]int) func(nodeIdx int) int {
	assign := assignComponents(topo.NodeCount(), shards, flows, func(root int) int {
		return int(topo.NodeHub[root])
	})
	return func(nodeIdx int) int { return assign[nodeIdx] }
}

// assignComponents unions the flow graph's connected components and packs
// them onto shards least-loaded-first. Components are considered in
// ascending (locality(root), root) order — locality nil means node-index
// order — and ties go to the lowest shard, so the assignment is fully
// deterministic. With a locality, a component additionally prefers the
// shard its locality group last landed on, as long as that shard's load
// stays within the balanced ideal.
func assignComponents(nodes, shards int, flows [][2]int, locality func(root int) int) []int {
	if shards < 1 {
		shards = 1
	}
	// Union-find with union-by-minimum: a component's root is its
	// smallest member, making component order deterministic.
	parent := make([]int, nodes)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, f := range flows {
		a, b := find(f[0]), find(f[1])
		if a != b {
			if b < a {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	size := make([]int, nodes) // per root
	roots := make([]int, 0, nodes)
	for i := 0; i < nodes; i++ {
		r := find(i)
		if size[r] == 0 {
			roots = append(roots, r)
		}
		size[r]++
	}
	if locality != nil {
		// Stable by construction: roots are distinct, so the (locality,
		// root) key is unique.
		sortRootsBy(roots, locality)
	}
	assign := make([]int, nodes)
	load := make([]int, shards)
	shardOfRoot := make([]int, nodes)
	ideal := (nodes + shards - 1) / shards
	lastShard := map[int]int{} // locality group -> shard it last landed on
	for _, r := range roots {
		s := -1
		if locality != nil {
			if p, ok := lastShard[locality(r)]; ok && load[p]+size[r] <= ideal {
				s = p
			}
		}
		if s < 0 {
			s = 0
			for j := 1; j < shards; j++ {
				if load[j] < load[s] {
					s = j
				}
			}
		}
		if locality != nil {
			lastShard[locality(r)] = s
		}
		shardOfRoot[r] = s
		load[s] += size[r]
	}
	for i := 0; i < nodes; i++ {
		assign[i] = shardOfRoot[find(i)]
	}
	return assign
}

// sortRootsBy orders component roots by (locality, root) ascending.
func sortRootsBy(roots []int, locality func(root int) int) {
	sort.Slice(roots, func(i, j int) bool {
		li, lj := locality(roots[i]), locality(roots[j])
		if li != lj {
			return li < lj
		}
		return roots[i] < roots[j]
	})
}

// trafficAllowed reports whether the declared traffic matrix permits
// frames between nodes src and dst (always true when undeclared).
func (cl *Cluster) trafficAllowed(src, dst int) bool {
	if cl.flowPeers == nil || src == dst {
		return true
	}
	if src >= len(cl.flowPeers) || cl.flowPeers[src] == nil {
		return false
	}
	return cl.flowPeers[src][dst]
}

// Shards returns the number of execution shards (1 when sequential).
func (cl *Cluster) Shards() int {
	if cl.coupling == nil {
		return 1
	}
	return len(cl.domains)
}

// Windows reports how many conservative safe windows the coupling
// scheduler has executed (0 when sequential).
func (cl *Cluster) Windows() uint64 {
	if cl.coupling == nil {
		return 0
	}
	return cl.coupling.Windows()
}

// MultiWindows reports how many safe windows had more than one active
// shard (0 when sequential).
func (cl *Cluster) MultiWindows() uint64 {
	if cl.coupling == nil {
		return 0
	}
	return cl.coupling.MultiWindows()
}

// ShardOfNode returns the shard executing node i (0 when sequential).
func (cl *Cluster) ShardOfNode(i int) int {
	if cl.coupling == nil {
		return 0
	}
	return int(cl.nodeShard[i])
}

// Kernels returns every simulation kernel of the cluster: one per shard,
// or just K when sequential. Per-shard observability (trace sinks, wire
// captures) is installed by attaching to each kernel's observer.
func (cl *Cluster) Kernels() []*sim.Kernel {
	if cl.coupling == nil {
		return []*sim.Kernel{cl.K}
	}
	ks := make([]*sim.Kernel, len(cl.domains))
	for i, d := range cl.domains {
		ks[i] = d.Kernel()
	}
	return ks
}

// EnableProfiling attaches a wall-clock profile to the coupling scheduler
// and returns it (nil, and a no-op, when the cluster is sequential — the
// profiler measures where the seconds of a *sharded* run go). Call before
// Run/RunFor; profiling does not perturb virtual time, so results remain
// byte-identical to an unprofiled run.
func (cl *Cluster) EnableProfiling() *prof.Profile {
	if cl.coupling == nil {
		return nil
	}
	p := prof.New(len(cl.domains))
	cl.coupling.SetProfile(p)
	return p
}

// ProfileReport exports the attached wall-clock profile with the
// cluster-level sampling counters filled in: total kernel dispatches
// across shards, wire-path traffic, and cross-shard frames. It returns
// nil when profiling was never enabled, and must only be called between
// runs (the coupling's worker-join barrier orders the collector reads).
func (cl *Cluster) ProfileReport() *prof.Report {
	if cl.coupling == nil {
		return nil
	}
	r := cl.coupling.Profile().Report()
	if r == nil {
		return nil
	}
	r.VirtualNS = cl.Now().Nanos()
	for _, k := range cl.Kernels() {
		r.KernelDispatches += k.Dispatched()
	}
	snap := cl.MetricsSnapshot()
	r.WireFrames = snap.Sum(obs.LayerFiber, "frames")
	r.WireBytes = snap.Sum(obs.LayerFiber, "bytes")
	for _, up := range cl.uplinks {
		if up != nil { // compact (unmaterialized) attachment points
			r.CrossShardFrames += up.CrossShardFrames()
		}
	}
	return r
}

// CrossShardFrames sums, over every gateway link (node uplinks and fabric
// trunks), the frames that left their shard through the coupling. Zero
// when sequential; only call between runs.
func (cl *Cluster) CrossShardFrames() uint64 {
	var n uint64
	for _, up := range cl.uplinks {
		if up != nil { // compact (unmaterialized) attachment points
			n += up.CrossShardFrames()
		}
	}
	for _, tr := range cl.trunks {
		n += tr.CrossShardFrames()
	}
	return n
}

// MetricsSnapshot exports the cluster's metrics at the current virtual
// time. Under sharded execution the per-shard registries are merged (sums
// of counters and gauges, bucket-level histogram merges) into one snapshot
// that is byte-identical to the sequential run's.
func (cl *Cluster) MetricsSnapshot() *obs.Snapshot {
	if cl.coupling == nil {
		return obs.Ensure(cl.K).Metrics().Snapshot(cl.Now())
	}
	regs := make([]*obs.Registry, len(cl.domains))
	for i, d := range cl.domains {
		regs[i] = obs.Ensure(d.Kernel()).Metrics()
	}
	return obs.MergeSnapshots(cl.Now(), regs...)
}

// Run drives the simulation until no events remain. It fails on deadlock
// or a model panic. Clusters with server threads never drain; use RunFor.
func (cl *Cluster) Run() error {
	if cl.coupling != nil {
		return cl.coupling.Run()
	}
	return cl.K.Run()
}

// RunFor drives the simulation for d of virtual time.
func (cl *Cluster) RunFor(d sim.Duration) error {
	if cl.coupling != nil {
		return cl.coupling.RunFor(d)
	}
	return cl.K.RunFor(d)
}

// Now returns the current virtual time.
func (cl *Cluster) Now() sim.Time {
	if cl.coupling != nil {
		return cl.coupling.Now()
	}
	return cl.K.Now()
}
