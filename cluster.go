// Package nectar is a faithful reproduction, as a discrete-event-simulated
// Go library, of the system described in "Protocol Implementation on the
// Nectar Communication Processor" (Cooper, Steenkiste, Sansom, Zill;
// SIGCOMM 1990): a high-speed LAN whose host interface is a programmable
// communication processor (the CAB) running a flexible runtime system —
// preemptive priority threads, zero-copy mailboxes, lightweight syncs, and
// a shared-memory host interface — on which TCP/IP and Nectar-specific
// transport protocols execute.
//
// The package provides the cluster builder: it assembles HUB crossbars,
// fiber links, CABs, hosts and VME buses into a topology, boots the
// runtime system and protocol stacks on every node, and computes source
// routes. Everything runs in virtual time on a deterministic simulation
// kernel, with every hardware constant calibrated from the paper (see
// DESIGN.md); protocol code, headers, checksums and buffers are real.
//
// A minimal session:
//
//	cl := nectar.NewCluster(nil)          // default 1990 cost model
//	a := cl.AddNode()                     // host+CAB pair on the HUB
//	b := cl.AddNode()
//	... create mailboxes, run host processes / CAB threads ...
//	cl.Run()                              // drive the simulation
package nectar

import (
	"fmt"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/host"
	"nectar/internal/hw/hub"
	"nectar/internal/model"
	"nectar/internal/nectarine"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/ip"
	"nectar/internal/proto/nectar"
	"nectar/internal/proto/tcp"
	"nectar/internal/proto/udp"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/sim"
	"nectar/internal/sockets"
)

// Node is one host/CAB pair with its booted runtime system and protocol
// stacks.
type Node struct {
	ID   wire.NodeID
	CAB  *cab.CAB
	Host *host.Host
	IF   *hostif.IF

	Mailboxes *mailbox.Runtime
	Syncs     *syncs.Pool
	Datalink  *datalink.Layer

	Transports *nectar.Transports // datagram, RMP, RRP
	IP         *ip.Layer
	UDP        *udp.Layer
	TCP        *tcp.Layer

	API     *nectarine.API // the application interface (paper §3.5)
	Sockets *sockets.API   // the Berkeley-socket emulation (paper §5.2)

	hubIdx int
	port   int
}

// Config adjusts cluster construction.
type Config struct {
	Cost *model.CostModel // nil: model.Default1990()
	// RxThreadMode selects the §3.1 ablation: protocol input processing
	// in a high-priority thread instead of at interrupt time.
	RxThreadMode bool
	// HubPorts is the crossbar size (default hub.DefaultPorts).
	HubPorts int
}

// Cluster is a simulated Nectar installation.
type Cluster struct {
	K    *sim.Kernel
	Cost *model.CostModel
	Hubs []*hub.Hub

	Nodes []*Node

	cfg      Config
	hubLinks []hubLink
	nextPort []int // per hub
}

type hubLink struct{ fromHub, fromPort, toHub, toPort int }

// NewCluster creates a cluster with one HUB and the given configuration
// (pass nil for defaults).
func NewCluster(cfg *Config) *Cluster {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	if c.Cost == nil {
		c.Cost = model.Default1990()
	}
	if c.HubPorts == 0 {
		c.HubPorts = hub.DefaultPorts
	}
	cl := &Cluster{K: sim.NewKernel(), Cost: c.Cost, cfg: c}
	cl.AddHub()
	return cl
}

// AddHub adds a crossbar to the installation and returns its index.
func (cl *Cluster) AddHub() int {
	h := hub.New(cl.K, cl.Cost, fmt.Sprintf("hub%d", len(cl.Hubs)), cl.cfg.HubPorts)
	cl.Hubs = append(cl.Hubs, h)
	cl.nextPort = append(cl.nextPort, 0)
	return len(cl.Hubs) - 1
}

// ConnectHubs joins two HUBs with a fiber pair, consuming one port on
// each (large Nectar systems are built this way, paper §2.1).
func (cl *Cluster) ConnectHubs(a, b int) {
	pa := cl.allocPort(a)
	pb := cl.allocPort(b)
	cl.Hubs[a].ConnectOut(pa, fiber.NewLink(cl.K, cl.Cost,
		fmt.Sprintf("hub%d.%d->hub%d", a, pa, b), cl.Hubs[b].InPort(pb)))
	cl.Hubs[b].ConnectOut(pb, fiber.NewLink(cl.K, cl.Cost,
		fmt.Sprintf("hub%d.%d->hub%d", b, pb, a), cl.Hubs[a].InPort(pa)))
	cl.hubLinks = append(cl.hubLinks, hubLink{a, pa, b, pb}, hubLink{b, pb, a, pa})
	cl.recomputeRoutes()
}

func (cl *Cluster) allocPort(hubIdx int) int {
	p := cl.nextPort[hubIdx]
	if p >= cl.Hubs[hubIdx].Ports() {
		panic(fmt.Sprintf("nectar: hub %d out of ports", hubIdx))
	}
	cl.nextPort[hubIdx]++
	return p
}

// AddNode attaches a new host/CAB pair to HUB 0.
func (cl *Cluster) AddNode() *Node { return cl.AddNodeAt(0) }

// AddNodeAt attaches a new host/CAB pair to the given HUB and boots its
// runtime system and protocol stacks.
func (cl *Cluster) AddNodeAt(hubIdx int) *Node {
	id := wire.NodeID(len(cl.Nodes) + 1)
	port := cl.allocPort(hubIdx)

	c := cab.New(cl.K, cl.Cost, id)
	if cl.cfg.RxThreadMode {
		c.SetRxInterruptMode(false)
	}
	h := host.New(cl.K, cl.Cost, fmt.Sprintf("host%d", id), c)
	f := hostif.New(h, c)

	// Fibers: CAB -> hub input port, hub output port -> CAB.
	hb := cl.Hubs[hubIdx]
	c.ConnectFiber(fiber.NewLink(cl.K, cl.Cost, fmt.Sprintf("cab%d->hub%d", id, hubIdx), hb.InPort(port)))
	hb.ConnectOut(port, fiber.NewLink(cl.K, cl.Cost, fmt.Sprintf("hub%d.%d->cab%d", hubIdx, port, id), c))

	// Runtime system.
	mrt := mailbox.NewRuntime(c)
	mrt.AttachHost(f)
	pool := syncs.NewPool(f)
	dl := datalink.NewLayer(c, mrt)

	n := &Node{
		ID: id, CAB: c, Host: h, IF: f,
		Mailboxes: mrt, Syncs: pool, Datalink: dl,
		hubIdx: hubIdx, port: port,
	}

	// Protocol stacks.
	n.Transports = nectar.Attach(dl, mrt, pool)
	n.IP = ip.NewLayer(dl, mrt)
	n.UDP = udp.NewLayer(n.IP, mrt)
	n.TCP = tcp.NewLayer(n.IP, mrt)
	n.API = nectarine.New(n.Mailboxes, n.Syncs, n.Transports, n.Host)
	n.Sockets = sockets.New(n.TCP, n.Mailboxes, n.IF, n.Syncs)

	cl.Nodes = append(cl.Nodes, n)
	cl.recomputeRoutes()
	return n
}

// recomputeRoutes rebuilds every CAB's source-route table: BFS over the
// HUB graph, then the destination CAB's attachment port.
func (cl *Cluster) recomputeRoutes() {
	for _, src := range cl.Nodes {
		for _, dst := range cl.Nodes {
			// src == dst is loopback: the crossbar routes the frame
			// straight back down the sender's own port, so node-local
			// transport traffic needs no special casing in software.
			if route, ok := cl.route(src.hubIdx, dst.hubIdx, dst.port); ok {
				src.CAB.SetRoute(dst.ID, route)
			}
		}
	}
}

// route returns the port bytes from HUB `from` to node attached at
// (hub `to`, port finalPort).
func (cl *Cluster) route(from, to, finalPort int) ([]byte, bool) {
	if from == to {
		return []byte{byte(finalPort)}, true
	}
	// BFS over hub links.
	type hop struct {
		hub  int
		path []byte
	}
	visited := make([]bool, len(cl.Hubs))
	visited[from] = true
	queue := []hop{{from, nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range cl.hubLinks {
			if l.fromHub != cur.hub || visited[l.toHub] {
				continue
			}
			path := append(append([]byte(nil), cur.path...), byte(l.fromPort))
			if l.toHub == to {
				return append(path, byte(finalPort)), true
			}
			visited[l.toHub] = true
			queue = append(queue, hop{l.toHub, path})
		}
	}
	return nil, false
}

// Run drives the simulation until no events remain. It fails on deadlock
// or a model panic. Clusters with server threads never drain; use RunFor.
func (cl *Cluster) Run() error { return cl.K.Run() }

// RunFor drives the simulation for d of virtual time.
func (cl *Cluster) RunFor(d sim.Duration) error { return cl.K.RunFor(d) }

// Now returns the current virtual time.
func (cl *Cluster) Now() sim.Time { return cl.K.Now() }
