package nectar

import (
	"testing"

	"nectar/internal/nectarine"
	"nectar/internal/sim"
)

func TestRemoteMailboxCreation(t *testing.T) {
	// Paper §3.5: Nectarine "allows applications to create mailboxes and
	// tasks on other hosts or CABs". A host task on node A creates a
	// mailbox on node B and sends to it.
	cl, a, b := twoNodes(t, nil)
	var got []byte
	done := false
	a.API.RunOnHost("creator", func(ep *nectarine.Endpoint) {
		addr, err := ep.CreateRemoteMailbox(b.ID, "made-from-afar")
		if err != nil {
			cl.K.Fatalf("create: %v", err)
		}
		if addr.Node != b.ID {
			cl.K.Fatalf("addr = %v", addr)
		}
		st := ep.SendReliable(addr, []byte("into the remote box"))
		if st != 1 {
			cl.K.Fatalf("send status %d", st)
		}
		// Read it back through the remote node's runtime to prove the
		// mailbox is real.
		mb, ok := b.Mailboxes.Lookup(addr.Box)
		if !ok {
			cl.K.Fatalf("remote mailbox not registered")
		}
		b.API.RunOnCAB("reader", func(rep *nectarine.Endpoint) {
			got = rep.Get(mb)
			done = true
		})
	})
	for !done {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if cl.Now() > sim.Time(5*sim.Second) {
			t.Fatal("remote mailbox flow stalled")
		}
	}
	if string(got) != "into the remote box" {
		t.Fatalf("got %q", got)
	}
}

func TestRemoteTaskStart(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	ran := false
	b.API.RegisterTask("pinger", func(ep *nectarine.Endpoint) {
		ran = true
	})
	var startErr, missingErr error
	a.API.RunOnHost("starter", func(ep *nectarine.Endpoint) {
		startErr = ep.StartRemoteTask(b.ID, "pinger")
		missingErr = ep.StartRemoteTask(b.ID, "no-such-task")
	})
	if err := cl.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if startErr != nil {
		t.Fatalf("start: %v", startErr)
	}
	if !ran {
		t.Fatal("remote task never executed")
	}
	if missingErr == nil {
		t.Error("starting an unregistered task did not error")
	}
}

func TestRemoteTaskPipeline(t *testing.T) {
	// Compose the §3.5 features: create a remote mailbox, start a remote
	// task that serves from it, and call it.
	cl, a, b := twoNodes(t, nil)
	b.API.RegisterTask("doubler", func(ep *nectarine.Endpoint) {
		// The task looks up its service mailbox by well-known name
		// convention: the creator passes the ID via the first message.
		mb, _ := b.Mailboxes.Lookup(2000)
		for {
			ep.Serve(mb, func(req []byte) []byte {
				out := make([]byte, len(req)*2)
				copy(out, req)
				copy(out[len(req):], req)
				return out
			})
		}
	})
	// Pre-create the service mailbox at a known ID for the task above.
	svc := b.Mailboxes.CreateWithID(2000, "doubler.svc")
	_ = svc
	var reply []byte
	a.API.RunOnHost("driver", func(ep *nectarine.Endpoint) {
		if err := ep.StartRemoteTask(b.ID, "doubler"); err != nil {
			cl.K.Fatalf("start: %v", err)
		}
		replyBox := ep.NewMailbox("reply")
		out, err := ep.Call(svc.Addr(), []byte("ab"), replyBox)
		if err != nil {
			cl.K.Fatalf("call: %v", err)
		}
		reply = out
	})
	if err := cl.RunFor(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(reply) != "abab" {
		t.Fatalf("reply = %q", reply)
	}
}
