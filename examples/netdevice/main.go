// Network-device example: the paper's §5.1 usage level. The CAB is
// treated as a conventional network interface: the host-resident stack
// hands 1500-byte packets to the driver, which copies each across the VME
// bus into the shared buffer pool and lets a server thread on the CAB
// transmit them over Nectar.
//
// The example streams data in this mode and contrasts the result with the
// protocol-engine level (RMP offloaded to the CAB), showing first-hand
// why the paper moved the protocols onto the communication processor.
//
// Run with: go run ./examples/netdevice
package main

import (
	"fmt"
	"log"

	"nectar"
	"nectar/internal/netdev"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

const streamBytes = 128 << 10

func main() {
	// --- Level 1: CAB as a plain network device (§5.1) ---
	cl := nectar.NewCluster(nil)
	a := cl.AddNode()
	b := cl.AddNode()
	drvA := netdev.New(a.Datalink, a.Mailboxes, a.IF)
	drvB := netdev.New(b.Datalink, b.Mailboxes, b.IF)
	stackA := netdev.NewHostStack(drvA)
	stackB := netdev.NewHostStack(drvB)

	var netdevElapsed sim.Duration
	done := false
	b.Host.Run("recv", func(t *threads.Thread) {
		ctx := exec.OnHost(t, b.Host)
		start := t.Now()
		stackB.RecvStream(ctx, streamBytes)
		netdevElapsed = sim.Duration(t.Now() - start)
		done = true
	})
	a.Host.Run("send", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a.Host)
		stackA.SendStream(ctx, b.ID, streamBytes)
	})
	for !done {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			log.Fatal(err)
		}
	}
	tx, _ := drvA.Stats()
	_, rx := drvB.Stats()
	fmt.Printf("network-device level: %d bytes in %v (%.1f Mbit/s), %d packets out / %d in\n",
		streamBytes, netdevElapsed,
		float64(streamBytes)*8/netdevElapsed.Seconds()/1e6, tx, rx)

	// --- Level 2: protocol engine (RMP offloaded to the CAB) ---
	cl2 := nectar.NewCluster(nil)
	a2 := cl2.AddNode()
	b2 := cl2.AddNode()
	sink := b2.Mailboxes.Create("sink")
	sink.SetCapacity(64 << 10)

	var rmpElapsed sim.Duration
	done2 := false
	b2.Host.Run("recv", func(t *threads.Thread) {
		ctx := exec.OnHost(t, b2.Host)
		start := t.Now()
		buf := make([]byte, 8192)
		for got := 0; got < streamBytes; {
			m := sink.BeginGetPoll(ctx)
			m.Read(ctx, 0, buf[:m.Len()])
			got += m.Len()
			sink.EndGet(ctx, m)
		}
		rmpElapsed = sim.Duration(t.Now() - start)
		done2 = true
	})
	a2.Host.Run("send", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a2.Host)
		buf := make([]byte, 8192)
		for sent := 0; sent < streamBytes; sent += len(buf) {
			a2.Transports.RMP.Send(ctx, wire.MailboxAddr{Node: b2.ID, Box: sink.ID()}, 0, buf, nil)
		}
	})
	for !done2 {
		if err := cl2.RunFor(10 * sim.Millisecond); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("protocol-engine level: %d bytes in %v (%.1f Mbit/s) over RMP\n",
		streamBytes, rmpElapsed,
		float64(streamBytes)*8/rmpElapsed.Seconds()/1e6)
	fmt.Println("\nthe ~4x gap is the paper's case for offloading protocols to the CAB:")
	fmt.Println("one mapped-memory message write vs a host stack pass + VME copy per 1500B packet")
}
