// Network-shared-memory example: the paper's §5.3 research bullet — "the
// CABs will run external pager tasks that cooperate to provide the
// required consistency guarantees". A home node's CAB serves pages; each
// worker node's CAB runs a pager task that caches pages locally and
// drops them on invalidation, so host applications see coherent shared
// pages while every consistency message is handled by the communication
// processors.
//
// Run with: go run ./examples/netshm
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"nectar"
	"nectar/internal/nectarine"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/mailbox"
	"nectar/internal/sim"
)

const (
	pageSize = 256
	nPages   = 4
)

// Pager protocol opcodes (requests to the home pager over RRP).
const (
	opGet      = 'G' // page -> version(4) data(pageSize)
	opPut      = 'P' // page, data -> ack (and invalidations to readers)
	opRegister = 'R' // page, node, boxID -> ack (invalidation address)
)

func main() {
	cl := nectar.NewCluster(nil)
	home := cl.AddNode()
	pagerSvc := home.Mailboxes.Create("shm.pager")

	// The home pager: owns the pages, tracks readers, invalidates on
	// write. Runs entirely on the home node's CAB.
	home.API.RunOnCAB("home-pager", func(ep *nectarine.Endpoint) {
		type page struct {
			version uint32
			data    [pageSize]byte
		}
		var pages [nPages]page
		readers := map[int][]struct {
			node uint16
			box  uint16
		}{}
		for {
			ep.Serve(pagerSvc, func(req []byte) []byte {
				op, pg := req[0], int(req[1])
				switch op {
				case opRegister:
					readers[pg] = append(readers[pg], struct {
						node uint16
						box  uint16
					}{binary.BigEndian.Uint16(req[2:]), binary.BigEndian.Uint16(req[4:])})
					return []byte{1}
				case opGet:
					out := make([]byte, 4+pageSize)
					binary.BigEndian.PutUint32(out, pages[pg].version)
					copy(out[4:], pages[pg].data[:])
					return out
				case opPut:
					pages[pg].version++
					copy(pages[pg].data[:], req[2:2+pageSize])
					// Invalidate every registered reader's cached copy.
					for _, r := range readers[pg] {
						a := wire.MailboxAddr{Node: wire.NodeID(r.node), Box: wire.MailboxID(r.box)}
						ep.SendDatagram(a, []byte{byte(pg)})
					}
					return []byte{1}
				}
				return []byte{0}
			})
		}
	})

	// Worker nodes: a CAB-resident pager caches pages; the host
	// application reads/writes through it via a local service mailbox.
	type worker struct {
		node  *nectar.Node
		local *mailbox.Mailbox // host <-> local pager requests
	}
	var workers []worker
	for w := 0; w < 2; w++ {
		n := cl.AddNode()
		local := n.Mailboxes.Create(fmt.Sprintf("shm.local%d", w))
		inval := n.Mailboxes.Create(fmt.Sprintf("shm.inval%d", w))
		workers = append(workers, worker{n, local})
		n.API.RunOnCAB(fmt.Sprintf("pager%d", w), func(ep *nectarine.Endpoint) {
			replyBox := ep.NewMailbox("shm.pagerreply")
			var cached [nPages]struct {
				valid bool
				data  [pageSize]byte
			}
			hits, misses := 0, 0
			// Register for invalidations on all pages.
			for pg := 0; pg < nPages; pg++ {
				req := []byte{opRegister, byte(pg), 0, 0, 0, 0}
				binary.BigEndian.PutUint16(req[2:], uint16(n.ID))
				binary.BigEndian.PutUint16(req[4:], uint16(inval.ID()))
				if _, err := ep.Call(pagerSvc.Addr(), req, replyBox); err != nil {
					log.Fatal(err)
				}
			}
			_ = hits
			_ = misses
			for {
				// Serve the host application.
				ep.Serve(local, func(req []byte) []byte {
					// Apply pending invalidations first.
					for {
						m := invalTryGet(ep, inval)
						if m == nil {
							break
						}
						cached[m[0]].valid = false
					}
					op, pg := req[0], int(req[1])
					switch op {
					case opGet:
						if !cached[pg].valid {
							out, err := ep.Call(pagerSvc.Addr(), []byte{opGet, byte(pg)}, replyBox)
							if err != nil {
								log.Fatal(err)
							}
							copy(cached[pg].data[:], out[4:])
							cached[pg].valid = true
							misses++
							return append([]byte{0}, cached[pg].data[:]...) // 0 = miss
						}
						hits++
						return append([]byte{1}, cached[pg].data[:]...) // 1 = hit
					case opPut:
						msg := append([]byte{opPut, byte(pg)}, req[2:2+pageSize]...)
						if _, err := ep.Call(pagerSvc.Addr(), msg, replyBox); err != nil {
							log.Fatal(err)
						}
						cached[pg].valid = false // write-through, invalidate own copy
						return []byte{1}
					}
					return []byte{0}
				})
			}
		})
	}

	// Host applications: A writes pages, B reads them, observing
	// coherence through the CAB pagers.
	done := false
	workers[1].node.API.RunOnHost("readerB", func(ep *nectarine.Endpoint) {
		replyBox := ep.NewMailbox("appB.reply")
		read := func(pg byte) (hit bool, first byte) {
			out, err := ep.Call(workers[1].local.Addr(), []byte{opGet, pg}, replyBox)
			if err != nil {
				log.Fatal(err)
			}
			return out[0] == 1, out[1]
		}
		ep.Thread().Sleep(10 * sim.Millisecond) // let A write first
		hit, v := read(0)
		fmt.Printf("B: read page0 = %q (hit=%v)\n", v, hit)
		hit, v = read(0)
		fmt.Printf("B: read page0 = %q (hit=%v)  <- served from CAB cache\n", v, hit)
		ep.Thread().Sleep(20 * sim.Millisecond) // A overwrites, invalidation flows
		hit, v = read(0)
		fmt.Printf("B: read page0 = %q (hit=%v)  <- invalidated, refetched\n", v, hit)
		done = true
	})
	workers[0].node.API.RunOnHost("writerA", func(ep *nectarine.Endpoint) {
		replyBox := ep.NewMailbox("appA.reply")
		write := func(pg byte, val byte) {
			data := make([]byte, pageSize)
			data[0] = val
			if _, err := ep.Call(workers[0].local.Addr(), append([]byte{opPut, pg}, data...), replyBox); err != nil {
				log.Fatal(err)
			}
		}
		write(0, 'x')
		fmt.Println("A: wrote page0 = 'x'")
		ep.Thread().Sleep(20 * sim.Millisecond)
		write(0, 'y')
		fmt.Println("A: wrote page0 = 'y' (readers invalidated)")
	})

	for !done {
		if err := cl.RunFor(20 * sim.Millisecond); err != nil {
			log.Fatal(err)
		}
		if cl.Now() > sim.Time(10*sim.Second) {
			log.Fatal("shared-memory session stalled")
		}
	}
	fmt.Println("\ncoherence held: stale page was invalidated by the CAB pagers,")
	fmt.Println("with the hosts never handling a consistency message")
}

func invalTryGet(ep *nectarine.Endpoint, box *mailbox.Mailbox) []byte {
	m := box.BeginGetNB(ep.Ctx())
	if m == nil {
		return nil
	}
	out := make([]byte, m.Len())
	m.Read(ep.Ctx(), 0, out)
	box.EndGet(ep.Ctx(), m)
	return out
}
