// Task-queue example: divide-and-conquer parallel processing across
// several Nectar nodes, with the CABs dividing the labor and gathering
// the results — the usage pattern of the paper's §5.3 applications
// (COSMOS, Noodles, Paradigm).
//
// A master host process scatters work units to worker tasks that execute
// ON the communication processors of the other nodes; the workers compute
// and send results straight back from the CAB, so the worker hosts never
// touch the work at all.
//
// Run with: go run ./examples/taskqueue
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"nectar"
	"nectar/internal/nectarine"
	"nectar/internal/rt/mailbox"
	"nectar/internal/sim"
)

const (
	nWorkers = 4
	nTasks   = 32
	span     = 100_000 // numbers summed per task
)

func main() {
	cl := nectar.NewCluster(nil)
	master := cl.AddNode()
	results := master.Mailboxes.Create("tq.results")

	// Workers: application tasks on each worker node's CAB. Each pulls
	// work from its own queue mailbox, runs the kernel (here: summing a
	// range, standing in for a COSMOS-style simulation slice), and sends
	// the result back over the datagram transport.
	var queues []*mailbox.Mailbox
	for w := 0; w < nWorkers; w++ {
		n := cl.AddNode()
		q := n.Mailboxes.Create(fmt.Sprintf("tq.worker%d", w))
		queues = append(queues, q)
		n.API.RunOnCAB(fmt.Sprintf("worker%d", w), func(ep *nectarine.Endpoint) {
			for {
				req := ep.Get(q)
				lo := binary.BigEndian.Uint32(req[0:])
				hi := binary.BigEndian.Uint32(req[4:])
				// Charge the kernel's CPU time on the CAB.
				ep.Thread().Compute(sim.Duration(hi-lo) * 10 * sim.Nanosecond)
				var sum uint64
				for v := lo; v < hi; v++ {
					sum += uint64(v)
				}
				var rep [16]byte
				binary.BigEndian.PutUint32(rep[0:], lo)
				binary.BigEndian.PutUint64(rep[8:], sum)
				ep.SendDatagram(results.Addr(), rep[:])
			}
		})
	}

	// Master: scatter ranges round-robin, then gather and combine.
	master.API.RunOnHost("master", func(ep *nectarine.Endpoint) {
		start := ep.Thread().Now()
		for i := 0; i < nTasks; i++ {
			var req [8]byte
			binary.BigEndian.PutUint32(req[0:], uint32(i*span))
			binary.BigEndian.PutUint32(req[4:], uint32((i+1)*span))
			ep.SendDatagram(queues[i%nWorkers].Addr(), req[:])
		}
		var total uint64
		for i := 0; i < nTasks; i++ {
			rep := ep.GetPoll(results)
			total += binary.BigEndian.Uint64(rep[8:])
		}
		elapsed := sim.Duration(ep.Thread().Now() - start)
		n := uint64(nTasks) * span
		want := n * (n - 1) / 2
		fmt.Printf("scattered %d tasks over %d CAB-resident workers\n", nTasks, nWorkers)
		fmt.Printf("combined result: %d (expected %d, match=%v)\n", total, want, total == want)
		fmt.Printf("virtual elapsed: %v\n", elapsed)
	})

	if err := cl.RunFor(5 * sim.Second); err != nil {
		log.Fatal(err)
	}
}
