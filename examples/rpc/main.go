// RPC example: a remote key-value service whose marshaling and transport
// run through the Nectar request-response protocol — the paper's
// client-server RPC usage (§4, §5.3), including the presentation-layer
// offload idea: the server task runs ON the communication processor, so
// the host on node B is never involved in serving requests.
//
// Run with: go run ./examples/rpc
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"nectar"
	"nectar/internal/nectarine"
	"nectar/internal/sim"
)

// Tiny wire format for the KV service: op(1) keylen(1) key vallen(2) val.
const (
	opPut = 1
	opGet = 2
)

func marshalReq(op byte, key string, val []byte) []byte {
	b := []byte{op, byte(len(key))}
	b = append(b, key...)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(val)))
	b = append(b, l[:]...)
	return append(b, val...)
}

func unmarshalReq(b []byte) (op byte, key string, val []byte) {
	op = b[0]
	kl := int(b[1])
	key = string(b[2 : 2+kl])
	vl := int(binary.BigEndian.Uint16(b[2+kl:]))
	val = b[4+kl : 4+kl+vl]
	return
}

func main() {
	cl := nectar.NewCluster(nil)
	a := cl.AddNode() // client host
	b := cl.AddNode() // server node: the service lives on the CAB

	service := b.Mailboxes.Create("kv.service")

	// The KV store executes as an application task on node B's
	// communication processor. Node B's host stays idle: this is the
	// "application-level communication engine" usage of §5.3.
	b.API.RunOnCAB("kv-server", func(ep *nectarine.Endpoint) {
		store := map[string][]byte{}
		for {
			ep.Serve(service, func(req []byte) []byte {
				op, key, val := unmarshalReq(req)
				switch op {
				case opPut:
					store[key] = append([]byte(nil), val...)
					return []byte("ok")
				case opGet:
					if v, ok := store[key]; ok {
						return v
					}
					return []byte{}
				}
				return []byte("bad-op")
			})
		}
	})

	// The client is an ordinary host process on node A.
	a.API.RunOnHost("client", func(ep *nectarine.Endpoint) {
		replyBox := ep.NewMailbox("kv.reply")
		call := func(req []byte) []byte {
			out, err := ep.Call(service.Addr(), req, replyBox)
			if err != nil {
				log.Fatal(err)
			}
			return out
		}

		start := ep.Thread().Now()
		fmt.Printf("put nectar=1990:  %s\n", call(marshalReq(opPut, "nectar", []byte("1990"))))
		fmt.Printf("put venue=SIGCOMM: %s\n", call(marshalReq(opPut, "venue", []byte("SIGCOMM"))))
		fmt.Printf("get nectar:       %s\n", call(marshalReq(opGet, "nectar", nil)))
		fmt.Printf("get venue:        %s\n", call(marshalReq(opGet, "venue", nil)))
		fmt.Printf("get missing:      %q\n", call(marshalReq(opGet, "missing", nil)))
		elapsed := sim.Duration(ep.Thread().Now() - start)
		fmt.Printf("\n5 RPCs in %v virtual time (%.0f us per call; paper: <500 us)\n",
			elapsed, elapsed.Micros()/5)
	})

	if err := cl.RunFor(100 * sim.Millisecond); err != nil {
		log.Fatal(err)
	}
}
