// Quickstart: bring up a two-node Nectar cluster, exchange messages over
// the three Nectar transports through the Nectarine application interface,
// and print what the hardware did — a condensed tour of the paper's
// system.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nectar"
	"nectar/internal/nectarine"
	"nectar/internal/sim"
)

func main() {
	cl := nectar.NewCluster(nil) // the paper's 1990 cost model
	a := cl.AddNode()
	b := cl.AddNode()

	// A mailbox on node B with a network-wide address (paper §3.3).
	sink := b.Mailboxes.Create("quickstart.sink")

	// A receiving application task on host B: polls the mailbox the way
	// the paper's low-latency receive path does (§6.1).
	b.API.RunOnHost("receiver", func(ep *nectarine.Endpoint) {
		for i := 0; i < 3; i++ {
			msg := ep.GetPoll(sink)
			fmt.Printf("[%8v] host B received %q\n", ep.Thread().Now(), msg)
		}
	})

	// A sending application task on host A: one unreliable datagram, one
	// acknowledged RMP message, then an RPC to a CAB-resident service.
	service := b.Mailboxes.Create("quickstart.echo")
	b.API.RunOnCAB("echo-server", func(ep *nectarine.Endpoint) {
		for {
			ep.Serve(service, func(req []byte) []byte {
				return append([]byte("echoed: "), req...)
			})
		}
	})

	a.API.RunOnHost("sender", func(ep *nectarine.Endpoint) {
		t0 := ep.Thread().Now()
		ep.SendDatagram(sink.Addr(), []byte("unreliable datagram"))
		fmt.Printf("[%8v] host A sent datagram (fire-and-forget)\n", ep.Thread().Now())

		st := ep.SendReliable(sink.Addr(), []byte("reliable message (RMP)"))
		fmt.Printf("[%8v] host A RMP acknowledged, status=%d\n", ep.Thread().Now(), st)

		ep.SendDatagram(sink.Addr(), []byte("one more datagram"))

		replyBox := ep.NewMailbox("quickstart.reply")
		reply, err := ep.Call(service.Addr(), []byte("hello CAB"), replyBox)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] host A RPC reply: %q\n", ep.Thread().Now(), reply)
		fmt.Printf("total virtual time for the session: %v\n",
			sim.Duration(ep.Thread().Now()-t0))
	})

	if err := cl.RunFor(50 * sim.Millisecond); err != nil {
		log.Fatal(err)
	}

	txA, _, _ := a.CAB.Stats()
	_, rxB, _ := b.CAB.Stats()
	fmt.Printf("\nhardware: CAB A transmitted %d frames, CAB B received %d frames\n", txA, rxB)
	fmt.Printf("CAB B heap in use: %d bytes (all message buffers returned)\n", b.CAB.Heap.Used())
}
