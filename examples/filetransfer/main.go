// File-transfer example over the §5.2 Berkeley-socket emulation: a host
// process uploads a "file" through the familiar connect/send API while all
// TCP processing — segmentation, checksums, acks, retransmission — runs on
// the communication processors. The fiber is made lossy mid-transfer to
// show the offloaded stack recovering without the hosts noticing.
//
// Run with: go run ./examples/filetransfer
package main

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"log"

	"nectar"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

const fileSize = 96 << 10 // 96 KB

func main() {
	cl := nectar.NewCluster(nil)
	a := cl.AddNode()
	b := cl.AddNode()

	// Synthesize the "file" and its checksum.
	file := make([]byte, fileSize)
	for i := range file {
		file[i] = byte(i*2654435761 + i>>8)
	}
	wantSum := crc32.ChecksumIEEE(file)

	ln, err := b.Sockets.Listen(2049)
	if err != nil {
		log.Fatal(err)
	}

	done := false
	var received []byte
	var elapsed sim.Duration
	b.Host.Run("fileserver", func(t *threads.Thread) {
		ctx := exec.OnHost(t, b.Host)
		conn, err := ln.Accept(ctx)
		if err != nil {
			cl.K.Fatalf("accept: %v", err)
		}
		start := t.Now()
		for {
			chunk := conn.Recv(ctx)
			if chunk == nil {
				break
			}
			received = append(received, chunk...)
		}
		elapsed = sim.Duration(t.Now() - start)
		done = true
	})

	a.Host.Run("uploader", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a.Host)
		conn, err := a.Sockets.Connect(ctx, wire.NodeIP(b.ID), 2049)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
		// Make the fiber lossy for the middle of the transfer.
		a.CAB.OutLink().SetFaultFn(func(seq uint64) (bool, bool) {
			return seq%23 == 7, seq%31 == 11 // periodic drops and corruptions
		})
		for off := 0; off < len(file); off += 8192 {
			endOff := off + 8192
			if endOff > len(file) {
				endOff = len(file)
			}
			if err := conn.Send(ctx, file[off:endOff]); err != nil {
				cl.K.Fatalf("send: %v", err)
			}
		}
		a.CAB.OutLink().SetFaultFn(nil)
		if err := conn.Close(ctx); err != nil {
			cl.K.Fatalf("close: %v", err)
		}
	})

	for !done {
		if err := cl.RunFor(50 * sim.Millisecond); err != nil {
			log.Fatal(err)
		}
		if cl.Now() > sim.Time(120*sim.Second) {
			log.Fatal("transfer stalled")
		}
	}

	gotSum := crc32.ChecksumIEEE(received)
	retrans := a.TCP.Stats().Retransmits
	_, _, crcErr := b.CAB.Stats()
	fmt.Printf("transferred %d bytes in %v virtual time (%.1f Mbit/s effective)\n",
		len(received), elapsed, float64(len(received))*8/elapsed.Seconds()/1e6)
	fmt.Printf("integrity: sent crc32=%08x received crc32=%08x match=%v bytes-equal=%v\n",
		wantSum, gotSum, wantSum == gotSum, bytes.Equal(received, file))
	fmt.Printf("the CABs absorbed the damage: %d TCP retransmissions, %d hardware CRC rejections\n",
		retrans, crcErr)
}
