// Lock-server example: the paper's §5.3 proposal to offload Camelot's
// distributed locking to the communication processor. The lock table and
// its manager run as a task on one node's CAB; client transactions on
// other hosts acquire and release locks with request-response calls that
// never touch the server node's host CPU.
//
// Run with: go run ./examples/lockserver
package main

import (
	"fmt"
	"log"

	"nectar"
	"nectar/internal/nectarine"
	"nectar/internal/sim"
)

const (
	opAcquire = 'A'
	opRelease = 'R'
)

func main() {
	cl := nectar.NewCluster(nil)
	server := cl.AddNode()
	service := server.Mailboxes.Create("locks.service")

	// The lock manager: a CAB-resident task. Requests are one byte of
	// opcode, one byte of lock id, and the client's transaction id.
	// Acquire replies "+" on success and "-" when the lock is busy
	// (clients retry — at-most-once RPC cannot park a reply forever).
	server.API.RunOnCAB("lock-manager", func(ep *nectarine.Endpoint) {
		owner := map[byte]byte{} // lock id -> transaction id
		for {
			ep.Serve(service, func(req []byte) []byte {
				op, lock, txn := req[0], req[1], req[2]
				switch op {
				case opAcquire:
					if holder, held := owner[lock]; held && holder != txn {
						return []byte{'-'}
					}
					owner[lock] = txn
					return []byte{'+'}
				case opRelease:
					if owner[lock] == txn {
						delete(owner, lock)
					}
					return []byte{'+'}
				}
				return []byte{'?'}
			})
		}
	})

	// Three client hosts run transactions that contend for two locks.
	type stats struct{ acquired, retries int }
	var perClient [3]stats
	for c := 0; c < 3; c++ {
		c := c
		node := cl.AddNode()
		node.API.RunOnHost(fmt.Sprintf("txn%d", c), func(ep *nectarine.Endpoint) {
			replyBox := ep.NewMailbox("locks.reply")
			call := func(op, lock, txn byte) byte {
				out, err := ep.Call(service.Addr(), []byte{op, lock, txn}, replyBox)
				if err != nil {
					log.Fatal(err)
				}
				return out[0]
			}
			txn := byte(c + 1)
			for round := 0; round < 4; round++ {
				lock := byte(round % 2)
				// Acquire with retry on contention.
				for call(opAcquire, lock, txn) != '+' {
					perClient[c].retries++
					ep.Thread().Sleep(300 * sim.Microsecond)
				}
				perClient[c].acquired++
				// Hold the lock while doing some "transaction work".
				ep.Thread().Compute(500 * sim.Microsecond)
				call(opRelease, lock, txn)
			}
		})
	}

	if err := cl.RunFor(1 * sim.Second); err != nil {
		log.Fatal(err)
	}
	total := 0
	for c, s := range perClient {
		fmt.Printf("client %d: %d acquisitions, %d contention retries\n", c, s.acquired, s.retries)
		total += s.acquired
	}
	fmt.Printf("lock manager served %d acquisitions on the CAB; server host stayed idle\n", total)
	if total != 12 {
		log.Fatalf("expected 12 acquisitions, got %d", total)
	}
}
