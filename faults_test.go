package nectar

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"nectar/internal/proto/nectar"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Property: under arbitrary (bounded) loss and corruption patterns on
// both directions of the fiber, RMP delivers every message exactly once,
// in order, with intact contents.
func TestRMPExactlyOnceUnderRandomFaults(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cl, a, b := twoNodes(t, nil)
			sink := b.Mailboxes.Create("sink")

			// ~15% drop, ~10% corrupt across both directions. Both links
			// share one fault budget: after 3 faults without a forced
			// clean window, 4 frames pass untouched on both links —
			// enough for a full data+ack round trip — so no message can
			// exhaust MaxRetries (a lost data frame and a lost ack both
			// fail an attempt, which is why per-link budgets don't
			// compose).
			joint := &jointFaults{rng: rng}
			a.CAB.OutLink().SetFaultFn(joint.fn())
			b.CAB.OutLink().SetFaultFn(joint.fn())

			const n = 30
			var sent [][]byte
			var got [][]byte
			a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
				ctx := exec.OnCAB(th)
				for i := 0; i < n; i++ {
					msg := make([]byte, 10+rng.Intn(500))
					rng.Read(msg)
					sent = append(sent, msg)
					if st := a.Transports.RMP.SendBlocking(ctx, wire.MailboxAddr{Node: b.ID, Box: sink.ID()}, 0, msg); st != nectar.StatusOK {
						cl.K.Fatalf("send %d failed: status %d", i, st)
					}
				}
			})
			b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
				ctx := exec.OnCAB(th)
				for i := 0; i < n; i++ {
					m := sink.BeginGet(ctx)
					got = append(got, append([]byte(nil), m.Data()...))
					sink.EndGet(ctx, m)
				}
			})
			if err := cl.RunFor(30 * sim.Second); err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("delivered %d of %d", len(got), n)
			}
			for i := range got {
				if !bytes.Equal(got[i], sent[i]) {
					t.Fatalf("message %d corrupted or reordered", i)
				}
			}
			if sink.Pending() != 0 {
				t.Error("duplicate deliveries left in the sink")
			}
		})
	}
}

// jointFaults injects drops/corruption with a shared streak budget across
// every link it is installed on, guaranteeing periodic clean windows long
// enough for one full request+acknowledgment exchange.
type jointFaults struct {
	rng    *rand.Rand
	streak int
	forced int
}

func (j *jointFaults) fn() func(uint64) (bool, bool) {
	return func(seq uint64) (bool, bool) {
		if j.streak >= 3 {
			j.forced++
			if j.forced >= 4 {
				j.streak, j.forced = 0, 0
			}
			return false, false
		}
		switch j.rng.Intn(20) {
		case 0, 1, 2:
			j.streak++
			return true, false
		case 3, 4:
			j.streak++
			return false, true
		}
		return false, false
	}
}

// Property: a TCP stream crossing a lossy fiber arrives complete, in
// order, and byte-identical — the checksum/CRC machinery and go-back-N
// retransmission must mask every fault.
func TestTCPStreamIntegrityUnderRandomFaults(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cl, a, b := twoNodes(t, nil)
			ln, _ := b.TCP.Listen(80)

			// Start faults only after the handshake to keep setup simple.
			const dropPct = 10
			armed := false
			fault := func(r *rand.Rand) func(uint64) (bool, bool) {
				return func(seq uint64) (bool, bool) {
					if !armed {
						return false, false
					}
					v := r.Intn(100)
					return v < dropPct, v >= dropPct && v < dropPct+5
				}
			}
			a.CAB.OutLink().SetFaultFn(fault(rng))
			b.CAB.OutLink().SetFaultFn(fault(rand.New(rand.NewSource(seed + 7))))

			payload := make([]byte, 40<<10)
			rand.New(rand.NewSource(seed + 99)).Read(payload)
			var received []byte
			b.CAB.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
				ctx := exec.OnCAB(th)
				c := ln.Accept(ctx)
				for {
					m := c.Recv(ctx)
					if m == nil {
						return
					}
					received = append(received, m.Data()...)
					c.RecvDone(ctx, m)
				}
			})
			a.CAB.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
				ctx := exec.OnCAB(th)
				c, err := a.TCP.Connect(ctx, wire.NodeIP(b.ID), 80)
				if err != nil {
					cl.K.Fatalf("connect: %v", err)
				}
				armed = true
				for off := 0; off < len(payload); off += 4096 {
					c.Send(ctx, payload[off:off+4096])
				}
				armed = false // let the FIN handshake through cleanly
				c.Close(ctx)
			})
			if err := cl.RunFor(60 * sim.Second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(received, payload) {
				t.Fatalf("stream corrupted: %d bytes received, want %d (equal=%v)",
					len(received), len(payload), bytes.Equal(received, payload))
			}
			retrans := a.TCP.Stats().Retransmits
			if retrans == 0 {
				t.Error("fault injection never triggered a retransmission")
			}
		})
	}
}

// Property: RRP calls complete with OK status and correct replies under
// loss, and the service executes each request at most once.
func TestRRPAtMostOnceUnderRandomFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cl, a, b := twoNodes(t, nil)
	service := b.Mailboxes.Create("svc")
	replyBox := a.Mailboxes.Create("rep")
	joint := &jointFaults{rng: rng}
	a.CAB.OutLink().SetFaultFn(joint.fn())
	b.CAB.OutLink().SetFaultFn(joint.fn())

	executed := map[string]int{}
	b.CAB.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for {
			m := service.BeginGet(ctx)
			req := string(m.Data())
			executed[req]++
			b.Transports.RRP.Reply(ctx, m, []byte("ack:"+req))
			service.EndGet(ctx, m)
		}
	})
	const n = 20
	ok := 0
	a.CAB.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := 0; i < n; i++ {
			req := fmt.Sprintf("call-%d", i)
			st := a.Syncs.Alloc(ctx)
			a.Transports.RRP.Call(ctx, wire.MailboxAddr{Node: b.ID, Box: service.ID()}, []byte(req), replyBox, st)
			if st.Read(ctx) != nectar.StatusOK {
				cl.K.Fatalf("call %d failed", i)
			}
			m := replyBox.BeginGet(ctx)
			if string(m.Data()) != "ack:"+req {
				cl.K.Fatalf("call %d wrong reply %q", i, m.Data())
			}
			replyBox.EndGet(ctx, m)
			ok++
		}
	})
	if err := cl.RunFor(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if ok != n {
		t.Fatalf("completed %d of %d calls", ok, n)
	}
	for req, count := range executed {
		if count > 1 {
			t.Errorf("request %q executed %d times (at-most-once violated)", req, count)
		}
	}
}
