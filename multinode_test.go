package nectar

import (
	"fmt"
	"testing"

	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Five nodes, all-pairs RMP traffic: per-peer protocol state must stay
// independent and every message must arrive exactly once.
func TestMultiNodeAllPairsRMP(t *testing.T) {
	cl := NewCluster(nil)
	const nNodes = 5
	const perPair = 6
	var nodes []*Node
	var sinks []*mailbox.Mailbox
	for i := 0; i < nNodes; i++ {
		n := cl.AddNode()
		nodes = append(nodes, n)
		sink := n.Mailboxes.Create(fmt.Sprintf("sink%d", i))
		sink.SetCapacity(1 << 20)
		sinks = append(sinks, sink)
	}
	type key struct{ from, to, seq byte }
	got := map[key]int{}
	remaining := nNodes
	for i := range nodes {
		i := i
		nodes[i].CAB.Sched.Fork("drain", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for n := 0; n < (nNodes-1)*perPair; n++ {
				m := sinks[i].BeginGet(ctx)
				got[key{m.Data()[0], byte(i), m.Data()[1]}]++
				sinks[i].EndGet(ctx, m)
			}
			remaining--
		})
	}
	for i := range nodes {
		i := i
		nodes[i].CAB.Sched.Fork("blast", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for j := range nodes {
				if j == i {
					continue
				}
				for s := byte(0); s < perPair; s++ {
					addr := wire.MailboxAddr{Node: nodes[j].ID, Box: sinks[j].ID()}
					if st := nodes[i].Transports.RMP.SendBlocking(ctx, addr, 0, []byte{byte(i), s, 0, 0}); st != 1 {
						cl.K.Fatalf("send %d->%d failed: %d", i, j, st)
					}
				}
			}
		})
	}
	for remaining > 0 {
		if err := cl.RunFor(50 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if cl.Now() > sim.Time(60*sim.Second) {
			t.Fatalf("all-pairs traffic stalled with %d drains outstanding", remaining)
		}
	}
	for i := 0; i < nNodes; i++ {
		for j := 0; j < nNodes; j++ {
			if i == j {
				continue
			}
			for s := byte(0); s < perPair; s++ {
				if c := got[key{byte(i), byte(j), s}]; c != 1 {
					t.Errorf("message %d->%d #%d delivered %d times", i, j, s, c)
				}
			}
		}
	}
}

// Several TCP connections between the same pair of nodes must multiplex
// over one IP/datalink path without crosstalk.
func TestTCPConcurrentConnections(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	const nConns = 3
	results := map[uint16][]byte{}
	remaining := nConns
	for i := 0; i < nConns; i++ {
		port := uint16(8000 + i)
		ln, err := b.TCP.Listen(port)
		if err != nil {
			t.Fatal(err)
		}
		b.CAB.Sched.Fork(fmt.Sprintf("srv%d", i), threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			c := ln.Accept(ctx)
			for {
				m := c.Recv(ctx)
				if m == nil {
					break
				}
				results[port] = append(results[port], m.Data()...)
				c.RecvDone(ctx, m)
			}
			remaining--
		})
		a.CAB.Sched.Fork(fmt.Sprintf("cli%d", i), threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			c, err := a.TCP.Connect(ctx, wire.NodeIP(b.ID), port)
			if err != nil {
				cl.K.Fatalf("connect %d: %v", port, err)
			}
			for r := 0; r < 4; r++ {
				c.Send(ctx, []byte(fmt.Sprintf("conn%d-msg%d;", port, r)))
			}
			c.Close(ctx)
		})
	}
	for remaining > 0 {
		if err := cl.RunFor(50 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if cl.Now() > sim.Time(30*sim.Second) {
			t.Fatal("connections stalled")
		}
	}
	for i := 0; i < nConns; i++ {
		port := uint16(8000 + i)
		want := fmt.Sprintf("conn%d-msg0;conn%d-msg1;conn%d-msg2;conn%d-msg3;", port, port, port, port)
		if string(results[port]) != want {
			t.Errorf("port %d: got %q", port, results[port])
		}
	}
}
