package mailbox

import (
	"bytes"
	"fmt"
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/host"
	"nectar/internal/model"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

type rig struct {
	k  *sim.Kernel
	c  *cab.CAB
	h  *host.Host
	f  *hostif.IF
	rt *Runtime
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	c := cab.New(k, cost, 1)
	h := host.New(k, cost, "host1", c)
	f := hostif.New(h, c)
	rt := NewRuntime(c)
	rt.AttachHost(f)
	return &rig{k: k, c: c, h: h, f: f, rt: rt}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetOnCAB(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	var got []byte
	r.c.Sched.Fork("writer", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := mb.BeginPut(ctx, 11)
		m.Write(ctx, 0, []byte("hello world"))
		mb.EndPut(ctx, m)
	})
	r.c.Sched.Fork("reader", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := mb.BeginGet(ctx)
		got = append([]byte(nil), m.Data()...)
		mb.EndGet(ctx, m)
	})
	r.run(t)
	if string(got) != "hello world" {
		t.Errorf("got %q", got)
	}
}

func TestReaderBlocksUntilMessage(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	var gotAt sim.Time
	r.c.Sched.Fork("reader", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := mb.BeginGet(ctx)
		gotAt = th.Now()
		mb.EndGet(ctx, m)
	})
	r.c.Sched.Fork("writer", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(300 * sim.Microsecond)
		ctx := exec.OnCAB(th)
		m := mb.BeginPut(ctx, 4)
		m.Write(ctx, 0, []byte("ping"))
		mb.EndPut(ctx, m)
	})
	r.run(t)
	if gotAt < sim.Time(300*sim.Microsecond) {
		t.Errorf("reader returned at %v, before the write", gotAt)
	}
}

func TestFIFOOrder(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	var got []byte
	r.c.Sched.Fork("writer", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := byte(0); i < 10; i++ {
			m := mb.BeginPut(ctx, 1)
			m.Data()[0] = i
			mb.EndPut(ctx, m)
		}
	})
	r.c.Sched.Fork("reader", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := 0; i < 10; i++ {
			m := mb.BeginGet(ctx)
			got = append(got, m.Data()[0])
			mb.EndGet(ctx, m)
		}
	})
	r.run(t)
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestBeginPutBlocksWhenFull(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	mb.SetCapacity(1024)
	var secondAt sim.Time
	r.c.Sched.Fork("writer", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m1 := mb.BeginPut(ctx, 1000)
		mb.EndPut(ctx, m1)
		m2 := mb.BeginPut(ctx, 1000) // must block until reader frees m1
		secondAt = th.Now()
		mb.EndPut(ctx, m2)
	})
	r.c.Sched.Fork("reader", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(400 * sim.Microsecond)
		ctx := exec.OnCAB(th)
		m := mb.BeginGet(ctx)
		mb.EndGet(ctx, m)
		m2 := mb.BeginGet(ctx)
		mb.EndGet(ctx, m2)
	})
	r.run(t)
	if secondAt < sim.Time(400*sim.Microsecond) {
		t.Errorf("second BeginPut returned at %v, before space was freed", secondAt)
	}
}

func TestBeginPutNBFailsWhenFull(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	mb.SetCapacity(512)
	var nb *Msg
	okPath := false
	r.c.Sched.Fork("w", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := mb.BeginPut(ctx, 512)
		nb = mb.BeginPutNB(ctx, 512)
		okPath = true
		mb.EndPut(ctx, m)
		got := mb.BeginGet(ctx)
		mb.EndGet(ctx, got)
	})
	r.run(t)
	if !okPath {
		t.Fatal("writer did not complete")
	}
	if nb != nil {
		t.Error("BeginPutNB succeeded on a full mailbox")
	}
}

func TestCachedSmallBuffer(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	allocs0 := r.c.Heap.Allocs()
	r.c.Sched.Fork("w", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := 0; i < 5; i++ {
			m := mb.BeginPut(ctx, 64) // <= CachedBufSize
			mb.EndPut(ctx, m)
			g := mb.BeginGet(ctx)
			mb.EndGet(ctx, g)
		}
	})
	r.run(t)
	if allocs := r.c.Heap.Allocs() - allocs0; allocs != 0 {
		t.Errorf("%d heap allocs for small messages, want 0 (cached buffer)", allocs)
	}
}

func TestLargeMessageUsesHeap(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	allocs0 := r.c.Heap.Allocs()
	r.c.Sched.Fork("w", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := mb.BeginPut(ctx, 4096)
		mb.EndPut(ctx, m)
		g := mb.BeginGet(ctx)
		mb.EndGet(ctx, g)
	})
	r.run(t)
	if allocs := r.c.Heap.Allocs() - allocs0; allocs != 1 {
		t.Errorf("allocs = %d, want 1", allocs)
	}
	if r.c.Heap.Used() != CachedBufSize {
		t.Errorf("leak: heap used = %d, want only the cached buffer (%d)", r.c.Heap.Used(), CachedBufSize)
	}
}

func TestTrimPrefixSuffix(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	var got []byte
	r.c.Sched.Fork("w", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := mb.BeginPut(ctx, 12)
		m.Write(ctx, 0, []byte("HDRpayloadTL"))
		mb.EndPut(ctx, m)
		g := mb.BeginGet(ctx)
		g.TrimPrefix(ctx, 3)
		g.TrimSuffix(ctx, 2)
		got = append([]byte(nil), g.Data()...)
		mb.EndGet(ctx, g)
	})
	r.run(t)
	if string(got) != "payload" {
		t.Errorf("got %q, want \"payload\"", got)
	}
}

func TestEnqueueMovesWithoutCopy(t *testing.T) {
	r := newRig(t)
	a := r.rt.Create("a")
	b := r.rt.Create("b")
	var fromB []byte
	var sameBacking bool
	r.c.Sched.Fork("w", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := a.BeginPut(ctx, 300) // > cache size: heap buffer
		m.Write(ctx, 0, bytes.Repeat([]byte("x"), 300))
		orig := &m.Data()[0]
		a.EndPut(ctx, m)

		g := a.BeginGet(ctx)
		a.Enqueue(ctx, g, b)

		got := b.BeginGet(ctx)
		sameBacking = orig == &got.Data()[0]
		fromB = append([]byte(nil), got.Data()...)
		b.EndGet(ctx, got)
	})
	r.run(t)
	if len(fromB) != 300 {
		t.Fatalf("message lost in Enqueue: %d bytes", len(fromB))
	}
	if !sameBacking {
		t.Error("Enqueue copied the data")
	}
	if r.c.Heap.Used() != 2*CachedBufSize {
		t.Errorf("heap used = %d after EndGet, want only the two cached buffers", r.c.Heap.Used())
	}
}

func TestUpcallRunsInWriterContext(t *testing.T) {
	// Paper §3.3: attaching the server body as a reader upcall converts a
	// cross-thread call into a local one — no context switch.
	r := newRig(t)
	mb := r.rt.Create("server")
	var served []byte
	mb.SetUpcall(func(t2 *threads.Thread, box *Mailbox) {
		ctx := exec.OnCAB(t2)
		m := box.BeginGetNB(ctx)
		if m == nil {
			return
		}
		served = append(served, m.Data()[0])
		box.EndGet(ctx, m)
	})
	switches0 := r.c.Sched.Switches()
	r.c.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := byte(0); i < 3; i++ {
			m := mb.BeginPut(ctx, 1)
			m.Data()[0] = i
			mb.EndPut(ctx, m)
		}
	})
	r.run(t)
	if len(served) != 3 {
		t.Fatalf("served %d of 3", len(served))
	}
	// One switch to dispatch the client; the upcalls add none.
	if sw := r.c.Sched.Switches() - switches0; sw > 1 {
		t.Errorf("switches = %d, want <= 1 (upcall must not context-switch)", sw)
	}
}

func TestHostPutCABGet(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	var got []byte
	r.h.Run("producer", func(th *threads.Thread) {
		ctx := exec.OnHost(th, r.h)
		m := mb.BeginPut(ctx, 5)
		m.Write(ctx, 0, []byte("hi512"))
		mb.EndPut(ctx, m)
	})
	r.c.Sched.Fork("consumer", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := mb.BeginGet(ctx)
		got = append([]byte(nil), m.Data()...)
		mb.EndGet(ctx, m)
	})
	r.run(t)
	if string(got) != "hi512" {
		t.Errorf("got %q", got)
	}
}

func TestCABPutHostGetPolling(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	var got []byte
	var when sim.Time
	r.h.Run("consumer", func(th *threads.Thread) {
		ctx := exec.OnHost(th, r.h)
		m := mb.BeginGetPoll(ctx)
		got = make([]byte, m.Len())
		m.Read(ctx, 0, got)
		mb.EndGet(ctx, m)
		when = th.Now()
	})
	r.c.Sched.Fork("producer", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(250 * sim.Microsecond)
		ctx := exec.OnCAB(th)
		m := mb.BeginPut(ctx, 3)
		m.Write(ctx, 0, []byte("abc"))
		mb.EndPut(ctx, m)
	})
	r.run(t)
	if string(got) != "abc" {
		t.Errorf("got %q", got)
	}
	if when < sim.Time(250*sim.Microsecond) {
		t.Error("host got the message before it was put")
	}
}

func TestHostGetBlocking(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	var got []byte
	r.h.Run("server", func(th *threads.Thread) {
		ctx := exec.OnHost(th, r.h)
		m := mb.BeginGet(ctx) // blocking wait in the driver
		got = make([]byte, m.Len())
		m.Read(ctx, 0, got)
		mb.EndGet(ctx, m)
	})
	r.c.Sched.Fork("producer", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(1 * sim.Millisecond)
		ctx := exec.OnCAB(th)
		m := mb.BeginPut(ctx, 2)
		m.Write(ctx, 0, []byte("ok"))
		mb.EndPut(ctx, m)
	})
	r.run(t)
	if string(got) != "ok" {
		t.Errorf("got %q", got)
	}
}

func TestHostRPCImplementation(t *testing.T) {
	// The RPC-based host implementation must be functionally identical.
	r := newRig(t)
	mb := r.rt.Create("box")
	mb.SetHostRPC(true)
	var got []byte
	r.h.Run("producer", func(th *threads.Thread) {
		ctx := exec.OnHost(th, r.h)
		m := mb.BeginPut(ctx, 4)
		m.Write(ctx, 0, []byte("rpc!"))
		mb.EndPut(ctx, m)
	})
	r.c.Sched.Fork("consumer", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := mb.BeginGet(ctx)
		got = append([]byte(nil), m.Data()...)
		mb.EndGet(ctx, m)
	})
	r.run(t)
	if string(got) != "rpc!" {
		t.Errorf("got %q", got)
	}
}

func TestSharedMemFasterThanRPC(t *testing.T) {
	// E8 (paper §3.3): the shared-memory implementation is about a factor
	// of two faster than the RPC-based one for host mailbox operations.
	elapsed := func(rpc bool) sim.Duration {
		r := newRig(t)
		mb := r.rt.Create("box")
		mb.SetHostRPC(rpc)
		var total sim.Duration
		r.h.Run("bench", func(th *threads.Thread) {
			ctx := exec.OnHost(th, r.h)
			start := th.Now()
			for i := 0; i < 50; i++ {
				m := mb.BeginPut(ctx, 16)
				mb.EndPut(ctx, m)
				g := mb.BeginGetPoll(ctx)
				mb.EndGet(ctx, g)
			}
			total = sim.Duration(th.Now() - start)
		})
		r.run(t)
		return total
	}
	shared := elapsed(false)
	rpc := elapsed(true)
	ratio := float64(rpc) / float64(shared)
	if ratio < 1.5 || ratio > 4.0 {
		t.Errorf("RPC/shared ratio = %.2f (shared %v, rpc %v), want ~2x", ratio, shared, rpc)
	}
}

func TestMultipleReadersDrainConcurrently(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	var served [2][]byte
	for w := 0; w < 2; w++ {
		w := w
		r.c.Sched.Fork(fmt.Sprintf("worker%d", w), threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for i := 0; i < 5; i++ {
				m := mb.BeginGet(ctx)
				th.Compute(50 * sim.Microsecond) // simulate processing
				served[w] = append(served[w], m.Data()[0])
				mb.EndGet(ctx, m)
			}
		})
	}
	r.c.Sched.Fork("producer", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := byte(0); i < 10; i++ {
			m := mb.BeginPut(ctx, 1)
			m.Data()[0] = i
			mb.EndPut(ctx, m)
		}
	})
	r.run(t)
	if len(served[0])+len(served[1]) != 10 {
		t.Fatalf("served %d+%d of 10", len(served[0]), len(served[1]))
	}
	if len(served[0]) == 0 || len(served[1]) == 0 {
		t.Error("work not shared between readers")
	}
}

func TestLookup(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("box")
	got, ok := r.rt.Lookup(mb.ID())
	if !ok || got != mb {
		t.Error("Lookup failed")
	}
	if _, ok := r.rt.Lookup(9999); ok {
		t.Error("Lookup of unknown ID succeeded")
	}
	if mb.Addr().Node != 1 || mb.Addr().Box != mb.ID() {
		t.Errorf("Addr = %v", mb.Addr())
	}
}
