package mailbox

import (
	"fmt"
	"math/rand"
	"testing"

	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Property test: an arbitrary interleaving of producers, consumers and
// forwarders over a web of mailboxes must preserve the core invariants —
// no message lost, duplicated or corrupted; per-source FIFO order through
// any single path; and all buffer storage returned to the heap at the end.
func TestMailboxRandomOpsInvariants(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			r := newRig(t)
			heapBefore := r.c.Heap.Used()

			const nBoxes = 4
			const perProducer = 30
			var boxes []*Mailbox
			for i := 0; i < nBoxes; i++ {
				mb := r.rt.Create(fmt.Sprintf("web%d", i))
				mb.SetCapacity(1 << 20)
				boxes = append(boxes, mb)
			}
			final := r.rt.Create("final")
			final.SetCapacity(1 << 20)

			// Two producers write stamped messages into random boxes.
			type stamp struct{ producer, seq byte }
			for p := byte(0); p < 2; p++ {
				p := p
				delay := sim.Duration(rng.Intn(20)) * sim.Microsecond
				r.c.Sched.Fork(fmt.Sprintf("prod%d", p), threads.SystemPriority, func(th *threads.Thread) {
					ctx := exec.OnCAB(th)
					for i := byte(0); i < perProducer; i++ {
						mb := boxes[(int(p)*7+int(i))%nBoxes]
						size := 2 + (int(p)+int(i)*13)%400
						m := mb.BeginPut(ctx, size)
						m.Data()[0] = p
						m.Data()[1] = i
						mb.EndPut(ctx, m)
						th.Sleep(delay)
					}
				})
			}
			// Forwarders drain each web box and Enqueue (sometimes after a
			// trim) into the final box.
			for i := 0; i < nBoxes; i++ {
				i := i
				trim := rng.Intn(2) == 0
				r.c.Sched.Fork(fmt.Sprintf("fwd%d", i), threads.SystemPriority, func(th *threads.Thread) {
					ctx := exec.OnCAB(th)
					for {
						m := boxes[i].BeginGet(ctx)
						if trim && m.Len() > 4 {
							m.TrimSuffix(ctx, m.Len()-4)
						}
						boxes[i].Enqueue(ctx, m, final)
					}
				})
			}
			// Consumer: collect everything.
			got := map[stamp]int{}
			perSourceLast := map[byte]int{0: -1, 1: -1}
			fifoViolations := 0
			done := false
			r.c.Sched.Fork("consumer", threads.SystemPriority, func(th *threads.Thread) {
				ctx := exec.OnCAB(th)
				for n := 0; n < 2*perProducer; n++ {
					m := final.BeginGet(ctx)
					s := stamp{m.Data()[0], m.Data()[1]}
					got[s]++
					// FIFO holds per (producer, path); with random paths we
					// only check that per-producer sequence numbers seen via
					// the same box never regress. Weak check: count global
					// regressions for diagnostics only.
					if int(s.seq) < perSourceLast[s.producer] {
						fifoViolations++ // allowed across different paths
					}
					perSourceLast[s.producer] = int(s.seq)
					final.EndGet(ctx, m)
				}
				done = true
			})
			for !done {
				if err := r.k.RunFor(10 * sim.Millisecond); err != nil {
					t.Fatal(err)
				}
				if r.k.Now() > sim.Time(30*sim.Second) {
					t.Fatal("web stalled")
				}
			}
			// Exactly-once for every stamped message.
			for p := byte(0); p < 2; p++ {
				for i := byte(0); i < perProducer; i++ {
					if c := got[stamp{p, i}]; c != 1 {
						t.Errorf("message %d/%d delivered %d times", p, i, c)
					}
				}
			}
			// All storage back on the heap (only the per-mailbox cached
			// buffers remain allocated).
			wantResident := heapBefore + (nBoxes+1)*CachedBufSize
			if used := r.c.Heap.Used(); used != wantResident {
				t.Errorf("heap used = %d, want %d (buffers leaked)", used, wantResident)
			}
			if err := r.c.Heap.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// Single-path FIFO: messages from one producer through one box to one
// consumer arrive in exact order (the strong version of the property).
func TestMailboxSinglePathFIFO(t *testing.T) {
	r := newRig(t)
	mb := r.rt.Create("path")
	mb.SetCapacity(1 << 20)
	const n = 200
	var got []byte
	r.c.Sched.Fork("prod", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := 0; i < n; i++ {
			m := mb.BeginPut(ctx, 1)
			m.Data()[0] = byte(i)
			mb.EndPut(ctx, m)
		}
	})
	done := false
	r.c.Sched.Fork("cons", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := 0; i < n; i++ {
			m := mb.BeginGet(ctx)
			got = append(got, m.Data()[0])
			mb.EndGet(ctx, m)
		}
		done = true
	})
	for !done {
		if err := r.k.RunFor(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
}
