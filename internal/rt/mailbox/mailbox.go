// Package mailbox implements the CAB runtime system's mailboxes (paper
// §3.3): queues of messages with network-wide addresses, whose buffer
// space lives in CAB data memory so that host processes and CAB threads
// build and consume messages in place.
//
// The two-phase interface (Begin_Put/End_Put, Begin_Get/End_Get) lets
// writers fill message buffers and readers consume them with no copying;
// Enqueue moves a message between mailboxes by pointer surgery; and the
// trim operations remove a prefix or suffix in place — which is how IP
// strips headers and hands the remaining datagram to a higher protocol
// without touching the data (paper §4.1).
//
// Every operation takes an exec.Context identifying the caller (CAB thread
// or host process) and charges the corresponding costs. Host-side
// operations come in the two implementations the paper compares (§3.3): a
// shared-memory version that updates the data structures directly over the
// VME bus, and an RPC version that ships the operation to the CAB; the
// implementation is selected per mailbox, dynamically.
package mailbox

import (
	"fmt"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/mem"
	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// CachedBufSize is the size of the per-mailbox cached buffer that avoids
// heap allocation for small messages (paper §3.3).
const CachedBufSize = 256

// DefaultCapacity is the default per-mailbox buffer budget: the sum of
// queued and reserved message bytes a mailbox may hold before Begin_Put
// blocks.
const DefaultCapacity = 64 << 10

// Runtime is the mailbox subsystem of one CAB's runtime system.
type Runtime struct {
	cab    *cab.CAB
	iface  *hostif.IF // host signaling; nil until a host is attached
	cost   *model.CostModel
	boxes  map[wire.MailboxID]*Mailbox
	nextID wire.MailboxID

	obs       *obs.Observer
	queueWait *obs.Histogram // virtual time messages sit queued before Begin_Get
}

// NewRuntime creates the mailbox runtime for a CAB.
func NewRuntime(c *cab.CAB) *Runtime {
	r := &Runtime{
		cab:   c,
		cost:  c.Cost(),
		boxes: make(map[wire.MailboxID]*Mailbox),
	}
	r.obs = obs.Ensure(c.Kernel())
	m := r.obs.Metrics()
	scope := fmt.Sprintf("cab%d", c.Node())
	sum := func(f func(*Mailbox) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, mb := range r.boxes {
				n += f(mb)
			}
			return n
		}
	}
	m.Gauge(obs.LayerMailbox, "puts", scope, sum(func(mb *Mailbox) uint64 { return mb.puts }))
	m.Gauge(obs.LayerMailbox, "gets", scope, sum(func(mb *Mailbox) uint64 { return mb.gets }))
	m.Gauge(obs.LayerMailbox, "enqueues", scope, sum(func(mb *Mailbox) uint64 { return mb.enqueues }))
	r.queueWait = m.Histogram(obs.LayerMailbox, "queue_wait", scope)
	return r
}

// AttachHost connects the host interface used for signaling host readers
// and writers.
func (r *Runtime) AttachHost(f *hostif.IF) { r.iface = f }

// CAB returns the board this runtime manages.
func (r *Runtime) CAB() *cab.CAB { return r.cab }

// Create allocates a new mailbox with a fresh network-wide address.
func (r *Runtime) Create(name string) *Mailbox {
	r.nextID++
	return r.build(r.nextID, name)
}

// CreateWithID allocates a mailbox at a reserved well-known ID (used by
// runtime services that must be addressable before any exchange, like the
// Nectarine control task). It panics if the ID is taken.
func (r *Runtime) CreateWithID(id wire.MailboxID, name string) *Mailbox {
	if _, taken := r.boxes[id]; taken {
		sim.Panicf("mailbox: ID %d already in use", id)
	}
	return r.build(id, name)
}

func (r *Runtime) build(id wire.MailboxID, name string) *Mailbox {
	mb := &Mailbox{
		rt:       r,
		name:     name,
		id:       id,
		capacity: DefaultCapacity,
		notEmpty: threads.NewCond(r.cab.Sched, name+".notEmpty"),
		notFull:  threads.NewCond(r.cab.Sched, name+".notFull"),
		mu:       threads.NewMutex(name + ".mu"),
	}
	// The cached small buffer (allocated once, reused for small messages).
	if buf, addr, ok := r.cab.Heap.Alloc(CachedBufSize); ok {
		mb.cache = buf
		mb.cacheAddr = addr
		mb.cacheFree = true
	}
	r.boxes[mb.id] = mb
	return mb
}

// Lookup resolves a local mailbox ID (used by transports delivering
// network messages).
func (r *Runtime) Lookup(id wire.MailboxID) (*Mailbox, bool) {
	mb, ok := r.boxes[id]
	return mb, ok
}

// msgState tracks where a message's bytes are accounted.
type msgState int

const (
	stateReserved msgState = iota // between Begin_Put and End_Put: counted in owner.reserved
	stateQueued                   // in owner's queue: counted in owner.queued
	stateHeld                     // between Begin_Get and End_Get: held by the reader
)

// Msg is a message in a mailbox buffer. The data window [off, off+n) of
// the underlying allocation can be trimmed in place.
type Msg struct {
	rt     *Runtime
	buf    []byte // full allocation
	addr   mem.Addr
	cached *Mailbox // non-nil: buf is this mailbox's cached buffer
	off    int      // current window start
	n      int      // current window length
	state  msgState
	owner  *Mailbox // mailbox whose accounting covers this message

	// From records the sender's reply address when a transport delivered
	// this message from the network (paper §3.3: network-wide addressing
	// lets remote services be invoked; the transport keeps the requester's
	// address alongside the request).
	From wire.MailboxAddr
	// Tag carries transport metadata alongside a delivered message (the
	// request-response protocol's transaction ID, which Reply echoes).
	Tag uint32
	// Meta carries runtime-internal metadata for messages in protocol
	// send-request mailboxes (e.g. the status sync a host sender attached
	// to its request). On the real CAB this is a one-word CAB-memory
	// address inside the request; here it is an opaque reference.
	Meta any
	// Span is the trace span this message currently belongs to (0 when
	// tracing is off). Layers handing a message across a queue set it so
	// the consumer can parent its own spans causally.
	Span obs.SpanID

	queuedAt sim.Time // when the message entered its current queue
}

// Data returns the message's current data window (bytes in CAB memory).
func (m *Msg) Data() []byte { return m.buf[m.off : m.off+m.n] }

// Len returns the current window length.
func (m *Msg) Len() int { return m.n }

// TrimPrefix removes n bytes from the front of the message in place
// (paper §3.3: "removing a prefix or suffix of the message without doing
// any copying").
//
//nectar:hotpath
func (m *Msg) TrimPrefix(ctx exec.Context, n int) {
	if n < 0 || n > m.n {
		sim.Panicf("mailbox: TrimPrefix(%d) of %d-byte message", n, m.n)
	}
	ctx.Compute(m.rt.cost.MailboxEnqueue / 2)
	ctx.Words(2)
	m.off += n
	m.n -= n
}

// TrimSuffix removes n bytes from the end of the message in place.
//
//nectar:hotpath
func (m *Msg) TrimSuffix(ctx exec.Context, n int) {
	if n < 0 || n > m.n {
		sim.Panicf("mailbox: TrimSuffix(%d) of %d-byte message", n, m.n)
	}
	ctx.Compute(m.rt.cost.MailboxEnqueue / 2)
	ctx.Words(2)
	m.n -= n
}

// Write copies src into the message at offset off, charging the caller's
// data-path costs (PIO words from a host, a memory copy on the CAB).
func (m *Msg) Write(ctx exec.Context, off int, src []byte) {
	ctx.CopyIn(m.Data()[off:off+len(src)], src)
}

// Read copies the window [off, off+len(dst)) into dst.
func (m *Msg) Read(ctx exec.Context, off int, dst []byte) {
	ctx.CopyOut(dst, m.Data()[off:off+len(dst)])
}

// Mailbox is one message queue (paper §3.3).
type Mailbox struct {
	rt   *Runtime
	name string
	id   wire.MailboxID

	queue    []*Msg
	queued   int // bytes in queue
	reserved int // bytes reserved by outstanding Begin_Puts
	capacity int

	mu       *threads.Mutex
	notEmpty *threads.Cond
	notFull  *threads.Cond

	hcNotEmpty *hostif.HostCond // created on first host reader
	hcNotFull  *hostif.HostCond

	upcall func(t *threads.Thread, mb *Mailbox)

	hostRPC bool // host ops use the RPC implementation (§3.3)

	cache     []byte
	cacheAddr mem.Addr
	cacheFree bool

	puts, gets, enqueues uint64
}

// Name returns the mailbox name.
func (mb *Mailbox) Name() string { return mb.name }

// ID returns the local mailbox ID.
func (mb *Mailbox) ID() wire.MailboxID { return mb.id }

// Addr returns the network-wide mailbox address.
func (mb *Mailbox) Addr() wire.MailboxAddr {
	return wire.MailboxAddr{Node: mb.rt.cab.Node(), Box: mb.id}
}

// SetCapacity adjusts the buffer budget.
func (mb *Mailbox) SetCapacity(n int) { mb.capacity = n }

// SetUpcall attaches a reader upcall, invoked as a side effect of End_Put
// and Enqueue (paper §3.3: "this effectively converts a cross-thread
// procedure call into a local one"). Pass nil to detach.
func (mb *Mailbox) SetUpcall(fn func(t *threads.Thread, mb *Mailbox)) { mb.upcall = fn }

// SetHostRPC selects the RPC-based implementation for host-side
// operations on this mailbox (the paper's comparison baseline; the
// shared-memory implementation is the default and is about twice as fast,
// §3.3).
func (mb *Mailbox) SetHostRPC(on bool) { mb.hostRPC = on }

// Pending returns the number of queued messages.
func (mb *Mailbox) Pending() int { return len(mb.queue) }

// QueuedBytes returns the number of message bytes sitting in the queue.
func (mb *Mailbox) QueuedBytes() int { return mb.queued }

// Stats returns cumulative (puts, gets, enqueues).
func (mb *Mailbox) Stats() (puts, gets, enqueues uint64) {
	return mb.puts, mb.gets, mb.enqueues
}

func (mb *Mailbox) hostConds() (*hostif.HostCond, *hostif.HostCond) {
	if mb.hcNotEmpty == nil {
		if mb.rt.iface == nil {
			sim.Panicf("mailbox %s: host operation with no host attached", mb.name)
		}
		mb.hcNotEmpty = mb.rt.iface.NewHostCond(mb.name + ".notEmpty")
		mb.hcNotFull = mb.rt.iface.NewHostCond(mb.name + ".notFull")
	}
	return mb.hcNotEmpty, mb.hcNotFull
}

// --- Begin_Put / End_Put ---

// BeginPut reserves a buffer for an n-byte message, blocking until space
// is available. Returns the message whose Data() window the caller fills.
func (mb *Mailbox) BeginPut(ctx exec.Context, n int) *Msg {
	if ctx.IsHost() {
		return mb.beginPutHost(ctx, n)
	}
	ctx.Compute(mb.rt.cost.MailboxBeginPut)
	ctx.Words(3)
	for {
		if m := mb.tryReserve(ctx, n); m != nil {
			return m
		}
		// Mesa semantics: wait for any release in this mailbox, then
		// retry the reservation (space may be claimed by another writer
		// first, or the heap may still be exhausted).
		mb.mu.Lock(ctx.T)
		mb.notFull.Wait(ctx.T, mb.mu)
		mb.mu.Unlock(ctx.T)
	}
}

// BeginPutNB is the non-blocking Begin_Put used by interrupt handlers
// (paper §3.3). It returns nil when no space or no buffer is available.
//
//nectar:hotpath
func (mb *Mailbox) BeginPutNB(ctx exec.Context, n int) *Msg {
	ctx.Compute(mb.rt.cost.MailboxBeginPut)
	ctx.Words(3)
	return mb.tryReserve(ctx, n)
}

// tryReserve allocates the buffer if the budget allows. The &Msg on the
// large-message path mirrors a real CAB heap allocation; the small-message
// path reuses the mailbox's cached buffer.
//
//nectar:hotpath
func (mb *Mailbox) tryReserve(ctx exec.Context, n int) *Msg {
	if mb.queued+mb.reserved+n > mb.capacity {
		return nil
	}
	// Small messages use the mailbox's cached buffer when free.
	if n <= CachedBufSize && mb.cacheFree && mb.cache != nil {
		mb.cacheFree = false
		mb.reserved += n
		return &Msg{rt: mb.rt, buf: mb.cache[:n], addr: mb.cacheAddr, cached: mb, n: n, state: stateReserved, owner: mb}
	}
	ctx.Compute(mb.rt.cost.HeapAlloc)
	buf, addr, ok := mb.rt.cab.Heap.Alloc(n)
	if !ok {
		return nil
	}
	mb.reserved += n
	return &Msg{rt: mb.rt, buf: buf[:n], addr: addr, n: n, state: stateReserved, owner: mb}
}

// EndPut makes a filled message available to readers (paper §3.3) and
// fires the reader upcall, if attached.
func (mb *Mailbox) EndPut(ctx exec.Context, m *Msg) {
	if ctx.IsHost() {
		mb.endPutHost(ctx, m)
		return
	}
	ctx.Compute(mb.rt.cost.MailboxEndPut)
	ctx.Words(3)
	mb.deliver(ctx, m)
}

// deliver appends m to the queue and performs reader notification,
// transferring byte accounting from m's previous state to this mailbox's
// queue.
func (mb *Mailbox) deliver(ctx exec.Context, m *Msg) {
	if m.state == stateReserved {
		m.owner.reserved -= m.n
	}
	m.state = stateQueued
	m.owner = mb
	mb.queued += m.n
	mb.queue = append(mb.queue, m)
	mb.puts++
	m.queuedAt = mb.rt.cab.Kernel().Now()
	if mb.rt.obs.Tracing() {
		mb.rt.obs.InstantArg(int(mb.rt.cab.Node()), obs.LayerMailbox, "put", mb.name, uint64(m.Tag), m.n)
	}
	mb.signalCAB(ctx, mb.notEmpty)
	if mb.hcNotEmpty != nil {
		mb.hcNotEmpty.Signal(ctx)
	}
	if mb.upcall != nil {
		if ctx.IsHost() {
			// The upcall body must run on the CAB; ship it over.
			up := mb.upcall
			mb.rt.iface.PostToCAB(ctx, mb.name+".upcall", func(t *threads.Thread) { up(t, mb) })
		} else {
			mb.upcall(ctx.T, mb)
		}
	}
}

// --- Begin_Get / End_Get ---

// BeginGet removes and returns the next message, blocking while the
// mailbox is empty. Host processes sleep in the CAB driver (paper §3.2's
// blocking wait); use BeginGetPoll for the polling fast path.
func (mb *Mailbox) BeginGet(ctx exec.Context) *Msg {
	if ctx.IsHost() {
		return mb.beginGetHost(ctx, false)
	}
	ctx.Compute(mb.rt.cost.MailboxBeginGet)
	ctx.Words(2)
	for {
		if m := mb.pop(); m != nil {
			return m
		}
		mb.mu.Lock(ctx.T)
		for len(mb.queue) == 0 {
			mb.notEmpty.Wait(ctx.T, mb.mu)
		}
		mb.mu.Unlock(ctx.T)
	}
}

// BeginGetPoll is BeginGet with a spinning wait: from a host process it
// polls the mailbox's host condition with mapped reads and no system
// call — the paper's low-latency receive path (§6.1: "the host process is
// polling for receipt of the message").
func (mb *Mailbox) BeginGetPoll(ctx exec.Context) *Msg {
	if ctx.IsHost() {
		return mb.beginGetHost(ctx, true)
	}
	return mb.BeginGet(ctx)
}

// BeginGetNB removes and returns the next message, or nil if the mailbox
// is empty. Safe from interrupt handlers.
//
//nectar:hotpath
func (mb *Mailbox) BeginGetNB(ctx exec.Context) *Msg {
	ctx.Compute(mb.rt.cost.MailboxBeginGet)
	ctx.Words(2)
	return mb.pop()
}

// pop dequeues the head message and records queue-wait and trace
// observability. The queue reslice does not allocate.
//
//nectar:hotpath
func (mb *Mailbox) pop() *Msg {
	if len(mb.queue) == 0 {
		return nil
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	mb.queued -= m.n
	m.state = stateHeld
	mb.gets++
	mb.rt.queueWait.Observe(sim.Duration(mb.rt.cab.Kernel().Now() - m.queuedAt))
	if mb.rt.obs.Tracing() {
		mb.rt.obs.InstantArg(int(mb.rt.cab.Node()), obs.LayerMailbox, "get", mb.name, uint64(m.Tag), m.n)
	}
	return m
}

// EndGet releases the storage of a message obtained with Begin_Get.
func (mb *Mailbox) EndGet(ctx exec.Context, m *Msg) {
	if ctx.IsHost() {
		mb.endGetHost(ctx, m)
		return
	}
	ctx.Compute(mb.rt.cost.MailboxEndGet)
	ctx.Words(2)
	mb.release(ctx, m)
}

func (mb *Mailbox) release(ctx exec.Context, m *Msg) {
	if m.cached != nil {
		m.cached.cacheFree = true
	} else {
		ctx.Compute(mb.rt.cost.HeapFree)
		mb.rt.cab.Heap.Free(m.addr)
	}
	m.buf = nil
	if ctx.IsHost() && mb.notFull.HasWaiters() {
		nf := mb.notFull
		mb.rt.iface.PostToCAB(ctx, mb.name+".space", func(*threads.Thread) { nf.Broadcast() })
	} else {
		mb.notFull.Broadcast()
	}
	if mb.hcNotFull != nil {
		mb.hcNotFull.Signal(ctx)
	}
}

// signalCAB wakes CAB-side waiters on cond. A host caller cannot touch the
// CAB scheduler directly: physically it posts to the CAB signal queue and
// rings the doorbell, and the CAB's interrupt handler performs the wakeup
// (paper §3.2 / Figure 6's "CAB must be interrupted and a CAB thread
// scheduled to handle the message").
func (mb *Mailbox) signalCAB(ctx exec.Context, cond *threads.Cond) {
	if ctx.IsHost() {
		if cond.HasWaiters() {
			mb.rt.iface.PostToCAB(ctx, mb.name+".signal", func(*threads.Thread) { cond.Signal() })
		}
		return
	}
	cond.Signal()
}

// AbortPut abandons a Begin_Put without delivering: the reservation is
// released and the buffer freed. Used by the datalink layer when a frame
// fails its CRC or protocol sanity check mid-reception, and by readers
// discarding a held message without further processing cost semantics.
func (mb *Mailbox) AbortPut(ctx exec.Context, m *Msg) {
	ctx.Compute(mb.rt.cost.MailboxEndGet)
	ctx.Words(2)
	if m.state == stateReserved {
		m.owner.reserved -= m.n
	}
	mb.release(ctx, m)
}

// Enqueue moves a message to dst without copying the data (paper
// §3.3/§4.1: IP transfers complete datagrams to the input mailbox of the
// appropriate higher-level protocol with no copy). The message must be
// held by the caller — either reserved (between Begin_Put and End_Put) or
// obtained with Begin_Get; it must not be sitting in a queue.
func (mb *Mailbox) Enqueue(ctx exec.Context, m *Msg, dst *Mailbox) {
	if m.state == stateQueued {
		sim.Panicf("mailbox %s: Enqueue of a message still queued", mb.name)
	}
	ctx.Compute(mb.rt.cost.MailboxEnqueue)
	ctx.Words(3)
	mb.enqueues++
	dst.deliver(ctx, m)
}

// --- Host-side implementations (paper §3.3: RPC-based vs shared-memory,
// selectable per mailbox) ---

func (mb *Mailbox) beginPutHost(ctx exec.Context, n int) *Msg {
	_, notFull := mb.hostConds()
	for {
		var m *Msg
		if mb.hostRPC {
			mb.rt.iface.CallCAB(ctx, mb.name+".BeginPut", func(t *threads.Thread) uint32 {
				m = mb.BeginPutNB(exec.OnCAB(t), n)
				return 0
			})
		} else {
			// Shared-memory implementation: manipulate the writer-side
			// data structures directly with mapped accesses.
			ctx.Compute(mb.rt.cost.MailboxBeginPut / 2)
			ctx.Words(6)
			m = mb.tryReserve(ctx, n)
		}
		if m != nil {
			return m
		}
		since := notFull.Poll(ctx)
		notFull.WaitBlocking(ctx, since)
	}
}

func (mb *Mailbox) endPutHost(ctx exec.Context, m *Msg) {
	if mb.hostRPC {
		mb.rt.iface.CallCAB(ctx, mb.name+".EndPut", func(t *threads.Thread) uint32 {
			mb.EndPut(exec.OnCAB(t), m)
			return 0
		})
		return
	}
	ctx.Compute(mb.rt.cost.MailboxEndPut / 2)
	ctx.Words(6)
	mb.deliver(ctx, m)
}

func (mb *Mailbox) beginGetHost(ctx exec.Context, poll bool) *Msg {
	notEmpty, _ := mb.hostConds()
	for {
		var m *Msg
		if mb.hostRPC {
			mb.rt.iface.CallCAB(ctx, mb.name+".BeginGet", func(t *threads.Thread) uint32 {
				m = mb.BeginGetNB(exec.OnCAB(t))
				return 0
			})
		} else {
			ctx.Compute(mb.rt.cost.MailboxBeginGet / 2)
			ctx.Words(5)
			m = mb.pop()
		}
		if m != nil {
			return m
		}
		since := notEmpty.Poll(ctx)
		if poll {
			notEmpty.WaitPoll(ctx, since)
		} else {
			notEmpty.WaitBlocking(ctx, since)
		}
	}
}

func (mb *Mailbox) endGetHost(ctx exec.Context, m *Msg) {
	if mb.hostRPC {
		mb.rt.iface.CallCAB(ctx, mb.name+".EndGet", func(t *threads.Thread) uint32 {
			mb.EndGet(exec.OnCAB(t), m)
			return 0
		})
		return
	}
	ctx.Compute(mb.rt.cost.MailboxEndGet / 2)
	ctx.Words(5)
	mb.release(ctx, m)
}
