package exec

import (
	"bytes"
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/host"
	"nectar/internal/model"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func rig(t *testing.T) (*sim.Kernel, *cab.CAB, *host.Host) {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	c := cab.New(k, cost, 1)
	h := host.New(k, cost, "h", c)
	return k, c, h
}

func TestContextIdentity(t *testing.T) {
	k, c, h := rig(t)
	c.Sched.Fork("cabthread", threads.SystemPriority, func(th *threads.Thread) {
		ctx := OnCAB(th)
		if ctx.IsHost() {
			k.Fatalf("CAB context claims host")
		}
		if ctx.Cost() == nil {
			k.Fatalf("no cost model")
		}
	})
	h.Run("proc", func(th *threads.Thread) {
		ctx := OnHost(th, h)
		if !ctx.IsHost() {
			k.Fatalf("host context claims CAB")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWordsChargesOnlyHost(t *testing.T) {
	k, c, h := rig(t)
	var cabTime, hostTime sim.Duration
	c.Sched.Fork("cabthread", threads.SystemPriority, func(th *threads.Thread) {
		start := th.Now()
		OnCAB(th).Words(100)
		cabTime = sim.Duration(th.Now() - start)
	})
	h.Run("proc", func(th *threads.Thread) {
		start := th.Now()
		OnHost(th, h).Words(100)
		hostTime = sim.Duration(th.Now() - start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cabTime != 0 {
		t.Errorf("CAB-side Words cost %v, want 0 (35ns SRAM)", cabTime)
	}
	if hostTime < 100*sim.Microsecond {
		t.Errorf("host-side Words cost %v, want >= 100us of PIO", hostTime)
	}
}

func TestCopyInOutHost(t *testing.T) {
	k, c, h := rig(t)
	dst := c.Data.Slice(4096, 32)
	h.Run("proc", func(th *threads.Thread) {
		ctx := OnHost(th, h)
		ctx.CopyIn(dst, bytes.Repeat([]byte{7}, 32))
		out := make([]byte, 32)
		ctx.CopyOut(out, dst)
		if out[31] != 7 {
			k.Fatalf("copy round trip failed")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCopyOnCABChargesMemRate(t *testing.T) {
	k, c, _ := rig(t)
	dst := c.Data.Slice(0, 16000)
	var elapsed sim.Duration
	c.Sched.Fork("cabthread", threads.SystemPriority, func(th *threads.Thread) {
		start := th.Now()
		OnCAB(th).CopyIn(dst, make([]byte, 16000))
		elapsed = sim.Duration(th.Now() - start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 16000 bytes at 16 MB/s = 1ms.
	if elapsed != sim.Millisecond {
		t.Errorf("16KB CAB copy took %v, want 1ms", elapsed)
	}
}
