// Package exec defines the execution context shared by the runtime-system
// layers (mailboxes, syncs, host interface). The same operations can be
// invoked by CAB threads and by host processes (paper §3.5: Nectarine
// presents "the same interface on both the CAB and host"); a Context says
// which side is executing so each operation can charge the right costs —
// plain CPU time on the CAB, or CPU time plus VME programmed-I/O when a
// host process manipulates shared data structures in CAB memory.
package exec

import (
	"nectar/internal/hw/host"
	"nectar/internal/model"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Context is the identity of the code invoking a runtime operation.
type Context struct {
	T    *threads.Thread
	Host *host.Host // nil when executing on the CAB itself
}

// OnCAB returns a context for CAB-resident code.
func OnCAB(t *threads.Thread) Context { return Context{T: t} }

// OnHost returns a context for a host process accessing its CAB.
func OnHost(t *threads.Thread, h *host.Host) Context { return Context{T: t, Host: h} }

// IsHost reports whether the context is a host process.
func (c Context) IsHost() bool { return c.Host != nil }

// Cost returns the cost model for the executing CPU.
func (c Context) Cost() *model.CostModel { return c.T.Sched().Cost() }

// Now returns the current virtual time.
func (c Context) Now() sim.Time { return c.T.Now() }

// Compute charges d of CPU time to the executing thread.
func (c Context) Compute(d sim.Duration) { c.T.Compute(d) }

// Words charges access to n shared 32-bit words in CAB memory: a VME PIO
// access per word from a host process, negligible (35 ns SRAM) from the
// CAB itself.
//
//nectar:free-hop the per-word VME cost is charged inside Bus.PIO; Words only routes host-context accesses to the bus
func (c Context) Words(n int) {
	if c.Host != nil {
		c.Host.Bus.PIO(c.T, n)
	}
}

// CopyIn moves len(src) bytes of message data from the caller's memory
// into a CAB buffer: per-word PIO from a host, a CPU copy on the CAB.
func (c Context) CopyIn(dst, src []byte) {
	if c.Host != nil {
		c.Host.WriteCAB(c.T, dst, src)
		return
	}
	c.T.Compute(c.Cost().MemCopyTime(len(src)))
	copy(dst, src)
}

// CopyOut moves len(src) bytes of message data from a CAB buffer to the
// caller's memory.
func (c Context) CopyOut(dst, src []byte) {
	if c.Host != nil {
		c.Host.ReadCAB(c.T, src, dst)
		return
	}
	c.T.Compute(c.Cost().MemCopyTime(len(src)))
	copy(dst, src)
}
