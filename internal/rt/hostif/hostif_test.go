package hostif

import (
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/host"
	"nectar/internal/model"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func pair(t *testing.T) (*sim.Kernel, *IF) {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	c := cab.New(k, cost, 1)
	h := host.New(k, cost, "host1", c)
	return k, New(h, c)
}

func TestPostToCABRunsInInterruptContext(t *testing.T) {
	k, f := pair(t)
	ran := false
	var wasIntr bool
	f.Host().Run("proc", func(th *threads.Thread) {
		f.PostToCAB(exec.OnHost(th, f.Host()), "ping", func(ct *threads.Thread) {
			ran = true
			wasIntr = ct.IsInterrupt()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("posted request never ran on the CAB")
	}
	if !wasIntr {
		t.Error("request did not run in interrupt context")
	}
}

func TestPostToCABFromCABPanics(t *testing.T) {
	k, f := pair(t)
	f.CAB().Sched.Fork("bad", threads.SystemPriority, func(th *threads.Thread) {
		f.PostToCAB(exec.OnCAB(th), "x", func(*threads.Thread) {})
	})
	if err := k.Run(); err == nil {
		t.Error("PostToCAB from CAB context did not fail")
	}
}

func TestHostCondPollingWait(t *testing.T) {
	k, f := pair(t)
	hc := f.NewHostCond("c")
	var wokeAt sim.Time
	f.Host().Run("waiter", func(th *threads.Thread) {
		ctx := exec.OnHost(th, f.Host())
		since := hc.Poll(ctx)
		hc.WaitPoll(ctx, since)
		wokeAt = th.Now()
	})
	// A CAB thread signals at ~200us.
	f.CAB().Sched.Fork("signaler", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(200 * sim.Microsecond)
		hc.Signal(exec.OnCAB(th))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt < sim.Time(200*sim.Microsecond) {
		t.Errorf("woke at %v, before signal", wokeAt)
	}
	// Polling latency is a few microseconds past the signal (which lands
	// at ~240us after the signaler's dispatch and wake-up context
	// switches), not an interrupt round trip.
	if wokeAt > sim.Time(260*sim.Microsecond) {
		t.Errorf("woke at %v; polling path too slow", wokeAt)
	}
}

func TestHostCondBlockingWait(t *testing.T) {
	k, f := pair(t)
	hc := f.NewHostCond("c")
	var wokeAt sim.Time
	f.Host().Run("server", func(th *threads.Thread) {
		ctx := exec.OnHost(th, f.Host())
		since := hc.Poll(ctx)
		hc.WaitBlocking(ctx, since)
		wokeAt = th.Now()
	})
	f.CAB().Sched.Fork("signaler", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(500 * sim.Microsecond)
		hc.Signal(exec.OnCAB(th))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt < sim.Time(500*sim.Microsecond) {
		t.Errorf("woke at %v, before signal", wokeAt)
	}
}

func TestHostCondBlockingNoMissedWakeup(t *testing.T) {
	// Signal arrives between Poll and WaitBlocking: the since-guard must
	// prevent a lost wakeup.
	k, f := pair(t)
	hc := f.NewHostCond("c")
	done := false
	f.Host().Run("waiter", func(th *threads.Thread) {
		ctx := exec.OnHost(th, f.Host())
		since := hc.Poll(ctx)
		// Simulate a delay during which the CAB signals.
		th.Sleep(300 * sim.Microsecond)
		hc.WaitBlocking(ctx, since) // must return immediately
		done = true
	})
	f.CAB().Sched.Fork("signaler", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(100 * sim.Microsecond)
		hc.Signal(exec.OnCAB(th))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("wakeup lost despite since-guard")
	}
}

func TestHostSignalsHostCond(t *testing.T) {
	// Both CAB threads and host processes can signal a host condition
	// (paper §3.2).
	k, f := pair(t)
	hc := f.NewHostCond("c")
	woke := false
	f.Host().Run("waiter", func(th *threads.Thread) {
		ctx := exec.OnHost(th, f.Host())
		since := hc.Poll(ctx)
		hc.WaitBlocking(ctx, since)
		woke = true
	})
	f.Host().Run("signaler", func(th *threads.Thread) {
		th.Sleep(100 * sim.Microsecond)
		hc.Signal(exec.OnHost(th, f.Host()))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Error("host-side signal did not wake the waiter")
	}
}

func TestCallCAB(t *testing.T) {
	k, f := pair(t)
	var got uint32
	var when sim.Time
	f.Host().Run("caller", func(th *threads.Thread) {
		ctx := exec.OnHost(th, f.Host())
		got = f.CallCAB(ctx, "add", func(ct *threads.Thread) uint32 {
			ct.Compute(10 * sim.Microsecond)
			return 41 + 1
		})
		when = th.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
	if when == 0 {
		t.Error("call took no time")
	}
}

func TestCallCABSerialization(t *testing.T) {
	// Two RPCs from one host process complete in order with sane timing.
	k, f := pair(t)
	var results []uint32
	f.Host().Run("caller", func(th *threads.Thread) {
		ctx := exec.OnHost(th, f.Host())
		for i := uint32(0); i < 3; i++ {
			i := i
			r := f.CallCAB(ctx, "echo", func(*threads.Thread) uint32 { return i })
			results = append(results, r)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[0] != 0 || results[1] != 1 || results[2] != 2 {
		t.Errorf("results = %v", results)
	}
}

func TestManyPostsDrainInOrder(t *testing.T) {
	k, f := pair(t)
	var order []int
	f.Host().Run("poster", func(th *threads.Thread) {
		ctx := exec.OnHost(th, f.Host())
		for i := 0; i < 10; i++ {
			i := i
			f.PostToCAB(ctx, "n", func(*threads.Thread) { order = append(order, i) })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("drained %d of 10", len(order))
	}
}
