// Package hostif implements the host-CAB signaling machinery of paper
// §3.2 and Figure 4: host condition variables (with both polling and
// blocking waits), the host and CAB signal queues, the CAB device driver's
// interrupt handler, and the simple host-to-CAB RPC facility built on the
// signaling mechanism.
//
// Host condition variables live in CAB memory where both sides can access
// them. Signal increments a poll value; a polling host process spins on
// the value with cheap mapped reads (no system call on the fast path),
// while a blocking wait enters the CAB driver, which records the waiter
// and sleeps the process until the CAB interrupts the host.
package hostif

import (
	"fmt"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/host"
	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// CABQueueCap is the capacity of the CAB signal queue. The queue has
// fixed-size elements (paper §3.2); overflow is a runtime-system bug and
// fails the simulation.
const CABQueueCap = 256

// IF is the host-CAB interface for one host/CAB pair.
type IF struct {
	host *host.Host
	cab  *cab.CAB
	k    *sim.Kernel
	cost *model.CostModel

	cabQ  []cabReq    // host -> CAB requests
	hostQ []*HostCond // CAB -> host notifications

	conds uint64 // allocated host conditions (naming)

	posts, doorbells, hostIntr uint64

	// Precomputed per-node mark names (Markf's variadic args allocate on
	// every call even with tracing off).
	markPost, markISR, markSignal string

	obs       *obs.Observer
	doorbellH *obs.Histogram // post-to-dispatch latency of CAB requests
}

type cabReq struct {
	name string
	fn   func(t *threads.Thread)
	at   sim.Time // when the host posted the request
}

// New wires the interface for a host and its CAB, registering both
// interrupt handlers.
func New(h *host.Host, c *cab.CAB) *IF {
	f := &IF{host: h, cab: c, k: h.Kernel(), cost: h.Cost()}
	f.markPost = fmt.Sprintf("hostif.post.%d", c.Node())
	f.markISR = fmt.Sprintf("hostif.cabisr.%d", c.Node())
	f.markSignal = fmt.Sprintf("hostcond.signal.%d", c.Node())
	c.OnHostDoorbell(f.cabISR)
	h.OnCABInterrupt(f.hostISR)
	f.obs = obs.Ensure(f.k)
	m := f.obs.Metrics()
	scope := fmt.Sprintf("cab%d", c.Node())
	m.Gauge(obs.LayerHostIF, "posts", scope, func() uint64 { return f.posts })
	m.Gauge(obs.LayerHostIF, "doorbells", scope, func() uint64 { return f.doorbells })
	m.Gauge(obs.LayerHostIF, "host_interrupts", scope, func() uint64 { return f.hostIntr })
	f.doorbellH = m.Histogram(obs.LayerHostIF, "doorbell_latency", scope)
	return f
}

// Host returns the host side of the pair.
func (f *IF) Host() *host.Host { return f.host }

// CAB returns the CAB side of the pair.
func (f *IF) CAB() *cab.CAB { return f.cab }

// PostToCAB places a request in the CAB signal queue and rings the CAB's
// doorbell (paper §3.2: "Host processes wake up CAB threads by placing a
// request in the CAB signal queue and interrupting the CAB"). fn runs on
// the CAB in interrupt context. Must be called from a host context.
func (f *IF) PostToCAB(ctx exec.Context, name string, fn func(t *threads.Thread)) {
	if !ctx.IsHost() {
		panic("hostif: PostToCAB from CAB context")
	}
	if len(f.cabQ) >= CABQueueCap {
		f.k.Fatalf("hostif: CAB signal queue overflow")
		return
	}
	ctx.Words(2 + 1) // queue element (opcode + parameter) plus doorbell register
	f.k.Mark(f.markPost)
	f.posts++
	if f.obs.Tracing() {
		f.obs.InstantArg(int(f.cab.Node()), obs.LayerHostIF, "post", name, 0, 0)
	}
	f.cabQ = append(f.cabQ, cabReq{name, fn, f.k.Now()})
	f.cab.RingFromHost()
}

// cabISR is the CAB's doorbell handler: drain the CAB signal queue.
func (f *IF) cabISR(t *threads.Thread) {
	f.k.Mark(f.markISR)
	f.doorbells++
	if f.obs.Tracing() {
		f.obs.Instant(int(f.cab.Node()), obs.LayerHostIF, "cab_isr")
	}
	for len(f.cabQ) > 0 {
		req := f.cabQ[0]
		f.cabQ = f.cabQ[1:]
		t.Compute(1 * sim.Microsecond) // dequeue and dispatch
		f.doorbellH.Observe(sim.Duration(f.k.Now() - req.at))
		req.fn(t)
	}
}

// hostISR is the host's CAB-driver interrupt handler: drain the host
// signal queue and wake processes waiting on the signaled conditions
// (paper §3.2 and Figure 4).
func (f *IF) hostISR(t *threads.Thread) {
	f.hostIntr++
	if f.obs.Tracing() {
		f.obs.Instant(int(f.cab.Node()), obs.LayerHostIF, "host_isr")
	}
	t.Compute(f.cost.HostInterrupt)
	for len(f.hostQ) > 0 {
		hc := f.hostQ[0]
		f.hostQ = f.hostQ[1:]
		t.Compute(1 * sim.Microsecond)
		hc.wakeAll()
	}
}

// HostCond is a host condition variable (paper §3.2). It conceptually
// lives in CAB memory; every access from the host side is charged as a
// VME word access.
type HostCond struct {
	f       *IF
	name    string
	poll    uint32
	waiters []*threads.Thread // host processes blocked in the driver
	queued  bool              // already in the host signal queue
}

// NewHostCond allocates a host condition in CAB memory.
func (f *IF) NewHostCond(name string) *HostCond {
	f.conds++
	return &HostCond{f: f, name: fmt.Sprintf("%s#%d", name, f.conds)}
}

// Poll reads the condition's poll value (one mapped read).
func (hc *HostCond) Poll(ctx exec.Context) uint32 {
	ctx.Words(1)
	return hc.poll
}

// Signal increments the poll value and, if any process is blocked in the
// driver, arranges for it to be woken: directly when the signaler is a
// host process, via the host signal queue and a host interrupt when the
// signaler is a CAB thread (paper §3.2: "Both CAB threads and host
// processes can signal a host condition").
func (hc *HostCond) Signal(ctx exec.Context) {
	ctx.Compute(hc.f.cost.SyncOp)
	ctx.Words(1)
	hc.f.k.Mark(hc.f.markSignal)
	if hc.f.obs.Tracing() {
		hc.f.obs.InstantArg(int(hc.f.cab.Node()), obs.LayerHostIF, "signal", hc.name, 0, 0)
	}
	hc.poll++
	if len(hc.waiters) == 0 {
		return
	}
	if ctx.IsHost() {
		hc.wakeAll()
		return
	}
	// CAB side: enqueue on the host signal queue and interrupt the host.
	ctx.Compute(hc.f.cost.HostSignal)
	ctx.Words(2)
	if !hc.queued {
		hc.queued = true
		hc.f.hostQ = append(hc.f.hostQ, hc)
		hc.f.cab.InterruptHost()
	}
}

func (hc *HostCond) wakeAll() {
	hc.queued = false
	ws := hc.waiters
	hc.waiters = nil
	for _, w := range ws {
		w.Unblock()
	}
}

// WaitPoll spins on the poll value until it differs from since (obtained
// from a prior Poll), charging one mapped read per iteration. This is the
// paper's no-system-call fast path for latency-critical waits.
func (hc *HostCond) WaitPoll(ctx exec.Context, since uint32) {
	if !ctx.IsHost() {
		panic("hostif: WaitPoll from CAB context")
	}
	for {
		ctx.Compute(hc.f.cost.HostPollIteration)
		ctx.Words(1)
		if hc.poll != since {
			return
		}
	}
}

// WaitBlocking enters the CAB driver and sleeps the calling process until
// the condition is signaled (paper §3.2: polling "wastes host CPU cycles",
// so a server process waits in the driver instead). since guards against
// a signal that arrived after the caller last observed the poll value.
func (hc *HostCond) WaitBlocking(ctx exec.Context, since uint32) {
	if !ctx.IsHost() {
		panic("hostif: WaitBlocking from CAB context")
	}
	ctx.Compute(hc.f.cost.HostSyscall) // enter the driver
	ctx.Words(1)
	if hc.poll != since {
		return // already signaled
	}
	hc.waiters = append(hc.waiters, ctx.T)
	ctx.T.Block("hostcond:" + hc.name)
	ctx.Compute(hc.f.cost.HostSyscall / 2) // return path from the driver
}

// CallCAB is the simple host-to-CAB RPC facility (paper §3.2): the request
// is posted to the CAB signal queue; fn runs on the CAB in interrupt
// context and returns a one-word result, which the host retrieves through
// the returned completion. The paper's sync abstraction provides the
// equivalent synchronization for general use; the driver-internal variant
// here keeps the packages layered.
func (f *IF) CallCAB(ctx exec.Context, name string, fn func(t *threads.Thread) uint32) uint32 {
	done := f.NewHostCond("rpc:" + name)
	var result uint32
	since := done.Poll(ctx)
	f.PostToCAB(ctx, name, func(t *threads.Thread) {
		result = fn(t)
		done.Signal(exec.OnCAB(t))
	})
	done.WaitPoll(ctx, since)
	ctx.Words(1) // fetch the result word
	return result
}
