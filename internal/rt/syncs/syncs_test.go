package syncs

import (
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/host"
	"nectar/internal/model"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

type rig struct {
	k *sim.Kernel
	c *cab.CAB
	h *host.Host
	p *Pool
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	c := cab.New(k, cost, 1)
	h := host.New(k, cost, "host1", c)
	f := hostif.New(h, c)
	return &rig{k: k, c: c, h: h, p: NewPool(f)}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThenRead(t *testing.T) {
	r := newRig(t)
	var s *Sync
	var got uint32
	r.c.Sched.Fork("main", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s = r.p.Alloc(ctx)
		s.Write(ctx, 77)
		got = s.Read(ctx)
	})
	r.run(t)
	if got != 77 {
		t.Errorf("got %d, want 77", got)
	}
}

func TestReadBlocksUntilWrite(t *testing.T) {
	r := newRig(t)
	var got uint32
	var when sim.Time
	var s *Sync
	r.c.Sched.Fork("reader", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s = r.p.Alloc(ctx)
		got = s.Read(ctx)
		when = th.Now()
	})
	r.c.Sched.Fork("writer", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(100 * sim.Microsecond)
		s.Write(exec.OnCAB(th), 9)
	})
	r.run(t)
	if got != 9 || when < sim.Time(100*sim.Microsecond) {
		t.Errorf("got %d at %v", got, when)
	}
}

func TestCABWritesHostReads(t *testing.T) {
	// The paper's primary use: return a status from a transport on the
	// CAB to a sender on the host.
	r := newRig(t)
	var s *Sync
	var got uint32
	r.h.Run("sender", func(th *threads.Thread) {
		ctx := exec.OnHost(th, r.h)
		s = r.p.Alloc(ctx)
		got = s.Read(ctx) // polls until the CAB writes
	})
	r.c.Sched.Fork("transport", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(150 * sim.Microsecond)
		s.Write(exec.OnCAB(th), 1)
	})
	r.run(t)
	if got != 1 {
		t.Errorf("got %d", got)
	}
}

func TestHostWriteOffloadsToCAB(t *testing.T) {
	r := newRig(t)
	var s *Sync
	var got uint32
	r.c.Sched.Fork("reader", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s = r.p.Alloc(ctx)
		got = s.Read(ctx)
	})
	r.h.Run("writer", func(th *threads.Thread) {
		th.Sleep(100 * sim.Microsecond)
		s.Write(exec.OnHost(th, r.h), 123)
	})
	r.run(t)
	if got != 123 {
		t.Errorf("got %d", got)
	}
}

func TestCancelBeforeWriteFreesOnWrite(t *testing.T) {
	r := newRig(t)
	r.c.Sched.Fork("main", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s := r.p.Alloc(ctx)
		s.Cancel(ctx)
		cf, _ := r.p.PoolSizes()
		if cf != 0 {
			r.k.Fatalf("sync freed at Cancel before Write")
		}
		s.Write(ctx, 5) // write after cancel frees the sync
		cf, _ = r.p.PoolSizes()
		if cf != 1 {
			r.k.Fatalf("sync not freed by Write-after-Cancel (free=%d)", cf)
		}
	})
	r.run(t)
}

func TestCancelAfterWriteFreesNow(t *testing.T) {
	r := newRig(t)
	r.c.Sched.Fork("main", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s := r.p.Alloc(ctx)
		s.Write(ctx, 5)
		s.Cancel(ctx)
		cf, _ := r.p.PoolSizes()
		if cf != 1 {
			r.k.Fatalf("sync not freed by Cancel-after-Write")
		}
	})
	r.run(t)
}

func TestSeparatePools(t *testing.T) {
	r := newRig(t)
	r.c.Sched.Fork("cabside", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s := r.p.Alloc(ctx)
		s.Write(ctx, 1)
		s.Read(ctx)
	})
	r.h.Run("hostside", func(th *threads.Thread) {
		ctx := exec.OnHost(th, r.h)
		s := r.p.Alloc(ctx)
		th.Sleep(50 * sim.Microsecond)
		s.Write(ctx, 2)
		s.Read(ctx)
	})
	r.run(t)
	cf, hf := r.p.PoolSizes()
	if cf != 1 || hf != 1 {
		t.Errorf("pools = %d/%d, want 1/1 (freed to their own pools)", cf, hf)
	}
}

func TestPoolReuse(t *testing.T) {
	r := newRig(t)
	r.c.Sched.Fork("main", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		a := r.p.Alloc(ctx)
		a.Write(ctx, 1)
		a.Read(ctx)
		b := r.p.Alloc(ctx) // must reuse a
		if a != b {
			r.k.Fatalf("freed sync not reused")
		}
		b.Write(ctx, 2)
		if v := b.Read(ctx); v != 2 {
			r.k.Fatalf("reused sync returned %d", v)
		}
	})
	r.run(t)
}

func TestDoubleWritePanics(t *testing.T) {
	r := newRig(t)
	r.c.Sched.Fork("main", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s := r.p.Alloc(ctx)
		s.Write(ctx, 1)
		s.Write(ctx, 2)
	})
	if err := r.k.Run(); err == nil {
		t.Error("double Write did not fail")
	}
}

func TestWriteFromInterruptHandler(t *testing.T) {
	// Transports complete sends from interrupt context; Write must be
	// safe there (it is already atomic with respect to threads).
	r := newRig(t)
	var s *Sync
	var got uint32
	r.c.Sched.Fork("reader", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s = r.p.Alloc(ctx)
		got = s.Read(ctx)
	})
	r.k.After(80*sim.Microsecond, func() {
		r.c.Sched.RaiseInterrupt("tx-done", func(t2 *threads.Thread) {
			s.Write(exec.OnCAB(t2), 55)
		})
	})
	r.run(t)
	if got != 55 {
		t.Errorf("got %d", got)
	}
}
