// Package syncs implements the CAB runtime's lightweight synchronization
// objects (paper §3.4): a sync carries a one-word value from a writer to a
// single asynchronous reader — cheaper than a mailbox when all that is
// needed is "a condition variable and a shared word for the value", e.g.
// returning a status from a transport protocol on the CAB to a sender on
// the host.
//
// Semantics (per the paper): Alloc allocates a sync; Write stores a value
// and marks it written; Read blocks until written, then frees the sync and
// returns the value; Cancel indicates the reader is no longer interested —
// it frees the sync if already written, otherwise it marks the sync
// canceled and a subsequent Write frees it.
//
// Syncs live in CAB memory. Host processes and CAB threads allocate from
// two separate pools so allocation needs no cross-bus locking (paper
// §3.4); writing requires a short critical section, done on the CAB by
// masking interrupts, and offloaded to the CAB by host writers through the
// CAB signaling mechanism.
package syncs

import (
	"fmt"

	"nectar/internal/model"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/threads"
)

// Pool manages the two per-side free lists of sync objects for one CAB.
type Pool struct {
	iface *hostif.IF
	sched *threads.Sched
	cost  *model.CostModel

	cabFree  []*Sync
	hostFree []*Sync
	nalloc   uint64
}

// NewPool creates the sync pools for a CAB runtime.
func NewPool(iface *hostif.IF) *Pool {
	return &Pool{
		iface: iface,
		sched: iface.CAB().Sched,
		cost:  iface.CAB().Cost(),
	}
}

// Sync is a one-word, single-reader synchronization object.
type Sync struct {
	pool     *Pool
	fromHost bool // allocated from the host pool

	value    uint32
	written  bool
	canceled bool
	freed    bool

	cond     *threads.Cond    // CAB reader
	hostCond *hostif.HostCond // host reader (created lazily)
	mu       *threads.Mutex
}

// Alloc allocates a sync from the caller's pool.
func (p *Pool) Alloc(ctx exec.Context) *Sync {
	ctx.Compute(p.cost.SyncOp)
	ctx.Words(2)
	list := &p.cabFree
	if ctx.IsHost() {
		list = &p.hostFree
	}
	if n := len(*list); n > 0 {
		s := (*list)[n-1]
		*list = (*list)[:n-1]
		s.reset()
		return s
	}
	p.nalloc++
	s := &Sync{
		pool:     p,
		fromHost: ctx.IsHost(),
		cond:     threads.NewCond(p.sched, fmt.Sprintf("sync%d", p.nalloc)),
		mu:       threads.NewMutex(fmt.Sprintf("sync%d.mu", p.nalloc)),
	}
	return s
}

func (s *Sync) reset() {
	s.value = 0
	s.written = false
	s.canceled = false
	s.freed = false
}

func (s *Sync) free() {
	if s.freed {
		panic("syncs: double free")
	}
	s.freed = true
	if s.fromHost {
		s.pool.hostFree = append(s.pool.hostFree, s)
	} else {
		s.pool.cabFree = append(s.pool.cabFree, s)
	}
}

// Write stores v and marks the sync written, waking the reader if one is
// blocked. If the sync was canceled, Write frees it instead. A host
// writer offloads the critical section to the CAB via the signaling
// mechanism (paper §3.4).
func (s *Sync) Write(ctx exec.Context, v uint32) {
	if ctx.IsHost() {
		s.pool.iface.PostToCAB(ctx, "sync.Write", func(t *threads.Thread) {
			s.writeOnCAB(exec.OnCAB(t), v)
		})
		return
	}
	s.writeOnCAB(ctx, v)
}

func (s *Sync) writeOnCAB(ctx exec.Context, v uint32) {
	// The check-cancel-and-mark-written step must be atomic; on the CAB
	// this is done by masking interrupts (paper §3.4). Interrupt contexts
	// are already atomic.
	if !ctx.T.IsInterrupt() {
		ctx.T.DisableInterrupts()
		defer ctx.T.EnableInterrupts()
	}
	ctx.Compute(s.pool.cost.SyncOp)
	if s.canceled {
		s.free()
		return
	}
	if s.written {
		panic("syncs: double Write")
	}
	s.value = v
	s.written = true
	s.cond.Signal()
	if s.hostCond != nil {
		s.hostCond.Signal(ctx)
	}
}

// Read blocks until the sync is written, frees it, and returns the value.
// Only the single reader may call Read.
func (s *Sync) Read(ctx exec.Context) uint32 {
	ctx.Compute(s.pool.cost.SyncOp)
	ctx.Words(1)
	if ctx.IsHost() {
		if s.hostCond == nil {
			s.hostCond = s.pool.iface.NewHostCond("sync")
		}
		for !s.written {
			since := s.hostCond.Poll(ctx)
			if s.written { // re-check after the poll read
				break
			}
			s.hostCond.WaitPoll(ctx, since)
		}
	} else {
		s.mu.Lock(ctx.T)
		for !s.written {
			s.cond.Wait(ctx.T, s.mu)
		}
		s.mu.Unlock(ctx.T)
	}
	v := s.value
	s.free()
	return v
}

// Cancel tells the runtime the reader is no longer interested: the sync
// is freed now if written, or upon the eventual Write otherwise.
func (s *Sync) Cancel(ctx exec.Context) {
	if ctx.IsHost() {
		s.pool.iface.PostToCAB(ctx, "sync.Cancel", func(t *threads.Thread) {
			s.cancelOnCAB(exec.OnCAB(t))
		})
		return
	}
	s.cancelOnCAB(ctx)
}

func (s *Sync) cancelOnCAB(ctx exec.Context) {
	if !ctx.T.IsInterrupt() {
		ctx.T.DisableInterrupts()
		defer ctx.T.EnableInterrupts()
	}
	ctx.Compute(s.pool.cost.SyncOp)
	if s.written {
		s.free()
		return
	}
	s.canceled = true
}

// Written reports whether the sync has been written (for tests).
func (s *Sync) Written() bool { return s.written }

// PoolSizes returns the lengths of the CAB and host free lists.
func (p *Pool) PoolSizes() (cabFree, hostFree int) {
	return len(p.cabFree), len(p.hostFree)
}
