// Package threads implements the CAB runtime system's threads package
// (paper §3.1): forking and joining of threads, mutual exclusion locks,
// condition variables, and a preemptive, priority-based scheduler in which
// system threads run at higher priority than application threads and
// interrupt handlers preempt everything.
//
// The package is derived in spirit from the Mach C Threads interface the
// paper's implementation was based on, but executes in virtual time on the
// sim kernel: threads charge CPU time explicitly with Compute, and a full
// context switch costs the paper's measured 20 µs (model.CostModel).
//
// One Sched instance models one CPU (a CAB's SPARC, or a host's CPU). All
// scheduler state is manipulated from kernel context or from the currently
// running thread, so no Go-level locking is required.
package threads

import (
	"container/heap"

	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/sim"
)

// Priority orders threads for dispatch. Higher numeric value wins.
type Priority int

const (
	// AppPriority is for application threads, which may compute for long
	// stretches and are preempted by everything else (paper §3.1).
	AppPriority Priority = 1
	// SystemPriority is for protocol and runtime threads, which are
	// event-driven: a brief burst of processing, then a wait.
	SystemPriority Priority = 2
	// interruptPriority is used internally for interrupt handlers, which
	// run to completion above all threads and are never nested (§3.1).
	interruptPriority Priority = 3
)

type state int

const (
	stateReady state = iota
	stateRunning
	stateBlocked
	stateDone
)

// Thread is a single thread of control on one Sched.
type Thread struct {
	sched     *Sched
	name      string
	prio      Priority
	proc      *sim.Proc
	wake      *sim.Signal
	state     state
	remaining sim.Duration // unconsumed demand of the current Compute call
	seq       uint64       // FIFO tie-break within a priority
	heapIdx   int
	intr      bool // interrupt pseudo-thread
	exitC     *Cond
	exitM     *Mutex
	cpuTime   sim.Duration // total CPU time consumed (stats)
	epoch     uint64       // incremented at each Block; guards stale wakeups
}

// Sched is a preemptive priority scheduler modeling one CPU.
type Sched struct {
	k    *sim.Kernel
	cost *model.CostModel
	name string

	ready      threadHeap
	running    *Thread
	sliceTimer sim.Timer
	sliceStart sim.Time
	switching  bool    // a context switch is in progress (CPU busy, uninterruptible)
	switchTo   *Thread // the thread being switched to (not in ready, not yet running)

	intrMasked  bool
	pendingIntr []pendingIntr
	maskDepth   int

	seq        uint64
	switches   uint64 // context-switch count (stats)
	interrupts uint64 // interrupts taken (stats)
	idleSince  sim.Time
	busyTime   sim.Duration

	obs *obs.Observer
}

type pendingIntr struct {
	name string
	fn   func(t *Thread)
}

// New creates a scheduler for a CPU named name, charging costs from cost.
func New(k *sim.Kernel, cost *model.CostModel, name string) *Sched {
	s := &Sched{k: k, cost: cost, name: name}
	s.obs = obs.Ensure(k)
	m := s.obs.Metrics()
	m.Gauge(obs.LayerSched, "context_switches", name, func() uint64 { return s.switches })
	m.Gauge(obs.LayerSched, "interrupts", name, func() uint64 { return s.interrupts })
	m.Gauge(obs.LayerSched, "busy_ns", name, func() uint64 { return uint64(s.busyTime.Nanos()) })
	return s
}

// Kernel returns the sim kernel this scheduler runs on.
func (s *Sched) Kernel() *sim.Kernel { return s.k }

// Cost returns the scheduler's cost model.
func (s *Sched) Cost() *model.CostModel { return s.cost }

// Name returns the CPU name.
func (s *Sched) Name() string { return s.name }

// Switches returns the number of context switches performed so far.
func (s *Sched) Switches() uint64 { return s.switches }

// Interrupts returns the number of interrupts taken so far.
func (s *Sched) Interrupts() uint64 { return s.interrupts }

// BusyTime returns the total CPU time consumed by threads and switches.
func (s *Sched) BusyTime() sim.Duration { return s.busyTime }

// Fork creates and starts a new thread running fn at the given priority.
// The thread becomes runnable immediately; whether it preempts the caller
// depends on priorities.
func (s *Sched) Fork(name string, prio Priority, fn func(t *Thread)) *Thread {
	if prio >= interruptPriority {
		panic("threads: priority reserved for interrupts")
	}
	return s.fork(name, prio, false, fn)
}

func (s *Sched) fork(name string, prio Priority, intr bool, fn func(t *Thread)) *Thread {
	t := &Thread{sched: s, name: name, prio: prio, intr: intr, heapIdx: -1}
	t.wake = s.k.NewSignal("wake:" + name)
	t.exitM = NewMutex(s.name + "/" + name + ".exit")
	t.exitC = NewCond(s, name+".exit")
	t.proc = s.k.Go(s.name+"/"+name, func(p *sim.Proc) {
		// Wait to be dispatched for the first time.
		p.Wait(t.wake)
		fn(t)
		t.exit()
	})
	t.state = stateReady
	// The proc start event is queued; thread becomes ready now so that the
	// scheduler can plan, but the proc only runs once dispatched.
	s.onReady(t)
	return t
}

// RaiseInterrupt delivers a hardware interrupt: fn runs as a handler that
// preempts any thread. If interrupts are masked, or a handler is already
// running, the interrupt is pended and delivered later (handlers are not
// nested, per §3.1). Callable from kernel context (hardware models) or from
// any thread.
func (s *Sched) RaiseInterrupt(name string, fn func(t *Thread)) {
	if s.intrMasked || s.interruptActive() {
		s.pendingIntr = append(s.pendingIntr, pendingIntr{name, fn})
		return
	}
	s.interrupts++
	if s.obs.Tracing() {
		s.obs.InstantArg(0, obs.LayerSched, "interrupt", s.name+"/"+name, 0, 0)
	}
	s.fork("intr:"+name, interruptPriority, true, func(t *Thread) {
		fn(t)
		// Handler completion: deliver the next pended interrupt, if any.
		t.Compute(s.cost.InterruptExit)
	})
}

// interruptActive reports whether an interrupt handler is running, ready,
// or mid-context-switch. The switchTo check matters: during the switch
// the incoming handler is in none of the queues, and missing it would let
// a newly raised interrupt jump ahead of already-pended ones, reordering
// frame delivery.
func (s *Sched) interruptActive() bool {
	if s.running != nil && s.running.intr {
		return true
	}
	if s.switchTo != nil && s.switchTo.intr {
		return true
	}
	for _, t := range s.ready {
		if t.intr {
			return true
		}
	}
	return false
}

func (s *Sched) drainPendingIntr() {
	if s.intrMasked || len(s.pendingIntr) == 0 || s.interruptActive() {
		return
	}
	pi := s.pendingIntr[0]
	s.pendingIntr = s.pendingIntr[1:]
	s.RaiseInterrupt(pi.name, pi.fn)
}

// --- Thread API (called from the thread's own context) ---

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Sched returns the scheduler this thread runs on.
func (t *Thread) Sched() *Sched { return t.sched }

// Now returns the current virtual time.
func (t *Thread) Now() sim.Time { return t.sched.k.Now() }

// Cost returns the cost model (shorthand).
func (t *Thread) Cost() *model.CostModel { return t.sched.cost }

// IsInterrupt reports whether this is an interrupt handler context.
func (t *Thread) IsInterrupt() bool { return t.intr }

// CPUTime returns the total CPU time this thread has consumed.
func (t *Thread) CPUTime() sim.Duration { return t.cpuTime }

// Compute consumes d of CPU time. The thread may be preempted by
// higher-priority threads or interrupts and resumed; Compute returns only
// after the full demand has been consumed.
func (t *Thread) Compute(d sim.Duration) {
	if d <= 0 {
		return
	}
	s := t.sched
	t.assertRunning("Compute")
	t.remaining = d
	if s.preemptible(t) {
		// A higher-priority thread became ready while we ran in zero time
		// (e.g. we just woke it): give up the CPU before computing.
		s.requeue(t)
		s.startSwitch(s.pop())
	} else {
		s.beginSlice(t)
	}
	t.proc.Wait(t.wake)
}

// Block releases the CPU and parks the thread until Unblock is called.
// reason is reported in deadlock diagnostics. Interrupt handlers must not
// block (paper §3.3: handlers use the non-blocking operations).
func (t *Thread) Block(reason string) {
	s := t.sched
	t.assertRunning("Block")
	if t.intr {
		sim.Panicf("threads: interrupt handler %q attempted to block (%s)", t.name, reason)
	}
	t.epoch++
	t.state = stateBlocked
	s.running = nil
	s.dispatchNext()
	t.proc.Wait(t.wake)
}

// Unblock makes a blocked thread runnable. Callable from any context.
func (t *Thread) Unblock() {
	if t.state != stateBlocked {
		return
	}
	t.sched.onReady(t)
}

// Sleep blocks the thread for d of virtual time, releasing the CPU.
func (t *Thread) Sleep(d sim.Duration) {
	s := t.sched
	epoch := t.epoch + 1 // epoch after Block's increment
	s.k.After(d, func() {
		if t.epoch == epoch && t.state == stateBlocked {
			t.Unblock()
		}
	})
	t.Block("sleep")
}

// Yield releases the CPU to an equal-or-higher-priority ready thread, if
// any, charging a context switch; otherwise it continues immediately.
func (t *Thread) Yield() {
	s := t.sched
	t.assertRunning("Yield")
	if len(s.ready) == 0 || s.ready[0].prio < t.prio {
		return
	}
	t.state = stateReady
	t.remaining = 0
	s.running = nil
	s.enqueue(t)
	s.dispatchNext()
	t.proc.Wait(t.wake)
}

// Join blocks until u terminates.
func (t *Thread) Join(u *Thread) {
	u.exitM.Lock(t)
	for u.state != stateDone {
		u.exitC.Wait(t, u.exitM)
	}
	u.exitM.Unlock(t)
}

// Done reports whether the thread has terminated.
func (t *Thread) Done() bool { return t.state == stateDone }

// DisableInterrupts masks interrupt delivery (nestable). The paper's
// interrupt-time protocol code uses this to protect critical sections.
func (t *Thread) DisableInterrupts() {
	t.sched.maskDepth++
	t.sched.intrMasked = true
}

// EnableInterrupts unmasks interrupt delivery and delivers pended
// interrupts.
func (t *Thread) EnableInterrupts() {
	s := t.sched
	if s.maskDepth > 0 {
		s.maskDepth--
	}
	if s.maskDepth == 0 {
		s.intrMasked = false
		s.drainPendingIntr()
	}
}

func (t *Thread) exit() {
	s := t.sched
	t.state = stateDone
	t.exitC.Broadcast()
	s.running = nil
	if t.intr {
		s.drainPendingIntr()
	}
	s.dispatchNext()
	// Proc returns; kernel reclaims it.
}

func (t *Thread) assertRunning(op string) {
	if t.sched.running != t {
		sim.Panicf("threads: %s by %q which is not the running thread", op, t.name)
	}
	if t.state != stateRunning {
		sim.Panicf("threads: %s by %q in state %d", op, t.name, t.state)
	}
}

// --- Scheduler internals ---

// preemptible reports whether a strictly higher-priority thread is ready.
func (s *Sched) preemptible(t *Thread) bool {
	return len(s.ready) > 0 && s.ready[0].prio > t.prio
}

// onReady makes t runnable and preempts the running thread if warranted.
func (s *Sched) onReady(t *Thread) {
	t.state = stateReady
	s.enqueue(t)
	switch {
	case s.switching:
		// The CPU is busy switching; the decision is re-made in
		// switchDone, which always picks the highest-priority ready
		// thread.
	case s.running == nil:
		s.dispatchNext()
	case s.sliceTimer.Pending() && s.ready[0].prio > s.running.prio:
		// Preempt the current compute slice.
		s.preempt()
	default:
		// Running thread is in a zero-time window (between Compute
		// calls) or has equal/higher priority. A zero-time window is
		// instantaneous: the preemption check happens at its next
		// Compute or Block.
	}
}

// preempt stops the running thread's slice and switches to the best ready
// thread.
func (s *Sched) preempt() {
	t := s.running
	elapsed := sim.Duration(s.k.Now() - s.sliceStart)
	t.remaining -= elapsed
	t.cpuTime += elapsed
	s.busyTime += elapsed
	if t.remaining < 0 {
		t.remaining = 0
	}
	s.sliceTimer.Stop()
	s.sliceTimer = sim.Timer{}
	s.requeue(t)
	s.startSwitch(s.pop())
}

// requeue puts a preempted running thread back on the ready queue.
func (s *Sched) requeue(t *Thread) {
	t.state = stateReady
	s.running = nil
	s.enqueue(t)
}

// dispatchNext switches to the best ready thread, or idles. It is a
// no-op while a switch is already in progress or a thread is running
// (exit's drainPendingIntr may have started a dispatch already).
func (s *Sched) dispatchNext() {
	if s.switching || s.running != nil {
		return
	}
	if len(s.ready) == 0 {
		return // CPU idle
	}
	s.startSwitch(s.pop())
}

// startSwitch charges the context-switch (or interrupt entry) cost and then
// installs t as the running thread.
//
//nectar:hotpath-exempt switch continuation closure is one allocation per context switch, amortized by the microseconds of virtual time the switch itself costs
func (s *Sched) startSwitch(t *Thread) {
	var cost sim.Duration
	if t.intr {
		cost = s.cost.InterruptEntry
	} else {
		cost = s.cost.ContextSwitch
		s.switches++
		if s.obs.Tracing() {
			s.obs.InstantArg(0, obs.LayerSched, "switch", s.name+"/"+t.name, 0, 0)
		}
	}
	s.switching = true
	s.switchTo = t
	s.busyTime += cost
	s.k.After(cost, func() { s.switchDone(t) })
}

// switchDone completes a context switch. If an even better thread became
// ready during the switch, the switch is redone (charging again).
func (s *Sched) switchDone(t *Thread) {
	s.switching = false
	s.switchTo = nil
	if len(s.ready) > 0 && s.ready[0].prio > t.prio {
		s.enqueue(t)
		t.state = stateReady
		s.startSwitch(s.pop())
		return
	}
	s.running = t
	t.state = stateRunning
	if t.remaining > 0 {
		s.beginSlice(t)
	} else {
		// Thread resumes zero-time execution (woken from a block, or
		// first dispatch).
		t.wake.Signal()
	}
}

// beginSlice starts consuming the running thread's compute demand.
//
//nectar:hotpath-exempt slice-timer closure allocates once per dispatched compute slice, not per event
func (s *Sched) beginSlice(t *Thread) {
	s.sliceStart = s.k.Now()
	d := t.remaining
	s.sliceTimer = s.k.After(d, func() { s.sliceDone(t) })
}

// sliceDone fires when the running thread's demand is fully consumed; the
// thread keeps the CPU and resumes zero-time execution.
func (s *Sched) sliceDone(t *Thread) {
	t.cpuTime += t.remaining
	s.busyTime += t.remaining
	t.remaining = 0
	s.sliceTimer = sim.Timer{}
	t.wake.Signal()
}

//nectar:hotpath-exempt container/heap dispatch boxes only the pointer receiver, which does not heap-allocate
func (s *Sched) pop() *Thread {
	return heap.Pop(&s.ready).(*Thread)
}

// enqueue adds t to the ready queue. The FIFO tie-break within a priority
// is by enqueue time, so equal-priority threads round-robin at blocking
// points (and Yield actually yields).
//
//nectar:hotpath-exempt container/heap dispatch boxes only the pointer receiver, which does not heap-allocate
func (s *Sched) enqueue(t *Thread) {
	s.seq++
	t.seq = s.seq
	heap.Push(&s.ready, t)
}

// threadHeap orders by priority (desc), then FIFO by seq.
type threadHeap []*Thread

func (h threadHeap) Len() int { return len(h) }
func (h threadHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h threadHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *threadHeap) Push(x any) {
	t := x.(*Thread)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *threadHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}
