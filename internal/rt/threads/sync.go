package threads

import (
	"nectar/internal/sim"
)

// Mutex is a mutual exclusion lock with FIFO handoff, as provided by the
// CAB threads package (paper §3.1). Because the simulation kernel is
// single-threaded, the lock exists to model *logical* mutual exclusion
// across blocking points, exactly as on the real CAB: a critical section
// containing a Compute or a blocking call can be interleaved with other
// threads, and the Mutex keeps them out.
type Mutex struct {
	name    string
	owner   *Thread
	waiters []*Thread
}

// NewMutex creates an unlocked mutex.
func NewMutex(name string) *Mutex {
	return &Mutex{name: name}
}

// Lock acquires the mutex, blocking the calling thread while another
// thread holds it. Handoff is FIFO.
func (m *Mutex) Lock(t *Thread) {
	if m.owner == nil {
		m.owner = t
		return
	}
	if m.owner == t {
		sim.Panicf("threads: recursive Lock of %q by %q", m.name, t.name)
	}
	m.waiters = append(m.waiters, t)
	t.Block("mutex:" + m.name)
	// Ownership was handed to us by Unlock before we were woken.
	if m.owner != t {
		sim.Panicf("threads: woke from Lock of %q without ownership", m.name)
	}
}

// TryLock acquires the mutex if it is free, without blocking. It reports
// whether the lock was acquired. Safe from interrupt handlers.
func (m *Mutex) TryLock(t *Thread) bool {
	if m.owner != nil {
		return false
	}
	m.owner = t
	return true
}

// Unlock releases the mutex, handing it to the longest-waiting thread.
func (m *Mutex) Unlock(t *Thread) {
	if m.owner != t {
		sim.Panicf("threads: Unlock of %q by non-owner %q", m.name, t.name)
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	next.Unblock()
}

// Held reports whether the mutex is currently held (by anyone).
func (m *Mutex) Held() bool { return m.owner != nil }

// HeldBy reports whether t holds the mutex.
func (m *Mutex) HeldBy(t *Thread) bool { return m.owner == t }

// Cond is a condition variable with Mesa semantics, matching the CAB
// threads package: Wait releases the associated mutex and re-acquires it
// before returning; waiters must re-check their predicate in a loop.
// Signal and Broadcast may be called from any context, including interrupt
// handlers (a common pattern in the paper's protocol code).
type Cond struct {
	sched   *Sched
	name    string
	waiters []*condWaiter
}

type condWaiter struct {
	t        *Thread
	timedOut bool
	removed  bool
}

// NewCond creates a condition variable for threads on s.
func NewCond(s *Sched, name string) *Cond {
	return &Cond{sched: s, name: name}
}

// Wait atomically releases m and blocks until signaled, then re-acquires m.
func (c *Cond) Wait(t *Thread, m *Mutex) {
	w := &condWaiter{t: t}
	c.waiters = append(c.waiters, w)
	m.Unlock(t)
	t.Block("cond:" + c.name)
	m.Lock(t)
}

// WaitTimeout is Wait with a timeout; it reports true if signaled, false if
// the timeout elapsed first. In either case m is re-acquired.
func (c *Cond) WaitTimeout(t *Thread, m *Mutex, d sim.Duration) bool {
	w := &condWaiter{t: t}
	c.waiters = append(c.waiters, w)
	epoch := t.epoch + 1
	c.sched.k.After(d, func() {
		if w.removed {
			return // already signaled
		}
		w.removed = true
		w.timedOut = true
		c.remove(w)
		if t.epoch == epoch && t.state == stateBlocked {
			t.Unblock()
		}
	})
	m.Unlock(t)
	t.Block("cond:" + c.name)
	m.Lock(t)
	return !w.timedOut
}

// Signal wakes one waiter (FIFO).
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.removed {
			continue
		}
		w.removed = true
		w.t.Unblock()
		return
	}
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	waiters := c.waiters
	c.waiters = nil
	for _, w := range waiters {
		if w.removed {
			continue
		}
		w.removed = true
		w.t.Unblock()
	}
}

// HasWaiters reports whether any thread is waiting on c.
func (c *Cond) HasWaiters() bool {
	for _, w := range c.waiters {
		if !w.removed {
			return true
		}
	}
	return false
}

func (c *Cond) remove(w *condWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}
