package threads

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"nectar/internal/model"
	"nectar/internal/sim"
)

// testSched returns a kernel+scheduler with the paper's default cost model.
func testSched(t *testing.T) (*sim.Kernel, *Sched) {
	t.Helper()
	k := sim.NewKernel()
	return k, New(k, model.Default1990(), "cab0")
}

// zeroCostSched returns a scheduler whose switch/interrupt costs are zero,
// for tests that check pure ordering.
func zeroCostSched() (*sim.Kernel, *Sched) {
	k := sim.NewKernel()
	c := model.Default1990().Clone()
	c.ContextSwitch = 0
	c.InterruptEntry = 0
	c.InterruptExit = 0
	return k, New(k, c, "cab0")
}

func mustRun(t *testing.T, k *sim.Kernel) {
	t.Helper()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	k, s := testSched(t)
	var end sim.Time
	s.Fork("worker", SystemPriority, func(th *Thread) {
		th.Compute(100 * sim.Microsecond)
		end = th.Now()
	})
	mustRun(t, k)
	// First dispatch charges one context switch (20us) + 100us compute.
	want := sim.Time(120 * sim.Microsecond)
	if end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
}

func TestPriorityPreemption(t *testing.T) {
	k, s := zeroCostSched()
	var trace []string
	s.Fork("app", AppPriority, func(th *Thread) {
		trace = append(trace, fmt.Sprintf("app-start@%v", th.Now()))
		th.Compute(100 * sim.Microsecond)
		trace = append(trace, fmt.Sprintf("app-end@%v", th.Now()))
	})
	k.After(30*sim.Microsecond, func() {
		s.Fork("sys", SystemPriority, func(th *Thread) {
			trace = append(trace, fmt.Sprintf("sys-start@%v", th.Now()))
			th.Compute(40 * sim.Microsecond)
			trace = append(trace, fmt.Sprintf("sys-end@%v", th.Now()))
		})
	})
	mustRun(t, k)
	want := []string{
		"app-start@0.000us",
		"sys-start@30.000us",
		"sys-end@70.000us",
		"app-end@140.000us", // 30us consumed pre-preemption + 70us after resume at 70us
	}
	if !reflect.DeepEqual(trace, want) {
		t.Errorf("trace = %v\nwant %v", trace, want)
	}
}

func TestPreemptionChargesContextSwitch(t *testing.T) {
	k, s := testSched(t)
	cs := s.Cost().ContextSwitch
	var appEnd, sysEnd sim.Time
	s.Fork("app", AppPriority, func(th *Thread) {
		th.Compute(100 * sim.Microsecond)
		appEnd = th.Now()
	})
	k.After(50*sim.Microsecond, func() {
		s.Fork("sys", SystemPriority, func(th *Thread) {
			th.Compute(10 * sim.Microsecond)
			sysEnd = th.Now()
		})
	})
	mustRun(t, k)
	// app: dispatched at 20 (one switch), runs 30us until preempted at 50.
	// sys: switch 20 (50->70), compute 10 (->80).
	if want := sim.Time(80 * sim.Microsecond); sysEnd != want {
		t.Errorf("sysEnd = %v, want %v", sysEnd, want)
	}
	// app resumes: switch (80->100), remaining 70us (->170).
	if want := sim.Time(170 * sim.Microsecond); appEnd != want {
		t.Errorf("appEnd = %v, want %v", appEnd, want)
	}
	if s.Switches() < 3 {
		t.Errorf("switches = %d, want >= 3", s.Switches())
	}
	_ = cs
}

func TestEqualPriorityNoPreemption(t *testing.T) {
	k, s := zeroCostSched()
	var order []string
	s.Fork("a", SystemPriority, func(th *Thread) {
		th.Compute(50 * sim.Microsecond)
		order = append(order, "a")
	})
	s.Fork("b", SystemPriority, func(th *Thread) {
		th.Compute(10 * sim.Microsecond)
		order = append(order, "b")
	})
	mustRun(t, k)
	// b is shorter but must wait for a to finish: run-to-block at equal prio.
	if want := []string{"a", "b"}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestForkFIFOWithinPriority(t *testing.T) {
	k, s := zeroCostSched()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Fork(fmt.Sprintf("t%d", i), SystemPriority, func(th *Thread) {
			th.Compute(sim.Microsecond)
			order = append(order, i)
		})
	}
	mustRun(t, k)
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestBlockUnblock(t *testing.T) {
	k, s := zeroCostSched()
	var got sim.Time
	th := s.Fork("blocker", SystemPriority, func(th *Thread) {
		th.Block("test")
		got = th.Now()
	})
	k.After(77*sim.Microsecond, func() { th.Unblock() })
	mustRun(t, k)
	if want := sim.Time(77 * sim.Microsecond); got != want {
		t.Errorf("woke at %v, want %v", got, want)
	}
}

func TestSleep(t *testing.T) {
	k, s := zeroCostSched()
	var got sim.Time
	s.Fork("sleeper", SystemPriority, func(th *Thread) {
		th.Sleep(33 * sim.Microsecond)
		got = th.Now()
	})
	mustRun(t, k)
	if want := sim.Time(33 * sim.Microsecond); got != want {
		t.Errorf("woke at %v, want %v", got, want)
	}
}

func TestSleepStaleWakeupGuard(t *testing.T) {
	// A thread that is woken early from one block must not receive the
	// stale sleep timer wakeup in a later block.
	k, s := zeroCostSched()
	var wokeEarly, stale bool
	th := s.Fork("t", SystemPriority, func(th *Thread) {
		th.Sleep(100 * sim.Microsecond) // will be woken early at 10us
		wokeEarly = th.Now() == sim.Time(10*sim.Microsecond)
		th.Block("second") // must NOT be woken by the stale 100us timer
		stale = th.Now() < sim.Time(200*sim.Microsecond)
	})
	k.After(10*sim.Microsecond, func() { th.Unblock() })
	k.After(200*sim.Microsecond, func() { th.Unblock() })
	mustRun(t, k)
	if !wokeEarly {
		t.Error("early unblock did not take effect at 10us")
	}
	if stale {
		t.Error("stale sleep timer woke the second block")
	}
}

func TestJoin(t *testing.T) {
	k, s := zeroCostSched()
	var joined sim.Time
	worker := s.Fork("worker", AppPriority, func(th *Thread) {
		th.Compute(100 * sim.Microsecond)
	})
	s.Fork("joiner", SystemPriority, func(th *Thread) {
		th.Join(worker)
		joined = th.Now()
	})
	mustRun(t, k)
	if joined != sim.Time(100*sim.Microsecond) {
		t.Errorf("joined at %v, want 100us", joined)
	}
	if !worker.Done() {
		t.Error("worker not done")
	}
}

func TestJoinFinishedThread(t *testing.T) {
	k, s := zeroCostSched()
	worker := s.Fork("worker", SystemPriority, func(th *Thread) {})
	ok := false
	s.Fork("joiner", SystemPriority, func(th *Thread) {
		th.Sleep(50 * sim.Microsecond)
		th.Join(worker) // already done: returns immediately
		ok = true
	})
	mustRun(t, k)
	if !ok {
		t.Error("join on finished thread did not return")
	}
}

func TestMutexExclusionAcrossCompute(t *testing.T) {
	k, s := zeroCostSched()
	m := NewMutex("m")
	var trace []string
	for _, name := range []string{"a", "b"} {
		name := name
		s.Fork(name, SystemPriority, func(th *Thread) {
			m.Lock(th)
			trace = append(trace, name+"-in@"+th.Now().String())
			th.Compute(10 * sim.Microsecond)
			trace = append(trace, name+"-out@"+th.Now().String())
			m.Unlock(th)
		})
	}
	mustRun(t, k)
	want := []string{"a-in@0.000us", "a-out@10.000us", "b-in@10.000us", "b-out@20.000us"}
	if !reflect.DeepEqual(trace, want) {
		t.Errorf("trace = %v\nwant %v", trace, want)
	}
}

func TestMutexFIFO(t *testing.T) {
	k, s := zeroCostSched()
	m := NewMutex("m")
	var order []string
	for _, name := range []string{"a", "b", "c", "d"} {
		name := name
		s.Fork(name, SystemPriority, func(th *Thread) {
			m.Lock(th)
			th.Compute(sim.Microsecond)
			order = append(order, name)
			m.Unlock(th)
		})
	}
	mustRun(t, k)
	if want := []string{"a", "b", "c", "d"}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestTryLock(t *testing.T) {
	k, s := zeroCostSched()
	m := NewMutex("m")
	var got []bool
	s.Fork("a", SystemPriority, func(th *Thread) {
		got = append(got, m.TryLock(th)) // true
		got = append(got, m.TryLock(th)) // false (already held)
		th.Sleep(50 * sim.Microsecond)   // hold across a blocking point
		m.Unlock(th)
	})
	s.Fork("b", SystemPriority, func(th *Thread) {
		got = append(got, m.TryLock(th)) // false: a holds it across its sleep
		th.Sleep(100 * sim.Microsecond)
		got = append(got, m.TryLock(th)) // true: released
		m.Unlock(th)
	})
	mustRun(t, k)
	if want := []bool{true, false, false, true}; !reflect.DeepEqual(got, want) {
		t.Errorf("got = %v, want %v", got, want)
	}
}

func TestRecursiveLockPanics(t *testing.T) {
	k, s := zeroCostSched()
	s.Fork("a", SystemPriority, func(th *Thread) {
		m := NewMutex("m")
		m.Lock(th)
		m.Lock(th)
	})
	if err := k.Run(); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("err = %v, want recursive-lock panic", err)
	}
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	k, s := zeroCostSched()
	m := NewMutex("m")
	s.Fork("a", SystemPriority, func(th *Thread) { m.Lock(th) })
	s.Fork("b", SystemPriority, func(th *Thread) { m.Unlock(th) })
	if err := k.Run(); err == nil || !strings.Contains(err.Error(), "non-owner") {
		t.Errorf("err = %v, want non-owner panic", err)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	k, s := zeroCostSched()
	m := NewMutex("m")
	c := NewCond(s, "c")
	ready := 0
	var woken []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Fork(name, SystemPriority, func(th *Thread) {
			m.Lock(th)
			for ready == 0 {
				c.Wait(th, m)
			}
			woken = append(woken, name)
			m.Unlock(th)
		})
	}
	s.Fork("waker", SystemPriority, func(th *Thread) {
		th.Sleep(10 * sim.Microsecond)
		m.Lock(th)
		ready = 1
		c.Broadcast()
		m.Unlock(th)
	})
	mustRun(t, k)
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(woken, want) {
		t.Errorf("woken = %v, want %v", woken, want)
	}
}

func TestCondMesaSemantics(t *testing.T) {
	// Signal with no waiters is lost (Mesa): the waiter must check its
	// predicate before waiting.
	k, s := zeroCostSched()
	m := NewMutex("m")
	c := NewCond(s, "c")
	flag := false
	var sawFlag bool
	s.Fork("signaler", SystemPriority, func(th *Thread) {
		m.Lock(th)
		flag = true
		c.Signal() // no waiters yet: lost, but flag is set
		m.Unlock(th)
	})
	s.Fork("waiter", SystemPriority, func(th *Thread) {
		th.Sleep(10 * sim.Microsecond)
		m.Lock(th)
		for !flag {
			c.Wait(th, m)
		}
		sawFlag = true
		m.Unlock(th)
	})
	mustRun(t, k)
	if !sawFlag {
		t.Error("waiter never proceeded; predicate loop broken")
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k, s := zeroCostSched()
	m := NewMutex("m")
	c := NewCond(s, "c")
	var timedOut, signaled bool
	var when sim.Time
	s.Fork("w1", SystemPriority, func(th *Thread) {
		m.Lock(th)
		ok := c.WaitTimeout(th, m, 40*sim.Microsecond)
		timedOut = !ok
		when = th.Now()
		m.Unlock(th)
	})
	s.Fork("w2", SystemPriority, func(th *Thread) {
		th.Sleep(100 * sim.Microsecond)
		m.Lock(th)
		ok := c.WaitTimeout(th, m, 1000*sim.Microsecond)
		signaled = ok
		m.Unlock(th)
	})
	s.Fork("waker", SystemPriority, func(th *Thread) {
		th.Sleep(150 * sim.Microsecond)
		c.Signal()
	})
	mustRun(t, k)
	if !timedOut {
		t.Error("w1 should have timed out")
	}
	if when != sim.Time(40*sim.Microsecond) {
		t.Errorf("w1 woke at %v, want 40us", when)
	}
	if !signaled {
		t.Error("w2 should have been signaled")
	}
}

func TestCondTimeoutDoesNotEatSignal(t *testing.T) {
	// After w1 times out, a Signal must wake w2, not be consumed by w1's
	// dead waiter entry.
	k, s := zeroCostSched()
	m := NewMutex("m")
	c := NewCond(s, "c")
	w2woke := false
	s.Fork("w1", SystemPriority, func(th *Thread) {
		m.Lock(th)
		c.WaitTimeout(th, m, 10*sim.Microsecond)
		m.Unlock(th)
	})
	s.Fork("w2", SystemPriority, func(th *Thread) {
		m.Lock(th)
		c.Wait(th, m)
		w2woke = true
		m.Unlock(th)
	})
	s.Fork("waker", SystemPriority, func(th *Thread) {
		th.Sleep(50 * sim.Microsecond)
		c.Signal()
	})
	mustRun(t, k)
	if !w2woke {
		t.Error("signal was consumed by a timed-out waiter")
	}
}

func TestInterruptPreemptsThread(t *testing.T) {
	k, s := testSched(t)
	var intrAt, appEnd sim.Time
	s.Fork("app", AppPriority, func(th *Thread) {
		th.Compute(100 * sim.Microsecond)
		appEnd = th.Now()
	})
	k.After(50*sim.Microsecond, func() {
		s.RaiseInterrupt("net", func(h *Thread) {
			h.Compute(10 * sim.Microsecond)
			intrAt = h.Now()
		})
	})
	mustRun(t, k)
	// Interrupt entry 4us: handler computes 50->54->64.
	if want := sim.Time(64 * sim.Microsecond); intrAt != want {
		t.Errorf("interrupt finished at %v, want %v", intrAt, want)
	}
	if appEnd <= intrAt {
		t.Errorf("app finished at %v, before interrupt completion", appEnd)
	}
	if s.Interrupts() != 1 {
		t.Errorf("interrupts = %d, want 1", s.Interrupts())
	}
}

func TestInterruptMasking(t *testing.T) {
	k, s := testSched(t)
	var handlerAt sim.Time
	s.Fork("app", SystemPriority, func(th *Thread) {
		th.DisableInterrupts()
		th.Compute(100 * sim.Microsecond)
		th.EnableInterrupts() // pended interrupt delivered here
		th.Compute(50 * sim.Microsecond)
	})
	k.After(30*sim.Microsecond, func() {
		s.RaiseInterrupt("net", func(h *Thread) {
			handlerAt = h.Now()
		})
	})
	mustRun(t, k)
	// app dispatched at 20us, computes to 120us, then enables.
	if handlerAt < sim.Time(120*sim.Microsecond) {
		t.Errorf("handler ran at %v, during masked section", handlerAt)
	}
}

func TestNestedMasking(t *testing.T) {
	k, s := testSched(t)
	delivered := false
	s.Fork("app", SystemPriority, func(th *Thread) {
		th.DisableInterrupts()
		th.DisableInterrupts()
		th.Compute(10 * sim.Microsecond)
		th.EnableInterrupts() // still masked (depth 1)
		th.Compute(10 * sim.Microsecond)
		if delivered {
			k.Fatalf("interrupt delivered while still masked")
		}
		th.EnableInterrupts()
		th.Compute(10 * sim.Microsecond)
	})
	k.After(25*sim.Microsecond, func() {
		s.RaiseInterrupt("x", func(h *Thread) { delivered = true })
	})
	mustRun(t, k)
	if !delivered {
		t.Error("interrupt never delivered after unmask")
	}
}

func TestInterruptsNotNested(t *testing.T) {
	k, s := testSched(t)
	var order []string
	k.After(0, func() {
		s.RaiseInterrupt("first", func(h *Thread) {
			order = append(order, "first-start")
			h.Compute(50 * sim.Microsecond)
			order = append(order, "first-end")
		})
	})
	k.After(10*sim.Microsecond, func() {
		s.RaiseInterrupt("second", func(h *Thread) {
			order = append(order, "second")
		})
	})
	mustRun(t, k)
	want := []string{"first-start", "first-end", "second"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v (interrupts must not nest)", order, want)
	}
}

func TestInterruptHandlerCannotBlock(t *testing.T) {
	k, s := testSched(t)
	k.After(0, func() {
		s.RaiseInterrupt("bad", func(h *Thread) {
			h.Block("illegal")
		})
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "interrupt handler") {
		t.Errorf("err = %v, want interrupt-blocking panic", err)
	}
}

func TestInterruptWakesThread(t *testing.T) {
	// The paper's common pattern: an interrupt handler signals a condition
	// that a protocol thread waits on.
	k, s := testSched(t)
	m := NewMutex("m")
	c := NewCond(s, "packet")
	arrived := false
	var when sim.Time
	s.Fork("proto", SystemPriority, func(th *Thread) {
		m.Lock(th)
		for !arrived {
			c.Wait(th, m)
		}
		m.Unlock(th)
		when = th.Now()
	})
	k.After(40*sim.Microsecond, func() {
		s.RaiseInterrupt("rx", func(h *Thread) {
			h.Compute(5 * sim.Microsecond)
			arrived = true
			c.Signal()
		})
	})
	mustRun(t, k)
	// 40 + 4 entry + 5 compute + 2 exit, then context switch 20 -> >= 69us.
	if when < sim.Time(69*sim.Microsecond) {
		t.Errorf("thread woke at %v, too early", when)
	}
}

func TestYield(t *testing.T) {
	k, s := zeroCostSched()
	var order []string
	s.Fork("a", SystemPriority, func(th *Thread) {
		order = append(order, "a1")
		th.Yield()
		order = append(order, "a2")
	})
	s.Fork("b", SystemPriority, func(th *Thread) {
		order = append(order, "b")
	})
	mustRun(t, k)
	if want := []string{"a1", "b", "a2"}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestContextSwitchCostIsPaperValue(t *testing.T) {
	// E7: ping-pong between two threads; each handoff costs one 20us
	// context switch (§3.1).
	k, s := testSched(t)
	m := NewMutex("m")
	c := NewCond(s, "pp")
	turn := 0
	const rounds = 100
	var done sim.Time
	for id := 0; id < 2; id++ {
		id := id
		s.Fork(fmt.Sprintf("p%d", id), SystemPriority, func(th *Thread) {
			m.Lock(th)
			for i := 0; i < rounds; i++ {
				for turn != id {
					c.Wait(th, m)
				}
				turn = 1 - id
				c.Signal()
			}
			m.Unlock(th)
			done = th.Now()
		})
	}
	mustRun(t, k)
	total := sim.Duration(done)
	perSwitch := total.Micros() / float64(2*rounds)
	// Every handoff is dominated by the 20us context switch.
	if perSwitch < 19 || perSwitch > 25 {
		t.Errorf("per-handoff cost = %.1fus, want ~20us", perSwitch)
	}
}

func TestCPUTimeAccounting(t *testing.T) {
	k, s := zeroCostSched()
	var th *Thread
	th = s.Fork("w", SystemPriority, func(t2 *Thread) {
		t2.Compute(30 * sim.Microsecond)
		t2.Sleep(100 * sim.Microsecond)
		t2.Compute(20 * sim.Microsecond)
	})
	mustRun(t, k)
	if got := th.CPUTime(); got != 50*sim.Microsecond {
		t.Errorf("cpu time = %v, want 50us", got)
	}
	if s.BusyTime() != 50*sim.Microsecond {
		t.Errorf("busy time = %v, want 50us", s.BusyTime())
	}
}

func TestCPUTimeAccountingWithPreemption(t *testing.T) {
	k, s := zeroCostSched()
	var app *Thread
	app = s.Fork("app", AppPriority, func(th *Thread) {
		th.Compute(100 * sim.Microsecond)
	})
	k.After(30*sim.Microsecond, func() {
		s.Fork("sys", SystemPriority, func(th *Thread) {
			th.Compute(40 * sim.Microsecond)
		})
	})
	mustRun(t, k)
	if got := app.CPUTime(); got != 100*sim.Microsecond {
		t.Errorf("app cpu time = %v, want 100us (across preemption)", got)
	}
}

func TestManyThreadsDeterministic(t *testing.T) {
	run := func() string {
		k, s := testSched(t)
		var trace []string
		m := NewMutex("m")
		for i := 0; i < 8; i++ {
			i := i
			prio := AppPriority
			if i%2 == 0 {
				prio = SystemPriority
			}
			s.Fork(fmt.Sprintf("t%d", i), prio, func(th *Thread) {
				for j := 0; j < 3; j++ {
					m.Lock(th)
					th.Compute(sim.Duration(1+i) * sim.Microsecond)
					trace = append(trace, fmt.Sprintf("%d.%d@%v", i, j, th.Now()))
					m.Unlock(th)
					th.Sleep(sim.Duration(5*i) * sim.Microsecond)
				}
			})
		}
		mustRun(t, k)
		return strings.Join(trace, ";")
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic:\n%s\n%s", a, b)
	}
}
