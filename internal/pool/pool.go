// Package pool provides the one free-list shape the simulator kept
// reimplementing: a single-threaded LIFO of reusable values.
//
// Everything on the simulated fast path lives inside one simulation
// kernel, which runs exactly one goroutine at a time, so the list needs
// no locks; what it needs is to be allocation-free in steady state and
// to drop its reference to a slot when the slot is vacated (so pooled
// values do not pin dead buffers for the GC). Both properties are easy
// to get subtly wrong when the pattern is hand-rolled — the pre-refactor
// copies in ip (header and span scratch), cab (receive descriptors) and
// fiber (frames and packets) each re-derived them independently.
package pool

// FreeList is a LIFO free list of T. The zero value is an empty list
// ready for use. It is not safe for concurrent use; callers are
// single-threaded by construction (one kernel = one running goroutine).
type FreeList[T any] struct {
	items []T

	// check, when non-nil, is the debug double-Put guard installed by
	// SetCheck: Put scans the pooled slots with it and panics when v is
	// already pooled. nil (the default) keeps Put O(1).
	check func(a, b T) bool
}

// SetCheck installs eq as a debug guard against double-Put: every
// subsequent Put scans the pooled slots with eq and panics if v is
// already in the list. A double Put is the mirror image of a leak —
// the same value gets handed to two later Gets, and the two owners
// silently corrupt each other's buffer — and it manifests far from the
// offending release. The scan is O(n) per Put, so the guard is for
// tests and debug builds; production paths leave it unset. Pass nil to
// remove the guard.
func (f *FreeList[T]) SetCheck(eq func(a, b T) bool) { f.check = eq }

// Put pushes v onto the list. The append is to a struct field, so its
// growth is amortized across the pool's lifetime (the backing array is
// reused once warmed up).
//
//nectar:hotpath
func (f *FreeList[T]) Put(v T) {
	if f.check != nil {
		for _, old := range f.items {
			if f.check(old, v) {
				panic("pool: double Put of a pooled value")
			}
		}
	}
	f.items = append(f.items, v)
}

// Get pops the most recently Put value. The vacated slot is zeroed so
// the list does not keep the value reachable. ok is false when empty.
//
//nectar:hotpath
func (f *FreeList[T]) Get() (v T, ok bool) {
	n := len(f.items)
	if n == 0 {
		return v, false
	}
	v = f.items[n-1]
	var zero T
	f.items[n-1] = zero
	f.items = f.items[:n-1]
	return v, true
}

// Peek returns the value Get would pop without popping it. Callers use
// it to test suitability (e.g. a buffer's capacity) before committing
// to the pop.
//
//nectar:hotpath
func (f *FreeList[T]) Peek() (v T, ok bool) {
	n := len(f.items)
	if n == 0 {
		return v, false
	}
	return f.items[n-1], true
}

// Len reports how many values are pooled.
func (f *FreeList[T]) Len() int { return len(f.items) }
