package pool

import "testing"

func TestLIFOOrder(t *testing.T) {
	var f FreeList[int]
	if _, ok := f.Get(); ok {
		t.Fatal("Get on empty list reported ok")
	}
	if _, ok := f.Peek(); ok {
		t.Fatal("Peek on empty list reported ok")
	}
	f.Put(1)
	f.Put(2)
	f.Put(3)
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	if v, ok := f.Peek(); !ok || v != 3 {
		t.Fatalf("Peek = %d,%v, want 3,true", v, ok)
	}
	for want := 3; want >= 1; want-- {
		v, ok := f.Get()
		if !ok || v != want {
			t.Fatalf("Get = %d,%v, want %d,true", v, ok, want)
		}
	}
	if f.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", f.Len())
	}
}

// TestGetClearsSlot checks that popping zeroes the vacated slot, so the
// backing array does not keep popped values reachable.
func TestGetClearsSlot(t *testing.T) {
	var f FreeList[*int]
	x := new(int)
	f.Put(x)
	if v, ok := f.Get(); !ok || v != x {
		t.Fatal("round-trip failed")
	}
	// Re-grow the slice within capacity and inspect the reused slot.
	f.items = f.items[:1]
	if f.items[0] != nil {
		t.Fatal("Get left the vacated slot non-nil")
	}
}

// TestSteadyStateAllocs is the guard the ip/cab/fiber call sites rely
// on: once warm, a Get/Put cycle performs no allocations.
func TestSteadyStateAllocs(t *testing.T) {
	var f FreeList[[]byte]
	f.Put(make([]byte, 64))
	f.Put(make([]byte, 64))
	allocs := testing.AllocsPerRun(1000, func() {
		a, _ := f.Get()
		b, _ := f.Get()
		f.Put(a)
		f.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestDoublePutGuard checks the SetCheck debug guard: a Put of a value
// already in the list panics, a Put of a distinct value does not, and
// clearing the guard restores unchecked behavior.
func TestDoublePutGuard(t *testing.T) {
	var f FreeList[*int]
	f.SetCheck(func(a, b *int) bool { return a == b })
	x, y := new(int), new(int)
	f.Put(x)
	f.Put(y) // distinct value: fine
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double Put with guard installed did not panic")
			}
		}()
		f.Put(x)
	}()
	f.SetCheck(nil)
	f.Put(x) // guard removed: unchecked again
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
}
