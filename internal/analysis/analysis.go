// Package analysis implements nectar-vet: a suite of static analyzers
// that mechanically enforce the repo's determinism and hot-path
// invariants. The headline guarantees — byte-identical sharded vs.
// sequential runs, zero-alloc fast paths, and virtual-time-only
// scheduling faithful to the CAB's explicit cost model — were previously
// enforced only by tests that happened to exercise the offending code;
// one stray time.Now, an unsorted map iteration into a trace, or a raw
// go statement silently breaks reproducibility of Figures 6–8. These
// analyzers turn the conventions into checked rules.
//
// The twelve analyzers are:
//
//	walltime   — no wall-clock time (time.Now/Sleep/...) in deterministic
//	             packages; //nectar:allow-walltime <reason> escapes
//	             measurement code.
//	detrange   — no trace/metric/capture/outbox emission inside a range
//	             over a map (iteration order is nondeterministic).
//	seededrand — no global math/rand state in deterministic packages;
//	             randomness must flow from an injected *rand.Rand.
//	rawgo      — no go statements outside the approved concurrency
//	             surfaces (the PDES scheduler, the parallel sweep pool,
//	             and the kernel's Proc coroutine launcher).
//	hotpath    — functions annotated //nectar:hotpath must avoid obvious
//	             allocation sources (Sprintf/Markf, unsized append,
//	             value-to-interface conversion, capturing closures).
//	hotprop    — interprocedural extension of hotpath: every function
//	             reachable from a //nectar:hotpath root through the call
//	             graph (callgraph.go) must satisfy the same rules or
//	             carry //nectar:hotpath-exempt <reason>; diagnostics
//	             print the offending call chain.
//	shardsafe  — static race detector for the PDES coupling model:
//	             state annotated //nectar:shard-owned may only be reached
//	             through a receiver/parameter ownership chain; audited
//	             cross-domain surfaces carry //nectar:shard-boundary.
//	unitsafe   — virtual-time unit hygiene in deterministic packages: no
//	             time.Duration<->sim unit conversions, no raw numeric
//	             literals where sim.Duration/sim.Time is expected, and no
//	             unit-dropping numeric casts outside package sim.
//	obsgate    — zero-cost observability, proven by dataflow (cfg.go,
//	             dataflow.go): every obs trace/capture emission whose
//	             arguments allocate or format must be dominated by the
//	             matching enabled-guard branch, including allocations
//	             escaping through locals; metric emissions must not take
//	             allocating arguments at all.
//	costmodel  — latency-model soundness, proven on the call graph: every
//	             path from protocol/datalink code to a fiber/VME transmit
//	             must charge a model.CostModel latency before the
//	             transmit; //nectar:free-hop <reason> waives audited pure
//	             forwarding steps.
//	detfail    — failure-path determinism: deterministic packages fail
//	             through Kernel.Fatalf or sim.Panicf, never os.Exit, the
//	             global log package, or ad-hoc panic(fmt.Sprintf(...));
//	             //nectar:diag-helper <reason> marks the sanctioned
//	             diagnostic surfaces.
//	poollife   — pooled-object lifecycle proofs, via the backward
//	             dataflow solver (backward.go): every value acquired from
//	             a pool surface (FreeList.Get, fiber.Pool frames/packets,
//	             cab receive descriptors, ip header/span buffers, sim
//	             timers) must reach a release or an explicit ownership
//	             transfer on every path; flags leaks, discarded acquires,
//	             double-releases, and use-after-release.
//	             //nectar:takes-ownership <param> <reason> moves the
//	             obligation into a callee; //nectar:leak-ok <reason>
//	             waives a deliberate sink.
//
// The types below mirror the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) so the analyzers read idiomatically and
// could be rehosted on the upstream driver verbatim; the driver itself
// (load.go, vet.go) is implemented on the standard library only, because
// this module deliberately has no external dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Report. The returned value is unused (kept for API parity
	// with golang.org/x/tools/go/analysis).
	Run func(*Pass) (any, error)
}

// Pass provides one analyzer with the parsed, type-checked syntax of one
// package, plus the Report sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// PkgPath is the package's import path as the build system names it
	// (go list / vet config). For test variants ("pkg [pkg.test]") it is
	// canonicalized to the plain import path.
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// Program supplies whole-program context (call graph, cross-package
	// facts) to the interprocedural analyzers. It is nil under drivers
	// that only see one package at a time (go vet units, analysistest);
	// those analyzers then degrade to a single-package view built from
	// this pass.
	Program *Program
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
	// Chain is the offending call chain for interprocedural findings
	// (hotprop), from the annotated root to the function containing Pos.
	// Empty for intraprocedural findings.
	Chain []string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether pos lies in a _test.go file. The determinism
// analyzers exempt test files: tests measure wall clock, seed their own
// RNGs, and spawn goroutines under the race detector on purpose.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// canonicalPkgPath strips the test-variant suffix go list uses for
// packages recompiled with their test files ("pkg [pkg.test]" -> "pkg").
func canonicalPkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// pkgNameOf resolves an identifier used as a package qualifier, returning
// the imported package's path ("" when expr is not a package name).
func pkgNameOf(info *types.Info, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// recvPkgPath returns the defining package path and method name for a
// method call selector, or ("", "") when sel is not a method selection.
func recvPkgPath(info *types.Info, sel *ast.SelectorExpr) (pkg, name string) {
	s, ok := info.Selections[sel]
	if !ok {
		return "", ""
	}
	obj := s.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// All returns the full nectar-vet analyzer suite in reporting order: the
// five intraprocedural analyzers from the original suite, the
// interprocedural ones built on the call graph (hotprop, shardsafe,
// costmodel), the unit-safety checker (unitsafe), the dataflow-based
// observability and failure-path checkers (obsgate, detfail), and the
// backward-dataflow lifecycle checker (poollife).
func All() []*Analyzer {
	return []*Analyzer{Walltime, Detrange, Seededrand, Rawgo, Hotpath, Hotprop, Shardsafe, Unitsafe, Obsgate, Costmodel, Detfail, Poollife}
}
