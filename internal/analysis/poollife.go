package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Poollife proves pooled-object lifecycles: every value acquired from a
// pool surface — a pool.FreeList slot, a fiber.Pool frame or packet, a
// cab receive descriptor, an ip header/span buffer, a sim.Timer — must
// reach a release (Put/Release/Stop) or an explicit ownership transfer
// on every control-flow path. The zero-alloc fast path (see
// EXPERIMENTS.md) rests entirely on these hand-managed lifecycles: one
// missed Release on an error branch silently degrades the pool back to
// allocation and erodes exactly the per-event wins BENCH_kernel.json
// records, without failing a single functional test.
//
// Three checks per function, over the CFGs of cfg.go:
//
//   - Leak: a backward must-settle analysis (solveBackward, the dual of
//     obsgate's forward solve) computes, at every acquire site, whether
//     the value is settled — released or ownership-transferred — on
//     every path to a return or panic. Transfers are: storing into a
//     field/index/global, returning the value, capturing it in a
//     closure, sending it on a channel, placing it in a composite
//     literal, appending it to a slice, or passing it to a callee that
//     either carries //nectar:takes-ownership <param> <reason> or is
//     outside the analyzed program (dynamic calls, interface methods,
//     externals). A call to an in-program function NOT so annotated is
//     a borrow: the obligation stays with the caller. The conditional
//     acquire `v, ok := fl.Get()` is refined on branch edges: where ok
//     is known false, no value was produced and nothing is owed.
//   - Double-release: a forward state machine (solve) flags a release
//     on a path that has already released the same value, including an
//     explicit release shadowed by a pending `defer v.Release()`.
//   - Use-after-release: any read of a value on a path that has already
//     released it.
//
// A discarded acquire (`fl.Get()` as a bare statement, or a result
// bound to _) leaks immediately and is flagged at the call, except for
// fire-and-forget surfaces (Kernel.At/After: an unbound timer is
// kernel-owned until it fires).
//
// //nectar:takes-ownership also seeds the obligation inside the callee:
// the annotated parameter must itself be settled on every path.
// //nectar:leak-ok <reason> waives a leak or discard finding with the
// same placement rules as allow-walltime (own line, next line, or the
// whole function via the doc comment); double-releases and
// use-after-release are never waivable. Both directives are inventoried
// by nectar-vet -waivers.
var Poollife = &Analyzer{
	Name: "poollife",
	Doc: "every value acquired from a pool surface (FreeList.Get, fiber.Pool frames/packets, cab receive descriptors, " +
		"ip header/span buffers, sim timers) must reach a release or an explicit ownership transfer on every path; " +
		"flags leaks, discarded acquires, double-releases, and use-after-release. " +
		"//nectar:takes-ownership <param> <reason> transfers the obligation to a callee; " +
		"//nectar:leak-ok <reason> waives a deliberate sink. Also validates takes-ownership placement.",
	Run: runPoollife,
}

// plAcquireSpec describes one pool surface that creates a release
// obligation for its result.
type plAcquireSpec struct {
	label string // what the value is, for diagnostics
	// okResult marks the (T, bool) shape: the obligation exists only on
	// edges where the second result is true.
	okResult bool
	// mayDiscard sanctions ignoring the result entirely (fire-and-forget
	// timers are kernel-owned until they fire); a result that IS bound
	// still owes a release.
	mayDiscard bool
}

var plAcquires = map[string]plAcquireSpec{
	"(*nectar/internal/pool.FreeList[T]).Get":    {label: "pooled slot", okResult: true},
	"(*nectar/internal/hw/fiber.Pool).GetFrame":  {label: "pooled frame"},
	"(*nectar/internal/hw/fiber.Pool).GetPacket": {label: "pooled packet"},
	"(*nectar/internal/hw/cab.CAB).getDesc":      {label: "receive descriptor"},
	"(*nectar/internal/proto/ip.Layer).getHdr":   {label: "pooled header buffer"},
	"(*nectar/internal/proto/ip.Layer).getSpans": {label: "pooled span slice"},
	"(*nectar/internal/sim.Kernel).At":           {label: "timer", mayDiscard: true},
	"(*nectar/internal/sim.Kernel).After":        {label: "timer", mayDiscard: true},
}

// plReleaseSpec describes one release surface. The released value is the
// receiver unless arg is set (FreeList.Put releases its argument).
type plReleaseSpec struct {
	name string // short name for diagnostics (Put, Release, Stop)
	arg  bool
}

var plReleases = map[string]plReleaseSpec{
	"(*nectar/internal/pool.FreeList[T]).Put":    {name: "Put", arg: true},
	"(*nectar/internal/hw/fiber.Packet).Release": {name: "Release"},
	"(*nectar/internal/hw/cab.RxDesc).Release":   {name: "Release"},
	"(nectar/internal/sim.Timer).Stop":           {name: "Stop"},
}

func runPoollife(pass *Pass) (any, error) {
	if !IsDeterministicPkg(canonicalPkgPath(pass.PkgPath)) {
		return nil, nil
	}
	// Placement: //nectar:takes-ownership must be a function
	// declaration's doc comment naming one of its parameters (or its
	// receiver) — anywhere else it silently transfers nothing.
	for _, f := range pass.Files {
		onDecl := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				d, ok := parseDirective(pass.Fset, c)
				if !ok || d.verb != DirTakesOwner {
					continue
				}
				onDecl[fd.Doc] = true
				fields := strings.Fields(d.arg)
				if len(fields) < 2 {
					continue // hygiene (walltime) reports the malformed form
				}
				if paramIdent(fd, fields[0]) == nil {
					pass.Reportf(d.pos, "//nectar:takes-ownership names %q, which is not a parameter or receiver of %s", fields[0], fd.Name.Name)
				}
			}
		}
		for _, cg := range f.Comments {
			if onDecl[cg] {
				continue
			}
			for _, c := range cg.List {
				if d, ok := parseDirective(pass.Fset, c); ok && d.verb == DirTakesOwner {
					pass.Reportf(d.pos, "//nectar:takes-ownership must be part of a function declaration's doc comment")
				}
			}
		}
	}

	prog := programFor(pass)
	prog.ensureGraph()
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		pc := &plChecker{
			pass:   pass,
			prog:   prog,
			sup:    newSuppressor(pass, f, DirLeakOK),
			events: make(map[ast.Node]*plEvents),
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var owned []*ast.Ident
			if n := prog.byPos[fd.Pos()]; n != nil {
				for _, name := range n.Takes {
					if id := paramIdent(fd, name); id != nil {
						owned = append(owned, id)
					}
				}
			}
			pc.checkFunc(fd.Body, owned)
		}
	}
	return nil, nil
}

// paramIdent finds the parameter or receiver of fd with the given name.
func paramIdent(fd *ast.FuncDecl, name string) *ast.Ident {
	var lists []*ast.FieldList
	if fd.Recv != nil {
		lists = append(lists, fd.Recv)
	}
	if fd.Type.Params != nil {
		lists = append(lists, fd.Type.Params)
	}
	for _, fl := range lists {
		for _, field := range fl.List {
			for _, id := range field.Names {
				if id.Name == name {
					return id
				}
			}
		}
	}
	return nil
}

// plAcquire is one obligation-creating site in a function body.
type plAcquire struct {
	obj  types.Object // the bound variable
	ok   types.Object // the ok bool of a conditional acquire, or nil
	pos  token.Pos
	spec plAcquireSpec
}

// plRelease is one release call inside a node.
type plRelease struct {
	obj  types.Object
	pos  token.Pos
	name string
}

// plEvents is the lifecycle-relevant content of one CFG node, extracted
// once and shared by the backward and forward transfer functions.
type plEvents struct {
	kills    []types.Object    // plain-ident rebinds: facts below don't apply above
	moves    [][2]types.Object // {dst, src} ident-to-ident assignments
	settles  []types.Object    // unconditional ownership transfers
	releases []plRelease
	acquires []*plAcquire
	deferred bool         // node is a DeferStmt: releases are pending, not done
	uses     []*ast.Ident // every other identifier occurrence
}

// plChecker runs poollife over one file's functions.
type plChecker struct {
	pass   *Pass
	prog   *Program
	sup    *suppressor
	events map[ast.Node]*plEvents

	// okToRes maps the ok bool of a conditional acquire to the acquired
	// value, for branch-edge refinement. Rebuilt per function.
	okToRes map[types.Object]types.Object
}

// checkFunc analyzes one function or closure body. owned lists the
// //nectar:takes-ownership parameters whose obligation is seeded at
// entry. Nested closures are analyzed independently (their captures
// settle the enclosing function's obligations at the capture point).
func (pc *plChecker) checkFunc(body *ast.BlockStmt, owned []*ast.Ident) {
	for _, lit := range directLits(body) {
		pc.checkFunc(lit.Body, nil)
	}

	cfg := buildCFG(body)
	pc.okToRes = make(map[types.Object]types.Object)
	acquires := make(map[ast.Node][]*plAcquire)
	nAcquires := 0
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			for _, acq := range pc.nodeEvents(n).acquires {
				acquires[n] = append(acquires[n], acq)
				nAcquires++
				if acq.ok != nil {
					pc.okToRes[acq.ok] = acq.obj
				}
			}
		}
	}

	var seeds []types.Object
	seedPos := make(map[types.Object]token.Pos)
	for _, id := range owned {
		if obj := pc.pass.TypesInfo.Defs[id]; obj != nil {
			seeds = append(seeds, obj)
			seedPos[obj] = id.Pos()
		}
	}
	if nAcquires == 0 && len(seeds) == 0 {
		return
	}

	pc.checkLeaks(cfg, acquires, seeds, seedPos)
	pc.checkReleases(cfg, seeds)
}

// checkLeaks runs the backward must-settle analysis and reports every
// obligation that can reach a function exit unsettled.
func (pc *plChecker) checkLeaks(cfg *CFG, acquires map[ast.Node][]*plAcquire, seeds []types.Object, seedPos map[types.Object]token.Pos) {
	out, reached := solveBackward(cfg, backflow[plSet]{
		exit:     plSet{},
		join:     plSetJoin,
		equal:    plSetEqual,
		transfer: pc.settleTransfer,
		branch:   pc.settleBranch,
	})
	entry := cfg.Blocks[0]
	var entryFact plSet
	for _, blk := range cfg.Blocks {
		if !reached[blk.Index] {
			// No path from here to any exit (infinite event loop): a held
			// value is never abandoned, so nothing leaks.
			continue
		}
		f := out[blk.Index]
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			n := blk.Nodes[i]
			for _, acq := range acquires[n] {
				if !f[acq.obj] && !pc.sup.allows(pc.pass, acq.pos) {
					pc.pass.Reportf(acq.pos,
						"%s %s is not released on every path: a return or panic is reachable while it is still held; release it, transfer ownership, or waive with //nectar:leak-ok <reason>",
						acq.spec.label, acq.obj.Name())
				}
			}
			f = pc.settleTransfer(n, f)
		}
		if blk == entry {
			entryFact = f
		}
	}
	if reached[entry.Index] {
		for _, obj := range seeds {
			if !entryFact[obj] && !pc.sup.allows(pc.pass, seedPos[obj]) {
				pc.pass.Reportf(seedPos[obj],
					"//nectar:takes-ownership parameter %s is not released on every path: a return or panic is reachable while it is still held",
					obj.Name())
			}
		}
	}
}

// Forward lifecycle states, ordered so join can take the maximum: a
// path that released (or escaped) dominates one that merely holds — a
// later release or use is a bug on at least that path.
const (
	plHeld     uint8 = 1
	plDeferred uint8 = 2
	plReleased uint8 = 3
	plEscaped  uint8 = 4
)

// checkReleases runs the forward state machine and reports
// double-releases and uses after release.
func (pc *plChecker) checkReleases(cfg *CFG, seeds []types.Object) {
	entry := plState{}
	for _, obj := range seeds {
		entry[obj] = plHeld
	}
	in, reached := solve(cfg, flow[plState]{
		entry:    entry,
		join:     plStateJoin,
		equal:    plStateEqual,
		transfer: func(n ast.Node, f plState) plState { return pc.stateTransfer(n, f, false) },
		branch:   pc.stateBranch,
	})
	for _, blk := range cfg.Blocks {
		if !reached[blk.Index] {
			continue
		}
		f := in[blk.Index]
		for _, n := range blk.Nodes {
			f = pc.stateTransfer(n, f, true)
		}
	}
}

// stateTransfer applies one node to the forward lifecycle states. The
// solving passes run with report=false; the final replay reports.
func (pc *plChecker) stateTransfer(n ast.Node, f plState, report bool) plState {
	ev := pc.nodeEvents(n)
	if len(ev.kills) == 0 && len(ev.moves) == 0 && len(ev.settles) == 0 &&
		len(ev.releases) == 0 && len(ev.acquires) == 0 && !(report && len(ev.uses) > 0) {
		return f
	}
	out := f.clone()
	if report {
		for _, id := range ev.uses {
			obj := identVar(pc.pass.TypesInfo, id)
			if obj != nil && out[obj] == plReleased {
				pc.pass.Reportf(id.Pos(), "use of %s after release: a path to this point has already released it", obj.Name())
			}
		}
	}
	for _, rel := range ev.releases {
		switch out[rel.obj] {
		case plReleased:
			if report {
				pc.pass.Reportf(rel.pos, "double release of %s: a path to this %s has already released it", rel.obj.Name(), rel.name)
			}
		case plDeferred:
			if report {
				pc.pass.Reportf(rel.pos, "double release of %s: a deferred release of it is already pending", rel.obj.Name())
			}
		case plEscaped:
			// Ownership moved elsewhere; a later release through the
			// local is the new owner's business, not provably double.
		default:
			if ev.deferred {
				out[rel.obj] = plDeferred
			} else {
				out[rel.obj] = plReleased
			}
		}
	}
	// Kills before moves: for c := b the old binding of c dies and the
	// new one inherits b's state.
	for _, k := range ev.kills {
		delete(out, k)
	}
	for _, mv := range ev.moves {
		if st, ok := out[mv[1]]; ok {
			out[mv[0]] = st
		}
	}
	for _, s := range ev.settles {
		if out[s] == plHeld {
			out[s] = plEscaped
		}
	}
	for _, acq := range ev.acquires {
		out[acq.obj] = plHeld
	}
	return out
}

// stateBranch drops obligations on edges where a conditional acquire's
// ok is known false: no value was produced.
func (pc *plChecker) stateBranch(cond ast.Expr, takenTrue bool, f plState) plState {
	objs := falseCondVars(pc.pass.TypesInfo, cond, takenTrue)
	out := f
	copied := false
	for _, o := range objs {
		res, ok := pc.okToRes[o]
		if !ok {
			continue
		}
		if _, tracked := out[res]; !tracked {
			continue
		}
		if !copied {
			out = out.clone()
			copied = true
		}
		delete(out, res)
	}
	return out
}

// settleTransfer is the backward transfer: given the settled set after
// n, return the set before it.
func (pc *plChecker) settleTransfer(n ast.Node, f plSet) plSet {
	ev := pc.nodeEvents(n)
	if len(ev.kills) == 0 && len(ev.moves) == 0 && len(ev.settles) == 0 && len(ev.releases) == 0 {
		return f
	}
	out := f.clone()
	// A move w = v first: v inherits whatever fate w has below.
	for _, mv := range ev.moves {
		if f[mv[0]] {
			out[mv[1]] = true
		}
	}
	for _, k := range ev.kills {
		delete(out, k)
	}
	for _, rel := range ev.releases {
		out[rel.obj] = true
	}
	for _, s := range ev.settles {
		out[s] = true
	}
	return out
}

// settleBranch settles conditionally acquired values on edges where
// their ok is known false.
func (pc *plChecker) settleBranch(cond ast.Expr, takenTrue bool, f plSet) plSet {
	objs := falseCondVars(pc.pass.TypesInfo, cond, takenTrue)
	out := f
	copied := false
	for _, o := range objs {
		if res, ok := pc.okToRes[o]; ok {
			if !copied {
				out = f.clone()
				copied = true
			}
			out[res] = true
		}
	}
	return out
}

// falseCondVars returns the variables known false when cond evaluates
// to val: `ok` (val false), `!ok` (val true), and both arms of an ||
// on its false edge.
func falseCondVars(info *types.Info, cond ast.Expr, val bool) []types.Object {
	switch c := cond.(type) {
	case *ast.Ident:
		if !val {
			if obj := identVar(info, c); obj != nil {
				return []types.Object{obj}
			}
		}
	case *ast.ParenExpr:
		return falseCondVars(info, c.X, val)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return falseCondVars(info, c.X, !val)
		}
	case *ast.BinaryExpr:
		if c.Op == token.LOR && !val {
			return append(falseCondVars(info, c.X, false), falseCondVars(info, c.Y, false)...)
		}
	}
	return nil
}

// nodeEvents extracts (and caches) the lifecycle events of one CFG
// node. Discarded-acquire diagnostics are reported here, exactly once
// per node (the cache guarantees single extraction).
func (pc *plChecker) nodeEvents(n ast.Node) *plEvents {
	if ev, ok := pc.events[n]; ok {
		return ev
	}
	ev := &plEvents{}
	pc.events[n] = ev
	info := pc.pass.TypesInfo

	// The RangeStmt node stands in for the per-iteration key/value
	// assignment only; its X and body are separate CFG nodes.
	if rs, ok := n.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := identVar(info, id); obj != nil {
					ev.kills = append(ev.kills, obj)
				}
			}
		}
		return ev
	}
	if _, ok := n.(*ast.DeferStmt); ok {
		ev.deferred = true
	}

	// stmtCall is the call that IS the statement: the one position
	// where an un-bound acquire is a discard rather than a value
	// flowing into an enclosing expression.
	var stmtCall *ast.CallExpr
	if es, ok := n.(*ast.ExprStmt); ok {
		x := es.X
		for {
			p, ok := x.(*ast.ParenExpr)
			if !ok {
				break
			}
			x = p.X
		}
		stmtCall, _ = x.(*ast.CallExpr)
	}

	// skipIdents marks identifiers with a dedicated role (assignment
	// targets, release targets, move sources) so the generic use scan
	// ignores them. handled marks acquire calls consumed by an
	// enclosing assignment or declaration.
	skipIdents := make(map[*ast.Ident]bool)
	handled := make(map[*ast.CallExpr]bool)

	var walk func(x ast.Node)

	settleRoot := func(e ast.Expr) {
		if obj := rootIdentVar(info, e, nil); obj != nil {
			ev.settles = append(ev.settles, obj)
		}
	}

	// acquireCall records an acquire bound by lhs (nil for none), or
	// reports a discard for an un-bound non-discardable surface.
	acquireCall := func(call *ast.CallExpr, spec plAcquireSpec, lhs []ast.Expr) {
		acq := &plAcquire{pos: call.Pos(), spec: spec}
		if len(lhs) > 0 {
			if id, ok := plainIdent(lhs[0]); ok && id.Name != "_" {
				acq.obj = identVar(info, id)
			}
		}
		if acq.obj == nil {
			if !spec.mayDiscard && !pc.sup.allows(pc.pass, call.Pos()) {
				fn := calleeFunc(info, call)
				pc.pass.Reportf(call.Pos(),
					"the %s returned by %s is discarded and leaks; bind and release it, transfer ownership, or waive with //nectar:leak-ok <reason>",
					spec.label, displayName(fn))
			}
			return
		}
		if spec.okResult && len(lhs) > 1 {
			if id, ok := plainIdent(lhs[1]); ok && id.Name != "_" {
				acq.ok = identVar(info, id)
			}
		}
		ev.acquires = append(ev.acquires, acq)
	}

	// callEvents classifies one call: release target, acquire surface,
	// ownership transfer to an annotated callee, conservative escape to
	// a callee the analysis cannot see, or builtin.
	callEvents := func(call *ast.CallExpr) {
		walkRest := func() {
			for _, a := range call.Args {
				walk(a)
			}
			walk(call.Fun)
		}
		fn := calleeFunc(info, call)
		if fn != nil {
			id := funcID(fn)
			if spec, ok := plReleases[id]; ok {
				var target ast.Expr
				if spec.arg {
					if len(call.Args) > 0 {
						target = call.Args[0]
					}
				} else if sel, ok := unparenIndex(call.Fun).(*ast.SelectorExpr); ok {
					target = sel.X
				}
				if tid, ok := plainIdent(target); ok {
					if obj := identVar(info, tid); obj != nil {
						skipIdents[tid] = true
						ev.releases = append(ev.releases, plRelease{obj: obj, pos: call.Pos(), name: spec.name})
					}
				}
				walkRest()
				return
			}
			if spec, ok := plAcquires[id]; ok {
				if !handled[call] && call == stmtCall {
					acquireCall(call, spec, nil)
				}
				// Embedded in a larger expression: the value flows
				// straight into the consumer; no local obligation.
				walkRest()
				return
			}
			if node := pc.prog.fns[id]; node != nil {
				// In-program callee: arguments at //nectar:takes-ownership
				// positions (and an annotated receiver) transfer;
				// everything else is a borrow — the obligation stays here.
				if len(node.Takes) > 0 && node.Decl != nil {
					taken := make(map[string]bool, len(node.Takes))
					for _, p := range node.Takes {
						taken[p] = true
					}
					for i, name := range paramNames(node.Decl) {
						if taken[name] && i < len(call.Args) {
							settleRoot(call.Args[i])
						}
					}
					if node.Decl.Recv != nil && len(node.Decl.Recv.List) > 0 {
						for _, rid := range node.Decl.Recv.List[0].Names {
							if taken[rid.Name] {
								if sel, ok := unparenIndex(call.Fun).(*ast.SelectorExpr); ok {
									settleRoot(sel.X)
								}
							}
						}
					}
				}
				walkRest()
				return
			}
			// Declared function outside the program (stdlib, interface
			// method, another unit in go vet mode): conservatively an
			// ownership transfer for every argument and the receiver.
			pc.escapeArgs(call, ev)
			walkRest()
			return
		}
		if id, ok := unparenIndex(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "append":
					for _, a := range call.Args[1:] {
						settleRoot(a)
					}
				case "panic":
					for _, a := range call.Args {
						settleRoot(a)
					}
				}
				for _, a := range call.Args {
					walk(a)
				}
				return
			}
		}
		// Dynamic call (func value, method value): the callee is
		// invisible, so every argument escapes.
		pc.escapeArgs(call, ev)
		walkRest()
	}

	// assignEvents handles one assignment: plain-ident targets kill
	// (and pair into moves with plain-ident sources); stores through
	// any other lvalue settle the stored value, except self-updates
	// (pkt.Route = pkt.Route[1:]), which neither transfer nor kill.
	assignEvents := func(as *ast.AssignStmt) {
		paired := len(as.Lhs) == len(as.Rhs)
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				skipIdents[id] = true
				if id.Name == "_" {
					continue
				}
				obj := identVar(info, id)
				if obj == nil {
					continue
				}
				ev.kills = append(ev.kills, obj)
				if paired {
					if src, ok := as.Rhs[i].(*ast.Ident); ok {
						if sobj := identVar(info, src); sobj != nil {
							ev.moves = append(ev.moves, [2]types.Object{obj, sobj})
							skipIdents[src] = true
						}
					}
				}
				continue
			}
			lroot := rootIdentVar(info, lhs, nil)
			rhs := as.Rhs
			if paired {
				rhs = as.Rhs[i : i+1]
			}
			for _, r := range rhs {
				if obj := rootIdentVar(info, r, nil); obj != nil && obj != lroot {
					ev.settles = append(ev.settles, obj)
				}
			}
		}
		if len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil {
					if spec, ok := plAcquires[funcID(fn)]; ok {
						handled[call] = true
						acquireCall(call, spec, as.Lhs)
					}
				}
			}
		}
		for _, r := range as.Rhs {
			walk(r)
		}
		for _, l := range as.Lhs {
			walk(l)
		}
	}

	walk = func(x ast.Node) {
		ast.Inspect(x, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				// Closure capture settles enclosing objects at the
				// creation point; the body is analyzed separately.
				ast.Inspect(x.Body, func(y ast.Node) bool {
					id, ok := y.(*ast.Ident)
					if !ok {
						return true
					}
					obj := identVar(info, id)
					if obj != nil && (obj.Pos() < x.Pos() || obj.Pos() >= x.End()) {
						ev.settles = append(ev.settles, obj)
					}
					return true
				})
				return false
			case *ast.AssignStmt:
				assignEvents(x)
				return false
			case *ast.ValueSpec:
				// var v = expr: same kill/acquire shape as :=.
				for _, id := range x.Names {
					skipIdents[id] = true
					if id.Name == "_" {
						continue
					}
					if obj := identVar(info, id); obj != nil {
						ev.kills = append(ev.kills, obj)
					}
				}
				if len(x.Values) == 1 {
					if call, ok := x.Values[0].(*ast.CallExpr); ok {
						if fn := calleeFunc(info, call); fn != nil {
							if spec, ok := plAcquires[funcID(fn)]; ok {
								handled[call] = true
								lhs := make([]ast.Expr, len(x.Names))
								for i, id := range x.Names {
									lhs[i] = id
								}
								acquireCall(call, spec, lhs)
							}
						}
					}
				}
				for _, v := range x.Values {
					walk(v)
				}
				return false
			case *ast.CallExpr:
				callEvents(x)
				return false
			case *ast.SendStmt:
				if obj := rootIdentVar(info, x.Value, nil); obj != nil {
					ev.settles = append(ev.settles, obj)
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					settleRoot(r)
				}
			case *ast.CompositeLit:
				for _, elt := range x.Elts {
					e := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						e = kv.Value
					}
					settleRoot(e)
				}
			case *ast.Ident:
				if !skipIdents[x] && identVar(info, x) != nil {
					ev.uses = append(ev.uses, x)
				}
			}
			return true
		})
	}
	walk(n)
	return ev
}

// escapeArgs settles every argument (and a plain method-call receiver)
// of a call whose callee the analysis cannot see.
func (pc *plChecker) escapeArgs(call *ast.CallExpr, ev *plEvents) {
	info := pc.pass.TypesInfo
	for _, a := range call.Args {
		if obj := rootIdentVar(info, a, nil); obj != nil {
			ev.settles = append(ev.settles, obj)
		}
	}
	if sel, ok := unparenIndex(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := plainIdent(sel.X); ok {
			if obj := identVar(info, id); obj != nil {
				ev.settles = append(ev.settles, obj)
			}
		}
	}
}

// --- fact lattices ---

// plSet is the backward must-settle fact: the set of objects released
// or ownership-transferred on every path from here to an exit.
type plSet map[types.Object]bool

func (s plSet) clone() plSet {
	out := make(plSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func plSetJoin(a, b plSet) plSet {
	out := plSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func plSetEqual(a, b plSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// plState is the forward lifecycle fact: per-object state, joined by
// maximum (a release on any path dominates a hold).
type plState map[types.Object]uint8

func (s plState) clone() plState {
	out := make(plState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func plStateJoin(a, b plState) plState {
	out := make(plState, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if v > out[k] {
			out[k] = v
		}
	}
	return out
}

func plStateEqual(a, b plState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// --- small helpers ---

// directLits returns the function literals directly contained in body,
// not descending into them (each literal finds its own children).
func directLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	return lits
}

// calleeFunc resolves a call's static callee, nil for dynamic calls
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparenIndex(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// paramNames returns fd's parameter names in declaration order,
// expanding grouped parameters (a, b int).
func paramNames(fd *ast.FuncDecl) []string {
	if fd.Type.Params == nil {
		return nil
	}
	var names []string
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			names = append(names, "")
			continue
		}
		for _, id := range field.Names {
			names = append(names, id.Name)
		}
	}
	return names
}

// plainIdent unwraps parentheses around a bare identifier.
func plainIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// identVar resolves an identifier to the local/parameter variable it
// names, nil for anything else (fields, package names, functions).
func identVar(info *types.Info, id *ast.Ident) types.Object {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

// rootIdentVar resolves the leftmost identifier of an expression (x for
// x.f, x[i], x[:n], &x, *x) to its variable. skip, when non-nil, marks
// the root identifier so the generic use scan ignores it.
func rootIdentVar(info *types.Info, e ast.Expr, skip map[*ast.Ident]bool) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if skip != nil {
				skip[x] = true
			}
			return identVar(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
