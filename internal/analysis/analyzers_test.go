package analysis_test

import (
	"testing"

	"nectar/internal/analysis"
	"nectar/internal/analysis/analysistest"
)

// Each analyzer is exercised against fixtures with at least one failing
// (// want) and one passing case; the walltime fixtures also pin down
// the //nectar: directive grammar (misspelled verb, missing reason,
// directive on the wrong line).

func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Walltime,
		"nectar/internal/sim/wtpos", // positives + directive edge cases
		"other/clock",               // non-deterministic package: silent
	)
}

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Seededrand,
		"nectar/internal/proto/srpos", // positives + injected-Rand negatives
		"other/rnd",                   // non-deterministic package: silent
	)
}

func TestRawgo(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Rawgo,
		// One package holding an approved file (pdes.go — silent), an
		// unapproved file (diagnosed), and a test file (exempt).
		"rawgotest/internal/sim",
	)
}

func TestDetrange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Detrange,
		"detrangetest",
	)
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Hotpath,
		"hotpathtest",
	)
}

func TestHotprop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Hotprop,
		"hotproptest",
	)
}

func TestShardsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Shardsafe,
		"shardsafetest",
	)
}

func TestCostmodel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Costmodel,
		"nectar/internal/proto/cmpos", // uncharged chains, charges, waivers, placement
		"other/costfree",              // non-deterministic package: silent
	)
}

func TestDetfail(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Detfail,
		"nectar/internal/sim/dfpos", // os.Exit, log, ad-hoc panics, helpers, placement
		"other/failures",            // non-deterministic package: silent
	)
}

func TestObsgate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Obsgate,
		"nectar/internal/hw/ogpos", // guard spellings, taint escapes, closures, metrics
		"other/tracearg",           // non-deterministic package: silent
	)
}

func TestPoollife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Poollife,
		"nectar/internal/hw/pltest", // leaks, transfers, double-release, waivers, placement
		"other/pooluse",             // non-deterministic package: silent
	)
}

func TestUnitsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Unitsafe,
		"nectar/internal/sim/uspos", // deterministic package: positives + sanctioned forms
		"other/units",               // non-deterministic package: silent
	)
}
