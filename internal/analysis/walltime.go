package analysis

import (
	"go/ast"
)

// walltimeForbidden lists the package-level time functions that read or
// wait on the machine's clock. Deterministic packages run on sim virtual
// time exclusively: a single time.Now in a protocol layer makes two runs
// of the same seed diverge, which breaks the byte-identical guarantee
// behind Figures 6–8 and the sharded-vs-sequential comparison.
var walltimeForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// Walltime forbids wall-clock time in deterministic packages.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time (time.Now/Sleep/After/Since/NewTimer/Tick/...) in deterministic packages; " +
		"simulation logic must use sim virtual time. Measurement code escapes with //nectar:allow-walltime <reason>. " +
		"Also validates //nectar: directive hygiene (unknown verbs, missing reasons).",
	Run: runWalltime,
}

func runWalltime(pass *Pass) (any, error) {
	det := IsDeterministicPkg(pass.PkgPath)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// Directive hygiene is validated everywhere, including
		// non-deterministic packages: a typoed directive is a latent bug
		// wherever it sits.
		checkDirectiveHygiene(pass, f)
		if !det {
			continue
		}
		sup := newSuppressor(pass, f, DirAllowWalltime)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgNameOf(pass.TypesInfo, sel.X) != "time" || !walltimeForbidden[sel.Sel.Name] {
				return true
			}
			if sup.allows(pass, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall-clock time.%s in deterministic package %s: simulation logic must use sim virtual time "+
					"(annotate measurement code with //nectar:allow-walltime <reason>)",
				sel.Sel.Name, canonicalPkgPath(pass.PkgPath))
			return true
		})
	}
	return nil, nil
}
