package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Obsgate makes PR 1's "provably zero cost when disabled" observability
// claim a static theorem. The obs emission surfaces themselves are
// nil-tolerant and allocation-free, so a *bare* emission with cheap
// arguments is legal anywhere; what breaks the claim is paying to build
// an argument — a fmt.Sprintf, a string concatenation, a composite
// literal — on a path that executes even when tracing is disabled. The
// repo's convention is to bracket such emissions in the matching
// enabled-guard:
//
//	if l.obs.Tracing() {
//		l.obs.InstantArg(node, obs.LayerFiber, "tx", fmt.Sprintf(...), seq, n)
//	}
//
// Obsgate checks that convention with a forward dataflow analysis over
// the function's CFG (cfg.go, dataflow.go):
//
//   - dominating guards (must-analysis, intersection at joins): the true
//     edge of `recv.Tracing()` — possibly negated, in a && chain, or
//     stored in a bool local — establishes the guard for recv;
//     `recv.CaptureLog() != nil` establishes the capture guard.
//     Assigning to the receiver kills its guards.
//   - taint (may-analysis): a local assigned from an allocating
//     expression remembers which guards dominated its *definition*, so
//     `s := fmt.Sprintf(...); if o.Tracing() { o.InstantArg(.., s, ..) }`
//     is still a finding — the allocation escaped the guard even though
//     the emission did not.
//
// Trace and capture emissions with a costly argument must be dominated
// by their receiver's guard. Metric emissions (Counter.Inc/Add,
// Histogram.Observe) have no disabled state, so a costly argument is
// reported unconditionally: precompute it at registration time (the
// Registry's Counter/Gauge/Histogram constructors are setup surfaces and
// are exempt). Package nectar/internal/obs itself is exempt — the
// implementation owns its own guards.
var Obsgate = &Analyzer{
	Name: "obsgate",
	Doc: "every obs trace/capture emission whose arguments allocate or format must be dominated by the matching " +
		"enabled-guard branch (recv.Tracing(), recv.CaptureLog() != nil), including the allocations feeding it " +
		"through locals; metric emissions must not take allocating arguments at all. This makes the zero-cost-" +
		"when-disabled observability claim a static theorem instead of a sampled AllocsPerRun test.",
	Run: runObsgate,
}

// obsPkgPath is the observability package whose emission surfaces are
// guarded.
const obsPkgPath = "nectar/internal/obs"

// obsTraceMethods are the Observer emission methods gated by Tracing().
var obsTraceMethods = map[string]bool{
	"Instant": true, "InstantSeq": true, "InstantArg": true,
	"Begin": true, "BeginSeq": true, "End": true,
}

// obsMetricMethods are the always-on metric emission methods (receiver
// type -> method). Registration surfaces (Registry.Counter/Gauge/
// Histogram) run once at setup and may format their scope freely.
var obsMetricMethods = map[string]map[string]bool{
	"Counter":   {"Inc": true, "Add": true},
	"Histogram": {"Observe": true},
}

// obsGuardKind distinguishes the two guard families.
const (
	guardTrace   = "t:" // recv.Tracing()
	guardCapture = "c:" // recv.CaptureLog() != nil
)

// obsFact is the dataflow fact: the set of guard keys known true, the
// costly locals (with the guards that dominated their definition), and
// the bool locals witnessing a guard call.
type obsFact struct {
	guards map[string]bool
	taint  map[types.Object]map[string]bool
	wit    map[types.Object]string
}

func newObsFact() obsFact {
	return obsFact{guards: map[string]bool{}, taint: map[types.Object]map[string]bool{}, wit: map[types.Object]string{}}
}

func (f obsFact) clone() obsFact {
	out := newObsFact()
	for k := range f.guards {
		out.guards[k] = true
	}
	for o, g := range f.taint {
		gs := make(map[string]bool, len(g))
		for k := range g {
			gs[k] = true
		}
		out.taint[o] = gs
	}
	for o, k := range f.wit {
		out.wit[o] = k
	}
	return out
}

func obsJoin(a, b obsFact) obsFact {
	out := newObsFact()
	for k := range a.guards {
		if b.guards[k] {
			out.guards[k] = true
		}
	}
	// Taint is a may-analysis: keep every costly definition, and for a
	// local costly on both paths keep only the guards common to both.
	for o, ga := range a.taint {
		if gb, ok := b.taint[o]; ok {
			gs := map[string]bool{}
			for k := range ga {
				if gb[k] {
					gs[k] = true
				}
			}
			out.taint[o] = gs
		} else {
			gs := make(map[string]bool, len(ga))
			for k := range ga {
				gs[k] = true
			}
			out.taint[o] = gs
		}
	}
	for o, gb := range b.taint {
		if _, ok := out.taint[o]; !ok {
			gs := make(map[string]bool, len(gb))
			for k := range gb {
				gs[k] = true
			}
			out.taint[o] = gs
		}
	}
	// Witnesses are a must-analysis.
	for o, k := range a.wit {
		if b.wit[o] == k {
			out.wit[o] = k
		}
	}
	return out
}

func obsEqual(a, b obsFact) bool {
	if len(a.guards) != len(b.guards) || len(a.taint) != len(b.taint) || len(a.wit) != len(b.wit) {
		return false
	}
	for k := range a.guards {
		if !b.guards[k] {
			return false
		}
	}
	for o, ga := range a.taint {
		gb, ok := b.taint[o]
		if !ok || len(ga) != len(gb) {
			return false
		}
		for k := range ga {
			if !gb[k] {
				return false
			}
		}
	}
	for o, k := range a.wit {
		if b.wit[o] != k {
			return false
		}
	}
	return true
}

// obsChecker runs the analysis over one function body (and, recursively,
// its func literals).
type obsChecker struct {
	pass *Pass
	info *types.Info
}

func runObsgate(pass *Pass) (any, error) {
	path := canonicalPkgPath(pass.PkgPath)
	if !IsDeterministicPkg(path) || path == obsPkgPath {
		return nil, nil
	}
	oc := &obsChecker{pass: pass, info: pass.TypesInfo}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				oc.checkBody(fd.Body, newObsFact())
			}
		}
	}
	return nil, nil
}

// checkBody solves the guard/taint dataflow over body and checks every
// emission against the fact holding at its statement. entry seeds the
// analysis: func literals inherit the fact at their creation point
// (tracing state is set once at simulation setup, so a guard observed
// when a callback is scheduled still holds when it runs).
func (oc *obsChecker) checkBody(body *ast.BlockStmt, entry obsFact) {
	cfg := buildCFG(body)
	in, reached := solve(cfg, flow[obsFact]{
		entry:    entry,
		join:     obsJoin,
		equal:    obsEqual,
		transfer: oc.transfer,
		branch:   oc.branch,
	})
	for _, blk := range cfg.Blocks {
		if !reached[blk.Index] {
			continue
		}
		f := in[blk.Index]
		for _, n := range blk.Nodes {
			oc.inspect(n, f)
			f = oc.transfer(n, f)
		}
	}
}

// inspect checks the emissions inside one block node against fact f.
// Func literals are analyzed recursively with f as their entry fact and
// excluded from this walk.
func (oc *obsChecker) inspect(n ast.Node, f obsFact) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			oc.checkBody(x.Body, f.clone())
			return false
		case *ast.CallExpr:
			oc.checkEmission(x, f)
		}
		return true
	})
}

// emissionOf classifies call: an Observer trace/capture emission returns
// (receiver expr, accepted guard keys, "trace"/"capture", true); a
// metric emission returns (nil, nil, "metric", true).
func (oc *obsChecker) emissionOf(call *ast.CallExpr) (recv ast.Expr, keys []string, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, "", false
	}
	s, isMeth := oc.info.Selections[sel]
	if !isMeth || s.Obj() == nil || s.Obj().Pkg() == nil || s.Obj().Pkg().Path() != obsPkgPath {
		return nil, nil, "", false
	}
	name := s.Obj().Name()
	recvName := namedRecvName(s.Recv())
	switch {
	case recvName == "Observer" && obsTraceMethods[name]:
		rk := types.ExprString(sel.X)
		return sel.X, []string{guardTrace + rk}, "trace", true
	case recvName == "Observer" && name == "CapturePacket":
		rk := types.ExprString(sel.X)
		// Either guard excuses a costly capture argument: tracing implies
		// the observer is live, and the capture guard is the precise one.
		return sel.X, []string{guardCapture + rk, guardTrace + rk}, "capture", true
	case obsMetricMethods[recvName] != nil && obsMetricMethods[recvName][name]:
		return nil, nil, "metric", true
	}
	return nil, nil, "", false
}

// namedRecvName returns the receiver's named-type name ("Observer",
// "Counter"), peeling one pointer.
func namedRecvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkEmission reports costly arguments of an emission that are not
// covered by the required guard.
func (oc *obsChecker) checkEmission(call *ast.CallExpr, f obsFact) {
	_, keys, kind, ok := oc.emissionOf(call)
	if !ok {
		return
	}
	sel := call.Fun.(*ast.SelectorExpr)
	for _, arg := range call.Args {
		pos, why := oc.costlyArg(arg, f, keys)
		if why == "" {
			continue
		}
		switch kind {
		case "metric":
			oc.pass.Reportf(pos, "obs metric %s has no disabled state, but its argument %s; "+
				"precompute at registration time (metrics must stay allocation-free)", sel.Sel.Name, why)
		default:
			guard := types.ExprString(sel.X) + ".Tracing()"
			if kind == "capture" {
				guard = types.ExprString(sel.X) + ".CaptureLog() != nil"
			}
			oc.pass.Reportf(pos, "obs %s %s argument %s outside the %s guard; "+
				"this code pays the cost even when observability is disabled — move it under the guard branch",
				kind, sel.Sel.Name, why, guard)
		}
	}
}

// costlyArg decides whether arg costs something on the disabled path:
// either the expression itself allocates/formats and no accepted guard
// currently holds, or it names a local whose (allocating) definition was
// not dominated by an accepted guard. It returns the position to report
// and a description, or ("") when the argument is free.
func (oc *obsChecker) costlyArg(arg ast.Expr, f obsFact, keys []string) (token.Pos, string) {
	guarded := func(gs map[string]bool) bool {
		if len(keys) == 0 {
			return false // metric: no guard can excuse the cost
		}
		for _, k := range keys {
			if gs[k] {
				return true
			}
		}
		return false
	}
	if e := oc.costlyExpr(arg); e != nil {
		if guarded(f.guards) {
			return token.NoPos, ""
		}
		return e.Pos(), describeCost(e)
	}
	if id, ok := unparenIndex(arg).(*ast.Ident); ok {
		if obj := oc.info.Uses[id]; obj != nil {
			if defGuards, tainted := f.taint[obj]; tainted && !guarded(defGuards) {
				return id.Pos(), "was built by an allocating expression"
			}
		}
	}
	return token.NoPos, ""
}

// obsCostlyFmt/Strconv/Strings list the library calls obsgate treats as
// allocating when they feed an emission.
var obsCostlyFmt = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true, "Appendf": true,
}

var obsCostlyStrconv = map[string]bool{
	"Itoa": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true,
	"FormatBool": true, "Quote": true, "AppendInt": true, "AppendUint": true,
}

var obsCostlyStrings = map[string]bool{
	"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true,
	"ToUpper": true, "ToLower": true, "Split": true, "Fields": true, "Map": true,
}

// costlyExpr returns the first allocating/formatting expression inside e
// (e itself or a subexpression), or nil. Func literal bodies are not
// entered — they are analyzed as their own functions.
func (oc *obsChecker) costlyExpr(e ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(e, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CompositeLit:
			found = x
			return false
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				tv := oc.info.Types[x]
				if tv.Type != nil && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						found = x
						return false
					}
				}
			}
		case *ast.CallExpr:
			if oc.costlyCall(x) {
				found = x
				return false
			}
		}
		return true
	})
	return found
}

// costlyCall reports whether call is an allocating library call, an
// allocating builtin, a Markf-style formatting method, or a
// string<->[]byte/[]rune conversion.
func (oc *obsChecker) costlyCall(call *ast.CallExpr) bool {
	info := oc.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string([]byte), []byte(string), string(rune), ...
		return allocatingConversion(info, call, tv.Type)
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if info.Types[call.Fun].IsBuiltin() {
			return fun.Name == "append" || fun.Name == "make" || fun.Name == "new"
		}
	case *ast.SelectorExpr:
		switch pkgNameOf(info, fun.X) {
		case "fmt":
			return obsCostlyFmt[fun.Sel.Name]
		case "strconv":
			return obsCostlyStrconv[fun.Sel.Name]
		case "strings":
			return obsCostlyStrings[fun.Sel.Name]
		}
		if _, name := recvPkgPath(info, fun); hotpathFmtMethods[name] {
			return true
		}
	}
	return false
}

// allocatingConversion reports conversions that copy their operand:
// between string and []byte/[]rune, or rune/integer to string.
func allocatingConversion(info *types.Info, call *ast.CallExpr, target types.Type) bool {
	if len(call.Args) != 1 {
		return false
	}
	src := info.Types[call.Args[0]]
	if src.Type == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	switch {
	case isStr(target) && isByteOrRuneSlice(src.Type):
		return true
	case isByteOrRuneSlice(target) && isStr(src.Type):
		return true
	case isStr(target) && !isStr(src.Type):
		// rune/int -> string conversion allocates. Constant-folded
		// conversions (src.Value != nil with a constant result) do too at
		// runtime only if not constant; be conservative and skip consts.
		return src.Value == nil
	}
	return false
}

// --- dataflow callbacks ---

// transfer applies assignments: kills guards on receivers being
// reassigned, records costly definitions, and tracks bool witnesses.
func (oc *obsChecker) transfer(n ast.Node, f obsFact) obsFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		out := f
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				out = oc.assign(out, lhs, n.Rhs[i], n.Tok)
			}
		} else {
			for _, lhs := range n.Lhs {
				out = oc.assign(out, lhs, nil, n.Tok)
			}
		}
		return out
	case *ast.DeclStmt:
		out := f
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						}
						out = oc.assign(out, name, rhs, token.DEFINE)
					}
				}
			}
		}
		return out
	case *ast.RangeStmt:
		out := f
		for _, lhs := range []ast.Expr{n.Key, n.Value} {
			if lhs != nil {
				out = oc.assign(out, lhs, nil, n.Tok)
			}
		}
		return out
	case *ast.IncDecStmt:
		return oc.assign(f, n.X, nil, token.ASSIGN)
	}
	return f
}

// assign updates the fact for one lhs <- rhs binding. A nil rhs means
// "assigned something unknown".
func (oc *obsChecker) assign(f obsFact, lhs, rhs ast.Expr, tok token.Token) obsFact {
	out := f.clone()
	// Reassigning any identifier kills guards keyed on expressions
	// rooted at it (o = other invalidates "o.Tracing()" knowledge).
	if root := rootIdent(lhs); root != "" {
		for k := range out.guards {
			if guardRoot(k) == root {
				delete(out.guards, k)
			}
		}
	}
	id, ok := unparenIndex(lhs).(*ast.Ident)
	if !ok {
		return out
	}
	obj := oc.info.Defs[id]
	if obj == nil {
		obj = oc.info.Uses[id]
	}
	if obj == nil {
		return out
	}
	delete(out.taint, obj)
	delete(out.wit, obj)
	if rhs == nil {
		return out
	}
	if tok != token.DEFINE && tok != token.ASSIGN {
		// Compound assignment (s += ...): the lhs accumulates; a string
		// += allocates.
		if b, okb := obj.Type().Underlying().(*types.Basic); okb && b.Info()&types.IsString != 0 {
			gs := make(map[string]bool, len(out.guards))
			for k := range out.guards {
				gs[k] = true
			}
			out.taint[obj] = gs
		}
		return out
	}
	if oc.costlyExpr(rhs) != nil {
		gs := make(map[string]bool, len(out.guards))
		for k := range out.guards {
			gs[k] = true
		}
		out.taint[obj] = gs
		return out
	}
	if key := oc.guardWitness(rhs); key != "" {
		out.wit[obj] = key
	}
	return out
}

// guardWitness recognizes rhs expressions that witness a guard:
// recv.Tracing() and recv.CaptureLog() != nil.
func (oc *obsChecker) guardWitness(rhs ast.Expr) string {
	keys := oc.guardsInCond(rhs, true, obsFact{})
	if len(keys) == 1 {
		return keys[0]
	}
	return ""
}

// branch refines the fact along the true/false edge of a condition.
func (oc *obsChecker) branch(cond ast.Expr, takenTrue bool, f obsFact) obsFact {
	keys := oc.guardsInCond(cond, takenTrue, f)
	if len(keys) == 0 {
		return f
	}
	out := f.clone()
	for _, k := range keys {
		out.guards[k] = true
	}
	return out
}

// guardsInCond decomposes cond into the guard keys established when it
// evaluates to val. f supplies the bool-witness bindings so that
// `on := o.Tracing(); if on { ... }` counts as the guard.
func (oc *obsChecker) guardsInCond(cond ast.Expr, val bool, f obsFact) []string {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return oc.guardsInCond(c.X, val, f)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return oc.guardsInCond(c.X, !val, f)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if val {
				return append(oc.guardsInCond(c.X, true, f), oc.guardsInCond(c.Y, true, f)...)
			}
		case token.LOR:
			if !val {
				return append(oc.guardsInCond(c.X, false, f), oc.guardsInCond(c.Y, false, f)...)
			}
		case token.NEQ:
			// recv.CaptureLog() != nil
			if val {
				if e, nilSide := nonNilOperand(c); nilSide {
					if key := oc.captureKey(e); key != "" {
						return []string{key}
					}
				}
			}
		case token.EQL:
			// recv.CaptureLog() == nil establishes the guard on the
			// *false* edge.
			if !val {
				if e, nilSide := nonNilOperand(c); nilSide {
					if key := oc.captureKey(e); key != "" {
						return []string{key}
					}
				}
			}
		}
	case *ast.CallExpr:
		if val {
			if key := oc.tracingKey(c); key != "" {
				return []string{key}
			}
		}
	case *ast.Ident:
		if val {
			if obj := oc.info.Uses[c]; obj != nil {
				if key, ok := f.wit[obj]; ok {
					return []string{key}
				}
			}
		}
	}
	return nil
}

// tracingKey returns the guard key for a recv.Tracing() call.
func (oc *obsChecker) tracingKey(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := oc.info.Selections[sel]
	if !ok || s.Obj() == nil || s.Obj().Pkg() == nil {
		return ""
	}
	if s.Obj().Pkg().Path() == obsPkgPath && s.Obj().Name() == "Tracing" {
		return guardTrace + types.ExprString(sel.X)
	}
	return ""
}

// captureKey returns the guard key for a recv.CaptureLog() call.
func (oc *obsChecker) captureKey(e ast.Expr) string {
	call, ok := unparenIndex(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := oc.info.Selections[sel]
	if !ok || s.Obj() == nil || s.Obj().Pkg() == nil {
		return ""
	}
	if s.Obj().Pkg().Path() == obsPkgPath && s.Obj().Name() == "CaptureLog" {
		return guardCapture + types.ExprString(sel.X)
	}
	return ""
}

// nonNilOperand returns the non-nil operand of a comparison against nil
// and whether one side is in fact nil.
func nonNilOperand(c *ast.BinaryExpr) (ast.Expr, bool) {
	if id, ok := unparenIndex(c.Y).(*ast.Ident); ok && id.Name == "nil" {
		return c.X, true
	}
	if id, ok := unparenIndex(c.X).(*ast.Ident); ok && id.Name == "nil" {
		return c.Y, true
	}
	return nil, false
}

// rootIdent returns the leftmost identifier of an lvalue ("l" for
// l.obs.x, "s" for s[i]), or "".
func rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// guardRoot extracts the root identifier from a guard key ("t:l.obs" ->
// "l").
func guardRoot(key string) string {
	s := key[len(guardTrace):] // both prefixes have length 2
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '.', '[', '(':
			return s[:i]
		}
	}
	return s
}

// describeCost renders a short description of an allocating expression.
func describeCost(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok {
				return "calls " + id.Name + "." + fun.Sel.Name
			}
			return "calls " + fun.Sel.Name
		case *ast.Ident:
			return "calls " + fun.Name
		}
		return "allocates"
	case *ast.BinaryExpr:
		return "concatenates strings"
	case *ast.CompositeLit:
		return "builds a composite literal"
	}
	return "allocates"
}
