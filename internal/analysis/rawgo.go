package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// rawgoApproved lists the only non-test files allowed to contain go
// statements. The conservative safe-window scheduler's determinism proof
// rests on exactly one goroutine executing simulation state per kernel;
// every goroutine in the tree must therefore be one of the audited
// handoff structures:
//
//   - internal/sim/pdes.go      — the PDES domain workers, synchronized
//     by the winSeq/doneSeq window barrier.
//   - internal/sim/proc.go      — the kernel's Proc coroutines, run one
//     at a time via the resume/handoff channel pair (SimPy-style).
//   - internal/bench/parallel.go — the sweep worker pool; each job owns
//     a private kernel, results assemble in job-index order.
//
// A goroutine anywhere else has no barrier to synchronize with and would
// race simulation state or reorder observable output, so there is no
// escape directive: new concurrency surfaces must be added here, in
// review, with their synchronization story.
var rawgoApproved = []string{
	"internal/sim/pdes.go",
	"internal/sim/proc.go",
	"internal/bench/parallel.go",
}

// Rawgo flags go statements outside the approved concurrency surfaces.
var Rawgo = &Analyzer{
	Name: "rawgo",
	Doc: "flag go statements outside the approved concurrency surfaces (internal/sim/pdes.go, internal/sim/proc.go, " +
		"internal/bench/parallel.go) and test files; stray goroutines break the conservative scheduler's determinism proof.",
	Run: runRawgo,
}

func rawgoFileApproved(filename string) bool {
	f := filepath.ToSlash(filename)
	for _, a := range rawgoApproved {
		if f == a || strings.HasSuffix(f, "/"+a) {
			return true
		}
	}
	return false
}

func runRawgo(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		if rawgoFileApproved(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"go statement outside the approved concurrency surfaces (%s): "+
						"stray goroutines break the conservative safe-window scheduler's determinism proof",
					strings.Join(rawgoApproved, ", "))
			}
			return true
		})
	}
	return nil, nil
}
