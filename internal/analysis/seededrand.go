package analysis

import (
	"go/ast"
)

// seededrandAllowed lists the math/rand package-level names that do not
// touch the package's global generator: the constructors and types used
// to build an injected, seeded source. Everything else (Intn, Float64,
// Perm, Shuffle, Seed, Read, ...) draws from — or mutates — process-wide
// state whose sequence depends on what every other caller in the binary
// has consumed, so two runs of the same Config would diverge.
var seededrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"NewPCG":    true, // math/rand/v2
	"NewChaCha8": true,
	"Rand":      true,
	"Source":    true,
	"Zipf":      true,
	"PCG":       true,
	"ChaCha8":   true,
}

// Seededrand forbids the global math/rand generator in deterministic
// packages; randomness (fault-injection drops, jitter) must flow from a
// *rand.Rand seeded out of the experiment Config.
var Seededrand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions (rand.Intn, rand.Float64, rand.Seed, ...) in deterministic packages; " +
		"inject a seeded *rand.Rand (rand.New(rand.NewSource(seed))) whose seed flows from Config instead.",
	Run: runSeededrand,
}

func runSeededrand(pass *Pass) (any, error) {
	if !IsDeterministicPkg(pass.PkgPath) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkgNameOf(pass.TypesInfo, sel.X) {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if seededrandAllowed[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global math/rand state (rand.%s) in deterministic package %s: "+
					"inject a seeded *rand.Rand whose seed flows from Config",
				sel.Sel.Name, canonicalPkgPath(pass.PkgPath))
			return true
		})
	}
	return nil, nil
}
