package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Shardsafe is a static race detector for the PDES coupling model. The
// sharded simulator (internal/sim/pdes.go) runs one kernel per domain on
// its own goroutine; determinism and memory safety both depend on each
// domain touching only its own kernel, heap, arena, and observer sinks,
// with cross-domain traffic flowing exclusively through the pendingInj
// outbox drained at the window barrier. That discipline was previously
// prose. Shardsafe makes it checkable:
//
//   - State is annotated //nectar:shard-owned — on a struct field (the
//     per-domain kernel handle, the outbox) or on a whole type (the
//     kernel's event storage). The annotation is a fact visible to every
//     package in the program.
//   - An access to shard-owned state is legal only when its base
//     expression provably belongs to the executing shard: the method
//     receiver, a function parameter, a local derived from those, a
//     fresh composite literal, or a call result (constructors and
//     accessors return state they own). Indexing into a collection,
//     ranging over one, receiving from a channel, or reading a package
//     variable all reach *some* shard's state with no proof it is ours —
//     those bases are reported.
//   - The audited cross-domain surfaces — the barrier drain that is the
//     one place allowed to touch every domain — carry
//     //nectar:shard-boundary <reason>, and shardsafe skips their
//     bodies. The waiver needs a reason, and a misplaced or bare one is
//     itself a diagnostic (directives.go).
//
// The ownership rules follow the annotation style of Clang's
// thread-safety analysis (GUARDED_BY et al.) transplanted to Go syntax:
// ownership is a property of the access path, not the lock state.
var Shardsafe = &Analyzer{
	Name: "shardsafe",
	Doc: "static race detector for the PDES coupling model: state annotated //nectar:shard-owned may only be " +
		"accessed through a receiver/parameter ownership chain; cross-domain flow must go through functions " +
		"annotated //nectar:shard-boundary <reason>. Also validates the placement of both directives.",
	Run: runShardsafe,
}

// shardFactTable records the program's //nectar:shard-owned annotations.
type shardFactTable struct {
	fields map[*types.Var]bool      // annotated struct fields
	types  map[*types.TypeName]bool // annotated named types
}

// groupHasDirective reports whether comment group cg carries verb.
func groupHasDirective(fset *token.FileSet, cg *ast.CommentGroup, verb string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if d, ok := parseDirective(fset, c); ok && d.verb == verb {
			return true
		}
	}
	return false
}

// ensureShardFacts collects shard-owned annotations from every package
// in the program, once.
func (prog *Program) ensureShardFacts() *shardFactTable {
	if prog.shardOnce {
		return prog.shardFacts
	}
	prog.shardOnce = true
	t := &shardFactTable{
		fields: make(map[*types.Var]bool),
		types:  make(map[*types.TypeName]bool),
	}
	prog.shardFacts = t
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GenDecl:
					if n.Tok != token.TYPE {
						return true
					}
					declDoc := groupHasDirective(pkg.Fset, n.Doc, DirShardOwned) && len(n.Specs) == 1
					for _, spec := range n.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if declDoc || groupHasDirective(pkg.Fset, ts.Doc, DirShardOwned) {
							if tn, ok := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
								t.types[tn] = true
							}
						}
					}
				case *ast.StructType:
					for _, fld := range n.Fields.List {
						if !groupHasDirective(pkg.Fset, fld.Doc, DirShardOwned) &&
							!groupHasDirective(pkg.Fset, fld.Comment, DirShardOwned) {
							continue
						}
						for _, name := range fld.Names {
							if v, ok := pkg.TypesInfo.Defs[name].(*types.Var); ok {
								t.fields[v] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return t
}

func runShardsafe(pass *Pass) (any, error) {
	prog := programFor(pass)
	facts := prog.ensureShardFacts()
	for _, f := range pass.Files {
		checkShardPlacement(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			boundary := false
			for _, d := range declDirectives(pass.Fset, fd) {
				if d.verb == DirShardBoundary && d.arg != "" {
					boundary = true
				}
			}
			if boundary {
				continue // audited cross-domain surface
			}
			checkShardFunc(pass, facts, fd)
		}
	}
	return nil, nil
}

// checkShardPlacement reports shard-owned directives that annotate
// neither a type declaration nor a struct field, and shard-boundary
// directives that are not a function declaration's doc comment.
func checkShardPlacement(pass *Pass, f *ast.File) {
	validOwned := make(map[*ast.CommentGroup]bool)
	validBoundary := make(map[*ast.CommentGroup]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			if n.Tok == token.TYPE {
				validOwned[n.Doc] = true
				for _, spec := range n.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						validOwned[ts.Doc] = true
					}
				}
			}
		case *ast.StructType:
			for _, fld := range n.Fields.List {
				validOwned[fld.Doc] = true
				validOwned[fld.Comment] = true
			}
		case *ast.FuncDecl:
			validBoundary[n.Doc] = true
		}
		return true
	})
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(pass.Fset, c)
			if !ok {
				continue
			}
			switch d.verb {
			case DirShardOwned:
				if !validOwned[cg] {
					pass.Reportf(d.pos, "//nectar:shard-owned must annotate a type declaration or a struct field")
				}
			case DirShardBoundary:
				if !validBoundary[cg] {
					pass.Reportf(d.pos, "//nectar:shard-boundary must be part of a function declaration's doc comment")
				}
			}
		}
	}
}

// checkShardFunc audits one function body: every selector resolving to
// shard-owned state must have a provably-owned base expression. Field
// and type findings on one selector chain are deduplicated — the field
// finding (the more precise of the two) wins.
func checkShardFunc(pass *Pass, facts *shardFactTable, fd *ast.FuncDecl) {
	ow := newOwner(pass.TypesInfo, fd)
	info := pass.TypesInfo
	type finding struct {
		sel *ast.SelectorExpr
		msg string
	}
	var fieldFinds, typeFinds []finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Field facts: x.f where f is annotated (including promoted
		// fields through embedding).
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok && facts.fields[v] {
				if !ow.ownedExpr(sel.X) {
					fieldFinds = append(fieldFinds, finding{sel, fmt.Sprintf(
						"shard-owned field %q reached through a non-owned path", v.Name())})
				}
				return true
			}
		}
		// Type facts: any field or method selection on a value of an
		// annotated named type.
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			if tn := namedTypeName(tv.Type); tn != nil && facts.types[tn] {
				if !ow.ownedExpr(sel.X) {
					typeFinds = append(typeFinds, finding{sel, fmt.Sprintf(
						"shard-owned type %s used through a non-owned path", tn.Name())})
				}
			}
		}
		return true
	})
	const rule = "; per-shard state may only be accessed via the owning shard's receiver/parameter chain, " +
		"or from a //nectar:shard-boundary function"
	for _, f := range fieldFinds {
		pass.Reportf(f.sel.Sel.Pos(), "%s%s", f.msg, rule)
	}
	for _, f := range typeFinds {
		// `doms[i].k.Step()` fails both as a field access (k) and as a
		// use of the shard-owned kernel type; one report is enough.
		covered := false
		for _, ff := range fieldFinds {
			if f.sel.X.Pos() <= ff.sel.Sel.Pos() && ff.sel.Sel.Pos() < f.sel.X.End() {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(f.sel.Sel.Pos(), "%s%s", f.msg, rule)
		}
	}
}

// namedTypeName unwraps pointers and returns the *types.TypeName of a
// named type, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// owner answers "does this expression provably belong to the executing
// shard?" for one function. Seeds (receiver, parameters, named results,
// closure parameters, zero-value var declarations) are owned; locals are
// owned iff every value assigned to them is owned; range variables and
// anything reached through an index, a channel receive, or a package
// variable are not.
type owner struct {
	info     *types.Info
	seeds    map[types.Object]bool
	unowned  map[types.Object]bool
	sources  map[types.Object][]ast.Expr
	visiting map[types.Object]bool
}

func newOwner(info *types.Info, fd *ast.FuncDecl) *owner {
	ow := &owner{
		info:     info,
		seeds:    make(map[types.Object]bool),
		unowned:  make(map[types.Object]bool),
		sources:  make(map[types.Object][]ast.Expr),
		visiting: make(map[types.Object]bool),
	}
	seedFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			for _, name := range fld.Names {
				if obj := info.ObjectOf(name); obj != nil {
					ow.seeds[obj] = true
				}
			}
		}
	}
	seedFields(fd.Recv)
	seedFields(fd.Type.Params)
	seedFields(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure's own parameters are caller-supplied, like a
			// function's.
			seedFields(n.Type.Params)
			seedFields(n.Type.Results)
		case *ast.RangeStmt:
			// Range variables designate one element among many: no
			// proof of same-shard ownership.
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						ow.unowned[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							ow.sources[obj] = append(ow.sources[obj], n.Rhs[i])
						}
					}
				}
			} else if len(n.Rhs) == 1 {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							ow.sources[obj] = append(ow.sources[obj], n.Rhs[0])
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := info.ObjectOf(name)
				if obj == nil {
					continue
				}
				if i < len(n.Values) {
					ow.sources[obj] = append(ow.sources[obj], n.Values[i])
				} else if len(n.Values) == 1 {
					ow.sources[obj] = append(ow.sources[obj], n.Values[0])
				} else {
					// var d Domain — a fresh zero value created here.
					ow.seeds[obj] = true
				}
			}
		}
		return true
	})
	return ow
}

// ownedExpr reports whether e provably denotes state of the executing
// shard.
func (ow *owner) ownedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return ow.ownedObj(ow.info.ObjectOf(e))
	case *ast.SelectorExpr:
		if pkgNameOf(ow.info, e.X) != "" {
			return false // package-level variable: shared by every shard
		}
		return ow.ownedExpr(e.X) // a field of owned state is owned
	case *ast.CallExpr:
		return true // constructors/accessors return state they own
	case *ast.CompositeLit:
		return true // freshly built here
	case *ast.FuncLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return ow.ownedExpr(e.X)
		}
		return false // <-ch receives cross-domain values by construction
	case *ast.StarExpr:
		return ow.ownedExpr(e.X)
	case *ast.ParenExpr:
		return ow.ownedExpr(e.X)
	case *ast.TypeAssertExpr:
		return ow.ownedExpr(e.X)
	case *ast.IndexExpr, *ast.IndexListExpr, *ast.SliceExpr:
		return false // selects one shard's state out of a collection
	}
	return false
}

// ownedObj resolves ownership for an identifier's object.
func (ow *owner) ownedObj(obj types.Object) bool {
	if obj == nil {
		return true // type error: degrade quietly
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return true // consts, funcs, types carry no shard state
	}
	if ow.seeds[obj] {
		return true
	}
	if ow.unowned[obj] {
		return false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return false // package-level variable
	}
	srcs, ok := ow.sources[obj]
	if !ok {
		return true // no assignment seen (e.g. type-switch binding): stay quiet
	}
	if ow.visiting[obj] {
		return true // self-referential update (d = d.next): optimistic
	}
	ow.visiting[obj] = true
	defer delete(ow.visiting, obj)
	for _, s := range srcs {
		if !ow.ownedExpr(s) {
			return false
		}
	}
	return true
}
