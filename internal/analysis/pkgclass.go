package analysis

import (
	"strings"
)

// Package classification: the single table deciding which determinism
// contract each package in the module lives under. Every analyzer
// consults it through IsDeterministicPkg/ClassOf; nothing else hard-codes
// package lists, so adding an internal package means adding exactly one
// row here — and TestEveryPackageClassified (pkgclass_test.go) fails the
// build until it is added, which is how the table is kept from drifting
// the way the old deterministicPrefixes list did when internal/prof
// landed.

// PkgClass is the determinism contract a package lives under.
type PkgClass uint8

const (
	// ClassDeterministic packages execute inside (or feed) the simulation:
	// virtual time only, seeded randomness, no raw goroutines, failures
	// through the deterministic diagnostic surfaces. The determinism
	// analyzers (walltime, detrange, seededrand, rawgo, unitsafe, obsgate,
	// costmodel, detfail) all apply.
	ClassDeterministic PkgClass = iota
	// ClassDriver packages are CLIs, examples, and other host-side entry
	// points: they may read the wall clock, print, and os.Exit freely.
	ClassDriver
	// ClassAnalysis packages are nectar-vet itself and its test harness:
	// host-side tooling that measures its own wall clock (the CI perf
	// gate) and never runs under a kernel.
	ClassAnalysis
)

func (c PkgClass) String() string {
	switch c {
	case ClassDeterministic:
		return "deterministic"
	case ClassDriver:
		return "driver"
	case ClassAnalysis:
		return "analysis"
	}
	return "unknown"
}

// pkgClassTable maps import-path prefixes (covering their subtrees) to
// classes. Longest prefix wins, so a subtree can be carved out of its
// parent's class. The module root entry ("nectar") is exact-match only —
// it covers cluster.go, which builds simulations and is held to the
// deterministic contract — so a brand-new internal/ package matches
// nothing and TestEveryPackageClassified fails until a row is added.
var pkgClassTable = []struct {
	Prefix string
	Class  PkgClass
	Exact  bool // match the path itself, not its subtree
}{
	{Prefix: "nectar", Class: ClassDeterministic, Exact: true},
	{Prefix: "nectar/cmd", Class: ClassDriver},
	{Prefix: "nectar/examples", Class: ClassDriver},
	{Prefix: "nectar/internal/analysis", Class: ClassAnalysis},
	{Prefix: "nectar/internal/bench", Class: ClassDeterministic},
	{Prefix: "nectar/internal/fabric", Class: ClassDeterministic},
	{Prefix: "nectar/internal/hw", Class: ClassDeterministic},
	{Prefix: "nectar/internal/model", Class: ClassDeterministic},
	{Prefix: "nectar/internal/nectarine", Class: ClassDeterministic},
	{Prefix: "nectar/internal/netdev", Class: ClassDeterministic},
	{Prefix: "nectar/internal/obs", Class: ClassDeterministic},
	{Prefix: "nectar/internal/pool", Class: ClassDeterministic},
	{Prefix: "nectar/internal/prof", Class: ClassDeterministic},
	{Prefix: "nectar/internal/proto", Class: ClassDeterministic},
	{Prefix: "nectar/internal/rt", Class: ClassDeterministic},
	{Prefix: "nectar/internal/sim", Class: ClassDeterministic},
	{Prefix: "nectar/internal/sockets", Class: ClassDeterministic},
}

// ClassOf returns the class of the package with the given import path
// and whether the path is covered by the table at all. Test variants
// ("pkg [pkg.test]") are canonicalized first. Paths outside the module
// (the standard library, fixture packages under other/) are not covered.
func ClassOf(path string) (PkgClass, bool) {
	path = canonicalPkgPath(path)
	best := -1
	var cls PkgClass
	for _, row := range pkgClassTable {
		match := path == row.Prefix || (!row.Exact && strings.HasPrefix(path, row.Prefix+"/"))
		if match && len(row.Prefix) > best {
			best = len(row.Prefix)
			cls = row.Class
		}
	}
	if best < 0 {
		return 0, false
	}
	return cls, true
}

// IsDeterministicPkg reports whether the import path names a package
// covered by the determinism contract. Fixture packages under testdata
// reuse real module paths (e.g. nectar/internal/sim/wtpos) to opt into
// the contract, which the prefix rules cover naturally.
func IsDeterministicPkg(path string) bool {
	cls, ok := ClassOf(path)
	return ok && cls == ClassDeterministic
}
