package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Whole-program context for the interprocedural analyzers (hotprop,
// shardsafe), modeled on the x/tools go/analysis fact-propagation idea:
// facts are attached to program objects (functions, types, fields) when
// their defining package is analyzed, and consumed when any other package
// is. Because this driver loads the module in one types universe
// (load.go), the "export/import" step collapses into shared maps on a
// Program.
//
// The call graph covers:
//
//   - static calls: f(...), pkg.F(...), recv.M(...) with a concrete
//     receiver — resolved to the defining declaration (generic
//     instantiations resolve to their origin declaration);
//   - method sets: recv.M(...) with an interface-typed receiver — one
//     edge per declared method in the program whose receiver type
//     implements the interface;
//   - function values: func literals (one node per literal, linked to
//     the enclosing function) and named functions/method values passed
//     as call arguments or launched by go statements — the shape in
//     which callbacks reach the approved spawn surfaces (Kernel.At/
//     After, Domain.Send, Kernel.Go, the parallel sweep pool).
//
// Calls through func-typed variables and fields are not edges: their
// targets are whatever values flowed there, which the value edges above
// already attribute to the function that created them. (This is exactly
// the split that keeps Kernel.step — which invokes every scheduled
// callback through the event arena — from dragging the entire simulation
// into every hot path.)

// EdgeKind classifies a call-graph edge.
type EdgeKind uint8

const (
	// EdgeCall is a direct static call.
	EdgeCall EdgeKind = iota
	// EdgeIface is a call through an interface method, resolved to one
	// implementing method.
	EdgeIface
	// EdgeValue is a named function or method value passed as a call
	// argument or launched by a go statement; the callee runs under the
	// caller's context even if invocation is deferred.
	EdgeValue
	// EdgeClosure links a function to a func literal it contains.
	EdgeClosure
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "calls"
	case EdgeIface:
		return "calls (via interface)"
	case EdgeValue:
		return "passes"
	case EdgeClosure:
		return "creates"
	}
	return "edge"
}

// Edge is one outgoing call-graph edge.
type Edge struct {
	Pos    token.Pos
	Callee *FuncNode
	Kind   EdgeKind
}

// FuncNode is one function (declared or literal) in the call graph.
type FuncNode struct {
	// ID is the stable identity: types.Func.FullName for declarations,
	// "<parent>$<n>" for the n-th func literal inside parent.
	ID   string
	Pkg  *Package
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	// Root is the enclosing top-level declaration for literals (itself
	// for declarations); capture analysis and reporting anchor to it.
	Root  *FuncNode
	Edges []Edge

	// Facts from //nectar: directives on the declaration.
	Hot    bool // //nectar:hotpath
	Exempt bool // //nectar:hotpath-exempt <reason>
	// Boundary marks //nectar:shard-boundary <reason> functions: audited
	// cross-domain surfaces that shardsafe skips.
	Boundary bool
	// FreeHop marks //nectar:free-hop <reason> functions: audited pure
	// forwarding steps whose latency is accounted elsewhere; costmodel
	// accepts uncharged paths through them.
	FreeHop bool
	// Takes lists the parameter (or receiver) names this function
	// assumes the release obligation for, one per
	// //nectar:takes-ownership <param> <reason> directive; poollife ends
	// the caller's obligation for arguments passed at these positions
	// and seeds the obligation inside the callee.
	Takes []string

	display string
}

// Body returns the function body (nil for body-less declarations).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// DisplayName is a human-oriented short name used in call chains:
// "sim.Micros", "(*sim.Kernel).Stop", "(*mailbox.Mailbox).pop$1".
func (n *FuncNode) DisplayName() string { return n.display }

// Program is the whole-program view shared by the interprocedural
// analyzers: every loaded package plus the call graph and fact tables
// built from them, all lazily constructed and cached.
type Program struct {
	Packages []*Package

	built bool
	fns   map[string]*FuncNode
	nodes []*FuncNode             // deterministic (package, position) order
	byPos map[token.Pos]*FuncNode // FuncDecl/FuncLit position -> node
	meth  map[string][]*FuncNode  // declared method name -> candidates

	hotDone  bool
	hotDiags map[string][]Diagnostic // pkg path -> hotprop findings

	costDone  bool
	costDiags map[string][]Diagnostic // pkg path -> costmodel findings

	shardOnce  bool
	shardFacts *shardFactTable
}

// NewProgram creates a Program over pkgs. Graphs and facts are built on
// first use and cached; drivers are sequential, so no locking is needed.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Packages: pkgs}
}

// programFor returns the pass's Program, or a single-package Program
// synthesized from the pass itself (go vet units, analysistest), whose
// analyses degrade gracefully to an intra-package view.
func programFor(pass *Pass) *Program {
	if pass.Program != nil {
		return pass.Program
	}
	return NewProgram([]*Package{{
		PkgPath:   pass.PkgPath,
		Fset:      pass.Fset,
		Files:     pass.Files,
		Types:     pass.Pkg,
		TypesInfo: pass.TypesInfo,
	}})
}

// pkgByPath finds the loaded package with the given (canonical) path.
func (prog *Program) pkgByPath(path string) *Package {
	for _, pkg := range prog.Packages {
		if canonicalPkgPath(pkg.PkgPath) == canonicalPkgPath(path) {
			return pkg
		}
	}
	return nil
}

// funcID returns the stable identity of a declared function, resolving
// generic instantiations to their origin declaration.
func funcID(obj *types.Func) string { return obj.Origin().FullName() }

// displayName shortens obj.FullName by replacing the import path with the
// package name ("nectar/internal/sim.Micros" -> "sim.Micros").
func displayName(obj *types.Func) string {
	full := funcID(obj)
	if p := obj.Pkg(); p != nil && p.Path() != p.Name() {
		full = strings.ReplaceAll(full, p.Path()+".", p.Name()+".")
	}
	return full
}

// ensureGraph builds the function index and call edges once.
func (prog *Program) ensureGraph() {
	if prog.built {
		return
	}
	prog.built = true
	prog.fns = make(map[string]*FuncNode)
	prog.byPos = make(map[token.Pos]*FuncNode)
	prog.meth = make(map[string][]*FuncNode)

	// Pass 1: index declared functions and their directive facts.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue // type error; degrade quietly
				}
				n := &FuncNode{
					ID:      funcID(obj),
					Pkg:     pkg,
					Decl:    fd,
					display: displayName(obj),
				}
				n.Root = n
				for _, d := range declDirectives(pkg.Fset, fd) {
					switch {
					case d.verb == DirHotpath:
						n.Hot = true
					case d.verb == DirHotpathExempt && d.arg != "":
						n.Exempt = true
					case d.verb == DirShardBoundary && d.arg != "":
						n.Boundary = true
					case d.verb == DirFreeHop && d.arg != "":
						n.FreeHop = true
					case d.verb == DirTakesOwner:
						if fields := strings.Fields(d.arg); len(fields) >= 2 {
							n.Takes = append(n.Takes, fields[0])
						}
					}
				}
				prog.fns[n.ID] = n
				prog.byPos[fd.Pos()] = n
				prog.nodes = append(prog.nodes, n)
				if fd.Recv != nil {
					prog.meth[obj.Name()] = append(prog.meth[obj.Name()], n)
				}
			}
		}
	}
	sort.Slice(prog.nodes, func(i, j int) bool { return prog.nodes[i].ID < prog.nodes[j].ID })

	// Pass 2: scan bodies for edges (creates literal nodes on the way).
	for _, n := range prog.nodes {
		if n.Decl != nil && n.Decl.Body != nil {
			prog.scanBody(n)
		}
	}
}

// declDirectives returns the parsed //nectar: directives in fd's doc.
func declDirectives(fset *token.FileSet, fd *ast.FuncDecl) []directive {
	if fd.Doc == nil {
		return nil
	}
	var out []directive
	for _, c := range fd.Doc.List {
		if d, ok := parseDirective(fset, c); ok {
			out = append(out, d)
		}
	}
	return out
}

// scanBody collects n's outgoing edges. Nested func literals become
// their own nodes (linked by EdgeClosure) and are scanned recursively;
// their bodies are excluded from n's own scan.
func (prog *Program) scanBody(n *FuncNode) {
	litCount := 0
	var walk func(x ast.Node) bool
	walk = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			litCount++
			child := &FuncNode{
				ID:      fmt.Sprintf("%s$%d", n.ID, litCount),
				Pkg:     n.Pkg,
				Lit:     x,
				Root:    n.Root,
				display: fmt.Sprintf("%s$%d", n.display, litCount),
			}
			prog.fns[child.ID] = child
			prog.byPos[x.Pos()] = child
			n.Edges = append(n.Edges, Edge{Pos: x.Pos(), Callee: child, Kind: EdgeClosure})
			prog.scanBody(child)
			return false // the child's scan owns this subtree
		case *ast.CallExpr:
			prog.edgesForCall(n, x)
		case *ast.AssignStmt:
			// A named function or method value stored in a variable or
			// struct field escapes into later (possibly deferred)
			// invocation, exactly like one passed as a call argument.
			prog.valueEdges(n, x.Rhs)
		case *ast.ValueSpec:
			prog.valueEdges(n, x.Values)
		case *ast.CompositeLit:
			// Function values seeded through composite literals
			// (handler tables, struct construction).
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				prog.valueEdges(n, []ast.Expr{el})
			}
		}
		return true
	}
	if body := n.Body(); body != nil {
		ast.Inspect(body, walk)
	}
}

// valueEdges adds EdgeValue edges for named function/method values among
// exprs (assignment right-hand sides, composite-literal elements).
func (prog *Program) valueEdges(n *FuncNode, exprs []ast.Expr) {
	for _, e := range exprs {
		if obj := funcValueOf(n.Pkg.TypesInfo, e); obj != nil {
			prog.addEdge(n, e.Pos(), obj, EdgeValue)
		}
	}
}

// unparenIndex strips parentheses and generic instantiation indices from
// a call's Fun expression.
func unparenIndex(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// edgesForCall adds the edges arising from one call expression: the
// callee (static or interface dispatch) and any named function values
// among the arguments.
func (prog *Program) edgesForCall(n *FuncNode, call *ast.CallExpr) {
	info := n.Pkg.TypesInfo
	switch fun := unparenIndex(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			prog.addEdge(n, call.Pos(), obj, EdgeCall)
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			if obj, ok := s.Obj().(*types.Func); ok {
				if types.IsInterface(s.Recv()) {
					prog.ifaceEdges(n, call.Pos(), s.Recv(), obj.Name())
				} else {
					prog.addEdge(n, call.Pos(), obj, EdgeCall)
				}
			}
		} else if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			prog.addEdge(n, call.Pos(), obj, EdgeCall) // pkg-qualified
		}
	}
	for _, arg := range call.Args {
		if obj := funcValueOf(info, arg); obj != nil {
			prog.addEdge(n, arg.Pos(), obj, EdgeValue)
		}
	}
}

// funcValueOf resolves arg to a named function or method value being
// passed (not called), or nil.
func funcValueOf(info *types.Info, arg ast.Expr) *types.Func {
	switch a := unparenIndex(arg).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[a].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[a]; ok && s.Kind() == types.MethodVal {
			if obj, ok := s.Obj().(*types.Func); ok && !types.IsInterface(s.Recv()) {
				return obj
			}
			return nil
		}
		if obj, ok := info.Uses[a.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// addEdge links n to the declaration of obj, if it is in the program.
// External callees (the standard library) have no syntax here; the
// intraprocedural rules applied to each reachable body cover the known
// allocating externals (the fmt formatters) by name.
func (prog *Program) addEdge(n *FuncNode, pos token.Pos, obj *types.Func, kind EdgeKind) {
	callee, ok := prog.fns[funcID(obj)]
	if !ok {
		return
	}
	n.Edges = append(n.Edges, Edge{Pos: pos, Callee: callee, Kind: kind})
}

// ifaceEdges resolves a call through interface type recv to every
// declared method in the program implementing it.
func (prog *Program) ifaceEdges(n *FuncNode, pos token.Pos, recv types.Type, name string) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, cand := range prog.meth[name] {
		obj, ok := cand.Pkg.TypesInfo.Defs[cand.Decl.Name].(*types.Func)
		if !ok {
			continue
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		named, ok := rt.(*types.Named)
		if !ok || named.TypeParams().Len() > 0 {
			continue // generic receivers: skip (cannot instantiate here)
		}
		if types.Implements(types.NewPointer(named), iface) {
			n.Edges = append(n.Edges, Edge{Pos: pos, Callee: cand, Kind: EdgeIface})
		}
	}
}

// --- hotpath fact propagation ---

// ensureHot runs the transitive hotpath analysis once: BFS from every
// //nectar:hotpath root, pruning at //nectar:hotpath-exempt, applying
// the intraprocedural hotpath rules to every reached un-annotated
// function, and recording diagnostics per defining package with the
// discovery chain attached.
func (prog *Program) ensureHot() {
	if prog.hotDone {
		return
	}
	prog.hotDone = true
	prog.ensureGraph()
	prog.hotDiags = make(map[string][]Diagnostic)

	parent := make(map[*FuncNode]*FuncNode)
	visited := make(map[*FuncNode]bool)
	var queue []*FuncNode
	for _, n := range prog.nodes { // prog.nodes is ID-sorted: deterministic
		if n.Hot && !n.Exempt {
			visited[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.Edges {
			c := e.Callee
			if visited[c] || c.Exempt {
				continue
			}
			visited[c] = true
			parent[c] = cur
			queue = append(queue, c)
		}
	}

	// Deterministic order over reached nodes: declarations first in ID
	// order, then their literals (IDs share the declaration prefix).
	var reached []*FuncNode
	for n := range visited {
		reached = append(reached, n)
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i].ID < reached[j].ID })
	for _, n := range reached {
		if n.Hot {
			continue // roots and annotated callees: hotpath checks their bodies
		}
		// Literal nodes whose root declaration is itself reached (or
		// annotated) are covered by that declaration's body check.
		if n.Lit != nil && (visited[n.Root] || n.Root.Hot) {
			continue
		}
		prog.checkReached(n, chainOf(parent, n))
	}
}

// chainOf reconstructs the discovery chain root -> ... -> n.
func chainOf(parent map[*FuncNode]*FuncNode, n *FuncNode) []string {
	var rev []string
	for cur := n; cur != nil; cur = parent[cur] {
		rev = append(rev, cur.DisplayName())
	}
	chain := make([]string, len(rev))
	for i, s := range rev {
		chain[len(rev)-1-i] = s
	}
	return chain
}

// checkReached applies the hotpath purity rules to a reached,
// un-annotated function and records chain-bearing diagnostics.
func (prog *Program) checkReached(n *FuncNode, chain []string) {
	path := canonicalPkgPath(n.Pkg.PkgPath)
	chainText := strings.Join(chain, " -> ")
	hc := &hotChecker{
		info: n.Pkg.TypesInfo,
		report: func(pos token.Pos, format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			prog.hotDiags[path] = append(prog.hotDiags[path], Diagnostic{
				Pos: pos,
				Message: fmt.Sprintf("%s is reachable from //nectar:hotpath root %s (%s) but %s; "+
					"make it allocation-free or annotate it //nectar:hotpath-exempt <reason>",
					n.DisplayName(), chain[0], chainText, msg),
				Chain: chain,
			})
		},
	}
	var recv *ast.FieldList
	var typ *ast.FuncType
	if n.Decl != nil {
		recv, typ = n.Decl.Recv, n.Decl.Type
	} else {
		typ = n.Lit.Type
	}
	checkHotBody(hc, span{n.Root.nodePos(), n.Root.nodeEnd()}, recv, typ, n.Body())
}

func (n *FuncNode) nodePos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

func (n *FuncNode) nodeEnd() token.Pos {
	if n.Lit != nil {
		return n.Lit.End()
	}
	return n.Decl.End()
}
