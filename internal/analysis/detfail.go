package analysis

import (
	"go/ast"
)

// Detfail polices failure paths in deterministic packages: a simulation
// invariant violation must surface through the deterministic diagnostic
// helpers — Kernel.Fatalf for recoverable misconfiguration the run
// reports, sim.Panicf for programming errors — so two replays of the
// same seed fail with byte-identical messages at the same virtual
// instant. Flagged escape routes:
//
//   - os.Exit: kills the process without unwinding; no deferred capture
//     flush, no merged-run comparison, and the exit code is the only
//     evidence.
//   - package log (log.Printf, log.Fatal, ...): stamps wall-clock times
//     into the output and writes to a global logger the harness does not
//     own.
//   - panic(fmt.Sprintf(...)) and friends: ad-hoc formatted panics
//     drift in format between sites; routing them through sim.Panicf
//     (annotated //nectar:diag-helper) keeps messages uniform and gives
//     grep one place to find every formatted invariant panic. A bare
//     panic("constant") stays legal — it is already deterministic.
//
// Functions annotated //nectar:diag-helper <reason> are the sanctioned
// implementation surface and are skipped; the waiver inventory
// (nectar-vet -waivers) lists them.
var Detfail = &Analyzer{
	Name: "detfail",
	Doc: "failure paths in deterministic packages must route through the deterministic diagnostic helpers " +
		"(Kernel.Fatalf, sim.Panicf): report os.Exit, package log calls, and ad-hoc panic(fmt.Sprintf(...)). " +
		"Functions annotated //nectar:diag-helper <reason> are the sanctioned implementation surface. " +
		"Also validates //nectar:diag-helper placement.",
	Run: runDetfail,
}

// detfailFmt lists the fmt formatters whose result, handed to panic,
// marks an ad-hoc formatted panic.
var detfailFmt = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func runDetfail(pass *Pass) (any, error) {
	// Placement: //nectar:diag-helper must be a function declaration's
	// doc comment. Validated in every package (like the other directive
	// placement rules) so a stray annotation is caught where it appears.
	for _, f := range pass.Files {
		onDecl := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if d, ok := parseDirective(pass.Fset, c); ok && d.verb == DirDiagHelper {
						onDecl[fd.Doc] = true
					}
				}
			}
		}
		for _, cg := range f.Comments {
			if onDecl[cg] {
				continue
			}
			for _, c := range cg.List {
				if d, ok := parseDirective(pass.Fset, c); ok && d.verb == DirDiagHelper {
					pass.Reportf(d.pos, "//nectar:diag-helper must be part of a function declaration's doc comment")
				}
			}
		}
	}

	if !IsDeterministicPkg(pass.PkgPath) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isDiagHelper(pass, fd) {
				continue
			}
			checkFailurePaths(pass, fd.Body)
		}
	}
	return nil, nil
}

// isDiagHelper reports whether fd carries //nectar:diag-helper <reason>
// in its doc comment.
func isDiagHelper(pass *Pass, fd *ast.FuncDecl) bool {
	for _, d := range declDirectives(pass.Fset, fd) {
		if d.verb == DirDiagHelper && d.arg != "" {
			return true
		}
	}
	return false
}

func checkFailurePaths(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			switch pkgNameOf(pass.TypesInfo, fun.X) {
			case "os":
				if fun.Sel.Name == "Exit" {
					pass.Reportf(call.Pos(), "os.Exit in a deterministic package kills the run without a replayable diagnostic; "+
						"fail through Kernel.Fatalf (reported by Run) or sim.Panicf")
				}
			case "log":
				pass.Reportf(call.Pos(), "package log writes wall-clock-stamped output through a global logger; "+
					"deterministic packages must diagnose through Kernel.Fatalf, sim.Panicf, or the obs trace sinks")
			}
		case *ast.Ident:
			if fun.Name == "panic" && pass.TypesInfo.Types[call.Fun].IsBuiltin() && len(call.Args) == 1 {
				if inner, ok := call.Args[0].(*ast.CallExpr); ok {
					if sel, ok := inner.Fun.(*ast.SelectorExpr); ok &&
						pkgNameOf(pass.TypesInfo, sel.X) == "fmt" && detfailFmt[sel.Sel.Name] {
						pass.Reportf(call.Pos(), "ad-hoc panic(fmt.%s(...)) drifts in format between sites; "+
							"use sim.Panicf for uniform, replayable invariant diagnostics", sel.Sel.Name)
					}
				}
			}
		}
		return true
	})
}
