package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //nectar: directive namespace.
//
//	//nectar:allow-walltime <reason>   — suppress walltime findings on the
//	                                     directive's own line and the next
//	                                     line, or (as a function's doc
//	                                     comment) in the whole function.
//	//nectar:hotpath                   — mark a function as an allocation-
//	                                     free fast path; the hotpath
//	                                     analyzer audits its body and the
//	                                     hotprop analyzer audits everything
//	                                     it transitively calls.
//	//nectar:hotpath-exempt <reason>   — prune a function (and everything
//	                                     reachable only through it) from
//	                                     hotprop's transitive audit.
//	//nectar:shard-owned               — mark a type or struct field as
//	                                     per-shard state; shardsafe then
//	                                     requires a receiver/parameter
//	                                     ownership chain at every access.
//	//nectar:shard-boundary <reason>   — mark a function as an audited
//	                                     cross-domain surface (the PDES
//	                                     outbox/barrier code); shardsafe
//	                                     skips its body.
//	//nectar:free-hop <reason>         — mark a function whose path to a
//	                                     fiber/VME transmit is genuinely
//	                                     zero-cost (or charged elsewhere);
//	                                     costmodel accepts the path. The
//	                                     reason must say where the latency
//	                                     is accounted.
//	//nectar:diag-helper <reason>      — mark a function as a sanctioned
//	                                     deterministic diagnostic helper
//	                                     (sim.Panicf); detfail skips its
//	                                     body.
//	//nectar:takes-ownership <param> <reason>
//	                                   — declare that a function assumes
//	                                     the release obligation for the
//	                                     named pooled-value parameter (or
//	                                     receiver); poollife ends the
//	                                     caller's obligation at the call
//	                                     and checks the callee releases or
//	                                     forwards it on every path.
//	//nectar:leak-ok <reason>          — waive a poollife leak finding for
//	                                     a deliberate sink (same placement
//	                                     rules as allow-walltime: own line,
//	                                     next line, or whole function via
//	                                     the doc comment).
//
// Directive hygiene is checked mechanically: an unknown verb (usually a
// typo — "allow-waltime") or a waiver without a justification is itself
// a diagnostic, so a misspelled escape hatch can never silently disable
// a check.

const (
	dirPrefix        = "//nectar:"
	DirAllowWalltime = "allow-walltime"
	DirHotpath       = "hotpath"
	DirHotpathExempt = "hotpath-exempt"
	DirShardOwned    = "shard-owned"
	DirShardBoundary = "shard-boundary"
	DirFreeHop       = "free-hop"
	DirDiagHelper    = "diag-helper"
	DirTakesOwner    = "takes-ownership"
	DirLeakOK        = "leak-ok"
)

// directive is one parsed //nectar: comment.
type directive struct {
	verb string
	arg  string // rest of the comment (the allow-walltime reason)
	pos  token.Pos
	line int
}

// parseDirective parses a single comment, returning ok=false when it is
// not a //nectar: comment at all.
func parseDirective(fset *token.FileSet, c *ast.Comment) (directive, bool) {
	if !strings.HasPrefix(c.Text, dirPrefix) {
		return directive{}, false
	}
	rest := c.Text[len(dirPrefix):]
	verb, arg, _ := strings.Cut(rest, " ")
	return directive{
		verb: verb,
		arg:  strings.TrimSpace(arg),
		pos:  c.Pos(),
		line: fset.Position(c.Pos()).Line,
	}, true
}

// fileDirectives returns every //nectar: directive in f, in source order.
func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(fset, c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// checkDirectiveHygiene reports malformed //nectar: directives in f. It
// is invoked by exactly one analyzer (walltime, which owns the directive
// namespace) so each malformed directive is reported once per package.
func checkDirectiveHygiene(pass *Pass, f *ast.File) {
	for _, d := range fileDirectives(pass.Fset, f) {
		switch d.verb {
		case DirAllowWalltime:
			if d.arg == "" {
				pass.Reportf(d.pos, "//nectar:allow-walltime requires a reason (e.g. //nectar:allow-walltime measures sweep wall clock)")
			}
		case DirHotpathExempt:
			if d.arg == "" {
				pass.Reportf(d.pos, "//nectar:hotpath-exempt requires a reason (e.g. //nectar:hotpath-exempt cold reconfiguration path)")
			}
		case DirShardBoundary:
			if d.arg == "" {
				pass.Reportf(d.pos, "//nectar:shard-boundary requires a reason (e.g. //nectar:shard-boundary window-barrier outbox drain)")
			}
		case DirFreeHop:
			if d.arg == "" {
				pass.Reportf(d.pos, "//nectar:free-hop requires a reason saying where the latency is accounted (e.g. //nectar:free-hop caller charges DatalinkProcess+DMASetup)")
			}
		case DirDiagHelper:
			if d.arg == "" {
				pass.Reportf(d.pos, "//nectar:diag-helper requires a reason (e.g. //nectar:diag-helper the one sanctioned deterministic panic surface)")
			}
		case DirTakesOwner:
			if fields := strings.Fields(d.arg); len(fields) < 2 {
				pass.Reportf(d.pos, "//nectar:takes-ownership requires a parameter name and a reason (e.g. //nectar:takes-ownership pkt released on every drop path or handed to DMA)")
			}
		case DirLeakOK:
			if d.arg == "" {
				pass.Reportf(d.pos, "//nectar:leak-ok requires a reason (e.g. //nectar:leak-ok the popped slot is returned through the Peek alias)")
			}
		case DirHotpath, DirShardOwned:
			// Placement is validated by the hotpath/hotprop/shardsafe
			// analyzers respectively.
		default:
			pass.Reportf(d.pos, "unknown directive %q: known //nectar: directives are %s, %s, %s, %s, %s, %s, %s, %s, and %s",
				dirPrefix+d.verb, DirAllowWalltime, DirHotpath, DirHotpathExempt, DirShardOwned, DirShardBoundary, DirFreeHop, DirDiagHelper, DirTakesOwner, DirLeakOK)
		}
	}
}

// suppressor answers "is this position excused from a given directive?".
// A well-formed directive covers its own source line and the next line
// (so it can trail the offending expression or sit just above it); a
// directive in a function declaration's doc comment covers the entire
// function. A directive anywhere else — two lines up, inside an unrelated
// block — covers nothing, which the testdata pins down.
type suppressor struct {
	lines     map[int]bool // line numbers covered
	funcSpans []span       // body ranges of annotated functions
}

type span struct{ from, to token.Pos }

// newSuppressor builds the suppression index for verb in file f.
func newSuppressor(pass *Pass, f *ast.File, verb string) *suppressor {
	s := &suppressor{lines: make(map[int]bool)}
	doc := make(map[*ast.CommentGroup]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			return true
		}
		for _, c := range fd.Doc.List {
			if d, ok := parseDirective(pass.Fset, c); ok && d.verb == verb && d.arg != "" {
				doc[fd.Doc] = true
				s.funcSpans = append(s.funcSpans, span{fd.Pos(), fd.End()})
			}
		}
		return true
	})
	for _, cg := range f.Comments {
		if doc[cg] {
			continue
		}
		for _, c := range cg.List {
			if d, ok := parseDirective(pass.Fset, c); ok && d.verb == verb && d.arg != "" {
				s.lines[d.line] = true
				s.lines[d.line+1] = true
			}
		}
	}
	return s
}

// allows reports whether pos is covered by the suppressor.
func (s *suppressor) allows(pass *Pass, pos token.Pos) bool {
	if s.lines[pass.Fset.Position(pos).Line] {
		return true
	}
	for _, sp := range s.funcSpans {
		if sp.from <= pos && pos < sp.to {
			return true
		}
	}
	return false
}
