package analysis

import (
	"go/ast"
)

// Hotprop is the interprocedural extension of Hotpath: starting from
// every function annotated //nectar:hotpath, it walks the program call
// graph (callgraph.go — static calls, interface method sets, and named
// function values handed to the approved spawn surfaces) and applies the
// same allocation-purity rules to every function reached along the way.
// A helper that is itself annotated //nectar:hotpath is audited by
// Hotpath directly; a helper that legitimately allocates (a cold
// reconfiguration path, a once-per-run setup) is pruned from the walk by
// //nectar:hotpath-exempt <reason>, and everything reachable only
// through it is pruned with it.
//
// Diagnostics carry the discovery chain from the annotated root to the
// offending function, so "(*Mailbox).pop -> emit -> format" reads as the
// path a hot event would actually take.
//
// Under the whole-program driver (standalone nectar-vet, the repo
// regression test) the graph spans every module package; under
// single-package drivers (go vet units, analysistest) it degrades to the
// package at hand, which still exercises every rule the fixtures pin
// down.
var Hotprop = &Analyzer{
	Name: "hotprop",
	Doc: "transitive hotpath purity: every function reachable through the call graph from a //nectar:hotpath " +
		"root must satisfy the hotpath allocation rules or carry //nectar:hotpath-exempt <reason>; diagnostics " +
		"print the offending call chain. Also validates //nectar:hotpath-exempt placement.",
	Run: runHotprop,
}

func runHotprop(pass *Pass) (any, error) {
	// Placement: //nectar:hotpath-exempt must be a function declaration's
	// doc comment (mirrors hotpath's own placement rule).
	for _, f := range pass.Files {
		onDecl := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if d, ok := parseDirective(pass.Fset, c); ok && d.verb == DirHotpathExempt {
						onDecl[fd.Doc] = true
					}
				}
			}
		}
		for _, cg := range f.Comments {
			if onDecl[cg] {
				continue
			}
			for _, c := range cg.List {
				if d, ok := parseDirective(pass.Fset, c); ok && d.verb == DirHotpathExempt {
					pass.Reportf(d.pos, "//nectar:hotpath-exempt must be part of a function declaration's doc comment")
				}
			}
		}
	}

	prog := programFor(pass)
	prog.ensureHot()
	for _, d := range prog.hotDiags[canonicalPkgPath(pass.PkgPath)] {
		pass.Report(d)
	}
	return nil, nil
}
