package analysis

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// The backward framework is exercised with a miniature anticipated-
// consumption lattice defined entirely inside this test: facts are sets
// of plain identifier names certain to be passed to consume() on every
// path from here to a function exit — the same must/intersection shape
// poollife instantiates with real release calls. Assigning to a name
// kills it (the later consume applies to the new binding, not the one
// live above the assignment), and a bare-identifier branch condition is
// established on its false edge (the backward analogue of the
// conditional-acquire `if ok` refinement). Probe points are calls named
// probe*(); the test solves the CFG backward and replays facts in
// reverse to each probe.

type consumeSet map[string]bool

func (c consumeSet) clone() consumeSet {
	out := make(consumeSet, len(c))
	for k := range c {
		out[k] = true
	}
	return out
}

func consumeJoin(a, b consumeSet) consumeSet {
	out := consumeSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func consumeEqual(a, b consumeSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// consumeTransfer maps the fact holding after n to the fact holding
// before it: identifiers assigned by n are killed, identifiers passed
// to consume() within n are established.
func consumeTransfer(n ast.Node, f consumeSet) consumeSet {
	var kills, adds []string
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					kills = append(kills, id.Name)
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "consume" {
				for _, arg := range x.Args {
					if a, ok := arg.(*ast.Ident); ok {
						adds = append(adds, a.Name)
					}
				}
			}
		}
		return true
	})
	if len(kills) == 0 && len(adds) == 0 {
		return f
	}
	out := f.clone()
	for _, k := range kills {
		delete(out, k)
	}
	for _, a := range adds {
		out[a] = true
	}
	return out
}

// consumeBranch establishes a bare-identifier condition on its own
// false edge: when `ok` is false the value it witnessed was never
// produced, so no consumption is owed — the refinement that lets
// `if ok { consume(ok) }` satisfy the must-analysis on both edges.
func consumeBranch(cond ast.Expr, takenTrue bool, f consumeSet) consumeSet {
	id, ok := cond.(*ast.Ident)
	if !ok || takenTrue {
		return f
	}
	out := f.clone()
	out[id.Name] = true
	return out
}

// probeBackwardFacts builds the CFG for src, solves the consumption
// lattice backward, and returns the sorted names anticipated at each
// probe*() call. Probes in blocks the backward solver reports unreached
// (dead code, or bodies with no path to an exit) are absent from the
// result.
func probeBackwardFacts(t *testing.T, src string) map[string][]string {
	t.Helper()
	cfg := buildCFG(parseBody(t, src))
	out, reached := solveBackward(cfg, backflow[consumeSet]{
		exit:     consumeSet{},
		join:     consumeJoin,
		equal:    consumeEqual,
		transfer: consumeTransfer,
		branch:   consumeBranch,
	})
	got := make(map[string][]string)
	record := func(n ast.Node, f consumeSet) {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !strings.HasPrefix(id.Name, "probe") {
				return true
			}
			names := []string{}
			for k := range f {
				names = append(names, k)
			}
			sort.Strings(names)
			got[id.Name] = names
			return true
		})
	}
	for _, blk := range cfg.Blocks {
		if !reached[blk.Index] {
			continue
		}
		f := out[blk.Index]
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			record(blk.Nodes[i], f)
			f = consumeTransfer(blk.Nodes[i], f)
		}
	}
	return got
}

func wantAnticipated(t *testing.T, got map[string][]string, probe string, want ...string) {
	t.Helper()
	g, ok := got[probe]
	if !ok {
		t.Fatalf("%s: no fact recorded (probe unreached?)", probe)
	}
	if len(want) == 0 {
		want = []string{}
	}
	if len(g) != len(want) {
		t.Fatalf("%s: anticipated = %v, want %v", probe, g, want)
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("%s: anticipated = %v, want %v", probe, g, want)
		}
	}
}

func TestBackwardStraightLine(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
consume(x)
probe2()`)
	wantAnticipated(t, got, "probe1", "x")
	wantAnticipated(t, got, "probe2")
}

func TestBackwardOneArmConsumesIsNotMust(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
if a {
	consume(x)
}
probe2()`)
	// The false edge of a skips the consume, so the intersection at the
	// branch drops x.
	wantAnticipated(t, got, "probe1")
	wantAnticipated(t, got, "probe2")
}

func TestBackwardBothArmsConsume(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
if a {
	consume(x)
} else {
	consume(x)
	consume(y)
}`)
	// x is consumed on both arms; y only on one.
	wantAnticipated(t, got, "probe1", "x")
}

func TestBackwardSeparateExits(t *testing.T) {
	got := probeBackwardFacts(t, `
if a {
	probe1()
	consume(x)
	return
}
probe2()
consume(x)`)
	wantAnticipated(t, got, "probe1", "x")
	wantAnticipated(t, got, "probe2", "x")
}

func TestBackwardEarlyReturnDropsAnticipation(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
if a {
	return
}
probe2()
consume(x)`)
	// The return arm exits without consuming, so above the branch x is
	// not guaranteed; below it (false edge) it is.
	wantAnticipated(t, got, "probe1")
	wantAnticipated(t, got, "probe2", "x")
}

func TestBackwardPanicIsAnExit(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
if a {
	panic("x")
}
probe2()
consume(x)`)
	wantAnticipated(t, got, "probe1")
	wantAnticipated(t, got, "probe2", "x")
}

func TestBackwardBranchRefinement(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
if ok {
	consume(ok)
}
probe2()`)
	// The true edge consumes ok; the false edge establishes it by
	// refinement (nothing was produced). Both edges agree, so the
	// intersection keeps it — unlike the unrefined shape above.
	wantAnticipated(t, got, "probe1", "ok")
	wantAnticipated(t, got, "probe2")
}

func TestBackwardAssignmentKills(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
x = 0
probe2()
consume(x)`)
	// The consume below the assignment applies to the new binding.
	wantAnticipated(t, got, "probe1")
	wantAnticipated(t, got, "probe2", "x")
}

func TestBackwardLoopMayNotRun(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
for i := 0; i < n; i++ {
	consume(x)
}`)
	// Zero iterations exits without consuming.
	wantAnticipated(t, got, "probe1")
}

func TestBackwardLoopBodyReachesConsumeAfter(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
for i := 0; i < n; i++ {
	probe2()
}
consume(x)`)
	// Every path out of the loop — including every trip around the back
	// edge — reaches the consume, so the fixpoint keeps x anticipated
	// inside the body too.
	wantAnticipated(t, got, "probe1", "x")
	wantAnticipated(t, got, "probe2", "x")
}

func TestBackwardLoopBodyKillDrainsFact(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
for a > 0 {
	x = 0
}
consume(x)`)
	// Any path through the body rebinds x before the consume; the back
	// edge joins the killed fact into the loop head and the fixpoint
	// drains it from above the loop.
	wantAnticipated(t, got, "probe1")
}

func TestBackwardSwitchJoinsConservatively(t *testing.T) {
	got := probeBackwardFacts(t, `
probe1()
switch x {
case 1:
	consume(a)
case 2:
}
consume(b)
probe2()`)
	// a is consumed on only one case arm; b on every path.
	wantAnticipated(t, got, "probe1", "b")
	wantAnticipated(t, got, "probe2")
}

func TestBackwardDeadCodeSkipped(t *testing.T) {
	got := probeBackwardFacts(t, `
return
probe1()`)
	if _, ok := got["probe1"]; ok {
		t.Fatalf("probe1 is dead code but was recorded with a fact")
	}
}

func TestBackwardInfiniteLoopBodyUnreached(t *testing.T) {
	got := probeBackwardFacts(t, `
for {
	probe1()
}`)
	// The body has no path to any exit: backward-unreached, no fact.
	if _, ok := got["probe1"]; ok {
		t.Fatalf("probe1 cannot reach an exit but was recorded with a fact")
	}
}
