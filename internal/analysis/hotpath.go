package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath audits functions annotated //nectar:hotpath for obvious
// allocation sources. The annotation marks the per-event fast paths that
// the AllocsPerRun guards hold at zero (the sim event queue, mailbox
// put/get, checksum, and the fiber/cab pool paths); the analyzer makes
// the same contract visible at the line that would break it, instead of
// in a benchmark failure three layers away.
//
// Reported allocation sources:
//
//   - fmt.Sprintf/Sprint/Sprintln/Errorf/Fprintf/Appendf and Markf-style
//     calls: the variadic ...any slice and its boxed elements allocate
//     even when the result is discarded. (Calls inside a panic(...)
//     argument are exempt — invariant-violation paths are dead in steady
//     state.)
//   - append to a local slice declared without capacity: `var s []T` /
//     `s := []T{}` / `s := make([]T, n)` grow from nil every call.
//     Appends to struct fields or parameters are amortized by the
//     caller's steady state (pool-backed or retained capacity) and are
//     not flagged.
//   - value-to-interface conversion in call arguments or assignments:
//     boxing a concrete value into an interface escapes it.
//   - capturing closures: a func literal referencing variables from the
//     enclosing function allocates the closure (and often the captures).
//
// The rules themselves live in hotChecker/checkHotBody so that hotprop
// (the interprocedural extension) can apply the identical audit to every
// function transitively reachable from an annotated root.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "for functions annotated //nectar:hotpath, report obvious allocation sources: fmt.Sprintf/Markf-style " +
		"calls, append to a local slice declared without capacity, value-to-interface conversions, and capturing " +
		"closures. Also validates that //nectar:hotpath annotates a function declaration.",
	Run: runHotpath,
}

// hotpathFmt lists the fmt formatters whose variadic ...any always
// allocates; Markf-style methods (any method named Markf/Tracef/Logf)
// are matched by name.
var hotpathFmt = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Fprintf": true, "Appendf": true,
}

var hotpathFmtMethods = map[string]bool{
	"Markf": true, "Tracef": true, "Logf": true,
}

func runHotpath(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		// Collect the doc groups of annotated functions so misplaced
		// directives (not on a func decl) can be reported.
		annotated := make(map[*ast.CommentGroup]*ast.FuncDecl)
		var order []*ast.FuncDecl
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if d, ok := parseDirective(pass.Fset, c); ok && d.verb == DirHotpath {
						if annotated[fd.Doc] == nil {
							order = append(order, fd)
						}
						annotated[fd.Doc] = fd
					}
				}
			}
		}
		for _, cg := range f.Comments {
			if _, ok := annotated[cg]; ok {
				continue
			}
			for _, c := range cg.List {
				if d, ok := parseDirective(pass.Fset, c); ok && d.verb == DirHotpath {
					pass.Reportf(d.pos, "//nectar:hotpath must be part of a function declaration's doc comment")
				}
			}
		}
		for _, fd := range order {
			if fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			hc := &hotChecker{
				info: pass.TypesInfo,
				report: func(pos token.Pos, format string, args ...any) {
					pass.Reportf(pos, "hotpath "+name+": "+format, args...)
				},
			}
			checkHotBody(hc, span{fd.Pos(), fd.End()}, fd.Recv, fd.Type, fd.Body)
		}
	}
	return nil, nil
}

// hotChecker applies the intraprocedural hotpath purity rules to one
// function body and reports findings through an analyzer-specific sink:
// hotpath prefixes the annotated function's name, hotprop wraps the
// message in a call-chain sentence (callgraph.go).
type hotChecker struct {
	info   *types.Info
	report func(pos token.Pos, format string, args ...any)
}

// checkHotBody audits one function body. captureSpan is the source range
// of the enclosing top-level declaration: closure-capture analysis flags
// func literals referencing variables declared inside that span but
// outside the literal itself. recv and typ supply the parameter lists
// whose slices count as caller-managed storage for the append rule.
func checkHotBody(hc *hotChecker, captureSpan span, recv *ast.FieldList, typ *ast.FuncType, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	presized := hc.presizedLocals(recv, typ, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if hc.isPanicCall(n) {
				// Invariant-violation path: arguments (typically a
				// Sprintf) only evaluate when the simulation is already
				// dead. Skip the whole subtree.
				return false
			}
			hc.checkCall(n, presized)
		case *ast.AssignStmt:
			hc.checkAssign(n)
		case *ast.FuncLit:
			hc.checkCapture(captureSpan, n)
		}
		return true
	})
}

// checkCall reports formatter calls, unsized appends, and interface-
// boxing arguments.
func (hc *hotChecker) checkCall(call *ast.CallExpr, presized map[types.Object]bool) {
	info := hc.info
	// Formatter calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgNameOf(info, sel.X) == "fmt" && hotpathFmt[sel.Sel.Name] {
			hc.report(call.Pos(), "fmt.%s allocates its variadic args; precompute the string", sel.Sel.Name)
			return
		}
		if _, name := recvPkgPath(info, sel); hotpathFmtMethods[name] {
			hc.report(call.Pos(), "%s builds its variadic args even when tracing is off; "+
				"precompute the mark name and call the non-formatting variant", name)
			return
		}
	}
	// append to an unsized local.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if info.Types[call.Fun].IsBuiltin() {
			if base, ok := call.Args[0].(*ast.Ident); ok {
				if obj := info.ObjectOf(base); obj != nil {
					if grown, ok := presized[obj]; ok && !grown {
						hc.report(call.Pos(), "append grows local %q declared without capacity; "+
							"pre-size it (make with cap, or reuse pooled storage via x[:0])", base.Name)
					}
				}
			}
			return
		}
	}
	// Interface-boxing arguments.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || types.IsInterface(at.Type.Underlying()) || at.IsNil() {
			continue
		}
		hc.report(arg.Pos(), "argument converts %s to %s (allocates); keep hot-path signatures concrete",
			at.Type, pt)
	}
}

// checkAssign reports assignments that box a concrete value into an
// interface-typed variable or field.
func (hc *hotChecker) checkAssign(as *ast.AssignStmt) {
	info := hc.info
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		var lt types.Type
		if as.Tok == token.DEFINE {
			continue // inferred type: no conversion
		}
		if tv, ok := info.Types[lhs]; ok {
			lt = tv.Type
		}
		if lt == nil || !types.IsInterface(lt.Underlying()) {
			continue
		}
		rt := info.Types[as.Rhs[i]]
		if rt.Type == nil || types.IsInterface(rt.Type.Underlying()) || rt.IsNil() {
			continue
		}
		hc.report(as.Rhs[i].Pos(), "assignment converts %s to %s (allocates)", rt.Type, lt)
	}
}

// checkCapture reports func literals that capture variables from the
// enclosing declaration (the captureSpan).
func (hc *hotChecker) checkCapture(captureSpan span, lit *ast.FuncLit) {
	info := hc.info
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing declaration but
		// outside the literal itself.
		if v.Pos() < captureSpan.from || v.Pos() >= captureSpan.to {
			return true // package-level or foreign
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own params/locals
		}
		seen[obj] = true
		hc.report(id.Pos(), "closure captures %q (a capturing closure allocates); "+
			"hoist the closure or pass state explicitly", v.Name())
		return true
	})
}

// presizedLocals classifies the function's local slice variables: the
// map holds every local slice referenced by an append; the value records
// whether its declaration provides steady-state capacity (make with an
// explicit cap, a reslice of existing storage, a call result such as a
// pool Get, or a parameter). Fields and package-level slices are not in
// the map (their capacity is amortized across calls).
func (hc *hotChecker) presizedLocals(recv *ast.FieldList, typ *ast.FuncType, body *ast.BlockStmt) map[types.Object]bool {
	info := hc.info
	out := make(map[types.Object]bool)
	// Parameters, results, and the receiver are the caller's storage.
	for _, fl := range []*ast.FieldList{recv, typ.Params, typ.Results} {
		if fl == nil {
			continue
		}
		for _, fld := range fl.List {
			for _, name := range fld.Names {
				if obj := info.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			// var s []T — no capacity.
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						obj := info.ObjectOf(name)
						if obj == nil || !isSliceObj(obj) {
							continue
						}
						if i < len(vs.Values) {
							out[obj] = exprProvidesCapacity(info, vs.Values[i])
						} else {
							out[obj] = false
						}
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || !isSliceObj(obj) {
					continue
				}
				out[obj] = exprProvidesCapacity(info, n.Rhs[i])
			}
		}
		return true
	})
	return out
}

func isSliceObj(obj types.Object) bool {
	if obj == nil || obj.Type() == nil {
		return false
	}
	_, ok := obj.Type().Underlying().(*types.Slice)
	return ok
}

// exprProvidesCapacity reports whether initializing a slice from e gives
// it storage that append can reuse in steady state.
func exprProvidesCapacity(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && info.Types[e.Fun].IsBuiltin() {
			return len(e.Args) >= 3 // make([]T, n, cap)
		}
		return true // pool Get or other call: caller-managed storage
	case *ast.SliceExpr:
		return true // s[:0]-style reuse of existing storage
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true // aliases existing storage
	case *ast.CompositeLit:
		return false // []T{...} allocates fresh every call
	}
	return false
}

// isPanicCall reports whether call is the builtin panic or the
// sanctioned formatted-panic helper sim.Panicf (detfail.go routes the
// repo's formatted invariant panics through it; its arguments are just
// as dead in steady state as a builtin panic's).
func (hc *hotChecker) isPanicCall(call *ast.CallExpr) bool {
	isPanicf := func(obj types.Object) bool {
		fn, ok := obj.(*types.Func)
		return ok && fn.Name() == "Panicf" && fn.Pkg() != nil && fn.Pkg().Path() == "nectar/internal/sim"
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" && hc.info.Types[call.Fun].IsBuiltin() {
			return true
		}
		return isPanicf(hc.info.Uses[fun]) // bare Panicf(...) inside package sim
	case *ast.SelectorExpr:
		return isPanicf(hc.info.Uses[fun.Sel])
	}
	return false
}

// callSignature returns the signature of the called function, nil for
// builtins and type conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() || tv.IsBuiltin() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the declared type of argument i of sig, expanding
// the variadic tail ([]any -> any per argument). It returns nil for the
// f(slice...) spread form, which performs no per-element conversion.
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if call.Ellipsis.IsValid() {
			return nil
		}
		last := params.At(n - 1).Type()
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}
