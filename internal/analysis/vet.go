package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// Driver entry points for cmd/nectar-vet. Two modes:
//
//   - Standalone: `nectar-vet ./...` loads the named packages itself
//     (LoadPackages) and reports findings. This is the mode CI and the
//     repo-wide regression test use. The whole module shares one types
//     universe, so the interprocedural analyzers (hotprop, shardsafe)
//     see the full cross-package call graph and fact set.
//   - Vet tool: `go vet -vettool=$(which nectar-vet) ./...`. The go
//     command drives the tool with the unitchecker protocol: a -V=full
//     probe for the build cache key, a -flags probe for supported
//     flags, then one invocation per package with a JSON *.cfg file
//     describing the unit. We type-check each unit with the module-aware
//     "source" importer rather than the supplied export data, which
//     keeps the driver standard-library-only. The interprocedural
//     analyzers degrade to a per-unit view in this mode.
//
// Both modes accept -json: diagnostics are then emitted on stdout as one
// JSON object per line ({"pos","analyzer","message","chain"}), the form
// CI ingests to annotate PRs.

// vetConfig mirrors the fields of the go command's vet configuration
// file that this driver consumes (the full schema matches
// x/tools/go/analysis/unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the nectar-vet entry point. It returns the process exit code:
// 0 clean, 1 driver error, 2 diagnostics reported.
func Main(args []string) int {
	// Protocol probes from the go command.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			// The go command parses "<name> version <detail>" to key the
			// build cache.
			fmt.Printf("nectar-vet version %s-nectar2\n", runtime.Version())
			return 0
		}
		if a == "-flags" || a == "--flags" {
			// Advertise the flags we accept so `go vet -vettool=... -json`
			// can pass them through to each unit invocation.
			fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON lines on stdout"}]`)
			return 0
		}
	}
	jsonOut := false
	waivers := false
	timing := false
	rest := args[:0:0]
	for _, a := range args {
		switch a {
		case "-json", "--json", "-json=true", "--json=true":
			jsonOut = true
		case "-json=false", "--json=false":
			jsonOut = false
		case "-waivers", "--waivers":
			waivers = true
		case "-timing", "--timing":
			timing = true
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0], jsonOut)
	}
	if waivers {
		return waiverInventory(rest)
	}
	return standalone(rest, jsonOut, timing)
}

// Waiver is one escape-hatch directive in the inventory nectar-vet
// -waivers emits: every //nectar: annotation that suppresses or scopes a
// check, with its justification. CI diffs this inventory so a new waiver
// is an explicit, reviewed event rather than a silent suppression.
type Waiver struct {
	Pos       string `json:"pos"` // file:line:col
	Package   string `json:"package"`
	Directive string `json:"directive"`
	Reason    string `json:"reason"`
}

// waiverDirectives lists the directive verbs that weaken or scope a
// check and therefore belong in the inventory. Pure markers (hotpath,
// shard-owned) opt code *into* checking and are excluded.
var waiverDirectives = map[string]bool{
	DirAllowWalltime: true,
	DirHotpathExempt: true,
	DirShardBoundary: true,
	DirFreeHop:       true,
	DirDiagHelper:    true,
	DirTakesOwner:    true,
	DirLeakOK:        true,
}

// waiverInventory loads patterns (default ./...) and prints every waiver
// directive as one JSON line on stdout, in deterministic (package, file,
// line) order. Exit 0 even when waivers exist: the inventory is a
// reporting surface; judging a waiver is the reviewer's job.
func waiverInventory(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nectar-vet:", err)
		return 1
	}
	pkgs, err := LoadPackages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nectar-vet:", err)
		return 1
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range fileDirectives(pkg.Fset, f) {
				if !waiverDirectives[d.verb] {
					continue
				}
				w := Waiver{
					Pos:       pkg.Fset.Position(d.pos).String(),
					Package:   canonicalPkgPath(pkg.PkgPath),
					Directive: d.verb,
					Reason:    d.arg,
				}
				b, err := json.Marshal(w)
				if err != nil { // unreachable: Waiver is all strings
					panic(err)
				}
				fmt.Println(string(b))
			}
		}
	}
	return 0
}

// emit writes one diagnostic in the selected format: human-readable on
// stderr, or a JSON line on stdout with -json.
func emit(fset *token.FileSet, d Diagnostic, jsonOut bool) {
	if jsonOut {
		fmt.Println(JSONLine(fset, d))
	} else {
		fmt.Fprintln(os.Stderr, FormatDiagnostic(fset, d))
	}
}

// VetTiming is the wall-clock profile nectar-vet -timing emits as the
// last stdout line: one JSON object CI stores in the findings artifact
// and gates against the analysis-perf budget, so a quadratic blow-up in
// the dataflow or call-graph layers fails the lint job instead of
// silently stretching it.
type VetTiming struct {
	TotalMs     float64            `json:"total_ms"`     // load + analyze
	LoadMs      float64            `json:"load_ms"`      // parse + typecheck
	Packages    int                `json:"packages"`     // units analyzed
	AnalyzersMs map[string]float64 `json:"analyzers_ms"` // per-analyzer, summed over packages
}

// standalone loads patterns (default ./...) and reports all findings.
// With timing, the wall-clock profile is printed as a final JSON line on
// stdout. The first analyzer to need a lazily-built structure (the call
// graph, the hot/cost fixpoints) pays its construction inside its own
// bucket — coarse, but stable enough for a CI budget.
func standalone(patterns []string, jsonOut, timing bool) int {
	start := time.Now()
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nectar-vet:", err)
		return 1
	}
	pkgs, err := LoadPackages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nectar-vet:", err)
		return 1
	}
	loadDur := time.Since(start)
	perAnalyzer := make(map[string]time.Duration)
	prog := NewProgram(pkgs)
	exit := 0
	for _, pkg := range pkgs {
		for _, te := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "nectar-vet: typecheck %s: %v\n", pkg.PkgPath, te)
			exit = 1
		}
		var diags []Diagnostic
		for _, a := range All() {
			aStart := time.Now()
			ds, err := RunAnalyzersWith(prog, pkg, []*Analyzer{a})
			perAnalyzer[a.Name] += time.Since(aStart)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nectar-vet:", err)
				return 1
			}
			diags = append(diags, ds...)
		}
		sortDiagnostics(diags)
		for _, d := range diags {
			emit(pkg.Fset, d, jsonOut)
			exit = 2
		}
	}
	if timing {
		t := VetTiming{
			TotalMs:     float64(time.Since(start).Microseconds()) / 1e3,
			LoadMs:      float64(loadDur.Microseconds()) / 1e3,
			Packages:    len(pkgs),
			AnalyzersMs: make(map[string]float64, len(perAnalyzer)),
		}
		for name, d := range perAnalyzer {
			t.AnalyzersMs[name] = float64(d.Microseconds()) / 1e3
		}
		b, err := json.Marshal(struct {
			Timing VetTiming `json:"timing"`
		}{t})
		if err != nil { // unreachable: VetTiming is numbers and strings
			panic(err)
		}
		fmt.Println(string(b))
	}
	return exit
}

// vetUnit analyzes one package unit described by a go vet config file.
func vetUnit(cfgPath string, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nectar-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nectar-vet: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist even though these
	// analyzers produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("nectar-vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "nectar-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	filenames := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		filenames = append(filenames, f)
	}
	fset := token.NewFileSet()
	imp := &mappedImporter{
		m:    cfg.ImportMap,
		dir:  cfg.Dir,
		next: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := typecheckFiles(fset, cfg.ImportPath, filenames, imp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nectar-vet:", err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return 0
	}
	diags, err := RunAnalyzers(pkg, All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "nectar-vet:", err)
		return 1
	}
	for _, d := range diags {
		emit(fset, d, jsonOut)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// mappedImporter applies the vet config's ImportMap (import path as
// written -> canonical path) before delegating to the source importer.
type mappedImporter struct {
	m    map[string]string
	dir  string
	next types.Importer
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	if from, ok := mi.next.(types.ImporterFrom); ok {
		return from.ImportFrom(path, mi.dir, 0)
	}
	return mi.next.Import(path)
}
