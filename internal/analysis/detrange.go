package analysis

import (
	"go/ast"
	"go/types"
)

// detrangeEmitters maps a defining package path to the method/function
// names that emit externally observable, order-sensitive records: trace
// events, metric observations, wire captures, and cross-shard outbox
// entries. Emitting one of these from inside a range over a map bakes
// Go's randomized iteration order into the observable output — exactly
// the bug class internal/obs/merge.go's canonicalization exists to
// prevent on the other side of the shard boundary. The fix is always the
// same: collect the keys, sort them, and range over the slice.
var detrangeEmitters = map[string]map[string]bool{
	"nectar/internal/obs": {
		// Observer trace events.
		"Instant": true, "InstantSeq": true, "InstantArg": true,
		"Begin": true, "BeginSeq": true, "End": true,
		"emit": true,
		// Wire captures.
		"CapturePacket": true, "add": true,
		// Metric observations.
		"Inc": true, "Add": true, "Observe": true,
		// Sink delivery.
		"Event": true,
	},
	"nectar/internal/sim": {
		// Tracer marks.
		"Mark": true, "Markf": true,
		// Cross-shard outbox entries (Domain.Send buffers into the
		// per-destination outbox drained at the window barrier).
		"Send": true,
	},
}

// Detrange flags trace/metric/capture/outbox emission from inside a
// range over a map.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc: "flag range-over-map loops whose body emits trace events, metrics, wire captures, or cross-shard outbox " +
		"entries: map iteration order is nondeterministic, so the emission order would differ between runs. " +
		"Iterate a sorted key slice instead (cf. internal/obs/merge.go).",
	Run: runDetrange,
}

func runDetrange(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			t := tv.Type.Underlying()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem().Underlying()
			}
			if _, ok := t.(*types.Map); !ok {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, name := emitterOf(pass, sel)
				if names, ok := detrangeEmitters[pkg]; ok && names[name] {
					pass.Reportf(call.Pos(),
						"%s.%s emits order-sensitive output inside a range over a map: iteration order is "+
							"nondeterministic and breaks byte-identical runs; iterate a sorted key slice instead "+
							"(cf. internal/obs/merge.go)",
						shortPkg(pkg), name)
				}
				return true
			})
			return true
		})
	}
	return nil, nil
}

// emitterOf identifies the defining package and name for a call through
// sel, handling both method calls (o.Instant(...)) and package-qualified
// function calls (obs.Ensure(...)).
func emitterOf(pass *Pass, sel *ast.SelectorExpr) (pkg, name string) {
	if pkg, name = recvPkgPath(pass.TypesInfo, sel); pkg != "" {
		return pkg, name
	}
	if p := pkgNameOf(pass.TypesInfo, sel.X); p != "" {
		return p, sel.Sel.Name
	}
	return "", ""
}

func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
