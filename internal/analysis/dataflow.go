package analysis

import (
	"go/ast"
)

// A generic forward dataflow framework over the CFGs of cfg.go. One
// instantiation per lattice: obsgate runs a combined dominating-guard
// (must, intersection-join) and taint (may, union-join) analysis; the
// framework itself is agnostic — it just runs the classic worklist
// algorithm to a fixpoint.
//
// Facts propagate block-entry to block-entry: Solve returns the IN fact
// of every block, and a client replays Transfer across a block's nodes
// to recover the fact at each statement. Branch refines the fact along
// the true/false edges of two-way branches (if conditions, for
// conditions); edges of multi-way branches carry the unrefined fact.

// flow defines one forward dataflow problem over fact type F. F must be
// treated as immutable by all three functions: Transfer and Branch
// return fresh values (or the input unchanged), never mutate in place —
// the solver aliases facts freely.
type flow[F any] struct {
	// entry is the fact at function entry.
	entry F
	// join merges facts where control-flow paths meet. It must be
	// commutative, associative, and monotone (repeated joins converge).
	join func(F, F) F
	// equal reports whether two facts are indistinguishable; the solver
	// stops re-queuing a block when its IN fact stops changing.
	equal func(F, F) bool
	// transfer applies the effect of one block node.
	transfer func(n ast.Node, f F) F
	// branch, when non-nil, refines the fact along the true (takenTrue)
	// or false edge of a block ending in condition cond.
	branch func(cond ast.Expr, takenTrue bool, f F) F
}

// solve runs the worklist algorithm and returns the IN fact of every
// block, indexed by Block.Index. Blocks unreachable from entry keep F's
// zero value and are never visited; clients replaying facts should skip
// blocks solve reports unreached.
func solve[F any](cfg *CFG, fl flow[F]) (in []F, reached []bool) {
	n := len(cfg.Blocks)
	in = make([]F, n)
	reached = make([]bool, n)
	in[0] = fl.entry
	reached[0] = true
	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		blk := cfg.Blocks[bi]
		f := in[bi]
		for _, node := range blk.Nodes {
			f = fl.transfer(node, f)
		}
		for i, succ := range blk.Succs {
			sf := f
			if blk.Cond != nil && len(blk.Succs) == 2 && fl.branch != nil {
				sf = fl.branch(blk.Cond, i == 0, f)
			}
			si := succ.Index
			if !reached[si] {
				in[si] = sf
				reached[si] = true
			} else {
				merged := fl.join(in[si], sf)
				if fl.equal(merged, in[si]) {
					continue
				}
				in[si] = merged
			}
			if !inWork[si] {
				inWork[si] = true
				work = append(work, si)
			}
		}
	}
	return in, reached
}
