package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// Call-graph edge cases the analyzer fixtures do not isolate: method
// values, interface dispatch through embedded types, and function values
// escaping into variables, struct fields, and composite literals (the
// EdgeValue shapes costmodel and hotprop traverse).

// progFromSource type-checks one dependency-free source file and builds
// its call graph.
func progFromSource(t *testing.T, src string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cg.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{PkgPath: "cgtest", Fset: fset, Files: []*ast.File{f}, TypesInfo: newTypesInfo()}
	conf := types.Config{Error: func(error) {}}
	tpkg, _ := conf.Check("cgtest", fset, pkg.Files, pkg.TypesInfo)
	pkg.Types = tpkg
	prog := NewProgram([]*Package{pkg})
	prog.ensureGraph()
	return prog
}

// nodeBySuffix finds the unique function node whose ID ends in suffix.
func nodeBySuffix(t *testing.T, prog *Program, suffix string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range prog.nodes {
		if strings.HasSuffix(n.ID, suffix) {
			if found != nil {
				t.Fatalf("suffix %q is ambiguous: %s and %s", suffix, found.ID, n.ID)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node with suffix %q; have %v", suffix, nodeIDs(prog))
	}
	return found
}

func nodeIDs(prog *Program) []string {
	ids := make([]string, len(prog.nodes))
	for i, n := range prog.nodes {
		ids[i] = n.ID
	}
	return ids
}

// hasEdge reports whether from has an edge of the given kind to a callee
// whose ID ends in calleeSuffix.
func hasEdge(from *FuncNode, kind EdgeKind, calleeSuffix string) bool {
	for _, e := range from.Edges {
		if e.Kind == kind && strings.HasSuffix(e.Callee.ID, calleeSuffix) {
			return true
		}
	}
	return false
}

func TestCallgraphMethodValues(t *testing.T) {
	prog := progFromSource(t, `package cgtest

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func run(fn func()) { fn() }

func passesMethodValue(c *counter) {
	run(c.bump) // method value as call argument
}

func storesMethodValue(c *counter) {
	later := c.bump // method value into a variable
	_ = later
}
`)
	arg := nodeBySuffix(t, prog, ".passesMethodValue")
	if !hasEdge(arg, EdgeValue, ".bump") {
		t.Errorf("passesMethodValue: no EdgeValue to (*counter).bump; edges %v", edgeSummary(arg))
	}
	stored := nodeBySuffix(t, prog, ".storesMethodValue")
	if !hasEdge(stored, EdgeValue, ".bump") {
		t.Errorf("storesMethodValue: no EdgeValue to (*counter).bump; edges %v", edgeSummary(stored))
	}
}

func TestCallgraphEmbeddedInterface(t *testing.T) {
	prog := progFromSource(t, `package cgtest

type base struct{}

func (b *base) Handle() {}

// wrapper implements handler only through the embedded *base.
type wrapper struct{ *base }

type handler interface{ Handle() }

func dispatch(h handler) { h.Handle() }

func promoted(w *wrapper) { w.Handle() }

func useWrapper(w *wrapper) { dispatch(w) }
`)
	// Interface dispatch resolves to the embedded type's declaration.
	disp := nodeBySuffix(t, prog, ".dispatch")
	if !hasEdge(disp, EdgeIface, ".Handle") {
		t.Errorf("dispatch: no EdgeIface to (*base).Handle; edges %v", edgeSummary(disp))
	}
	// A promoted call on the concrete wrapper is a static call to the
	// embedded type's method.
	prom := nodeBySuffix(t, prog, ".promoted")
	if !hasEdge(prom, EdgeCall, ".Handle") {
		t.Errorf("promoted: no EdgeCall to (*base).Handle; edges %v", edgeSummary(prom))
	}
}

func TestCallgraphStructFieldFuncValues(t *testing.T) {
	prog := progFromSource(t, `package cgtest

type table struct {
	fn  func()
	sub []func()
}

func target() {}

func storeField(tb *table) {
	tb.fn = target // function value into a struct field
}

func seedLiteral() table {
	return table{fn: target} // function value through a composite literal
}

func seedSlice() []func() {
	return []func(){target} // function value through a slice literal
}

func declareVar() {
	var fn func() = target // function value through a var declaration
	_ = fn
}

func readField(tb *table) {
	tb.fn() // calling through a field is NOT an edge: the stores above own it
}
`)
	for _, name := range []string{".storeField", ".seedLiteral", ".seedSlice", ".declareVar"} {
		n := nodeBySuffix(t, prog, name)
		if !hasEdge(n, EdgeValue, ".target") {
			t.Errorf("%s: no EdgeValue to cgtest.target; edges %v", name, edgeSummary(n))
		}
	}
	// The field-call site itself contributes no edge (by design: the
	// value edges above already attribute the target to its creator).
	rd := nodeBySuffix(t, prog, ".readField")
	if len(rd.Edges) != 0 {
		t.Errorf("readField: expected no edges, got %v", edgeSummary(rd))
	}
}

func edgeSummary(n *FuncNode) []string {
	var out []string
	for _, e := range n.Edges {
		out = append(out, e.Kind.String()+" "+e.Callee.ID)
	}
	return out
}
