// Package hotpathtest exercises the hotpath analyzer: only functions
// annotated //nectar:hotpath are audited.
package hotpathtest

import "fmt"

// format builds a string per call.
//
//nectar:hotpath
func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf allocates its variadic args`
}

type tracer struct{}

func (tracer) Markf(format string, args ...any) {}
func (tracer) Mark(name string)                 {}

// markf pays for the args slice even when tracing is off.
//
//nectar:hotpath
func markf(t tracer, n int) {
	t.Markf("ev %d", n) // want `Markf builds its variadic args even when tracing is off`
}

// grow appends to a local declared without capacity.
//
//nectar:hotpath
func grow(n int) []int {
	var s []int
	for i := 0; i < n; i++ {
		s = append(s, i) // want `append grows local "s" declared without capacity`
	}
	return s
}

// growLit starts from a fresh composite literal every call.
//
//nectar:hotpath
func growLit(n int) []int {
	s := []int{}
	for i := 0; i < n; i++ {
		s = append(s, i) // want `append grows local "s"`
	}
	return s
}

func sink(v any) {}

// box converts a concrete value to an interface argument.
//
//nectar:hotpath
func box(n int) {
	sink(n) // want `argument converts int to`
}

// boxAssign converts on assignment.
//
//nectar:hotpath
func boxAssign(n int) {
	var v any
	v = n // want `assignment converts int to`
	_ = v
}

// capture allocates a closure over n.
//
//nectar:hotpath
func capture(n int) func() int {
	return func() int { return n } // want `closure captures "n"`
}

// clean is the approved shape: pre-sized locals, caller-owned slices,
// precomputed marks, panic-only formatting.
//
//nectar:hotpath
func clean(t tracer, dst []int, n int) []int {
	if n < 0 {
		panic(fmt.Sprintf("clean: negative n %d", n)) // failure path: exempt
	}
	buf := make([]int, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, i)
		dst = append(dst, i)
	}
	t.Mark("clean")
	return buf
}

// unannotated functions may allocate freely.
func unannotated(n int) string {
	return fmt.Sprintf("free %d", n)
}

func misplaced() {
	/* want `//nectar:hotpath must be part of a function declaration's doc comment` */ //nectar:hotpath
	_ = 0
}
