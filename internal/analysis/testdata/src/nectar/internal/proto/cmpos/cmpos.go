// Package cmpos exercises the costmodel analyzer against the real
// transmit sinks: uncharged direct sends, uncharged chains (flagged at
// the entry point only), charged paths (field reads, derived cost
// methods, charges paid by the enclosing function around a deferred
// closure), //nectar:free-hop waivers, and sink method values escaping
// into variables.
package cmpos

import (
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/vme"
	"nectar/internal/model"
	"nectar/internal/sim"
)

// --- uncharged paths ---

func sendUncharged(l *fiber.Link, p *fiber.Packet) { // want `cmpos\.sendUncharged reaches fiber transmit Link\.Send \(cmpos\.sendUncharged\) without charging any model\.CostModel latency`
	l.Send(p)
}

func dmaUncharged(b *vme.Bus) { // want `cmpos\.dmaUncharged reaches VME transfer Bus\.DMA \(cmpos\.dmaUncharged\) without charging`
	b.DMA(64, nil)
}

// The chain is flagged once, at its entry point; forward is inside the
// region but carries no diagnostic of its own.
func entry(l *fiber.Link, p *fiber.Packet) { // want `cmpos\.entry reaches fiber transmit Link\.Send \(cmpos\.entry -> cmpos\.forward\) without charging`
	forward(l, p)
}

func forward(l *fiber.Link, p *fiber.Packet) {
	l.Send(p)
}

// A sink method value escaping into a variable is a touch: whoever
// invokes it later transmits on this function's behalf.
func sendViaValue(l *fiber.Link) { // want `cmpos\.sendViaValue reaches fiber transmit Link\.SendAt \(cmpos\.sendViaValue\) without charging`
	tx := l.SendAt
	_ = tx
}

// --- charged paths ---

func sendCharged(cost *model.CostModel, k *sim.Kernel, l *fiber.Link, p *fiber.Packet) {
	t := k.Now() + sim.Time(cost.DatalinkProcess)
	k.At(t, func() { l.SendAt(p, t) }) // ok: the root charged before deferring
}

func sendChargedDerived(cost *model.CostModel, k *sim.Kernel, l *fiber.Link, p *fiber.Packet) {
	t := k.Now() + sim.Time(cost.FiberTime(p.WireLen()))
	l.SendAt(p, t) // ok: derived cost methods charge too
}

func callsCharged(cost *model.CostModel, k *sim.Kernel, l *fiber.Link, p *fiber.Packet) {
	sendCharged(cost, k, l, p) // ok: the path below charges
}

// --- waivers ---

// transmitWaived is a pure forwarding step.
//
//nectar:free-hop fixture: callers charge DatalinkProcess before invoking
func transmitWaived(l *fiber.Link, p *fiber.Packet) {
	l.Send(p)
}

func callsWaived(l *fiber.Link, p *fiber.Packet) {
	transmitWaived(l, p) // ok: the waived hop absorbs the region
}

// --- directive placement ---

func misplacedWaiver(l *fiber.Link, p *fiber.Packet) { // want `cmpos\.misplacedWaiver reaches fiber transmit Link\.Send`
	/* want `//nectar:free-hop must be part of a function declaration's doc comment` */ //nectar:free-hop fixture: not a doc comment
	l.Send(p)
}
