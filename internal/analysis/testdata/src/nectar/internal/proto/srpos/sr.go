// Package srpos exercises the seededrand analyzer in a deterministic
// package (import path under nectar/internal/proto).
package srpos

import "math/rand"

func drop() bool {
	return rand.Float64() < 0.5 // want `global math/rand state \(rand\.Float64\)`
}

func pick(n int) int {
	return rand.Intn(n) // want `global math/rand state \(rand\.Intn\)`
}

func reseed() {
	rand.Seed(42) // want `global math/rand state \(rand\.Seed\)`
}

// Injected, seeded generators are the approved pattern: constructors and
// types are allowed, and methods on the injected *rand.Rand are local
// state, not global.
type faults struct {
	rng *rand.Rand
}

func newFaults(seed int64) *faults {
	return &faults{rng: rand.New(rand.NewSource(seed))}
}

func (f *faults) drop() bool {
	return f.rng.Float64() < 0.5
}
