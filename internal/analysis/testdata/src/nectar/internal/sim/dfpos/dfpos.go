// Package dfpos exercises the detfail analyzer: os.Exit, global-logger
// writes, and ad-hoc formatted panics in a deterministic package, plus
// the sanctioned forms (bare constant panics, fmt.Errorf into an error
// return, //nectar:diag-helper surfaces) and directive placement.
package dfpos

import (
	"fmt"
	"log"
	"os"
)

func exits(bad bool) {
	if bad {
		os.Exit(2) // want `os\.Exit in a deterministic package kills the run without a replayable diagnostic`
	}
}

func logs(n int) {
	log.Printf("bad state: %d", n) // want `package log writes wall-clock-stamped output through a global logger`
	log.Fatal("dead")              // want `package log writes wall-clock-stamped output through a global logger`
}

func adHocPanics(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n)) // want `ad-hoc panic\(fmt\.Sprintf\(\.\.\.\)\) drifts in format between sites`
	}
	if n > 10 {
		panic(fmt.Errorf("too big: %d", n)) // want `ad-hoc panic\(fmt\.Errorf\(\.\.\.\)\) drifts in format between sites`
	}
}

func sanctioned(n int) error {
	if n < 0 {
		panic("dfpos: negative input") // ok: constant panics are deterministic already
	}
	if n > 10 {
		return fmt.Errorf("too big: %d", n) // ok: error returns are the caller's problem
	}
	return nil
}

// failf is this fixture's sanctioned formatted-panic surface.
//
//nectar:diag-helper fixture: the one sanctioned formatted-panic surface
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) // ok: inside the declared helper
}

func misplacedHelper(n int) {
	/* want `//nectar:diag-helper must be part of a function declaration's doc comment` */ //nectar:diag-helper not a doc comment
	panic(fmt.Sprintf("still flagged: %d", n))                                             // want `ad-hoc panic\(fmt\.Sprintf\(\.\.\.\)\) drifts in format between sites`
}
