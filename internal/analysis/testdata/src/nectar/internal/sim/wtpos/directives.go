// Directive-hygiene edge cases: a typoed verb or a missing reason is
// itself a diagnostic, so a broken escape hatch can never silently
// disable the check.
package wtpos

import "time"

/* want `requires a reason` */ //nectar:allow-walltime

/* want `unknown directive "//nectar:allow-waltime"` */ //nectar:allow-waltime measures stuff

/* want `unknown directive "//nectar:"` */ //nectar: allow-walltime leading space breaks the verb

// missingReason demonstrates that a reason-less directive also fails to
// suppress: the finding on the next line is still reported.
func missingReason() {
	/* want `requires a reason` */ //nectar:allow-walltime
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
}
