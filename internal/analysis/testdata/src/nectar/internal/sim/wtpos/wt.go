// Package wtpos exercises the walltime analyzer in a deterministic
// package (import path under nectar/internal/sim).
package wtpos

import "time"

func now() time.Time {
	return time.Now() // want `wall-clock time\.Now in deterministic package`
}

func sleeper() {
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
}

func armed() {
	_ = time.NewTimer(time.Second) // want `wall-clock time\.NewTimer`
	_ = time.Tick(time.Second)     // want `wall-clock time\.Tick`
	_ = time.After(time.Second)    // want `wall-clock time\.After`
}

// Virtual-time arithmetic on time.Duration constants is fine: only the
// clock-reading functions are forbidden.
func durations() time.Duration {
	return 3 * time.Millisecond
}

// measured is measurement code: a function-level directive excuses the
// whole body.
//
//nectar:allow-walltime compares harness wall clock against virtual time
func measured() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}

func trailing() time.Time {
	return time.Now() //nectar:allow-walltime calibration probe outside simulation
}

func preceding() {
	//nectar:allow-walltime sleep runs outside any kernel
	time.Sleep(time.Millisecond)
}

// wrongLine shows a directive too far from the call to cover it: a
// directive covers its own line and the next one only.
func wrongLine() {
	//nectar:allow-walltime stranded two lines above

	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
}
