// Package uspos exercises the unitsafe analyzer against the real sim
// unit types: wall/virtual conversions, raw literals adopting a unit
// type, unit-dropping casts, and the sanctioned forms (zero, named
// constants, scalar scaling, the sim accessors).
package uspos

import (
	"time"

	"nectar/internal/sim"
)

// --- wall <-> virtual conversions ---

func wallIn(d time.Duration) sim.Duration {
	return sim.Duration(d) // want `conversion adopts wall-clock time\.Duration as sim\.Duration`
}

func wallInTime(d time.Duration) sim.Time {
	return sim.Time(d) // want `conversion adopts wall-clock time\.Duration as sim\.Time`
}

func wallOut(d sim.Duration) time.Duration {
	return time.Duration(d) // want `conversion republishes sim\.Duration as wall-clock time\.Duration`
}

// --- raw numeric literals adopting a unit type ---

func rawVar() {
	var d sim.Duration = 1500 // want `raw numeric literal 1500 adopts type sim\.Duration`
	_ = d
}

func rawArg(k *sim.Kernel, fn func()) {
	k.After(700, fn) // want `raw numeric literal 700 adopts type sim\.Duration`
}

func rawCompare(t sim.Time) bool {
	return t > 2500 // want `raw numeric literal 2500 adopts type sim\.Time`
}

func rawConv() sim.Duration {
	// An explicit conversion is still a magic number with an implicit
	// unit: the literal adopts the target type either way.
	return sim.Duration(2000) // want `raw numeric literal 2000 adopts type sim\.Duration`
}

// --- unit-dropping casts ---

func dropInt(t sim.Time) int64 {
	return int64(t) // want `conversion to int64 drops the sim\.Time unit`
}

func dropFloat(d sim.Duration) float64 {
	return float64(d) // want `conversion to float64 drops the sim\.Duration unit`
}

// --- sanctioned forms: silent ---

// Named constants are where unit-bearing literals belong.
const setupLookahead = 700 * sim.Nanosecond

func ok(d sim.Duration, t sim.Time) (sim.Duration, float64) {
	var zero sim.Time = 0 // the zero value, not a quantity
	_ = zero
	half := d / 2   // scalar scaling keeps the unit
	scaled := 3 * d // ditto
	m := sim.Micros(1.5)
	w := setupLookahead
	_ = t.Micros() // the audited unit-dropping exits
	_ = d.Nanos()
	return half + scaled + m + w, t.Micros()
}

// Time<->Duration stays inside the virtual unit system.
func sameUnit(t sim.Time, d sim.Duration) sim.Time {
	return t + sim.Time(d)
}
