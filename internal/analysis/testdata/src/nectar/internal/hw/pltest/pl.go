// Package pltest exercises the poollife analyzer against the real pool
// surfaces: leaks on error paths, conditional acquires refined by their
// ok result, every ownership-transfer shape (field store, return,
// closure capture, annotated callee), borrows that do NOT settle,
// double-releases (explicit and deferred), use-after-release, discarded
// acquires, //nectar:leak-ok waivers, and //nectar:takes-ownership
// placement diagnostics.
package pltest

import (
	"nectar/internal/hw/fiber"
	"nectar/internal/pool"
	"nectar/internal/sim"
)

// work borrows the packet: no //nectar:takes-ownership, so the release
// obligation stays with the caller.
func work(pkt *fiber.Packet) {}

// consume assumes the release obligation and honors it on every path.
//
//nectar:takes-ownership pkt released unconditionally before returning
func consume(pkt *fiber.Packet) {
	pkt.Release()
}

// --- leaks ---

func leakOnErrorPath(p *fiber.Pool, bad bool) {
	pkt := p.GetPacket() // want `pooled packet pkt is not released on every path`
	if bad {
		return // this arm abandons pkt
	}
	pkt.Release()
}

func borrowDoesNotSettle(p *fiber.Pool) {
	pkt := p.GetPacket() // want `pooled packet pkt is not released on every path`
	work(pkt)            // a borrow: the obligation stays here
}

func leakConditional(fl *pool.FreeList[[]byte], n int) {
	b, ok := fl.Get() // want `pooled slot b is not released on every path`
	if ok && n > 0 {  // the ok&&n arm releases, but ok&&!n leaks b
		fl.Put(b)
	}
}

// --- conditional acquires refined by ok ---

func refinedEarlyReturn(fl *pool.FreeList[[]byte]) {
	b, ok := fl.Get()
	if !ok {
		return // ok is false here: nothing was produced, nothing owed
	}
	fl.Put(b)
}

func refinedGuardedRelease(fl *pool.FreeList[[]byte]) {
	b, ok := fl.Get()
	if ok {
		fl.Put(b) // ok: released on the true edge, never produced on the false one
	}
}

// --- ownership transfers ---

type holder struct{ pkt *fiber.Packet }

func transferViaField(p *fiber.Pool, h *holder) {
	pkt := p.GetPacket()
	h.pkt = pkt // ok: ownership moved into the field
}

func transferViaReturn(p *fiber.Pool) *fiber.Packet {
	pkt := p.GetPacket()
	return pkt // ok: ownership flows to the caller
}

func transferViaCallee(p *fiber.Pool) {
	pkt := p.GetPacket()
	consume(pkt) // ok: the annotated callee assumes the obligation
}

func transferViaClosure(p *fiber.Pool, k *sim.Kernel) {
	pkt := p.GetPacket()
	k.After(sim.Microsecond, func() { pkt.Release() }) // ok: the capture moves ownership
}

func releaseViaAlias(fl *pool.FreeList[[]byte]) {
	b, ok := fl.Get()
	if !ok {
		return
	}
	c := b
	fl.Put(c) // ok: the alias releases the same slot
}

// badConsume claims the obligation but drops it on the error path; the
// seeded parameter is checked like a local acquire.
//
//nectar:takes-ownership pkt fixture bug, freed on the happy path only
func badConsume(pkt *fiber.Packet, bad bool) { // want `//nectar:takes-ownership parameter pkt is not released on every path`
	if bad {
		return
	}
	pkt.Release()
}

// --- double-release and use-after-release ---

func doubleRelease(p *fiber.Pool, bad bool) {
	pkt := p.GetPacket()
	pkt.Release()
	if bad {
		pkt.Release() // want `double release of pkt: a path to this Release has already released it`
	}
}

func releaseInDefer(p *fiber.Pool) {
	pkt := p.GetPacket()
	defer pkt.Release() // ok: the deferred release settles every path
	work(pkt)
}

func deferThenExplicit(p *fiber.Pool) {
	pkt := p.GetPacket()
	defer pkt.Release()
	pkt.Release() // want `double release of pkt: a deferred release of it is already pending`
}

func useAfterRelease(p *fiber.Pool) int {
	pkt := p.GetPacket()
	pkt.Release()
	return len(pkt.Frame) // want `use of pkt after release`
}

// --- discarded acquires ---

func discarded(fl *pool.FreeList[[]byte]) {
	fl.Get() // want `the pooled slot returned by \(\*pool\.FreeList\[T\]\)\.Get is discarded and leaks`
}

func discardedWithOk(fl *pool.FreeList[[]byte]) bool {
	_, ok := fl.Get() // want `the pooled slot returned by \(\*pool\.FreeList\[T\]\)\.Get is discarded and leaks`
	return ok
}

func deliberateDiscard(fl *pool.FreeList[[]byte]) {
	fl.Get() //nectar:leak-ok fixture: the popped slot is returned through a Peek alias
}

// --- timers: fire-and-forget is sanctioned, a bound timer owes a Stop ---

func fireAndForget(k *sim.Kernel) {
	k.After(sim.Microsecond, func() {}) // ok: an unbound timer is kernel-owned until it fires
}

func timerLeak(k *sim.Kernel, bad bool) {
	t := k.After(sim.Microsecond, func() {}) // want `timer t is not released on every path`
	if bad {
		return // abandons the bound timer without Stop
	}
	t.Stop()
}

func timerStopped(k *sim.Kernel) {
	t := k.After(sim.Microsecond, func() {})
	t.Stop() // ok
}

// --- //nectar:leak-ok waivers ---

func waivedLeak(p *fiber.Pool, bad bool) {
	pkt := p.GetPacket() //nectar:leak-ok fixture: sentinel packet stranded on purpose
	if bad {
		return
	}
	pkt.Release()
}

// wholeFunctionWaiver strands its acquire by design; the doc-comment
// directive covers the whole body.
//
//nectar:leak-ok fixture: every acquire in this function is a sentinel
func wholeFunctionWaiver(p *fiber.Pool) {
	pkt := p.GetPacket()
	work(pkt)
}

// --- //nectar:takes-ownership placement ---

// wrongParam names a parameter that does not exist.
//
/* want `//nectar:takes-ownership names "bogus", which is not a parameter or receiver of wrongParam` */ //nectar:takes-ownership bogus the fixture names a ghost parameter
func wrongParam(pkt *fiber.Packet) {
	pkt.Release()
}

func misplacedDirective(p *fiber.Pool) {
	/* want `//nectar:takes-ownership must be part of a function declaration's doc comment` */ //nectar:takes-ownership pkt a body comment transfers nothing
	pkt := p.GetPacket()
	pkt.Release()
}
