// Package ogpos exercises the obsgate analyzer against the real obs
// emission surfaces: costly arguments outside the Tracing() guard,
// allocations escaping the guard through locals, the guard spellings
// the dataflow must recognize (negated early return, && chains, bool
// witnesses, CaptureLog() != nil), guard kills, closure inheritance,
// and the always-on metric rule.
package ogpos

import (
	"fmt"
	"strconv"

	"nectar/internal/obs"
)

// --- direct costly arguments ---

func unguarded(o *obs.Observer, n int) {
	o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // want `obs trace InstantArg argument calls fmt\.Sprintf outside the o\.Tracing\(\) guard`
}

func guarded(o *obs.Observer, n int) {
	if o.Tracing() {
		o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // ok: dominated by the guard
	}
}

func cheapUnguarded(o *obs.Observer, seq uint64) {
	o.Instant(0, obs.LayerFiber, "tx")            // ok: constant args are free
	o.InstantSeq(0, obs.LayerFiber, "tx", seq, 8) // ok: plain value args are free
}

func concatUnguarded(o *obs.Observer, who string) {
	o.InstantArg(0, obs.LayerDatalink, "rx", "from="+who, 0, 0) // want `obs trace InstantArg argument concatenates strings outside the o\.Tracing\(\) guard`
}

func strconvUnguarded(o *obs.Observer, n int) {
	o.InstantArg(0, obs.LayerDatalink, "rx", strconv.Itoa(n), 0, 0) // want `obs trace InstantArg argument calls strconv\.Itoa outside the o\.Tracing\(\) guard`
}

// --- guard spellings ---

func earlyReturn(o *obs.Observer, n int) {
	if !o.Tracing() {
		return
	}
	o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // ok: the false edge returned
}

func andChain(o *obs.Observer, verbose bool, n int) {
	if verbose && o.Tracing() {
		o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // ok: && keeps both conjuncts
	}
}

func orChain(o *obs.Observer, verbose bool, n int) {
	if verbose || o.Tracing() {
		// The true edge of an || proves neither disjunct.
		o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // want `obs trace InstantArg argument calls fmt\.Sprintf outside the o\.Tracing\(\) guard`
	}
}

func boolWitness(o *obs.Observer, n int) {
	on := o.Tracing()
	if on {
		o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // ok: on witnesses the guard
	}
}

func wrongReceiver(a, b *obs.Observer, n int) {
	if a.Tracing() {
		b.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // want `obs trace InstantArg argument calls fmt\.Sprintf outside the b\.Tracing\(\) guard`
	}
}

func guardKilled(o, p *obs.Observer, n int) {
	if o.Tracing() {
		o = p
		o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // want `obs trace InstantArg argument calls fmt\.Sprintf outside the o\.Tracing\(\) guard`
	}
}

// --- allocations escaping the guard through locals ---

func taintEscapes(o *obs.Observer, n int) {
	arg := fmt.Sprintf("seq=%d", n) // built even when tracing is off
	if o.Tracing() {
		o.InstantArg(0, obs.LayerFiber, "tx", arg, 0, 0) // want `obs trace InstantArg argument was built by an allocating expression outside the o\.Tracing\(\) guard`
	}
}

func taintGuarded(o *obs.Observer, n int) {
	if o.Tracing() {
		arg := fmt.Sprintf("seq=%d", n)
		o.InstantArg(0, obs.LayerFiber, "tx", arg, 0, 0) // ok: definition was dominated too
	}
}

func taintOverwritten(o *obs.Observer, n int, cheap string) {
	arg := fmt.Sprintf("seq=%d", n)
	arg = cheap                                      // the costly definition is dead
	o.InstantArg(0, obs.LayerFiber, "tx", arg, 0, 0) // ok: emission sees the cheap binding
}

// --- closures inherit the fact at their creation point ---

func closureInGuard(o *obs.Observer, run func(func()), n int) {
	if o.Tracing() {
		run(func() {
			o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // ok: created under the guard
		})
	}
}

func closureUnguarded(o *obs.Observer, run func(func()), n int) {
	run(func() {
		o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0) // want `obs trace InstantArg argument calls fmt\.Sprintf outside the o\.Tracing\(\) guard`
	})
}

// --- packet capture ---

func captureGuarded(o *obs.Observer, frame []byte, id int) {
	if o.CaptureLog() != nil {
		o.CapturePacket("cab"+strconv.Itoa(id), frame, false, false) // ok: capture guard
	}
}

func captureViaTracing(o *obs.Observer, frame []byte, id int) {
	if o.Tracing() {
		o.CapturePacket("cab"+strconv.Itoa(id), frame, false, false) // ok: tracing implies a live observer
	}
}

func captureUnguarded(o *obs.Observer, frame []byte, id int) {
	o.CapturePacket("cab"+strconv.Itoa(id), frame, false, false) // want `obs capture CapturePacket argument concatenates strings outside the o\.CaptureLog\(\) != nil guard`
}

// --- metrics are always on: no guard excuses an allocating argument ---

func metricAlloc(c *obs.Counter, n int) {
	c.Add(uint64(len(fmt.Sprintf("%d", n)))) // want `obs metric Add has no disabled state, but its argument calls fmt\.Sprintf`
}

func metricClean(c *obs.Counter, n uint64) {
	c.Inc()   // ok
	c.Add(n)  // ok
	c.Add(64) // ok
}
