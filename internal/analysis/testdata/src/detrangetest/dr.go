// Package detrangetest exercises the detrange analyzer against the real
// nectar/internal/obs and nectar/internal/sim emission APIs.
package detrangetest

import (
	"sort"

	"nectar/internal/obs"
	"nectar/internal/sim"
)

func traceFromMap(o *obs.Observer, m map[int]int) {
	for node := range m {
		o.Instant(node, obs.LayerMailbox, "flush") // want `obs\.Instant emits order-sensitive output inside a range over a map`
	}
}

func metricsFromMap(c *obs.Counter, m map[string]uint64) {
	for _, v := range m {
		c.Add(v) // want `obs\.Add emits order-sensitive output`
	}
}

func marksFromMap(k *sim.Kernel, m map[string]bool) {
	for name := range m {
		if m[name] {
			k.Mark(name) // want `sim\.Mark emits order-sensitive output`
		}
	}
}

func outboxFromMap(src, dst *sim.Domain, pending map[sim.Time]func()) {
	for at, fn := range pending {
		src.Send(dst, at, fn) // want `sim\.Send emits order-sensitive output`
	}
}

func captureFromMap(o *obs.Observer, frames map[string][]byte) {
	for link, f := range frames {
		o.CapturePacket(link, f, false, false) // want `obs\.CapturePacket emits order-sensitive output`
	}
}

// sortedThenEmit is the approved shape: collect, sort, then range the
// slice (cf. internal/obs/merge.go).
func sortedThenEmit(o *obs.Observer, m map[int]int) {
	nodes := make([]int, 0, len(m))
	for node := range m {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		o.Instant(node, obs.LayerMailbox, "flush")
	}
}

// accumulate only reads through the map: commutative folds are
// order-insensitive and allowed.
func accumulate(m map[string]uint64) uint64 {
	var sum uint64
	for _, v := range m {
		sum += v
	}
	return sum
}
