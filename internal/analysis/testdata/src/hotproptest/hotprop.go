// Package hotproptest exercises the hotprop analyzer: transitive
// hotpath purity over the call graph, //nectar:hotpath-exempt pruning,
// chain reporting, and directive placement.
package hotproptest

import "fmt"

// Root is the annotated fast path. Its own body is clean — every
// finding below is in a helper it (transitively) reaches.
//
//nectar:hotpath
func Root(n int) int {
	total := helper(n)    // direct call
	total += deep(n)      // two-hop chain
	total += colder(n)    // pruned at the exempt function
	total += annotated(n) // audited by hotpath itself, not hotprop
	total += viaValue(n)  // function value passed to a spawner
	total += viaIface(adder{}, n)
	return total
}

// helper is reached directly from the root and allocates.
func helper(n int) int {
	s := fmt.Sprintf("%d", n) // want `helper is reachable from //nectar:hotpath root hotproptest\.Root \(hotproptest\.Root -> hotproptest\.helper\) but fmt\.Sprintf allocates its variadic args`
	return len(s)
}

// deep is clean but calls deeper, giving a three-element chain.
func deep(n int) int { return deeper(n) }

func deeper(n int) int {
	var acc []int
	acc = append(acc, n) // want `deeper is reachable .* \(hotproptest\.Root -> hotproptest\.deep -> hotproptest\.deeper\) but append grows local "acc" declared without capacity`
	return len(acc)
}

// colder is a legitimate cold path: the exemption prunes it and
// everything reachable only through it.
//
//nectar:hotpath-exempt reconfiguration path runs once per topology change
func colder(n int) int { return coldest(n) }

// coldest allocates freely — reachable only through the exemption, so
// no diagnostic.
func coldest(n int) int {
	return len(fmt.Sprint(n))
}

// annotated carries its own //nectar:hotpath: the hotpath analyzer owns
// its body, so hotprop stays silent about it (no double report).
//
//nectar:hotpath
func annotated(n int) int { return n }

// spawn models an approved callback surface: hotprop follows the named
// function value into it.
func spawn(fn func(int) int, n int) int { return n }

func viaValue(n int) int { return spawn(callback, n) }

// callback runs under the hot caller even though its invocation is
// deferred.
func callback(n int) int {
	s := fmt.Sprint(n) // want `callback is reachable .* but fmt\.Sprint allocates`
	return len(s)
}

// viaIface dispatches through an interface; the method set resolves the
// call to every implementation in the package.
type summer interface{ sum(int) int }

type adder struct{}

func (adder) sum(n int) int {
	s := fmt.Sprintln(n) // want `\(hotproptest\.adder\)\.sum is reachable .* but fmt\.Sprintln allocates`
	return len(s)
}

func viaIface(s summer, n int) int { return s.sum(n) }

// twoOnOneLine is reached and boxes two concrete values into interface
// parameters on a single line: two diagnostics, two want literals.
//
//nectar:hotpath
func HotTwo(a, b int) { twoOnOneLine(a, b) }

func sink2(x, y any) {}

func twoOnOneLine(a, b int) {
	sink2(a, b) // want `argument converts int to any` `argument converts int to any`
}

// loop and pool are mutually recursive reached functions: the BFS must
// terminate and stay silent (both are clean).
//
//nectar:hotpath
func HotLoop(n int) int { return loop(n) }

func loop(n int) int {
	if n <= 0 {
		return 0
	}
	return pool(n - 1)
}

func pool(n int) int { return loop(n - 1) }

// Unreached allocates but is never called from a hot root: silent.
func Unreached(n int) string { return fmt.Sprintf("%d", n) }

// Placement edge: the exemption only means something on a function
// declaration's doc comment.
func misplaced() {
	/* want `//nectar:hotpath-exempt must be part of a function declaration's doc comment` */ //nectar:hotpath-exempt stray waiver
	_ = 0
}
