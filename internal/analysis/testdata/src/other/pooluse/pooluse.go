// Package pooluse reproduces pltest's leaky shapes in a package outside
// the deterministic set: poollife must stay silent here, including on
// the misplaced directive.
package pooluse

import "nectar/internal/hw/fiber"

func LeakOnErrorPath(p *fiber.Pool, bad bool) {
	pkt := p.GetPacket()
	if bad {
		return
	}
	pkt.Release()
}

func DoubleRelease(p *fiber.Pool) {
	pkt := p.GetPacket()
	pkt.Release()
	pkt.Release()
}

func MisplacedDirective(p *fiber.Pool) {
	//nectar:takes-ownership pkt silent outside the deterministic set
	pkt := p.GetPacket()
	work(pkt)
}

func work(pkt *fiber.Packet) {}
