// Package clock is outside the deterministic import-path set: wall
// clock and directives are nobody's business here, so walltime must stay
// silent (CLIs under cmd/ measure wall clock on purpose).
package clock

import "time"

func Elapsed(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}
