// Package costfree holds the same uncharged transmit as the cmpos
// fixture but lives outside the deterministic package set: costmodel
// must stay silent (tools and drivers may inject traffic freely).
package costfree

import (
	"nectar/internal/hw/fiber"
)

func sendUncharged(l *fiber.Link, p *fiber.Packet) {
	l.Send(p)
}
