// Package units holds the same unit offences as the uspos fixture but
// lives outside the deterministic package set: unitsafe must stay
// silent (CLIs and tools may bridge wall and virtual time freely).
package units

import (
	"time"

	"nectar/internal/sim"
)

func wallIn(d time.Duration) sim.Duration { return sim.Duration(d) }

func rawVar() sim.Duration {
	var d sim.Duration = 1500
	return d
}

func dropInt(t sim.Time) int64 { return int64(t) }
