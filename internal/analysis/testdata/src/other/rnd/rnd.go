// Package rnd is outside the deterministic import-path set; global
// math/rand is allowed here.
package rnd

import "math/rand"

func Jitter() float64 { return rand.Float64() }
