// Package tracearg holds the same unguarded-allocation offences as the
// ogpos fixture but lives outside the deterministic package set:
// obsgate must stay silent (tools may format trace output freely).
package tracearg

import (
	"fmt"

	"nectar/internal/obs"
)

func unguarded(o *obs.Observer, n int) {
	o.InstantArg(0, obs.LayerFiber, "tx", fmt.Sprintf("seq=%d", n), 0, 0)
}

func metricAlloc(c *obs.Counter, n int) {
	c.Add(uint64(len(fmt.Sprintf("%d", n))))
}
