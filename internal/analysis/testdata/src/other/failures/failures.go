// Package failures holds the same failure-path offences as the dfpos
// fixture but lives outside the deterministic package set: detfail must
// stay silent (CLIs may os.Exit and log freely).
package failures

import (
	"fmt"
	"log"
	"os"
)

func exits() {
	log.Printf("going down")
	panic(fmt.Sprintf("unless %d", recoverCode()))
}

func recoverCode() int {
	os.Exit(3)
	return 0
}
