// Package shardsafetest exercises the shardsafe analyzer: shard-owned
// fields and types, the receiver/parameter ownership chain, the
// unowned bases (index, range, package variable, channel receive), the
// shard-boundary waiver, and directive placement.
package shardsafetest

// Kernel is a whole type of per-shard state: every access to a Kernel
// value must prove same-shard ownership.
//
//nectar:shard-owned
type Kernel struct{ now int64 }

func (k *Kernel) Step()     {}
func (k *Kernel) At() int64 { return k.now }

// Domain holds the per-shard handles.
type Domain struct {
	id  int
	k   *Kernel //nectar:shard-owned
	out []int   //nectar:shard-owned
}

type Coupling struct {
	domains []*Domain
}

// --- owned accesses: silent ---

// step reaches the kernel through the receiver.
func (d *Domain) step() {
	d.k.Step()
	d.out = append(d.out, d.id)
}

// advance reaches it through a parameter.
func advance(d *Domain) { d.k.Step() }

// fresh constructs its own domain: composite literals are owned.
func fresh() *Domain {
	d := &Domain{k: &Kernel{}}
	d.k.Step()
	return d
}

// viaCall trusts call results: accessors return state they own.
func (c *Coupling) pick() *Domain { return c.domains[0] }

func viaCall(c *Coupling) { c.pick().k.Step() }

// chained follows a field chain rooted at a parameter.
type wrapper struct{ d *Domain }

func chained(w *wrapper) { w.d.k.Step() }

// reassigned locals stay owned while every source is owned.
func reassigned(a, b *Domain) {
	d := a
	d = b
	d.k.Step()
}

// closureParam: a literal's own parameters are owned like a function's.
func closureParam() func(*Domain) {
	return func(d *Domain) { d.k.Step() }
}

// --- unowned accesses: reported ---

// crossIndex picks an arbitrary shard out of the collection.
func crossIndex(c *Coupling, i int) {
	c.domains[i].k.Step() // want `shard-owned field "k" reached through a non-owned path`
}

// crossRange iterates over every shard.
func crossRange(c *Coupling) {
	for _, d := range c.domains {
		d.k.Step() // want `shard-owned field "k" reached through a non-owned path`
	}
}

// crossLocal launders the index through a local: the source chain still
// ends at an index expression.
func crossLocal(c *Coupling) {
	d := c.domains[1]
	d.out = nil // want `shard-owned field "out" reached through a non-owned path`
}

// crossGlobal reads a package variable, shared by every shard.
var current *Domain

func crossGlobal() {
	current.k.Step() // want `shard-owned field "k" reached through a non-owned path`
}

// crossChan receives a domain from a channel: by construction the value
// came from another goroutine.
func crossChan(ch chan *Domain) {
	d := <-ch
	d.k.Step() // want `shard-owned field "k" reached through a non-owned path`
}

// crossType exercises the type-level annotation: a method call on an
// arbitrary Kernel out of a slice.
func crossType(ks []*Kernel) {
	for _, k := range ks {
		k.Step() // want `shard-owned type Kernel used through a non-owned path`
	}
}

// --- the audited boundary: silent despite cross-domain access ---

// barrier is the outbox drain; the waiver (with its reason) turns the
// audit off for this one body.
//
//nectar:shard-boundary test-fixture window-barrier drain
func barrier(c *Coupling) {
	for _, d := range c.domains {
		d.k.Step()
		d.out = d.out[:0]
	}
}

// --- directive placement edges ---

func misplacedOwned() {
	/* want `//nectar:shard-owned must annotate a type declaration or a struct field` */ //nectar:shard-owned
	_ = 0
}

func misplacedBoundary() {
	/* want `//nectar:shard-boundary must be part of a function declaration's doc comment` */ //nectar:shard-boundary stray waiver
	_ = 0
}
