package sim

func fire(fn func()) {
	go fn() // want `go statement outside the approved concurrency surfaces`
}

func fireAll(fns []func()) {
	for _, fn := range fns {
		go fn() // want `go statement outside the approved concurrency surfaces`
	}
}
