// Package sim mimics the layout of the real nectar/internal/sim so the
// rawgo approved-file suffix match can be exercised: this file is named
// pdes.go under internal/sim/, so its go statements are allowed.
package sim

func workers(n int, job func(int)) chan struct{} {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) { // approved surface: internal/sim/pdes.go
			job(i)
			done <- struct{}{}
		}(i)
	}
	return done
}
