package sim

// Test files are exempt: tests spawn goroutines under the race detector
// on purpose (e.g. the concurrent-kernel determinism tests).

func backgroundInTest(fn func()) {
	go fn()
}
