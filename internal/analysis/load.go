package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package loading for the standalone driver and the repo-wide regression
// test. The driver deliberately depends only on the standard library:
// package metadata comes from `go list -json`, syntax from go/parser,
// and types from go/types. Module packages are type-checked exactly once,
// in dependency order, and the results are shared: when package B imports
// module package A, B's type checker is handed the *types.Package we
// already produced for A rather than a fresh source-importer re-load.
// Besides the obvious speedup (the module used to be type-checked twice —
// once directly and once inside the importer's cache), this gives the
// whole load a single types universe, which the interprocedural analyzers
// (callgraph.go) rely on: a *types.Func observed at a call site in B is
// pointer-identical to the one defined in A. Only the standard library
// still goes through the source importer (one shared, caching instance).

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors holds type-checker soft failures; analyzers still run
	// (their type lookups degrade gracefully), but drivers surface them.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// goList runs `go list -json patterns...` in dir and decodes the stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// newTypesInfo allocates the types.Info maps the analyzers consume.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// typecheckFiles parses and type-checks one package's files with imp
// resolving imports. Soft type errors are collected, not fatal.
func typecheckFiles(fset *token.FileSet, pkgPath string, filenames []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	pkg := &Package{PkgPath: pkgPath, Fset: fset, Files: files, TypesInfo: newTypesInfo()}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(canonicalPkgPath(pkgPath), fset, files, pkg.TypesInfo)
	pkg.Types = tpkg
	return pkg, nil
}

// LoadPackages loads the packages matching patterns (relative to dir)
// with full syntax and types. Test files and test-only packages are
// excluded — the determinism analyzers exempt them by design, and the
// non-test compilation covers every file the contract applies to.
//
// Packages are type-checked in dependency order with a shared package
// map, so each module package is checked exactly once and cross-package
// references share one types universe (see the package comment above).
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]listedPackage, len(listed))
	var paths []string
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		byPath[lp.ImportPath] = lp
		paths = append(paths, lp.ImportPath)
	}
	sort.Strings(paths)
	order := topoOrder(paths, byPath)

	fset := token.NewFileSet()
	imp := &moduleImporter{
		shared:   make(map[string]*types.Package, len(order)),
		fallback: importer.ForCompiler(fset, "source", nil),
		dir:      dir,
	}
	var out []*Package
	for _, path := range order {
		lp := byPath[path]
		filenames := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			filenames[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := typecheckFiles(fset, lp.ImportPath, filenames, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		if pkg.Types != nil {
			imp.shared[canonicalPkgPath(lp.ImportPath)] = pkg.Types
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// topoOrder sorts paths so every package follows the packages it imports
// (restricted to the loaded set). Cycles are impossible in valid Go; a
// malformed input degrades to the insertion order of the residue.
func topoOrder(paths []string, byPath map[string]listedPackage) []string {
	order := make([]string, 0, len(paths))
	state := make(map[string]int, len(paths)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		for _, imp := range byPath[path].Imports {
			if _, ok := byPath[imp]; ok {
				visit(imp)
			}
		}
		state[path] = 2
		order = append(order, path)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// moduleImporter resolves imports of already-checked module packages from
// the shared map and everything else (the standard library) through the
// caching source importer.
type moduleImporter struct {
	shared   map[string]*types.Package
	fallback types.Importer
	dir      string
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.shared[path]; ok {
		return p, nil
	}
	if from, ok := mi.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, mi.dir, 0)
	}
	return mi.fallback.Import(path)
}

// RunAnalyzers applies each analyzer to pkg and returns the diagnostics
// in (analyzer, position) order. The interprocedural analyzers see only
// pkg itself; use RunAnalyzersWith to give them whole-program context.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersWith(nil, pkg, analyzers)
}

// RunAnalyzersWith is RunAnalyzers with an explicit Program supplying
// cross-package syntax and facts to the interprocedural analyzers
// (hotprop, shardsafe). A nil prog makes each such analyzer fall back to
// a single-package view of pkg.
func RunAnalyzersWith(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.PkgPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Program:   prog,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// sortDiagnostics orders findings (analyzer, position) — the stable
// reporting order both driver modes use.
func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Pos < diags[j].Pos
	})
}

// FormatDiagnostic renders d as file:line:col: analyzer: message.
func FormatDiagnostic(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}

// JSONDiagnostic is the machine-readable form of one finding, emitted by
// nectar-vet -json as one JSON object per line so CI can annotate PRs.
type JSONDiagnostic struct {
	Pos      string   `json:"pos"` // file:line:col
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"` // hotprop call chain, root first
}

// JSONLine renders d as its one-line JSON form (no trailing newline).
func JSONLine(fset *token.FileSet, d Diagnostic) string {
	jd := JSONDiagnostic{
		Pos:      fset.Position(d.Pos).String(),
		Analyzer: d.Analyzer,
		Message:  d.Message,
		Chain:    d.Chain,
	}
	b, err := json.Marshal(jd)
	if err != nil { // unreachable: JSONDiagnostic has no unmarshalable fields
		panic(err)
	}
	return string(b)
}
