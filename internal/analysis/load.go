package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package loading for the standalone driver and the repo-wide regression
// test. The driver deliberately depends only on the standard library:
// package metadata comes from `go list -json`, syntax from go/parser,
// and types from go/types with the "source" importer (which is
// module-aware and type-checks dependencies — including the standard
// library — from source, caching per importer instance).

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors holds type-checker soft failures; analyzers still run
	// (their type lookups degrade gracefully), but drivers surface them.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// goList runs `go list -json patterns...` in dir and decodes the stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// newTypesInfo allocates the types.Info maps the analyzers consume.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// typecheckFiles parses and type-checks one package's files with imp
// resolving imports. Soft type errors are collected, not fatal.
func typecheckFiles(fset *token.FileSet, pkgPath string, filenames []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	pkg := &Package{PkgPath: pkgPath, Fset: fset, Files: files, TypesInfo: newTypesInfo()}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(canonicalPkgPath(pkgPath), fset, files, pkg.TypesInfo)
	pkg.Types = tpkg
	return pkg, nil
}

// LoadPackages loads the packages matching patterns (relative to dir)
// with full syntax and types. Test files and test-only packages are
// excluded — the determinism analyzers exempt them by design, and the
// non-test compilation covers every file the contract applies to.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			filenames[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := typecheckFiles(fset, lp.ImportPath, filenames, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// RunAnalyzers applies each analyzer to pkg and returns the diagnostics
// in (analyzer, position) order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.PkgPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Pos < diags[j].Pos
	})
	return diags, nil
}

// FormatDiagnostic renders d as file:line:col: analyzer: message.
func FormatDiagnostic(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}
