package analysis

import (
	"go/ast"
)

// The backward dual of dataflow.go's forward framework: facts propagate
// exit-to-entry over the same CFGs. One instantiation per lattice —
// poollife runs a must-settle analysis (intersection-join: a resource is
// settled only if every path to an exit releases or transfers it); the
// framework itself just runs the reverse worklist algorithm to a
// fixpoint.
//
// Facts propagate block-exit to block-exit: solveBackward returns the
// OUT fact of every block (the fact holding just after the block's last
// node), and a client replays transfer across a block's nodes in
// reverse to recover the fact at each statement. branch refines the
// fact a block passes back to its predecessor along the predecessor's
// true/false edge — the backward analogue of forward merge-edge
// refinement: the predecessor's OUT is the join of its successors' IN
// facts, each refined by the condition value that selects that edge.
//
// Exit blocks are the forward-reachable blocks with no successors:
// blocks ending in return, panic, or falling off the function end. A
// forward-reachable block with no path to any exit (a body trapped in
// an infinite loop) is backward-unreached and keeps F's zero value —
// clients should skip blocks solveBackward reports unreached, exactly
// as with the forward solver.

// backflow defines one backward dataflow problem over fact type F. F
// must be treated as immutable by all three functions: transfer and
// branch return fresh values (or the input unchanged), never mutate in
// place — the solver aliases facts freely.
type backflow[F any] struct {
	// exit is the fact at every function exit (return/panic/fall-off).
	exit F
	// join merges facts where control-flow paths split (viewed
	// backward, where they meet). Commutative, associative, monotone.
	join func(F, F) F
	// equal reports whether two facts are indistinguishable; the solver
	// stops re-queuing a block when its OUT fact stops changing.
	equal func(F, F) bool
	// transfer applies the effect of one block node in reverse: given
	// the fact holding after n, it returns the fact holding before n.
	transfer func(n ast.Node, f F) F
	// branch, when non-nil, refines the fact flowing backward into a
	// two-way branch block ending in condition cond: takenTrue reports
	// which edge the fact arrived on.
	branch func(cond ast.Expr, takenTrue bool, f F) F
}

// solveBackward runs the reverse worklist algorithm and returns the OUT
// fact of every block, indexed by Block.Index. Only blocks that are
// forward-reachable from entry AND can reach an exit participate;
// everything else keeps F's zero value with reached false.
func solveBackward[F any](cfg *CFG, fl backflow[F]) (out []F, reached []bool) {
	n := len(cfg.Blocks)
	out = make([]F, n)
	reached = make([]bool, n)

	// Forward reachability restricts the backward pass to live code:
	// dead blocks after a return must not feed facts into their
	// textual predecessors.
	fwd := make([]bool, n)
	fwd[0] = true
	stack := []int{0}
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, succ := range cfg.Blocks[bi].Succs {
			if !fwd[succ.Index] {
				fwd[succ.Index] = true
				stack = append(stack, succ.Index)
			}
		}
	}

	// Predecessor edges, recording which successor slot the edge
	// occupies so branch refinement knows true edge from false edge.
	type predEdge struct {
		block int // predecessor block index
		slot  int // index into the predecessor's Succs
	}
	preds := make([][]predEdge, n)
	for _, blk := range cfg.Blocks {
		if !fwd[blk.Index] {
			continue
		}
		for i, succ := range blk.Succs {
			preds[succ.Index] = append(preds[succ.Index], predEdge{blk.Index, i})
		}
	}

	// Seed: every live block with no successors exits the function.
	var work []int
	inWork := make([]bool, n)
	for _, blk := range cfg.Blocks {
		if fwd[blk.Index] && len(blk.Succs) == 0 {
			out[blk.Index] = fl.exit
			reached[blk.Index] = true
			work = append(work, blk.Index)
			inWork[blk.Index] = true
		}
	}

	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		blk := cfg.Blocks[bi]
		// Replay the block in reverse: OUT through the nodes back to
		// the block's IN fact.
		f := out[bi]
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			f = fl.transfer(blk.Nodes[i], f)
		}
		for _, pe := range preds[bi] {
			pblk := cfg.Blocks[pe.block]
			pf := f
			if pblk.Cond != nil && len(pblk.Succs) == 2 && fl.branch != nil {
				pf = fl.branch(pblk.Cond, pe.slot == 0, f)
			}
			pi := pe.block
			if !reached[pi] {
				out[pi] = pf
				reached[pi] = true
			} else {
				merged := fl.join(out[pi], pf)
				if fl.equal(merged, out[pi]) {
					continue
				}
				out[pi] = merged
			}
			if !inWork[pi] {
				inWork[pi] = true
				work = append(work, pi)
			}
		}
	}
	return out, reached
}
