// Package analysistest runs an analyzer over packages rooted at a
// testdata/src tree and checks its diagnostics against // want
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only.
//
// Layout: testdata/src/<import/path>/*.go defines package <import/path>.
// Imports between testdata packages resolve inside the tree first; any
// other import (the standard library, real nectar/internal/... packages)
// falls back to the module-aware source importer, so fixtures can
// exercise analyzers against the real internal/obs and internal/sim
// types.
//
// Expectations are comments anchored to the line the diagnostic lands
// on:
//
//	time.Now() // want `wall-clock time\.Now`
//
// Each expectation is a Go string literal (quoted or backquoted) holding
// a regexp; several literals on one line expect several diagnostics.
// Because a //-comment swallows the rest of its line, fixtures that
// expect a diagnostic *on a directive comment itself* put the
// expectation in a block comment before it:
//
//	/* want `requires a reason` */ //nectar:allow-walltime
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"nectar/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// TB is the testing surface Run needs. It is satisfied by *testing.T;
// the harness's own tests substitute a recorder to assert which
// mismatches Run reports.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Loaders are shared across every Run call in the process, keyed by
// testdata root: the standard library and any real module packages a
// fixture imports (internal/sim, internal/obs) are parsed and
// type-checked once for the whole test suite instead of once per
// analyzer test. Fixture packages are immutable for the life of a test
// binary, so the cache needs no invalidation.
var (
	loadersMu sync.Mutex
	loaders   = make(map[string]*loader)
)

func sharedLoader(root string) *loader {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	ld, ok := loaders[root]
	if !ok {
		ld = &loader{
			fset:  token.NewFileSet(),
			root:  root,
			cache: make(map[string]*loaded),
		}
		ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
		loaders[root] = ld
	}
	return ld
}

// Run loads each package dir testdata/src/<path>, applies a to it, and
// reports mismatches between diagnostics and // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdata, a, pkgPaths...)
}

// run is Run behind the TB seam (so the harness can test itself).
func run(t TB, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := sharedLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		runOne(t, ld, a, path)
	}
}

func runOne(t TB, ld *loader, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	lp, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	for _, terr := range lp.typeErrors {
		t.Errorf("%s: typecheck: %v", pkgPath, terr)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     lp.files,
		PkgPath:   pkgPath,
		Pkg:       lp.pkg,
		TypesInfo: lp.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %s: %v", pkgPath, a.Name, err)
	}

	expects := collectExpectations(t, ld.fset, lp.files)
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		key := lineKey{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for _, e := range expects[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", a.Name, pos, d.Message)
		}
	}
	keys := make([]lineKey, 0, len(expects))
	for k := range expects {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, e := range expects[k] {
			if !e.matched {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", a.Name, k.file, k.line, e.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// wantLiteral matches one Go string literal (interpreted or raw).
var wantLiteral = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectExpectations scans every comment for the `want` marker.
func collectExpectations(t TB, fset *token.FileSet, files []*ast.File) map[lineKey][]*expectation {
	t.Helper()
	out := make(map[lineKey][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if strings.HasPrefix(c.Text, "/*") {
					text = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/"))
				}
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{filepath.Base(pos.Filename), pos.Line}
				lits := wantLiteral.FindAllString(rest, -1)
				if len(lits) == 0 {
					t.Fatalf("%s: malformed want comment (no string literals): %s", pos, c.Text)
				}
				for _, lit := range lits {
					var pat string
					if lit[0] == '`' {
						pat = lit[1 : len(lit)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					out[key] = append(out[key], &expectation{re: re})
				}
			}
		}
	}
	return out
}

// --- testdata package loading ---

type loaded struct {
	files      []*ast.File
	pkg        *types.Package
	info       *types.Info
	typeErrors []error
}

type loader struct {
	fset     *token.FileSet
	root     string // testdata/src
	cache    map[string]*loaded
	fallback types.Importer
}

// load parses and type-checks testdata package path (dir root/<path>).
func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.cache[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	lp := &loaded{
		files: files,
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		},
	}
	conf := types.Config{
		Importer: (*testdataImporter)(ld),
		Error:    func(err error) { lp.typeErrors = append(lp.typeErrors, err) },
	}
	lp.pkg, _ = conf.Check(path, ld.fset, files, lp.info)
	ld.cache[path] = lp
	return lp, nil
}

// testdataImporter resolves imports inside testdata/src first, then
// falls back to the module-aware source importer.
type testdataImporter loader

func (ti *testdataImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(ti)
	if hasGoFiles(filepath.Join(ld.root, filepath.FromSlash(path))) {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	if from, ok := ld.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, ld.root, 0)
	}
	return ld.fallback.Import(path)
}

// hasGoFiles reports whether dir exists and directly contains a .go
// file. Intermediate fixture directories (e.g. testdata/src/nectar/
// internal/sim holding only subpackages) must not shadow the real
// module package of the same import path.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
