// Package malformed holds a want comment with no string literal; the
// harness must Fatalf rather than silently ignore it.
package malformed

func mark() {}

func oops() {
	mark() // want no literal here
}
