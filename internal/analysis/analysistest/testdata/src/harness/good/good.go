// Package good is a harness self-test fixture where every diagnostic
// is expected: it exercises regexp want patterns, quoted-literal wants,
// and two diagnostics (with two want literals) landing on one line.
package good

func mark() {}

func twice() {}

func one() {
	mark() // want `mark call #\d+`
}

func two() {
	mark() // want `mark call #2`
	mark() // want `mark call #3`
}

func pair() {
	twice() // want `twice: first report` `twice: second report`
}

func quoted() {
	mark() // want "mark call #4"
}
