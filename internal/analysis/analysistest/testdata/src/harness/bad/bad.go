// Package bad is a harness self-test fixture that deliberately
// mismatches: one want that no diagnostic satisfies, and one diagnostic
// with no want. The harness's own tests assert that run reports both.
package bad

func mark() {}

func phantom() {
	// want `diagnostic that never fires`
	_ = 0
}

func surprise() {
	mark() // no want comment: the harness must flag this diagnostic
}
