package analysistest

// The harness tests itself through the TB seam: run() is driven with a
// recording TB and a stub analyzer, and the tests assert exactly which
// mismatches it reports. The good fixture proves the capabilities the
// real analyzer tests lean on — regexp want patterns, quoted literals,
// and several want literals on one line matching several diagnostics —
// and the bad fixture proves that both failure directions (want with no
// diagnostic, diagnostic with no want) surface as errors.

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"nectar/internal/analysis"
)

// recordingTB captures Errorf/Fatalf output instead of failing the real
// test. Fatalf panics with a sentinel so run() unwinds the way it would
// under *testing.T.
type recordingTB struct {
	errors []string
	fatal  string
}

type tbFatal struct{}

func (r *recordingTB) Helper() {}

func (r *recordingTB) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

func (r *recordingTB) Fatalf(format string, args ...any) {
	r.fatal = fmt.Sprintf(format, args...)
	panic(tbFatal{})
}

// runRecorded drives run() with a recording TB, swallowing the Fatalf
// sentinel panic.
func runRecorded(t *testing.T, a *analysis.Analyzer, pkgs ...string) *recordingTB {
	t.Helper()
	rec := &recordingTB{}
	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(tbFatal); !ok {
					panic(p)
				}
			}
		}()
		run(rec, TestData(), a, pkgs...)
	}()
	return rec
}

// markAnalyzer reports "mark call #N" at every call to a function named
// mark (N counts across the package in file order), and two diagnostics
// at every call to a function named twice — the shape the multi-want
// fixture line needs.
func markAnalyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "marktest",
		Doc:  "harness self-test stub: flags calls to mark and twice",
		Run: func(pass *analysis.Pass) (any, error) {
			n := 0
			for _, f := range pass.Files {
				ast.Inspect(f, func(node ast.Node) bool {
					call, ok := node.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, ok := call.Fun.(*ast.Ident)
					if !ok {
						return true
					}
					switch id.Name {
					case "mark":
						n++
						pass.Reportf(call.Pos(), "mark call #%d", n)
					case "twice":
						pass.Reportf(call.Pos(), "twice: first report")
						pass.Reportf(call.Pos(), "twice: second report")
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

// TestHarnessCleanFixture: a fixture whose wants all match (including a
// regexp pattern, a quoted literal, and a two-wants line) produces no
// errors.
func TestHarnessCleanFixture(t *testing.T) {
	rec := runRecorded(t, markAnalyzer(), "harness/good")
	if rec.fatal != "" {
		t.Fatalf("unexpected Fatalf: %s", rec.fatal)
	}
	for _, e := range rec.errors {
		t.Errorf("unexpected harness error: %s", e)
	}
}

// TestHarnessMismatches: the bad fixture must yield exactly one
// unmatched-want error and one unexpected-diagnostic error.
func TestHarnessMismatches(t *testing.T) {
	rec := runRecorded(t, markAnalyzer(), "harness/bad")
	if rec.fatal != "" {
		t.Fatalf("unexpected Fatalf: %s", rec.fatal)
	}
	var missing, unexpected int
	for _, e := range rec.errors {
		switch {
		case strings.Contains(e, "expected diagnostic matching"):
			missing++
			if !strings.Contains(e, "diagnostic that never fires") {
				t.Errorf("unmatched-want error lost the pattern: %s", e)
			}
		case strings.Contains(e, "unexpected diagnostic"):
			unexpected++
			if !strings.Contains(e, "mark call #1") {
				t.Errorf("unexpected-diagnostic error lost the message: %s", e)
			}
		default:
			t.Errorf("unrecognized harness error: %s", e)
		}
	}
	if missing != 1 || unexpected != 1 {
		t.Errorf("got %d unmatched-want and %d unexpected-diagnostic errors, want 1 and 1\nerrors: %q",
			missing, unexpected, rec.errors)
	}
}

// TestHarnessMalformedWant: a want comment with no string literal is a
// hard failure, not a silent skip.
func TestHarnessMalformedWant(t *testing.T) {
	rec := runRecorded(t, markAnalyzer(), "harness/malformed")
	if !strings.Contains(rec.fatal, "malformed want comment") {
		t.Errorf("Fatalf = %q, want a malformed-want report", rec.fatal)
	}
}
