package analysis_test

import (
	"encoding/json"
	"go/token"
	"testing"

	"nectar/internal/analysis"
)

// TestJSONLine pins the wire shape of -json output: one object per
// line with pos/analyzer/message, chain present only when a call chain
// was attached (hotprop), and positions rendered file:line:col.
func TestJSONLine(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("k.go", -1, 100)
	f.SetLines([]int{0, 10, 20})
	pos := f.Pos(22) // line 3, col 3

	d := analysis.Diagnostic{
		Pos:      pos,
		Analyzer: "hotprop",
		Message:  "helper allocates",
		Chain:    []string{"pkg.Root", "pkg.helper"},
	}
	line := analysis.JSONLine(fset, d)
	var got analysis.JSONDiagnostic
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("JSONLine emitted invalid JSON %q: %v", line, err)
	}
	if got.Pos != "k.go:3:3" {
		t.Errorf("Pos = %q, want %q", got.Pos, "k.go:3:3")
	}
	if got.Analyzer != "hotprop" || got.Message != "helper allocates" {
		t.Errorf("analyzer/message = %q/%q", got.Analyzer, got.Message)
	}
	if len(got.Chain) != 2 || got.Chain[0] != "pkg.Root" || got.Chain[1] != "pkg.helper" {
		t.Errorf("Chain = %q, want the root-first call path", got.Chain)
	}

	// Without a chain the field is omitted entirely, keeping lines
	// minimal for the common analyzers.
	d.Chain = nil
	line = analysis.JSONLine(fset, d)
	var raw map[string]any
	if err := json.Unmarshal([]byte(line), &raw); err != nil {
		t.Fatalf("JSONLine emitted invalid JSON %q: %v", line, err)
	}
	if _, ok := raw["chain"]; ok {
		t.Errorf("chain key present on chainless diagnostic: %s", line)
	}
	if len(raw) != 3 {
		t.Errorf("chainless line has %d keys, want 3 (pos, analyzer, message): %s", len(raw), line)
	}
}
