package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Costmodel proves latency-model soundness: every path from protocol or
// datalink code to a hardware transmit — a fiber Link.Send/SendAt or a
// VME Bus.PIO/PIOBytes/DMA — must charge at least one latency from the
// paper's explicit cost model (a selector on model.CostModel: a field
// like cost.DatalinkProcess or a derived method like cost.FiberTime)
// somewhere before the transmit. A send path that charges nothing
// teleports bytes at virtual-time zero cost, which silently flattens the
// latency breakdown of Figures 6–8 and — worse — breaks the sharded
// scheduler, whose conservative lookahead is exactly the minimum model
// cost between a shard's inputs and its outbound links (see
// EXPERIMENTS.md): a zero-cost hop makes the real graph faster than the
// lookahead promise, and the windows stop being safe.
//
// The analysis runs on the whole-program call graph (callgraph.go). A
// function is *charged* when its top-level declaration (or any closure
// it contains) selects into model.CostModel. A function is in the
// *uncharged region* when it is not charged, not waived, and either
// touches a transmit sink directly or calls another member of the
// region; diagnostics flag only the region's entry points — the
// outermost uncharged functions — with the uncharged chain down to the
// sink, so one missing charge reports once, not once per caller.
//
// Pure forwarding steps whose latency is genuinely accounted elsewhere
// (the CAB's Transmit, whose DMA and wire time are charged by the
// datalink layer around it) carry //nectar:free-hop <reason>; the reason
// must say where the latency lives, and the waiver inventory
// (nectar-vet -waivers) lists every use.
var Costmodel = &Analyzer{
	Name: "costmodel",
	Doc: "every call path from protocol/datalink code to a fiber or VME transmit must charge at least one " +
		"model.CostModel latency before the transmit; uncharged paths are reported at the outermost uncharged " +
		"function with the offending chain. //nectar:free-hop <reason> waives audited pure forwarding steps. " +
		"Also validates //nectar:free-hop placement.",
	Run: runCostmodel,
}

// costSinks are the hardware transmit surfaces, by stable function ID.
var costSinks = map[string]string{
	"(*nectar/internal/hw/fiber.Link).Send":   "fiber transmit Link.Send",
	"(*nectar/internal/hw/fiber.Link).SendAt": "fiber transmit Link.SendAt",
	"(*nectar/internal/hw/vme.Bus).PIO":       "VME transfer Bus.PIO",
	"(*nectar/internal/hw/vme.Bus).PIOBytes":  "VME transfer Bus.PIOBytes",
	"(*nectar/internal/hw/vme.Bus).DMA":       "VME transfer Bus.DMA",
}

// costModelPkg/costModelType name the cost-model type whose selectors
// count as charging.
const (
	costModelPkg  = "nectar/internal/model"
	costModelType = "CostModel"
)

func runCostmodel(pass *Pass) (any, error) {
	// Placement: //nectar:free-hop must be a function declaration's doc
	// comment (a waiver on a random line would silently cover nothing).
	for _, f := range pass.Files {
		onDecl := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if d, ok := parseDirective(pass.Fset, c); ok && d.verb == DirFreeHop {
						onDecl[fd.Doc] = true
					}
				}
			}
		}
		for _, cg := range f.Comments {
			if onDecl[cg] {
				continue
			}
			for _, c := range cg.List {
				if d, ok := parseDirective(pass.Fset, c); ok && d.verb == DirFreeHop {
					pass.Reportf(d.pos, "//nectar:free-hop must be part of a function declaration's doc comment")
				}
			}
		}
	}

	prog := programFor(pass)
	prog.ensureCost()
	for _, d := range prog.costDiags[canonicalPkgPath(pass.PkgPath)] {
		pass.Report(d)
	}
	return nil, nil
}

// sinkTouch is one direct reference to a transmit sink inside a body: a
// call, or a sink method value escaping into deferred invocation.
type sinkTouch struct {
	pos   token.Pos
	label string
}

// ensureCost runs the uncharged-region analysis once and caches the
// per-package diagnostics.
func (prog *Program) ensureCost() {
	if prog.costDone {
		return
	}
	prog.costDone = true
	prog.ensureGraph()
	prog.costDiags = make(map[string][]Diagnostic)

	touches := make(map[*FuncNode][]sinkTouch)
	chargedNode := make(map[*FuncNode]bool)
	eligible := make(map[*FuncNode]bool)
	for _, n := range prog.nodes {
		if !IsDeterministicPkg(canonicalPkgPath(n.Pkg.PkgPath)) {
			continue
		}
		if _, isSink := costSinks[n.ID]; isSink {
			continue // the transmit itself is the boundary, not a caller
		}
		if strings.HasSuffix(n.Pkg.Fset.Position(n.nodePos()).Filename, "_test.go") {
			continue
		}
		eligible[n] = true
		touches[n] = sinkTouches(n)
		chargedNode[n] = chargesCostModel(n)
	}

	// A declaration and its closures charge as one unit: deferring the
	// transmit into a k.At callback must not hide the charge the
	// enclosing function paid.
	chargedRoot := make(map[*FuncNode]bool)
	for n, c := range chargedNode {
		if c {
			chargedRoot[n.Root] = true
		}
	}
	charged := func(n *FuncNode) bool { return chargedRoot[n.Root] }
	waived := func(n *FuncNode) bool { return n.FreeHop || n.Root.FreeHop }

	// Uncharged-region fixpoint: membership propagates from sink-touching
	// functions backwards through call edges until stable.
	reach := make(map[*FuncNode]bool)
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if reach[n] || !eligible[n] || charged(n) || waived(n) {
				continue
			}
			in := len(touches[n]) > 0
			for _, e := range n.Edges {
				if reach[e.Callee] {
					in = true
					break
				}
			}
			if in {
				reach[n] = true
				changed = true
			}
		}
	}

	// Entry points: region members no other member calls into.
	hasRegionCaller := make(map[*FuncNode]bool)
	for n := range reach {
		for _, e := range n.Edges {
			if reach[e.Callee] {
				hasRegionCaller[e.Callee] = true
			}
		}
	}
	var roots []*FuncNode
	for n := range reach {
		if !hasRegionCaller[n] {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 && len(reach) > 0 {
		// A purely cyclic region (mutual recursion into a transmit) has
		// no caller-free member; flag its ID-smallest one.
		for _, n := range prog.nodes {
			if reach[n] {
				roots = append(roots, n)
				break
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })

	for _, n := range roots {
		chain, label := costChain(n, reach, touches)
		path := canonicalPkgPath(n.Pkg.PkgPath)
		prog.costDiags[path] = append(prog.costDiags[path], Diagnostic{
			Pos: n.nodePos(),
			Message: fmt.Sprintf("%s reaches %s (%s) without charging any model.CostModel latency on the way; "+
				"this path moves bytes at zero virtual cost, which breaks the latency figures and the sharded "+
				"lookahead bound — charge a cost-model latency before the transmit, or annotate the pure "+
				"forwarding step //nectar:free-hop <reason saying where the latency is accounted>",
				n.DisplayName(), label, strings.Join(chain, " -> ")),
			Chain: chain,
		})
	}
}

// costChain reconstructs the uncharged chain from n down to a sink touch,
// returning the display chain and the sink's label.
func costChain(n *FuncNode, reach map[*FuncNode]bool, touches map[*FuncNode][]sinkTouch) ([]string, string) {
	var chain []string
	seen := make(map[*FuncNode]bool)
	for cur := n; cur != nil && !seen[cur]; {
		seen[cur] = true
		chain = append(chain, cur.DisplayName())
		if ts := touches[cur]; len(ts) > 0 {
			return chain, ts[0].label
		}
		var next *FuncNode
		for _, e := range cur.Edges {
			if reach[e.Callee] && !seen[e.Callee] {
				next = e.Callee
				break
			}
		}
		if next == nil {
			// Only touches remain on cycle-closing callees; pick any.
			for _, e := range cur.Edges {
				if ts := touches[e.Callee]; reach[e.Callee] && len(ts) > 0 {
					chain = append(chain, e.Callee.DisplayName())
					return chain, ts[0].label
				}
			}
			break
		}
		cur = next
	}
	return chain, "a transmit sink"
}

// sinkTouches scans n's own body (children literals excluded — they are
// their own nodes) for direct references to transmit sinks: calls, and
// method values escaping as arguments or into variables/fields. Sinks
// are resolved by type information, not graph membership, so the check
// holds under single-package drivers where fiber/vme declarations are
// not loaded.
func sinkTouches(n *FuncNode) []sinkTouch {
	body := n.Body()
	if body == nil {
		return nil
	}
	info := n.Pkg.TypesInfo
	var out []sinkTouch
	note := func(pos token.Pos, obj *types.Func) {
		if obj == nil {
			return
		}
		if label, ok := costSinks[funcID(obj)]; ok {
			out = append(out, sinkTouch{pos: pos, label: label})
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if x != n.Lit {
				return false
			}
		case *ast.CallExpr:
			if sel, ok := unparenIndex(x.Fun).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					if obj, ok := s.Obj().(*types.Func); ok {
						note(x.Pos(), obj)
					}
				}
			}
			for _, arg := range x.Args {
				note(arg.Pos(), funcValueOf(info, arg))
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				note(r.Pos(), funcValueOf(info, r))
			}
		}
		return true
	})
	return out
}

// chargesCostModel reports whether n's own body selects into
// model.CostModel — a latency field read (cost.HubSetup) or a derived
// cost method call (cost.FiberTime(n)).
func chargesCostModel(n *FuncNode) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	info := n.Pkg.TypesInfo
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			if x != n.Lit {
				return false
			}
		case *ast.SelectorExpr:
			tv, ok := info.Types[x.X]
			if !ok || tv.Type == nil {
				return true
			}
			t := tv.Type
			if p, okp := t.(*types.Pointer); okp {
				t = p.Elem()
			}
			if named, okn := t.(*types.Named); okn {
				if obj := named.Obj(); obj.Name() == costModelType && obj.Pkg() != nil && obj.Pkg().Path() == costModelPkg {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
