package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"nectar/internal/analysis"
)

// TestRepoLintClean runs the full nectar-vet suite over every package in
// the module and fails on any undirected diagnostic. This makes a
// determinism violation break `go test ./...` locally — not just the CI
// lint job — the moment it is written.
//
// The module is loaded and type-checked exactly once (LoadPackages
// shares one types universe across packages and analyzers), and the
// interprocedural analyzers get the same whole-program view the
// standalone nectar-vet binary builds.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	pkgs, err := analysis.LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	prog := analysis.NewProgram(pkgs)
	var total int
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("typecheck %s: %v", pkg.PkgPath, terr)
		}
		diags, err := analysis.RunAnalyzersWith(prog, pkg, analysis.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", analysis.FormatDiagnostic(pkg.Fset, d))
			total++
		}
	}
	if total > 0 {
		t.Errorf("nectar-vet: %d diagnostic(s); fix them or annotate with a //nectar: directive (with a reason)", total)
	}
	t.Logf("nectar-vet clean over %d packages", len(pkgs))
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
