package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a function and returns it.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// succIndexes returns the successor indexes of block i.
func succIndexes(cfg *CFG, i int) []int {
	var out []int
	for _, s := range cfg.Blocks[i].Succs {
		out = append(out, s.Index)
	}
	return out
}

func TestCFGStraightLine(t *testing.T) {
	cfg := buildCFG(parseBody(t, "x := 1\ny := 2\n_ = x + y"))
	if len(cfg.Blocks) != 1 {
		t.Fatalf("straight-line body: got %d blocks, want 1", len(cfg.Blocks))
	}
	if n := len(cfg.Blocks[0].Nodes); n != 3 {
		t.Fatalf("entry block nodes = %d, want 3", n)
	}
	if len(cfg.Blocks[0].Succs) != 0 {
		t.Fatalf("entry block has successors %v, want none", succIndexes(cfg, 0))
	}
}

func TestCFGIfElse(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
if c {
	a()
} else {
	b()
}
d()`))
	entry := cfg.Blocks[0]
	if entry.Cond == nil {
		t.Fatalf("entry block lacks the if condition")
	}
	if len(entry.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2 (then, else)", len(entry.Succs))
	}
	thenB, elseB := entry.Succs[0], entry.Succs[1]
	if len(thenB.Succs) != 1 || len(elseB.Succs) != 1 || thenB.Succs[0] != elseB.Succs[0] {
		t.Fatalf("then/else must join in one block; then->%v else->%v",
			succIndexes(cfg, thenB.Index), succIndexes(cfg, elseB.Index))
	}
}

func TestCFGIfNoElseFalseEdge(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
if c {
	a()
}
d()`))
	entry := cfg.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2 (then, join)", len(entry.Succs))
	}
	// Succs[0] is the true edge, Succs[1] the false edge (the join).
	thenB, join := entry.Succs[0], entry.Succs[1]
	if len(thenB.Succs) != 1 || thenB.Succs[0] != join {
		t.Fatalf("then block must fall through to the join")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
if c {
	return
}
d()`))
	entry := cfg.Blocks[0]
	thenB := entry.Succs[0]
	if len(thenB.Succs) != 0 {
		t.Fatalf("return block has successors %v, want none", succIndexes(cfg, thenB.Index))
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
if c {
	panic("boom")
}
d()`))
	entry := cfg.Blocks[0]
	thenB := entry.Succs[0]
	if len(thenB.Succs) != 0 {
		t.Fatalf("panic block has successors %v, want none", succIndexes(cfg, thenB.Index))
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
for i := 0; i < n; i++ {
	body()
}
after()`))
	// Find the head: the block carrying the loop condition.
	var head *Block
	for _, blk := range cfg.Blocks {
		if blk.Cond != nil {
			head = blk
		}
	}
	if head == nil {
		t.Fatalf("no block carries the loop condition")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("loop head has %d successors, want 2 (body, exit)", len(head.Succs))
	}
	// The body must cycle back to the head through the post block.
	seen := map[*Block]bool{}
	var reaches func(from, to *Block) bool
	reaches = func(from, to *Block) bool {
		if from == to {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		for _, s := range from.Succs {
			if reaches(s, to) {
				return true
			}
		}
		return false
	}
	if !reaches(head.Succs[0], head) {
		t.Fatalf("loop body does not reach the head (no back edge)")
	}
}

func TestCFGSwitchFanOut(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
switch x {
case 1:
	a()
case 2:
	b()
}
d()`))
	entry := cfg.Blocks[0]
	// Two cases plus the implicit no-default edge to the join.
	if len(entry.Succs) != 3 {
		t.Fatalf("switch head has %d successors, want 3 (case, case, join)", len(entry.Succs))
	}
	if entry.Cond != nil {
		t.Fatalf("switch head must not carry a refining condition")
	}
}

func TestCFGSwitchWithDefault(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
switch x {
case 1:
	a()
default:
	b()
}
d()`))
	entry := cfg.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("switch-with-default head has %d successors, want 2", len(entry.Succs))
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
outer:
for {
	for {
		break outer
	}
}
after()`))
	// The inner break must reach the statement after the outer loop: the
	// block holding after() must be reachable from entry.
	var afterBlk *Block
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
						afterBlk = blk
					}
				}
			}
		}
	}
	if afterBlk == nil {
		t.Fatalf("after() not found in any block")
	}
	seen := map[*Block]bool{}
	var reaches func(from *Block) bool
	reaches = func(from *Block) bool {
		if from == afterBlk {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		for _, s := range from.Succs {
			if reaches(s) {
				return true
			}
		}
		return false
	}
	if !reaches(cfg.Blocks[0]) {
		t.Fatalf("break outer does not make after() reachable")
	}
}

func TestCFGGoto(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
	goto done
done:
	after()`))
	// after() must be reachable from entry through the goto edge.
	reachable := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if reachable[b.Index] {
			return
		}
		reachable[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(cfg.Blocks[0])
	found := false
	for _, blk := range cfg.Blocks {
		if !reachable[blk.Index] {
			continue
		}
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Fatalf("goto target is not reachable")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	cfg := buildCFG(parseBody(t, `
for _, v := range xs {
	use(v)
}
after()`))
	// The range head has two successors (body, exit) and no condition.
	var head *Block
	for _, blk := range cfg.Blocks {
		if len(blk.Succs) == 2 && blk.Cond == nil {
			head = blk
			break
		}
	}
	if head == nil {
		t.Fatalf("no two-way condition-less head found for range")
	}
}

func TestCFGEmptyBody(t *testing.T) {
	cfg := buildCFG(parseBody(t, ""))
	if len(cfg.Blocks) == 0 {
		t.Fatalf("empty body must still produce an entry block")
	}
}
