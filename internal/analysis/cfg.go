package analysis

import (
	"go/ast"
)

// Per-function control-flow graphs over go/ast, for the forward dataflow
// analyses (dataflow.go) that obsgate builds on. The builder lowers one
// function body into basic blocks; expressions are not decomposed — each
// block carries the statements (and loop/branch conditions) it executes,
// in order, and the dataflow layer walks inside them as needed.
//
// The shape is deliberately minimal: just enough structure to answer
// "which guard conditions dominate this statement?" precisely for the
// control flow the repo actually writes (if/else chains with && and !,
// early returns, loops) while degrading conservatively — never
// unsoundly — for the rest (switch, select, goto simply join their
// facts).

// Block is one basic block.
type Block struct {
	// Index is the block's position in CFG.Blocks; Blocks[0] is entry.
	Index int
	// Nodes are the statements and expressions executed by the block, in
	// order. The condition of a two-way branch appears as the last node.
	Nodes []ast.Node
	// Cond, when non-nil, is the boolean condition of a two-way branch
	// terminating the block: Succs[0] is the true edge, Succs[1] the
	// false edge. It is set for if statements and for loops with a
	// condition; multi-way branches (switch, select) and condition-less
	// loops leave it nil, so dataflow refines no facts along their edges.
	Cond  ast.Expr
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is the entry block
}

// cfgBuilder carries the under-construction graph plus the break/
// continue/goto resolution state.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block statements are currently appended to; nil when
	// the current point is unreachable (after return/panic/branch).
	cur *Block
	// breaks/continues are stacks of enclosing targets, innermost last;
	// entries with a label are findable by labeled break/continue.
	breaks    []branchTarget
	continues []branchTarget
	// gotos maps a label name to the block a goto jumps to. Forward
	// gotos create the block early; the LabeledStmt lowering enters it.
	gotos map[string]*Block
}

type branchTarget struct {
	label string
	block *Block
}

// buildCFG lowers body into basic blocks. It never returns nil: an empty
// body yields a single empty entry block.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, gotos: make(map[string]*Block)}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump links the current block to dst and ends it; a nil cur (already
// unreachable) is a no-op.
func (b *cfgBuilder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// append records a node in the current block, reviving an unreachable
// point into a fresh (predecessor-less) block so later statements are
// still analyzed — with no incoming facts, exactly like dead code after
// a return.
func (b *cfgBuilder) append(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// terminatesPanic reports whether s is a call to the builtin panic — the
// only expression statement that ends a block.
func terminatesPanic(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// stmt lowers one statement. label is the name of the enclosing
// LabeledStmt when s is its direct child ("" otherwise); loops and
// switches register it for labeled break/continue.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.multiway(s, label)

	case *ast.LabeledStmt:
		name := s.Label.Name
		target, ok := b.gotos[name]
		if !ok {
			target = b.newBlock()
			b.gotos[name] = target
		}
		b.jump(target)
		b.cur = target
		b.stmt(s.Stmt, name)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.append(s)
		b.cur = nil

	case *ast.ExprStmt:
		b.append(s)
		if terminatesPanic(s) {
			b.cur = nil
		}

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, DeferStmt,
		// EmptyStmt — straight-line.
		b.append(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.append(s.Init)
	}
	b.append(s.Cond)
	head := b.cur
	head.Cond = s.Cond
	b.cur = nil

	thenB := b.newBlock()
	head.Succs = append(head.Succs, thenB)
	b.cur = thenB
	b.stmt(s.Body, "")
	afterThen := b.cur
	b.cur = nil

	var afterElse *Block
	if s.Else != nil {
		elseB := b.newBlock()
		head.Succs = append(head.Succs, elseB)
		b.cur = elseB
		b.stmt(s.Else, "")
		afterElse = b.cur
		b.cur = nil
	}

	join := b.newBlock()
	if s.Else == nil {
		head.Succs = append(head.Succs, join) // false edge
	} else if afterElse != nil {
		afterElse.Succs = append(afterElse.Succs, join)
	}
	if afterThen != nil {
		afterThen.Succs = append(afterThen.Succs, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.append(s.Init)
	}
	head := b.newBlock()
	b.jump(head)
	join := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		post.Succs = append(post.Succs, head)
	}
	body := b.newBlock()
	head.Succs = append(head.Succs, body)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
		head.Succs = append(head.Succs, join) // false edge
	}
	b.pushLoop(label, join, post)
	b.cur = body
	b.stmt(s.Body, "")
	b.jump(post)
	b.popLoop(label)
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.append(s.X)
	head := b.newBlock()
	b.jump(head)
	// The per-iteration key/value assignment executes in the head so its
	// kills apply on every pass. The whole RangeStmt node stands in for
	// it; dataflow transfer functions treat it as an assignment.
	if s.Key != nil || s.Value != nil {
		head.Nodes = append(head.Nodes, s)
	}
	join := b.newBlock()
	body := b.newBlock()
	head.Succs = append(head.Succs, body, join) // no Cond: no refinement
	b.pushLoop(label, join, head)
	b.cur = body
	b.stmt(s.Body, "")
	b.jump(head)
	b.popLoop(label)
	b.cur = join
}

// multiway lowers switch/type-switch/select: one head block fanning out
// to every clause, all clauses joining after. No per-clause condition
// refinement (Cond stays nil) — conservative for the guard analysis.
func (b *cfgBuilder) multiway(s ast.Stmt, label string) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		if s.Tag != nil {
			b.append(s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		b.append(s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	b.cur = nil
	join := b.newBlock()

	b.breaks = append(b.breaks, branchTarget{"", join})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label, join})
	}
	hasDefault := false
	var prevFall *Block // fallthrough source awaiting the next clause body
	for _, c := range clauses {
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		if prevFall != nil {
			prevFall.Succs = append(prevFall.Succs, blk)
			prevFall = nil
		}
		var bodyList []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			bodyList = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				blk.Nodes = append(blk.Nodes, c.Comm)
			}
			bodyList = c.Body
		}
		b.cur = blk
		fellThrough := false
		for _, st := range bodyList {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fellThrough = true
				break
			}
			b.stmt(st, "")
		}
		if fellThrough {
			prevFall = b.cur
			b.cur = nil
		} else {
			b.jump(join)
		}
	}
	if prevFall != nil { // fallthrough from the last clause: malformed, stay safe
		prevFall.Succs = append(prevFall.Succs, join)
	}
	if !hasDefault {
		head.Succs = append(head.Succs, join)
	}
	if label != "" {
		b.breaks = b.breaks[:len(b.breaks)-1]
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{"", brk})
	b.continues = append(b.continues, branchTarget{"", cont})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label, brk})
		b.continues = append(b.continues, branchTarget{label, cont})
	}
}

func (b *cfgBuilder) popLoop(label string) {
	n := 1
	if label != "" {
		n = 2
	}
	b.breaks = b.breaks[:len(b.breaks)-n]
	b.continues = b.continues[:len(b.continues)-n]
}

// branch resolves break/continue/goto.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		if t := b.target(b.breaks, s.Label); t != nil {
			b.jump(t)
			return
		}
		b.cur = nil
	case "continue":
		if t := b.target(b.continues, s.Label); t != nil {
			b.jump(t)
			return
		}
		b.cur = nil
	case "goto":
		if s.Label != nil {
			target, ok := b.gotos[s.Label.Name]
			if !ok {
				target = b.newBlock()
				b.gotos[s.Label.Name] = target
			}
			b.jump(target)
			return
		}
		b.cur = nil
	default: // fallthrough is handled by multiway; reaching here is malformed
		b.cur = nil
	}
}

// target finds the innermost matching break/continue target: the last
// entry with the requested label, or the last anonymous entry for an
// unlabeled branch.
func (b *cfgBuilder) target(stack []branchTarget, label *ast.Ident) *Block {
	want := ""
	if label != nil {
		want = label.Name
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == want {
			return stack[i].block
		}
	}
	return nil
}
