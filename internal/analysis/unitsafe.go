package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Unitsafe enforces virtual-time unit hygiene in the deterministic
// packages. The simulator's clock is sim.Time/sim.Duration (virtual
// nanoseconds); the standard library's is time.Duration (wall
// nanoseconds). The two are structurally identical int64s, so the type
// checker happily lets a stray conversion smuggle wall time into the
// event queue or publish a virtual timestamp as if it were a wall-clock
// reading — and a raw literal like `k.After(1500, ...)` compiles whether
// the author meant nanoseconds or microseconds. Unitsafe reports:
//
//   - conversions between time.Duration and sim.Time/sim.Duration in
//     either direction: wall and virtual time never mix inside the
//     kernel;
//   - raw numeric literals adopted as sim.Time/sim.Duration: durations
//     must be built from the unit constructors (sim.Micros, sim.Millis)
//     or named constants. Zero is exempt (it is the zero value, not a
//     quantity), as are literals scaling a unit-bearing value (d * 3,
//     w / 2) and const declarations (that is where named constants come
//     from);
//   - numeric casts that drop the unit type (int64(t), float64(d), ...):
//     use the sim accessors (Time.Micros, Duration.Nanos) or keep the
//     sim type.
//
// Package sim itself is exempt: it is the conversion layer, and its
// helpers are exactly where these casts are supposed to live. Test files
// are exempt as everywhere else in the suite.
var Unitsafe = &Analyzer{
	Name: "unitsafe",
	Doc: "virtual-time unit hygiene in deterministic packages: no time.Duration<->sim unit conversions, no raw " +
		"numeric literals where sim.Duration/sim.Time is expected (use sim.Micros or named constants), and no " +
		"unit-dropping numeric casts outside the sim conversion helpers.",
	Run: runUnitsafe,
}

// simPkgPath is the unit-defining package, exempt from unitsafe.
const simPkgPath = "nectar/internal/sim"

// simUnitName returns "sim.Time"/"sim.Duration" when t is one of the
// virtual-time unit types, "" otherwise.
func simUnitName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != simPkgPath {
		return ""
	}
	if name := obj.Name(); name == "Time" || name == "Duration" {
		return "sim." + name
	}
	return ""
}

// isWallDuration reports whether t is time.Duration.
func isWallDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

// isNumericBasic reports whether t is a plain numeric type (the target
// of a unit-dropping cast).
func isNumericBasic(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func runUnitsafe(pass *Pass) (any, error) {
	path := canonicalPkgPath(pass.PkgPath)
	if !IsDeterministicPkg(path) || path == simPkgPath {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		checkUnitsFile(pass, f)
	}
	return nil, nil
}

func checkUnitsFile(pass *Pass, f *ast.File) {
	info := pass.TypesInfo
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	// Parent-aware walk: constDepth tracks const declarations, and each
	// literal consults its immediate (paren-stripped) parent for the
	// scaling exemption.
	var stack []ast.Node
	parentOf := func(skipParens bool) ast.Node {
		for i := len(stack) - 2; i >= 0; i-- {
			if _, ok := stack[i].(*ast.ParenExpr); ok && skipParens {
				continue
			}
			return stack[i]
		}
		return nil
	}
	constDepth := 0
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			if gd, ok := top.(*ast.GenDecl); ok && gd.Tok == token.CONST {
				constDepth--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if gd, ok := n.(*ast.GenDecl); ok && gd.Tok == token.CONST {
			constDepth++
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkUnitConversion(info, report, n)
		case *ast.BasicLit:
			if n.Kind != token.INT && n.Kind != token.FLOAT {
				return true
			}
			tv, ok := info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			unit := simUnitName(tv.Type)
			if unit == "" {
				return true
			}
			if tv.Value != nil && constant.Sign(tv.Value) == 0 {
				return true // the zero value, not a quantity
			}
			if constDepth > 0 {
				return true // defining a named constant: the approved form
			}
			if be, ok := parentOf(true).(*ast.BinaryExpr); ok && (be.Op == token.MUL || be.Op == token.QUO) {
				return true // scalar scaling of a unit-bearing value
			}
			report(n.Pos(), "raw numeric literal %s adopts type %s with no unit; build it with sim.Micros/sim.Millis or a named constant",
				n.Value, unit)
		}
		return true
	})
}

// checkUnitConversion reports wall<->virtual conversions and
// unit-dropping numeric casts.
func checkUnitConversion(info *types.Info, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := tv.Type
	srcTV, ok := info.Types[call.Args[0]]
	if !ok || srcTV.Type == nil {
		return
	}
	src := srcTV.Type
	dstUnit, srcUnit := simUnitName(dst), simUnitName(src)
	switch {
	case dstUnit != "" && isWallDuration(src):
		report(call.Pos(), "conversion adopts wall-clock time.Duration as %s; virtual and wall time do not mix — "+
			"build virtual durations with sim.Micros or named constants", dstUnit)
	case isWallDuration(dst) && srcUnit != "":
		report(call.Pos(), "conversion republishes %s as wall-clock time.Duration; keep virtual time in sim units "+
			"or go through an explicit accessor at the measurement boundary", srcUnit)
	case isNumericBasic(dst) && srcUnit != "":
		report(call.Pos(), "conversion to %s drops the %s unit; use the sim accessors (Time.Micros, Duration.Nanos) "+
			"or keep the sim type", dst, srcUnit)
	}
}
