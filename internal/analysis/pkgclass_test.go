package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nectar/internal/analysis"
)

// TestEveryPackageClassified walks the module's source tree and fails
// for any package directory the classification table (pkgclass.go) does
// not cover. This is the drift guard the old deterministicPrefixes list
// lacked: landing a new internal/ package without deciding its
// determinism contract now breaks `go test ./...` instead of silently
// opting the package out of every analyzer.
func TestEveryPackageClassified(t *testing.T) {
	root := moduleRoot(t)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
			return filepath.SkipDir
		}
		if !dirHasGoSource(t, path) {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := "nectar"
		if rel != "." {
			importPath = "nectar/" + filepath.ToSlash(rel)
		}
		cls, ok := analysis.ClassOf(importPath)
		if !ok {
			t.Errorf("package %s is not covered by the classification table; add a row to pkgClassTable (pkgclass.go) declaring its determinism contract", importPath)
			return nil
		}
		t.Logf("%-40s %s", importPath, cls)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// dirHasGoSource reports whether dir directly contains a non-test .go
// file (test-only directories have no determinism contract of their
// own — their package variant inherits the base package's).
func dirHasGoSource(t *testing.T, dir string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// TestClassOfRules pins the matching rules the analyzers rely on: prefix
// rows cover subtrees, the module root is exact-match only, and unknown
// paths (new packages, fixture trees) are reported unclassified.
func TestClassOfRules(t *testing.T) {
	cases := []struct {
		path string
		cls  analysis.PkgClass
		ok   bool
	}{
		{"nectar", analysis.ClassDeterministic, true},
		{"nectar/internal/sim", analysis.ClassDeterministic, true},
		{"nectar/internal/hw/fiber", analysis.ClassDeterministic, true},
		{"nectar/internal/fabric", analysis.ClassDeterministic, true},
		{"nectar/internal/sim [nectar/internal/sim.test]", analysis.ClassDeterministic, true},
		{"nectar/cmd/nectar-vet", analysis.ClassDriver, true},
		{"nectar/examples/quickstart", analysis.ClassDriver, true},
		{"nectar/internal/analysis", analysis.ClassAnalysis, true},
		{"nectar/internal/analysis/analysistest", analysis.ClassAnalysis, true},
		{"nectar/internal/brandnew", 0, false}, // root row is exact: no fallback
		{"other/clock", 0, false},
		{"fmt", 0, false},
	}
	for _, c := range cases {
		cls, ok := analysis.ClassOf(c.path)
		if ok != c.ok || (ok && cls != c.cls) {
			t.Errorf("ClassOf(%q) = %v, %v; want %v, %v", c.path, cls, ok, c.cls, c.ok)
		}
	}
	if analysis.IsDeterministicPkg("nectar/cmd/nectar-sim") {
		t.Errorf("cmd packages must not be deterministic")
	}
	if !analysis.IsDeterministicPkg("nectar/internal/sim/wtpos") {
		t.Errorf("fixture paths under a deterministic prefix must inherit the contract")
	}
}
