package analysis

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// The dataflow framework is exercised with a miniature dominating-guard
// lattice defined entirely inside this test: facts are sets of plain
// identifier names known true (the test sources guard on bare bools),
// joined by intersection (must-analysis), killed by assignment, and
// established on the true edge of an if condition — the same shape
// obsgate instantiates with real guard expressions. Probe points are
// calls named probe*(); the test solves the CFG and replays facts to
// each probe.

type guardSet map[string]bool

func (g guardSet) clone() guardSet {
	out := make(guardSet, len(g))
	for k := range g {
		out[k] = true
	}
	return out
}

func guardJoin(a, b guardSet) guardSet {
	out := guardSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func guardEqual(a, b guardSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// guardsIn decomposes cond into the identifier guards established when
// it evaluates to val: `a` (val), `!a` (!val), `a && b` (both when val).
func guardsIn(cond ast.Expr, val bool) []string {
	switch c := cond.(type) {
	case *ast.Ident:
		if val {
			return []string{c.Name}
		}
	case *ast.ParenExpr:
		return guardsIn(c.X, val)
	case *ast.UnaryExpr:
		if c.Op.String() == "!" {
			return guardsIn(c.X, !val)
		}
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "&&":
			if val {
				return append(guardsIn(c.X, true), guardsIn(c.Y, true)...)
			}
		case "||":
			if !val {
				return append(guardsIn(c.X, false), guardsIn(c.Y, false)...)
			}
		}
	}
	return nil
}

func guardTransfer(n ast.Node, f guardSet) guardSet {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return f
	}
	out := f
	copied := false
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && out[id.Name] {
			if !copied {
				out = out.clone()
				copied = true
			}
			delete(out, id.Name)
		}
	}
	return out
}

func guardBranch(cond ast.Expr, takenTrue bool, f guardSet) guardSet {
	add := guardsIn(cond, takenTrue)
	if len(add) == 0 {
		return f
	}
	out := f.clone()
	for _, g := range add {
		out[g] = true
	}
	return out
}

// probeFacts builds the CFG for src, solves the guard lattice, and
// returns the sorted guard names holding at each probe*() call.
func probeFacts(t *testing.T, src string) map[string][]string {
	t.Helper()
	cfg := buildCFG(parseBody(t, src))
	in, reached := solve(cfg, flow[guardSet]{
		entry:    guardSet{},
		join:     guardJoin,
		equal:    guardEqual,
		transfer: guardTransfer,
		branch:   guardBranch,
	})
	out := make(map[string][]string)
	record := func(n ast.Node, f guardSet) {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !strings.HasPrefix(id.Name, "probe") {
				return true
			}
			var names []string
			for g := range f {
				names = append(names, g)
			}
			sort.Strings(names)
			out[id.Name] = names
			return true
		})
	}
	for _, blk := range cfg.Blocks {
		if !reached[blk.Index] {
			continue
		}
		f := in[blk.Index]
		for _, n := range blk.Nodes {
			record(n, f)
			f = guardTransfer(n, f)
		}
	}
	return out
}

func wantGuards(t *testing.T, got map[string][]string, probe string, want ...string) {
	t.Helper()
	g, ok := got[probe]
	if !ok {
		t.Fatalf("%s: no fact recorded (probe unreached?)", probe)
	}
	if len(want) == 0 {
		want = []string{}
	}
	if len(g) != len(want) {
		t.Fatalf("%s: guards = %v, want %v", probe, g, want)
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("%s: guards = %v, want %v", probe, g, want)
		}
	}
}

func TestDataflowThenBranchHasGuard(t *testing.T) {
	got := probeFacts(t, `
if a {
	probe1()
} else {
	probe2()
}
probe3()`)
	wantGuards(t, got, "probe1", "a")
	wantGuards(t, got, "probe2")
	wantGuards(t, got, "probe3")
}

func TestDataflowEarlyReturnEstablishesGuard(t *testing.T) {
	got := probeFacts(t, `
if !a {
	return
}
probe1()`)
	wantGuards(t, got, "probe1", "a")
}

func TestDataflowPanicEstablishesGuard(t *testing.T) {
	got := probeFacts(t, `
if !a {
	panic("x")
}
probe1()`)
	wantGuards(t, got, "probe1", "a")
}

func TestDataflowAndChain(t *testing.T) {
	got := probeFacts(t, `
if a && b {
	probe1()
}
probe2()`)
	wantGuards(t, got, "probe1", "a", "b")
	wantGuards(t, got, "probe2")
}

func TestDataflowOrFalseBranch(t *testing.T) {
	got := probeFacts(t, `
if a || b {
	probe1()
	return
}
probe2()`)
	// On the true edge of a||b neither conjunct is individually known...
	wantGuards(t, got, "probe1")
	// ...and the false edge knows both are false — which establishes
	// nothing in a positive-guard lattice.
	wantGuards(t, got, "probe2")
}

func TestDataflowNestedGuards(t *testing.T) {
	got := probeFacts(t, `
if a {
	if b {
		probe1()
	}
	probe2()
}
probe3()`)
	wantGuards(t, got, "probe1", "a", "b")
	wantGuards(t, got, "probe2", "a")
	wantGuards(t, got, "probe3")
}

func TestDataflowAssignmentKillsGuard(t *testing.T) {
	got := probeFacts(t, `
if a {
	probe1()
	a = false
	probe2()
}`)
	wantGuards(t, got, "probe1", "a")
	wantGuards(t, got, "probe2")
}

func TestDataflowLoopBodyKill(t *testing.T) {
	// The guard holds on the first iteration but the body kills it; the
	// fixpoint must drain it from the probe (back edge joins the killed
	// fact into the loop head).
	got := probeFacts(t, `
if a {
	for i := 0; i < n; i++ {
		probe1()
		a = false
	}
}`)
	wantGuards(t, got, "probe1")
}

func TestDataflowLoopPreservesUnkilledGuard(t *testing.T) {
	got := probeFacts(t, `
if a {
	for i := 0; i < n; i++ {
		probe1()
	}
	probe2()
}`)
	wantGuards(t, got, "probe1", "a")
	wantGuards(t, got, "probe2", "a")
}

func TestDataflowLoopConditionGuardsBody(t *testing.T) {
	got := probeFacts(t, `
for a {
	probe1()
}
probe2()`)
	wantGuards(t, got, "probe1", "a")
	wantGuards(t, got, "probe2")
}

func TestDataflowSwitchJoinsConservatively(t *testing.T) {
	got := probeFacts(t, `
if a {
	switch x {
	case 1:
		probe1()
	case 2:
		b = true
	}
	probe2()
}`)
	// The enclosing guard survives the switch; the case-2 assignment to
	// an unrelated variable does not disturb it.
	wantGuards(t, got, "probe1", "a")
	wantGuards(t, got, "probe2", "a")
}

func TestDataflowUnreachedBlocksSkipped(t *testing.T) {
	got := probeFacts(t, `
return
probe1()`)
	if _, ok := got["probe1"]; ok {
		t.Fatalf("probe1 is dead code but was recorded with a fact")
	}
}
