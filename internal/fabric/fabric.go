// Package fabric builds datacenter-scale HUB topologies as data: a
// Topology names every crossbar, every trunk fiber between crossbars, and
// every node attachment point, and computes hierarchical source routes in
// closed form. The cluster builder consumes a Topology instead of
// hand-wiring AddHub/ConnectHubs calls, which is what lets experiments
// scale from the paper's handful of nodes to fat-tree fabrics with tens of
// thousands of attachment points.
//
// Route port numbers ride in single bytes on the wire (the HUB consumes
// one route byte per hop, paper §2.1), so every crossbar is limited to 256
// ports. Two-tier leaf-spine fabrics therefore top out below 64k nodes;
// the three-tier fat tree (k-ary, k^3/4 hosts) reaches 65,536 hosts at
// k=64 with 64-port crossbars.
//
// All route computation is deterministic: equal-cost paths are spread by
// closed-form formulas over source and destination coordinates, never by
// randomization, so two builds of the same Topology produce byte-identical
// route tables.
package fabric

import (
	"fmt"

	"nectar/internal/sim"
)

// Trunk is one directed inter-HUB fiber: it leaves FromHub at output port
// FromPort and terminates at ToHub's input port ToPort. Builders emit both
// directions of every physical pair as two Trunks.
type Trunk struct {
	FromHub, FromPort int
	ToHub, ToPort     int
}

type kind int

const (
	kindLeafSpine kind = iota
	kindFatTree
)

// Topology is a HUB fabric as data: crossbar sizes, trunk wiring, and node
// attachment points, plus the closed-form router for its tier structure.
type Topology struct {
	// Name describes the fabric, e.g. "leaf-spine 32x128+8" or
	// "fat-tree k=64".
	Name string
	// HubPorts is the port count of each crossbar; len(HubPorts) is the
	// number of HUBs.
	HubPorts []int
	// Trunks lists every directed inter-HUB fiber.
	Trunks []Trunk
	// NodeHub and NodePort give attachment point i's crossbar and port.
	// Kept as parallel int32 arrays — the arena backing the compact node
	// representation (8 bytes per attachment point).
	NodeHub  []int32
	NodePort []int32

	kind kind
	// leaf-spine parameters.
	leaves, spines, perLeaf int
	// fat-tree parameter (k-ary: k pods, (k/2)^2 cores, k^3/4 hosts).
	k int

	// trunkAt[hub][port] is the index into Trunks of the trunk leaving
	// hub at port, or -1. Built once by ensureIndex.
	trunkAt [][]int32
}

// LeafSpine builds a two-tier Clos fabric: `leaves` edge crossbars each
// attaching `perLeaf` nodes (ports 0..perLeaf-1) and uplinking to every one
// of `spines` spine crossbars (leaf port perLeaf+s -> spine s; spine port
// l -> leaf l). Cross-leaf routes take two hops via a spine chosen
// deterministically from the leaf pair.
func LeafSpine(leaves, spines, perLeaf int) *Topology {
	if leaves < 1 || spines < 1 || perLeaf < 1 {
		panic("fabric: LeafSpine dimensions must be positive")
	}
	if perLeaf+spines > 256 {
		sim.Panicf("fabric: leaf needs %d ports; route bytes allow 256", perLeaf+spines)
	}
	if leaves > 256 {
		sim.Panicf("fabric: spine needs %d ports; route bytes allow 256", leaves)
	}
	t := &Topology{
		Name: fmt.Sprintf("leaf-spine %dx%d+%d", leaves, perLeaf, spines),
		kind: kindLeafSpine, leaves: leaves, spines: spines, perLeaf: perLeaf,
	}
	t.HubPorts = make([]int, leaves+spines)
	for l := 0; l < leaves; l++ {
		t.HubPorts[l] = perLeaf + spines
	}
	for s := 0; s < spines; s++ {
		t.HubPorts[leaves+s] = leaves
	}
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			t.Trunks = append(t.Trunks,
				Trunk{FromHub: l, FromPort: perLeaf + s, ToHub: leaves + s, ToPort: l},
				Trunk{FromHub: leaves + s, FromPort: l, ToHub: l, ToPort: perLeaf + s})
		}
	}
	n := leaves * perLeaf
	t.NodeHub = make([]int32, n)
	t.NodePort = make([]int32, n)
	for i := 0; i < n; i++ {
		t.NodeHub[i] = int32(i / perLeaf)
		t.NodePort[i] = int32(i % perLeaf)
	}
	return t
}

// FatTree builds the three-tier k-ary fat tree (k even): k pods of k/2 edge
// and k/2 aggregation crossbars, (k/2)^2 cores, k^3/4 hosts, every crossbar
// a k-port switch. Edge(p,e) attaches hosts on ports 0..k/2-1 and uplinks
// port k/2+a to Agg(p,a); Agg(p,a) downlinks port e to Edge(p,e) and
// uplinks port k/2+i to Core(a*k/2+i); Core(j) connects port p to
// Agg(p, j/(k/2)).
func FatTree(k int) *Topology {
	if k < 2 || k%2 != 0 {
		panic("fabric: FatTree arity must be even and >= 2")
	}
	if k > 256 {
		sim.Panicf("fabric: fat-tree switches need %d ports; route bytes allow 256", k)
	}
	half := k / 2
	edges := k * half    // ids [0, edges)
	aggs := k * half     // ids [edges, edges+aggs)
	cores := half * half // ids [edges+aggs, ...)
	t := &Topology{
		Name: fmt.Sprintf("fat-tree k=%d", k),
		kind: kindFatTree, k: k,
	}
	t.HubPorts = make([]int, edges+aggs+cores)
	for i := range t.HubPorts {
		t.HubPorts[i] = k
	}
	edgeID := func(p, e int) int { return p*half + e }
	aggID := func(p, a int) int { return edges + p*half + a }
	coreID := func(j int) int { return edges + aggs + j }
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				// Edge(p,e) port half+a <-> Agg(p,a) port e.
				t.Trunks = append(t.Trunks,
					Trunk{FromHub: edgeID(p, e), FromPort: half + a, ToHub: aggID(p, a), ToPort: e},
					Trunk{FromHub: aggID(p, a), FromPort: e, ToHub: edgeID(p, e), ToPort: half + a})
			}
		}
		for a := 0; a < half; a++ {
			for i := 0; i < half; i++ {
				// Agg(p,a) port half+i <-> Core(a*half+i) port p.
				j := a*half + i
				t.Trunks = append(t.Trunks,
					Trunk{FromHub: aggID(p, a), FromPort: half + i, ToHub: coreID(j), ToPort: p},
					Trunk{FromHub: coreID(j), FromPort: p, ToHub: aggID(p, a), ToPort: half + i})
			}
		}
	}
	n := k * half * half // k^3/4 hosts
	t.NodeHub = make([]int32, n)
	t.NodePort = make([]int32, n)
	perPod := half * half
	for i := 0; i < n; i++ {
		p := i / perPod
		in := i % perPod
		t.NodeHub[i] = int32(edgeID(p, in/half))
		t.NodePort[i] = int32(in % half)
	}
	return t
}

// Hubs returns the number of crossbars.
func (t *Topology) Hubs() int { return len(t.HubPorts) }

// NodeCount returns the number of attachment points.
func (t *Topology) NodeCount() int { return len(t.NodeHub) }

// Tiers returns the number of switching tiers (2 for leaf-spine, 3 for
// fat-tree).
func (t *Topology) Tiers() int {
	if t.kind == kindFatTree {
		return 3
	}
	return 2
}

// HubPath returns the output-port bytes that carry a packet from crossbar
// src to crossbar dst (empty when src == dst; the caller appends the final
// attachment port). The path is closed-form and deterministic: equal-cost
// choices are spread by arithmetic on the endpoint coordinates.
func (t *Topology) HubPath(src, dst int) ([]byte, bool) {
	if src < 0 || dst < 0 || src >= len(t.HubPorts) || dst >= len(t.HubPorts) {
		return nil, false
	}
	if src == dst {
		return nil, true
	}
	switch t.kind {
	case kindLeafSpine:
		// Only leaf-to-leaf paths exist for node traffic; spreading over
		// spines by the leaf pair keeps the choice deterministic.
		if src >= t.leaves || dst >= t.leaves {
			return nil, false
		}
		s := (src + dst) % t.spines
		return []byte{byte(t.perLeaf + s), byte(dst)}, true
	case kindFatTree:
		half := t.k / 2
		edges := t.k * half
		if src >= edges || dst >= edges {
			return nil, false
		}
		p1, e1 := src/half, src%half
		p2, e2 := dst/half, dst%half
		if p1 == p2 {
			// Same pod: up to a deterministically chosen aggregation
			// switch, back down to the destination edge.
			a := (e1 + e2) % half
			return []byte{byte(half + a), byte(e2)}, true
		}
		// Cross-pod: edge -> agg -> core -> agg -> edge. The agg choice
		// spreads over pod pairs, the core choice over edge pairs.
		a := (p1 + p2) % half
		i := (e1 + e2) % half
		return []byte{byte(half + a), byte(half + i), byte(p2), byte(e2)}, true
	}
	return nil, false
}

// ensureIndex builds the (hub, port) -> trunk index.
func (t *Topology) ensureIndex() {
	if t.trunkAt != nil {
		return
	}
	idx := make([][]int32, len(t.HubPorts))
	for h, ports := range t.HubPorts {
		idx[h] = make([]int32, ports)
		for p := range idx[h] {
			idx[h][p] = -1
		}
	}
	for ti, tr := range t.Trunks {
		idx[tr.FromHub][tr.FromPort] = int32(ti)
	}
	t.trunkAt = idx
}

// TrunkIndex resolves the trunk leaving hub at output port, if any.
func (t *Topology) TrunkIndex(hub, port int) (int, bool) {
	t.ensureIndex()
	if hub < 0 || hub >= len(t.trunkAt) || port < 0 || port >= len(t.trunkAt[hub]) {
		return 0, false
	}
	ti := t.trunkAt[hub][port]
	if ti < 0 {
		return 0, false
	}
	return int(ti), true
}

// Validate checks the topology's structural invariants: port counts within
// the 256-port route-byte limit, trunks and attachments within port bounds,
// and no two uses of the same output port.
func (t *Topology) Validate() error {
	if len(t.HubPorts) == 0 {
		return fmt.Errorf("fabric: topology has no hubs")
	}
	for h, ports := range t.HubPorts {
		if ports < 1 || ports > 256 {
			return fmt.Errorf("fabric: hub %d has %d ports; route bytes allow 1..256", h, ports)
		}
	}
	used := make(map[int64]bool, len(t.Trunks)+len(t.NodeHub))
	claim := func(hub, port int) error {
		if hub < 0 || hub >= len(t.HubPorts) || port < 0 || port >= t.HubPorts[hub] {
			return fmt.Errorf("fabric: port (hub %d, port %d) out of range", hub, port)
		}
		key := int64(hub)<<16 | int64(port)
		if used[key] {
			return fmt.Errorf("fabric: output port (hub %d, port %d) used twice", hub, port)
		}
		used[key] = true
		return nil
	}
	for _, tr := range t.Trunks {
		if err := claim(tr.FromHub, tr.FromPort); err != nil {
			return err
		}
		if tr.ToHub < 0 || tr.ToHub >= len(t.HubPorts) || tr.ToPort < 0 || tr.ToPort >= t.HubPorts[tr.ToHub] {
			return fmt.Errorf("fabric: trunk terminates out of range (hub %d, port %d)", tr.ToHub, tr.ToPort)
		}
	}
	if len(t.NodeHub) != len(t.NodePort) {
		return fmt.Errorf("fabric: NodeHub/NodePort length mismatch")
	}
	for i := range t.NodeHub {
		if err := claim(int(t.NodeHub[i]), int(t.NodePort[i])); err != nil {
			return fmt.Errorf("node %d: %v", i, err)
		}
	}
	return nil
}
