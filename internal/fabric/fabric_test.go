package fabric

import (
	"bytes"
	"fmt"
	"testing"
)

func TestLeafSpineShape(t *testing.T) {
	topo := LeafSpine(4, 2, 16)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := topo.Hubs(); got != 6 {
		t.Fatalf("hubs = %d, want 6", got)
	}
	if got := topo.NodeCount(); got != 64 {
		t.Fatalf("nodes = %d, want 64", got)
	}
	if got := len(topo.Trunks); got != 16 { // 4 leaves x 2 spines, both directions
		t.Fatalf("trunks = %d, want 16", got)
	}
	if topo.Tiers() != 2 {
		t.Fatalf("tiers = %d, want 2", topo.Tiers())
	}
	// Node 35 sits on leaf 2 port 3.
	if topo.NodeHub[35] != 2 || topo.NodePort[35] != 3 {
		t.Fatalf("node 35 at (%d,%d), want (2,3)", topo.NodeHub[35], topo.NodePort[35])
	}
}

func TestFatTreeShape(t *testing.T) {
	topo := FatTree(4)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := topo.Hubs(); got != 20 { // 8 edge + 8 agg + 4 core
		t.Fatalf("hubs = %d, want 20", got)
	}
	if got := topo.NodeCount(); got != 16 { // k^3/4
		t.Fatalf("nodes = %d, want 16", got)
	}
	if got := len(topo.Trunks); got != 64 { // 16 edge-agg pairs + 16 agg-core pairs, both directions
		t.Fatalf("trunks = %d, want 64", got)
	}
	if topo.Tiers() != 3 {
		t.Fatalf("tiers = %d, want 3", topo.Tiers())
	}
}

// Every trunk must have its reverse direction present with mirrored ports.
func TestTrunksAreSymmetric(t *testing.T) {
	for _, topo := range []*Topology{LeafSpine(4, 2, 16), FatTree(4), FatTree(8)} {
		have := make(map[Trunk]bool, len(topo.Trunks))
		for _, tr := range topo.Trunks {
			have[tr] = true
		}
		for _, tr := range topo.Trunks {
			rev := Trunk{FromHub: tr.ToHub, FromPort: tr.ToPort, ToHub: tr.FromHub, ToPort: tr.FromPort}
			if !have[rev] {
				t.Fatalf("%s: trunk %+v has no reverse", topo.Name, tr)
			}
		}
	}
}

// nodeRoute computes the full source route between two attachment points.
func nodeRoute(t *testing.T, rt *RouteTable, topo *Topology, src, dst int) []byte {
	t.Helper()
	r, ok := rt.Route(int(topo.NodeHub[src]), int(topo.NodeHub[dst]), int(topo.NodePort[dst]))
	if !ok {
		t.Fatalf("no route %d -> %d", src, dst)
	}
	return r
}

// Golden route-table test for the fat-tree builder: selected routes are
// pinned byte-for-byte, and the complete all-pairs table is identical
// across two independent rebuilds.
func TestFatTreeGoldenRoutes(t *testing.T) {
	topo := FatTree(4)
	rt := NewRouteTable(topo.HubPath)
	golden := []struct {
		src, dst int
		route    []byte
	}{
		// Same edge switch: one byte, the destination's host port.
		{0, 1, []byte{1}},
		// Same pod, different edge: up to agg, down, host port.
		{0, 3, []byte{3, 1, 1}},
		// Cross pod: edge up, agg up, core down, agg down, host port.
		{0, 15, []byte{3, 3, 3, 1, 1}},
		{15, 0, []byte{3, 3, 0, 0, 0}},
		// Loopback: the crossbar turns the frame around on the host port.
		{5, 5, []byte{1}},
	}
	for _, g := range golden {
		if got := nodeRoute(t, rt, topo, g.src, g.dst); !bytes.Equal(got, g.route) {
			t.Errorf("route %d->%d = % x, want % x", g.src, g.dst, got, g.route)
		}
	}
	// Route lengths are fixed by tier distance.
	for src := 0; src < topo.NodeCount(); src++ {
		for dst := 0; dst < topo.NodeCount(); dst++ {
			r := nodeRoute(t, rt, topo, src, dst)
			want := 1 // same edge
			if src/2 != dst/2 {
				want = 3 // same pod
			}
			if src/4 != dst/4 {
				want = 5 // cross pod
			}
			if len(r) != want {
				t.Fatalf("route %d->%d has %d hops, want %d (route % x)", src, dst, len(r), want, r)
			}
		}
	}
}

// Rebuilding the same fabric must reproduce the identical route table.
func TestRoutesDeterministicAcrossRebuilds(t *testing.T) {
	build := func() (*Topology, *RouteTable) {
		topo := FatTree(4)
		return topo, NewRouteTable(topo.HubPath)
	}
	t1, r1 := build()
	t2, r2 := build()
	for src := 0; src < t1.NodeCount(); src++ {
		for dst := 0; dst < t1.NodeCount(); dst++ {
			a := nodeRoute(t, r1, t1, src, dst)
			b := nodeRoute(t, r2, t2, src, dst)
			if !bytes.Equal(a, b) {
				t.Fatalf("route %d->%d differs across rebuilds: % x vs % x", src, dst, a, b)
			}
		}
	}
	if r1.Entries() != r2.Entries() || r1.Bytes() != r2.Bytes() {
		t.Fatalf("table stats differ: (%d,%d) vs (%d,%d)", r1.Entries(), r1.Bytes(), r2.Entries(), r2.Bytes())
	}
}

func TestLeafSpineRoutes(t *testing.T) {
	topo := LeafSpine(4, 2, 16)
	rt := NewRouteTable(topo.HubPath)
	// Node 0 (leaf 0, port 0) -> node 35 (leaf 2, port 3): spine (0+2)%2=0.
	if got := nodeRoute(t, rt, topo, 0, 35); !bytes.Equal(got, []byte{16, 2, 3}) {
		t.Fatalf("route 0->35 = % x, want 10 02 03", got)
	}
	// Same leaf: direct.
	if got := nodeRoute(t, rt, topo, 0, 5); !bytes.Equal(got, []byte{5}) {
		t.Fatalf("route 0->5 = % x, want 05", got)
	}
}

// Route strings are deduplicated: every (srcHub, dstHub, dstPort) triple is
// computed once and all callers share the same backing array.
func TestRouteTableDedup(t *testing.T) {
	topo := LeafSpine(4, 2, 16)
	rt := NewRouteTable(topo.HubPath)
	a := nodeRoute(t, rt, topo, 0, 35) // leaf 0 -> leaf 2 port 3
	b := nodeRoute(t, rt, topo, 7, 35) // same leaf, same destination
	if &a[0] != &b[0] {
		t.Fatal("same-triple routes do not share a backing array")
	}
	before := rt.Entries()
	nodeRoute(t, rt, topo, 9, 35)
	if rt.Entries() != before {
		t.Fatal("repeated triple grew the table")
	}
	// All-pairs over 64 nodes is 4096 node pairs but only
	// leaves*leaves*perLeaf distinct (srcHub,dstHub,dstPort) triples.
	for src := 0; src < topo.NodeCount(); src++ {
		for dst := 0; dst < topo.NodeCount(); dst++ {
			nodeRoute(t, rt, topo, src, dst)
		}
	}
	if want := 4 * 4 * 16; rt.Entries() != want {
		t.Fatalf("entries = %d, want %d", rt.Entries(), want)
	}
}

func TestBuilderLimits(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("leaf ports", func() { LeafSpine(2, 200, 100) })
	mustPanic("spine ports", func() { LeafSpine(300, 2, 4) })
	mustPanic("odd arity", func() { FatTree(5) })
	mustPanic("arity limit", func() { FatTree(258) })
}

func TestTrunkIndex(t *testing.T) {
	topo := LeafSpine(2, 2, 4)
	for ti, tr := range topo.Trunks {
		got, ok := topo.TrunkIndex(tr.FromHub, tr.FromPort)
		if !ok || got != ti {
			t.Fatalf("TrunkIndex(%d,%d) = %d,%v want %d", tr.FromHub, tr.FromPort, got, ok, ti)
		}
	}
	if _, ok := topo.TrunkIndex(0, 0); ok { // port 0 is a node attachment
		t.Fatal("node port resolved to a trunk")
	}
	if _, ok := topo.TrunkIndex(99, 0); ok {
		t.Fatal("out-of-range hub resolved to a trunk")
	}
}

func ExampleFatTree() {
	topo := FatTree(64)
	fmt.Println(topo.Name, topo.NodeCount(), "hosts,", topo.Hubs(), "hubs,", len(topo.Trunks), "trunks")
	// Output: fat-tree k=64 65536 hosts, 5120 hubs, 262144 trunks
}
