package fabric

// RouteTable is the shared, deduplicated store of source-route byte
// strings. A route to a node is its hub-to-hub path plus the final
// attachment port; since every node on the same crossbar pair shares the
// path and nodes on the same (hub, port) are unique, caching by
// (srcHub, dstHub, dstPort) computes each route string exactly once and
// every CAB route-table entry is a reference into this table — no
// per-node copies.
//
// Entries are immutable once built: HUBs consume route bytes by
// re-slicing, never by writing (see fiber.Packet), so one backing array
// safely serves every sender. The table is populated during cluster
// construction and node materialization — single-threaded by contract —
// and only read (through CAB route maps) while the simulation runs.
type RouteTable struct {
	path    func(srcHub, dstHub int) ([]byte, bool)
	entries map[uint64][]byte
	bytes   int
}

// NewRouteTable creates a route table over the given hub-to-hub path
// function (a Topology's HubPath, or a BFS over hand-wired hub links).
// path must return the output-port bytes excluding the final attachment
// port, and must be deterministic.
func NewRouteTable(path func(srcHub, dstHub int) ([]byte, bool)) *RouteTable {
	return &RouteTable{path: path, entries: make(map[uint64][]byte)}
}

// Route returns the full source route from a node on srcHub to the node
// attached at (dstHub, dstPort), computing and caching it on first use.
// The returned slice is shared: callers must treat it as read-only.
func (rt *RouteTable) Route(srcHub, dstHub, dstPort int) ([]byte, bool) {
	key := uint64(srcHub)<<32 | uint64(dstHub)<<16 | uint64(dstPort)
	if r, ok := rt.entries[key]; ok {
		return r, true
	}
	p, ok := rt.path(srcHub, dstHub)
	if !ok {
		return nil, false
	}
	r := make([]byte, 0, len(p)+1)
	r = append(r, p...)
	r = append(r, byte(dstPort))
	rt.entries[key] = r
	rt.bytes += len(r)
	return r, true
}

// Reset drops every cached route (hand-wired clusters call it when the hub
// graph changes).
func (rt *RouteTable) Reset() {
	rt.entries = make(map[uint64][]byte)
	rt.bytes = 0
}

// Entries returns the number of distinct route strings in the table.
func (rt *RouteTable) Entries() int { return len(rt.entries) }

// Bytes returns the total size of all cached route strings.
func (rt *RouteTable) Bytes() int { return rt.bytes }
