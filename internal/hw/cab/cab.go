// Package cab models the CAB (Communication Accelerator Board, paper §2.2):
// a general-purpose CPU (modeled by a threads.Sched), split program/data
// memory with page-grained protection, FIFOs to the fiber pair, hardware
// CRC, a DMA controller, and a VME interface to the host.
//
// The package is the hardware/software boundary: protocol software (the
// datalink layer and everything above it) drives the board through
// Transmit, StartRxDMA and the interrupt vectors, and the board calls back
// into registered handlers in interrupt context, exactly as the paper's
// runtime system is driven by start-of-packet and end-of-data events.
package cab

import (
	"fmt"

	"nectar/internal/hw/fiber"
	"nectar/internal/hw/mem"
	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/pool"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// RxDesc describes a frame being received. It is handed to the registered
// receive handler when the datalink header has arrived in the input FIFO;
// the payload may still be streaming in (End is when the last byte lands).
type RxDesc struct {
	Frame []byte   // full frame: datalink header + payload + CRC trailer
	End   sim.Time // arrival time of the last byte
	cab   *CAB
	pkt   *fiber.Packet // in-flight packet owning Frame (nil in unit tests)
}

// Release recycles the frame buffer and descriptor once the frame is dead:
// the datalink layer calls it on pre-DMA drop paths, and StartRxDMA calls
// it after the payload has been copied out. It must be called at most once
// per descriptor.
//
//nectar:hotpath
func (d *RxDesc) Release() {
	if d.pkt != nil {
		d.pkt.Release()
		d.pkt = nil
	}
	d.Frame = nil
	if d.cab != nil {
		d.cab.descFree.Put(d)
	}
}

// CRCOK reports whether the hardware CRC over the frame verifies. The
// result is physically known only at End; callers check it from the
// end-of-data path.
func (d *RxDesc) CRCOK() bool {
	f := d.Frame
	if len(f) < wire.CRCLen {
		return false
	}
	body, trailer := f[:len(f)-wire.CRCLen], f[len(f)-wire.CRCLen:]
	want := uint32(trailer[0])<<24 | uint32(trailer[1])<<16 | uint32(trailer[2])<<8 | uint32(trailer[3])
	return wire.CRC32(body) == want
}

// Payload returns the frame body between the datalink header and the CRC
// trailer.
func (d *RxDesc) Payload() []byte {
	return d.Frame[wire.DatalinkHeaderLen : len(d.Frame)-wire.CRCLen]
}

// CAB is one communication processor board.
type CAB struct {
	node  wire.NodeID
	k     *sim.Kernel
	cost  *model.CostModel
	Sched *threads.Sched // the CAB CPU

	Data *mem.Region     // 1 MB data memory (DMA-capable)
	Heap *mem.Heap       // buffer heap over data memory (mailbox storage)
	Prot *mem.Protection // protection domains

	out    *fiber.Link // to the HUB
	routes map[wire.NodeID][]byte

	rxHandler   func(t *threads.Thread, d *RxDesc) // start-of-packet, interrupt context
	hostVector  func(t *threads.Thread)            // doorbell from host, interrupt context
	toHost      func()                             // raises the host's CAB interrupt
	rxInterrupt bool                               // deliver rx as interrupt (true) or via polling thread (ablation A1)

	txFrames, rxFrames uint64
	crcErrors          uint64

	// Transmit-preparation window (sharded execution). The datalink layer
	// brackets every Send between BeginTxPrep/EndTxPrep around the CPU
	// compute it charges before Transmit, so the shard gateway can bound
	// the board's earliest future transmission: while no bracket is open,
	// a transmit needs a fresh event dispatch plus the full preparation
	// compute; while one is open, no transmit can beat the earliest
	// outstanding ready time. txReadyAt tracks the minimum ready time over
	// open brackets; begins happen at non-decreasing virtual times, so the
	// first open bracket holds the minimum, and keeping its value after it
	// closes (while others remain open) is merely conservative.
	txPrep    int
	txReadyAt sim.Time

	// Fast-path recycling (see fiber.Pool): outbound frame/packet reuse
	// and receive-descriptor reuse.
	pool     *fiber.Pool
	descFree pool.FreeList[*RxDesc]

	markArrive string // precomputed "cab.rx.arrive.<node>" (hot path)

	obs *obs.Observer
}

// New creates a CAB for the given node with default memory geometry.
func New(k *sim.Kernel, cost *model.CostModel, node wire.NodeID) *CAB {
	return NewSized(k, cost, node, 0)
}

// NewSized creates a CAB with dataBytes of packet memory (0 selects the
// default 1 MB, the prototype's geometry). Scale experiments shrink it so
// tens of thousands of materialized nodes fit in host memory; behavior is
// identical unless the workload actually exhausts the buffer heap.
func NewSized(k *sim.Kernel, cost *model.CostModel, node wire.NodeID, dataBytes int) *CAB {
	if dataBytes <= 0 {
		dataBytes = mem.DefaultDataSize
	}
	data := mem.NewRegion(fmt.Sprintf("cab%d.data", node), dataBytes)
	c := &CAB{
		node:   node,
		k:      k,
		cost:   cost,
		Sched:  threads.New(k, cost, fmt.Sprintf("cab%d", node)),
		Data:   data,
		Heap:   mem.NewHeap(data, 0, data.Size()),
		Prot:   mem.NewProtection(data, 8),
		routes: make(map[wire.NodeID][]byte),
	}
	c.pool = &fiber.Pool{}
	c.markArrive = fmt.Sprintf("cab.rx.arrive.%d", node)
	c.rxInterrupt = true
	c.obs = obs.Ensure(k)
	m := c.obs.Metrics()
	scope := fmt.Sprintf("cab%d", node)
	m.Gauge(obs.LayerCAB, "tx_frames", scope, func() uint64 { return c.txFrames })
	m.Gauge(obs.LayerCAB, "rx_frames", scope, func() uint64 { return c.rxFrames })
	m.Gauge(obs.LayerCAB, "crc_errors", scope, func() uint64 { return c.crcErrors })
	return c
}

// Node returns the CAB's node ID.
func (c *CAB) Node() wire.NodeID { return c.node }

// Kernel returns the simulation kernel.
func (c *CAB) Kernel() *sim.Kernel { return c.k }

// Cost returns the cost model.
func (c *CAB) Cost() *model.CostModel { return c.cost }

// ConnectFiber attaches the outgoing fiber (to a HUB input port).
func (c *CAB) ConnectFiber(out *fiber.Link) { c.out = out }

// OutLink returns the outgoing fiber (tests use it for fault injection).
func (c *CAB) OutLink() *fiber.Link { return c.out }

// SetRoute installs the source route (HUB output-port bytes) to reach dst.
// The slice is retained by reference and must stay immutable: clusters
// point every CAB at one shared, deduplicated route table (HUBs consume
// hops by re-slicing, never writing — see fiber.Packet), so copying here
// would multiply the table per node.
func (c *CAB) SetRoute(dst wire.NodeID, route []byte) {
	c.routes[dst] = route
}

// Route returns the source route to dst.
func (c *CAB) Route(dst wire.NodeID) ([]byte, bool) {
	r, ok := c.routes[dst]
	return r, ok
}

// OnReceive registers the datalink receive handler, invoked in interrupt
// context when a frame's header has arrived (start-of-packet interrupt).
func (c *CAB) OnReceive(fn func(t *threads.Thread, d *RxDesc)) { c.rxHandler = fn }

// OnHostDoorbell registers the handler for the host-to-CAB interrupt
// (paper §3.2: the host places a request in the CAB signal queue and
// interrupts the CAB).
func (c *CAB) OnHostDoorbell(fn func(t *threads.Thread)) { c.hostVector = fn }

// SetHostInterrupt wires the CAB-to-host interrupt line (installed by the
// host board during cluster construction).
func (c *CAB) SetHostInterrupt(fn func()) { c.toHost = fn }

// RingFromHost raises the CAB's doorbell interrupt. Called from a host
// process context after it has posted a request to the CAB signal queue.
func (c *CAB) RingFromHost() {
	if c.hostVector == nil {
		c.k.Fatalf("cab%d: doorbell with no handler registered", c.node)
		return
	}
	c.Sched.RaiseInterrupt("host-doorbell", c.hostVector)
}

// InterruptHost raises the host's CAB interrupt (paper Figure 4: the CAB
// places an entry in the host signal queue and interrupts the host).
func (c *CAB) InterruptHost() {
	if c.toHost == nil {
		c.k.Fatalf("cab%d: host interrupt with no line wired", c.node)
		return
	}
	c.toHost()
}

// SetRxInterruptMode selects whether arriving frames raise an interrupt
// (the paper's production configuration) or are handed to a polling
// high-priority thread via the rxQueue (the §3.1 ablation). The datalink
// layer consumes this flag.
func (c *CAB) SetRxInterruptMode(on bool) { c.rxInterrupt = on }

// RxInterruptMode reports the current delivery mode.
func (c *CAB) RxInterruptMode() bool { return c.rxInterrupt }

// BeginTxPrep opens a transmit-preparation bracket: the calling context
// is about to charge preparation compute and then Transmit, and ready is
// the earliest virtual instant that Transmit can occur (current time plus
// the compute about to be charged; preemption can only push it later).
// The sharded cluster's gateway reads the aggregate through TxReadyAt.
//
//nectar:hotpath
func (c *CAB) BeginTxPrep(ready sim.Time) {
	if c.txPrep == 0 || ready < c.txReadyAt {
		c.txReadyAt = ready
	}
	c.txPrep++
}

// EndTxPrep closes the bracket opened by the matching BeginTxPrep.
//
//nectar:hotpath
func (c *CAB) EndTxPrep() { c.txPrep-- }

// TxReadyAt returns the earliest virtual instant any open transmit
// preparation can reach the fiber, and whether one is open at all. Only
// meaningful between events (the shard scheduler's window choose phase).
func (c *CAB) TxReadyAt() (sim.Time, bool) {
	if c.txPrep == 0 {
		return 0, false
	}
	return c.txReadyAt, true
}

// Transmit builds a frame around the given datalink header template and
// payload spans, appends the hardware CRC, and starts the output DMA. The
// caller (datalink software) has already charged the CPU costs; the
// transfer itself proceeds in parallel with the CPU.
//
// The payload spans are gathered by the DMA engine, so a transport can
// transmit a header template from one buffer and user data from a mailbox
// buffer without any CPU copy (paper §4.1's gather-style IP_Output).
//
//nectar:free-hop callers charge the datalink CPU costs (DatalinkProcess et al.) before invoking; wire serialization is charged inside Link.Send
func (c *CAB) Transmit(dst wire.NodeID, hdr wire.DatalinkHeader, circuit bool, payload ...[]byte) error {
	if c.out == nil {
		return fmt.Errorf("cab%d: no fiber connected", c.node)
	}
	route, ok := c.routes[dst]
	if !ok {
		return fmt.Errorf("cab%d: no route to node %d", c.node, dst)
	}
	n := 0
	for _, p := range payload {
		n += len(p)
	}
	if n > wire.MaxPayload {
		return fmt.Errorf("cab%d: payload %d exceeds max %d", c.node, n, wire.MaxPayload)
	}
	hdr.Src = c.node
	hdr.Dst = dst
	hdr.Len = uint16(n)
	frame := c.pool.GetFrame(wire.DatalinkHeaderLen + n + wire.CRCLen)
	hdr.Marshal(frame)
	off := wire.DatalinkHeaderLen
	for _, p := range payload {
		off += copy(frame[off:], p)
	}
	crc := wire.CRC32(frame[:off])
	frame[off] = byte(crc >> 24)
	frame[off+1] = byte(crc >> 16)
	frame[off+2] = byte(crc >> 8)
	frame[off+3] = byte(crc)
	c.txFrames++
	if c.obs.Tracing() {
		c.obs.InstantSeq(int(c.node), obs.LayerCAB, "tx", 0, len(frame))
	}
	// The route slice is shared, not copied: HUBs consume hops by
	// re-slicing only (see fiber.Packet), so the route table entry's
	// backing array is never written in flight.
	pkt := c.pool.GetPacket()
	pkt.Route = route
	pkt.Frame = frame
	pkt.Circuit = circuit
	c.out.Send(pkt)
	return nil
}

// PacketArriving implements fiber.Endpoint: frames delivered to this CAB.
// The start-of-packet interrupt is raised once the datalink header has
// drained into the input FIFO (paper §3.1: it "must be handled within a
// few tens of microseconds").
func (c *CAB) PacketArriving(pkt *fiber.Packet, end sim.Time) {
	c.k.Mark(c.markArrive)
	c.rxFrames++
	if c.obs.Tracing() {
		c.obs.InstantSeq(int(c.node), obs.LayerCAB, "rx.arrive", 0, len(pkt.Frame))
	}
	desc := c.getDesc()
	desc.Frame = pkt.Frame
	desc.End = end
	desc.pkt = pkt
	headerAt := c.k.Now() + sim.Time(c.cost.FiberTime(1+wire.DatalinkHeaderLen))
	if headerAt > end {
		headerAt = end
	}
	c.k.At(headerAt, func() {
		if c.rxHandler == nil {
			c.k.Fatalf("cab%d: frame arrived with no receive handler", c.node)
			return
		}
		if c.rxInterrupt {
			c.Sched.RaiseInterrupt("start-of-packet", func(t *threads.Thread) {
				c.rxHandler(t, desc)
			})
		} else {
			// Polling-thread mode: the datalink package registered a
			// handler that enqueues to its rx thread without an interrupt.
			c.rxHandler(nil, desc)
		}
	})
}

// StartRxDMA arranges for the frame's payload to be placed in dst (a CAB
// data-memory buffer) and calls done when the transfer is complete — i.e.
// when the last byte has both arrived and drained from the FIFO. done runs
// in kernel context at that instant; ok reports the hardware CRC check,
// whose result accompanies the end-of-data event.
//
// The DMA controller handles low-level flow control itself: it waits for
// data to arrive if the input FIFO is empty (paper §2.2), which is why
// completion is simply max(now, End).
//
//nectar:takes-ownership d retired at DMA completion, or dropped when the buffer is undersized
func (c *CAB) StartRxDMA(d *RxDesc, dst []byte, done func(ok bool)) {
	payload := d.Payload()
	if len(dst) < len(payload) {
		c.k.Fatalf("cab%d: rx DMA buffer %d < payload %d", c.node, len(dst), len(payload))
		d.Release() // the DMA never starts: drop the frame instead of stranding the descriptor
		return
	}
	doneAt := d.End
	if now := c.k.Now(); now > doneAt {
		doneAt = now
	}
	c.k.At(doneAt, func() {
		ok := d.CRCOK()
		if !ok {
			c.crcErrors++
		}
		copy(dst, payload)
		done(ok)
		d.Release() // payload copied out; frame and descriptor are dead
	})
}

// getDesc returns a receive descriptor from the CAB's free list. The
// allocation on the miss path fills the pool; steady state reuses.
//
//nectar:hotpath
func (c *CAB) getDesc() *RxDesc {
	if d, ok := c.descFree.Get(); ok {
		return d
	}
	return &RxDesc{cab: c}
}

// Pool returns the CAB's frame/packet pool (stats are exposed for tests
// and the perf report).
func (c *CAB) Pool() *fiber.Pool { return c.pool }

// Stats returns (frames transmitted, frames received, CRC errors).
func (c *CAB) Stats() (tx, rx, crcErr uint64) { return c.txFrames, c.rxFrames, c.crcErrors }
