package cab

import (
	"bytes"
	"testing"

	"nectar/internal/hw/fiber"
	"nectar/internal/hw/hub"
	"nectar/internal/model"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func wired(t *testing.T) (*sim.Kernel, *CAB, *CAB) {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	h := hub.New(k, cost, "hub", hub.DefaultPorts)
	a := New(k, cost, 1)
	b := New(k, cost, 2)
	a.ConnectFiber(fiber.NewLink(k, cost, "a->h", h.InPort(0)))
	h.ConnectOut(0, fiber.NewLink(k, cost, "h->a", a))
	b.ConnectFiber(fiber.NewLink(k, cost, "b->h", h.InPort(1)))
	h.ConnectOut(1, fiber.NewLink(k, cost, "h->b", b))
	a.SetRoute(2, []byte{1})
	b.SetRoute(1, []byte{0})
	return k, a, b
}

func TestTransmitReceiveFrame(t *testing.T) {
	k, a, b := wired(t)
	payload := []byte("frame-payload")
	var gotHdr wire.DatalinkHeader
	var gotPayload []byte
	var crcOK bool
	b.OnReceive(func(th *threads.Thread, d *RxDesc) {
		_ = gotHdr.Unmarshal(d.Frame)
		b.StartRxDMA(d, make([]byte, len(d.Payload())), func(ok bool) {
			crcOK = ok
			gotPayload = append([]byte(nil), d.Payload()...)
		})
	})
	k.After(0, func() {
		if err := a.Transmit(2, wire.DatalinkHeader{Type: wire.TypeDatagram}, false, payload); err != nil {
			k.Fatalf("transmit: %v", err)
		}
	})
	if err := k.RunFor(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !crcOK {
		t.Error("CRC failed on clean frame")
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload = %q", gotPayload)
	}
	if gotHdr.Src != 1 || gotHdr.Dst != 2 || gotHdr.Type != wire.TypeDatagram {
		t.Errorf("header = %+v", gotHdr)
	}
	if int(gotHdr.Len) != len(payload) {
		t.Errorf("len = %d", gotHdr.Len)
	}
}

func TestGatherTransmit(t *testing.T) {
	// Multiple payload spans are concatenated by the "DMA engine".
	k, a, b := wired(t)
	var got []byte
	b.OnReceive(func(th *threads.Thread, d *RxDesc) {
		got = append([]byte(nil), d.Payload()...)
	})
	k.After(0, func() {
		_ = a.Transmit(2, wire.DatalinkHeader{Type: 1}, false, []byte("aa"), []byte("bb"), []byte("cc"))
	})
	if err := k.RunFor(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aabbcc" {
		t.Errorf("got %q", got)
	}
}

func TestCRCDetectsWireCorruption(t *testing.T) {
	k, a, b := wired(t)
	a.OutLink().CorruptNext(1)
	var ok = true
	b.OnReceive(func(th *threads.Thread, d *RxDesc) {
		b.StartRxDMA(d, make([]byte, len(d.Payload())), func(o bool) { ok = o })
	})
	k.After(0, func() {
		_ = a.Transmit(2, wire.DatalinkHeader{Type: 1}, false, []byte("to-be-mangled"))
	})
	if err := k.RunFor(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("hardware CRC accepted a corrupted frame")
	}
	_, _, crcErr := b.Stats()
	if crcErr != 1 {
		t.Errorf("crcErr = %d", crcErr)
	}
}

func TestNoRouteTransmitFails(t *testing.T) {
	k, a, _ := wired(t)
	errs := 0
	k.After(0, func() {
		if err := a.Transmit(42, wire.DatalinkHeader{Type: 1}, false, []byte("x")); err != nil {
			errs++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if errs != 1 {
		t.Error("transmit to unrouted node did not error")
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	k, a, _ := wired(t)
	errs := 0
	k.After(0, func() {
		if err := a.Transmit(2, wire.DatalinkHeader{Type: 1}, false, make([]byte, wire.MaxPayload+1)); err != nil {
			errs++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if errs != 1 {
		t.Error("oversize payload accepted")
	}
}

func TestDoorbellInterrupts(t *testing.T) {
	k, a, _ := wired(t)
	rang := false
	a.OnHostDoorbell(func(th *threads.Thread) { rang = true })
	hostIntr := false
	a.SetHostInterrupt(func() { hostIntr = true })
	k.After(0, func() {
		a.RingFromHost()
		a.InterruptHost()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !rang || !hostIntr {
		t.Errorf("doorbells: cab=%v host=%v", rang, hostIntr)
	}
}

func TestStartOfPacketTimingCoversHeader(t *testing.T) {
	// The start-of-packet interrupt fires once the datalink header has
	// arrived — i.e. ~(1+8 bytes)/12.5MBps = 720ns after first byte.
	k, a, b := wired(t)
	var sopAt sim.Time
	b.OnReceive(func(th *threads.Thread, d *RxDesc) {
		if sopAt == 0 {
			sopAt = k.Now()
		}
	})
	k.After(0, func() {
		_ = a.Transmit(2, wire.DatalinkHeader{Type: 1}, false, make([]byte, 1000))
	})
	if err := k.RunFor(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	first := sim.Time(700) // hub setup: first byte at 700ns
	headerTime := sim.Time(model.Default1990().FiberTime(1 + wire.DatalinkHeaderLen))
	want := first + headerTime
	// Interrupt dispatch adds scheduler entry time; the handler must not
	// run before the header has physically arrived.
	if sopAt < want {
		t.Errorf("start-of-packet handler at %v, before header arrival %v", sopAt, want)
	}
}

func TestRxDMAUndersizedBufferReleasesDesc(t *testing.T) {
	// Regression: the undersized-buffer bail-out in StartRxDMA reported
	// through Fatalf — which records the failure and returns — and then
	// dropped the descriptor on the floor, stranding it (and its frame)
	// instead of returning it to the CAB's free list.
	k := sim.NewKernel()
	c := New(k, model.Default1990(), 1)
	d := c.getDesc()
	d.Frame = make([]byte, wire.DatalinkHeaderLen+8+wire.CRCLen) // 8-byte payload
	c.StartRxDMA(d, make([]byte, 4), func(ok bool) {
		t.Error("done callback ran for an undersized buffer")
	})
	if n := c.descFree.Len(); n != 1 {
		t.Errorf("descFree.Len() = %d, want 1: the bail-out path must release the descriptor", n)
	}
	if err := k.Run(); err == nil {
		t.Error("Run returned nil, want the recorded undersized-buffer failure")
	}
}
