package vme

import (
	"testing"

	"nectar/internal/model"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func rig() (*sim.Kernel, *threads.Sched, *Bus) {
	k := sim.NewKernel()
	cost := model.Default1990().Clone()
	cost.ContextSwitch = 0
	s := threads.New(k, cost, "host")
	return k, s, New(k, cost, "vme0")
}

func TestPIOWordCost(t *testing.T) {
	k, s, b := rig()
	var end sim.Time
	s.Fork("p", threads.SystemPriority, func(th *threads.Thread) {
		b.PIO(th, 10) // 10 words at 1us each
		end = th.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(10*sim.Microsecond) {
		t.Errorf("10-word PIO took %v, want 10us", end)
	}
}

func TestPIOBytesRoundsUpToWords(t *testing.T) {
	k, s, b := rig()
	var end sim.Time
	s.Fork("p", threads.SystemPriority, func(th *threads.Thread) {
		b.PIOBytes(th, 5) // 2 words
		end = th.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(2*sim.Microsecond) {
		t.Errorf("5-byte PIO took %v, want 2us", end)
	}
}

func TestDMABandwidth(t *testing.T) {
	k, _, b := rig()
	var doneAt sim.Time
	k.After(0, func() {
		b.DMA(3750, func() { doneAt = k.Now() }) // 3750B at 3.75MB/s = 1ms
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(sim.Millisecond + 8*sim.Microsecond) // + setup
	if doneAt != want {
		t.Errorf("DMA done at %v, want %v", doneAt, want)
	}
}

func TestBusContention(t *testing.T) {
	// PIO issued during a DMA burst waits for the bus.
	k, s, b := rig()
	var pioEnd sim.Time
	k.After(0, func() {
		b.DMA(3750, func() {}) // bus busy ~1008us
	})
	s.Fork("p", threads.SystemPriority, func(th *threads.Thread) {
		th.Sleep(100 * sim.Microsecond)
		b.PIO(th, 1)
		pioEnd = th.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pioEnd < sim.Time(sim.Millisecond) {
		t.Errorf("PIO completed at %v during the DMA burst", pioEnd)
	}
}

func TestStats(t *testing.T) {
	k, s, b := rig()
	s.Fork("p", threads.SystemPriority, func(th *threads.Thread) {
		b.PIO(th, 3)
	})
	k.After(0, func() { b.DMA(100, func() {}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	pw, db := b.Stats()
	if pw != 3 || db != 100 {
		t.Errorf("stats = %d/%d, want 3/100", pw, db)
	}
}
