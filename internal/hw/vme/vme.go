// Package vme models the VME backplane connecting a host to its CAB
// (paper §2.2, §6). The bus supports programmed I/O — each 32-bit word
// read or write costs about 1 µs (§6.1) — and block DMA transfers at about
// 30 Mbit/s (§6.3), which is the bottleneck that caps host-to-host
// throughput in Figure 8.
//
// The bus is a serially-reusable resource: PIO accesses and DMA bursts
// occupy it exclusively, so a host polling loop contends with an in-flight
// block transfer, as on the real backplane.
package vme

import (
	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Bus is one VME backplane segment between a host and a CAB.
type Bus struct {
	k      *sim.Kernel
	cost   *model.CostModel
	name   string
	freeAt sim.Time

	pioWords uint64
	dmaBytes uint64
}

// New creates a bus.
func New(k *sim.Kernel, cost *model.CostModel, name string) *Bus {
	b := &Bus{k: k, cost: cost, name: name}
	m := obs.Ensure(k).Metrics()
	m.Gauge(obs.LayerVME, "pio_words", name, func() uint64 { return b.pioWords })
	m.Gauge(obs.LayerVME, "dma_bytes", name, func() uint64 { return b.dmaBytes })
	return b
}

// Name returns the bus name.
func (b *Bus) Name() string { return b.name }

// PIO performs words programmed-I/O accesses from the calling thread,
// blocking it for the bus-wait plus transfer time. Used for host loads and
// stores to mapped CAB memory.
func (b *Bus) PIO(t *threads.Thread, words int) {
	if words <= 0 {
		return
	}
	now := b.k.Now()
	wait := sim.Duration(0)
	if b.freeAt > now {
		wait = sim.Duration(b.freeAt - now)
	}
	d := sim.Duration(words) * b.cost.VMEWord
	b.freeAt = now + sim.Time(wait+d)
	b.pioWords += uint64(words)
	t.Compute(wait + d)
}

// PIOBytes is PIO for a byte count, rounded up to whole words.
func (b *Bus) PIOBytes(t *threads.Thread, n int) {
	b.PIO(t, (n+3)/4)
}

// DMA reserves the bus for a block transfer of n bytes and calls done when
// the transfer completes. The reservation includes the DMA setup cost.
// Callable from any context; the transfer proceeds without CPU involvement.
func (b *Bus) DMA(n int, done func()) {
	now := b.k.Now()
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	end := start + sim.Time(b.cost.VMEDMASetup+b.cost.VMEDMATime(n))
	b.freeAt = end
	b.dmaBytes += uint64(n)
	b.k.At(end, done)
}

// FreeAt returns when the bus next becomes free.
func (b *Bus) FreeAt() sim.Time { return b.freeAt }

// Stats returns cumulative (PIO words, DMA bytes).
func (b *Bus) Stats() (pioWords, dmaBytes uint64) { return b.pioWords, b.dmaBytes }
