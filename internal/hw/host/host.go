// Package host models a Nectar host computer (a Sun-4 in the paper's
// prototype): a CPU running user processes and the CAB device driver,
// attached to its CAB through the VME bus. User processes map CAB memory
// into their address spaces (paper §3.2) — modeled by direct access to the
// CAB's data region with per-word PIO charges on the bus.
package host

import (
	"nectar/internal/hw/cab"
	"nectar/internal/hw/vme"
	"nectar/internal/model"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Host is one host computer with its CAB and VME segment.
type Host struct {
	name  string
	k     *sim.Kernel
	cost  *model.CostModel
	Sched *threads.Sched // the host CPU
	Bus   *vme.Bus
	CAB   *cab.CAB

	isr func(t *threads.Thread) // CAB driver interrupt handler
}

// New creates a host attached to c via its own VME bus and wires the
// CAB-to-host interrupt line.
func New(k *sim.Kernel, cost *model.CostModel, name string, c *cab.CAB) *Host {
	h := &Host{
		name:  name,
		k:     k,
		cost:  cost,
		Sched: threads.New(k, cost, name),
		Bus:   vme.New(k, cost, name+".vme"),
		CAB:   c,
	}
	c.SetHostInterrupt(func() {
		if h.isr == nil {
			k.Fatalf("host %s: CAB interrupt with no driver handler", name)
			return
		}
		h.Sched.RaiseInterrupt("cab", h.isr)
	})
	return h
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Kernel returns the simulation kernel.
func (h *Host) Kernel() *sim.Kernel { return h.k }

// Cost returns the cost model.
func (h *Host) Cost() *model.CostModel { return h.cost }

// OnCABInterrupt registers the CAB device driver's interrupt handler
// (installed by the hostif runtime layer).
func (h *Host) OnCABInterrupt(fn func(t *threads.Thread)) { h.isr = fn }

// Run starts a user process (an application-priority thread on the host
// CPU) and returns its thread.
func (h *Host) Run(name string, fn func(t *threads.Thread)) *threads.Thread {
	return h.Sched.Fork(name, threads.AppPriority, fn)
}

// ReadCAB copies n bytes from mapped CAB memory into host memory,
// charging one VME PIO access per word.
//
//nectar:free-hop the per-word VME cost is charged inside Bus.PIO; this wrapper only sizes the access
func (h *Host) ReadCAB(t *threads.Thread, src []byte, dst []byte) {
	n := len(src)
	if len(dst) < n {
		sim.Panicf("host %s: ReadCAB dst %d < src %d", h.name, len(dst), n)
	}
	h.Bus.PIOBytes(t, n)
	copy(dst, src[:n])
}

// WriteCAB copies len(src) bytes from host memory into mapped CAB memory,
// charging one VME PIO access per word.
//
//nectar:free-hop the per-word VME cost is charged inside Bus.PIO; this wrapper only sizes the access
func (h *Host) WriteCAB(t *threads.Thread, dst []byte, src []byte) {
	if len(dst) < len(src) {
		sim.Panicf("host %s: WriteCAB dst %d < src %d", h.name, len(dst), len(src))
	}
	h.Bus.PIOBytes(t, len(src))
	copy(dst, src)
}

// Touch charges the cost of words uncached accesses to mapped CAB memory
// (shared data-structure manipulation from the host side).
//
//nectar:free-hop the per-word VME cost is charged inside Bus.PIO; Touch only counts the words
func (h *Host) Touch(t *threads.Thread, words int) {
	h.Bus.PIO(t, words)
}
