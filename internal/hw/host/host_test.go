package host

import (
	"bytes"
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/model"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func rig(t *testing.T) (*sim.Kernel, *Host, *cab.CAB) {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	c := cab.New(k, cost, 1)
	h := New(k, cost, "host1", c)
	return k, h, c
}

func TestWriteReadCAB(t *testing.T) {
	k, h, c := rig(t)
	buf := c.Data.Slice(0, 64)
	var back [64]byte
	var elapsed sim.Duration
	h.Run("proc", func(th *threads.Thread) {
		start := th.Now()
		h.WriteCAB(th, buf, bytes.Repeat([]byte{0x5A}, 64))
		h.ReadCAB(th, buf, back[:])
		elapsed = sim.Duration(th.Now() - start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if back[0] != 0x5A || back[63] != 0x5A {
		t.Error("data did not round-trip through CAB memory")
	}
	// 2 x 16 words of PIO at 1us each = 32us of bus time (plus dispatch).
	if elapsed < 32*sim.Microsecond {
		t.Errorf("64B write+read took %v; VME cost missing", elapsed)
	}
}

func TestCABInterruptDelivery(t *testing.T) {
	k, h, c := rig(t)
	got := false
	h.OnCABInterrupt(func(th *threads.Thread) { got = true })
	k.After(10*sim.Microsecond, func() { c.InterruptHost() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("CAB interrupt never reached the host driver")
	}
}

func TestInterruptWithoutHandlerFails(t *testing.T) {
	k, _, c := rig(t)
	k.After(0, func() { c.InterruptHost() })
	if err := k.Run(); err == nil {
		t.Error("interrupt with no driver handler did not fail")
	}
}

func TestProcessesArePreemptedByDriver(t *testing.T) {
	// A long-running user process must not delay the CAB driver's
	// interrupt handler (interrupts preempt application priority).
	k, h, c := rig(t)
	var isrAt sim.Time
	h.OnCABInterrupt(func(th *threads.Thread) { isrAt = th.Now() })
	h.Run("spinner", func(th *threads.Thread) {
		th.Compute(10 * sim.Millisecond)
	})
	k.After(100*sim.Microsecond, func() { c.InterruptHost() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if isrAt == 0 || isrAt > sim.Time(200*sim.Microsecond) {
		t.Errorf("driver ISR ran at %v; not preempting the user process", isrAt)
	}
}

func TestTouchChargesBus(t *testing.T) {
	k, h, _ := rig(t)
	var elapsed sim.Duration
	h.Run("proc", func(th *threads.Thread) {
		start := th.Now()
		h.Touch(th, 10)
		elapsed = sim.Duration(th.Now() - start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 10*sim.Microsecond {
		t.Errorf("10-word touch took %v", elapsed)
	}
}
