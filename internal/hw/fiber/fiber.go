// Package fiber models the Nectar fiber-optic links (paper §2.1): 100
// Mbit/s unidirectional point-to-point fibers connecting CABs to HUB I/O
// ports and HUBs to each other.
//
// Transmission is modeled at packet granularity with cut-through timing:
// the receiver learns when the first byte arrives and when the last byte
// will arrive, so downstream hardware (HUB forwarding, CAB start-of-packet
// interrupts, DMA overlap) can act while the packet is still streaming in —
// which is essential to reproducing the paper's latency breakdown (the
// datalink layer's start-of-data upcall runs "while the remainder of the
// packet is being received", §4.1).
//
// Links support fault injection (drop or corrupt the next N packets) so
// tests can exercise the retransmission paths of RMP and TCP with real
// CRC/checksum failures.
package fiber

import (
	"fmt"

	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/sim"
)

// Packet is a frame in flight, together with its remaining source route.
// Frame holds the datalink header, payload, and CRC trailer as real bytes;
// the route prefix is represented structurally and costs one byte per
// remaining hop on the wire.
//
// Route's backing array is treated as read-only while the packet is in
// flight: HUBs consume hops by re-slicing (Route = Route[1:]), never by
// writing, so senders may share their route-table entry without copying.
type Packet struct {
	Route   []byte // remaining HUB output-port numbers; empty = deliverable
	Frame   []byte // datalink header + payload + CRC trailer
	Circuit bool   // riding a pre-established circuit (no per-hop setup)

	pool *Pool // owning pool for Release; nil = GC-managed
}

// Disown detaches the packet from its owning pool: Release becomes a no-op
// and the frame is left to the garbage collector. The sharded cluster calls
// it when a packet crosses a shard boundary — pools are single-threaded by
// construction, so a frame must never be returned to its origin shard's
// pool from another shard's goroutine.
func (p *Packet) Disown() { p.pool = nil }

// WireLen is the packet's current on-the-wire length: a route-length byte,
// the remaining route bytes, and the frame.
func (p *Packet) WireLen() int { return 1 + len(p.Route) + len(p.Frame) }

// Endpoint consumes packets from a link: a HUB input port or a CAB's
// receive interface.
type Endpoint interface {
	// PacketArriving is called at the virtual instant the packet's first
	// byte arrives. end is when its last byte will have arrived, assuming
	// the upstream keeps streaming at line rate.
	PacketArriving(pkt *Packet, end sim.Time)
}

// Link is one unidirectional fiber. Packets serialize at the line rate;
// if the fiber is busy, new packets queue behind it (modeling the sender's
// output FIFO plus low-level flow control).
type Link struct {
	k    *sim.Kernel
	cost *model.CostModel
	name string
	dst  Endpoint

	freeAt sim.Time

	// Gateway role (sharded execution): when this link feeds a HUB input
	// port whose forwards may cross shard boundaries, it doubles as the
	// shard's sim.Gateway, bounding the earliest possible cross-shard
	// output. gwDelay is the HUB setup latency added to every forward;
	// gwCross decides per packet (by its next route hop) whether the
	// forward leaves the shard; gwPending holds the start times of
	// cross-capable deliveries already in flight on this link, in
	// monotonically non-decreasing order (links serialize).
	gwDelay   sim.Duration
	gwCross   func(port byte) bool
	gwPending []sim.Time

	// Fault injection.
	dropNext    int
	corruptNext int
	faultFn     func(seq uint64) (drop, corrupt bool)

	// Stats.
	sent      uint64
	dropped   uint64
	corrupted uint64
	bytes     uint64
	crossSent uint64 // cross-capable sends (next hop leaves the shard)

	obs *obs.Observer
}

// NewLink creates a fiber link delivering to dst.
func NewLink(k *sim.Kernel, cost *model.CostModel, name string, dst Endpoint) *Link {
	if dst == nil {
		panic("fiber: link with nil destination")
	}
	l := &Link{k: k, cost: cost, name: name, dst: dst}
	l.obs = obs.Ensure(k)
	m := l.obs.Metrics()
	m.Gauge(obs.LayerFiber, "frames", name, func() uint64 { return l.sent })
	m.Gauge(obs.LayerFiber, "bytes", name, func() uint64 { return l.bytes })
	m.Gauge(obs.LayerFiber, "dropped", name, func() uint64 { return l.dropped })
	m.Gauge(obs.LayerFiber, "corrupted", name, func() uint64 { return l.corrupted })
	return l
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Send begins transmitting pkt at the current instant, or as soon as the
// fiber is free. Callable from kernel or proc context.
func (l *Link) Send(pkt *Packet) { l.SendAt(pkt, l.k.Now()) }

// SendAt begins transmitting pkt no earlier than t (used by HUB cut-through
// forwarding, where the first byte only becomes available after the setup
// delay).
func (l *Link) SendAt(pkt *Packet, t sim.Time) {
	if t < l.k.Now() {
		t = l.k.Now()
	}
	start := t
	if l.freeAt > start {
		start = l.freeAt
	}
	dur := l.cost.FiberTime(pkt.WireLen())
	end := start + sim.Time(dur)
	l.freeAt = end

	drop, corrupt := false, false
	if l.faultFn != nil {
		drop, corrupt = l.faultFn(l.sent + l.dropped)
	}
	if l.dropNext > 0 || drop {
		if l.dropNext > 0 {
			l.dropNext--
		}
		l.dropped++
		l.obs.CapturePacket(l.name, pkt.Frame, true, false)
		pkt.Release() // frame dead: the capture tap decodes synchronously
		return
	}
	corrupted := false
	if l.corruptNext > 0 || corrupt {
		if l.corruptNext > 0 {
			l.corruptNext--
		}
		l.corrupted++
		corrupted = true
		// Flip a bit mid-frame; the CRC trailer will expose it.
		if len(pkt.Frame) > 0 {
			pkt.Frame[len(pkt.Frame)/2] ^= 0x10
		}
	}
	l.sent++
	l.bytes += uint64(pkt.WireLen())
	l.obs.CapturePacket(l.name, pkt.Frame, false, corrupted)
	if l.obs.Tracing() {
		l.obs.InstantArg(0, obs.LayerFiber, "tx", l.name, 0, pkt.WireLen())
	}
	if l.gwCross != nil && len(pkt.Route) > 0 && l.gwCross(pkt.Route[0]) {
		// Cross-capable: its arrival constrains the shard's earliest
		// output until the delivery fires (deliveries fire in start
		// order, so popping the front matches this append).
		l.crossSent++
		l.gwPending = append(l.gwPending, start)
		l.k.At(start, func() {
			l.gwPending = l.gwPending[1:]
			l.dst.PacketArriving(pkt, end)
		})
		return
	}
	l.k.At(start, func() { l.dst.PacketArriving(pkt, end) })
}

// SetGateway marks the link as a shard-boundary gateway: forwards of
// packets arriving at its destination HUB port incur delay (the HUB setup
// latency), and cross reports whether a packet whose next route hop is
// port will leave the shard. The link then implements sim.Gateway.
func (l *Link) SetGateway(delay sim.Duration, cross func(port byte) bool) {
	l.gwDelay = delay
	l.gwCross = cross
}

// EarliestOutput implements sim.Gateway: a lower bound on the timestamp of
// any future cross-shard forward fed by this link, given the owning
// domain's next event time. Two sources bound it: cross-capable deliveries
// already in flight (gwPending), and hypothetical future sends, which
// cannot start before the link is free nor before the domain's next event.
// Every forward then adds the HUB setup delay — the lookahead that makes
// conservative windows non-trivial even at zero queueing.
func (l *Link) EarliestOutput(net sim.Time) sim.Time {
	e := sim.MaxTime
	if net < sim.MaxTime {
		e = net
		if l.freeAt > e {
			e = l.freeAt
		}
	}
	if len(l.gwPending) > 0 && l.gwPending[0] < e {
		e = l.gwPending[0]
	}
	if e >= sim.MaxTime {
		return sim.MaxTime
	}
	return e + sim.Time(l.gwDelay)
}

// Busy reports whether the fiber is occupied at the current instant.
func (l *Link) Busy() bool { return l.freeAt > l.k.Now() }

// FreeAt returns when the fiber becomes free.
func (l *Link) FreeAt() sim.Time { return l.freeAt }

// DropNext discards the next n packets presented for transmission.
func (l *Link) DropNext(n int) { l.dropNext += n }

// CorruptNext flips a bit in each of the next n packets.
func (l *Link) CorruptNext(n int) { l.corruptNext += n }

// SetFaultFn installs a deterministic per-packet fault pattern: fn is
// called with the packet's ordinal and decides whether it is dropped or
// corrupted. Tests use it to subject reliable protocols to arbitrary
// loss patterns. Pass nil to clear.
func (l *Link) SetFaultFn(fn func(seq uint64) (drop, corrupt bool)) { l.faultFn = fn }

// Stats returns (packets sent, packets dropped, packets corrupted, bytes).
func (l *Link) Stats() (sent, dropped, corrupted, bytes uint64) {
	return l.sent, l.dropped, l.corrupted, l.bytes
}

// CrossShardFrames reports how many frames this gateway link carried whose
// next route hop left the shard. It is deliberately kept out of the obs
// registry: the metric only exists under sharded execution, and the merged
// snapshot must stay byte-identical to a sequential run's.
func (l *Link) CrossShardFrames() uint64 { return l.crossSent }

func (l *Link) String() string {
	return fmt.Sprintf("fiber(%s)", l.name)
}
