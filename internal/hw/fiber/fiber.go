// Package fiber models the Nectar fiber-optic links (paper §2.1): 100
// Mbit/s unidirectional point-to-point fibers connecting CABs to HUB I/O
// ports and HUBs to each other.
//
// Transmission is modeled at packet granularity with cut-through timing:
// the receiver learns when the first byte arrives and when the last byte
// will arrive, so downstream hardware (HUB forwarding, CAB start-of-packet
// interrupts, DMA overlap) can act while the packet is still streaming in —
// which is essential to reproducing the paper's latency breakdown (the
// datalink layer's start-of-data upcall runs "while the remainder of the
// packet is being received", §4.1).
//
// Links support fault injection (drop or corrupt the next N packets) so
// tests can exercise the retransmission paths of RMP and TCP with real
// CRC/checksum failures.
package fiber

import (
	"fmt"

	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/sim"
)

// Packet is a frame in flight, together with its remaining source route.
// Frame holds the datalink header, payload, and CRC trailer as real bytes;
// the route prefix is represented structurally and costs one byte per
// remaining hop on the wire.
//
// Route's backing array is treated as read-only while the packet is in
// flight: HUBs consume hops by re-slicing (Route = Route[1:]), never by
// writing, so senders may share their route-table entry without copying.
type Packet struct {
	Route   []byte // remaining HUB output-port numbers; empty = deliverable
	Frame   []byte // datalink header + payload + CRC trailer
	Circuit bool   // riding a pre-established circuit (no per-hop setup)

	pool *Pool // owning pool for Release; nil = GC-managed
}

// Disown detaches the packet from its owning pool: Release becomes a no-op
// and the frame is left to the garbage collector. The sharded cluster calls
// it when a packet crosses a shard boundary — pools are single-threaded by
// construction, so a frame must never be returned to its origin shard's
// pool from another shard's goroutine.
func (p *Packet) Disown() { p.pool = nil }

// WireLen is the packet's current on-the-wire length: a route-length byte,
// the remaining route bytes, and the frame.
func (p *Packet) WireLen() int { return 1 + len(p.Route) + len(p.Frame) }

// Endpoint consumes packets from a link: a HUB input port or a CAB's
// receive interface.
type Endpoint interface {
	// PacketArriving is called at the virtual instant the packet's first
	// byte arrives. end is when its last byte will have arrived, assuming
	// the upstream keeps streaming at line rate.
	PacketArriving(pkt *Packet, end sim.Time)
}

// Link is one unidirectional fiber. Packets serialize at the line rate;
// if the fiber is busy, new packets queue behind it (modeling the sender's
// output FIFO plus low-level flow control).
type Link struct {
	k    *sim.Kernel
	cost *model.CostModel
	name string
	dst  Endpoint

	freeAt sim.Time

	// Gateway role (sharded execution): when this link feeds a HUB input
	// port whose forwards may cross shard boundaries, it doubles as the
	// shard's sim.Gateway / sim.ChannelGateway, bounding the earliest
	// possible cross-shard output. gwDelay is the HUB setup latency added
	// to every forward; gwCross resolves a packet's next route hop to the
	// destination domain it would leave the shard for (cross=false for
	// local forwards); gwPending holds the cross-capable deliveries
	// already in flight on this link, in monotonically non-decreasing
	// start order (links serialize); gwTxFloor, when set, lower-bounds
	// the start of any *future* transmission on this link given the
	// owning domain's activity floor (see SetTxFloor).
	gwDelay   sim.Duration
	gwCross   func(port byte) (dst int, cross bool)
	gwTxFloor func(actFloor sim.Time) sim.Time
	gwReach   func(dst int) bool
	gwGuard   func(pkt *Packet)
	gwPending []gwFrame

	// Fault injection.
	dropNext    int
	corruptNext int
	faultFn     func(seq uint64) (drop, corrupt bool)

	// Stats.
	sent      uint64
	dropped   uint64
	corrupted uint64
	bytes     uint64
	crossSent uint64 // cross-capable sends (next hop leaves the shard)

	obs *obs.Observer
}

// NewLink creates a fiber link delivering to dst.
func NewLink(k *sim.Kernel, cost *model.CostModel, name string, dst Endpoint) *Link {
	if dst == nil {
		panic("fiber: link with nil destination")
	}
	l := &Link{k: k, cost: cost, name: name, dst: dst}
	l.obs = obs.Ensure(k)
	m := l.obs.Metrics()
	m.Gauge(obs.LayerFiber, "frames", name, func() uint64 { return l.sent })
	m.Gauge(obs.LayerFiber, "bytes", name, func() uint64 { return l.bytes })
	m.Gauge(obs.LayerFiber, "dropped", name, func() uint64 { return l.dropped })
	m.Gauge(obs.LayerFiber, "corrupted", name, func() uint64 { return l.corrupted })
	return l
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Send begins transmitting pkt at the current instant, or as soon as the
// fiber is free. Callable from kernel or proc context.
//
//nectar:takes-ownership pkt forwarded to SendAt, which assumes the frame
func (l *Link) Send(pkt *Packet) { l.SendAt(pkt, l.k.Now()) }

// SendAt begins transmitting pkt no earlier than t (used by HUB cut-through
// forwarding, where the first byte only becomes available after the setup
// delay).
//
//nectar:takes-ownership pkt released on the drop path, otherwise handed to the receiving endpoint
func (l *Link) SendAt(pkt *Packet, t sim.Time) {
	if l.gwGuard != nil {
		l.gwGuard(pkt)
	}
	if t < l.k.Now() {
		t = l.k.Now()
	}
	start := t
	if l.freeAt > start {
		start = l.freeAt
	}
	dur := l.cost.FiberTime(pkt.WireLen())
	end := start + sim.Time(dur)
	l.freeAt = end

	drop, corrupt := false, false
	if l.faultFn != nil {
		drop, corrupt = l.faultFn(l.sent + l.dropped)
	}
	if l.dropNext > 0 || drop {
		if l.dropNext > 0 {
			l.dropNext--
		}
		l.dropped++
		l.obs.CapturePacket(l.name, pkt.Frame, true, false)
		pkt.Release() // frame dead: the capture tap decodes synchronously
		return
	}
	corrupted := false
	if l.corruptNext > 0 || corrupt {
		if l.corruptNext > 0 {
			l.corruptNext--
		}
		l.corrupted++
		corrupted = true
		// Flip a bit mid-frame; the CRC trailer will expose it.
		if len(pkt.Frame) > 0 {
			pkt.Frame[len(pkt.Frame)/2] ^= 0x10
		}
	}
	l.sent++
	l.bytes += uint64(pkt.WireLen())
	l.obs.CapturePacket(l.name, pkt.Frame, false, corrupted)
	if l.obs.Tracing() {
		l.obs.InstantArg(0, obs.LayerFiber, "tx", l.name, 0, pkt.WireLen())
	}
	if l.gwCross != nil && len(pkt.Route) > 0 {
		if dstDom, cross := l.gwCross(pkt.Route[0]); cross {
			// Cross-capable: its arrival constrains the shard's earliest
			// output toward dstDom until the delivery fires (deliveries
			// fire in start order, so popping the front matches this
			// append).
			l.crossSent++
			l.gwPending = append(l.gwPending, gwFrame{start: start, dst: int32(dstDom)})
			l.k.At(start, func() {
				l.gwPending = l.gwPending[1:]
				l.dst.PacketArriving(pkt, end)
			})
			return
		}
	}
	l.k.At(start, func() { l.dst.PacketArriving(pkt, end) })
}

// gwFrame is one cross-capable delivery in flight on a gateway link: when
// its transmission started and which domain its next route hop forwards
// into.
type gwFrame struct {
	start sim.Time
	dst   int32
}

// SetGateway marks the link as a shard-boundary gateway: forwards of
// packets arriving at its destination HUB port incur delay (the HUB setup
// latency), and cross resolves a packet's next route hop to the domain it
// would leave the shard for (cross=false when the forward stays local).
// The link then implements sim.Gateway and sim.ChannelGateway.
func (l *Link) SetGateway(delay sim.Duration, cross func(port byte) (dst int, crossShard bool)) {
	l.gwDelay = delay
	l.gwCross = cross
}

// SetTxFloor installs a lower bound on the start time of any future
// transmission on this link, as a function of the owning domain's activity
// floor (the earliest instant any event can execute in the domain's
// current window). The sharded cluster wires it to the sending CAB's
// transmit-preparation state: a frame send always consumes datalink
// processing plus DMA setup CPU time between the event that triggers it
// and the fiber transmission, so an idle CAB cannot start a frame before
// actFloor plus that margin, and a CAB already preparing a frame cannot
// start one before the preparation completes. Pass nil to clear (the
// bound degrades to actFloor itself).
func (l *Link) SetTxFloor(fn func(actFloor sim.Time) sim.Time) { l.gwTxFloor = fn }

// SetReach installs the link's declared channel topology: reach(dst)
// reports whether any frame this link can ever carry may be forwarded
// into domain dst. Wired by clusters whose Config declares the complete
// traffic matrix (Config.Flows); destinations outside the declared reach
// then return an unbounded EarliestOutputTo, which is what lets a
// well-partitioned cluster run whole horizons per window. Pass nil to
// clear (every destination reachable — the conservative default).
func (l *Link) SetReach(fn func(dst int) bool) { l.gwReach = fn }

// SetSendGuard installs a check run on every packet presented for
// transmission (before fault injection). Clusters with a declared traffic
// matrix use it to panic deterministically on a frame to an undeclared
// destination — the declaration is a contract, and a silent violation
// would make the sharded bounds unsound. The guard sees the whole packet:
// on multi-hop fabrics the first route byte names a trunk, not the
// destination, so guards resolve the destination from the frame's
// datalink header instead. Pass nil to clear.
func (l *Link) SetSendGuard(fn func(pkt *Packet)) { l.gwGuard = fn }

// EarliestOutput implements sim.Gateway: a lower bound on the timestamp of
// any future cross-shard forward fed by this link, given the owning
// domain's next event time. Two sources bound it: cross-capable deliveries
// already in flight (gwPending), and hypothetical future sends, which
// cannot start before the link is free nor before the domain's next event.
// Every forward then adds the HUB setup delay — the lookahead that makes
// conservative windows non-trivial even at zero queueing.
func (l *Link) EarliestOutput(net sim.Time) sim.Time {
	e := sim.MaxTime
	if net < sim.MaxTime {
		e = net
		if l.freeAt > e {
			e = l.freeAt
		}
	}
	if len(l.gwPending) > 0 && l.gwPending[0].start < e {
		e = l.gwPending[0].start
	}
	if e >= sim.MaxTime {
		return sim.MaxTime
	}
	return e + sim.Time(l.gwDelay)
}

// EarliestOutputTo implements sim.ChannelGateway: a lower bound on the
// timestamp of any future forward from this link into domain dst,
// given actFloor — a lower bound on the earliest instant the owning
// domain can execute any event. It sharpens EarliestOutput twice over:
// in-flight deliveries destined to *other* domains no longer cap the
// bound for dst, and future sends are pushed past the transmit floor
// (the CPU time every frame send provably consumes before reaching the
// fiber). Zero-allocation: called per (gateway, destination) pair in
// every window choose phase.
//
//nectar:hotpath
func (l *Link) EarliestOutputTo(dst int, actFloor sim.Time) sim.Time {
	if l.gwReach != nil && !l.gwReach(dst) {
		// Declared channel topology: no frame this link carries can ever
		// be forwarded into dst, so this gateway does not constrain it.
		return sim.MaxTime
	}
	e := sim.MaxTime
	if actFloor < sim.MaxTime {
		e = actFloor
		if l.gwTxFloor != nil {
			e = l.gwTxFloor(actFloor)
		}
		if l.freeAt > e {
			e = l.freeAt
		}
	}
	// In-flight deliveries serialize, so starts are non-decreasing and
	// the first entry destined to dst is the earliest.
	for i := range l.gwPending {
		if int(l.gwPending[i].dst) == dst {
			if l.gwPending[i].start < e {
				e = l.gwPending[i].start
			}
			break
		}
	}
	if e >= sim.MaxTime {
		return sim.MaxTime
	}
	return e + sim.Time(l.gwDelay)
}

// Busy reports whether the fiber is occupied at the current instant.
func (l *Link) Busy() bool { return l.freeAt > l.k.Now() }

// FreeAt returns when the fiber becomes free.
func (l *Link) FreeAt() sim.Time { return l.freeAt }

// DropNext discards the next n packets presented for transmission.
func (l *Link) DropNext(n int) { l.dropNext += n }

// CorruptNext flips a bit in each of the next n packets.
func (l *Link) CorruptNext(n int) { l.corruptNext += n }

// SetFaultFn installs a deterministic per-packet fault pattern: fn is
// called with the packet's ordinal and decides whether it is dropped or
// corrupted. Tests use it to subject reliable protocols to arbitrary
// loss patterns. Pass nil to clear.
func (l *Link) SetFaultFn(fn func(seq uint64) (drop, corrupt bool)) { l.faultFn = fn }

// Stats returns (packets sent, packets dropped, packets corrupted, bytes).
func (l *Link) Stats() (sent, dropped, corrupted, bytes uint64) {
	return l.sent, l.dropped, l.corrupted, l.bytes
}

// CrossShardFrames reports how many frames this gateway link carried whose
// next route hop left the shard. It is deliberately kept out of the obs
// registry: the metric only exists under sharded execution, and the merged
// snapshot must stay byte-identical to a sequential run's.
func (l *Link) CrossShardFrames() uint64 { return l.crossSent }

func (l *Link) String() string {
	return fmt.Sprintf("fiber(%s)", l.name)
}
