package fiber

import "nectar/internal/pool"

// Pool recycles Packet structs and frame buffers on the fast path
// (CAB Transmit → fiber → HUB → CAB receive DMA). A Fig 7/8 sweep pushes
// hundreds of thousands of frames through the wire path; without reuse each
// one is a fresh Packet plus a fresh frame slice, and the GC dominates the
// sweep's wall clock.
//
// The pool is single-threaded by construction: all gets and releases happen
// inside one simulation kernel, which only ever runs one goroutine at a
// time, so there are no locks. Releasing is a pure optimization — a path
// that drops a packet without releasing it merely falls back to GC behavior
// — but a release must only happen when the frame is provably dead (after
// the receive DMA has copied it out, or on a drop). The terminal points
// are:
//
//   - Link.SendAt's fault-injection drop path,
//   - the datalink layer's pre-DMA drop paths (bad header, unknown type,
//     no buffer space, start-of-data veto), and
//   - CAB.StartRxDMA completion, after the CRC check and payload copy.
type Pool struct {
	frames  pool.FreeList[[]byte]
	packets pool.FreeList[*Packet]

	// Stats: hits (reuses) vs misses (fresh allocations).
	frameHits, frameMisses uint64
	pktHits, pktMisses     uint64
}

// GetFrame returns a frame buffer of length n, reusing pooled storage when
// its capacity suffices. Contents are undefined; callers overwrite every
// byte (header, payload, CRC trailer). The make on the miss path is the
// pool filling itself: in steady state the hit path is allocation-free.
//
//nectar:hotpath
func (p *Pool) GetFrame(n int) []byte {
	if p != nil {
		if f, ok := p.frames.Peek(); ok && cap(f) >= n {
			p.frames.Get() //nectar:leak-ok the popped slot is f, already in hand from the preceding Peek
			p.frameHits++
			return f[:n]
		}
		// Empty, or the top frame is too small for this send: leave it
		// for a smaller one.
		p.frameMisses++
	}
	return make([]byte, n)
}

// GetPacket returns a Packet owned by this pool; Release returns it.
//
//nectar:hotpath
func (p *Pool) GetPacket() *Packet {
	if p != nil {
		if pkt, ok := p.packets.Get(); ok {
			p.pktHits++
			return pkt
		}
		p.pktMisses++
	}
	return &Packet{pool: p}
}

// Release returns pkt and its frame to the pool. It must be called exactly
// once, only when no reference to pkt or pkt.Frame survives. Safe to call
// on packets built without a pool (no-op beyond clearing).
//
//nectar:hotpath
func (pkt *Packet) Release() {
	p := pkt.pool
	if p == nil {
		return
	}
	if pkt.Frame != nil {
		p.frames.Put(pkt.Frame)
	}
	pkt.Frame = nil
	pkt.Route = nil
	pkt.Circuit = false
	p.packets.Put(pkt)
}

// Stats reports (frame reuses, frame allocations, packet reuses, packet
// allocations).
func (p *Pool) Stats() (frameHits, frameMisses, pktHits, pktMisses uint64) {
	if p == nil {
		return
	}
	return p.frameHits, p.frameMisses, p.pktHits, p.pktMisses
}
