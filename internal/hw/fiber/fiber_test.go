package fiber

import (
	"testing"

	"nectar/internal/model"
	"nectar/internal/sim"
)

type sink struct {
	k   *sim.Kernel
	got []*Packet
}

func (s *sink) PacketArriving(p *Packet, end sim.Time) { s.got = append(s.got, p) }

func TestWireLen(t *testing.T) {
	p := &Packet{Route: []byte{1, 2}, Frame: make([]byte, 100)}
	if p.WireLen() != 103 { // route-length byte + 2 route bytes + frame
		t.Errorf("WireLen = %d, want 103", p.WireLen())
	}
}

func TestFaultFnPattern(t *testing.T) {
	k := sim.NewKernel()
	s := &sink{k: k}
	l := NewLink(k, model.Default1990(), "l", s)
	l.SetFaultFn(func(seq uint64) (bool, bool) {
		return seq%2 == 0, false // drop every even packet
	})
	k.After(0, func() {
		for i := 0; i < 6; i++ {
			l.Send(&Packet{Frame: make([]byte, 10)})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 3 {
		t.Errorf("delivered %d of 6, want 3", len(s.got))
	}
	sent, dropped, _, _ := l.Stats()
	if sent != 3 || dropped != 3 {
		t.Errorf("stats sent=%d dropped=%d", sent, dropped)
	}
	l.SetFaultFn(nil)
	k.After(0, func() { l.Send(&Packet{Frame: make([]byte, 10)}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 4 {
		t.Error("cleared fault fn still dropping")
	}
}

func TestBusyAndFreeAt(t *testing.T) {
	k := sim.NewKernel()
	s := &sink{k: k}
	l := NewLink(k, model.Default1990(), "l", s)
	k.After(0, func() {
		l.Send(&Packet{Frame: make([]byte, 1249)}) // 1250 wire bytes = 100us
		if !l.Busy() {
			k.Fatalf("link not busy during transmission")
		}
		if l.FreeAt() != sim.Time(100*sim.Microsecond) {
			k.Fatalf("FreeAt = %v", l.FreeAt())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEarliestOutputZeroAlloc pins the hot-path contract of the safe-bound
// computation: the per-window choose phase calls EarliestOutputTo once per
// (gateway, destination) pair per fixpoint pass, so a single allocation
// there multiplies into the scheduler's critical path.
func TestEarliestOutputZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	s := &sink{k: k}
	l := NewLink(k, model.Default1990(), "gw", s)
	l.SetGateway(700, func(port byte) (int, bool) { return int(port) % 2, port%2 == 1 })
	l.SetTxFloor(func(actFloor sim.Time) sim.Time { return actFloor + 12000 })
	// Populate gwPending so the destination scan runs.
	k.After(0, func() {
		for i := 0; i < 4; i++ {
			l.Send(&Packet{Route: []byte{byte(i)}, Frame: make([]byte, 64)})
		}
		var sum sim.Time
		if avg := testing.AllocsPerRun(100, func() {
			sum += l.EarliestOutputTo(1, k.Now())
			sum += l.EarliestOutputTo(0, sim.MaxTime)
			sum += l.EarliestOutput(k.Now())
		}); avg != 0 {
			k.Fatalf("safe-bound computation allocates: %.1f allocs/run", avg)
		}
		if sum == 0 {
			k.Fatalf("bound computation returned zero")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil destination accepted")
		}
	}()
	NewLink(sim.NewKernel(), model.Default1990(), "l", nil)
}
