// Package ether models the 10 Mbit/s Ethernet baseline of paper §6.3: the
// hosts' on-board interfaces bypass the VME bus, which is why Ethernet
// (7.2 Mbit/s) beats the CAB-as-network-device level (6.4 Mbit/s) despite
// a 10x slower wire. The medium is a shared segment with per-frame
// serialization; protocol processing runs on the host CPU at the
// host-stack per-packet cost.
package ether

import (
	"nectar/internal/hw/host"
	"nectar/internal/model"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// MTU is the Ethernet payload MTU.
const MTU = 1500

// frameOverhead is preamble+header+CRC+gap, charged on the wire.
const frameOverhead = 38

// Segment is one shared Ethernet segment.
type Segment struct {
	k      *sim.Kernel
	cost   *model.CostModel
	freeAt sim.Time
	ifaces []*Iface

	frames, bytes uint64
}

// NewSegment creates an Ethernet segment.
func NewSegment(k *sim.Kernel, cost *model.CostModel) *Segment {
	return &Segment{k: k, cost: cost}
}

// Iface is a host's on-board Ethernet interface.
type Iface struct {
	seg  *Segment
	host *host.Host
	addr int
	rx   func(t *threads.Thread, n int) // receive handler, interrupt context
}

// Attach adds a host to the segment and returns its interface.
func (s *Segment) Attach(h *host.Host) *Iface {
	i := &Iface{seg: s, host: h, addr: len(s.ifaces)}
	s.ifaces = append(s.ifaces, i)
	return i
}

// OnReceive registers the interface's receive handler (runs as a host
// interrupt per arriving frame).
func (i *Iface) OnReceive(fn func(t *threads.Thread, n int)) { i.rx = fn }

// Addr returns the interface's segment address.
func (i *Iface) Addr() int { return i.addr }

// Send transmits an n-byte payload frame to dst. The caller is charged
// the on-board driver cost; the frame then serializes on the shared
// medium and raises a receive interrupt at the destination host.
func (i *Iface) Send(ctx exec.Context, dst int, n int) {
	if n > MTU {
		panic("ether: frame exceeds MTU")
	}
	s := i.seg
	ctx.Compute(s.cost.EtherDriverPerPacket)
	start := s.k.Now()
	if s.freeAt > start {
		start = s.freeAt // carrier sense: wait for the medium
	}
	dur := s.cost.EtherTime(n + frameOverhead)
	end := start + sim.Time(dur)
	s.freeAt = end
	s.frames++
	s.bytes += uint64(n)
	target := s.ifaces[dst]
	s.k.At(end, func() {
		if target.rx != nil {
			target.host.Sched.RaiseInterrupt("ether-rx", func(t *threads.Thread) {
				t.Compute(s.cost.EtherDriverPerPacket / 2)
				target.rx(t, n)
			})
		}
	})
}

// Stats returns (frames, payload bytes) carried by the segment.
func (s *Segment) Stats() (frames, bytes uint64) { return s.frames, s.bytes }
