package ether

import (
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/host"
	"nectar/internal/model"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func rig(t *testing.T) (*sim.Kernel, *model.CostModel, *host.Host, *host.Host, *Segment) {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	ca := cab.New(k, cost, 1)
	cb := cab.New(k, cost, 2)
	ha := host.New(k, cost, "hostA", ca)
	hb := host.New(k, cost, "hostB", cb)
	return k, cost, ha, hb, NewSegment(k, cost)
}

func TestFrameDelivery(t *testing.T) {
	k, _, ha, hb, seg := rig(t)
	ifA := seg.Attach(ha)
	ifB := seg.Attach(hb)
	var got []int
	ifB.OnReceive(func(th *threads.Thread, n int) { got = append(got, n) })
	ha.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, ha)
		ifA.Send(ctx, ifB.Addr(), 100)
		ifA.Send(ctx, ifB.Addr(), 1500)
	})
	if err := k.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 100 || got[1] != 1500 {
		t.Fatalf("got %v", got)
	}
	frames, bytes := seg.Stats()
	if frames != 2 || bytes != 1600 {
		t.Errorf("stats = %d/%d", frames, bytes)
	}
}

func TestMediumSerialization(t *testing.T) {
	// Two senders share the 10 Mbit/s medium: frames serialize.
	k, _, ha, hb, seg := rig(t)
	ifA := seg.Attach(ha)
	ifB := seg.Attach(hb)
	var arrivals []sim.Time
	ifB.OnReceive(func(th *threads.Thread, n int) { arrivals = append(arrivals, th.Now()) })
	ha.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, ha)
		ifA.Send(ctx, ifB.Addr(), 1500)
		ifA.Send(ctx, ifB.Addr(), 1500)
	})
	if err := k.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// 1538 bytes at 1.25 MB/s = ~1230us apart at least.
	if gap := sim.Duration(arrivals[1] - arrivals[0]); gap < 1200*sim.Microsecond {
		t.Errorf("frames %v apart; medium not serializing", gap)
	}
}

func TestOversizeFramePanics(t *testing.T) {
	k, _, ha, hb, seg := rig(t)
	ifA := seg.Attach(ha)
	ifB := seg.Attach(hb)
	ha.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, ha)
		ifA.Send(ctx, ifB.Addr(), MTU+1)
	})
	if err := k.RunFor(sim.Millisecond); err == nil {
		t.Error("oversize frame did not fail")
	}
}
