package hub

import (
	"testing"

	"nectar/internal/hw/fiber"
	"nectar/internal/model"
	"nectar/internal/sim"
)

type capture struct {
	k       *sim.Kernel
	arrived []arrival
}

type arrival struct {
	pkt   *fiber.Packet
	first sim.Time
	end   sim.Time
}

func (c *capture) PacketArriving(pkt *fiber.Packet, end sim.Time) {
	c.arrived = append(c.arrived, arrival{pkt, c.k.Now(), end})
}

func frame(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestLinkSerializationTime(t *testing.T) {
	k := sim.NewKernel()
	cost := model.Default1990()
	sink := &capture{k: k}
	l := fiber.NewLink(k, cost, "l", sink)
	pkt := &fiber.Packet{Frame: frame(999)} // wire len 1000 with route byte
	k.After(0, func() { l.Send(pkt) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 1 {
		t.Fatalf("arrived = %d", len(sink.arrived))
	}
	a := sink.arrived[0]
	if a.first != 0 {
		t.Errorf("first byte at %v, want 0", a.first)
	}
	// 1000 bytes at 12.5 MB/s = 80us.
	if want := sim.Time(80 * sim.Microsecond); a.end != want {
		t.Errorf("last byte at %v, want %v", a.end, want)
	}
}

func TestLinkQueueing(t *testing.T) {
	k := sim.NewKernel()
	cost := model.Default1990()
	sink := &capture{k: k}
	l := fiber.NewLink(k, cost, "l", sink)
	k.After(0, func() {
		l.Send(&fiber.Packet{Frame: frame(999)}) // occupies [0,80us]
		l.Send(&fiber.Packet{Frame: frame(999)}) // must start at 80us
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 2 {
		t.Fatalf("arrived = %d", len(sink.arrived))
	}
	if want := sim.Time(80 * sim.Microsecond); sink.arrived[1].first != want {
		t.Errorf("second packet first byte at %v, want %v", sink.arrived[1].first, want)
	}
	if want := sim.Time(160 * sim.Microsecond); sink.arrived[1].end != want {
		t.Errorf("second packet last byte at %v, want %v", sink.arrived[1].end, want)
	}
}

func TestLinkDropAndCorrupt(t *testing.T) {
	k := sim.NewKernel()
	cost := model.Default1990()
	sink := &capture{k: k}
	l := fiber.NewLink(k, cost, "l", sink)
	l.DropNext(1)
	l.CorruptNext(2) // applies to the two packets after the drop
	k.After(0, func() {
		for i := 0; i < 3; i++ {
			l.Send(&fiber.Packet{Frame: frame(100)})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 2 {
		t.Fatalf("arrived = %d, want 2 (one dropped)", len(sink.arrived))
	}
	orig := frame(100)
	for _, a := range sink.arrived {
		same := true
		for i := range orig {
			if a.pkt.Frame[i] != orig[i] {
				same = false
			}
		}
		if same {
			t.Error("packet not corrupted")
		}
	}
	sent, dropped, corrupted, _ := l.Stats()
	if sent != 2 || dropped != 1 || corrupted != 2 {
		t.Errorf("stats = %d/%d/%d, want 2/1/2", sent, dropped, corrupted)
	}
}

// buildStar wires cab0 -> hub port0, hub port1 -> sink (i.e. one hop).
func buildStar(t *testing.T) (*sim.Kernel, *fiber.Link, *capture) {
	k := sim.NewKernel()
	cost := model.Default1990()
	h := New(k, cost, "hub0", DefaultPorts)
	sink := &capture{k: k}
	h.ConnectOut(1, fiber.NewLink(k, cost, "hub0.1->sink", sink))
	up := fiber.NewLink(k, cost, "cab0->hub0.0", h.InPort(0))
	return k, up, sink
}

func TestHubSetupLatency(t *testing.T) {
	// E6 anchor: 700 ns to set up a connection and transfer the first
	// byte through a single HUB.
	k, up, sink := buildStar(t)
	pkt := &fiber.Packet{Route: []byte{1}, Frame: frame(99)} // wire len 101 upstream
	k.After(0, func() { up.Send(pkt) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 1 {
		t.Fatalf("arrived = %d", len(sink.arrived))
	}
	if want := sim.Time(700 * sim.Nanosecond); sink.arrived[0].first != want {
		t.Errorf("first byte after HUB at %v, want %v", sink.arrived[0].first, want)
	}
	if len(sink.arrived[0].pkt.Route) != 0 {
		t.Error("route byte not consumed")
	}
}

func TestHubCutThroughOverlap(t *testing.T) {
	// The outgoing transmission must overlap the incoming one: for an
	// 8KB frame, end-to-end ~= setup + serialization, NOT 2x serialization.
	k, up, sink := buildStar(t)
	n := 8192
	pkt := &fiber.Packet{Route: []byte{1}, Frame: frame(n)}
	k.After(0, func() { up.Send(pkt) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	cost := model.Default1990()
	ser := sim.Time(cost.FiberTime(n + 1)) // downstream wire length
	end := sink.arrived[0].end
	if end > sim.Time(700)+ser+sim.Time(2*sim.Microsecond) {
		t.Errorf("delivery end %v suggests store-and-forward (serialization %v)", end, ser)
	}
}

func TestMultiHopRoute(t *testing.T) {
	// cab -> hub0 port 2 -> hub1 port 3 -> sink: two setup delays.
	k := sim.NewKernel()
	cost := model.Default1990()
	h0 := New(k, cost, "hub0", DefaultPorts)
	h1 := New(k, cost, "hub1", DefaultPorts)
	sink := &capture{k: k}
	h0.ConnectOut(2, fiber.NewLink(k, cost, "h0->h1", h1.InPort(0)))
	h1.ConnectOut(3, fiber.NewLink(k, cost, "h1->sink", sink))
	up := fiber.NewLink(k, cost, "cab->h0", h0.InPort(5))
	pkt := &fiber.Packet{Route: []byte{2, 3}, Frame: frame(50)}
	k.After(0, func() { up.Send(pkt) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 1 {
		t.Fatalf("arrived = %d", len(sink.arrived))
	}
	if want := sim.Time(1400 * sim.Nanosecond); sink.arrived[0].first != want {
		t.Errorf("first byte at %v, want %v (2 hops x 700ns)", sink.arrived[0].first, want)
	}
	if h0.Forwarded() != 1 || h1.Forwarded() != 1 {
		t.Error("forward counters wrong")
	}
}

func TestExhaustedRouteFails(t *testing.T) {
	k, up, _ := buildStar(t)
	k.After(0, func() { up.Send(&fiber.Packet{Frame: frame(10)}) }) // no route
	if err := k.Run(); err == nil {
		t.Error("exhausted route did not fail the simulation")
	}
}

func TestUnconnectedPortFails(t *testing.T) {
	k, up, _ := buildStar(t)
	k.After(0, func() { up.Send(&fiber.Packet{Route: []byte{9}, Frame: frame(10)}) })
	if err := k.Run(); err == nil {
		t.Error("unconnected port did not fail the simulation")
	}
}

func TestOutputPortContention(t *testing.T) {
	// Two inputs racing for one output: second packet serializes after
	// the first (flow control holds it back).
	k := sim.NewKernel()
	cost := model.Default1990()
	h := New(k, cost, "hub", DefaultPorts)
	sink := &capture{k: k}
	h.ConnectOut(0, fiber.NewLink(k, cost, "out", sink))
	inA := fiber.NewLink(k, cost, "a", h.InPort(1))
	inB := fiber.NewLink(k, cost, "b", h.InPort(2))
	k.After(0, func() {
		inA.Send(&fiber.Packet{Route: []byte{0}, Frame: frame(999)})
		inB.Send(&fiber.Packet{Route: []byte{0}, Frame: frame(999)})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 2 {
		t.Fatalf("arrived = %d", len(sink.arrived))
	}
	// Packet B's first byte must wait for A to drain the output fiber.
	if sink.arrived[1].first < sink.arrived[0].end {
		t.Errorf("second packet started %v, before first finished %v",
			sink.arrived[1].first, sink.arrived[0].end)
	}
}

func TestCircuitSwitching(t *testing.T) {
	k, up, sink := buildStar(t)
	var h *Hub
	// Rebuild to get access to the hub: buildStar hides it, so make our own.
	k = sim.NewKernel()
	cost := model.Default1990()
	h = New(k, cost, "hub", DefaultPorts)
	sink = &capture{k: k}
	h.ConnectOut(1, fiber.NewLink(k, cost, "out", sink))
	up = fiber.NewLink(k, cost, "in", h.InPort(0))

	if err := h.OpenCircuit(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.OpenCircuit(3, 1); err == nil {
		t.Error("double circuit reservation succeeded")
	}
	pkt := &fiber.Packet{Route: []byte{1}, Frame: frame(99), Circuit: true}
	k.After(0, func() { up.Send(pkt) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 1 {
		t.Fatalf("arrived = %d", len(sink.arrived))
	}
	if sink.arrived[0].first != 0 {
		t.Errorf("circuit packet first byte at %v, want 0 (no setup)", sink.arrived[0].first)
	}
	h.CloseCircuit(1)
	if h.CircuitHolder(1) != -1 {
		t.Error("circuit not released")
	}
}

func TestPacketIntoReservedPortFails(t *testing.T) {
	k := sim.NewKernel()
	cost := model.Default1990()
	h := New(k, cost, "hub", DefaultPorts)
	sink := &capture{k: k}
	h.ConnectOut(1, fiber.NewLink(k, cost, "out", sink))
	up := fiber.NewLink(k, cost, "in", h.InPort(0))
	if err := h.OpenCircuit(2, 1); err != nil {
		t.Fatal(err)
	}
	k.After(0, func() {
		up.Send(&fiber.Packet{Route: []byte{1}, Frame: frame(10)})
	})
	if err := k.Run(); err == nil {
		t.Error("packet-switched frame into reserved port did not fail")
	}
}

func TestMisrouteReleasesPacket(t *testing.T) {
	// Regression: misroute reported through Fatalf — which records the
	// failure and returns — and then leaked the packet instead of
	// returning it to its pool.
	k := sim.NewKernel()
	h := New(k, model.Default1990(), "hub", 2)
	var p fiber.Pool
	pkt := p.GetPacket()
	pkt.Frame = frame(16)
	pkt.Route = nil // exhausted route: every arrival is a misroute
	h.InPort(0).PacketArriving(pkt, 0)
	if pkt.Frame != nil {
		t.Error("misroute kept the frame attached; packet was not released")
	}
	if again := p.GetPacket(); again != pkt {
		t.Error("packet was not returned to its pool by misroute")
	}
	if err := k.Run(); err == nil {
		t.Error("Run returned nil, want the recorded misroute failure")
	}
}
