// Package hub models the Nectar HUB (paper §2.1): a 16x16 crossbar switch
// with fiber I/O ports and a controller implementing commands that CABs use
// to set up packet-switching and circuit-switching connections.
//
// CABs use source routing: a packet carries the list of HUB output-port
// numbers it must traverse. Forwarding is cut-through — a HUB begins
// retransmitting 700 ns (HubSetup) after the first byte arrives, while the
// rest of the packet is still streaming in. Large Nectar systems connect
// several HUBs through their I/O ports; multi-hop routes consume one route
// byte per HUB.
//
// Circuit switching: OpenCircuit reserves an output port for an input
// port; packets flagged Circuit then cross without per-packet setup. The
// controller refuses to open a circuit on a port that is already reserved,
// and packet-switched traffic to a reserved port is an error (the paper's
// HUB command set provides low-level flow control; our model surfaces
// misuse as a simulation failure rather than silently queueing).
package hub

import (
	"fmt"
	"sync/atomic"

	"nectar/internal/hw/fiber"
	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/sim"
)

// DefaultPorts is the port count of the prototype's crossbars (16x16).
const DefaultPorts = 16

// Hub is one crossbar switch.
type Hub struct {
	k       *sim.Kernel
	cost    *model.CostModel
	name    string
	out     []*fiber.Link // indexed by output port; nil = unconnected
	outDom  []*sim.Domain // owning shard of each output link; nil = local
	circ    []int         // output port -> input port holding a circuit, -1 = none
	sharded bool          // input ports run on several shards; circuits refused
	stats   struct {
		// forwarded is atomic because, under sharded execution, input
		// ports on different shards forward concurrently. setupOps stays
		// plain: controller commands are refused while sharded.
		forwarded atomic.Uint64
		setupOps  uint64
	}
}

// New creates a HUB with n ports.
func New(k *sim.Kernel, cost *model.CostModel, name string, n int) *Hub {
	h := &Hub{k: k, cost: cost, name: name, out: make([]*fiber.Link, n), outDom: make([]*sim.Domain, n), circ: make([]int, n)}
	for i := range h.circ {
		h.circ[i] = -1
	}
	m := obs.Ensure(k).Metrics()
	m.Gauge(obs.LayerFiber, "hub_forwarded", name, func() uint64 { return h.stats.forwarded.Load() })
	m.Gauge(obs.LayerFiber, "hub_setup_ops", name, func() uint64 { return h.stats.setupOps })
	return h
}

// Name returns the HUB name.
func (h *Hub) Name() string { return h.name }

// Ports returns the number of I/O ports.
func (h *Hub) Ports() int { return len(h.out) }

// ConnectOut attaches the fiber leaving output port p.
func (h *Hub) ConnectOut(p int, l *fiber.Link) {
	if h.out[p] != nil {
		sim.Panicf("hub %s: output port %d already connected", h.name, p)
	}
	h.out[p] = l
}

// InPort returns the endpoint for fibers terminating at this HUB. All
// input ports share forwarding logic; the port identity only matters for
// circuit bookkeeping.
func (h *Hub) InPort(p int) fiber.Endpoint {
	return &inPort{hub: h, port: p, k: h.k}
}

// InPortOn returns the endpoint for input port p executing on kernel k as
// part of domain dom (sharded execution: the port runs on the shard of the
// CAB whose fiber feeds it, so arrival events never cross shards — only
// forwards do). dom may be nil for a stand-alone kernel.
func (h *Hub) InPortOn(p int, k *sim.Kernel, dom *sim.Domain) fiber.Endpoint {
	return &inPort{hub: h, port: p, k: k, dom: dom}
}

// SetOutDomain records which shard owns the link leaving output port p.
// Forwards from an input port on a different shard are routed through the
// coupling as timestamped inter-domain messages instead of local events.
func (h *Hub) SetOutDomain(p int, d *sim.Domain) { h.outDom[p] = d }

// OutDomain returns the shard owning the link leaving output port p (nil
// when the port is local, unconnected, or out of range). Gateway cross
// closures use it to resolve a route byte to the domain a forward enters —
// out-of-range bytes resolve to nil here and fail with a proper diagnostic
// when the forward executes.
func (h *Hub) OutDomain(p int) *sim.Domain {
	if p < 0 || p >= len(h.outDom) {
		return nil
	}
	return h.outDom[p]
}

// OutLink returns the link leaving output port p (nil if unconnected or
// out of range).
func (h *Hub) OutLink(p int) *fiber.Link {
	if p < 0 || p >= len(h.out) {
		return nil
	}
	return h.out[p]
}

// SetSharded marks the HUB as spanning shards: controller circuit commands
// are refused, because a circuit forwards with zero switch delay and would
// destroy the coupling's lookahead (and its port reservations would be
// cross-shard shared state).
func (h *Hub) SetSharded() { h.sharded = true }

type inPort struct {
	hub  *Hub
	port int
	k    *sim.Kernel // kernel the port's arrival events execute on
	dom  *sim.Domain // owning shard; nil when unsharded
}

// PacketArriving implements cut-through forwarding: consume the packet's
// next route byte and retransmit on that output port after the setup
// delay. The outgoing serialization overlaps the incoming one.
//
// The retransmission is deferred to the instant the first byte leaves the
// crossbar (arrival + setup delay) rather than performed synchronously at
// arrival. Under sharded execution a forward to an output link owned by
// another shard becomes a timestamped inter-domain message at exactly that
// instant — the setup delay is the coupling's lookahead — and deferring
// uniformly in both modes keeps per-link processing order, capture
// timestamps, and trace instants identical between sequential and sharded
// runs.
//
//nectar:takes-ownership pkt forwarded on an output link or consumed by misroute
func (ip *inPort) PacketArriving(pkt *fiber.Packet, end sim.Time) {
	h := ip.hub
	if len(pkt.Route) == 0 {
		ip.misroute(pkt, "packet arrived with exhausted route")
		return
	}
	outPort := int(pkt.Route[0])
	pkt.Route = pkt.Route[1:]
	if outPort >= len(h.out) || h.out[outPort] == nil {
		ip.misroute(pkt, fmt.Sprintf("route names unconnected output port %d", outPort))
		return
	}
	if h.circ[outPort] >= 0 && !pkt.Circuit {
		ip.misroute(pkt, fmt.Sprintf("packet-switched frame to output port %d which is circuit-reserved by input %d", outPort, h.circ[outPort]))
		return
	}
	if pkt.Circuit && h.circ[outPort] != ip.port {
		ip.misroute(pkt, fmt.Sprintf("circuit frame to output port %d but no circuit from input %d", outPort, ip.port))
		return
	}
	delay := h.cost.HubSetup
	if pkt.Circuit {
		// The crossbar is already configured: only propagation remains.
		delay = 0
	}
	h.stats.forwarded.Add(1)
	out := h.out[outPort]
	t := ip.k.Now() + sim.Time(delay)
	if dst := h.outDom[outPort]; dst != nil && ip.dom != nil && dst != ip.dom {
		// Cross-shard forward: the destination shard owns the output
		// link. The packet leaves its origin shard for good, so detach
		// it from its (single-threaded) pool first.
		pkt.Disown()
		ip.dom.SendSized(dst, t, pkt.WireLen(), func() { out.SendAt(pkt, t) })
		return
	}
	ip.k.At(t, func() { out.SendAt(pkt, t) })
}

// misroute reports a forwarding failure through the owning kernel with
// the one diagnostic shape every HUB misroute shares: hub name, cause,
// input port, the frame's datalink src/dst IDs, and the unconsumed route
// bytes. Sharded and sequential runs take identical forwarding decisions
// at identical virtual instants, so the failure — like every other
// deterministic diagnostic — reproduces byte-identically under replay.
//
//nectar:takes-ownership pkt the frame dies with the diagnostic
func (ip *inPort) misroute(pkt *fiber.Packet, cause string) {
	ip.k.Fatalf("hub %s: %s (input port %d, %s, remaining route [% x])",
		ip.hub.name, cause, ip.port, frameIDs(pkt.Frame), pkt.Route)
	pkt.Release() // unroutable: the frame is dead once the diagnostic is rendered
}

// frameIDs renders a frame's datalink source/destination node IDs for
// forwarding diagnostics — on a multi-hop fabric a port number alone does
// not identify the flow. The src/dst words sit at fixed offsets in the
// datalink header (wire.DatalinkHeader, bytes 4:6 and 6:8, big-endian);
// decoding them inline avoids making the crossbar depend on the protocol
// package. Frames shorter than the header (raw test packets) report "?".
func frameIDs(frame []byte) string {
	if len(frame) < 8 {
		return "src=? dst=?"
	}
	src := uint16(frame[4])<<8 | uint16(frame[5])
	dst := uint16(frame[6])<<8 | uint16(frame[7])
	return fmt.Sprintf("src=node%d dst=node%d", src, dst)
}

// OpenCircuit reserves output port out for traffic from input port in
// (controller command). It charges the setup latency once; packets sent
// with Circuit=true then cross with no per-packet setup.
func (h *Hub) OpenCircuit(in, out int) error {
	if h.sharded {
		return fmt.Errorf("hub %s: circuits are not available under sharded execution (zero-lookahead forwarding)", h.name)
	}
	if h.circ[out] >= 0 {
		return fmt.Errorf("hub %s: port %d already reserved by input %d", h.name, out, h.circ[out])
	}
	h.circ[out] = in
	h.stats.setupOps++
	return nil
}

// CloseCircuit releases the circuit on output port out.
func (h *Hub) CloseCircuit(out int) {
	h.circ[out] = -1
}

// CircuitHolder returns the input port holding a circuit on out, or -1.
func (h *Hub) CircuitHolder(out int) int { return h.circ[out] }

// Forwarded returns the number of packets forwarded.
func (h *Hub) Forwarded() uint64 { return h.stats.forwarded.Load() }
