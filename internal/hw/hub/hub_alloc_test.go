package hub

import (
	"testing"

	"nectar/internal/hw/fiber"
	"nectar/internal/model"
	"nectar/internal/sim"
)

// TestRouteConsumptionAliasesSharedTable pins the zero-copy contract the
// shared route table depends on: a crossbar consumes a route byte by
// re-slicing pkt.Route, never by copying it, so a packet can carry a
// reference into the cluster-wide deduplicated table all the way across
// the fabric. If forwarding ever copied, 100k nodes would silently pay a
// per-packet route allocation again.
func TestRouteConsumptionAliasesSharedTable(t *testing.T) {
	k := sim.NewKernel()
	cost := model.Default1990()
	h0 := New(k, cost, "hub0", DefaultPorts)
	h1 := New(k, cost, "hub1", DefaultPorts)
	sink := &capture{k: k}
	h0.ConnectOut(2, fiber.NewLink(k, cost, "h0->h1", h1.InPort(0)))
	h1.ConnectOut(3, fiber.NewLink(k, cost, "h1->sink", sink))
	up := fiber.NewLink(k, cost, "cab->h0", h0.InPort(5))

	shared := []byte{2, 3, 7} // as served by the route table; 7 is unconsumed
	pkt := &fiber.Packet{Route: shared, Frame: frame(50)}
	k.After(0, func() { up.Send(pkt) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 1 {
		t.Fatalf("arrived = %d", len(sink.arrived))
	}
	got := sink.arrived[0].pkt.Route
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("remaining route = % x, want [07]", got)
	}
	if &got[0] != &shared[2] {
		t.Error("route bytes were copied: remaining route does not alias the shared table slice")
	}
}

// TestForwardingAllocations is the hot-path allocation guard for the
// crossbar: forwarding a packet through two HUBs must allocate nothing
// per hop beyond the kernel's deferred-retransmit closure (one closure
// per hop — the cut-through model requires deferring to arrival+setup).
// Route consumption, port lookup, circuit checks and stats are all
// alloc-free; a regression here multiplies across every hop of every
// frame on a 65k-node fabric.
func TestForwardingAllocations(t *testing.T) {
	k := sim.NewKernel()
	cost := model.Default1990()
	h0 := New(k, cost, "hub0", DefaultPorts)
	h1 := New(k, cost, "hub1", DefaultPorts)
	sink := &capture{k: k}
	h0.ConnectOut(2, fiber.NewLink(k, cost, "h0->h1", h1.InPort(0)))
	h1.ConnectOut(3, fiber.NewLink(k, cost, "h1->sink", sink))
	up := fiber.NewLink(k, cost, "cab->h0", h0.InPort(5))

	shared := []byte{2, 3}
	pkt := &fiber.Packet{Frame: frame(50)}
	avg := testing.AllocsPerRun(200, func() {
		pkt.Route = shared // re-arm the shared route; must not be copied
		up.Send(pkt)
		if err := k.Run(); err != nil {
			panic(err)
		}
	})
	// Budget: per 2-hop forward the model allocates only the deferred
	// retransmit closures and the fiber delivery events (5 objects today);
	// the route slice, crossbar state and counters contribute nothing.
	// Pinned with zero slack so any new per-packet allocation trips.
	const budget = 5
	if avg > budget {
		t.Errorf("2-hop forward allocates %.1f objects/run, budget %d", avg, budget)
	}
}
