package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegionSliceAliasing(t *testing.T) {
	r := NewRegion("data", 4*PageSize)
	a := r.Slice(100, 16)
	b := r.Slice(100, 16)
	a[0] = 0xAB
	if b[0] != 0xAB {
		t.Error("slices of the same address do not alias")
	}
}

func TestRegionSliceBusError(t *testing.T) {
	r := NewRegion("data", PageSize)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Slice did not panic")
		}
	}()
	r.Slice(Addr(PageSize-8), 16)
}

func TestAddrOfRoundTrip(t *testing.T) {
	r := NewRegion("data", 16*PageSize)
	for _, off := range []Addr{0, 8, 1024, 16000} {
		b := r.Slice(off, 64)
		if got := r.AddrOf(b); got != off {
			t.Errorf("AddrOf(Slice(%d)) = %d", off, got)
		}
	}
}

func TestAddrOfForeignSlicePanics(t *testing.T) {
	r := NewRegion("data", PageSize)
	defer func() {
		if recover() == nil {
			t.Error("AddrOf of foreign slice did not panic")
		}
	}()
	r.AddrOf(make([]byte, 16))
}

func TestHeapAllocFree(t *testing.T) {
	r := NewRegion("data", 8*PageSize)
	h := NewHeap(r, 0, r.Size())
	buf, addr, ok := h.Alloc(100)
	if !ok {
		t.Fatal("alloc failed")
	}
	if len(buf) < 100 {
		t.Errorf("buffer len %d < 100", len(buf))
	}
	if h.Used() == 0 {
		t.Error("Used() == 0 after alloc")
	}
	h.Free(addr)
	if h.Used() != 0 {
		t.Errorf("Used() = %d after free", h.Used())
	}
	if h.FreeSpans() != 1 {
		t.Errorf("free spans = %d, want 1 (coalesced)", h.FreeSpans())
	}
}

func TestHeapExhaustion(t *testing.T) {
	r := NewRegion("data", PageSize)
	h := NewHeap(r, 0, r.Size())
	_, _, ok := h.Alloc(PageSize + 1)
	if ok {
		t.Error("oversized alloc succeeded")
	}
	if h.Fails() != 1 {
		t.Errorf("fails = %d, want 1", h.Fails())
	}
	// Fill completely, then one more should fail.
	_, a1, ok := h.Alloc(PageSize / 2)
	if !ok {
		t.Fatal("first half alloc failed")
	}
	_, _, ok = h.Alloc(PageSize / 2)
	if !ok {
		t.Fatal("second half alloc failed")
	}
	if _, _, ok := h.Alloc(8); ok {
		t.Error("alloc from a full heap succeeded")
	}
	h.Free(a1)
	if _, _, ok := h.Alloc(PageSize / 2); !ok {
		t.Error("alloc after free failed")
	}
}

func TestHeapCoalescing(t *testing.T) {
	r := NewRegion("data", 4*PageSize)
	h := NewHeap(r, 0, r.Size())
	var addrs []Addr
	for i := 0; i < 8; i++ {
		_, a, ok := h.Alloc(256)
		if !ok {
			t.Fatal("alloc failed")
		}
		addrs = append(addrs, a)
	}
	// Free in an interleaved order; the heap must end fully coalesced.
	for _, i := range []int{1, 3, 5, 7, 0, 2, 4, 6} {
		h.Free(addrs[i])
	}
	if h.FreeSpans() != 1 {
		t.Errorf("free spans = %d, want 1 after freeing everything", h.FreeSpans())
	}
	if h.TotalFree() != r.Size() {
		t.Errorf("total free = %d, want %d", h.TotalFree(), r.Size())
	}
}

func TestHeapDoubleFreePanics(t *testing.T) {
	r := NewRegion("data", PageSize)
	h := NewHeap(r, 0, r.Size())
	_, a, _ := h.Alloc(64)
	h.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	h.Free(a)
}

func TestHeapDistinctBuffers(t *testing.T) {
	r := NewRegion("data", 4*PageSize)
	h := NewHeap(r, 0, r.Size())
	b1, _, _ := h.Alloc(64)
	b2, _, _ := h.Alloc(64)
	for i := range b1 {
		b1[i] = 0x11
	}
	for _, v := range b2 {
		if v == 0x11 {
			t.Fatal("allocations overlap")
		}
	}
}

// Property: under arbitrary alloc/free sequences the heap invariants hold
// and no two live allocations overlap.
func TestHeapInvariantsProperty(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRegion("data", 16*PageSize)
		h := NewHeap(r, 0, r.Size())
		type alloc struct {
			addr Addr
			size int
		}
		var live []alloc
		for _, op := range opsRaw {
			if op%3 != 0 && len(live) > 0 { // free
				i := rng.Intn(len(live))
				h.Free(live[i].addr)
				live = append(live[:i], live[i+1:]...)
			} else { // alloc
				n := 1 + rng.Intn(2048)
				_, a, ok := h.Alloc(n)
				if ok {
					live = append(live, alloc{a, n})
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
			// No two live allocations overlap.
			for i := range live {
				for j := i + 1; j < len(live); j++ {
					a, b := live[i], live[j]
					if a.addr < b.addr+Addr(b.size) && b.addr < a.addr+Addr(a.size) {
						t.Logf("overlap: %+v %+v", a, b)
						return false
					}
				}
			}
		}
		// Free everything: heap must return to one span.
		for _, a := range live {
			h.Free(a.addr)
		}
		return h.FreeSpans() == 1 && h.Used() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProtectionDomains(t *testing.T) {
	r := NewRegion("data", 8*PageSize)
	p := NewProtection(r, 4)
	if p.NumDomains() != 4 {
		t.Fatalf("domains = %d", p.NumDomains())
	}
	// Domain 1 loses write access to page 2.
	p.SetPerm(1, Addr(2*PageSize), PageSize, PermRead)

	p.SetDomain(0)
	if err := p.Check(Addr(2*PageSize), 100, PermWrite); err != nil {
		t.Errorf("domain 0 write: %v", err)
	}
	p.SetDomain(1)
	if err := p.Check(Addr(2*PageSize), 100, PermWrite); err == nil {
		t.Error("domain 1 write to protected page succeeded")
	}
	if err := p.Check(Addr(2*PageSize), 100, PermRead); err != nil {
		t.Errorf("domain 1 read: %v", err)
	}
}

func TestProtectionSpansPages(t *testing.T) {
	r := NewRegion("data", 8*PageSize)
	p := NewProtection(r, 2)
	p.SetPerm(0, Addr(3*PageSize), PageSize, PermNone)
	// Access crossing from page 2 into page 3 must fault.
	err := p.Check(Addr(3*PageSize-16), 32, PermRead)
	if err == nil {
		t.Fatal("cross-page access into protected page succeeded")
	}
	var fe *FaultError
	if f, ok := err.(*FaultError); ok {
		fe = f
	} else {
		t.Fatalf("error type %T, want *FaultError", err)
	}
	if fe.Addr != Addr(3*PageSize) {
		t.Errorf("fault addr = %#x, want %#x", fe.Addr, 3*PageSize)
	}
}

func TestProtectionBadDomainPanics(t *testing.T) {
	r := NewRegion("data", PageSize)
	p := NewProtection(r, 2)
	defer func() {
		if recover() == nil {
			t.Error("SetDomain(5) did not panic")
		}
	}()
	p.SetDomain(5)
}

func TestHeapPeakTracking(t *testing.T) {
	r := NewRegion("data", 4*PageSize)
	h := NewHeap(r, 0, r.Size())
	_, a1, _ := h.Alloc(1000)
	_, a2, _ := h.Alloc(1000)
	peak := h.Used()
	h.Free(a1)
	h.Free(a2)
	if h.Peak() != peak {
		t.Errorf("peak = %d, want %d", h.Peak(), peak)
	}
}
