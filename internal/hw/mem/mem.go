// Package mem models the CAB's on-board memory (paper §2.2): a program
// region (PROM + RAM) and a 1 MB data region of 35 ns static RAM, a
// first-fit heap allocator over the data region (used for mailbox message
// buffers, §3.3), and per-1KB-page protection domains.
//
// Buffers are real Go byte slices aliasing one backing array, so all
// protocol code operates on genuine bytes at stable "physical" addresses —
// which is what lets the mailbox layer implement Enqueue and adjust
// operations as pure pointer surgery, exactly as the paper describes.
package mem

import (
	"fmt"
	"nectar/internal/sim"
	"sort"
)

// Default CAB memory geometry (paper §2.2).
const (
	DefaultDataSize    = 1 << 20 // 1 Mbyte data RAM
	DefaultProgramSize = 512<<10 + 128<<10
	PageSize           = 1 << 10 // protection granularity: 1 Kbyte pages
)

// Addr is a CAB-physical address within a region.
type Addr uint32

// Region is a contiguous memory region with page-grained protection.
type Region struct {
	name  string
	bytes []byte
	perms []Perm // one per page, indexed by current domain
	prot  *Protection
}

// NewRegion allocates a region of the given size (rounded up to a page).
func NewRegion(name string, size int) *Region {
	size = (size + PageSize - 1) &^ (PageSize - 1)
	r := &Region{
		name:  name,
		bytes: make([]byte, size),
	}
	return r
}

// Size returns the region size in bytes.
func (r *Region) Size() int { return len(r.bytes) }

// Bytes returns the raw backing slice (hardware/DMA view: no protection).
func (r *Region) Bytes() []byte { return r.bytes }

// Slice returns the byte window [addr, addr+n). It panics on out-of-range,
// which models a bus error. The returned slice deliberately keeps the full
// backing capacity so that AddrOf can recover the physical address of any
// (re)slice by capacity arithmetic; callers must never append to it.
func (r *Region) Slice(addr Addr, n int) []byte {
	if int(addr)+n > len(r.bytes) {
		sim.Panicf("mem: bus error: [%d,%d) outside region %q (size %d)",
			addr, int(addr)+n, r.name, len(r.bytes))
	}
	return r.bytes[addr : int(addr)+n]
}

// AddrOf returns the region-physical address of a slice previously obtained
// from this region. It panics if b does not alias the region.
func (r *Region) AddrOf(b []byte) Addr {
	if len(b) == 0 {
		return 0
	}
	// Compare capacities of sub-slices to locate b's offset. We use the
	// unsafe-free trick: scan is O(1) via capacity arithmetic.
	base := &r.bytes[0]
	_ = base
	// cap from b's end to region end identifies the offset uniquely.
	off := len(r.bytes) - cap(b)
	if off < 0 || off+len(b) > len(r.bytes) {
		sim.Panicf("mem: AddrOf: slice not within region %q", r.name)
	}
	// Verify aliasing by identity of the first element.
	if &r.bytes[off] != &b[0] {
		sim.Panicf("mem: AddrOf: slice does not alias region %q", r.name)
	}
	return Addr(off)
}

// Perm is a page access permission bitmask.
type Perm uint8

const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExecute
	PermNone Perm = 0
	PermRW        = PermRead | PermWrite
)

// Protection models the CAB's memory protection hardware: multiple
// protection domains, each with its own per-page permissions; the current
// domain changes by reloading a single register (paper §2.2).
type Protection struct {
	region  *Region
	domains [][]Perm
	current int
}

// NewProtection attaches protection hardware with ndomains domains to r.
// All pages start PermRW in every domain.
func NewProtection(r *Region, ndomains int) *Protection {
	pages := len(r.bytes) / PageSize
	p := &Protection{region: r, domains: make([][]Perm, ndomains)}
	for d := range p.domains {
		perms := make([]Perm, pages)
		for i := range perms {
			perms[i] = PermRW
		}
		p.domains[d] = perms
	}
	r.prot = p
	return p
}

// NumDomains returns the number of protection domains.
func (p *Protection) NumDomains() int { return len(p.domains) }

// Current returns the active domain index.
func (p *Protection) Current() int { return p.current }

// SetDomain switches the active protection domain (a single register
// reload on the CAB).
func (p *Protection) SetDomain(d int) {
	if d < 0 || d >= len(p.domains) {
		sim.Panicf("mem: no such protection domain %d", d)
	}
	p.current = d
}

// SetPerm sets the permission of the pages covering [addr, addr+n) in
// domain d.
func (p *Protection) SetPerm(d int, addr Addr, n int, perm Perm) {
	first := int(addr) / PageSize
	last := (int(addr) + n - 1) / PageSize
	for pg := first; pg <= last; pg++ {
		p.domains[d][pg] = perm
	}
}

// FaultError reports a protection violation.
type FaultError struct {
	Domain int
	Addr   Addr
	Want   Perm
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("mem: protection fault: domain %d, addr %#x, access %v", e.Domain, e.Addr, e.Want)
}

// Check verifies that the current domain permits access perm to every page
// of [addr, addr+n). It returns a *FaultError on violation.
func (p *Protection) Check(addr Addr, n int, perm Perm) error {
	perms := p.domains[p.current]
	first := int(addr) / PageSize
	last := first
	if n > 0 {
		last = (int(addr) + n - 1) / PageSize
	}
	for pg := first; pg <= last && pg < len(perms); pg++ {
		if perms[pg]&perm != perm {
			return &FaultError{Domain: p.current, Addr: Addr(pg * PageSize), Want: perm}
		}
	}
	return nil
}

// Heap is a first-fit allocator with free-list coalescing over a Region,
// used for mailbox buffer space (paper §3.3: "buffer space for messages is
// allocated from a common heap ... shared among all mailboxes on the CAB").
type Heap struct {
	region *Region
	free   []span // sorted by addr, coalesced
	inUse  map[Addr]int
	used   int
	peak   int
	allocs uint64
	fails  uint64
}

type span struct {
	addr Addr
	size int
}

// Alignment of all heap allocations (SPARC word).
const heapAlign = 8

// NewHeap creates a heap managing [base, base+size) of r.
func NewHeap(r *Region, base Addr, size int) *Heap {
	if int(base)+size > len(r.bytes) {
		panic("mem: heap extends past region")
	}
	return &Heap{
		region: r,
		free:   []span{{base, size}},
		inUse:  make(map[Addr]int),
	}
}

// Alloc allocates n bytes, returning the buffer and its address. ok is
// false if no sufficient contiguous free span exists.
func (h *Heap) Alloc(n int) (buf []byte, addr Addr, ok bool) {
	if n <= 0 {
		n = heapAlign
	}
	n = (n + heapAlign - 1) &^ (heapAlign - 1)
	for i, s := range h.free {
		if s.size < n {
			continue
		}
		addr = s.addr
		if s.size == n {
			h.free = append(h.free[:i], h.free[i+1:]...)
		} else {
			h.free[i] = span{s.addr + Addr(n), s.size - n}
		}
		h.inUse[addr] = n
		h.used += n
		if h.used > h.peak {
			h.peak = h.used
		}
		h.allocs++
		return h.region.Slice(addr, n), addr, true
	}
	h.fails++
	return nil, 0, false
}

// Free releases the allocation at addr. Freeing an unallocated address
// panics (an allocator-corruption bug in runtime code).
func (h *Heap) Free(addr Addr) {
	n, ok := h.inUse[addr]
	if !ok {
		sim.Panicf("mem: free of unallocated addr %#x", addr)
	}
	delete(h.inUse, addr)
	h.used -= n
	// Insert sorted and coalesce with neighbors.
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].addr > addr })
	h.free = append(h.free, span{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = span{addr, n}
	h.coalesce(i)
}

func (h *Heap) coalesce(i int) {
	// Merge with next.
	if i+1 < len(h.free) && h.free[i].addr+Addr(h.free[i].size) == h.free[i+1].addr {
		h.free[i].size += h.free[i+1].size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	// Merge with previous.
	if i > 0 && h.free[i-1].addr+Addr(h.free[i-1].size) == h.free[i].addr {
		h.free[i-1].size += h.free[i].size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
}

// Used returns the number of allocated bytes.
func (h *Heap) Used() int { return h.used }

// Peak returns the high-water mark of allocated bytes.
func (h *Heap) Peak() int { return h.peak }

// Allocs returns the number of successful allocations.
func (h *Heap) Allocs() uint64 { return h.allocs }

// Fails returns the number of failed allocations.
func (h *Heap) Fails() uint64 { return h.fails }

// FreeSpans returns the number of free-list entries (fragmentation gauge).
func (h *Heap) FreeSpans() int { return len(h.free) }

// TotalFree returns the total free bytes.
func (h *Heap) TotalFree() int {
	n := 0
	for _, s := range h.free {
		n += s.size
	}
	return n
}

// CheckInvariants verifies allocator consistency: free spans sorted,
// non-overlapping, non-adjacent (fully coalesced), and disjoint from
// allocations. Used by property tests.
func (h *Heap) CheckInvariants() error {
	for i := 1; i < len(h.free); i++ {
		prev, cur := h.free[i-1], h.free[i]
		if prev.addr+Addr(prev.size) > cur.addr {
			return fmt.Errorf("free spans overlap: %+v, %+v", prev, cur)
		}
		if prev.addr+Addr(prev.size) == cur.addr {
			return fmt.Errorf("free spans not coalesced: %+v, %+v", prev, cur)
		}
	}
	for addr, n := range h.inUse {
		for _, s := range h.free {
			if addr < s.addr+Addr(s.size) && s.addr < addr+Addr(n) {
				return fmt.Errorf("allocation [%#x,+%d) overlaps free span %+v", addr, n, s)
			}
		}
	}
	return nil
}
