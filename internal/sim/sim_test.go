package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAfterOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.After(30*Microsecond, func() { got = append(got, 3) })
	k.After(10*Microsecond, func() { got = append(got, 1) })
	k.After(20*Microsecond, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
	if k.Now() != Time(30*Microsecond) {
		t.Errorf("final time = %v, want 30us", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(5*Microsecond, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", got)
		}
	}
}

func TestAtPastPanics(t *testing.T) {
	k := NewKernel()
	k.After(10*Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		k.At(Time(5*Microsecond), func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.After(10*Microsecond, func() { fired = true })
	if !tm.Pending() {
		t.Error("timer should be pending before firing")
	}
	if !tm.Stop() {
		t.Error("first Stop should report true")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := NewKernel()
	tm := k.After(1*Microsecond, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Stop() {
		t.Error("Stop after firing should report false")
	}
	if tm.Pending() {
		t.Error("fired timer still pending")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	k := NewKernel()
	var fired []int
	k.After(10*Microsecond, func() { fired = append(fired, 1) })
	k.After(50*Microsecond, func() { fired = append(fired, 2) })
	if err := k.RunUntil(Time(20 * Microsecond)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fired, []int{1}) {
		t.Errorf("fired = %v, want [1]", fired)
	}
	if k.Now() != Time(20*Microsecond) {
		t.Errorf("now = %v, want 20us (clock advances to horizon)", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fired, []int{1, 2}) {
		t.Errorf("fired = %v, want [1 2]", fired)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var stamps []Time
	k.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(7 * Microsecond)
			stamps = append(stamps, p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(7 * Microsecond), Time(14 * Microsecond), Time(21 * Microsecond)}
	if !reflect.DeepEqual(stamps, want) {
		t.Errorf("stamps = %v, want %v", stamps, want)
	}
}

func TestSignalWakesFIFO(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("s")
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Go(name, func(p *Proc) {
			p.Wait(s)
			order = append(order, name)
		})
	}
	k.Go("waker", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		s.Signal()
		p.Sleep(1 * Microsecond)
		s.Signal()
		p.Sleep(1 * Microsecond)
		s.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(order, want) {
		t.Errorf("wake order = %v, want %v", order, want)
	}
}

func TestBroadcast(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("s")
	woken := 0
	for i := 0; i < 5; i++ {
		k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(s)
			woken++
		})
	}
	k.Go("caster", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		s.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
	if s.HasWaiters() {
		t.Error("signal still has waiters after broadcast")
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("never")
	var ok bool
	var when Time
	k.Go("waiter", func(p *Proc) {
		ok = p.WaitTimeout(s, 25*Microsecond)
		when = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("WaitTimeout reported signal, want timeout")
	}
	if when != Time(25*Microsecond) {
		t.Errorf("woke at %v, want 25us", when)
	}
}

func TestWaitTimeoutSignaled(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("s")
	var ok bool
	var when Time
	k.Go("waiter", func(p *Proc) {
		ok = p.WaitTimeout(s, 25*Microsecond)
		when = p.Now()
	})
	k.Go("waker", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		s.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("WaitTimeout reported timeout, want signal")
	}
	if when != Time(5*Microsecond) {
		t.Errorf("woke at %v, want 5us", when)
	}
}

func TestSignalAfterTimeoutNotLost(t *testing.T) {
	// A timed waiter that already expired must not consume a Signal meant
	// for a later plain waiter.
	k := NewKernel()
	s := k.NewSignal("s")
	got := false
	k.Go("timed", func(p *Proc) {
		p.WaitTimeout(s, 1*Microsecond) // will expire
	})
	k.Go("plain", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		p.Wait(s)
		got = true
	})
	k.Go("waker", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		s.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("plain waiter never woke; signal consumed by dead timed waiter")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("orphan")
	k.Go("stuck", func(p *Proc) { p.Wait(s) })
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Errorf("deadlock error %q does not name the blocked proc", err)
	}
}

func TestRunUntilToleratesBlockedProcs(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("server")
	k.Go("server", func(p *Proc) { p.Wait(s) })
	if err := k.RunUntil(Time(Millisecond)); err != nil {
		t.Fatalf("RunUntil should tolerate blocked procs: %v", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Go("bomb", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		panic("boom")
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

func TestFatalfStopsRun(t *testing.T) {
	k := NewKernel()
	ran := false
	k.After(1*Microsecond, func() { k.Fatalf("stop: %d", 42) })
	k.After(2*Microsecond, func() { ran = true })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "stop: 42") {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Error("event after Fatalf still ran")
	}
}

func TestProcSpawnsProc(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Go("parent", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		k.Go("child", func(c *Proc) {
			c.Sleep(1 * Microsecond)
			order = append(order, "child")
		})
		p.Sleep(5 * Microsecond)
		order = append(order, "parent")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"child", "parent"}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestPendingEvents(t *testing.T) {
	k := NewKernel()
	t1 := k.After(Microsecond, func() {})
	k.After(2*Microsecond, func() {})
	if got := k.PendingEvents(); got != 2 {
		t.Errorf("pending = %d, want 2", got)
	}
	t1.Stop()
	if got := k.PendingEvents(); got != 1 {
		t.Errorf("pending after stop = %d, want 1", got)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !k.Idle() {
		t.Error("kernel not idle after Run")
	}
}

func TestBlockingFromOutsideProcPanics(t *testing.T) {
	k := NewKernel()
	var p *Proc
	p = k.Go("p", func(self *Proc) { self.Sleep(Microsecond) })
	k.After(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("Sleep from kernel context did not panic")
			}
		}()
		p.Sleep(Microsecond)
	})
	_ = k.Run() // panic is recovered inside the event; run may or may not error
}

// Property: for any set of delays, callbacks fire in nondecreasing time
// order, and equal times fire in scheduling order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel()
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		for i, d := range delays {
			i := i
			k.After(Duration(d)*Microsecond, func() {
				fired = append(fired, firing{k.Now(), i})
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		// Cross-check against a sort of the inputs.
		var want []Time
		for _, d := range delays {
			want = append(want, Time(Duration(d)*Microsecond))
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range fired {
			if fired[i].at != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: determinism — running the same randomized proc workload twice
// yields an identical execution trace.
func TestDeterminismProperty(t *testing.T) {
	runOnce := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var trace []string
		s := k.NewSignal("shared")
		nproc := 3 + rng.Intn(5)
		for i := 0; i < nproc; i++ {
			i := i
			delays := make([]Duration, 5)
			for j := range delays {
				delays[j] = Duration(rng.Intn(50)) * Microsecond
			}
			k.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j, d := range delays {
					p.Sleep(d)
					trace = append(trace, fmt.Sprintf("p%d.%d@%v", i, j, p.Now()))
					if j == 2 {
						s.Broadcast()
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(trace, ";")
	}
	for seed := int64(0); seed < 10; seed++ {
		a := runOnce(seed)
		b := runOnce(seed)
		if a != b {
			t.Fatalf("seed %d: nondeterministic trace\n a=%s\n b=%s", seed, a, b)
		}
	}
}

func TestDurationHelpers(t *testing.T) {
	if Micros(12.5) != 12500*Nanosecond {
		t.Errorf("Micros(12.5) = %d", Micros(12.5))
	}
	if d := 1500 * Nanosecond; d.Micros() != 1.5 {
		t.Errorf("Micros() = %v", d.Micros())
	}
	if Second.Seconds() != 1.0 {
		t.Errorf("Seconds() = %v", Second.Seconds())
	}
	if s := (42 * Microsecond).String(); s != "42.000us" {
		t.Errorf("String() = %q", s)
	}
}

func TestTimerWhen(t *testing.T) {
	k := NewKernel()
	tm := k.After(10*Microsecond, func() {})
	if got := tm.When(); got != Time(10*Microsecond) {
		t.Errorf("When = %v, want 10us", got)
	}

	// Regression: When on zero, stopped, and fired timers must not panic
	// and must return the zero Time.
	var zeroTimer Timer
	if got := zeroTimer.When(); got != 0 {
		t.Errorf("zero timer When = %v, want 0", got)
	}
	if zeroTimer.Stop() {
		t.Error("zero timer Stop = true, want false")
	}
	if zeroTimer.Pending() {
		t.Error("zero timer Pending = true, want false")
	}
	tm.Stop()
	if got := tm.When(); got != 0 {
		t.Errorf("stopped timer When = %v, want 0", got)
	}
	fired := k.After(1*Microsecond, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fired.When(); got != 0 {
		t.Errorf("fired timer When = %v, want 0", got)
	}
}

func TestObserverSlot(t *testing.T) {
	k := NewKernel()
	if k.Observer() != nil {
		t.Fatal("fresh kernel should have no observer")
	}
	type marker struct{ n int }
	m := &marker{n: 7}
	k.SetObserver(m)
	got, ok := k.Observer().(*marker)
	if !ok || got != m {
		t.Fatalf("Observer = %v, want %v", k.Observer(), m)
	}
}
