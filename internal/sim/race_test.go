package sim

import (
	"sync"
	"testing"
)

// TestConcurrentKernels runs two independent kernels from two goroutines.
// Distinct kernels share no state — this is the invariant the parallel
// experiment harness (internal/bench) relies on — and `go test -race`
// over this test proves it at the data-race level: timer churn, proc
// forks, signals, and marks all proceed concurrently in both kernels.
func TestConcurrentKernels(t *testing.T) {
	var wg sync.WaitGroup
	run := func(seed int) {
		defer wg.Done()
		k := NewKernel()
		fired := 0
		for i := 0; i < 5000; i++ {
			d := Duration((i*seed)%997) * Microsecond
			tm := k.After(d, func() { fired++ })
			if i%3 == 0 {
				tm.Stop()
			}
		}
		sig := k.NewSignal("s")
		done := false
		k.Go("waiter", func(p *Proc) {
			for !done {
				p.Wait(sig)
			}
		})
		k.Go("signaler", func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Sleep(Microsecond)
				k.Mark("tick")
			}
			done = true
			sig.Signal()
		})
		if err := k.Run(); err != nil {
			t.Error(err)
			return
		}
		if fired == 0 {
			t.Error("no timers fired")
		}
		if k.PendingEvents() != 0 {
			t.Errorf("PendingEvents = %d after Run", k.PendingEvents())
		}
	}
	wg.Add(2)
	go run(3)
	go run(7)
	wg.Wait()
}
