// Conservative parallel discrete-event simulation: a Coupling runs several
// Kernels ("domains") concurrently on OS threads under a synchronous
// safe-window scheduler (the YAWNS/LBTS family of algorithms).
//
// The correctness argument is the classical conservative one. Each domain d
// exposes, through its registered Gateways, an Earliest Output Time: a lower
// bound on the virtual timestamp of any future inter-domain message it can
// emit given that its next local event is at NET(d). The scheduler picks the
// global bound
//
//	B = min over domains d, gateways g of g.EarliestOutput(NET(d))
//
// and lets every domain execute all events with timestamp strictly below B
// in parallel — no message with timestamp < B can ever arrive, so the window
// is safe. Inter-domain messages produced inside the window (Domain.Send)
// carry timestamps >= B by construction; they are buffered in per-source
// outboxes and injected into their destination kernels at the barrier, in
// deterministic (source domain index, emission order) order, before the next
// window is chosen.
//
// When every gateway implements ChannelGateway the scheduler sharpens this
// to one bound per destination domain. It first computes activity floors
// act(d) — a lower bound on when *any* event can execute in d — as the
// fixpoint of
//
//	act(d) = min(NET(d), min over d' != d, gateways g of d' of g.EarliestOutputTo(d, act(d')))
//
// (Bellman-Ford over the domain graph; raw NETs alone would be unsound,
// because a domain that ran far ahead can be pulled back by an incoming
// message and then emit into another domain's past — the fixpoint accounts
// for such transitive wake-up chains). The per-destination bound is then
//
//	B(A) = min over domains d != A, gateways g of d of g.EarliestOutputTo(A, act(d))
//
// and domain A executes events strictly below B(A). Safety is per channel:
// any message arriving at A is emitted by some other domain's gateway g at
// or after g.EarliestOutputTo(A, act(owner)) >= B(A). Excluding A's own
// gateways means a domain never throttles itself on its own potential
// emissions, which is what lets windows coalesce far past the single
// global bound.
//
// Progress is guaranteed whenever every gateway has strictly positive
// lookahead (EarliestOutput(net) > net): then B > min NET and at least one
// domain executes at least one event per window. A zero-lookahead gateway
// (e.g. a Nectar circuit, which forwards with zero switch delay) would stall
// the scheduler, which is reported as an error rather than spinning.
//
// Determinism: within a domain the kernel's (time, seq) order is untouched;
// across domains every scheduler decision (NET, B, outbox drain order) is a
// pure function of simulation state, so repeated runs are bit-identical. The
// residual difference from a sequential single-kernel run is the seq
// tiebreak among events at the *exact same nanosecond* that are causally
// independent across domains; internal/obs canonicalization makes rendered
// output order-independent for such ties.
package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"

	"nectar/internal/prof"
)

// MaxTime is the "never" sentinel used by the coupling scheduler and by
// Gateway implementations. It is far below math.MaxInt64 so that adding a
// lookahead to it cannot overflow.
const MaxTime Time = math.MaxInt64 / 4

// Gateway is an inter-domain output port. EarliestOutput returns a lower
// bound on the timestamp of any future inter-domain message emitted via
// this gateway, given that the owning domain's next local event is at net
// (MaxTime when the domain is idle). Implementations should saturate at
// MaxTime rather than overflow. It is only called between windows, never
// concurrently with domain execution.
type Gateway interface {
	EarliestOutput(net Time) Time
}

// ChannelGateway is a Gateway that can additionally bound its earliest
// output per destination domain. EarliestOutputTo returns a lower bound on
// the timestamp of any future inter-domain message this gateway can emit
// *into domain dst*, given actFloor — a lower bound on the earliest
// instant any event can execute in the gateway's owning domain (its next
// event time; MaxTime when idle). Implementations typically sharpen the
// global bound two ways: traffic already committed to other destinations
// does not cap the bound for dst, and hypothetical future emissions can
// carry a preparation margin (CPU time provably consumed between the
// triggering event and the emission).
//
// When every gateway of every domain implements ChannelGateway, the
// coupling scheduler computes one safe bound per destination domain
// instead of a single global bound, so a domain no longer throttles
// itself on its own potential emissions and windows coalesce.
type ChannelGateway interface {
	Gateway
	EarliestOutputTo(dst int, actFloor Time) Time
}

// pendingInj is one buffered inter-domain message. bytes carries the
// message's wire size when known (SendSized) so the profiler can
// attribute cross-shard drain volume; it never affects scheduling.
type pendingInj struct {
	at    Time
	bytes int
	fn    func()
}

// Domain is one kernel participating in a Coupling.
type Domain struct {
	c  *Coupling
	id int
	// The domain's kernel and outbox are the per-shard state the PDES
	// determinism proof rests on: only the owning worker goroutine may
	// touch them inside a window, and cross-domain traffic must go
	// through the window-barrier drain (//nectar:shard-boundary
	// surfaces). The annotations make nectar-vet's shardsafe analyzer
	// enforce exactly that.
	k        *Kernel //nectar:shard-owned
	gateways []Gateway
	out      [][]pendingInj //nectar:shard-owned

	// Adaptive window barrier. Safe windows are short (the HUB setup
	// lookahead is 700 ns of virtual time, typically a handful of events
	// costing a few microseconds of wall clock), so parking the worker
	// goroutine on a channel at every barrier costs more than the window
	// itself. The scheduler publishes each window by storing its bound and
	// then a fresh sequence number; the worker executes and stores the
	// sequence back. Both sides first spin on the atomics (sync/atomic
	// gives the barrier its happens-before edges) and only park on their
	// wake channel after spinLimit polls, so in steady state windows hand
	// off in nanoseconds while an idle simulation still blocks properly.
	winSeq  atomic.Uint64 // scheduler -> worker: window sequence
	doneSeq atomic.Uint64 // worker -> scheduler: completed sequence
	winB    atomic.Int64  // bound of the published window
	werr    error         // set by the worker before doneSeq
	stop    atomic.Bool   // scheduler -> worker: exit when idle
	exited  chan struct{} // closed by the worker on exit
	wp      parker        // worker's park/wake point

	// wprof is the shard's wall-clock profiling collector (nil unless the
	// coupling has a profile attached): the worker goroutine accrues its
	// own compute time and spin-vs-park barrier wait split into it. All
	// collector methods are nil-receiver tolerant, so the disabled barrier
	// path costs one nil check.
	wprof *prof.Worker
}

// spinLimit bounds busy-polling at the window barrier before parking on
// the wake channel (roughly a few microseconds of polling).
const spinLimit = 4096

// parker is a two-phase wait point: the waiter advertises that it is
// about to block, re-checks its condition, and then receives on wake; the
// signaler stores the condition and sends a token only if the waiter is
// (or is about to be) parked. The buffered channel makes the token send
// non-blocking; a stale token at most causes one spurious re-check, never
// a missed wakeup, because the waiter always re-checks its condition
// between parking and blocking.
type parker struct {
	parked atomic.Bool
	wake   chan struct{}
}

func newParker() parker { return parker{wake: make(chan struct{}, 1)} }

// wakeIf sends a wake token if the waiter advertised itself parked.
func (p *parker) wakeIf() {
	if p.parked.Load() {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

// awaitWindow blocks until a window newer than last is published (returning
// its sequence) or the scheduler asks the worker to exit (returning ok =
// false). It spins first and parks only when the simulation goes quiet.
// parked reports whether the wait ever blocked on the wake channel (the
// profiler's spin-vs-park barrier split).
func (d *Domain) awaitWindow(last uint64) (seq uint64, ok, parked bool) {
	for {
		for i := 0; i < d.c.spin; i++ {
			if s := d.winSeq.Load(); s != last {
				return s, true, parked
			}
			if d.stop.Load() {
				return 0, false, parked
			}
		}
		d.wp.parked.Store(true)
		if d.winSeq.Load() == last && !d.stop.Load() {
			<-d.wp.wake
			parked = true
		}
		d.wp.parked.Store(false)
		if s := d.winSeq.Load(); s != last {
			return s, true, parked
		}
		if d.stop.Load() {
			return 0, false, parked
		}
	}
}

// awaitDone blocks until domain d reports window seq complete, spinning
// first and parking on the scheduler's wake point if the worker is slow.
func (c *Coupling) awaitDone(d *Domain, seq uint64) {
	for {
		for i := 0; i < c.spin; i++ {
			if d.doneSeq.Load() == seq {
				return
			}
		}
		c.sp.parked.Store(true)
		if d.doneSeq.Load() != seq {
			<-c.sp.wake
		}
		c.sp.parked.Store(false)
		if d.doneSeq.Load() == seq {
			return
		}
	}
}

// Kernel returns the domain's kernel.
func (d *Domain) Kernel() *Kernel { return d.k }

// ID returns the domain's index within its Coupling.
func (d *Domain) ID() int { return d.id }

// AddGateway registers an inter-domain output port with the domain. Every
// path by which the domain can emit inter-domain messages must be covered
// by a gateway, or the safe bound would be wrong.
func (d *Domain) AddGateway(g Gateway) { d.gateways = append(d.gateways, g) }

// Send delivers fn at virtual time at in dst. Same-domain sends degenerate
// to Kernel.At. Cross-domain sends are buffered and injected at the next
// window barrier; at must be >= the current safe bound, which holds by
// construction when at carries a gateway's lookahead. Send must be called
// from within d's executing window (i.e. from an event on d's kernel).
func (d *Domain) Send(dst *Domain, at Time, fn func()) { d.SendSized(dst, at, 0, fn) }

// SendSized is Send carrying the message's wire size in bytes, which the
// wall-clock profiler attributes to the source shard's cross-shard drain
// volume. Pass 0 when no meaningful size exists.
func (d *Domain) SendSized(dst *Domain, at Time, bytes int, fn func()) {
	if dst == d {
		d.k.At(at, fn)
		return
	}
	d.out[dst.id] = append(d.out[dst.id], pendingInj{at: at, bytes: bytes, fn: fn})
}

// Coupling couples kernels into one logical simulation advancing in
// conservative safe windows. Domains are executed on their own goroutines;
// the scheduler synchronizes them at window barriers, so model code still
// never needs locks (each kernel remains single-threaded).
type Coupling struct {
	domains []*Domain
	windows uint64 // safe windows executed (scheduler statistics)
	multi   uint64 // windows with >1 active domain (true parallelism)
	sp      parker // scheduler's park/wake point (workers signal done)
	spin    int    // barrier poll budget before parking (set per run)

	// Per-destination safe bounds (the per-channel scheduler). bounds[i]
	// is domain i's window bound for the current round; chans[i] caches
	// domain i's gateways down-asserted to ChannelGateway. Both are
	// (re)built at run start; chans is nil when any gateway lacks
	// per-channel support, selecting the legacy single-bound path.
	bounds []Time
	acts   []Time
	chans  [][]ChannelGateway

	// pr is the attached wall-clock profile, nil unless profiling was
	// requested. Every collector call below is nil-receiver tolerant, so
	// the disabled scheduler pays one nil check per phase and the worker
	// barrier path stays allocation-free (AllocsPerRun-guarded).
	pr *prof.Profile
}

// SetProfile attaches a wall-clock profile to the coupling (nil detaches
// it). It must only be called between runs: the scheduler and its workers
// read the pointer un-synchronized while a run is in flight.
func (c *Coupling) SetProfile(p *prof.Profile) { c.pr = p }

// Profile returns the attached wall-clock profile, nil when disabled.
func (c *Coupling) Profile() *prof.Profile { return c.pr }

// Windows reports how many safe windows the scheduler has executed; the
// ratio of events to windows is the effective batching the lookahead
// bought.
func (c *Coupling) Windows() uint64 { return c.windows }

// MultiWindows reports how many of those windows had more than one active
// domain (i.e. actually executed in parallel).
func (c *Coupling) MultiWindows() uint64 { return c.multi }

// NewCoupling creates an empty coupling.
func NewCoupling() *Coupling { return &Coupling{} }

// AddDomain wraps k as a new domain of the coupling.
func (c *Coupling) AddDomain(k *Kernel) *Domain {
	d := &Domain{c: c, k: k, id: len(c.domains)}
	c.domains = append(c.domains, d)
	return d
}

// Domains returns the number of domains.
func (c *Coupling) Domains() int { return len(c.domains) }

// Domain returns domain i.
func (c *Coupling) Domain(i int) *Domain { return c.domains[i] }

// Now returns the coupling's virtual time: the maximum over domain clocks
// (all clocks agree after RunUntil/RunFor).
//
//nectar:shard-boundary reads every domain clock between windows, when workers are quiescent behind the doneSeq barrier
func (c *Coupling) Now() Time {
	var t Time
	for _, d := range c.domains {
		if n := d.k.Now(); n > t {
			t = n
		}
	}
	return t
}

// Run executes the coupled simulation until every domain's queue is empty.
// Like Kernel.Run, blocked procs at drain time are a deadlock.
func (c *Coupling) Run() error { return c.run(MaxTime, true) }

// RunUntil executes events with timestamps <= horizon in every domain and
// then advances all clocks to horizon.
func (c *Coupling) RunUntil(horizon Time) error { return c.run(horizon, false) }

// RunFor is RunUntil(Now()+d).
func (c *Coupling) RunFor(d Duration) error { return c.run(c.Now()+Time(d), false) }

// run is the window scheduler: it computes each safe window, publishes
// it to the domain workers, and drains the outboxes at the barrier. It
// is the one function allowed to touch every domain's kernel and outbox;
// the winSeq/doneSeq atomics give those cross-domain accesses their
// happens-before edges (see the Domain comment above).
//
//nectar:shard-boundary window-barrier scheduler and outbox drain, ordered by the winSeq/doneSeq atomics
func (c *Coupling) run(horizon Time, drain bool) error {
	if len(c.domains) == 0 {
		return nil
	}
	if len(c.domains) == 1 {
		// Degenerate coupling: no windows needed, run the kernel directly.
		d := c.domains[0]
		if drain {
			return d.k.Run()
		}
		return d.k.RunUntil(horizon)
	}
	for _, d := range c.domains {
		for len(d.out) < len(c.domains) {
			d.out = append(d.out, nil)
		}
	}
	// Per-channel mode: available only when every gateway can bound its
	// output per destination. The assertion results are cached so the
	// choose loop below stays free of interface type switches (and of
	// allocations — see the AllocsPerRun guard in pdes_alloc_test.go).
	if len(c.bounds) != len(c.domains) {
		c.bounds = make([]Time, len(c.domains))
		c.acts = make([]Time, len(c.domains))
	}
	c.chans = c.chans[:0]
	perChan := true
	for _, d := range c.domains {
		var cgs []ChannelGateway
		for _, g := range d.gateways {
			cg, ok := g.(ChannelGateway)
			if !ok {
				perChan = false
				break
			}
			cgs = append(cgs, cg)
		}
		if !perChan {
			break
		}
		c.chans = append(c.chans, cgs)
	}
	if !perChan {
		c.chans = nil
	}
	// One worker goroutine per domain for the duration of this run. The
	// winSeq/doneSeq atomics give the barrier its happens-before edges:
	// everything a worker did inside a window is visible to the scheduler
	// after it loads doneSeq == seq, and everything the scheduler injected
	// is visible to the worker after it loads the fresh winSeq.
	if c.sp.wake == nil {
		c.sp = newParker()
	}
	// Spin at the barrier only when there are genuinely enough cores to
	// run every domain worker plus the scheduler simultaneously; otherwise
	// busy-polling steals the very core the awaited party needs, and
	// parking promptly (plain channel blocking) is strictly better.
	procs := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < procs {
		procs = n
	}
	c.spin = 1
	if procs > len(c.domains) {
		c.spin = spinLimit
	}
	// Scheduler-goroutine pprof labels: the drain loop, the publish+await
	// barrier, and inline single-shard windows all execute here, so they
	// get the same shard/phase tagging as the workers. Built before the
	// profiled wall-clock span opens — label-map construction is setup
	// cost, not a scheduler phase.
	var schedBase, schedBarrier, schedDrain context.Context
	var schedInline []context.Context
	if c.pr != nil {
		schedBase = context.Background()
		schedBarrier = pprof.WithLabels(schedBase, pprof.Labels("phase", "barrier"))
		schedDrain = pprof.WithLabels(schedBase, pprof.Labels("phase", "drain"))
		schedInline = make([]context.Context, len(c.domains))
		for i := range schedInline {
			schedInline[i] = pprof.WithLabels(schedBase, pprof.Labels("shard", strconv.Itoa(i), "phase", "compute"))
		}
		defer pprof.SetGoroutineLabels(schedBase)
	}
	active := make([]*Domain, 0, len(c.domains))

	tRun := c.pr.Now()
	for _, d := range c.domains {
		d.stop.Store(false)
		d.wprof = c.pr.Worker(d.id)
		if d.wp.wake == nil {
			d.wp = newParker()
		}
		d.exited = make(chan struct{})
		go func(d *Domain) {
			defer close(d.exited)
			// Profiling state: w is nil on unprofiled runs, making every
			// collector call below a nil check. The pprof label contexts
			// tag CPU samples by shard and phase (compute vs barrier) so
			// `go tool pprof` can slice the same run the Report does.
			w := d.wprof
			var computeCtx, barrierCtx context.Context
			if w != nil {
				shard := strconv.Itoa(d.id)
				computeCtx = pprof.WithLabels(context.Background(), pprof.Labels("shard", shard, "phase", "compute"))
				barrierCtx = pprof.WithLabels(context.Background(), pprof.Labels("shard", shard, "phase", "barrier"))
				pprof.SetGoroutineLabels(barrierCtx)
				defer pprof.SetGoroutineLabels(context.Background())
			}
			// Resume from the last *completed* window: the scheduler may
			// publish the first window of this run before the worker's
			// first load, so initializing from winSeq would skip it.
			// tw is the worker's chained stopwatch: each collector call
			// returns the sample that starts the next interval, so wait
			// and compute tile the worker's wall clock exactly.
			last := d.doneSeq.Load()
			tw := w.Now()
			for {
				s, ok, parked := d.awaitWindow(last)
				if !ok {
					return
				}
				tw = w.Wait(tw, parked)
				var ev0 uint64
				if w != nil {
					ev0 = d.k.steps
					pprof.SetGoroutineLabels(computeCtx)
				}
				d.werr = d.k.runBounded(Time(d.winB.Load()))
				if w != nil {
					tw = w.Compute(tw, d.k.steps-ev0)
					pprof.SetGoroutineLabels(barrierCtx)
				}
				d.doneSeq.Store(s)
				d.c.sp.wakeIf()
				last = s
			}
		}(d)
	}
	// ts is the scheduler's chained stopwatch: each phase collector samples
	// its end time once and returns it as the next phase's start, so
	// choose, compute/barrier, and drain intervals tile the scheduler's
	// wall clock exactly — collector bookkeeping is charged to the
	// following phase instead of leaking into unaccounted gaps.
	ts := c.pr.SpawnJoin(tRun)
	defer func() {
		tJoin := c.pr.Now()
		for _, d := range c.domains {
			d.stop.Store(true)
			d.wp.wakeIf()
		}
		for _, d := range c.domains {
			<-d.exited
		}
		c.pr.SpawnJoin(tJoin)
		c.pr.RunEnd(tRun)
	}()
	for {
		// Next Event Time per domain; MaxTime = idle.
		minNET := MaxTime
		for _, d := range c.domains {
			if at, ok := d.k.NextEventAt(); ok && at < minNET {
				minNET = at
			}
		}
		if minNET == MaxTime {
			// Globally idle.
			c.pr.ChooseAbort(ts)
			if !drain {
				for _, d := range c.domains {
					d.k.advanceTo(horizon)
				}
				return nil
			}
			var blocked []string
			for _, d := range c.domains {
				if len(d.k.procs) > 0 {
					blocked = append(blocked, fmt.Sprintf("domain %d: %s", d.id, d.k.procNames()))
				}
			}
			if len(blocked) > 0 {
				return fmt.Errorf("sim: deadlock at %v: blocked procs: %s", c.Now(), strings.Join(blocked, "; "))
			}
			return nil
		}
		if !drain && minNET > horizon {
			c.pr.ChooseAbort(ts)
			for _, d := range c.domains {
				d.k.advanceTo(horizon)
			}
			return nil
		}
		// Safe bounds. Per-channel mode computes one bound per destination
		// domain: bounds[dst] = min over *other* domains' gateways of
		// their earliest output into dst. Excluding dst's own gateways is
		// what lets a shard run ahead of its own potential emissions —
		// with a single global bound, any busy domain with an idle uplink
		// pins every window at net+lookahead. Legacy mode keeps the global
		// bound (bounds[i] identical for all i).
		var bMin Time
		if perChan {
			// Activity floors: act[d] lower-bounds when *any* event can
			// execute in d — not just d's pending events, but also events
			// created by messages other domains may yet send it. A domain
			// far ahead of the pack can be pulled back by an injection
			// (its NET is not monotone across rounds!), so using raw NETs
			// as emission floors is unsound: A could be woken by B and
			// then emit into B's past. The fixpoint below (Bellman-Ford
			// over the domain graph; every hop adds at least the gateway
			// delay, so it converges in at most len(domains) passes)
			// accounts for those transitive wake-up chains.
			for _, d := range c.domains {
				c.acts[d.id] = MaxTime
				if at, ok := d.k.NextEventAt(); ok {
					c.acts[d.id] = at
				}
			}
			for changed := true; changed; {
				changed = false
				for _, d := range c.domains {
					for _, g := range c.chans[d.id] {
						for _, dst := range c.domains {
							if dst == d {
								continue
							}
							if e := g.EarliestOutputTo(dst.id, c.acts[d.id]); e < c.acts[dst.id] {
								c.acts[dst.id] = e
								changed = true
							}
						}
					}
				}
			}
			// Per-destination bounds from the converged floors: bounds[A]
			// = min over other domains' gateways of their earliest output
			// into A.
			for i := range c.bounds {
				c.bounds[i] = MaxTime
			}
			for _, d := range c.domains {
				act := c.acts[d.id]
				for _, g := range c.chans[d.id] {
					emin := MaxTime
					for _, dst := range c.domains {
						if dst == d {
							continue
						}
						e := g.EarliestOutputTo(dst.id, act)
						if e < c.bounds[dst.id] {
							c.bounds[dst.id] = e
						}
						if e < emin {
							emin = e
						}
					}
					if c.pr != nil && act < MaxTime && emin < MaxTime {
						c.pr.Lookahead(int64(emin - act))
					}
				}
			}
			bMin = MaxTime
			for _, b := range c.bounds {
				if b < bMin {
					bMin = b
				}
			}
		} else {
			b := MaxTime
			for _, d := range c.domains {
				net := MaxTime
				if at, ok := d.k.NextEventAt(); ok {
					net = at
				}
				for _, g := range d.gateways {
					e := g.EarliestOutput(net)
					if c.pr != nil && net < MaxTime && e < MaxTime {
						c.pr.Lookahead(int64(e - net))
					}
					if e < b {
						b = e
					}
				}
			}
			if b <= minNET {
				c.pr.ChooseAbort(ts)
				return fmt.Errorf("sim: coupling stalled at %v: safe bound %v <= next event %v (a gateway has zero lookahead)",
					c.Now(), b, minNET)
			}
			for i := range c.bounds {
				c.bounds[i] = b
			}
			bMin = b
		}
		span := int64(0) // virtual window width before horizon clamp
		if bMin > minNET {
			span = int64(bMin - minNET)
		}
		if !drain {
			for i := range c.bounds {
				if c.bounds[i] > horizon+1 {
					c.bounds[i] = horizon + 1 // runBounded is exclusive: executes events <= horizon
				}
			}
		}
		// Parallel window: every domain with events below its bound
		// executes them; idle domains are skipped (their clocks advance
		// lazily). A window with a single active domain runs inline on the
		// scheduler goroutine — its kernel's state is synchronized by the
		// previous barrier, and the next winSeq store republishes it to
		// the worker.
		c.windows++
		seq := c.windows
		active = active[:0]
		for _, d := range c.domains {
			if at, ok := d.k.NextEventAt(); ok && at < c.bounds[d.id] {
				active = append(active, d)
			}
		}
		if len(active) == 0 {
			// Per-channel bounds guarantee progress whenever gateways have
			// positive lookahead toward the minNET owner; an empty active
			// set means some gateway reported a bound at or below a
			// pending event, i.e. zero lookahead.
			c.pr.ChooseAbort(ts)
			return fmt.Errorf("sim: coupling stalled at %v: no domain below its safe bound (min bound %v, next event %v)",
				c.Now(), bMin, minNET)
		}
		ts = c.pr.Choose(ts, span, len(active))
		var firstErr error
		if len(active) == 1 {
			d := active[0]
			var ev0 uint64
			if c.pr != nil {
				ev0 = d.k.steps
				pprof.SetGoroutineLabels(schedInline[d.id])
			}
			firstErr = d.k.runBounded(c.bounds[d.id])
			if c.pr != nil {
				pprof.SetGoroutineLabels(schedBase)
				ts = c.pr.Inline(ts, d.id, d.k.steps-ev0)
				c.pr.WindowEvents(d.k.steps - ev0)
			}
		} else {
			c.multi++
			var ev0 uint64
			if c.pr != nil {
				for _, d := range active {
					ev0 += d.k.steps
				}
				pprof.SetGoroutineLabels(schedBarrier)
			}
			for _, d := range active {
				d.winB.Store(int64(c.bounds[d.id]))
				d.winSeq.Store(seq)
				d.wp.wakeIf()
			}
			for _, d := range active {
				c.awaitDone(d, seq)
				if err := d.werr; err != nil && firstErr == nil {
					firstErr = err
				}
			}
			if c.pr != nil {
				pprof.SetGoroutineLabels(schedBase)
				ts = c.pr.Barrier(ts)
				var ev1 uint64
				for _, d := range active {
					ev1 += d.k.steps
				}
				c.pr.WindowEvents(ev1 - ev0)
			}
		}
		if firstErr != nil {
			return firstErr
		}
		// Barrier: drain outboxes in deterministic order (source domain
		// index, then emission order). Every buffered timestamp is >= the
		// destination's bound for this window > every event its kernel
		// executed, so injection never schedules into the past. Each
		// (src, dst) batch is injected in one kernel call: sequence
		// numbers are assigned in drain order, and heap pop order depends
		// only on the (time, seq) keys, so batching cannot perturb the
		// merged event order.
		if c.pr != nil {
			pprof.SetGoroutineLabels(schedDrain)
		}
		for _, src := range c.domains {
			for dstID := range src.out {
				injs := src.out[dstID]
				if len(injs) == 0 {
					continue
				}
				dst := c.domains[dstID]
				bytes := dst.k.injectBatch(injs)
				c.pr.DrainOut(src.id, uint64(len(injs)), bytes)
				src.out[dstID] = injs[:0]
			}
		}
		if c.pr != nil {
			pprof.SetGoroutineLabels(schedBase)
		}
		ts = c.pr.Drain(ts)
	}
}
