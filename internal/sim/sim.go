// Package sim provides the deterministic discrete-event kernel that all of
// the Nectar hardware and runtime models execute on.
//
// The kernel owns a virtual clock and an event queue ordered by
// (time, sequence number), which makes every run fully deterministic: two
// events scheduled for the same instant fire in the order they were
// scheduled. Simulated activities are either callbacks (At/After, which must
// not block) or Procs — goroutines that the kernel runs one at a time,
// SimPy-style, and that may block on virtual time (Sleep) or on Signals.
//
// The kernel itself is single-threaded: exactly one goroutine (either the
// caller of Run or one Proc) is ever executing simulation code. Handoff
// between the kernel loop and a Proc uses a single unbuffered channel pair,
// so there is no data race on simulation state and no need for locks in any
// model code. Distinct Kernels share nothing, so independent simulations may
// run concurrently on separate goroutines (the parallel experiment harness
// in internal/bench relies on this).
//
// # Event-queue design
//
// The run queue is built for the protocol-stack hot path, where timers are
// armed and cancelled far more often than they fire (every TCP/RMP
// transmission re-arms its retransmission timer):
//
//   - Event records live in a slot arena ([]event) recycled through a
//     free list, so After/At perform no per-call allocation in steady
//     state. Timer handles are small (slot, generation) values — the
//     generation is bumped when a slot is freed, which invalidates stale
//     handles without any heap-allocated state.
//   - The priority queue is an inlined 4-ary min-heap over (at, seq) keys
//     stored directly in the heap entries. A 4-ary heap halves the tree
//     depth of a binary heap and keeps sibling keys in adjacent cache
//     lines; comparisons never chase event pointers.
//   - Timer.Stop removes the event from the heap eagerly (sift-fix at its
//     index) instead of leaving a dead record resident until pop, so
//     timer-heavy workloads do not grow the queue with cancelled RTOs,
//     and PendingEvents is a maintained O(1) counter.
//
// Because every key (at, seq) is unique and the comparator is total, the
// pop order — and therefore every simulation result — is byte-identical to
// the previous container/heap implementation (see the determinism tests and
// BENCH_kernel.json for the recorded speedup).
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/1e3)
}

func (d Duration) String() string {
	return fmt.Sprintf("%.3fus", float64(d)/1e3)
}

// Micros reports the duration in (fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Nanos reports the duration as integer virtual nanoseconds. It is the
// unit-dropping exit point: code outside package sim should reach for it
// (or Micros/Seconds) instead of casting, so the unitsafe analyzer can
// tell a deliberate measurement boundary from an accidental one.
func (d Duration) Nanos() int64 { return int64(d) }

// Seconds reports the duration in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros reports the instant in (fractional) microseconds since the
// virtual epoch.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Nanos reports the instant as integer virtual nanoseconds since the
// virtual epoch; like Duration.Nanos, the audited unit-dropping exit.
func (t Time) Nanos() int64 { return int64(t) }

// Micros constructs a Duration from fractional microseconds.
func Micros(us float64) Duration { return Duration(us * 1e3) }

// event is one slot in the kernel's event arena. Slots are recycled through
// a free list; gen distinguishes successive occupancies so stale Timer
// handles are detected without per-timer allocation.
type event struct {
	at      Time
	seq     uint64
	fn      func()
	gen     uint64
	heapIdx int32 // index into Kernel.heap while queued
}

// heapEntry is one node of the 4-ary min-heap. The ordering key is stored
// inline so sift operations never dereference the arena.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Timer is a handle to a scheduled callback that can be cancelled. The zero
// Timer is valid and behaves like an already-fired timer (Stop and Pending
// report false, When reports 0), so struct fields holding a Timer need no
// "armed" sentinel.
type Timer struct {
	k    *Kernel
	slot int32
	gen  uint64
}

// Stop cancels the timer, eagerly removing its event from the queue. It
// reports whether the callback was still pending (false if it already fired
// or was already stopped).
//
//nectar:hotpath
func (t Timer) Stop() bool {
	k := t.k
	if k == nil {
		return false
	}
	e := &k.arena[t.slot]
	if e.gen != t.gen {
		return false
	}
	k.heapRemove(int(e.heapIdx))
	k.freeSlot(t.slot)
	return true
}

// Pending reports whether the timer has not yet fired or been stopped.
func (t Timer) Pending() bool {
	return t.k != nil && t.k.arena[t.slot].gen == t.gen
}

// When reports the virtual time at which the timer will fire. For a zero,
// stopped, or already-fired timer it returns the zero Time (use Pending to
// distinguish a live timer scheduled for t=0).
func (t Timer) When() Time {
	if t.k == nil {
		return 0
	}
	e := &t.k.arena[t.slot]
	if e.gen != t.gen {
		return 0
	}
	return e.at
}

// Kernel is the discrete-event simulation kernel.
type Kernel struct {
	now Time
	seq uint64
	// The event heap, arena, and free list are per-shard state under
	// PDES sharding (one kernel per domain): //nectar:shard-owned makes
	// shardsafe reject any access that cannot prove same-domain
	// ownership through a receiver/parameter chain.
	heap []heapEntry //nectar:shard-owned

	arena []event //nectar:shard-owned
	free  []int32 //nectar:shard-owned

	// steps counts dispatched events for the whole life of the kernel: the
	// profiler's sampling counter on the dispatch loop. One increment per
	// event — cheap enough to stay unconditional.
	steps uint64 //nectar:shard-owned

	procs   map[*Proc]struct{} // live procs (for deadlock reporting)
	current *Proc              // proc currently executing, nil = kernel loop
	handoff chan struct{}      // proc -> kernel: "I have yielded"
	failure error              // a proc panicked or Fatalf was called
	running bool
	tracer  func(name string, at Time)
	// Opaque slot for the observability layer (internal/obs). Traces and
	// metrics are per-domain under PDES sharding (merged at the end of
	// the run), so the slot is shard-owned like the heap.
	observer any //nectar:shard-owned
}

// SetObserver attaches an opaque observability object to the kernel. The
// kernel never inspects it; it exists so layers sharing a kernel can find
// the same observer without the sim package importing internal/obs.
func (k *Kernel) SetObserver(o any) { k.observer = o }

// Observer returns the object installed with SetObserver (nil if none).
func (k *Kernel) Observer() any { return k.observer }

// SetTracer installs an instrumentation callback invoked by Mark. Pass nil
// to disable tracing (the default; Mark is then nearly free).
func (k *Kernel) SetTracer(fn func(name string, at Time)) { k.tracer = fn }

// Mark records a named instant when a tracer is installed. Hardware and
// runtime layers call it at stage boundaries so experiments (e.g. the
// Figure 6 latency breakdown) can attribute time without changing code
// paths. Hot paths should pass a precomputed name (see Markf's doc comment).
func (k *Kernel) Mark(name string) {
	if k.tracer != nil {
		k.tracer(name, k.now)
	}
}

// Markf is Mark with lazy formatting: the name is only built when a tracer
// is installed. Note that the variadic args slice itself is built by the
// caller even with tracing off, so per-event hot paths should precompute
// their mark name once (layers qualify marks with a node identity that is
// fixed at construction time) and call Mark instead.
func (k *Kernel) Markf(format string, args ...any) {
	if k.tracer != nil {
		k.tracer(fmt.Sprintf(format, args...), k.now)
	}
}

// NewKernel creates an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{
		procs:   make(map[*Proc]struct{}),
		handoff: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// schedule inserts an event at time at (>= now) and returns its slot.
//
//nectar:hotpath
func (k *Kernel) schedule(at Time, fn func()) int32 {
	if at < k.now {
		Panicf("sim: scheduling into the past: %v < now %v", at, k.now)
	}
	k.seq++
	var slot int32
	if n := len(k.free); n > 0 {
		slot = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.arena = append(k.arena, event{})
		slot = int32(len(k.arena) - 1)
	}
	e := &k.arena[slot]
	e.at = at
	e.seq = k.seq
	e.fn = fn
	k.heapPush(heapEntry{at: at, seq: k.seq, slot: slot})
	return slot
}

// freeSlot recycles an arena slot, invalidating outstanding Timer handles.
//
//nectar:hotpath
func (k *Kernel) freeSlot(slot int32) {
	e := &k.arena[slot]
	e.fn = nil
	e.gen++
	e.heapIdx = -1
	k.free = append(k.free, slot)
}

// injectBatch schedules a window's buffered cross-domain injections in a
// single call (the coupling's barrier drain). Heap and arena capacity are
// reserved up front so the per-injection schedule calls never reallocate
// mid-batch; sequence numbers are assigned here in batch order, and heap
// pop order depends only on the (time, seq) keys, so batching is
// indistinguishable from individual At calls in the same order. Returns
// the summed wire bytes for the profiler's drain accounting.
func (k *Kernel) injectBatch(injs []pendingInj) uint64 {
	n := len(injs)
	if cap(k.heap)-len(k.heap) < n {
		grown := make([]heapEntry, len(k.heap), len(k.heap)+n+len(k.heap)/2)
		copy(grown, k.heap)
		k.heap = grown
	}
	if spare := len(k.free) + (cap(k.arena) - len(k.arena)); spare < n {
		grown := make([]event, len(k.arena), len(k.arena)+n+len(k.arena)/2)
		copy(grown, k.arena)
		k.arena = grown
	}
	var bytes uint64
	for i := range injs {
		k.schedule(injs[i].at, injs[i].fn)
		bytes += uint64(injs[i].bytes)
	}
	return bytes
}

// At schedules fn to run at absolute virtual time at. fn runs in kernel
// context and must not block.
//
//nectar:hotpath
func (k *Kernel) At(at Time, fn func()) Timer {
	slot := k.schedule(at, fn)
	return Timer{k: k, slot: slot, gen: k.arena[slot].gen}
}

// After schedules fn to run d from now. fn runs in kernel context and must
// not block.
//
//nectar:hotpath
func (k *Kernel) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+Time(d), fn)
}

// Fatalf aborts the simulation with an error; Run returns it.
func (k *Kernel) Fatalf(format string, args ...any) {
	if k.failure == nil {
		k.failure = fmt.Errorf(format, args...)
	}
}

// --- inlined 4-ary min-heap ---

//nectar:hotpath
func (k *Kernel) heapPush(e heapEntry) {
	k.heap = append(k.heap, e)
	k.siftUp(len(k.heap) - 1)
}

//nectar:hotpath
func (k *Kernel) siftUp(i int) {
	h := k.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		k.arena[h[i].slot].heapIdx = int32(i)
		i = p
	}
	h[i] = e
	k.arena[e.slot].heapIdx = int32(i)
}

//nectar:hotpath
func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], e) {
			break
		}
		h[i] = h[m]
		k.arena[h[i].slot].heapIdx = int32(i)
		i = m
	}
	h[i] = e
	k.arena[e.slot].heapIdx = int32(i)
}

// heapRemove deletes the entry at heap index i, restoring heap order.
//
//nectar:hotpath
func (k *Kernel) heapRemove(i int) {
	h := k.heap
	n := len(h) - 1
	last := h[n]
	k.heap = h[:n]
	if i < n {
		h[i] = last
		k.arena[last.slot].heapIdx = int32(i)
		k.siftDown(i)
		k.siftUp(i)
	}
}

// step pops and executes one event. Returns false when the queue is empty.
//
//nectar:hotpath
func (k *Kernel) step() bool {
	if len(k.heap) == 0 {
		return false
	}
	top := k.heap[0]
	if top.at < k.now {
		panic("sim: time went backwards")
	}
	k.heapRemove(0)
	k.now = top.at
	k.steps++
	fn := k.arena[top.slot].fn
	k.freeSlot(top.slot)
	fn()
	return true
}

// Dispatched reports how many events the kernel has executed since
// creation — the dispatch-loop sampling counter wall-clock profiling
// (internal/prof) uses to attribute events to windows and shards.
func (k *Kernel) Dispatched() uint64 { return k.steps }

// Run executes events until the queue is empty or the horizon (if > 0) is
// reached. It returns an error if a proc panicked or Fatalf was called.
// If the queue drains while procs are still blocked, Run returns a deadlock
// error naming them — models that want an idle-but-alive system (e.g. a
// server waiting forever) should stop via RunUntil instead.
func (k *Kernel) Run() error { return k.run(-1) }

// RunUntil executes events with timestamps <= horizon and then advances the
// clock to horizon. Blocked procs are not a deadlock under RunUntil.
func (k *Kernel) RunUntil(horizon Time) error { return k.run(horizon) }

// RunFor is RunUntil(Now()+d).
func (k *Kernel) RunFor(d Duration) error { return k.run(k.now + Time(d)) }

func (k *Kernel) run(horizon Time) error {
	if k.running {
		panic("sim: Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.failure == nil {
		if horizon >= 0 && len(k.heap) > 0 {
			// Peek: stop before executing events past the horizon.
			if k.heap[0].at > horizon {
				break
			}
		}
		if !k.step() {
			break
		}
	}
	if k.failure != nil {
		return k.failure
	}
	if horizon >= 0 {
		if k.now < horizon {
			k.now = horizon
		}
		return nil
	}
	if len(k.procs) > 0 {
		return fmt.Errorf("sim: deadlock at %v: blocked procs: %s", k.now, k.procNames())
	}
	return nil
}

func (k *Kernel) procNames() string {
	var names []string
	for p := range k.procs {
		names = append(names, p.name+"@"+p.state)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool { return len(k.heap) == 0 }

// NextEventAt reports the timestamp of the earliest pending event, or
// (0, false) when the queue is empty. The coupling scheduler uses it to
// compute each domain's Next Event Time without disturbing the queue.
func (k *Kernel) NextEventAt() (Time, bool) {
	if len(k.heap) == 0 {
		return 0, false
	}
	return k.heap[0].at, true
}

// runBounded executes every event with timestamp strictly less than bound
// and returns without advancing the clock past the last executed event.
// Unlike RunUntil it does not finalize the clock at the bound: the caller
// (a Coupling window scheduler) may still inject events at times >= the
// current bound before choosing the next one. Blocked procs are never a
// deadlock under runBounded.
func (k *Kernel) runBounded(bound Time) error {
	if k.running {
		panic("sim: Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.failure == nil {
		if len(k.heap) == 0 || k.heap[0].at >= bound {
			break
		}
		if !k.step() {
			break
		}
	}
	return k.failure
}

// advanceTo finalizes the clock at t (>= now) without executing events.
// The coupling scheduler calls it when a run horizon is reached so that
// Now() agrees across domains even if a domain had no events this window.
func (k *Kernel) advanceTo(t Time) {
	if t > k.now {
		k.now = t
	}
}

// PendingEvents returns the number of live events in the queue. Stopped
// timers are removed eagerly, so this is simply the queue length — O(1),
// where it used to scan the queue filtering dead entries.
func (k *Kernel) PendingEvents() int { return len(k.heap) }
