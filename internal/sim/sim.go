// Package sim provides the deterministic discrete-event kernel that all of
// the Nectar hardware and runtime models execute on.
//
// The kernel owns a virtual clock and an event queue ordered by
// (time, sequence number), which makes every run fully deterministic: two
// events scheduled for the same instant fire in the order they were
// scheduled. Simulated activities are either callbacks (At/After, which must
// not block) or Procs — goroutines that the kernel runs one at a time,
// SimPy-style, and that may block on virtual time (Sleep) or on Signals.
//
// The kernel itself is single-threaded: exactly one goroutine (either the
// caller of Run or one Proc) is ever executing simulation code. Handoff
// between the kernel loop and a Proc uses a single unbuffered channel pair,
// so there is no data race on simulation state and no need for locks in any
// model code.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/1e3)
}

func (d Duration) String() string {
	return fmt.Sprintf("%.3fus", float64(d)/1e3)
}

// Micros reports the duration in (fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Seconds reports the duration in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros constructs a Duration from fractional microseconds.
func Micros(us float64) Duration { return Duration(us * 1e3) }

// event is a single entry in the kernel's run queue.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled callback that can be cancelled.
type Timer struct {
	k *Kernel
	e *event
}

// Stop cancels the timer. It reports whether the callback was still pending
// (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.dead || t.e.fn == nil {
		return false
	}
	t.e.dead = true
	return true
}

// Pending reports whether the timer has not yet fired or been stopped.
func (t *Timer) Pending() bool {
	return t != nil && t.e != nil && !t.e.dead && t.e.fn != nil
}

// When reports the virtual time at which the timer will fire. For a nil,
// stopped, or already-fired timer it returns the zero Time (use Pending to
// distinguish a live timer scheduled for t=0).
func (t *Timer) When() Time {
	if t == nil || t.e == nil || t.e.dead || t.e.fn == nil {
		return 0
	}
	return t.e.at
}

// Kernel is the discrete-event simulation kernel.
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	procs   map[*Proc]struct{} // live procs (for deadlock reporting)
	current *Proc              // proc currently executing, nil = kernel loop
	handoff chan struct{}      // proc -> kernel: "I have yielded"
	failure error              // a proc panicked or Fatalf was called
	running  bool
	tracer   func(name string, at Time)
	observer any // opaque slot for the observability layer (internal/obs)
}

// SetObserver attaches an opaque observability object to the kernel. The
// kernel never inspects it; it exists so layers sharing a kernel can find
// the same observer without the sim package importing internal/obs.
func (k *Kernel) SetObserver(o any) { k.observer = o }

// Observer returns the object installed with SetObserver (nil if none).
func (k *Kernel) Observer() any { return k.observer }

// SetTracer installs an instrumentation callback invoked by Mark. Pass nil
// to disable tracing (the default; Mark is then nearly free).
func (k *Kernel) SetTracer(fn func(name string, at Time)) { k.tracer = fn }

// Mark records a named instant when a tracer is installed. Hardware and
// runtime layers call it at stage boundaries so experiments (e.g. the
// Figure 6 latency breakdown) can attribute time without changing code
// paths.
func (k *Kernel) Mark(name string) {
	if k.tracer != nil {
		k.tracer(name, k.now)
	}
}

// Markf is Mark with lazy formatting: the name is only built when a tracer
// is installed (call sites use it to qualify marks with a node identity).
func (k *Kernel) Markf(format string, args ...any) {
	if k.tracer != nil {
		k.tracer(fmt.Sprintf(format, args...), k.now)
	}
}

// NewKernel creates an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{
		procs:   make(map[*Proc]struct{}),
		handoff: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// schedule inserts an event at time at (>= now).
func (k *Kernel) schedule(at Time, fn func()) *event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < now %v", at, k.now))
	}
	k.seq++
	e := &event{at: at, seq: k.seq, fn: fn}
	heap.Push(&k.queue, e)
	return e
}

// At schedules fn to run at absolute virtual time at. fn runs in kernel
// context and must not block.
func (k *Kernel) At(at Time, fn func()) *Timer {
	return &Timer{k: k, e: k.schedule(at, fn)}
}

// After schedules fn to run d from now. fn runs in kernel context and must
// not block.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return &Timer{k: k, e: k.schedule(k.now+Time(d), fn)}
}

// Fatalf aborts the simulation with an error; Run returns it.
func (k *Kernel) Fatalf(format string, args ...any) {
	if k.failure == nil {
		k.failure = fmt.Errorf(format, args...)
	}
}

// step pops and executes one event. Returns false when the queue is empty.
func (k *Kernel) step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*event)
		if e.dead {
			continue
		}
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		fn := e.fn
		e.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the horizon (if > 0) is
// reached. It returns an error if a proc panicked or Fatalf was called.
// If the queue drains while procs are still blocked, Run returns a deadlock
// error naming them — models that want an idle-but-alive system (e.g. a
// server waiting forever) should stop via RunUntil instead.
func (k *Kernel) Run() error { return k.run(-1) }

// RunUntil executes events with timestamps <= horizon and then advances the
// clock to horizon. Blocked procs are not a deadlock under RunUntil.
func (k *Kernel) RunUntil(horizon Time) error { return k.run(horizon) }

// RunFor is RunUntil(Now()+d).
func (k *Kernel) RunFor(d Duration) error { return k.run(k.now + Time(d)) }

func (k *Kernel) run(horizon Time) error {
	if k.running {
		panic("sim: Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.failure == nil {
		if horizon >= 0 && len(k.queue) > 0 {
			// Peek: stop before executing events past the horizon.
			if k.queue[0].at > horizon {
				break
			}
		}
		if !k.step() {
			break
		}
	}
	if k.failure != nil {
		return k.failure
	}
	if horizon >= 0 {
		if k.now < horizon {
			k.now = horizon
		}
		return nil
	}
	if len(k.procs) > 0 {
		return fmt.Errorf("sim: deadlock at %v: blocked procs: %s", k.now, k.procNames())
	}
	return nil
}

func (k *Kernel) procNames() string {
	var names []string
	for p := range k.procs {
		names = append(names, p.name+"@"+p.state)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool { return len(k.queue) == 0 }

// PendingEvents returns the number of live events in the queue.
func (k *Kernel) PendingEvents() int {
	n := 0
	for _, e := range k.queue {
		if !e.dead {
			n++
		}
	}
	return n
}
