// Deterministic diagnostic helpers. Failure paths in simulation code
// have exactly two sanctioned shapes — Kernel.Fatalf for configuration
// and protocol misuse the run reports through Run's error, and Panicf
// below for programming errors that must stop the process — so that two
// replays of the same seed fail with byte-identical messages. The
// detfail analyzer (internal/analysis) enforces this: os.Exit, package
// log, and ad-hoc panic(fmt.Sprintf(...)) are vet errors in
// deterministic packages.

package sim

import "fmt"

// Panicf panics with a formatted message. It is the one sanctioned
// formatted-panic surface for deterministic packages: invariant
// violations that cannot be attributed to a kernel (memory-region bus
// errors, thread-state corruption, topology construction bugs) funnel
// through here, which keeps their messages uniform and gives grep a
// single site for every formatted invariant panic.
//
// The message carries no wall-clock content — callers format only
// simulation state — so a panic reproduces byte-identically under
// replay.
//
//nectar:diag-helper the one sanctioned formatted-panic surface for invariant violations
//nectar:hotpath-exempt invariant-violation path, dead in steady state (mirrors the builtin panic exemption)
func Panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}
