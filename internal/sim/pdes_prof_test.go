package sim

// Tests for the coupling scheduler's wall-clock profiling instrumentation:
// profiling must not perturb virtual time, must produce an internally
// consistent breakdown, and must cost exactly zero allocations on the
// worker barrier path when disabled.

import (
	"testing"

	"nectar/internal/prof"
)

// profiledPingPong runs the two-domain ping-pong workload (optionally
// profiled) and returns the arrival schedule.
func profiledPingPong(t *testing.T, profiled bool) ([]Time, *prof.Report) {
	t.Helper()
	const latency = Duration(700)
	const rounds = 400 // enough windows that the wall clock dwarfs scheduler noise

	c := NewCoupling()
	a := c.AddDomain(NewKernel())
	b := c.AddDomain(NewKernel())
	a.AddGateway(fixedLookahead{latency})
	b.AddGateway(fixedLookahead{latency})
	var p *prof.Profile
	if profiled {
		p = prof.New(c.Domains())
		c.SetProfile(p)
	}

	var arrivals []Time
	var bounce func(self, peer *Domain)
	bounce = func(self, peer *Domain) {
		now := self.Kernel().Now()
		arrivals = append(arrivals, now)
		if len(arrivals) >= rounds {
			return
		}
		self.Send(peer, now+Time(latency), func() { bounce(peer, self) })
	}
	a.Kernel().At(0, func() { bounce(a, b) })

	// Multiple run invocations so spawn/join accrues across runs.
	if err := c.RunUntil(Time(latency) * 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return arrivals, p.Report()
}

// TestCouplingProfileDoesNotPerturb requires byte-identical virtual-time
// behavior with and without the profiler attached.
func TestCouplingProfileDoesNotPerturb(t *testing.T) {
	plain, _ := profiledPingPong(t, false)
	prof, _ := profiledPingPong(t, true)
	if len(plain) != len(prof) {
		t.Fatalf("arrival counts differ: %d vs %d", len(plain), len(prof))
	}
	for i := range plain {
		if plain[i] != prof[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, plain[i], prof[i])
		}
	}
}

// TestCouplingProfileReport checks the collected breakdown against what
// the ping-pong workload provably did: two runs, one event per window,
// windows matching the scheduler's own count, consistent drain traffic.
func TestCouplingProfileReport(t *testing.T) {
	_, r := profiledPingPong(t, true)
	if r == nil {
		t.Fatal("no report from profiled run")
	}
	if r.Runs != 2 {
		t.Errorf("runs = %d, want 2 (RunUntil + Run)", r.Runs)
	}
	if r.Shards != 2 {
		t.Errorf("shards = %d, want 2", r.Shards)
	}
	if r.Windows == 0 {
		t.Fatal("no windows recorded")
	}
	// Ping-pong alternates domains, so every window has exactly one active
	// domain and runs inline on the scheduler goroutine.
	if r.InlineWindows != r.Windows || r.MultiWindows != 0 {
		t.Errorf("windows = %d inline / %d multi of %d, want all inline",
			r.InlineWindows, r.MultiWindows, r.Windows)
	}
	var events uint64
	for _, s := range r.PerShard {
		events += s.Events
	}
	if events != 400 {
		t.Errorf("profiled events = %d, want 400 bounces", events)
	}
	// Every bounce but the last crosses domains: 399 drained injections.
	if r.Sched.DrainInjections != 399 {
		t.Errorf("drain injections = %d, want 399", r.Sched.DrainInjections)
	}
	if r.LookaheadUS.Count == 0 {
		t.Error("no lookahead samples recorded")
	}
	// A pure-inline workload keeps the accounted fraction near 1: choose +
	// inline + drain + spawn/join is the whole scheduler loop.
	if err := r.Check(0.90); err != nil {
		t.Errorf("Check: %v\n%s", err, r.JSON())
	}
}

// TestCouplingProfileSpinVsPark forces published (multi-domain) windows
// and checks worker waits are recorded and split spin/park coherently.
func TestCouplingProfileSpinVsPark(t *testing.T) {
	const latency = Duration(500)
	const rounds = 30

	c := NewCoupling()
	a := c.AddDomain(NewKernel())
	b := c.AddDomain(NewKernel())
	a.AddGateway(fixedLookahead{latency})
	b.AddGateway(fixedLookahead{latency})
	p := prof.New(2)
	c.SetProfile(p)

	// Symmetric load: both domains have an event in every window.
	for _, d := range []*Domain{a, b} {
		d := d
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < rounds {
				d.Kernel().After(Duration(latency)/2, tick)
			}
		}
		d.Kernel().At(0, tick)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := p.Report()
	if r.MultiWindows == 0 {
		t.Fatal("symmetric workload produced no multi-domain windows")
	}
	for _, s := range r.PerShard {
		if s.Windows == 0 {
			t.Errorf("shard %d executed no published windows", s.Shard)
		}
		if s.Waits < s.Windows {
			t.Errorf("shard %d: %d waits < %d windows (every published window is preceded by a wait)",
				s.Shard, s.Waits, s.Windows)
		}
		if s.Parks > s.Waits {
			t.Errorf("shard %d: parks %d exceed waits %d", s.Shard, s.Parks, s.Waits)
		}
	}
	if err := r.Check(0.5); err != nil {
		t.Errorf("Check: %v\n%s", err, r.JSON())
	}
}

// TestZeroAllocBarrierPathDisabled pins the tentpole's zero-cost claim at
// the exact code the worker goroutine runs per window — awaitWindow, the
// collector calls on a nil Worker, runBounded, doneSeq publish — with
// profiling disabled.
func TestZeroAllocBarrierPathDisabled(t *testing.T) {
	c := NewCoupling()
	a := c.AddDomain(NewKernel())
	c.AddDomain(NewKernel())
	c.spin = spinLimit
	if a.wprof != nil {
		t.Fatal("profile attached on a fresh coupling")
	}
	var seq uint64
	var bound Time
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		bound += 10
		a.winB.Store(int64(bound))
		a.winSeq.Store(seq)
		w := a.wprof
		t0 := w.Now()
		s, ok, parked := a.awaitWindow(seq - 1)
		if !ok || s != seq {
			t.Fatal("awaitWindow did not observe the published window")
		}
		w.Wait(t0, parked)
		t1 := w.Now()
		if a.werr = a.k.runBounded(Time(a.winB.Load())); a.werr != nil {
			t.Fatal(a.werr)
		}
		w.Compute(t1, 0)
		a.doneSeq.Store(s)
	})
	if allocs != 0 {
		t.Errorf("disabled worker barrier path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestZeroAllocSchedulerDrainDisabled guards the scheduler-side additions:
// the outbox drain with byte accounting must stay allocation-free when
// profiling is off (it runs at every window barrier).
func TestZeroAllocSchedulerDrainDisabled(t *testing.T) {
	c := NewCoupling()
	a := c.AddDomain(NewKernel())
	b := c.AddDomain(NewKernel())
	for _, d := range c.domains {
		for len(d.out) < len(c.domains) {
			d.out = append(d.out, nil)
		}
	}
	fn := func() {}
	// Warm the outbox and destination kernel arena.
	for i := 0; i < 64; i++ {
		a.SendSized(b, Time(1000+i), 64, fn)
	}
	var at Time = 2000
	allocs := testing.AllocsPerRun(200, func() {
		at++
		a.SendSized(b, at, 64, fn)
		for _, src := range c.domains {
			for dstID := range src.out {
				injs := src.out[dstID]
				if len(injs) == 0 {
					continue
				}
				dst := c.domains[dstID]
				var bytes uint64
				for _, inj := range injs {
					dst.k.At(inj.at, inj.fn)
					bytes += uint64(inj.bytes)
				}
				c.pr.DrainOut(src.id, uint64(len(injs)), bytes)
				src.out[dstID] = injs[:0]
			}
		}
	})
	if allocs != 0 {
		t.Errorf("disabled drain path allocates %.1f allocs/op, want 0", allocs)
	}
}
