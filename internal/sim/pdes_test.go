package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// fixedLookahead is the simplest Gateway: any future output is at least
// lookahead after the domain's next event.
type fixedLookahead struct {
	lookahead Duration
}

func (g fixedLookahead) EarliestOutput(net Time) Time {
	if net >= MaxTime {
		return MaxTime
	}
	return net + Time(g.lookahead)
}

// TestCouplingPingPong bounces a message between two domains with a fixed
// link latency and checks the arrival schedule is exact.
func TestCouplingPingPong(t *testing.T) {
	const latency = Duration(700)
	const rounds = 50

	c := NewCoupling()
	a := c.AddDomain(NewKernel())
	b := c.AddDomain(NewKernel())
	a.AddGateway(fixedLookahead{latency})
	b.AddGateway(fixedLookahead{latency})

	var arrivals []Time
	var bounce func(self, peer *Domain)
	bounce = func(self, peer *Domain) {
		now := self.Kernel().Now()
		arrivals = append(arrivals, now)
		if len(arrivals) >= rounds {
			return
		}
		self.Send(peer, now+Time(latency), func() { bounce(peer, self) })
	}
	a.Kernel().At(0, func() { bounce(a, b) })

	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != rounds {
		t.Fatalf("got %d arrivals, want %d", len(arrivals), rounds)
	}
	for i, at := range arrivals {
		if want := Time(i) * Time(latency); at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

// TestCouplingMatchesSequential runs the same three-node token-passing
// workload on one kernel and on a three-domain coupling and requires the
// identical event log.
func TestCouplingMatchesSequential(t *testing.T) {
	const latency = Duration(1000)
	const local = Duration(130) // local processing between hops
	const rounds = 40

	run := func(build func(i int) (schedule func(dst int, at Time, fn func()), now func(i int) Time), runAll func() error) ([]string, error) {
		var log []string
		sched, now := build(0)
		var hop func(node, count int)
		hop = func(node, count int) {
			log = append(log, fmt.Sprintf("%d@%v", node, now(node)))
			if count >= rounds {
				return
			}
			next := (node + 1) % 3
			at := now(node) + Time(local) + Time(latency)
			sched(next, at, func() { hop(next, count+1) })
		}
		sched(0, 0, func() { hop(0, 0) })
		err := runAll()
		return log, err
	}

	// Sequential reference: single kernel.
	seqK := NewKernel()
	seqLog, err := run(func(int) (func(int, Time, func()), func(int) Time) {
		return func(_ int, at Time, fn func()) { seqK.At(at, fn) }, func(int) Time { return seqK.Now() }
	}, seqK.Run)
	if err != nil {
		t.Fatal(err)
	}

	// Coupled: three domains.
	c := NewCoupling()
	doms := make([]*Domain, 3)
	for i := range doms {
		doms[i] = c.AddDomain(NewKernel())
		doms[i].AddGateway(fixedLookahead{latency})
	}
	var cur atomic.Int32 // domain whose event is executing (test-only bookkeeping)
	parLog, err := run(func(int) (func(int, Time, func()), func(int) Time) {
		return func(dst int, at Time, fn func()) {
				src := doms[cur.Load()]
				src.Send(doms[dst], at, func() { cur.Store(int32(dst)); fn() })
			}, func(i int) Time {
				return doms[i].Kernel().Now()
			}
	}, c.Run)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := strings.Join(parLog, "\n"), strings.Join(seqLog, "\n"); got != want {
		t.Fatalf("coupled log differs from sequential:\n got: %s\nwant: %s", got, want)
	}
}

// TestCouplingRunUntilAdvancesClocks checks that all domain clocks agree at
// the horizon even when a domain had no events.
func TestCouplingRunUntilAdvancesClocks(t *testing.T) {
	c := NewCoupling()
	a := c.AddDomain(NewKernel())
	b := c.AddDomain(NewKernel())
	a.AddGateway(fixedLookahead{100})
	b.AddGateway(fixedLookahead{100})
	fired := false
	a.Kernel().At(500, func() { fired = true })
	if err := c.RunUntil(2000); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event below horizon did not fire")
	}
	if a.Kernel().Now() != 2000 || b.Kernel().Now() != 2000 || c.Now() != 2000 {
		t.Fatalf("clocks not at horizon: a=%v b=%v c=%v", a.Kernel().Now(), b.Kernel().Now(), c.Now())
	}
	// And events strictly past the horizon stay queued.
	a.Kernel().At(3000, func() {})
	if err := c.RunUntil(2500); err != nil {
		t.Fatal(err)
	}
	if got := a.Kernel().PendingEvents(); got != 1 {
		t.Fatalf("event past horizon executed early (pending=%d)", got)
	}
}

// TestCouplingZeroLookaheadStalls checks the scheduler reports a stall
// instead of spinning when a gateway has no lookahead.
func TestCouplingZeroLookaheadStalls(t *testing.T) {
	c := NewCoupling()
	a := c.AddDomain(NewKernel())
	b := c.AddDomain(NewKernel())
	a.AddGateway(fixedLookahead{0})
	b.AddGateway(fixedLookahead{0})
	a.Kernel().At(10, func() {})
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("want stall error, got %v", err)
	}
}

// TestCouplingDeadlockNamesProcs checks drain-mode deadlock reporting
// aggregates blocked procs across domains.
func TestCouplingDeadlockNamesProcs(t *testing.T) {
	c := NewCoupling()
	a := c.AddDomain(NewKernel())
	b := c.AddDomain(NewKernel())
	a.AddGateway(fixedLookahead{100})
	b.AddGateway(fixedLookahead{100})
	sig := b.Kernel().NewSignal("never")
	b.Kernel().Go("stuck", func(p *Proc) { p.Wait(sig) })
	a.Kernel().At(5, func() {})
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("want deadlock naming proc, got %v", err)
	}
}

// TestCouplingPropagatesFailure checks a Fatalf in one domain aborts the run.
func TestCouplingPropagatesFailure(t *testing.T) {
	c := NewCoupling()
	a := c.AddDomain(NewKernel())
	b := c.AddDomain(NewKernel())
	a.AddGateway(fixedLookahead{100})
	b.AddGateway(fixedLookahead{100})
	b.Kernel().At(50, func() { b.Kernel().Fatalf("boom at %v", b.Kernel().Now()) })
	a.Kernel().At(60, func() {})
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want boom, got %v", err)
	}
}
