package sim

import (
	"runtime/debug"
)

// Proc is a simulated sequential activity backed by a goroutine. The kernel
// runs at most one Proc at a time; a Proc runs until it blocks (Sleep, Wait,
// WaitTimeout) or returns, at which point control returns to the kernel loop.
//
// Proc methods that block must only be called from within that Proc's own
// body function.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{} // kernel -> proc: "you may run"
	state  string        // human-readable blocking reason, for deadlock reports
	dead   bool
}

// Go starts a new Proc running fn. The Proc begins executing at the current
// virtual time, after already-scheduled events for this instant.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{}), state: "starting"}
	k.procs[p] = struct{}{}
	k.schedule(k.now, func() {
		go p.body(fn)
		p.dispatch()
	})
	return p
}

// body is the goroutine entry point: wait to be dispatched, run fn, then
// hand control back to the kernel forever.
func (p *Proc) body(fn func(p *Proc)) {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			p.k.Fatalf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
		}
		p.dead = true
		delete(p.k.procs, p)
		p.k.current = nil
		p.k.handoff <- struct{}{}
	}()
	p.state = "running"
	fn(p)
	p.state = "finished"
}

// dispatch transfers control from kernel context to the proc and waits for
// it to yield back. Must be called from kernel context (inside an event).
// Dispatching a finished proc is a no-op.
func (p *Proc) dispatch() {
	if p.dead {
		return
	}
	p.k.current = p
	p.resume <- struct{}{}
	<-p.k.handoff
}

// checkContext panics unless the calling goroutine is p's own body, which
// is the only context from which blocking operations are legal.
func (p *Proc) checkContext(op string) {
	if p.k.current != p {
		Panicf("sim: %s on proc %q from outside its goroutine", op, p.name)
	}
}

// yield transfers control from the proc back to the kernel loop and blocks
// until the proc is dispatched again.
func (p *Proc) yield(state string) {
	if p.k.current != p {
		Panicf("sim: blocking call on proc %q from outside its goroutine", p.name)
	}
	p.state = state
	p.k.current = nil
	p.k.handoff <- struct{}{}
	<-p.resume
	p.k.current = p
	p.state = "running"
}

// Name returns the proc's name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this proc runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep blocks the proc for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.checkContext("Sleep")
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now+Time(d), func() { p.dispatch() })
	p.yield("sleeping")
}

// Wait blocks until s is signaled. Multiple procs may wait on one Signal;
// Signal.Signal wakes exactly one (FIFO), Signal.Broadcast wakes all.
func (p *Proc) Wait(s *Signal) {
	p.checkContext("Wait")
	s.waiters = append(s.waiters, p)
	p.yield("waiting:" + s.name)
}

// WaitTimeout blocks until s is signaled or d elapses. It reports true if
// the signal arrived, false on timeout.
func (p *Proc) WaitTimeout(s *Signal, d Duration) bool {
	p.checkContext("WaitTimeout")
	signaled := false
	fired := false
	// Waiter entry that the Signal will invoke.
	entry := &timedWaiter{p: p}
	s.timed = append(s.timed, entry)
	t := p.k.After(d, func() {
		if entry.done {
			return
		}
		entry.done = true
		fired = true
		p.dispatch()
	})
	entry.onSignal = func() {
		if entry.done {
			return
		}
		entry.done = true
		signaled = true
		t.Stop()
		p.dispatch()
	}
	p.yield("waiting-timeout:" + s.name)
	_ = fired
	return signaled
}

type timedWaiter struct {
	p        *Proc
	onSignal func()
	done     bool
}

// Signal is a stateless wake-up point, akin to a condition variable: Wait
// always blocks; Signal/Broadcast wake current waiters only. Guard it with
// model-level state, exactly as with a condition variable.
type Signal struct {
	k       *Kernel
	name    string
	waiters []*Proc
	timed   []*timedWaiter
}

// NewSignal creates a named Signal for procs on k.
func (k *Kernel) NewSignal(name string) *Signal {
	return &Signal{k: k, name: name}
}

// Signal wakes one waiter (the longest-waiting first). Wake-ups are
// scheduled at the current instant, after the caller finishes its event.
//
//nectar:hotpath-exempt wake-up closures allocate on the blocking path; the zero-alloc guarantee covers the polling fast path, which never parks
func (s *Signal) Signal() {
	// Timed waiters are woken before plain waiters only if they registered
	// earlier; for determinism we simply prefer plain FIFO order: plain
	// waiters first, then timed. Models that mix both on one Signal and
	// care about order should use Broadcast.
	if len(s.waiters) > 0 {
		p := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.k.schedule(s.k.now, func() { p.dispatch() })
		return
	}
	for len(s.timed) > 0 {
		w := s.timed[0]
		s.timed = s.timed[1:]
		if w.done {
			continue // already timed out; not a live waiter
		}
		s.k.schedule(s.k.now, func() { w.onSignal() })
		return
	}
}

// Broadcast wakes all current waiters in FIFO order.
func (s *Signal) Broadcast() {
	waiters := s.waiters
	s.waiters = nil
	timed := s.timed
	s.timed = nil
	for _, p := range waiters {
		p := p
		s.k.schedule(s.k.now, func() { p.dispatch() })
	}
	for _, w := range timed {
		w := w
		s.k.schedule(s.k.now, func() { w.onSignal() })
	}
}

// HasWaiters reports whether any proc is blocked on s.
func (s *Signal) HasWaiters() bool { return len(s.waiters) > 0 || len(s.timed) > 0 }
