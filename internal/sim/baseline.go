package sim

import "container/heap"

// BaselineQueue is the kernel's pre-overhaul event queue — a boxed
// container/heap binary heap with one allocation per scheduled event and
// lazy (mark-dead) cancellation. It is kept only as the reference point for
// the perf trajectory recorded in BENCH_kernel.json: `nectar-bench kernel`
// and the internal/sim benchmarks measure the live 4-ary arena queue
// against this implementation so the speedup claim stays reproducible. It
// is not used by the kernel.
type BaselineQueue struct {
	now   Time
	seq   uint64
	queue baselineHeap
}

// baselineEvent mirrors the old kernel's per-event allocation.
type baselineEvent struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

type baselineHeap []*baselineEvent

func (h baselineHeap) Len() int { return len(h) }
func (h baselineHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h baselineHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *baselineHeap) Push(x any) {
	e := x.(*baselineEvent)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *baselineHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// BaselineTimer is the old *Timer: a heap-allocated handle whose Stop marks
// the event dead in place, leaving it resident until popped.
type BaselineTimer struct{ e *baselineEvent }

// Stop marks the event cancelled (lazily removed at pop, as before).
func (t *BaselineTimer) Stop() bool {
	if t == nil || t.e == nil || t.e.dead || t.e.fn == nil {
		return false
	}
	t.e.dead = true
	return true
}

// Now returns the queue's virtual time.
func (q *BaselineQueue) Now() Time { return q.now }

// After schedules fn to run d from now.
func (q *BaselineQueue) After(d Duration, fn func()) *BaselineTimer {
	if d < 0 {
		d = 0
	}
	q.seq++
	e := &baselineEvent{at: q.now + Time(d), seq: q.seq, fn: fn}
	heap.Push(&q.queue, e)
	return &BaselineTimer{e: e}
}

// Step pops and executes one live event, skipping cancelled ones. It
// reports false when the queue is empty.
func (q *BaselineQueue) Step() bool {
	for len(q.queue) > 0 {
		e := heap.Pop(&q.queue).(*baselineEvent)
		if e.dead {
			continue
		}
		q.now = e.at
		fn := e.fn
		e.fn = nil
		fn()
		return true
	}
	return false
}

// Drain steps until the queue is empty.
func (q *BaselineQueue) Drain() {
	for q.Step() {
	}
}
