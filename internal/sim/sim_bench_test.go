package sim

// Kernel micro-benchmarks: these measure the REAL (wall-clock) cost of the
// simulation substrate itself — how many virtual events and thread
// handoffs the host machine executes per second — so regressions in the
// kernel's data structures show up in `go test -bench`.

import "testing"

func BenchmarkEventDispatch(b *testing.B) {
	k := NewKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Microsecond, func() {})
		if i%1024 == 1023 {
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTimerChurn(b *testing.B) {
	// Arm-and-cancel is the protocol-stack hot path (every RMP/TCP
	// transmission re-arms its retransmission timer).
	k := NewKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := k.After(Second, func() {})
		t.Stop()
		if i%4096 == 4095 {
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkProcHandoff(b *testing.B) {
	// Two procs ping-ponging through signals: one iteration = two kernel
	// handoffs (goroutine switches). Predicated waits avoid lost signals.
	k := NewKernel()
	sA := k.NewSignal("sA")
	sB := k.NewSignal("sB")
	turn := 0
	n := b.N
	k.Go("a", func(p *Proc) {
		for i := 0; i < n; i++ {
			for turn != 0 {
				p.Wait(sA)
			}
			turn = 1
			sB.Signal()
		}
	})
	k.Go("b", func(p *Proc) {
		for i := 0; i < n; i++ {
			for turn != 1 {
				p.Wait(sB)
			}
			turn = 0
			sA.Signal()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkScheduleFireStop(b *testing.B) {
	// The acceptance-criteria cycle: one short timer that fires, one long
	// timer that is cancelled — the protocol stack's steady-state mix.
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Microsecond, fn)
		t := k.After(Second, fn)
		t.Stop()
		if i%1024 == 1023 {
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// Baseline* benchmarks measure the pre-overhaul boxed container/heap queue
// (see baseline.go) so `go test -bench Baseline` quantifies the speedup
// recorded in BENCH_kernel.json.

func BenchmarkBaselineEventDispatch(b *testing.B) {
	var q BaselineQueue
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After(Microsecond, fn)
		if i%1024 == 1023 {
			q.Drain()
		}
	}
	q.Drain()
}

func BenchmarkBaselineTimerChurn(b *testing.B) {
	var q BaselineQueue
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := q.After(Second, fn)
		t.Stop()
		if i%4096 == 4095 {
			q.Drain()
		}
	}
}

func BenchmarkBaselineScheduleFireStop(b *testing.B) {
	var q BaselineQueue
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After(Microsecond, fn)
		t := q.After(Second, fn)
		t.Stop()
		if i%1024 == 1023 {
			q.Drain()
		}
	}
	q.Drain()
}

func BenchmarkHeapOrdering(b *testing.B) {
	// Worst-ish case: interleaved far/near timestamps exercising heap
	// percolation.
	k := NewKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Duration(i%97) * Microsecond
		k.After(d, func() {})
		if i%512 == 511 {
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
