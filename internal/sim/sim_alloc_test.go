package sim

// Zero-allocation guards for the kernel hot path. The event arena + free
// list make After/At/Stop/step allocation-free in steady state; these tests
// fail loudly if a change reintroduces per-event allocation (which would
// put GC pressure back on every sweep and fault campaign).

import (
	"math/rand"
	"testing"
)

// TestZeroAllocScheduleFire guards the schedule→fire cycle: once the arena
// and heap are warm, After + Run must not allocate.
func TestZeroAllocScheduleFire(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the arena, heap and free list.
	for i := 0; i < 64; i++ {
		k.After(Microsecond, fn)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		k.After(Microsecond, fn)
		if !k.step() {
			t.Fatal("no event to step")
		}
	})
	if got != 0 {
		t.Errorf("schedule→fire allocates %.1f allocs/op, want 0", got)
	}
}

// TestZeroAllocScheduleStop guards the arm-and-cancel cycle (the TCP/RMP
// RTO pattern): After + Stop must not allocate.
func TestZeroAllocScheduleStop(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	for i := 0; i < 64; i++ {
		k.After(Second, fn).Stop()
	}
	got := testing.AllocsPerRun(200, func() {
		tm := k.After(Second, fn)
		if !tm.Stop() {
			t.Fatal("Stop on pending timer reported false")
		}
	})
	if got != 0 {
		t.Errorf("schedule→stop allocates %.1f allocs/op, want 0", got)
	}
	if k.PendingEvents() != 0 {
		t.Errorf("stopped timers left %d events resident, want 0 (eager removal)", k.PendingEvents())
	}
}

// TestZeroAllocMarkTracingOff guards Mark with no tracer installed: layers
// emit marks unconditionally on the per-packet path, so this must stay free.
func TestZeroAllocMarkTracingOff(t *testing.T) {
	k := NewKernel()
	got := testing.AllocsPerRun(200, func() {
		k.Mark("dl.tx.0")
	})
	if got != 0 {
		t.Errorf("Mark with tracing off allocates %.1f allocs/op, want 0", got)
	}
}

// TestStopEagerlyShrinksQueue is the Timer.Stop memory-growth regression:
// cancelled timers must leave the queue immediately instead of staying
// resident until their deadline pops (long TCP runs re-arm RTOs millions of
// times while the 1s deadline never fires).
func TestStopEagerlyShrinksQueue(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 10000; i++ {
		k.After(Second, func() {}).Stop()
	}
	if got := k.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents = %d after stopping every timer, want 0", got)
	}
	if !k.Idle() {
		t.Fatal("kernel not idle after stopping every timer")
	}
}

// TestStaleHandleAfterSlotReuse: a Timer handle must go inert once its
// event fires, even after the arena slot is recycled for a new event — the
// old handle must neither report pending nor cancel the new occupant.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	k := NewKernel()
	t1 := k.After(Microsecond, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	fired := false
	t2 := k.After(Microsecond, func() { fired = true }) // reuses t1's slot
	if t1.Pending() {
		t.Error("fired timer reports pending after slot reuse")
	}
	if t1.Stop() {
		t.Error("stale handle Stop returned true")
	}
	if !t2.Pending() {
		t.Error("live timer killed by stale handle Stop")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("new event did not fire")
	}
}

// TestOrderMatchesBaseline cross-checks the 4-ary arena queue against the
// pre-overhaul container/heap implementation on randomized schedule/cancel
// workloads: firing order must be identical (the determinism contract says
// both respect (time, seq) exactly).
func TestOrderMatchesBaseline(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(200)
		delays := make([]Duration, n)
		cancel := make([]bool, n)
		for i := range delays {
			delays[i] = Duration(rng.Intn(50)) * Microsecond
			cancel[i] = rng.Intn(3) == 0
		}

		var gotNew []int
		k := NewKernel()
		for i, d := range delays {
			i := i
			tm := k.After(d, func() { gotNew = append(gotNew, i) })
			if cancel[i] {
				tm.Stop()
			}
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}

		var gotOld []int
		var q BaselineQueue
		for i, d := range delays {
			i := i
			tm := q.After(d, func() { gotOld = append(gotOld, i) })
			if cancel[i] {
				tm.Stop()
			}
		}
		q.Drain()

		if len(gotNew) != len(gotOld) {
			t.Fatalf("seed %d: fired %d events, baseline fired %d", seed, len(gotNew), len(gotOld))
		}
		for i := range gotNew {
			if gotNew[i] != gotOld[i] {
				t.Fatalf("seed %d: order diverges from baseline at %d: %d vs %d",
					seed, i, gotNew[i], gotOld[i])
			}
		}
	}
}
