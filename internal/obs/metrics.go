package obs

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"nectar/internal/sim"
)

// metricKey identifies one metric: the layer that owns it, the metric
// name, and a scope (node or link identity, e.g. "cab1", "host2",
// "fiber.a-b", or "total").
type metricKey struct {
	layer Layer
	name  string
	scope string
}

// Counter is a monotonically increasing per-registry counter. Methods
// are nil-tolerant and allocation-free.
type Counter struct{ v uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram accumulates virtual-time durations into log2 buckets.
// Observe is allocation-free; percentiles are derived at snapshot time.
type Histogram struct {
	buckets [65]uint64 // bucket i holds durations with bits.Len64(ns) == i
	count   uint64
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bits.Len64(uint64(d.Nanos()))]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// quantile returns an upper bound for the q-quantile (bucket resolution),
// clamped to the observed [min, max].
func (h *Histogram) quantile(q float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			// Upper bound of bucket i: 2^i - 1 ns (bucket 0 holds zero).
			var ub sim.Duration
			if i > 0 {
				ub = sim.Duration(uint64(1)<<uint(i) - 1)
			}
			if ub < h.min {
				ub = h.min
			}
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// HistStats is the exported summary of a Histogram.
type HistStats struct {
	Count uint64  `json:"count"`
	SumUS float64 `json:"sum_us"`
	MinUS float64 `json:"min_us"`
	P50US float64 `json:"p50_us"`
	P90US float64 `json:"p90_us"`
	P99US float64 `json:"p99_us"`
	MaxUS float64 `json:"max_us"`
}

// Stats summarizes the histogram: count, sum, min/max, and the p50, p90
// and p99 upper bounds at bucket resolution.
func (h *Histogram) Stats() *HistStats {
	return h.stats()
}

// stats summarizes the histogram.
func (h *Histogram) stats() *HistStats {
	return &HistStats{
		Count: h.count,
		SumUS: h.sum.Micros(),
		MinUS: h.min.Micros(),
		P50US: h.quantile(0.50).Micros(),
		P90US: h.quantile(0.90).Micros(),
		P99US: h.quantile(0.99).Micros(),
		MaxUS: h.max.Micros(),
	}
}

// Registry holds all metrics registered against one kernel's Observer.
// It is not safe for concurrent use — like everything else in the sim,
// exactly one goroutine touches it at a time.
type Registry struct {
	counters map[metricKey]*Counter
	gauges   map[metricKey]func() uint64
	hists    map[metricKey]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]func() uint64),
		hists:    make(map[metricKey]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter. A nil
// registry returns a nil Counter, whose methods are no-ops.
func (r *Registry) Counter(layer Layer, name, scope string) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{layer, name, scope}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge registers a pull-style gauge sampled at snapshot time. fn must be
// deterministic and order-independent (e.g. a sum over a map). Later
// registrations under the same key replace earlier ones.
func (r *Registry) Gauge(layer Layer, name, scope string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.gauges[metricKey{layer, name, scope}] = fn
}

// Histogram returns (creating on first use) the named histogram. A nil
// registry returns a nil Histogram, whose Observe is a no-op.
func (r *Registry) Histogram(layer Layer, name, scope string) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{layer, name, scope}
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// Entry is one metric in a Snapshot.
type Entry struct {
	Layer string     `json:"layer"`
	Name  string     `json:"name"`
	Scope string     `json:"scope"`
	Kind  string     `json:"kind"` // "counter", "gauge", or "histogram"
	Value uint64     `json:"value"`
	Hist  *HistStats `json:"hist,omitempty"`
}

// Snapshot is a point-in-time export of a Registry, sorted by
// (layer, name, scope) so two identical runs serialize identically.
type Snapshot struct {
	AtUS    float64 `json:"at_us"` // virtual time of the snapshot
	Entries []Entry `json:"metrics"`
}

// Snapshot samples every counter, gauge, and histogram.
func (r *Registry) Snapshot(at sim.Time) *Snapshot {
	s := &Snapshot{AtUS: at.Micros()}
	if r == nil {
		return s
	}
	for k, c := range r.counters {
		s.Entries = append(s.Entries, Entry{string(k.layer), k.name, k.scope, "counter", c.v, nil})
	}
	for k, fn := range r.gauges {
		s.Entries = append(s.Entries, Entry{string(k.layer), k.name, k.scope, "gauge", fn(), nil})
	}
	for k, h := range r.hists {
		s.Entries = append(s.Entries, Entry{string(k.layer), k.name, k.scope, "histogram", 0, h.stats()})
	}
	sort.Slice(s.Entries, func(i, j int) bool {
		a, b := s.Entries[i], s.Entries[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Scope < b.Scope
	})
	return s
}

// Get returns the entry for (layer, name, scope), if present.
func (s *Snapshot) Get(layer Layer, name, scope string) (Entry, bool) {
	for _, e := range s.Entries {
		if e.Layer == string(layer) && e.Name == name && e.Scope == scope {
			return e, true
		}
	}
	return Entry{}, false
}

// Value returns the counter/gauge value for (layer, name, scope), 0 if
// absent.
func (s *Snapshot) Value(layer Layer, name, scope string) uint64 {
	e, _ := s.Get(layer, name, scope)
	return e.Value
}

// Sum adds the values of every entry with the given layer and name
// across all scopes (e.g. total mailbox puts across nodes).
func (s *Snapshot) Sum(layer Layer, name string) uint64 {
	var n uint64
	for _, e := range s.Entries {
		if e.Layer == string(layer) && e.Name == name {
			n += e.Value
		}
	}
	return n
}

// JSON renders the snapshot as deterministic, indented JSON.
func (s *Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // only on unmarshalable types; Snapshot has none
		panic(err)
	}
	return b
}

// Table renders the snapshot as an aligned text table.
func (s *Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics @ %.3fus\n", s.AtUS)
	fmt.Fprintf(&b, "  %-9s %-22s %-12s %s\n", "layer", "metric", "scope", "value")
	for _, e := range s.Entries {
		if e.Hist != nil {
			fmt.Fprintf(&b, "  %-9s %-22s %-12s n=%d p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n",
				e.Layer, e.Name, e.Scope, e.Hist.Count, e.Hist.P50US, e.Hist.P90US, e.Hist.P99US, e.Hist.MaxUS)
			continue
		}
		fmt.Fprintf(&b, "  %-9s %-22s %-12s %d\n", e.Layer, e.Name, e.Scope, e.Value)
	}
	return b.String()
}
