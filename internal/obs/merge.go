package obs

import (
	"sort"
	"strings"

	"nectar/internal/sim"
)

// Deterministic merging of per-shard observability output (sharded
// execution runs one Observer per shard kernel).
//
// The guiding invariant: a sequential run and a sharded run of the same
// cluster produce the same *multiset* of trace events, captured packets,
// and metric observations; only the interleaving of records that share a
// virtual timestamp — and the per-Observer span numbering — can differ.
// The canonicalizers below therefore order records by content (virtual
// time first) and renumber span ids by first appearance, so both runs
// render to identical bytes.

// merge folds other into h at bucket level, preserving exact percentile
// reproduction: bucket counts, totals, and extrema add/compose the same
// way regardless of how observations were split across registries.
func (h *Histogram) merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// MergeSnapshots exports one Snapshot over several registries: counters
// and gauges with the same (layer, name, scope) key sum, histograms merge
// at bucket level, and the result is sorted exactly like Registry.Snapshot
// — so merging the registries of a sharded run yields byte-identical JSON
// to the sequential run's single-registry snapshot.
func MergeSnapshots(at sim.Time, regs ...*Registry) *Snapshot {
	s := &Snapshot{AtUS: at.Micros()}
	counters := make(map[metricKey]uint64)
	gauges := make(map[metricKey]uint64)
	gaugeSeen := make(map[metricKey]bool)
	hists := make(map[metricKey]*Histogram)
	for _, r := range regs {
		if r == nil {
			continue
		}
		for k, c := range r.counters {
			counters[k] += c.v
		}
		for k, fn := range r.gauges {
			gauges[k] += fn()
			gaugeSeen[k] = true
		}
		for k, h := range r.hists {
			m := hists[k]
			if m == nil {
				m = &Histogram{}
				hists[k] = m
			}
			m.merge(h)
		}
	}
	for k, v := range counters {
		s.Entries = append(s.Entries, Entry{string(k.layer), k.name, k.scope, "counter", v, nil})
	}
	for k := range gaugeSeen {
		s.Entries = append(s.Entries, Entry{string(k.layer), k.name, k.scope, "gauge", gauges[k], nil})
	}
	for k, h := range hists {
		s.Entries = append(s.Entries, Entry{string(k.layer), k.name, k.scope, "histogram", 0, h.stats()})
	}
	sort.Slice(s.Entries, func(i, j int) bool {
		a, b := s.Entries[i], s.Entries[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Scope < b.Scope
	})
	return s
}

// eventContentLess orders events by content: virtual time first, then
// every content field. Span/Parent ids are deliberately excluded — they
// are per-Observer counters with no cross-run meaning.
func eventContentLess(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Layer != b.Layer {
		return a.Layer < b.Layer
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Arg != b.Arg {
		return a.Arg < b.Arg
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	return a.Kind < b.Kind
}

// CanonicalTrace merges per-stream event slices (one per shard; pass a
// single stream to canonicalize a sequential trace) into one canonical
// trace: stable-sorted by content with virtual time as the primary key,
// with Span/Parent ids renumbered densely by first appearance. Two runs
// that emit the same events — regardless of sharding — canonicalize to
// identical slices.
func CanonicalTrace(streams ...[]Event) []Event {
	type tagged struct {
		e      Event
		stream int
	}
	var all []tagged
	for si, s := range streams {
		for _, e := range s {
			all = append(all, tagged{e, si})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return eventContentLess(all[i].e, all[j].e) })
	type spanKey struct {
		stream int
		id     SpanID
	}
	renum := make(map[spanKey]SpanID)
	next := SpanID(0)
	newID := func(stream int, id SpanID) SpanID {
		if id == 0 {
			return 0
		}
		k := spanKey{stream, id}
		n, ok := renum[k]
		if !ok {
			next++
			n = next
			renum[k] = n
		}
		return n
	}
	out := make([]Event, len(all))
	for i, t := range all {
		e := t.e
		e.Span = newID(t.stream, e.Span)
		e.Parent = newID(t.stream, e.Parent)
		out[i] = e
	}
	return out
}

// FormatEvents renders events one per line (Event.String), the form the
// determinism tests compare byte-for-byte.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CanonicalCapture merges per-shard wire captures into one Capture whose
// packets are stable-sorted by content (virtual time, then link, then the
// decoded fields). Raw frames are not carried over.
func CanonicalCapture(caps ...*Capture) *Capture {
	merged := &Capture{}
	for _, c := range caps {
		if c == nil {
			continue
		}
		merged.Packets = append(merged.Packets, c.Packets...)
	}
	sort.SliceStable(merged.Packets, func(i, j int) bool {
		a, b := merged.Packets[i], merged.Packets[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Link != b.Link {
			return a.Link < b.Link
		}
		if a.Bytes != b.Bytes {
			return a.Bytes < b.Bytes
		}
		if a.Summary != b.Summary {
			return a.Summary < b.Summary
		}
		if a.Dropped != b.Dropped {
			return b.Dropped
		}
		return a.Corrupted != b.Corrupted && b.Corrupted
	})
	return merged
}
