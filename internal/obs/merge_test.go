package obs

// Edge cases of the sharded-observability canonicalizers: merging no
// registries, merging exactly one (which must reproduce the sequential
// snapshot byte for byte), histogram bucket composition across shards,
// and the tie/renumbering rules of CanonicalTrace and CanonicalCapture.

import (
	"testing"

	"nectar/internal/sim"
)

// TestMergeSnapshotsEmpty covers the degenerate shard sets: no
// registries, only nil registries, and empty registries all produce an
// entry-free snapshot that still stamps the virtual time.
func TestMergeSnapshotsEmpty(t *testing.T) {
	for _, tc := range []struct {
		name string
		regs []*Registry
	}{
		{"none", nil},
		{"all nil", []*Registry{nil, nil}},
		{"empty", []*Registry{NewRegistry(), NewRegistry()}},
	} {
		s := MergeSnapshots(sim.Time(42*sim.Microsecond), tc.regs...)
		if len(s.Entries) != 0 {
			t.Errorf("%s: %d entries, want none", tc.name, len(s.Entries))
		}
		if s.AtUS != 42 {
			t.Errorf("%s: at_us = %v, want 42", tc.name, s.AtUS)
		}
	}
}

// TestMergeSnapshotsSingle pins the single-shard identity: merging one
// registry must serialize byte-identically to that registry's own
// Snapshot — MergeSnapshots may not reorder, rename, or restate anything.
func TestMergeSnapshotsSingle(t *testing.T) {
	r := NewRegistry()
	r.Counter(LayerFiber, "frames", "hub").Add(7)
	r.Counter(LayerTCP, "retransmits", "cab0").Inc()
	r.Gauge(LayerMailbox, "depth", "n1", func() uint64 { return 3 })
	h := r.Histogram(LayerTCP, "ack_rtt", "cab0")
	h.Observe(5 * sim.Microsecond)
	h.Observe(9 * sim.Microsecond)

	at := sim.Time(100 * sim.Microsecond)
	got := string(MergeSnapshots(at, r).JSON())
	want := string(r.Snapshot(at).JSON())
	if got != want {
		t.Errorf("single-registry merge differs from direct snapshot:\nmerge: %s\ndirect: %s", got, want)
	}
}

// TestMergeSnapshotsSums checks cross-shard composition: counters and
// gauges under the same (layer, name, scope) key sum, keys present in
// only one shard survive, and a nil shard in the middle is skipped.
func TestMergeSnapshotsSums(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter(LayerFiber, "frames", "hub").Add(10)
	b.Counter(LayerFiber, "frames", "hub").Add(32)
	a.Counter(LayerRMP, "timeouts", "cab0").Inc() // shard-a only
	a.Gauge(LayerMailbox, "depth", "n1", func() uint64 { return 2 })
	b.Gauge(LayerMailbox, "depth", "n1", func() uint64 { return 5 })

	s := MergeSnapshots(0, a, nil, b)
	if e, ok := s.Get(LayerFiber, "frames", "hub"); !ok || e.Value != 42 {
		t.Errorf("frames = %+v, want summed value 42", e)
	}
	if e, ok := s.Get(LayerRMP, "timeouts", "cab0"); !ok || e.Value != 1 {
		t.Errorf("single-shard counter = %+v, want 1", e)
	}
	if e, ok := s.Get(LayerMailbox, "depth", "n1"); !ok || e.Value != 7 || e.Kind != "gauge" {
		t.Errorf("gauge = %+v, want summed value 7", e)
	}
}

// TestMergeSnapshotsHistogramBuckets verifies exact percentile
// reproduction: observations split across shards must merge to the same
// stats (count, sum, extrema, p50/p90/p99) as the same observations in
// one registry.
func TestMergeSnapshotsHistogramBuckets(t *testing.T) {
	one := NewRegistry()
	a, b := NewRegistry(), NewRegistry()
	for i := 1; i <= 100; i++ {
		d := sim.Duration(i) * sim.Microsecond
		one.Histogram(LayerTCP, "ack_rtt", "cab0").Observe(d)
		if i%2 == 0 {
			a.Histogram(LayerTCP, "ack_rtt", "cab0").Observe(d)
		} else {
			b.Histogram(LayerTCP, "ack_rtt", "cab0").Observe(d)
		}
	}
	seq, ok := one.Snapshot(0).Get(LayerTCP, "ack_rtt", "cab0")
	if !ok {
		t.Fatal("sequential histogram missing")
	}
	shd, ok := MergeSnapshots(0, a, b).Get(LayerTCP, "ack_rtt", "cab0")
	if !ok {
		t.Fatal("merged histogram missing")
	}
	if *seq.Hist != *shd.Hist {
		t.Errorf("merged stats differ:\nseq: %+v\nshd: %+v", *seq.Hist, *shd.Hist)
	}
	if shd.Hist.Count != 100 || shd.Hist.P90US < shd.Hist.P50US || shd.Hist.P99US < shd.Hist.P90US {
		t.Errorf("implausible merged stats: %+v", *shd.Hist)
	}
}

// TestCanonicalTraceEmpty: no streams, and streams with no events, both
// canonicalize to an empty trace.
func TestCanonicalTraceEmpty(t *testing.T) {
	if got := CanonicalTrace(); len(got) != 0 {
		t.Errorf("CanonicalTrace() = %d events, want 0", len(got))
	}
	if got := CanonicalTrace(nil, []Event{}); len(got) != 0 {
		t.Errorf("CanonicalTrace(nil, empty) = %d events, want 0", len(got))
	}
}

// TestCanonicalTraceSingleStream: canonicalizing one stream preserves
// content order for time-sorted input and renumbers span ids densely by
// first appearance, so arbitrary per-Observer ids become comparable.
func TestCanonicalTraceSingleStream(t *testing.T) {
	in := []Event{
		{At: 10, Node: 1, Layer: LayerCAB, Kind: Begin, Name: "tx", Span: 77},
		{At: 20, Node: 1, Layer: LayerCAB, Kind: Begin, Name: "dma", Span: 99, Parent: 77},
		{At: 30, Node: 1, Layer: LayerCAB, Kind: End, Name: "dma", Span: 99, Parent: 77},
		{At: 40, Node: 1, Layer: LayerCAB, Kind: End, Name: "tx", Span: 77},
	}
	out := CanonicalTrace(in)
	if len(out) != len(in) {
		t.Fatalf("%d events out, want %d", len(out), len(in))
	}
	for i, e := range out {
		if e.At != in[i].At || e.Name != in[i].Name {
			t.Fatalf("event %d reordered: %+v", i, e)
		}
	}
	if out[0].Span != 1 || out[1].Span != 2 {
		t.Errorf("span ids not renumbered by first appearance: %d, %d (want 1, 2)", out[0].Span, out[1].Span)
	}
	if out[1].Parent != out[0].Span || out[2].Parent != out[0].Span {
		t.Errorf("parent links broken by renumbering: %+v", out[1])
	}
	if out[3].Span != out[0].Span {
		t.Errorf("span close got a fresh id: begin %d, end %d", out[0].Span, out[3].Span)
	}
}

// TestCanonicalTraceTies: events sharing a virtual timestamp order by
// content (node, then layer, then name, ...) regardless of which stream
// carried them, and exact duplicates across streams both survive (the
// merge preserves the multiset, it does not dedup).
func TestCanonicalTraceTies(t *testing.T) {
	x := Event{At: 50, Node: 2, Layer: LayerFiber, Kind: Instant, Name: "dl.tx"}
	y := Event{At: 50, Node: 1, Layer: LayerFiber, Kind: Instant, Name: "dl.tx"}
	z := Event{At: 50, Node: 1, Layer: LayerDatalink, Kind: Instant, Name: "dispatch"}

	out := CanonicalTrace([]Event{x}, []Event{y, z})
	if len(out) != 3 {
		t.Fatalf("%d events, want 3", len(out))
	}
	// Content order: node 1 before node 2; within node 1, layer
	// "datalink" sorts before "fiber".
	if out[0] != z || out[1] != y || out[2] != x {
		t.Errorf("tie order wrong:\n0: %+v\n1: %+v\n2: %+v", out[0], out[1], out[2])
	}

	dup := Event{At: 7, Node: 3, Layer: LayerRMP, Kind: Instant, Name: "ack", Seq: 4}
	if got := CanonicalTrace([]Event{dup}, []Event{dup}); len(got) != 2 {
		t.Errorf("duplicate events collapsed: %d, want 2", len(got))
	}
}

// TestCanonicalTraceShardingInvariance is the invariant the sharded
// determinism tests rely on: the same multiset of events, split across
// streams differently (and with clashing per-stream span ids), formats
// identically after canonicalization.
func TestCanonicalTraceShardingInvariance(t *testing.T) {
	mk := func(at sim.Time, node int, name string, span SpanID) Event {
		return Event{At: at, Node: node, Layer: LayerCAB, Kind: Begin, Name: name, Span: span}
	}
	// Sequential observer: one id space.
	seq := []Event{mk(10, 0, "tx", 1), mk(10, 1, "tx", 2), mk(20, 0, "rx", 3), mk(20, 1, "rx", 4)}
	// Two shards: same events, per-shard id spaces that collide (both
	// use span 1 and 2 for different work).
	s0 := []Event{mk(10, 0, "tx", 1), mk(20, 0, "rx", 2)}
	s1 := []Event{mk(10, 1, "tx", 1), mk(20, 1, "rx", 2)}

	if got, want := FormatEvents(CanonicalTrace(s0, s1)), FormatEvents(CanonicalTrace(seq)); got != want {
		t.Errorf("sharded trace canonicalizes differently:\nseq:\n%s\nshd:\n%s", want, got)
	}
}

// TestCanonicalCapture covers the capture merge edge cases: nil and
// empty captures are skipped, timestamp ties order by link then
// content, and flag-only differences order clean-before-flagged.
func TestCanonicalCapture(t *testing.T) {
	if got := CanonicalCapture(nil, &Capture{}); len(got.Packets) != 0 {
		t.Errorf("empty merge produced %d packets", len(got.Packets))
	}

	p := func(link string, bytes int, dropped bool) CapturedPacket {
		return CapturedPacket{At: 100, Link: link, Bytes: bytes, Summary: "dg", Dropped: dropped}
	}
	a := &Capture{Packets: []CapturedPacket{p("hub<->cab1", 64, false)}}
	b := &Capture{Packets: []CapturedPacket{p("hub<->cab0", 64, true), p("hub<->cab0", 64, false)}}
	out := CanonicalCapture(a, nil, b)
	if len(out.Packets) != 3 {
		t.Fatalf("%d packets, want 3", len(out.Packets))
	}
	if out.Packets[0].Link != "hub<->cab0" || out.Packets[2].Link != "hub<->cab1" {
		t.Errorf("link tie-break wrong: %+v", out.Packets)
	}
	if out.Packets[0].Dropped || !out.Packets[1].Dropped {
		t.Errorf("clean packet must sort before its dropped twin: %+v", out.Packets[:2])
	}
}
