package obs

import (
	"fmt"
	"strings"

	"nectar/internal/proto/wire"
	"nectar/internal/sim"
)

// CapturedPacket is one frame seen on a fiber link, with its virtual
// arrival-on-wire time and a protocol decode.
type CapturedPacket struct {
	At        sim.Time `json:"at_ns"`
	Link      string   `json:"link"`
	Bytes     int      `json:"bytes"`
	Dropped   bool     `json:"dropped,omitempty"`   // fault injection ate it
	Corrupted bool     `json:"corrupted,omitempty"` // fault injection flipped bits
	Summary   string   `json:"summary"`             // protocol decode one-liner
}

// Capture is a wire tap: install it with Observer.SetCapture and every
// frame sent on any fiber link of the kernel is logged with a decode.
type Capture struct {
	Packets []CapturedPacket
	// KeepFrames retains raw frame copies in Frames (parallel to
	// Packets) for offline analysis. Off by default to bound memory.
	KeepFrames bool
	Frames     [][]byte
}

// add appends one frame to the log.
func (c *Capture) add(at sim.Time, link string, frame []byte, dropped, corrupted bool) {
	p := CapturedPacket{
		At:        at,
		Link:      link,
		Bytes:     len(frame),
		Dropped:   dropped,
		Corrupted: corrupted,
		Summary:   Decode(frame),
	}
	c.Packets = append(c.Packets, p)
	if c.KeepFrames {
		c.Frames = append(c.Frames, append([]byte(nil), frame...))
	}
}

// Text renders the capture as a tcpdump-style listing.
func (c *Capture) Text() string {
	var b strings.Builder
	for _, p := range c.Packets {
		flag := ""
		if p.Dropped {
			flag = " [DROPPED]"
		} else if p.Corrupted {
			flag = " [CORRUPTED]"
		}
		fmt.Fprintf(&b, "%12.3fus %-10s %4dB  %s%s\n", p.At.Micros(), p.Link, p.Bytes, p.Summary, flag)
	}
	return b.String()
}

// Decode produces a one-line protocol summary of a raw fiber frame:
// datalink header, then the encapsulated Nectar transport or IP packet
// (and its TCP/UDP/ICMP payload).
func Decode(frame []byte) string {
	var dl wire.DatalinkHeader
	if err := dl.Unmarshal(frame); err != nil {
		return fmt.Sprintf("?? undecodable frame (%v)", err)
	}
	payload := frame[wire.DatalinkHeaderLen:]
	if int(dl.Len) <= len(payload) {
		payload = payload[:dl.Len]
	}
	head := fmt.Sprintf("n%d > n%d", dl.Src, dl.Dst)
	switch dl.Type {
	case wire.TypeDatagram, wire.TypeRMP, wire.TypeRRP:
		return head + " " + decodeNectar(dl.Type, payload)
	case wire.TypeIP:
		return head + " " + decodeIP(payload)
	case wire.TypeRaw:
		return fmt.Sprintf("%s raw len=%d", head, dl.Len)
	}
	return fmt.Sprintf("%s type=%d len=%d", head, dl.Type, dl.Len)
}

// decodeNectar summarizes a Nectar transport packet.
func decodeNectar(typ uint8, b []byte) string {
	name := map[uint8]string{
		wire.TypeDatagram: "datagram",
		wire.TypeRMP:      "rmp",
		wire.TypeRRP:      "rrp",
	}[typ]
	var h wire.NectarHeader
	if err := h.Unmarshal(b); err != nil {
		return fmt.Sprintf("%s (truncated header)", name)
	}
	var fl []string
	if h.Flags&wire.FlagData != 0 {
		fl = append(fl, "data")
	}
	if h.Flags&wire.FlagAck != 0 {
		fl = append(fl, "ack")
	}
	if h.Flags&wire.FlagReply != 0 {
		fl = append(fl, "reply")
	}
	s := fmt.Sprintf("%s box %d > %d seq=%d len=%d", name, h.SrcBox, h.DstBox, h.Seq, h.Len)
	if len(fl) > 0 {
		s += " [" + strings.Join(fl, ",") + "]"
	}
	if h.Window != 0 {
		s += fmt.Sprintf(" win=%d", h.Window)
	}
	return s
}

// decodeIP summarizes an encapsulated IPv4 packet and its payload.
func decodeIP(b []byte) string {
	var h wire.IPv4Header
	if err := h.Unmarshal(b); err != nil {
		return "ip (truncated header)"
	}
	s := fmt.Sprintf("ip %s > %s id=%d ttl=%d", wire.FormatIP(h.Src), wire.FormatIP(h.Dst), h.ID, h.TTL)
	if h.FragOff != 0 || h.Flags&wire.IPFlagMF != 0 {
		s += fmt.Sprintf(" frag off=%d", int(h.FragOff)*8)
		if h.Flags&wire.IPFlagMF != 0 {
			s += "+"
		}
		if h.FragOff != 0 {
			// Continuation fragments carry no transport header.
			return s
		}
	}
	payload := b[wire.IPv4HeaderLen:]
	if int(h.TotalLen) >= wire.IPv4HeaderLen && int(h.TotalLen) <= len(b) {
		payload = b[wire.IPv4HeaderLen:h.TotalLen]
	}
	switch h.Protocol {
	case wire.ProtoTCP:
		return s + " " + decodeTCP(payload)
	case wire.ProtoUDP:
		return s + " " + decodeUDP(payload)
	case wire.ProtoICMP:
		return s + " " + decodeICMP(payload)
	}
	return fmt.Sprintf("%s proto=%d", s, h.Protocol)
}

func decodeTCP(b []byte) string {
	var h wire.TCPHeader
	if err := h.Unmarshal(b); err != nil {
		return "tcp (truncated header)"
	}
	var fl []string
	for _, f := range []struct {
		bit  uint8
		name string
	}{{wire.TCPSyn, "S"}, {wire.TCPFin, "F"}, {wire.TCPRst, "R"}, {wire.TCPPsh, "P"}, {wire.TCPAck, "."}} {
		if h.Flags&f.bit != 0 {
			fl = append(fl, f.name)
		}
	}
	return fmt.Sprintf("tcp %d > %d [%s] seq=%d ack=%d win=%d len=%d",
		h.SrcPort, h.DstPort, strings.Join(fl, ""), h.Seq, h.Ack, h.Window, len(b)-wire.TCPHeaderLen)
}

func decodeUDP(b []byte) string {
	var h wire.UDPHeader
	if err := h.Unmarshal(b); err != nil {
		return "udp (truncated header)"
	}
	return fmt.Sprintf("udp %d > %d len=%d", h.SrcPort, h.DstPort, int(h.Len)-wire.UDPHeaderLen)
}

func decodeICMP(b []byte) string {
	var h wire.ICMPHeader
	if err := h.Unmarshal(b); err != nil {
		return "icmp (truncated header)"
	}
	kind := fmt.Sprintf("type=%d code=%d", h.Type, h.Code)
	switch h.Type {
	case wire.ICMPEcho:
		kind = fmt.Sprintf("echo request id=%d seq=%d", h.ID, h.Seq)
	case wire.ICMPEchoReply:
		kind = fmt.Sprintf("echo reply id=%d seq=%d", h.ID, h.Seq)
	case wire.ICMPUnreachable:
		kind = fmt.Sprintf("unreachable code=%d", h.Code)
	}
	return "icmp " + kind
}
