// Package obs is the cluster-wide observability layer: typed trace
// events and spans, a per-node metrics registry, and a wire-capture tap,
// all on virtual time.
//
// The package sits below every hardware and runtime model (it imports
// only internal/sim and internal/proto/wire), and is wired to a kernel
// through the kernel's opaque observer slot: Ensure(k) installs (or
// returns) the kernel's Observer, and every layer that wants to emit
// events or register metrics calls it at construction time.
//
// Cost discipline: obs never charges virtual time (no Compute/Words
// calls), so enabling any part of it cannot change simulation results.
// With no trace sink and no capture installed, the event and capture
// paths reduce to a nil check and the metric paths to plain integer
// arithmetic — no allocations on the fast path.
package obs

import (
	"fmt"

	"nectar/internal/sim"
)

// Layer identifies the hardware or protocol layer an event or metric
// belongs to. The constants follow the repo's package names.
type Layer string

// Layers instrumented across the cluster.
const (
	LayerSched    Layer = "sched"    // thread scheduler (context switches, interrupts)
	LayerMailbox  Layer = "mailbox"  // mailbox put/get phases
	LayerHostIF   Layer = "hostif"   // host<->CAB doorbells and ISRs
	LayerVME      Layer = "vme"      // VME bus PIO/DMA
	LayerFiber    Layer = "fiber"    // fiber links and HUB
	LayerCAB      Layer = "cab"      // CAB tx/rx DMA engines
	LayerDatalink Layer = "datalink" // datalink framing/dispatch
	LayerIP       Layer = "ip"       // IP (incl. fragmentation/reassembly)
	LayerTCP      Layer = "tcp"
	LayerUDP      Layer = "udp"
	LayerDatagram Layer = "datagram" // Nectar datagram transport
	LayerRMP      Layer = "rmp"      // Nectar reliable message protocol
	LayerRRP      Layer = "rrp"      // Nectar request-response protocol
	LayerHost     Layer = "host"     // host process side of an experiment
)

// Kind distinguishes instantaneous events from span boundaries.
type Kind uint8

const (
	// Instant is a point event (the typed successor of Kernel.Mark).
	Instant Kind = iota
	// Begin opens a span; the matching End event carries the same Span id.
	Begin
	// End closes a span.
	End
)

func (k Kind) String() string {
	switch k {
	case Instant:
		return "instant"
	case Begin:
		return "begin"
	case End:
		return "end"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// SpanID identifies a span within one Observer. 0 means "no span".
type SpanID uint64

// Event is one typed trace record. All times are virtual.
type Event struct {
	At     sim.Time // virtual time the event fired
	Node   int      // node id, 0 when the emitting layer is not node-scoped
	Layer  Layer
	Kind   Kind
	Name   string // stage name, e.g. "doorbell", "dl.tx", "rto"
	Arg    string // optional qualifier (mailbox name, link name, ...)
	Span   SpanID // span this event opens/closes, 0 for plain instants
	Parent SpanID // causal parent span, 0 if none
	Seq    uint64 // packet/segment/transaction identity when known
	Bytes  int    // payload size when known
}

// String renders the event as one trace line.
func (e Event) String() string {
	s := fmt.Sprintf("%10.3fus n%d %-8s %-7s %s", e.At.Micros(), e.Node, e.Layer, e.Kind, e.Name)
	if e.Arg != "" {
		s += " " + e.Arg
	}
	if e.Seq != 0 {
		s += fmt.Sprintf(" seq=%d", e.Seq)
	}
	if e.Bytes != 0 {
		s += fmt.Sprintf(" len=%d", e.Bytes)
	}
	if e.Span != 0 {
		s += fmt.Sprintf(" span=%d", e.Span)
	}
	if e.Parent != 0 {
		s += fmt.Sprintf(" parent=%d", e.Parent)
	}
	return s
}

// Sink consumes trace events as they are emitted. Implementations must
// not call back into the simulation.
type Sink interface {
	Event(Event)
}

// Recorder is a Sink that appends every event to a slice.
type Recorder struct {
	Events []Event
}

// Event implements Sink.
func (r *Recorder) Event(e Event) { r.Events = append(r.Events, e) }

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Event implements Sink.
func (f SinkFunc) Event(e Event) { f(e) }
