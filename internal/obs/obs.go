package obs

import "nectar/internal/sim"

// Observer is the per-kernel observability hub: it owns the metrics
// registry, the optional trace sink, and the optional wire capture.
// All methods are nil-receiver tolerant so layers can emit
// unconditionally; with no sink installed emission is a nil check.
type Observer struct {
	k   *sim.Kernel
	reg *Registry
	// The trace sink and wire capture record events in virtual-time
	// order for one kernel; under PDES sharding each domain has its own
	// (merged deterministically at the end of the run), so they are
	// per-shard state.
	sink     Sink     //nectar:shard-owned
	cap      *Capture //nectar:shard-owned
	nextSpan uint64
}

// Ensure returns the kernel's Observer, installing a fresh one on first
// call. Every layer constructor calls this, so components built outside a
// full cluster (unit tests) still get working metrics.
func Ensure(k *sim.Kernel) *Observer {
	if o, ok := k.Observer().(*Observer); ok {
		return o
	}
	o := &Observer{k: k, reg: NewRegistry()}
	k.SetObserver(o)
	return o
}

// Get returns the kernel's Observer or nil if none is installed.
func Get(k *sim.Kernel) *Observer {
	o, _ := k.Observer().(*Observer)
	return o
}

// Metrics returns the observer's registry (nil-tolerant).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// SetSink installs (or removes, with nil) the trace sink.
func (o *Observer) SetSink(s Sink) {
	if o != nil {
		o.sink = s
	}
}

// Tracing reports whether a trace sink is installed. Call sites use it to
// skip argument construction for expensive events.
func (o *Observer) Tracing() bool { return o != nil && o.sink != nil }

// SetCapture installs (or removes, with nil) the wire-capture tap.
func (o *Observer) SetCapture(c *Capture) {
	if o != nil {
		o.cap = c
	}
}

// CaptureLog returns the installed capture, or nil.
func (o *Observer) CaptureLog() *Capture {
	if o == nil {
		return nil
	}
	return o.cap
}

// emit delivers e to the sink, stamping the virtual time.
func (o *Observer) emit(e Event) {
	e.At = o.k.Now()
	o.sink.Event(e)
}

// Instant emits a point event.
func (o *Observer) Instant(node int, layer Layer, name string) {
	if o == nil || o.sink == nil {
		return
	}
	o.emit(Event{Node: node, Layer: layer, Kind: Instant, Name: name})
}

// InstantSeq emits a point event carrying packet identity.
func (o *Observer) InstantSeq(node int, layer Layer, name string, seq uint64, bytes int) {
	if o == nil || o.sink == nil {
		return
	}
	o.emit(Event{Node: node, Layer: layer, Kind: Instant, Name: name, Seq: seq, Bytes: bytes})
}

// InstantArg emits a point event with a qualifier string.
func (o *Observer) InstantArg(node int, layer Layer, name, arg string, seq uint64, bytes int) {
	if o == nil || o.sink == nil {
		return
	}
	o.emit(Event{Node: node, Layer: layer, Kind: Instant, Name: name, Arg: arg, Seq: seq, Bytes: bytes})
}

// Begin opens a span and returns its id (0 when tracing is off, which
// every span-taking method accepts).
func (o *Observer) Begin(node int, layer Layer, name string, parent SpanID) SpanID {
	return o.BeginSeq(node, layer, name, parent, 0, 0)
}

// BeginSeq opens a span carrying packet identity.
func (o *Observer) BeginSeq(node int, layer Layer, name string, parent SpanID, seq uint64, bytes int) SpanID {
	if o == nil || o.sink == nil {
		return 0
	}
	o.nextSpan++
	id := SpanID(o.nextSpan)
	o.emit(Event{Node: node, Layer: layer, Kind: Begin, Name: name, Span: id, Parent: parent, Seq: seq, Bytes: bytes})
	return id
}

// End closes a span opened by Begin. A zero span is ignored.
func (o *Observer) End(span SpanID, node int, layer Layer, name string) {
	if o == nil || o.sink == nil || span == 0 {
		return
	}
	o.emit(Event{Node: node, Layer: layer, Kind: End, Name: name, Span: span})
}

// CapturePacket delivers one wire frame to the capture tap, if any.
func (o *Observer) CapturePacket(link string, frame []byte, dropped, corrupted bool) {
	if o == nil || o.cap == nil {
		return
	}
	o.cap.add(o.k.Now(), link, frame, dropped, corrupted)
}
