package obs

import (
	"bytes"
	"testing"

	"nectar/internal/sim"
)

// TestDisabledEmissionAllocatesNothing pins the package's core promise:
// with no sink installed, every emission path is a nil check and every
// metric update is plain arithmetic — zero allocations.
func TestDisabledEmissionAllocatesNothing(t *testing.T) {
	o := Ensure(sim.NewKernel())
	if o.Tracing() {
		t.Fatal("fresh observer reports tracing enabled")
	}
	c := o.Metrics().Counter(LayerTCP, "segs_out", "cab1")
	h := o.Metrics().Histogram(LayerTCP, "ack_rtt", "cab1")

	allocs := testing.AllocsPerRun(1000, func() {
		o.Instant(1, LayerDatagram, "send")
		o.InstantSeq(1, LayerTCP, "tx", 7, 128)
		o.InstantArg(1, LayerMailbox, "get", "dg.send", 0, 0)
		sp := o.BeginSeq(1, LayerCAB, "rx", 0, 7, 128)
		o.End(sp, 1, LayerCAB, "rx")
		o.CapturePacket("fiber.a-b", nil, false, false)
		c.Inc()
		c.Add(3)
		h.Observe(42 * sim.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f times per op, want 0", allocs)
	}
}

// TestNilReceiversAreNoOps verifies that a nil observer, counter, and
// histogram are all safe to use, so layers built without a kernel still
// work.
func TestNilReceiversAreNoOps(t *testing.T) {
	var o *Observer
	o.Instant(1, LayerIP, "x")
	o.End(o.Begin(1, LayerIP, "x", 0), 1, LayerIP, "x")
	if o.Tracing() {
		t.Fatal("nil observer reports tracing")
	}
	if o.Metrics() != nil {
		t.Fatal("nil observer returned a registry")
	}
	var r *Registry
	c := r.Counter(LayerIP, "x", "cab1")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil-registry counter counted")
	}
	h := r.Histogram(LayerIP, "x", "cab1")
	h.Observe(sim.Millisecond)
	r.Gauge(LayerIP, "x", "cab1", func() uint64 { return 1 })
	if got := r.Snapshot(0); len(got.Entries) != 0 {
		t.Fatalf("nil registry snapshot has %d entries", len(got.Entries))
	}
}

// TestSnapshotDeterministic verifies that two snapshots of the same
// registry state serialize byte-identically, regardless of map iteration
// order.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		for _, scope := range []string{"cab2", "cab1", "total"} {
			r.Counter(LayerTCP, "segs_out", scope).Add(5)
			r.Counter(LayerFiber, "bytes", scope).Add(1024)
			r.Gauge(LayerRMP, "sent", scope, func() uint64 { return 9 })
			r.Histogram(LayerVME, "dma", scope).Observe(3 * sim.Microsecond)
		}
		return r
	}
	a := build().Snapshot(1000).JSON()
	b := build().Snapshot(1000).JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical registries snapshot differently:\n%s\n---\n%s", a, b)
	}
}

// TestSpanIDsAreSequential verifies that Begin hands out fresh ids only
// while a sink is installed, so disabled runs never burn span numbers.
func TestSpanIDsAreSequential(t *testing.T) {
	o := Ensure(sim.NewKernel())
	if id := o.Begin(1, LayerCAB, "x", 0); id != 0 {
		t.Fatalf("Begin with no sink returned span %d, want 0", id)
	}
	rec := &Recorder{}
	o.SetSink(rec)
	a := o.Begin(1, LayerCAB, "x", 0)
	b := o.Begin(1, LayerCAB, "y", a)
	if a == 0 || b != a+1 {
		t.Fatalf("span ids %d, %d not sequential", a, b)
	}
	o.End(b, 1, LayerCAB, "y")
	o.End(a, 1, LayerCAB, "x")
	if len(rec.Events) != 4 {
		t.Fatalf("recorded %d events, want 4", len(rec.Events))
	}
	if rec.Events[1].Parent != a {
		t.Fatalf("child span parent = %d, want %d", rec.Events[1].Parent, a)
	}
}

// BenchmarkDisabledEmit is the acceptance benchmark: observability with
// no sink installed must add no allocations on the fast path.
func BenchmarkDisabledEmit(b *testing.B) {
	o := Ensure(sim.NewKernel())
	c := o.Metrics().Counter(LayerDatagram, "sent", "cab1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.InstantSeq(1, LayerDatagram, "send", uint64(i), 64)
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures the metric hot path (always on).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram(LayerTCP, "ack_rtt", "cab1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(sim.Duration(i))
	}
}
