package bench

import (
	"fmt"

	"nectar"
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/hub"
	"nectar/internal/model"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// AblateIPModeResult compares protocol input processing at interrupt time
// against a high-priority thread — the experiment §3.1 says the authors
// planned: "We will experiment with moving portions of it into
// high-priority threads. Although this will introduce additional context
// switching, the CAB will spend less time with interrupts disabled."
type AblateIPModeResult struct {
	InterruptRTTUS float64 // datagram CAB-CAB RTT, interrupt-time input
	ThreadRTTUS    float64 // same, rx-thread input
	InterruptMbps  float64 // RMP CAB-CAB throughput at 1 KB
	ThreadMbps     float64
}

// AblateIPMode runs the §3.1 input-processing ablation.
func AblateIPMode(cost *model.CostModel) (*AblateIPModeResult, error) {
	res := &AblateIPModeResult{}
	rtt, err := rttDatagramMode(cost, false)
	if err != nil {
		return nil, err
	}
	res.InterruptRTTUS = rtt.Micros()
	rtt, err = rttDatagramMode(cost, true)
	if err != nil {
		return nil, err
	}
	res.ThreadRTTUS = rtt.Micros()

	v, err := rmpThroughputCABMode(cost, 1024, false)
	if err != nil {
		return nil, err
	}
	res.InterruptMbps = v
	v, err = rmpThroughputCABMode(cost, 1024, true)
	if err != nil {
		return nil, err
	}
	res.ThreadMbps = v
	return res, nil
}

func rttDatagramMode(cost *model.CostModel, rxThread bool) (sim.Duration, error) {
	cl, a, b := newCluster(cost, rxThread)
	h := &echoHarness{cl: cl}
	boxA := a.Mailboxes.Create("reply")
	boxB := b.Mailboxes.Create("service")
	b.CAB.Sched.Fork("echoer", threads.SystemPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		for {
			m := boxB.BeginGet(ctx)
			boxB.EndGet(ctx, m)
			_ = b.Transports.Datagram.SendDirect(ctx, boxA.Addr(), 0, []byte{0})
		}
	})
	a.CAB.Sched.Fork("client", threads.SystemPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		h.client(t,
			func() { _ = a.Transports.Datagram.SendDirect(ctx, boxB.Addr(), 0, []byte{0}) },
			func() {
				m := boxA.BeginGet(ctx)
				boxA.EndGet(ctx, m)
			})
	})
	if err := drive(cl, &h.done); err != nil {
		return 0, err
	}
	return h.rtt, nil
}

func rmpThroughputCABMode(cost *model.CostModel, size int, rxThread bool) (float64, error) {
	cl, a, b := newCluster(cost, rxThread)
	n := messagesFor(size)
	box := b.Mailboxes.Create("sink")
	box.SetCapacity(1 << 20)
	done := false
	var start, end sim.Time
	b.CAB.Sched.Fork("drain", threads.SystemPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		for i := 0; i < n; i++ {
			m := box.BeginGet(ctx)
			box.EndGet(ctx, m)
		}
		end = t.Now()
		done = true
	})
	a.CAB.Sched.Fork("blast", threads.SystemPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		buf := make([]byte, size)
		start = t.Now()
		for i := 0; i < n; i++ {
			if st := a.Transports.RMP.SendBlocking(ctx, box.Addr(), 0, buf); st != 1 {
				cl.K.Fatalf("rmp status %d", st)
			}
		}
	})
	if err := drive(cl, &done); err != nil {
		return 0, err
	}
	return mbps(n*size, sim.Duration(end-start)), nil
}

// Format renders A1.
func (r *AblateIPModeResult) Format() string {
	return fmt.Sprintf(
		"A1: protocol input at interrupt time vs high-priority thread (§3.1)\n"+
			"  datagram CAB-CAB RTT:  interrupt %6.1f us   thread %6.1f us\n"+
			"  RMP 1KB throughput:    interrupt %6.1f Mb   thread %6.1f Mb\n",
		r.InterruptRTTUS, r.ThreadRTTUS, r.InterruptMbps, r.ThreadMbps)
}

// AblateUpcallResult compares a CAB-local client-server pair implemented
// with a separate server thread against the server body attached as a
// mailbox reader upcall (§3.3: "this effectively converts a cross-thread
// procedure call into a local one").
type AblateUpcallResult struct {
	ThreadUS float64 // per request-response, separate server thread
	UpcallUS float64 // per request-response, reader upcall
}

// AblateUpcall runs the §3.3 upcall-vs-thread ablation.
func AblateUpcall(cost *model.CostModel) (*AblateUpcallResult, error) {
	const rounds = 100
	run := func(upcall bool) (sim.Duration, error) {
		cl := nectar.NewCluster(&nectar.Config{Cost: cost})
		n := cl.AddNode()
		reqBox := n.Mailboxes.Create("svc.req")
		repBox := n.Mailboxes.Create("svc.rep")
		serve := func(t *threads.Thread, m *mailbox.Msg) {
			ctx := exec.OnCAB(t)
			t.Compute(5 * sim.Microsecond) // the service body
			r := repBox.BeginPutNB(ctx, 1)
			if r == nil {
				cl.K.Fatalf("reply buffer exhausted")
				return
			}
			repBox.EndPut(ctx, r)
			reqBox.EndGet(ctx, m)
		}
		if upcall {
			reqBox.SetUpcall(func(t *threads.Thread, box *mailbox.Mailbox) {
				ctx := exec.OnCAB(t)
				if m := box.BeginGetNB(ctx); m != nil {
					serve(t, m)
				}
			})
		} else {
			n.CAB.Sched.Fork("server", threads.SystemPriority, func(t *threads.Thread) {
				ctx := exec.OnCAB(t)
				for {
					m := reqBox.BeginGet(ctx)
					serve(t, m)
				}
			})
		}
		done := false
		var took sim.Duration
		n.CAB.Sched.Fork("client", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			start := t.Now()
			for i := 0; i < rounds; i++ {
				m := reqBox.BeginPut(ctx, 1)
				reqBox.EndPut(ctx, m)
				rep := repBox.BeginGet(ctx)
				repBox.EndGet(ctx, rep)
			}
			took = sim.Duration(t.Now()-start) / rounds
			done = true
		})
		if err := drive(cl, &done); err != nil {
			return 0, err
		}
		return took, nil
	}
	th, err := run(false)
	if err != nil {
		return nil, err
	}
	up, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblateUpcallResult{ThreadUS: th.Micros(), UpcallUS: up.Micros()}, nil
}

// Format renders A2.
func (r *AblateUpcallResult) Format() string {
	return fmt.Sprintf(
		"A2: CAB-local client-server, thread vs reader upcall (§3.3)\n"+
			"  separate server thread: %6.1f us/op\n"+
			"  reader upcall:          %6.1f us/op (saves the context switches)\n",
		r.ThreadUS, r.UpcallUS)
}

// AblateSwitchingResult compares packet-switched frames (700 ns setup per
// packet per HUB) against frames on a pre-established circuit (§2.1).
type AblateSwitchingResult struct {
	PacketFirstByteNS  float64
	CircuitFirstByteNS float64
}

// AblateSwitching measures per-frame first-byte latency through one HUB
// in both switching modes, at the fabric level.
func AblateSwitching(cost *model.CostModel) (*AblateSwitchingResult, error) {
	if cost == nil {
		cost = model.Default1990()
	}
	run := func(circuit bool) (float64, error) {
		k := sim.NewKernel()
		h := hub.New(k, cost, "hub", hub.DefaultPorts)
		var firstBytes []sim.Time
		var sends []sim.Time
		sink := endpointFunc(func(pkt *fiber.Packet, end sim.Time) {
			firstBytes = append(firstBytes, k.Now())
		})
		h.ConnectOut(1, fiber.NewLink(k, cost, "out", sink))
		up := fiber.NewLink(k, cost, "in", h.InPort(0))
		if circuit {
			if err := h.OpenCircuit(0, 1); err != nil {
				return 0, err
			}
		}
		for i := 0; i < 10; i++ {
			i := i
			k.After(sim.Duration(i)*100*sim.Microsecond, func() {
				sends = append(sends, k.Now())
				up.Send(&fiber.Packet{Route: []byte{1}, Frame: make([]byte, 64), Circuit: circuit})
			})
		}
		if err := k.Run(); err != nil {
			return 0, err
		}
		var total float64
		for i := range firstBytes {
			total += float64((firstBytes[i] - sends[i]).Nanos())
		}
		return total / float64(len(firstBytes)), nil
	}
	p, err := run(false)
	if err != nil {
		return nil, err
	}
	c, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblateSwitchingResult{PacketFirstByteNS: p, CircuitFirstByteNS: c}, nil
}

type endpointFunc func(pkt *fiber.Packet, end sim.Time)

func (f endpointFunc) PacketArriving(pkt *fiber.Packet, end sim.Time) { f(pkt, end) }

// Format renders A4.
func (r *AblateSwitchingResult) Format() string {
	return fmt.Sprintf(
		"A4: packet switching vs pre-established circuit (§2.1)\n"+
			"  packet-switched first byte:  %5.0f ns/frame (includes 700 ns setup)\n"+
			"  circuit-switched first byte: %5.0f ns/frame\n",
		r.PacketFirstByteNS, r.CircuitFirstByteNS)
}

// AblateMailboxImplResult is E8: host mailbox operations through the
// shared-memory implementation vs the RPC-based one (§3.3: "about a
// factor of two improvement").
type AblateMailboxImplResult struct {
	SharedUS float64 // per put+get pair
	RPCUS    float64
}

// AblateMailboxImpl measures host-side mailbox operation cost under both
// implementations.
func AblateMailboxImpl(cost *model.CostModel) (*AblateMailboxImplResult, error) {
	const rounds = 100
	run := func(rpc bool) (sim.Duration, error) {
		cl := nectar.NewCluster(&nectar.Config{Cost: cost})
		n := cl.AddNode()
		box := n.Mailboxes.Create("bench")
		box.SetHostRPC(rpc)
		done := false
		var took sim.Duration
		n.Host.Run("bench", func(t *threads.Thread) {
			ctx := exec.OnHost(t, n.Host)
			start := t.Now()
			for i := 0; i < rounds; i++ {
				m := box.BeginPut(ctx, 16)
				box.EndPut(ctx, m)
				g := box.BeginGetPoll(ctx)
				box.EndGet(ctx, g)
			}
			took = sim.Duration(t.Now()-start) / rounds
			done = true
		})
		if err := drive(cl, &done); err != nil {
			return 0, err
		}
		return took, nil
	}
	sh, err := run(false)
	if err != nil {
		return nil, err
	}
	rp, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblateMailboxImplResult{SharedUS: sh.Micros(), RPCUS: rp.Micros()}, nil
}

// Format renders E8.
func (r *AblateMailboxImplResult) Format() string {
	return fmt.Sprintf(
		"E8: host mailbox ops, shared-memory vs RPC implementation (§3.3)\n"+
			"  shared memory: %6.1f us per put+get\n"+
			"  RPC-based:     %6.1f us per put+get  (paper: ~2x slower)\n",
		r.SharedUS, r.RPCUS)
}

// AblateRMPWindowResult measures what the paper's stop-and-wait design
// costs on the 100 Mbit/s fiber, using this reproduction's windowed-RMP
// extension (the wire format's reserved Window field).
type AblateRMPWindowResult struct {
	StopAndWaitMbps float64 // window 1, the paper's protocol, 1 KB messages
	Window4Mbps     float64
	Window8Mbps     float64
}

// AblateRMPWindow compares CAB-to-CAB RMP throughput at 1 KB messages
// across sender window sizes: with stop-and-wait every message pays a full
// ack round trip; a deeper window overlaps them.
func AblateRMPWindow(cost *model.CostModel) (*AblateRMPWindowResult, error) {
	run := func(window int) (float64, error) {
		cl, a, b := newCluster(cost, false)
		a.Transports.RMP.SetWindow(window)
		const size = 1024
		n := messagesFor(size)
		box := b.Mailboxes.Create("sink")
		box.SetCapacity(1 << 20)
		done := false
		var start, end sim.Time
		b.CAB.Sched.Fork("drain", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			for i := 0; i < n; i++ {
				m := box.BeginGet(ctx)
				box.EndGet(ctx, m)
			}
			end = t.Now()
			done = true
		})
		a.CAB.Sched.Fork("blast", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			buf := make([]byte, size)
			start = t.Now()
			for i := 0; i < n; i++ {
				// Queue through the send-request mailbox so the window,
				// not the caller, paces transmissions.
				a.Transports.RMP.Send(ctx, box.Addr(), 0, buf, nil)
			}
		})
		if err := drive(cl, &done); err != nil {
			return 0, err
		}
		return mbps(n*size, sim.Duration(end-start)), nil
	}
	res := &AblateRMPWindowResult{}
	var err error
	if res.StopAndWaitMbps, err = run(1); err != nil {
		return nil, err
	}
	if res.Window4Mbps, err = run(4); err != nil {
		return nil, err
	}
	if res.Window8Mbps, err = run(8); err != nil {
		return nil, err
	}
	return res, nil
}

// Format renders the windowed-RMP extension ablation.
func (r *AblateRMPWindowResult) Format() string {
	return fmt.Sprintf(
		"A5 (extension): RMP sender window at 1KB messages, CAB-to-CAB\n"+
			"  window 1 (paper's stop-and-wait): %6.1f Mbit/s\n"+
			"  window 4:                         %6.1f Mbit/s\n"+
			"  window 8:                         %6.1f Mbit/s\n",
		r.StopAndWaitMbps, r.Window4Mbps, r.Window8Mbps)
}

// AblateAppLoadResult tests the §3.1 scheduling claim behind the CAB's
// flexibility: because protocol threads run at system priority and
// interrupts preempt everything, a compute-bound application task on the
// communication processor should barely disturb protocol latency.
type AblateAppLoadResult struct {
	IdleRTTUS   float64 // datagram CAB-CAB RTT, no application load
	LoadedRTTUS float64 // same, with a spinning app task on both CABs
}

// AblateAppLoad measures datagram round trips with and without a
// CPU-saturating application-priority task on each CAB.
func AblateAppLoad(cost *model.CostModel) (*AblateAppLoadResult, error) {
	run := func(loaded bool) (sim.Duration, error) {
		cl, a, b := newCluster(cost, false)
		if loaded {
			hog := func(t *threads.Thread) {
				for {
					t.Compute(10 * sim.Millisecond)
				}
			}
			a.CAB.Sched.Fork("hog", threads.AppPriority, hog)
			b.CAB.Sched.Fork("hog", threads.AppPriority, hog)
		}
		h := &echoHarness{cl: cl}
		boxA := a.Mailboxes.Create("reply")
		boxB := b.Mailboxes.Create("service")
		b.CAB.Sched.Fork("echoer", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			for {
				m := boxB.BeginGet(ctx)
				boxB.EndGet(ctx, m)
				_ = b.Transports.Datagram.SendDirect(ctx, boxA.Addr(), 0, []byte{0})
			}
		})
		a.CAB.Sched.Fork("client", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			h.client(t,
				func() {
					_ = a.Transports.Datagram.SendDirect(ctx, wire.MailboxAddr{Node: b.ID, Box: boxB.ID()}, 0, []byte{0})
				},
				func() {
					m := boxA.BeginGet(ctx)
					boxA.EndGet(ctx, m)
				})
		})
		if err := drive(cl, &h.done); err != nil {
			return 0, err
		}
		return h.rtt, nil
	}
	idle, err := run(false)
	if err != nil {
		return nil, err
	}
	loaded, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblateAppLoadResult{IdleRTTUS: idle.Micros(), LoadedRTTUS: loaded.Micros()}, nil
}

// Format renders A6.
func (r *AblateAppLoadResult) Format() string {
	return fmt.Sprintf(
		"A6: protocol latency under CAB application load (§3.1 scheduling)\n"+
			"  datagram CAB-CAB RTT, idle CABs:          %6.1f us\n"+
			"  datagram CAB-CAB RTT, CPU-hog app tasks:  %6.1f us\n"+
			"  (system-priority protocols + preemption keep the penalty to context switches)\n",
		r.IdleRTTUS, r.LoadedRTTUS)
}
