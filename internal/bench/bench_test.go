package bench

import (
	"testing"
)

// The calibration tests pin the reproduction to the paper's anchors: if a
// refactor drifts a headline number outside its tolerance band, these
// fail. They run the real experiments, so they are the slowest tests in
// the repository (a few seconds of wall clock).

func TestCalibrationTable1(t *testing.T) {
	r, err := Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Table1Row{}
	for _, row := range r.Rows {
		rows[row.Proto] = row
	}
	dg := rows["datagram"]
	// Paper: 325 us host-host, 179 us CAB-CAB. Allow 15%.
	if dg.HostHostUS < 276 || dg.HostHostUS > 374 {
		t.Errorf("datagram host-host RTT = %.0f us, want 325 +/- 15%%", dg.HostHostUS)
	}
	if dg.CABCABUS < 152 || dg.CABCABUS > 206 {
		t.Errorf("datagram CAB-CAB RTT = %.0f us, want 179 +/- 15%%", dg.CABCABUS)
	}
	// Abstract: RPC < 500 us.
	if rr := rows["request-response"]; rr.HostHostUS >= 500 {
		t.Errorf("RPC host-host RTT = %.0f us, want < 500", rr.HostHostUS)
	}
	// UDP must be the slowest (full IP stack + checksums).
	udp := rows["UDP"]
	for name, row := range rows {
		if name != "UDP" && row.HostHostUS >= udp.HostHostUS {
			t.Errorf("%s (%.0f us) not faster than UDP (%.0f us)", name, row.HostHostUS, udp.HostHostUS)
		}
	}
	// Unreliable datagram must beat the acknowledged protocols.
	if dg.HostHostUS >= rows["reliable (RMP)"].HostHostUS {
		t.Error("datagram not faster than RMP")
	}
}

func TestCalibrationFig6(t *testing.T) {
	r, err := Fig6(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 163 us total; allow 10%.
	if r.TotalUS < 147 || r.TotalUS > 179 {
		t.Errorf("one-way latency = %.1f us, want 163 +/- 10%%", r.TotalUS)
	}
	// Paper: ~20/40/40 split; allow generous bands.
	if r.HostPct < 10 || r.HostPct > 30 {
		t.Errorf("host bucket = %.0f%%, want ~20%%", r.HostPct)
	}
	if r.InterfacePct < 30 || r.InterfacePct > 55 {
		t.Errorf("interface bucket = %.0f%%, want ~40%%", r.InterfacePct)
	}
	if r.CABPct < 30 || r.CABPct > 50 {
		t.Errorf("CAB-CAB bucket = %.0f%%, want ~40%%", r.CABPct)
	}
	// Stages must account for the whole path.
	var sum float64
	for _, s := range r.Stages {
		if s.US < 0 {
			t.Errorf("negative stage %q", s.Name)
		}
		sum += s.US
	}
	if diff := sum - r.TotalUS; diff > 0.01 || diff < -0.01 {
		t.Errorf("stages sum to %.2f, total %.2f", sum, r.TotalUS)
	}
}

func TestCalibrationFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	curves, _, err := Fig7(nil, []int{64, 128, 8192})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]Point{}
	for _, c := range curves {
		byName[c.Name] = c.Points
	}
	rmp8k := byName["RMP"][2].Mbps
	tcp8k := byName["TCP/IP"][2].Mbps
	nock8k := byName["TCP w/o checksum"][2].Mbps
	// Paper: RMP ~90 Mbit/s at 8 KB (allow 80-95).
	if rmp8k < 80 || rmp8k > 95 {
		t.Errorf("RMP 8K = %.1f Mbit/s, want ~90", rmp8k)
	}
	// Paper: TCP w/o checksum almost as fast as RMP; TCP/IP well below.
	if nock8k < 0.75*rmp8k {
		t.Errorf("TCP w/o checksum 8K = %.1f, want near RMP %.1f", nock8k, rmp8k)
	}
	if tcp8k > 0.65*nock8k {
		t.Errorf("TCP/IP 8K = %.1f vs no-checksum %.1f; checksum gap missing", tcp8k, nock8k)
	}
	// Doubling region: 64 -> 128 roughly doubles for RMP.
	ratio := byName["RMP"][1].Mbps / byName["RMP"][0].Mbps
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("RMP 128/64 ratio = %.2f, want ~2 (overhead-dominated)", ratio)
	}
}

func TestCalibrationFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	curves, _, err := Fig8(nil, []int{8192})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		v := c.Points[0].Mbps
		// Paper: VME-limited, 24-28 Mbit/s zone; our bus model tops out
		// just above 30. Require the VME ceiling, not the fiber's.
		if v < 22 || v > 33 {
			t.Errorf("%s host-host 8K = %.1f Mbit/s, want VME-limited 24-31", c.Name, v)
		}
	}
}

func TestCalibrationNetdev(t *testing.T) {
	if testing.Short() {
		t.Skip("stream experiment")
	}
	r, err := Netdev(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 6.4 vs 7.2 Mbit/s; allow 10%.
	if r.NectarNetdevMbps < 5.8 || r.NectarNetdevMbps > 7.0 {
		t.Errorf("netdev = %.1f Mbit/s, want ~6.4", r.NectarNetdevMbps)
	}
	if r.EthernetMbps < 6.5 || r.EthernetMbps > 7.9 {
		t.Errorf("ethernet = %.1f Mbit/s, want ~7.2", r.EthernetMbps)
	}
	if r.EthernetMbps <= r.NectarNetdevMbps {
		t.Error("Ethernet must beat the VME-crossing netdev level (paper §6.3)")
	}
}

func TestCalibrationMicro(t *testing.T) {
	r, err := Micro(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.HubFirstByteNS < 690 || r.HubFirstByteNS > 710 {
		t.Errorf("hub first byte = %.0f ns, want 700", r.HubFirstByteNS)
	}
	if r.ContextSwitchUS < 19 || r.ContextSwitchUS > 22 {
		t.Errorf("context switch = %.1f us, want ~20", r.ContextSwitchUS)
	}
}

func TestAblationIPMode(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	r, err := AblateIPMode(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The thread mode pays extra context switches (paper §3.1 predicts
	// "additional context switching").
	if r.ThreadRTTUS <= r.InterruptRTTUS {
		t.Errorf("thread-mode RTT %.1f <= interrupt-mode %.1f; expected added switches",
			r.ThreadRTTUS, r.InterruptRTTUS)
	}
	if r.ThreadMbps >= r.InterruptMbps {
		t.Errorf("thread-mode throughput %.1f >= interrupt-mode %.1f", r.ThreadMbps, r.InterruptMbps)
	}
}

func TestAblationUpcall(t *testing.T) {
	r, err := AblateUpcall(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The upcall saves roughly two context switches (40 us) per exchange.
	saved := r.ThreadUS - r.UpcallUS
	if saved < 30 || saved > 60 {
		t.Errorf("upcall saves %.1f us/op, want ~40 (two context switches)", saved)
	}
}

func TestAblationMailboxImpl(t *testing.T) {
	r, err := AblateMailboxImpl(nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.RPCUS / r.SharedUS
	// Paper: "about a factor of two"; our RPC path is costlier — accept
	// 1.5-5x but require the direction (EXPERIMENTS.md records the gap).
	if ratio < 1.5 || ratio > 5 {
		t.Errorf("RPC/shared = %.1fx, want >= 1.5x and sane", ratio)
	}
}

func TestAblationSwitching(t *testing.T) {
	r, err := AblateSwitching(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.PacketFirstByteNS-r.CircuitFirstByteNS != 700 {
		t.Errorf("packet-circuit delta = %.0f ns, want 700 (the HUB setup)",
			r.PacketFirstByteNS-r.CircuitFirstByteNS)
	}
}

func TestFormatters(t *testing.T) {
	// Smoke-test the human-readable output paths.
	r := &Table1Result{Rows: []Table1Row{{Proto: "x", HostHostUS: 1, CABCABUS: 2}}}
	if r.Format() == "" {
		t.Error("empty Table1 format")
	}
	c := []Curve{{Name: "a", Points: []Point{{16, 1.5}}}}
	if FormatCurves("t", c) == "" {
		t.Error("empty curve format")
	}
	m := &MicroResult{HubFirstByteNS: 700, ContextSwitchUS: 20}
	if m.Format() == "" {
		t.Error("empty micro format")
	}
}

func TestAblationRMPWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	r, err := AblateRMPWindow(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The window must help (or at worst be neutral): the finding recorded
	// in EXPERIMENTS.md is that stop-and-wait costs <10% on this network.
	if r.Window4Mbps < r.StopAndWaitMbps*0.98 {
		t.Errorf("window 4 (%.1f) slower than stop-and-wait (%.1f)", r.Window4Mbps, r.StopAndWaitMbps)
	}
	if r.Window4Mbps > r.StopAndWaitMbps*1.3 {
		t.Errorf("window 4 gain %.1f -> %.1f contradicts the recorded <10%% finding",
			r.StopAndWaitMbps, r.Window4Mbps)
	}
	if r.Format() == "" {
		t.Error("empty format")
	}
}

func TestAblationAppLoad(t *testing.T) {
	r, err := AblateAppLoad(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The §3.1 scheduling claim: protocol latency is essentially immune
	// to application load on the CAB.
	if r.LoadedRTTUS > r.IdleRTTUS*1.25 {
		t.Errorf("loaded RTT %.1f vs idle %.1f: application load disturbed the protocols",
			r.LoadedRTTUS, r.IdleRTTUS)
	}
	if r.Format() == "" {
		t.Error("empty format")
	}
}

func TestAblationFormatSmoke(t *testing.T) {
	// Exercise the remaining human-readable formatters.
	for _, s := range []string{
		(&AblateIPModeResult{}).Format(),
		(&AblateUpcallResult{}).Format(),
		(&AblateSwitchingResult{}).Format(),
		(&AblateMailboxImplResult{}).Format(),
		(&NetdevResult{}).Format(),
		(&Fig6Result{TotalUS: 1, Stages: []Fig6Stage{{"x", 1}}}).Format(),
	} {
		if s == "" {
			t.Error("empty formatter output")
		}
	}
}
