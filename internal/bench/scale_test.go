package bench

import (
	"testing"
)

// TestScaleSmoke runs the smallest sweep point end to end: a 64-node
// leaf-spine fabric, sequential and 8-shard legs, byte-identity checked
// in-process. The 4,096- and 65,536-node points stay out of the unit
// suite (CI runs the 4,096 point in its scale-smoke job).
func TestScaleSmoke(t *testing.T) {
	r, err := Scale(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(r.Points))
	}
	p := r.Points[0]
	if p.Nodes != 64 || p.Tiers != 2 {
		t.Errorf("point shape = %d nodes / %d tiers, want 64 / 2", p.Nodes, p.Tiers)
	}
	if !p.Identical {
		t.Error("sharded output not byte-identical to sequential")
	}
	if !p.MetricsCompared {
		t.Error("metrics snapshot not compared at the smoke size")
	}
	if p.Materialized != 2*p.Flows {
		t.Errorf("materialized = %d, want %d (two stacks per flow)", p.Materialized, 2*p.Flows)
	}
	if p.Windows == 0 || p.CrossShardFrames == 0 {
		t.Errorf("windows=%d cross_shard_frames=%d: the 64-node point should exercise the coupling",
			p.Windows, p.CrossShardFrames)
	}
	if p.BytesPerNode <= 0 {
		t.Errorf("bytes_per_node = %f not measured", p.BytesPerNode)
	}
	if p.RouteEntries != 4*p.Flows {
		t.Errorf("route table entries = %d, want %d (pair + self routes per flow)",
			p.RouteEntries, 4*p.Flows)
	}
	if r.Format() == "" {
		t.Error("empty format")
	}
}
