package bench

import (
	"bytes"
	"fmt"
	"testing"

	"nectar/internal/obs"
)

// parTestSizes keeps the sweep small enough for the test suite while
// still giving the worker pool several jobs per curve.
var parTestSizes = []int{64, 512, 2048}

// snapKey renders a snapshot map deterministically (keys sorted via the
// curve/size loop order the caller supplies) for byte-level comparison.
func renderSnaps(t *testing.T, snaps map[string]*obs.Snapshot, curves []Curve, sizes []int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, c := range curves {
		for _, s := range sizes {
			k := fmt.Sprintf("%s/%d", c.Name, s)
			sn, ok := snaps[k]
			if !ok || sn == nil {
				t.Fatalf("missing snapshot %q", k)
			}
			buf.WriteString(k)
			buf.WriteByte('\n')
			buf.Write(sn.JSON())
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// TestFig7ParallelIdentical asserts that running the Figure 7 sweep on a
// worker pool yields byte-identical tables AND byte-identical metrics
// snapshots to the sequential run: parallelism must change wall clock
// only, never virtual-time results.
func TestFig7ParallelIdentical(t *testing.T) {
	defer SetParallelism(Parallelism())
	SetParallelism(1)
	seqCurves, seqSnaps, err := Fig7(nil, parTestSizes)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	parCurves, parSnaps, err := Fig7(nil, parTestSizes)
	if err != nil {
		t.Fatal(err)
	}
	seqTab := FormatCurves("fig7", seqCurves)
	parTab := FormatCurves("fig7", parCurves)
	if seqTab != parTab {
		t.Errorf("tables differ:\nsequential:\n%s\nparallel:\n%s", seqTab, parTab)
	}
	seqJ := renderSnaps(t, seqSnaps, seqCurves, parTestSizes)
	parJ := renderSnaps(t, parSnaps, parCurves, parTestSizes)
	if !bytes.Equal(seqJ, parJ) {
		t.Error("metrics snapshots differ between sequential and parallel runs")
	}
}

// TestFig8ParallelIdentical does the same for the host-to-host sweep.
func TestFig8ParallelIdentical(t *testing.T) {
	defer SetParallelism(Parallelism())
	SetParallelism(1)
	seqCurves, _, err := Fig8(nil, parTestSizes)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(3)
	parCurves, _, err := Fig8(nil, parTestSizes)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := FormatCurves("fig8", seqCurves), FormatCurves("fig8", parCurves); s != p {
		t.Errorf("tables differ:\nsequential:\n%s\nparallel:\n%s", s, p)
	}
}

// TestRunJobsLowestIndexError pins the deterministic error contract: the
// reported error is the failing job with the lowest index, independent of
// completion order.
func TestRunJobsLowestIndexError(t *testing.T) {
	defer SetParallelism(Parallelism())
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		err := runJobs(8, func(i int) error {
			if i == 2 || i == 6 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 2 failed" {
			t.Errorf("workers=%d: err = %v, want job 2 failed", workers, err)
		}
	}
}

// TestRunJobsAllIndicesOnce checks every job runs exactly once.
func TestRunJobsAllIndicesOnce(t *testing.T) {
	defer SetParallelism(Parallelism())
	SetParallelism(4)
	const n = 100
	counts := make([]int, n) // index-addressed, no races by contract
	if err := runJobs(n, func(i int) error { counts[i]++; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("job %d ran %d times", i, c)
		}
	}
}
