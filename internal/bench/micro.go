package bench

import (
	"fmt"

	"nectar"
	"nectar/internal/hw/ether"
	"nectar/internal/model"
	"nectar/internal/netdev"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// MicroResult holds the small measurements quoted in the paper's text.
type MicroResult struct {
	HubFirstByteNS  float64 // §2.1 anchor: 700 ns
	ContextSwitchUS float64 // §3.1 anchor: ~20 µs
}

// Micro measures the HUB setup latency and the thread context switch.
func Micro(cost *model.CostModel) (*MicroResult, error) {
	res := &MicroResult{}

	// HUB: first byte of a 1-byte frame through one HUB. Send from CAB A
	// and observe the arrival timestamp at CAB B minus the wire-exit time.
	{
		cl, a, b := newCluster(cost, false)
		marks := traceMarks(cl)
		box := b.Mailboxes.Create("sink")
		done := false
		b.CAB.Sched.Fork("rx", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			m := box.BeginGet(ctx)
			box.EndGet(ctx, m)
			done = true
		})
		a.CAB.Sched.Fork("tx", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			_ = a.Transports.Datagram.SendDirect(ctx, wire.MailboxAddr{Node: b.ID, Box: box.ID()}, 0, []byte{0})
		})
		if err := drive(cl, &done); err != nil {
			return nil, err
		}
		tx := marks[fmt.Sprintf("dl.tx.%d", a.ID)]
		rx := marks[fmt.Sprintf("cab.rx.arrive.%d", b.ID)]
		res.HubFirstByteNS = float64((rx - tx).Nanos())
	}

	// Context switch: ping-pong between two CAB threads on one CAB.
	{
		cl := nectar.NewCluster(&nectar.Config{Cost: cost})
		n := cl.AddNode()
		m := threads.NewMutex("pp")
		c := threads.NewCond(n.CAB.Sched, "pp")
		turn := 0
		const rounds = 200
		done := false
		var took sim.Duration
		for id := 0; id < 2; id++ {
			id := id
			n.CAB.Sched.Fork(fmt.Sprintf("p%d", id), threads.SystemPriority, func(t *threads.Thread) {
				start := t.Now()
				m.Lock(t)
				for i := 0; i < rounds; i++ {
					for turn != id {
						c.Wait(t, m)
					}
					turn = 1 - id
					c.Signal()
				}
				m.Unlock(t)
				if id == 1 {
					took = sim.Duration(t.Now() - start)
					done = true
				}
			})
		}
		if err := drive(cl, &done); err != nil {
			return nil, err
		}
		res.ContextSwitchUS = took.Micros() / float64(2*rounds)
	}
	return res, nil
}

// Format renders the micro measurements with anchors.
func (r *MicroResult) Format() string {
	return fmt.Sprintf(
		"Micro measurements\n  HUB setup + first byte: %6.0f ns   (paper: 700 ns)\n  thread context switch: %7.1f us   (paper: ~20 us)\n",
		r.HubFirstByteNS, r.ContextSwitchUS)
}

// NetdevResult is the §6.3 / §5.1 comparison: host-to-host throughput
// with the CAB as a plain network device versus the on-board Ethernet.
type NetdevResult struct {
	NectarNetdevMbps float64 // paper anchor: 6.4 Mbit/s
	EthernetMbps     float64 // paper anchor: 7.2 Mbit/s
}

// netdevStreamBytes is the stream length for the E5 comparison.
const netdevStreamBytes = 256 << 10

// Netdev runs the network-device-level stream and the Ethernet baseline.
func Netdev(cost *model.CostModel) (*NetdevResult, error) {
	res := &NetdevResult{}

	// Nectar as a conventional LAN device (§5.1): host-resident stack,
	// per-packet VME copies through the driver's buffer pools.
	{
		cl, a, b := newCluster(cost, false)
		drvA := netdev.New(a.Datalink, a.Mailboxes, a.IF)
		drvB := netdev.New(b.Datalink, b.Mailboxes, b.IF)
		stackA := netdev.NewHostStack(drvA)
		stackB := netdev.NewHostStack(drvB)
		done := false
		var start, end sim.Time
		b.Host.Run("recv", func(t *threads.Thread) {
			ctx := exec.OnHost(t, b.Host)
			stackB.RecvStream(ctx, netdevStreamBytes)
			end = t.Now()
			done = true
		})
		a.Host.Run("send", func(t *threads.Thread) {
			ctx := exec.OnHost(t, a.Host)
			start = t.Now()
			stackA.SendStream(ctx, b.ID, netdevStreamBytes)
		})
		if err := drive(cl, &done); err != nil {
			return nil, err
		}
		res.NectarNetdevMbps = mbps(netdevStreamBytes, sim.Duration(end-start))
	}

	// Ethernet baseline: same hosts, on-board interface, no VME crossing.
	{
		cl := nectar.NewCluster(&nectar.Config{Cost: cost})
		a := cl.AddNode()
		b := cl.AddNode()
		seg := ether.NewSegment(cl.K, cl.Cost)
		ifA := seg.Attach(a.Host)
		ifB := seg.Attach(b.Host)
		received := 0
		done := false
		var start, end sim.Time
		ifB.OnReceive(func(t *threads.Thread, n int) {
			t.Compute(cl.Cost.HostStackPerPacket) // host stack on the receiver
			received += n
			if received >= netdevStreamBytes {
				end = t.Now()
				done = true
			}
		})
		a.Host.Run("send", func(t *threads.Thread) {
			ctx := exec.OnHost(t, a.Host)
			start = t.Now()
			for sent := 0; sent < netdevStreamBytes; {
				n := netdevStreamBytes - sent
				if n > ether.MTU {
					n = ether.MTU
				}
				t.Compute(cl.Cost.HostStackPerPacket)
				ifA.Send(ctx, ifB.Addr(), n)
				sent += n
			}
		})
		if err := drive(cl, &done); err != nil {
			return nil, err
		}
		res.EthernetMbps = mbps(netdevStreamBytes, sim.Duration(end-start))
	}
	return res, nil
}

// Format renders the comparison with anchors.
func (r *NetdevResult) Format() string {
	return fmt.Sprintf(
		"Network-device level vs Ethernet (host-resident stack)\n  Nectar as network device: %5.1f Mbit/s  (paper: 6.4)\n  Ethernet (on-board):      %5.1f Mbit/s  (paper: 7.2)\n",
		r.NectarNetdevMbps, r.EthernetMbps)
}
