package bench

import (
	"fmt"

	"nectar"
	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Table1Row is one protocol's round-trip latency.
type Table1Row struct {
	Proto      string
	HostHostUS float64 // round trip between two host processes
	CABCABUS   float64 // round trip between two CAB threads
}

// Table1Result reproduces the paper's Table 1 (round-trip latency for UDP
// and the Nectar-specific protocols, §6.1). Metrics holds one registry
// snapshot per run, keyed "<proto>/host-host" and "<proto>/CAB-CAB".
type Table1Result struct {
	Rows    []Table1Row
	Metrics map[string]*obs.Snapshot
}

// Table 1 workload parameters: small echo messages, averaged over rounds
// after warmup (the paper reports steady-state round trips).
const (
	table1Rounds  = 16
	table1Warmup  = 4
	table1MsgSize = 4
)

// Table1 runs the round-trip latency experiment for every protocol.
func Table1(cost *model.CostModel) (*Table1Result, error) {
	if cost == nil {
		cost = model.Default1990()
	}
	res := &Table1Result{Metrics: make(map[string]*obs.Snapshot)}
	type runner struct {
		name string
		hh   func() (sim.Duration, *obs.Snapshot, error)
		cc   func() (sim.Duration, *obs.Snapshot, error)
	}
	runners := []runner{
		{"datagram", func() (sim.Duration, *obs.Snapshot, error) { return rttDatagram(cost, true) }, func() (sim.Duration, *obs.Snapshot, error) { return rttDatagram(cost, false) }},
		{"reliable (RMP)", func() (sim.Duration, *obs.Snapshot, error) { return rttRMP(cost, true) }, func() (sim.Duration, *obs.Snapshot, error) { return rttRMP(cost, false) }},
		{"request-response", func() (sim.Duration, *obs.Snapshot, error) { return rttRRP(cost, true) }, func() (sim.Duration, *obs.Snapshot, error) { return rttRRP(cost, false) }},
		{"UDP", func() (sim.Duration, *obs.Snapshot, error) { return rttUDP(cost, true) }, func() (sim.Duration, *obs.Snapshot, error) { return rttUDP(cost, false) }},
	}
	for _, r := range runners {
		hh, hhSnap, err := r.hh()
		if err != nil {
			return nil, fmt.Errorf("%s host-host: %w", r.name, err)
		}
		cc, ccSnap, err := r.cc()
		if err != nil {
			return nil, fmt.Errorf("%s CAB-CAB: %w", r.name, err)
		}
		res.Metrics[r.name+"/host-host"] = hhSnap
		res.Metrics[r.name+"/CAB-CAB"] = ccSnap
		res.Rows = append(res.Rows, Table1Row{Proto: r.name, HostHostUS: hh.Micros(), CABCABUS: cc.Micros()})
	}
	return res, nil
}

// echoHarness runs a ping-pong echo and returns the average round trip of
// the post-warmup rounds. send transmits one message toward the echoer;
// recv blocks for the next arriving message at the client; the echo side
// is set up by the caller before driving.
type echoHarness struct {
	cl   *nectar.Cluster
	done bool
	rtt  sim.Duration
}

func (h *echoHarness) client(t *threads.Thread, send func(), recv func()) {
	var total sim.Duration
	for i := 0; i < table1Rounds; i++ {
		start := t.Now()
		send()
		recv()
		if i >= table1Warmup {
			total += sim.Duration(t.Now() - start)
		}
	}
	h.rtt = total / sim.Duration(table1Rounds-table1Warmup)
	h.done = true
}

// rttDatagram measures the datagram echo round trip (the paper's 325 µs /
// 179 µs row).
func rttDatagram(cost *model.CostModel, hostSide bool) (sim.Duration, *obs.Snapshot, error) {
	cl, a, b := newCluster(cost, false)
	h := &echoHarness{cl: cl}
	boxA := a.Mailboxes.Create("echo.reply")
	boxB := b.Mailboxes.Create("echo.service")
	payload := make([]byte, table1MsgSize)
	addrB := wire.MailboxAddr{Node: b.ID, Box: boxB.ID()}
	addrA := wire.MailboxAddr{Node: a.ID, Box: boxA.ID()}

	if hostSide {
		b.Host.Run("echoer", func(t *threads.Thread) {
			ctx := exec.OnHost(t, b.Host)
			for {
				m := boxB.BeginGetPoll(ctx)
				buf := make([]byte, m.Len())
				m.Read(ctx, 0, buf)
				t.Compute(cost.HostMessageRead)
				boxB.EndGet(ctx, m)
				t.Compute(cost.HostMessageCreate)
				b.Transports.Datagram.Send(ctx, addrA, boxB.ID(), buf, nil)
			}
		})
		a.Host.Run("client", func(t *threads.Thread) {
			ctx := exec.OnHost(t, a.Host)
			h.client(t,
				func() {
					t.Compute(cost.HostMessageCreate)
					a.Transports.Datagram.Send(ctx, addrB, boxA.ID(), payload, nil)
				},
				func() {
					m := boxA.BeginGetPoll(ctx)
					t.Compute(cost.HostMessageRead)
					boxA.EndGet(ctx, m)
				})
		})
	} else {
		b.CAB.Sched.Fork("echoer", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			for {
				m := boxB.BeginGet(ctx)
				boxB.EndGet(ctx, m)
				_ = b.Transports.Datagram.SendDirect(ctx, addrA, boxB.ID(), payload)
			}
		})
		a.CAB.Sched.Fork("client", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			h.client(t,
				func() { _ = a.Transports.Datagram.SendDirect(ctx, addrB, boxA.ID(), payload) },
				func() {
					m := boxA.BeginGet(ctx)
					boxA.EndGet(ctx, m)
				})
		})
	}
	if err := drive(cl, &h.done); err != nil {
		return 0, nil, err
	}
	return h.rtt, snapshot(cl), nil
}

// rttRMP measures the reliable-message echo round trip.
func rttRMP(cost *model.CostModel, hostSide bool) (sim.Duration, *obs.Snapshot, error) {
	cl, a, b := newCluster(cost, false)
	h := &echoHarness{cl: cl}
	boxA := a.Mailboxes.Create("echo.reply")
	boxB := b.Mailboxes.Create("echo.service")
	payload := make([]byte, table1MsgSize)
	addrB := wire.MailboxAddr{Node: b.ID, Box: boxB.ID()}
	addrA := wire.MailboxAddr{Node: a.ID, Box: boxA.ID()}

	if hostSide {
		b.Host.Run("echoer", func(t *threads.Thread) {
			ctx := exec.OnHost(t, b.Host)
			for {
				m := boxB.BeginGetPoll(ctx)
				t.Compute(cost.HostMessageRead)
				boxB.EndGet(ctx, m)
				t.Compute(cost.HostMessageCreate)
				b.Transports.RMP.Send(ctx, addrA, boxB.ID(), payload, nil)
			}
		})
		a.Host.Run("client", func(t *threads.Thread) {
			ctx := exec.OnHost(t, a.Host)
			h.client(t,
				func() {
					t.Compute(cost.HostMessageCreate)
					a.Transports.RMP.Send(ctx, addrB, boxA.ID(), payload, nil)
				},
				func() {
					m := boxA.BeginGetPoll(ctx)
					t.Compute(cost.HostMessageRead)
					boxA.EndGet(ctx, m)
				})
		})
	} else {
		b.CAB.Sched.Fork("echoer", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			for {
				m := boxB.BeginGet(ctx)
				boxB.EndGet(ctx, m)
				b.Transports.RMP.SendBlocking(ctx, addrA, boxB.ID(), payload)
			}
		})
		a.CAB.Sched.Fork("client", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			h.client(t,
				func() { a.Transports.RMP.SendBlocking(ctx, addrB, boxA.ID(), payload) },
				func() {
					m := boxA.BeginGet(ctx)
					boxA.EndGet(ctx, m)
				})
		})
	}
	if err := drive(cl, &h.done); err != nil {
		return 0, nil, err
	}
	return h.rtt, snapshot(cl), nil
}

// rttRRP measures the request-response (RPC transport) round trip — the
// abstract's "<500 µs" remote procedure call.
func rttRRP(cost *model.CostModel, hostSide bool) (sim.Duration, *obs.Snapshot, error) {
	cl, a, b := newCluster(cost, false)
	h := &echoHarness{cl: cl}
	service := b.Mailboxes.Create("rpc.service")
	replyBox := a.Mailboxes.Create("rpc.reply")
	payload := make([]byte, table1MsgSize)
	addr := wire.MailboxAddr{Node: b.ID, Box: service.ID()}

	// The abstract's RPC anchor is "between application tasks executing
	// on two Nectar hosts": the server is a host process in host-host
	// mode, a CAB task in CAB-CAB mode.
	if hostSide {
		b.Host.Run("server", func(t *threads.Thread) {
			ctx := exec.OnHost(t, b.Host)
			for {
				m := service.BeginGetPoll(ctx)
				t.Compute(cost.HostMessageRead)
				t.Compute(cost.HostMessageCreate)
				b.Transports.RRP.Reply(ctx, m, payload)
				service.EndGet(ctx, m)
			}
		})
	} else {
		b.CAB.Sched.Fork("server", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			for {
				m := service.BeginGet(ctx)
				b.Transports.RRP.Reply(ctx, m, payload)
				service.EndGet(ctx, m)
			}
		})
	}
	call := func(t *threads.Thread, ctx exec.Context) {
		st := a.Syncs.Alloc(ctx)
		a.Transports.RRP.Call(ctx, addr, payload, replyBox, st)
		if s := st.Read(ctx); s != 1 {
			cl.K.Fatalf("rpc status %d", s)
		}
		m := replyBox.BeginGetPoll(ctx)
		replyBox.EndGet(ctx, m)
	}
	if hostSide {
		a.Host.Run("client", func(t *threads.Thread) {
			ctx := exec.OnHost(t, a.Host)
			h.client(t, func() { call(t, ctx) }, func() {})
		})
	} else {
		a.CAB.Sched.Fork("client", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			h.client(t, func() { call(t, ctx) }, func() {})
		})
	}
	if err := drive(cl, &h.done); err != nil {
		return 0, nil, err
	}
	return h.rtt, snapshot(cl), nil
}

// rttUDP measures the UDP echo round trip.
func rttUDP(cost *model.CostModel, hostSide bool) (sim.Duration, *obs.Snapshot, error) {
	cl, a, b := newCluster(cost, false)
	h := &echoHarness{cl: cl}
	sa, err := a.UDP.Bind(1000)
	if err != nil {
		return 0, nil, err
	}
	sb, err := b.UDP.Bind(2000)
	if err != nil {
		return 0, nil, err
	}
	payload := make([]byte, table1MsgSize)

	if hostSide {
		b.Host.Run("echoer", func(t *threads.Thread) {
			ctx := exec.OnHost(t, b.Host)
			for {
				m := sb.RecvPoll(ctx)
				buf := make([]byte, m.Len())
				m.Read(ctx, 0, buf)
				t.Compute(cost.HostMessageRead)
				sb.Done(ctx, m)
				t.Compute(cost.HostMessageCreate)
				_ = sb.SendTo(ctx, wire.NodeIP(a.ID), 1000, buf)
			}
		})
		a.Host.Run("client", func(t *threads.Thread) {
			ctx := exec.OnHost(t, a.Host)
			h.client(t,
				func() {
					t.Compute(cost.HostMessageCreate)
					_ = sa.SendTo(ctx, wire.NodeIP(b.ID), 2000, payload)
				},
				func() {
					m := sa.RecvPoll(ctx)
					t.Compute(cost.HostMessageRead)
					sa.Done(ctx, m)
				})
		})
	} else {
		b.CAB.Sched.Fork("echoer", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			for {
				m := sb.Recv(ctx)
				sb.Done(ctx, m)
				_ = sb.SendTo(ctx, wire.NodeIP(a.ID), 1000, payload)
			}
		})
		a.CAB.Sched.Fork("client", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			h.client(t,
				func() { _ = sa.SendTo(ctx, wire.NodeIP(b.ID), 2000, payload) },
				func() {
					m := sa.Recv(ctx)
					sa.Done(ctx, m)
				})
		})
	}
	if err := drive(cl, &h.done); err != nil {
		return 0, nil, err
	}
	return h.rtt, snapshot(cl), nil
}

// Format renders Table 1 with the paper anchors.
func (r *Table1Result) Format() string {
	out := "Table 1: round-trip latency (microseconds)\n"
	out += fmt.Sprintf("%-18s  %12s  %12s\n", "protocol", "host-host", "CAB-CAB")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-18s  %9.0f us  %9.0f us\n", row.Proto, row.HostHostUS, row.CABCABUS)
	}
	out += "paper anchors: datagram 325/179 us; RPC < 500 us; UDP slowest\n"
	return out
}
