package bench

import (
	"sync"

	"nectar/internal/model"
)

// Parallel experiment execution.
//
// Every sweep point in this package builds its own simulated cluster on a
// private sim.Kernel; distinct kernels share no mutable state, so sweep
// points are embarrassingly parallel in wall-clock time while each point's
// virtual-time result is computed exactly as in a sequential run. The only
// care required is assembly: results are written into index-addressed
// slots and tables/snapshot maps are assembled in job-index order after
// all jobs complete, so the output is byte-identical whatever the
// completion order (bench_test.go asserts this).

var parallelism = 1

// SetParallelism sets the number of worker goroutines used to run
// independent sweep points. n < 1 is treated as 1 (sequential). The
// default is 1, which runs jobs in order on the calling goroutine.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism = n
}

// Parallelism reports the current worker count.
func Parallelism() int { return parallelism }

// runJobs executes jobs 0..n-1 on a bounded pool of Parallelism() worker
// goroutines. Each job must be fully independent (its own kernel, its own
// cost-model copy) and must record its results into slots addressed by its
// own index. The first error by job index is returned — also a
// deterministic choice, independent of scheduling.
func runJobs(n int, job func(i int) error) error {
	w := parallelism
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// copyCost gives one job a private copy of the cost model. CostModel is a
// plain struct of scalars, so a value copy fully decouples the job from
// the caller (ablation experiments tweak fields on their copies).
func copyCost(cost *model.CostModel) *model.CostModel {
	if cost == nil {
		return nil
	}
	c := *cost
	return &c
}
