package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"nectar"
	"nectar/internal/fabric"
	"nectar/internal/model"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Scale experiment (BENCH_scale.json): datacenter-fabric sweep from 64 to
// 65,536 attachment points. Each point builds the whole HUB fabric
// (crossbars + trunks) from a fabric.Topology, leaves every node compact
// until the flow endpoints materialize, and drives cross-tier RMP flows
// sequentially and sharded (flow-affinity partition over the fabric).
// Recorded per point: bytes per attachment point after build (the compact-
// node figure the tentpole is about), build time, the deduplicated route
// table size, both wall clocks, window statistics, and byte-identity of
// the flow table (plus the merged metrics snapshot where its JSON stays
// tractable — a 262k-trunk fabric registers four gauges per link, so the
// 65,536-point compares flow tables only).

// ScalePoint is one fabric size of the sweep.
type ScalePoint struct {
	Fabric string `json:"fabric"`
	Nodes  int    `json:"nodes"` // attachment points
	Hubs   int    `json:"hubs"`
	Trunks int    `json:"trunks"` // directed inter-HUB links
	Tiers  int    `json:"tiers"`

	Flows           int `json:"flows"`
	MessagesPerFlow int `json:"messages_per_flow"`
	MessageBytes    int `json:"message_bytes"`
	Materialized    int `json:"materialized"` // nodes with booted stacks
	Shards          int `json:"shards"`

	// BuildSeconds is fabric construction plus endpoint materialization;
	// BytesPerNode is the post-build heap growth divided by Nodes — the
	// whole fabric and arena amortized over every attachment point.
	BuildSeconds float64 `json:"build_seconds"`
	BytesPerNode float64 `json:"bytes_per_node"`

	// RouteEntries/RouteBytes are the shared deduplicated route table:
	// every CAB entry references these strings, nothing is copied.
	RouteEntries int `json:"route_entries"`
	RouteBytes   int `json:"route_bytes"`

	SequentialSeconds float64 `json:"sequential_seconds"`
	ShardedSeconds    float64 `json:"sharded_seconds"`
	Speedup           float64 `json:"speedup"`

	Windows          uint64  `json:"windows"`
	EventsPerWindow  float64 `json:"events_per_window"`
	CrossShardFrames uint64  `json:"cross_shard_frames"`

	// Identical: the sharded flow table matches the sequential one
	// byte-for-byte; MetricsCompared marks whether the merged metrics
	// snapshot was also compared (and matched).
	Identical       bool `json:"identical_output"`
	MetricsCompared bool `json:"metrics_compared"`
}

// ScaleReport is the schema of BENCH_scale.json.
type ScaleReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Points     []ScalePoint `json:"points"`
}

// scaleSpec fixes one sweep point's fabric and workload shape.
type scaleSpec struct {
	fabricName string
	build      func() *fabric.Topology
	nodes      int
	flows      int
	perFlow    int
	msgBytes   int
	shards     int
	// compareMetrics additionally byte-compares the merged metrics
	// snapshots (off for the 65k point: its snapshot enumerates a million
	// link gauges).
	compareMetrics bool
}

// scaleSpecs is the sweep: every flow spans HUB tiers (src in the lower
// half of the fabric, dst in the upper half), so frames cross 2 trunk
// hops on leaf-spine and up to 4 on the fat-tree.
func scaleSpecs() []scaleSpec {
	return []scaleSpec{
		{"leaf-spine 4x2, 16/leaf", func() *fabric.Topology { return fabric.LeafSpine(4, 2, 16) },
			64, 16, 24, 1024, 8, true},
		{"leaf-spine 32x8, 128/leaf", func() *fabric.Topology { return fabric.LeafSpine(32, 8, 128) },
			4096, 32, 16, 1024, 8, true},
		{"fat-tree k=64", func() *fabric.Topology { return fabric.FatTree(64) },
			65536, 32, 8, 1024, 8, false},
	}
}

// scaleFlows places flow f at (f*stride -> f*stride + nodes/2): sources
// spread over the fabric's lower half, destinations over the upper, so
// every flow crosses tiers and no two flows share an endpoint.
func scaleFlows(sp scaleSpec) [][2]int {
	flows := make([][2]int, sp.flows)
	stride := sp.nodes / (2 * sp.flows)
	for f := range flows {
		flows[f] = [2]int{f * stride, f*stride + sp.nodes/2}
	}
	return flows
}

// scaleRunResult is one leg (sequential or sharded) of a sweep point.
type scaleRunResult struct {
	table        string
	metrics      []byte // nil when not captured
	wallS        float64
	buildS       float64
	bytesPerNode float64
	routeEntries int
	routeBytes   int
	materialized int
	windows      uint64
	events       uint64
	crossShard   uint64
}

// runScaleLeg builds the fabric cluster, materializes the flow endpoints,
// drives the flows to completion and measures. shards < 2 is the
// sequential leg.
func runScaleLeg(cost *model.CostModel, sp scaleSpec, flows [][2]int, shards int, captureMetrics bool) (*scaleRunResult, error) {
	topo := sp.build()
	cfg := nectar.Config{
		Cost:     cost,
		Topology: topo,
		Flows:    flows,
		// 256 KB of CAB packet memory instead of the default 1 MB: the
		// workload's windows never hold more than a few frames per node,
		// and the savings are what let 64 stacks ride on a 65k fabric.
		CABDataBytes: 256 << 10,
	}
	if shards > 1 {
		cfg.Shards = shards
		cfg.ShardOf = nectar.ShardByFlowsOnFabric(topo, shards, flows)
	}

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	buildStart := time.Now() //nectar:allow-walltime measures fabric build time for BENCH_scale.json

	cl := nectar.NewCluster(&cfg)
	ns := make(map[int]*nectar.Node, 2*len(flows))
	for _, f := range flows {
		ns[f[0]] = cl.Node(f[0])
		ns[f[1]] = cl.Node(f[1])
	}

	buildS := time.Since(buildStart).Seconds() //nectar:allow-walltime measures fabric build time for BENCH_scale.json
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	bytesPerNode := 0.0
	if m1.HeapAlloc > m0.HeapAlloc {
		bytesPerNode = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(sp.nodes)
	}

	start := time.Now() //nectar:allow-walltime measures the run's real wall clock for BENCH_scale.json
	ends := make([]sim.Time, len(flows))
	done := make([]bool, len(flows))
	for fi, f := range flows {
		fi, src, dst := fi, ns[f[0]], ns[f[1]]
		sink := dst.Mailboxes.Create(fmt.Sprintf("scale.flow%d", fi))
		sink.SetCapacity(wire.MaxPayload * 4)
		addr := wire.MailboxAddr{Node: dst.ID, Box: sink.ID()}
		dst.CAB.Sched.Fork("drain", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for n := 0; n < sp.perFlow; n++ {
				m := sink.BeginGet(ctx)
				sink.EndGet(ctx, m)
			}
			ends[fi] = th.Now()
			done[fi] = true
		})
		src.CAB.Sched.Fork("blast", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			payload := make([]byte, sp.msgBytes)
			for i := range payload {
				payload[i] = byte(i * (fi + 3))
			}
			for s := 0; s < sp.perFlow; s++ {
				payload[0] = byte(s)
				if st := src.Transports.RMP.SendBlocking(ctx, addr, 0, payload); st != 1 {
					sim.Panicf("scale flow %d send %d failed: status %d", fi, s, st)
				}
			}
		})
	}

	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}
	for !allDone() {
		if err := cl.RunFor(sim.Millisecond); err != nil {
			return nil, err
		}
		if sim.Duration(cl.Now()) > maxVirtual {
			return nil, fmt.Errorf("scale: workload exceeded %v of virtual time", maxVirtual)
		}
	}
	wallS := time.Since(start).Seconds() //nectar:allow-walltime measures the run's real wall clock for BENCH_scale.json

	table := fmt.Sprintf("%6s %14s %12s %12s\n", "flow", "route", "done(us)", "Mbit/s")
	for fi, f := range flows {
		table += fmt.Sprintf("%6d %6d->%-6d %12.1f %12.1f\n",
			fi, f[0], f[1], ends[fi].Micros(),
			mbps(sp.perFlow*sp.msgBytes, sim.Duration(ends[fi])))
	}
	var metrics []byte
	if captureMetrics {
		metrics = cl.MetricsSnapshot().JSON()
	}
	var events uint64
	for _, k := range cl.Kernels() {
		events += k.Dispatched()
	}
	entries, routeBytes := cl.RouteTableStats()
	return &scaleRunResult{
		table: table, metrics: metrics, wallS: wallS, buildS: buildS,
		bytesPerNode: bytesPerNode, routeEntries: entries, routeBytes: routeBytes,
		materialized: cl.MaterializedNodes(), windows: cl.Windows(), events: events,
		crossShard: cl.CrossShardFrames(),
	}, nil
}

// runScalePoint runs one sweep point sequentially and sharded and compares.
func runScalePoint(cost *model.CostModel, sp scaleSpec) (*ScalePoint, error) {
	flows := scaleFlows(sp)
	topo := sp.build()
	seq, err := runScaleLeg(cost, sp, flows, 1, sp.compareMetrics)
	if err != nil {
		return nil, fmt.Errorf("sequential leg: %w", err)
	}
	shd, err := runScaleLeg(cost, sp, flows, sp.shards, sp.compareMetrics)
	if err != nil {
		return nil, fmt.Errorf("sharded leg: %w", err)
	}
	p := &ScalePoint{
		Fabric: sp.fabricName, Nodes: sp.nodes,
		Hubs: len(topo.HubPorts), Trunks: len(topo.Trunks), Tiers: topo.Tiers(),
		Flows: sp.flows, MessagesPerFlow: sp.perFlow, MessageBytes: sp.msgBytes,
		Materialized: shd.materialized, Shards: sp.shards,
		BuildSeconds: shd.buildS, BytesPerNode: shd.bytesPerNode,
		RouteEntries: shd.routeEntries, RouteBytes: shd.routeBytes,
		SequentialSeconds: seq.wallS, ShardedSeconds: shd.wallS,
		Windows: shd.windows, CrossShardFrames: shd.crossShard,
		Identical:       seq.table == shd.table,
		MetricsCompared: sp.compareMetrics,
	}
	if sp.compareMetrics {
		p.Identical = p.Identical && bytes.Equal(seq.metrics, shd.metrics)
	}
	if shd.windows > 0 {
		p.EventsPerWindow = float64(shd.events) / float64(shd.windows)
	}
	if shd.wallS > 0 {
		p.Speedup = seq.wallS / shd.wallS
	}
	return p, nil
}

// Scale runs the datacenter-fabric sweep. maxNodes > 0 caps the largest
// point (the CI smoke run stops at 4,096); 0 runs everything.
func Scale(cost *model.CostModel, maxNodes int) (*ScaleReport, error) {
	r := &ScaleReport{
		Date:       time.Now().UTC().Format("2006-01-02"), //nectar:allow-walltime report metadata, not simulation state
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, sp := range scaleSpecs() {
		if maxNodes > 0 && sp.nodes > maxNodes {
			continue
		}
		p, err := runScalePoint(cost, sp)
		if err != nil {
			return nil, fmt.Errorf("scale point %s: %w", sp.fabricName, err)
		}
		r.Points = append(r.Points, *p)
	}
	if len(r.Points) == 0 {
		return nil, fmt.Errorf("scale: no sweep point fits under %d nodes", maxNodes)
	}
	return r, nil
}

// Format renders the report for the CLI.
func (r *ScaleReport) Format() string {
	out := "Datacenter-fabric scaling (compact nodes, hierarchical routes, sharded trunks)\n"
	out += fmt.Sprintf("env: gomaxprocs=%d num_cpu=%d\n", r.GoMaxProcs, r.NumCPU)
	out += fmt.Sprintf("%8s %6s %7s %6s %6s %9s %8s %7s %8s %8s %7s %5s\n",
		"nodes", "hubs", "trunks", "mat", "shards", "bytes/node", "build(s)", "routes", "seq(s)", "shard(s)", "speedup", "ident")
	for _, p := range r.Points {
		out += fmt.Sprintf("%8d %6d %7d %6d %6d %9.0f %8.2f %7d %8.2f %8.2f %6.2fx %5v\n",
			p.Nodes, p.Hubs, p.Trunks, p.Materialized, p.Shards, p.BytesPerNode,
			p.BuildSeconds, p.RouteEntries, p.SequentialSeconds, p.ShardedSeconds,
			p.Speedup, p.Identical)
	}
	for _, p := range r.Points {
		out += fmt.Sprintf("%s: %d windows, %.1f events/window, %d cross-shard frames, metrics compared=%v\n",
			p.Fabric, p.Windows, p.EventsPerWindow, p.CrossShardFrames, p.MetricsCompared)
	}
	return out
}

// WriteJSON writes the report to path.
func (r *ScaleReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
