// Package bench implements the paper's evaluation (§6): a regenerator for
// every table and figure, plus the micro-measurements quoted in the text
// and the ablations the paper proposes. Each experiment builds a fresh
// simulated cluster, runs the paper's workload, and returns the measured
// numbers alongside the paper's anchors so callers (the nectar-bench CLI,
// bench_test.go, and EXPERIMENTS.md) can print the comparison.
package bench

import (
	"fmt"
	"sync"

	"nectar"
	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/sim"
)

// maxVirtual caps an experiment's virtual runtime as a hang backstop.
const maxVirtual = 120 * sim.Second

// experimentShards is the shard count experiment clusters are built with
// (1 = sequential). Like parallelism it is set once, before experiments
// run, from nectar-bench's -shards flag.
var experimentShards = 1

// SetExperimentShards opts every experiment cluster built through
// newCluster into sharded execution with n shards (n < 2 = sequential,
// the default). Results are byte-identical either way — sharding only
// changes wall-clock time (shards_test.go asserts this).
func SetExperimentShards(n int) {
	if n < 1 {
		n = 1
	}
	experimentShards = n
}

// ExperimentShards reports the current experiment shard count.
func ExperimentShards() int { return experimentShards }

// newCluster builds a two-node cluster with the given cost model (nil =
// the paper's defaults).
func newCluster(cost *model.CostModel, rxThread bool) (*nectar.Cluster, *nectar.Node, *nectar.Node) {
	cl := nectar.NewCluster(&nectar.Config{Cost: cost, RxThreadMode: rxThread, Shards: experimentShards})
	a := cl.AddNode()
	b := cl.AddNode()
	return cl, a, b
}

// traceMarks installs a first-occurrence mark recorder on every shard
// kernel of cl (one kernel when sequential) and returns the map to read
// after the run. Mark names are node-qualified, so each name fires on
// exactly one kernel and the recorded virtual times are deterministic
// regardless of sharding; the mutex only guards the map against
// concurrent shard goroutines.
func traceMarks(cl *nectar.Cluster) map[string]sim.Time {
	marks := map[string]sim.Time{}
	var mu sync.Mutex
	tracer := func(name string, at sim.Time) {
		mu.Lock()
		if _, ok := marks[name]; !ok {
			marks[name] = at
		}
		mu.Unlock()
	}
	for _, k := range cl.Kernels() {
		k.SetTracer(tracer)
	}
	return marks
}

// drive runs the cluster until *done is true, in 1 ms steps, failing after
// maxVirtual.
func drive(cl *nectar.Cluster, done *bool) error {
	start := cl.Now()
	for !*done {
		if err := cl.RunFor(sim.Millisecond); err != nil {
			return err
		}
		if sim.Duration(cl.Now()-start) > maxVirtual {
			return fmt.Errorf("bench: experiment exceeded %v of virtual time", maxVirtual)
		}
	}
	return nil
}

// snapshot exports a cluster's metrics at its current virtual time, so
// every experiment returns the counters behind its numbers. Under sharded
// execution the per-shard registries merge into one snapshot that is
// byte-identical to the sequential run's.
func snapshot(cl *nectar.Cluster) *obs.Snapshot {
	return cl.MetricsSnapshot()
}

// mbps converts bytes over a duration to megabits per second.
func mbps(bytes int, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e6
}

// Sizes1990 is the message-size sweep of Figures 7 and 8.
var Sizes1990 = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// Point is one point of a throughput curve.
type Point struct {
	SizeB int
	Mbps  float64
}

// Curve is a named throughput series.
type Curve struct {
	Name   string
	Points []Point
}

// FormatCurves renders curves as an aligned text table (sizes as rows).
func FormatCurves(title string, curves []Curve) string {
	out := title + "\n"
	out += fmt.Sprintf("%8s", "bytes")
	for _, c := range curves {
		out += fmt.Sprintf("  %14s", c.Name)
	}
	out += "\n"
	if len(curves) == 0 {
		return out
	}
	for i := range curves[0].Points {
		out += fmt.Sprintf("%8d", curves[0].Points[i].SizeB)
		for _, c := range curves {
			out += fmt.Sprintf("  %11.1f Mb", c.Points[i].Mbps)
		}
		out += "\n"
	}
	return out
}
