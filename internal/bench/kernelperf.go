package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nectar/internal/model"
	"nectar/internal/sim"
)

// Kernel performance report (BENCH_kernel.json): real wall-clock cost of
// the simulation substrate, measured in-process with testing.Benchmark.
// Two implementations are compared: the current pooled 4-ary heap event
// queue (sim.Kernel) and the pre-overhaul boxed container/heap queue kept
// as sim.BaselineQueue, so the speedup claim stays reproducible from any
// checkout.

// QueueBench is one benchmark result for one event-queue implementation.
type QueueBench struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// SweepReport compares sequential vs parallel wall clock for one figure
// sweep, with identical-output verification. WorkersRequested is the
// caller's -parallel setting; Workers is the effective pool size after
// runJobs clamps it to the job count, so the JSON records both what was
// asked for and what actually ran.
type SweepReport struct {
	Experiment        string  `json:"experiment"`
	Points            int     `json:"points"`
	WorkersRequested  int     `json:"workers_requested"`
	Workers           int     `json:"workers_effective"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
	Identical         bool    `json:"identical_output"`
}

// KernelPerfReport is the schema of BENCH_kernel.json.
type KernelPerfReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// dispatch: one schedule→fire per event.
	Dispatch         QueueBench `json:"dispatch"`
	DispatchBaseline QueueBench `json:"dispatch_baseline"`
	// fire+stop cycle: one fired timer plus one armed-and-cancelled timer
	// per op — the protocol stack's steady-state mix.
	FireStop         QueueBench `json:"schedule_fire_stop"`
	FireStopBaseline QueueBench `json:"schedule_fire_stop_baseline"`

	DispatchSpeedup float64 `json:"dispatch_speedup"`
	FireStopSpeedup float64 `json:"schedule_fire_stop_speedup"`

	Sweep *SweepReport `json:"sweep,omitempty"`
}

func toQueueBench(r testing.BenchmarkResult, eventsPerOp float64) QueueBench {
	if r.N == 0 {
		return QueueBench{}
	}
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	ns := nsPerOp / eventsPerOp
	q := QueueBench{NsPerEvent: ns, AllocsPerEvent: float64(r.AllocsPerOp()) / eventsPerOp,
		BytesPerEvent: float64(r.AllocedBytesPerOp()) / eventsPerOp}
	if ns > 0 {
		q.EventsPerSec = 1e9 / ns
	}
	return q
}

// KernelPerf benchmarks both event-queue implementations in-process.
//
//nectar:allow-walltime in-process testing.Benchmark harness measures real ns/event
func KernelPerf() *KernelPerfReport {
	fn := func() {}

	dispatch := testing.Benchmark(func(b *testing.B) {
		k := sim.NewKernel()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.After(sim.Microsecond, fn)
			if i%1024 == 1023 {
				if err := k.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
	dispatchBase := testing.Benchmark(func(b *testing.B) {
		var q sim.BaselineQueue
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.After(sim.Microsecond, fn)
			if i%1024 == 1023 {
				q.Drain()
			}
		}
		q.Drain()
	})
	fireStop := testing.Benchmark(func(b *testing.B) {
		k := sim.NewKernel()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.After(sim.Microsecond, fn)
			t := k.After(sim.Second, fn)
			t.Stop()
			if i%1024 == 1023 {
				if err := k.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
	fireStopBase := testing.Benchmark(func(b *testing.B) {
		var q sim.BaselineQueue
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.After(sim.Microsecond, fn)
			t := q.After(sim.Second, fn)
			t.Stop()
			if i%1024 == 1023 {
				q.Drain()
			}
		}
		q.Drain()
	})

	r := &KernelPerfReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		// dispatch = 1 event/op; fire+stop = 2 events/op (one fired, one
		// armed and cancelled).
		Dispatch:         toQueueBench(dispatch, 1),
		DispatchBaseline: toQueueBench(dispatchBase, 1),
		FireStop:         toQueueBench(fireStop, 2),
		FireStopBaseline: toQueueBench(fireStopBase, 2),
	}
	if r.Dispatch.NsPerEvent > 0 {
		r.DispatchSpeedup = r.DispatchBaseline.NsPerEvent / r.Dispatch.NsPerEvent
	}
	if r.FireStop.NsPerEvent > 0 {
		r.FireStopSpeedup = r.FireStopBaseline.NsPerEvent / r.FireStop.NsPerEvent
	}
	return r
}

// Fig7WallClock runs the Figure 7 sweep sequentially and then with the
// given worker count, verifying that both render to identical tables and
// reporting the wall-clock speedup. sizes nil = Sizes1990.
//
//nectar:allow-walltime compares sequential vs parallel sweep wall clock for SweepReport
func Fig7WallClock(cost *model.CostModel, sizes []int, workers int) (*SweepReport, error) {
	if sizes == nil {
		sizes = Sizes1990
	}
	old := Parallelism()
	defer SetParallelism(old)

	SetParallelism(1)
	t0 := time.Now()
	seq, _, err := Fig7(cost, sizes)
	if err != nil {
		return nil, err
	}
	seqS := time.Since(t0).Seconds()

	SetParallelism(workers)
	t0 = time.Now()
	par, _, err := Fig7(cost, sizes)
	if err != nil {
		return nil, err
	}
	parS := time.Since(t0).Seconds()

	points := 3 * len(sizes)
	effective := workers
	if effective > points {
		effective = points // runJobs never runs more workers than jobs
	}
	rep := &SweepReport{
		Experiment:        "fig7",
		Points:            points,
		WorkersRequested:  workers,
		Workers:           effective,
		SequentialSeconds: seqS,
		ParallelSeconds:   parS,
		Identical:         FormatCurves("x", seq) == FormatCurves("x", par),
	}
	if parS > 0 {
		rep.Speedup = seqS / parS
	}
	return rep, nil
}

// Format renders the report for the CLI.
func (r *KernelPerfReport) Format() string {
	out := "Kernel event-queue performance (wall clock, in-process benchmark)\n"
	out += fmt.Sprintf("%-28s %12s %14s %8s %8s\n", "", "ns/event", "events/sec", "allocs", "B/event")
	row := func(name string, q QueueBench) string {
		return fmt.Sprintf("%-28s %12.1f %14.0f %8.2f %8.1f\n",
			name, q.NsPerEvent, q.EventsPerSec, q.AllocsPerEvent, q.BytesPerEvent)
	}
	out += row("dispatch (pooled 4-ary)", r.Dispatch)
	out += row("dispatch (container/heap)", r.DispatchBaseline)
	out += row("fire+stop (pooled 4-ary)", r.FireStop)
	out += row("fire+stop (container/heap)", r.FireStopBaseline)
	out += fmt.Sprintf("speedup: dispatch %.2fx, fire+stop %.2fx\n", r.DispatchSpeedup, r.FireStopSpeedup)
	if s := r.Sweep; s != nil {
		out += fmt.Sprintf("%s sweep (%d points): sequential %.2fs, %d workers (%d requested) %.2fs -> %.2fx, identical=%v\n",
			s.Experiment, s.Points, s.SequentialSeconds, s.Workers, s.WorkersRequested, s.ParallelSeconds, s.Speedup, s.Identical)
	}
	return out
}

// WriteJSON writes the report to path.
func (r *KernelPerfReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
