package bench

import (
	"encoding/json"
	"testing"

	"nectar/internal/obs"
)

// withShards runs fn with the experiment shard count set to n, restoring
// the sequential default afterwards.
func withShards(t *testing.T, n int, fn func()) {
	t.Helper()
	old := ExperimentShards()
	SetExperimentShards(n)
	defer SetExperimentShards(old)
	fn()
}

// snapsJSON renders a snapshot map deterministically for comparison
// (map iteration order does not matter: keys sort under json.Marshal).
func snapsJSON(t *testing.T, snaps map[string]*obs.Snapshot) string {
	t.Helper()
	m := make(map[string]json.RawMessage, len(snaps))
	for k, s := range snaps {
		if s != nil {
			m[k] = s.JSON()
		}
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardedExperimentsIdentical asserts the contract SetExperimentShards
// documents: opting experiment clusters into sharded execution changes
// only wall-clock time — every table and metrics snapshot is
// byte-identical to the sequential run's. Covered here on reduced sweeps
// of the figure experiments (CAB-to-CAB and host-to-host paths), Table 1,
// Figure 6, and the micro-measurements.
func TestShardedExperimentsIdentical(t *testing.T) {
	sizes := []int{64, 1024}

	t.Run("fig7", func(t *testing.T) {
		seqC, seqS, err := Fig7(nil, sizes)
		if err != nil {
			t.Fatal(err)
		}
		var shdC []Curve
		var shdS map[string]*obs.Snapshot
		withShards(t, 2, func() {
			shdC, shdS, err = Fig7(nil, sizes)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := FormatCurves("x", shdC), FormatCurves("x", seqC); got != want {
			t.Errorf("sharded fig7 differs:\nseq:\n%s\nshd:\n%s", want, got)
		}
		if got, want := snapsJSON(t, shdS), snapsJSON(t, seqS); got != want {
			t.Error("sharded fig7 snapshots differ from sequential")
		}
	})

	t.Run("fig8", func(t *testing.T) {
		seqC, seqS, err := Fig8(nil, sizes)
		if err != nil {
			t.Fatal(err)
		}
		var shdC []Curve
		var shdS map[string]*obs.Snapshot
		withShards(t, 2, func() {
			shdC, shdS, err = Fig8(nil, sizes)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := FormatCurves("x", shdC), FormatCurves("x", seqC); got != want {
			t.Errorf("sharded fig8 differs:\nseq:\n%s\nshd:\n%s", want, got)
		}
		if got, want := snapsJSON(t, shdS), snapsJSON(t, seqS); got != want {
			t.Error("sharded fig8 snapshots differ from sequential")
		}
	})

	t.Run("table1", func(t *testing.T) {
		seq, err := Table1(nil)
		if err != nil {
			t.Fatal(err)
		}
		var shd *Table1Result
		withShards(t, 2, func() {
			shd, err = Table1(nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		if shd.Format() != seq.Format() {
			t.Errorf("sharded table1 differs:\nseq:\n%s\nshd:\n%s", seq.Format(), shd.Format())
		}
	})

	t.Run("fig6", func(t *testing.T) {
		seq, err := Fig6(nil)
		if err != nil {
			t.Fatal(err)
		}
		var shd *Fig6Result
		withShards(t, 2, func() {
			shd, err = Fig6(nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		if shd.Format() != seq.Format() {
			t.Errorf("sharded fig6 differs:\nseq:\n%s\nshd:\n%s", seq.Format(), shd.Format())
		}
	})

	t.Run("micro", func(t *testing.T) {
		seq, err := Micro(nil)
		if err != nil {
			t.Fatal(err)
		}
		var shd *MicroResult
		withShards(t, 2, func() {
			shd, err = Micro(nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		if shd.Format() != seq.Format() {
			t.Errorf("sharded micro differs:\nseq:\n%s\nshd:\n%s", seq.Format(), shd.Format())
		}
	})
}

// TestPdesReport runs the pdes experiment end to end on a small workload
// shape by driving runPdesFlows directly, requiring identical virtual-time
// output between sequential and 2-shard runs. The sharded leg runs under
// the wall-clock profiler, which must not perturb virtual time, and must
// produce an internally consistent breakdown.
func TestPdesReport(t *testing.T) {
	// Round-robin partitioning (affinity=false) on purpose: it forces every
	// flow across the shard boundary, so the profile's cross-shard counters
	// must be non-zero below.
	seq, err := runPdesFlows(nil, 1, 4, 24, 256, false, false)
	if err != nil {
		t.Fatal(err)
	}
	shd, err := runPdesFlows(nil, 2, 4, 24, 256, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if seq.table != shd.table {
		t.Errorf("pdes tables differ:\nseq:\n%s\nshd:\n%s", seq.table, shd.table)
	}
	if string(seq.metrics) != string(shd.metrics) {
		t.Error("pdes metrics snapshots differ between sequential and sharded")
	}
	if seq.table == "" {
		t.Fatal("empty flow table")
	}
	if seq.profile != nil {
		t.Error("unprofiled sequential run produced a profile")
	}
	if shd.profile == nil {
		t.Fatal("profiled sharded run produced no profile")
	}
	// The CI smoke job holds the full-size run to 0.95; the threshold is
	// relaxed here because this reduced workload's wall clock is tiny and
	// scheduler preemption noise weighs proportionally more.
	if err := shd.profile.Check(0.90); err != nil {
		t.Errorf("profile consistency: %v\n%s", err, shd.profile.JSON())
	}
	if shd.profile.CrossShardFrames == 0 {
		t.Error("sharded flows crossed no shard boundary according to the profile")
	}
	if shd.profile.KernelDispatches == 0 {
		t.Error("kernel dispatch sampling counter stayed zero")
	}
	if shd.profile.VirtualNS <= 0 {
		t.Error("profile carries no virtual-time span")
	}
	if shd.events == 0 || shd.windows == 0 {
		t.Errorf("sharded run recorded events=%d windows=%d", shd.events, shd.windows)
	}
}

// TestPdesAffinity runs the same workload with flow-affinity partitioning:
// both endpoints of every flow land on one shard, so no simulated frame
// may cross the coupling, and the output must still be byte-identical to
// the sequential run.
func TestPdesAffinity(t *testing.T) {
	seq, err := runPdesFlows(nil, 1, 4, 24, 256, false, false)
	if err != nil {
		t.Fatal(err)
	}
	shd, err := runPdesFlows(nil, 2, 4, 24, 256, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if seq.table != shd.table {
		t.Errorf("pdes tables differ under affinity:\nseq:\n%s\nshd:\n%s", seq.table, shd.table)
	}
	if string(seq.metrics) != string(shd.metrics) {
		t.Error("pdes metrics snapshots differ between sequential and affinity-sharded")
	}
	if shd.profile == nil {
		t.Fatal("profiled sharded run produced no profile")
	}
	if shd.profile.CrossShardFrames != 0 {
		t.Errorf("flow-affinity partitioning still crossed shards: %d frames", shd.profile.CrossShardFrames)
	}
	if shd.windows >= seq.events {
		t.Errorf("affinity run used %d windows for %d events: coalescing is not batching", shd.windows, seq.events)
	}
}
