package bench

import (
	"fmt"

	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Fig6Stage is one segment of the one-way latency breakdown.
type Fig6Stage struct {
	Name string
	US   float64
}

// Fig6Result reproduces the paper's Figure 6: the component breakdown of
// a one-way host-to-host datagram (paper total: 163 µs, split roughly
// 40 % host-CAB interface, 40 % CAB-to-CAB, 20 % host message handling).
type Fig6Result struct {
	TotalUS float64
	Stages  []Fig6Stage
	Metrics *obs.Snapshot // registry snapshot at the end of the run
	// Bucket percentages per the paper's attribution.
	HostPct      float64 // host creating and reading the message
	InterfacePct float64 // host-CAB interface (both sides)
	CABPct       float64 // CAB-to-CAB (protocol processing + wire)
}

// Fig6 sends one 4-byte datagram host-to-host with the tracer installed
// and attributes every microsecond of the one-way path.
func Fig6(cost *model.CostModel) (*Fig6Result, error) {
	if cost == nil {
		cost = model.Default1990()
	}
	cl, a, b := newCluster(cost, false)
	marks := traceMarks(cl) // first occurrence of each stage, cluster-wide

	boxB := b.Mailboxes.Create("sink")
	addrB := wire.MailboxAddr{Node: b.ID, Box: boxB.ID()}
	done := false
	var tStart, tCreateDone, tRxBegin, tReadDone, tRxDone sim.Time

	a.Host.Run("sender", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a.Host)
		// Let the runtime boot (protocol threads park) before measuring.
		t.Sleep(5 * sim.Millisecond)
		tStart = t.Now()
		// The paper's "host creating the message": build the message
		// content, then hand it to the datagram protocol (the two-phase
		// put into mapped CAB memory is host-CAB interface time).
		t.Compute(cost.HostMessageCreate)
		tCreateDone = t.Now()
		a.Transports.Datagram.Send(ctx, addrB, 0, []byte{1, 2, 3, 4}, nil)
	})
	b.Host.Run("receiver", func(t *threads.Thread) {
		ctx := exec.OnHost(t, b.Host)
		m := boxB.BeginGetPoll(ctx)
		tRxBegin = t.Now()
		var buf [4]byte
		m.Read(ctx, 0, buf[:])
		t.Compute(cost.HostMessageRead)
		tReadDone = t.Now()
		boxB.EndGet(ctx, m)
		tRxDone = t.Now()
		done = true
	})
	if err := drive(cl, &done); err != nil {
		return nil, err
	}

	post := fmt.Sprintf("hostif.post.%d", a.ID)
	isr := fmt.Sprintf("hostif.cabisr.%d", a.ID)
	req := fmt.Sprintf("datagram.req.%d", a.ID)
	dltx := fmt.Sprintf("dl.tx.%d", a.ID)
	arrive := fmt.Sprintf("cab.rx.arrive.%d", b.ID)
	dlrx := fmt.Sprintf("dl.rx.%d", b.ID)
	deliver := fmt.Sprintf("datagram.deliver.%d", b.ID)
	signal := fmt.Sprintf("hostcond.signal.%d", b.ID)
	need := []string{post, isr, req, dltx, arrive, dlrx, deliver, signal}
	for _, n := range need {
		if _, ok := marks[n]; !ok {
			return nil, fmt.Errorf("fig6: missing trace mark %q", n)
		}
	}
	us := func(from, to sim.Time) float64 { return sim.Duration(to - from).Micros() }

	stages := []Fig6Stage{
		{"host: create message", us(tStart, tCreateDone)},
		{"host: begin_put/write/end_put", us(tCreateDone, marks[post])},
		{"host->CAB: doorbell + CAB ISR", us(marks[post], marks[isr])},
		{"CAB1: wake datagram thread", us(marks[isr], marks[req])},
		{"CAB1: transport + datalink out", us(marks[req], marks[dltx])},
		{"wire: fiber + HUB", us(marks[dltx], marks[arrive])},
		{"CAB2: start-of-packet + datalink", us(marks[arrive], marks[dlrx])},
		{"CAB2: DMA + transport deliver", us(marks[dlrx], marks[deliver])},
		{"CAB2->host: signal + poll + begin_get", us(marks[deliver], tRxBegin)},
		{"host: read message", us(tRxBegin, tReadDone)},
		{"host: end_get", us(tReadDone, tRxDone)},
	}
	res := &Fig6Result{TotalUS: us(tStart, tRxDone), Stages: stages, Metrics: snapshot(cl)}

	// The paper's three buckets: message handling on the hosts; the
	// host-CAB interface on both sides (mailbox ops over the VME bus,
	// doorbells, thread wakeup, polling); CAB-to-CAB (protocol
	// processing, DMA, fiber, HUB).
	host := stages[0].US + stages[9].US
	iface := stages[1].US + stages[2].US + stages[3].US + stages[8].US + stages[10].US
	cab := stages[4].US + stages[5].US + stages[6].US + stages[7].US
	res.HostPct = 100 * host / res.TotalUS
	res.InterfacePct = 100 * iface / res.TotalUS
	res.CABPct = 100 * cab / res.TotalUS
	return res, nil
}

// Format renders the breakdown with the paper anchors.
func (r *Fig6Result) Format() string {
	out := "Figure 6: one-way host-to-host datagram latency breakdown\n"
	for _, s := range r.Stages {
		out += fmt.Sprintf("  %-36s %7.1f us\n", s.Name, s.US)
	}
	out += fmt.Sprintf("  %-36s %7.1f us\n", "TOTAL", r.TotalUS)
	out += fmt.Sprintf("  buckets: host %.0f%%, host-CAB interface %.0f%%, CAB-to-CAB %.0f%%\n",
		r.HostPct, r.InterfacePct, r.CABPct)
	out += "paper anchors: total 163 us; ~20% host / ~40% interface / ~40% CAB-to-CAB\n"
	return out
}
