package bench

import (
	"fmt"

	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/proto/tcp"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// messagesFor picks the message count for a sweep point: enough traffic
// to reach steady state, bounded so small-message points stay tractable.
func messagesFor(size int) int {
	n := (256 << 10) / size
	if n < 20 {
		n = 20
	}
	if n > 400 {
		n = 400
	}
	return n
}

// Fig7 reproduces the paper's Figure 7: throughput between two CAB
// threads versus message size, for TCP/IP, TCP without software
// checksums, and the Nectar reliable message protocol. Paper anchors:
// RMP reaches 90 Mbit/s of the 100 Mbit/s fiber at 8 KB; throughput
// doubles with message size up to ~256 B (per-packet overhead dominated);
// the TCP-RMP gap is mostly software checksum cost, so TCP w/o checksum
// is almost as fast as RMP (§6.2).
// Snapshots are keyed "<curve>/<size>".
//
// Each (curve, size) point builds an independent cluster, so the sweep
// runs on the bench worker pool (SetParallelism); results are assembled
// in job-index order, making the tables and snapshot keys byte-identical
// to a sequential run.
func Fig7(cost *model.CostModel, sizes []int) ([]Curve, map[string]*obs.Snapshot, error) {
	if sizes == nil {
		sizes = Sizes1990
	}
	curves := []Curve{{Name: "TCP/IP"}, {Name: "TCP w/o checksum"}, {Name: "RMP"}}
	runners := []func(*model.CostModel, int) (float64, *obs.Snapshot, error){
		func(c *model.CostModel, s int) (float64, *obs.Snapshot, error) { return tcpThroughputCAB(c, s, true) },
		func(c *model.CostModel, s int) (float64, *obs.Snapshot, error) { return tcpThroughputCAB(c, s, false) },
		rmpThroughputCAB,
	}
	return sweep(cost, sizes, curves, runners)
}

// sweep runs every (curve, size) pair as an independent job and assembles
// curves and snapshots deterministically.
func sweep(cost *model.CostModel, sizes []int, curves []Curve,
	runners []func(*model.CostModel, int) (float64, *obs.Snapshot, error)) ([]Curve, map[string]*obs.Snapshot, error) {
	nS := len(sizes)
	vals := make([]float64, len(curves)*nS)
	sns := make([]*obs.Snapshot, len(curves)*nS)
	err := runJobs(len(vals), func(i int) error {
		ci, si := i/nS, i%nS
		v, sn, err := runners[ci](copyCost(cost), sizes[si])
		if err != nil {
			return fmt.Errorf("%s %dB: %w", curves[ci].Name, sizes[si], err)
		}
		vals[i], sns[i] = v, sn
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	snaps := make(map[string]*obs.Snapshot)
	for ci := range curves {
		for si, size := range sizes {
			i := ci*nS + si
			curves[ci].Points = append(curves[ci].Points, Point{size, vals[i]})
			snaps[fmt.Sprintf("%s/%d", curves[ci].Name, size)] = sns[i]
		}
	}
	return curves, snaps, nil
}

// Fig8 reproduces the paper's Figure 8: throughput between two host
// processes versus message size, for TCP/IP and RMP. Paper anchors: both
// curves are limited by the ~30 Mbit/s VME bus (TCP ~24, RMP ~28), and
// they flatten earlier than the CAB-to-CAB curves of Figure 7 because the
// slow bus makes transmission time significant sooner (§6.3).
// Snapshots are keyed "<curve>/<size>". Sweep points run on the bench
// worker pool like Fig7's.
func Fig8(cost *model.CostModel, sizes []int) ([]Curve, map[string]*obs.Snapshot, error) {
	if sizes == nil {
		sizes = Sizes1990
	}
	curves := []Curve{{Name: "TCP/IP"}, {Name: "RMP"}}
	runners := []func(*model.CostModel, int) (float64, *obs.Snapshot, error){
		tcpThroughputHost,
		rmpThroughputHost,
	}
	return sweep(cost, sizes, curves, runners)
}

// rmpThroughputCAB streams messages between CAB threads over RMP.
func rmpThroughputCAB(cost *model.CostModel, size int) (float64, *obs.Snapshot, error) {
	cl, a, b := newCluster(cost, false)
	n := messagesFor(size)
	box := b.Mailboxes.Create("sink")
	box.SetCapacity(wire.MaxPayload * 4)
	addr := wire.MailboxAddr{Node: b.ID, Box: box.ID()}
	done := false
	var start, end sim.Time

	b.CAB.Sched.Fork("drain", threads.SystemPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		for i := 0; i < n; i++ {
			m := box.BeginGet(ctx)
			box.EndGet(ctx, m)
		}
		end = t.Now()
		done = true
	})
	a.CAB.Sched.Fork("blast", threads.SystemPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		buf := make([]byte, size)
		start = t.Now()
		for i := 0; i < n; i++ {
			if st := a.Transports.RMP.SendBlocking(ctx, addr, 0, buf); st != 1 {
				cl.K.Fatalf("rmp status %d", st)
			}
		}
	})
	if err := drive(cl, &done); err != nil {
		return 0, nil, err
	}
	return mbps(n*size, sim.Duration(end-start)), snapshot(cl), nil
}

// tcpThroughputCAB streams messages between CAB threads over TCP.
func tcpThroughputCAB(cost *model.CostModel, size int, checksum bool) (float64, *obs.Snapshot, error) {
	cl, a, b := newCluster(cost, false)
	a.TCP.SetChecksum(checksum)
	b.TCP.SetChecksum(checksum)
	n := messagesFor(size)
	total := n * size
	done := false
	var start, end sim.Time

	ln, err := b.TCP.Listen(80)
	if err != nil {
		return 0, nil, err
	}
	b.CAB.Sched.Fork("server", threads.SystemPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		c := ln.Accept(ctx)
		got := 0
		for got < total {
			m := c.Recv(ctx)
			if m == nil {
				break
			}
			got += m.Len()
			c.RecvDone(ctx, m)
		}
		end = t.Now()
		done = true
	})
	a.CAB.Sched.Fork("client", threads.SystemPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		c, err := a.TCP.Connect(ctx, wire.NodeIP(b.ID), 80)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
		buf := make([]byte, size)
		start = t.Now()
		for i := 0; i < n; i++ {
			c.Send(ctx, buf)
		}
	})
	if err := drive(cl, &done); err != nil {
		return 0, nil, err
	}
	return mbps(total, sim.Duration(end-start)), snapshot(cl), nil
}

// rmpThroughputHost streams messages between host processes over RMP
// (requests and data cross the VME bus into the send-request mailbox; the
// receiver polls and reads across its own bus).
func rmpThroughputHost(cost *model.CostModel, size int) (float64, *obs.Snapshot, error) {
	cl, a, b := newCluster(cost, false)
	n := messagesFor(size)
	box := b.Mailboxes.Create("sink")
	box.SetCapacity(wire.MaxPayload * 4)
	addr := wire.MailboxAddr{Node: b.ID, Box: box.ID()}
	done := false
	var start, end sim.Time

	b.Host.Run("drain", func(t *threads.Thread) {
		ctx := exec.OnHost(t, b.Host)
		buf := make([]byte, size)
		for i := 0; i < n; i++ {
			m := box.BeginGetPoll(ctx)
			m.Read(ctx, 0, buf[:m.Len()])
			box.EndGet(ctx, m)
		}
		end = t.Now()
		done = true
	})
	a.Host.Run("blast", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a.Host)
		buf := make([]byte, size)
		start = t.Now()
		for i := 0; i < n; i++ {
			a.Transports.RMP.Send(ctx, addr, 0, buf, nil)
		}
	})
	if err := drive(cl, &done); err != nil {
		return 0, nil, err
	}
	return mbps(n*size, sim.Duration(end-start)), snapshot(cl), nil
}

// tcpThroughputHost streams messages between host processes over TCP.
func tcpThroughputHost(cost *model.CostModel, size int) (float64, *obs.Snapshot, error) {
	cl, a, b := newCluster(cost, false)
	n := messagesFor(size)
	total := n * size
	done := false
	var start, end sim.Time

	// Establish the connection with CAB threads (the paper's host-level
	// interfaces run connection setup through the CAB as well).
	ln, err := b.TCP.Listen(80)
	if err != nil {
		return 0, nil, err
	}
	var connA, connB *tcp.Conn
	setup := false
	b.CAB.Sched.Fork("accept", threads.SystemPriority, func(t *threads.Thread) {
		connB = ln.Accept(exec.OnCAB(t))
	})
	a.CAB.Sched.Fork("connect", threads.SystemPriority, func(t *threads.Thread) {
		var err error
		connA, err = a.TCP.Connect(exec.OnCAB(t), wire.NodeIP(b.ID), 80)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
		setup = true
	})
	if err := drive(cl, &setup); err != nil {
		return 0, nil, err
	}
	if connB == nil {
		return 0, nil, fmt.Errorf("accept did not complete")
	}

	b.Host.Run("drain", func(t *threads.Thread) {
		ctx := exec.OnHost(t, b.Host)
		got := 0
		buf := make([]byte, wire.MaxPayload)
		for got < total {
			m := connB.RecvPoll(ctx)
			if m == nil {
				break
			}
			m.Read(ctx, 0, buf[:m.Len()])
			got += m.Len()
			connB.RecvDone(ctx, m)
		}
		end = t.Now()
		done = true
	})
	a.Host.Run("blast", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a.Host)
		buf := make([]byte, size)
		start = t.Now()
		for i := 0; i < n; i++ {
			connA.Send(ctx, buf)
		}
	})
	if err := drive(cl, &done); err != nil {
		return 0, nil, err
	}
	return mbps(total, sim.Duration(end-start)), snapshot(cl), nil
}
