package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nectar"
	"nectar/internal/model"
	"nectar/internal/prof"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Sharded-execution report (BENCH_pdes.json): wall-clock cost of the same
// multi-node workload run sequentially (one kernel) and sharded (one
// kernel per shard, coupled by the conservative lookahead scheduler),
// with byte-identity of the virtual-time results verified in-process.
// The checksum section rides along: it is the other wall-clock
// optimisation of this change, measured with testing.Benchmark against
// the scalar reference.

// ChecksumBench compares the word-at-a-time Internet checksum against the
// two-bytes-per-iteration scalar loop on one buffer size.
type ChecksumBench struct {
	SizeB      int     `json:"size_bytes"`
	WordMBps   float64 `json:"word_at_a_time_mbps"`
	ScalarMBps float64 `json:"scalar_mbps"`
	Speedup    float64 `json:"speedup"`
}

// PdesReport is the schema of BENCH_pdes.json.
type PdesReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// NumCPU is the host's usable core count; a speedup near or below 1.0
	// with NumCPU <= shards means the host could not physically run the
	// shard workers in parallel, not that the coupling failed to overlap.
	NumCPU int `json:"num_cpu"`

	Nodes           int `json:"nodes"`
	Flows           int `json:"flows"`
	MessagesPerFlow int `json:"messages_per_flow"`
	MessageBytes    int `json:"message_bytes"`
	// Partition is how nodes were assigned to shards: "flow-affinity"
	// (ShardByFlows co-locates each flow's endpoints) for the headline
	// runs, "round-robin" for the coupling-stress configuration.
	Partition string `json:"partition"`
	// Windows is the number of conservative safe windows the sharded run
	// executed; events-per-window is the batching the lookahead bought.
	Windows uint64 `json:"windows"`
	// EventsPerWindow is total kernel dispatches across all shards divided
	// by Windows: the mean batching each safe window achieved. Higher is
	// better — barrier overhead amortises over more simulation work.
	EventsPerWindow float64 `json:"events_per_window"`
	// WindowsPerVirtualMS normalises the window count by simulated time,
	// making runs of different length or on different hosts comparable.
	WindowsPerVirtualMS float64 `json:"windows_per_virtual_ms"`

	// Workers are shard kernels, each on its own goroutine. Requested is
	// the -shards argument; effective is the shard count the cluster
	// actually ran with (the two differ only if the request was invalid).
	WorkersRequested int `json:"workers_requested"`
	WorkersEffective int `json:"workers_effective"`

	// Oversubscribed flags a measurement where the effective shard workers
	// exceed the usable cores: the recorded speedup then reflects time-
	// sliced workers, not parallel hardware, and must not be read as a
	// scheduler verdict (the trap the original 0.85x-on-one-core run of
	// this file fell into).
	Oversubscribed bool `json:"oversubscribed"`

	SequentialSeconds float64 `json:"sequential_seconds"`
	ShardedSeconds    float64 `json:"sharded_seconds"`
	Speedup           float64 `json:"speedup"`
	// Identical means the sharded run's per-flow table and merged metrics
	// snapshot are byte-identical to the sequential run's.
	Identical bool `json:"identical_output"`

	// Table is the per-flow virtual-time result both runs produced.
	Table string `json:"table"`

	Checksum ChecksumBench `json:"checksum"`

	// Profile is the sharded run's wall-clock breakdown (nectar-bench
	// -prof); absent on unprofiled runs.
	Profile *prof.Report `json:"profile,omitempty"`

	// Variants are additional configurations run for scaling context
	// (e.g. the 32-node / 8-shard leg).
	Variants []PdesVariant `json:"variants,omitempty"`
}

// PdesVariant is one extra pdes configuration recorded alongside the
// main run.
type PdesVariant struct {
	Name                string  `json:"name"`
	Nodes               int     `json:"nodes"`
	Flows               int     `json:"flows"`
	MessagesPerFlow     int     `json:"messages_per_flow"`
	MessageBytes        int     `json:"message_bytes"`
	Shards              int     `json:"shards"`
	Partition           string  `json:"partition"`
	Windows             uint64  `json:"windows"`
	EventsPerWindow     float64 `json:"events_per_window"`
	WindowsPerVirtualMS float64 `json:"windows_per_virtual_ms"`
	SequentialSeconds   float64 `json:"sequential_seconds"`
	ShardedSeconds      float64 `json:"sharded_seconds"`
	Speedup             float64 `json:"speedup"`
	Identical           bool    `json:"identical_output"`
}

// pdesFlowResult is the virtual-time outcome of one pdes run.
type pdesFlowResult struct {
	table   string
	metrics []byte
	wallS   float64
	windows uint64       // safe windows executed (0 when sequential)
	events  uint64       // kernel dispatches summed over all shards
	virtual sim.Time     // simulated time at completion
	profile *prof.Report // wall-clock breakdown (nil unless profiled)
}

// eventsPerWindow is the mean dispatch batching per safe window.
func (r *pdesFlowResult) eventsPerWindow() float64 {
	if r.windows == 0 {
		return 0
	}
	return float64(r.events) / float64(r.windows)
}

// windowsPerVirtualMS is the window rate per simulated millisecond.
func (r *pdesFlowResult) windowsPerVirtualMS() float64 {
	if r.virtual <= 0 {
		return 0
	}
	return float64(r.windows) / (float64(r.virtual.Nanos()) / 1e6)
}

// runPdesFlows drives nodes/2 disjoint RMP flows (node 2i -> node 2i+1,
// each perFlow messages of msgBytes) on one cluster and returns the
// per-flow throughput table, the metrics snapshot JSON, and the wall
// clock. shards < 2 runs sequentially on a single kernel. With affinity
// set, ShardByFlows co-locates each flow's endpoints on one shard (the
// production partitioning: no simulated traffic crosses shards); without
// it, the default round-robin assignment makes every flow cross the HUB
// between shards, stressing the coupling on its data and ack paths in
// both directions.
func runPdesFlows(cost *model.CostModel, shards, nodes, perFlow, msgBytes int, affinity, profiled bool) (*pdesFlowResult, error) {
	nFlows := nodes / 2
	routes := make([][2]int, nFlows)
	for fi := 0; fi < nFlows; fi++ {
		routes[fi] = [2]int{2 * fi, 2*fi + 1}
		if fi%2 == 1 {
			// Alternate flow direction so that, under round-robin shard
			// assignment, every shard carries both senders and receivers
			// and windows have work on all shards at once.
			routes[fi] = [2]int{2*fi + 1, 2 * fi}
		}
	}

	var cfg nectar.Config
	cfg.Cost = cost
	if nodes > 16 {
		cfg.HubPorts = nodes // one crossbar large enough for the scaling leg
	}
	// The flow list is the complete traffic matrix of this workload, so
	// declare it: gateways whose declared peers are all local stop
	// constraining the safe bound (identical declaration on the
	// sequential leg keeps the enforcement byte-identical).
	cfg.Flows = routes
	if shards > 1 {
		cfg.Shards = shards
		if affinity {
			cfg.ShardOf = nectar.ShardByFlows(nodes, shards, routes)
		}
	}
	start := time.Now() //nectar:allow-walltime measures the run's real wall clock for BENCH_pdes.json
	cl := nectar.NewCluster(&cfg)
	if profiled {
		cl.EnableProfiling()
	}
	ns := make([]*nectar.Node, nodes)
	for i := range ns {
		ns[i] = cl.AddNode()
	}

	ends := make([]sim.Time, nFlows)
	done := make([]bool, nFlows)
	for fi := 0; fi < nFlows; fi++ {
		fi, src, dst := fi, ns[routes[fi][0]], ns[routes[fi][1]]
		sink := dst.Mailboxes.Create(fmt.Sprintf("pdes.flow%d", fi))
		sink.SetCapacity(wire.MaxPayload * 4)
		addr := wire.MailboxAddr{Node: dst.ID, Box: sink.ID()}
		dst.CAB.Sched.Fork("drain", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for n := 0; n < perFlow; n++ {
				m := sink.BeginGet(ctx)
				sink.EndGet(ctx, m)
			}
			ends[fi] = th.Now()
			done[fi] = true
		})
		src.CAB.Sched.Fork("blast", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			payload := make([]byte, msgBytes)
			for i := range payload {
				payload[i] = byte(i * (fi + 3))
			}
			for s := 0; s < perFlow; s++ {
				payload[0] = byte(s)
				if st := src.Transports.RMP.SendBlocking(ctx, addr, 0, payload); st != 1 {
					sim.Panicf("pdes flow %d send %d failed: status %d", fi, s, st)
				}
			}
		})
	}

	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}
	for !allDone() {
		if err := cl.RunFor(sim.Millisecond); err != nil {
			return nil, err
		}
		if sim.Duration(cl.Now()) > maxVirtual {
			return nil, fmt.Errorf("pdes: workload exceeded %v of virtual time", maxVirtual)
		}
	}
	metrics := cl.MetricsSnapshot().JSON()
	wall := time.Since(start).Seconds() //nectar:allow-walltime measures the run's real wall clock for BENCH_pdes.json
	windows := cl.Windows()
	profile := cl.ProfileReport()
	var events uint64
	for _, k := range cl.Kernels() {
		events += k.Dispatched()
	}
	virtual := cl.Now()

	table := fmt.Sprintf("%6s %10s %12s %12s\n", "flow", "route", "done(us)", "Mbit/s")
	for fi := 0; fi < nFlows; fi++ {
		table += fmt.Sprintf("%6d %7d->%d %12.1f %12.1f\n",
			fi, routes[fi][0], routes[fi][1], ends[fi].Micros(),
			mbps(perFlow*msgBytes, sim.Duration(ends[fi])))
	}
	return &pdesFlowResult{table: table, metrics: metrics, wallS: wall, windows: windows,
		events: events, virtual: virtual, profile: profile}, nil
}

// checksumBench measures the word-at-a-time checksum against the scalar
// reference loop on an 8 KB buffer (the paper's largest message size).
func checksumBench() ChecksumBench {
	const size = 8192
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	var sink uint32
	run := func(fn func(uint32, []byte) uint32) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(size)
			for i := 0; i < b.N; i++ {
				sink = fn(0, data)
			}
		})
		if r.T <= 0 {
			return 0
		}
		return float64(r.N) * size / r.T.Seconds() / 1e6
	}
	cb := ChecksumBench{
		SizeB:      size,
		WordMBps:   run(wire.SumWords),
		ScalarMBps: run(scalarSumWords),
	}
	_ = sink
	if cb.ScalarMBps > 0 {
		cb.Speedup = cb.WordMBps / cb.ScalarMBps
	}
	return cb
}

// scalarSumWords is the two-bytes-per-iteration checksum loop, duplicated
// here (wire keeps its copy unexported) as the benchmark baseline.
func scalarSumWords(sum uint32, data []byte) uint32 {
	acc := uint64(sum)
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		acc += uint64(data[i])<<8 | uint64(data[i+1])
	}
	if n%2 == 1 {
		acc += uint64(data[n-1]) << 8
	}
	acc = acc>>32 + acc&0xffffffff
	acc = acc>>32 + acc&0xffffffff
	return uint32(acc)
}

// Pdes runs the sharded-execution experiment: a 2*shards-node cluster
// (at least 4 nodes) with one RMP flow per node pair, once sequentially
// and once with `shards` shard kernels, verifying byte-identity of the
// flow table and metrics snapshot and reporting the wall-clock ratio.
// The sharded leg uses flow-affinity partitioning (ShardByFlows), the
// configuration a user tuning for throughput would pick; the round-robin
// stress configuration stays covered by the determinism tests. With
// profiled set, the sharded leg runs under the wall-clock profiler and
// the report carries its phase breakdown. A 32-node / 8-shard scaling
// variant is recorded alongside the main run.
func Pdes(cost *model.CostModel, shards int, profiled bool) (*PdesReport, error) {
	if shards < 2 {
		shards = 2
	}
	if shards > 8 {
		shards = 8 // keep >= 2 nodes per shard on the 16-port HUB
	}
	nodes := 4 * shards
	if nodes > 16 {
		nodes = 16 // single 16-port HUB
	}
	const perFlow, msgBytes = 192, 1024

	seq, err := runPdesFlows(cost, 1, nodes, perFlow, msgBytes, false, false)
	if err != nil {
		return nil, fmt.Errorf("sequential run: %w", err)
	}
	shd, err := runPdesFlows(cost, shards, nodes, perFlow, msgBytes, true, profiled)
	if err != nil {
		return nil, fmt.Errorf("sharded run: %w", err)
	}

	r := &PdesReport{
		Date:                time.Now().UTC().Format("2006-01-02"), //nectar:allow-walltime report metadata, not simulation state
		GoVersion:           runtime.Version(),
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		NumCPU:              runtime.NumCPU(),
		Nodes:               nodes,
		Flows:               nodes / 2,
		MessagesPerFlow:     perFlow,
		MessageBytes:        msgBytes,
		Partition:           "flow-affinity",
		Windows:             shd.windows,
		EventsPerWindow:     shd.eventsPerWindow(),
		WindowsPerVirtualMS: shd.windowsPerVirtualMS(),
		WorkersRequested:    shards,
		WorkersEffective:    shards,
		SequentialSeconds:   seq.wallS,
		ShardedSeconds:      shd.wallS,
		Identical:           seq.table == shd.table && bytes.Equal(seq.metrics, shd.metrics),
		Table:               seq.table,
		Checksum:            checksumBench(),
		Profile:             shd.profile,
	}
	r.Oversubscribed = r.WorkersEffective > r.NumCPU
	if shd.wallS > 0 {
		r.Speedup = seq.wallS / shd.wallS
	}

	// Scaling leg: 32 nodes / 16 flows on an 8-shard cluster (crossbar
	// widened to 32 ports), same total message count as the main run.
	if v, err := pdesVariant("large_8shard", cost, 8, 32, 96, msgBytes); err != nil {
		return nil, fmt.Errorf("variant large_8shard: %w", err)
	} else {
		r.Variants = append(r.Variants, *v)
	}
	return r, nil
}

// pdesVariant runs one extra sequential-vs-sharded configuration with
// flow-affinity partitioning and summarises it.
func pdesVariant(name string, cost *model.CostModel, shards, nodes, perFlow, msgBytes int) (*PdesVariant, error) {
	seq, err := runPdesFlows(cost, 1, nodes, perFlow, msgBytes, false, false)
	if err != nil {
		return nil, fmt.Errorf("sequential run: %w", err)
	}
	shd, err := runPdesFlows(cost, shards, nodes, perFlow, msgBytes, true, false)
	if err != nil {
		return nil, fmt.Errorf("sharded run: %w", err)
	}
	v := &PdesVariant{
		Name:                name,
		Nodes:               nodes,
		Flows:               nodes / 2,
		MessagesPerFlow:     perFlow,
		MessageBytes:        msgBytes,
		Shards:              shards,
		Partition:           "flow-affinity",
		Windows:             shd.windows,
		EventsPerWindow:     shd.eventsPerWindow(),
		WindowsPerVirtualMS: shd.windowsPerVirtualMS(),
		SequentialSeconds:   seq.wallS,
		ShardedSeconds:      shd.wallS,
		Identical:           seq.table == shd.table && bytes.Equal(seq.metrics, shd.metrics),
	}
	if shd.wallS > 0 {
		v.Speedup = seq.wallS / shd.wallS
	}
	return v, nil
}

// PdesProfile runs only the sharded leg of the pdes experiment under the
// wall-clock profiler and returns its breakdown (the fresh-run mode of
// cmd/nectar-prof, which has no use for the sequential baseline).
func PdesProfile(cost *model.CostModel, shards int) (*prof.Report, error) {
	if shards < 2 {
		shards = 2
	}
	if shards > 8 {
		shards = 8
	}
	nodes := 4 * shards
	if nodes > 16 {
		nodes = 16
	}
	const perFlow, msgBytes = 192, 1024
	shd, err := runPdesFlows(cost, shards, nodes, perFlow, msgBytes, true, true)
	if err != nil {
		return nil, err
	}
	return shd.profile, nil
}

// Format renders the report for the CLI.
func (r *PdesReport) Format() string {
	out := "Sharded conservative parallel simulation (per-channel lookahead)\n"
	out += fmt.Sprintf("env: gomaxprocs=%d num_cpu=%d workers=%d(+1 scheduler)\n",
		r.GoMaxProcs, r.NumCPU, r.WorkersEffective)
	if r.Oversubscribed {
		out += fmt.Sprintf("WARNING: %d shard workers on %d usable core(s): the speedup below measures time-sliced workers, not parallel hardware\n",
			r.WorkersEffective, r.NumCPU)
	}
	out += r.Table
	out += fmt.Sprintf("%d nodes, %d flows x %d msgs x %dB, %s partition\n",
		r.Nodes, r.Flows, r.MessagesPerFlow, r.MessageBytes, r.Partition)
	out += fmt.Sprintf("%d safe windows, %.1f events/window, %.1f windows/virtual-ms\n",
		r.Windows, r.EventsPerWindow, r.WindowsPerVirtualMS)
	out += fmt.Sprintf("sequential %.2fs, %d shards %.2fs -> %.2fx, identical=%v\n",
		r.SequentialSeconds, r.WorkersEffective, r.ShardedSeconds, r.Speedup, r.Identical)
	for _, v := range r.Variants {
		out += fmt.Sprintf("variant %s: %d nodes / %d shards, %d windows (%.1f ev/win, %.1f win/vms), %.2fs vs %.2fs -> %.2fx, identical=%v\n",
			v.Name, v.Nodes, v.Shards, v.Windows, v.EventsPerWindow, v.WindowsPerVirtualMS,
			v.SequentialSeconds, v.ShardedSeconds, v.Speedup, v.Identical)
	}
	out += fmt.Sprintf("checksum (%dB): word-at-a-time %.0f MB/s vs scalar %.0f MB/s -> %.2fx\n",
		r.Checksum.SizeB, r.Checksum.WordMBps, r.Checksum.ScalarMBps, r.Checksum.Speedup)
	if r.Profile != nil {
		out += "\n" + r.Profile.Format(0)
	}
	return out
}

// WriteJSON writes the report to path.
func (r *PdesReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
