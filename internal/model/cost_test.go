package model

import (
	"testing"

	"nectar/internal/sim"
)

func TestFiberTimeMatchesLineRate(t *testing.T) {
	c := Default1990()
	// 1250 bytes at 100 Mbit/s = 100 us.
	if got := c.FiberTime(1250); got != 100*sim.Microsecond {
		t.Errorf("FiberTime(1250) = %v, want 100us", got)
	}
	if c.FiberTime(0) != 0 || c.FiberTime(-5) != 0 {
		t.Error("non-positive sizes must cost nothing")
	}
}

func TestVMEDMATimeMatchesBusRate(t *testing.T) {
	c := Default1990()
	// 3750 bytes at 30 Mbit/s = 1 ms.
	if got := c.VMEDMATime(3750); got != sim.Millisecond {
		t.Errorf("VMEDMATime(3750) = %v, want 1ms", got)
	}
}

func TestVMEWordsRoundsUp(t *testing.T) {
	c := Default1990()
	if got := c.VMEWords(5); got != 2*sim.Microsecond {
		t.Errorf("VMEWords(5) = %v, want 2us", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := Default1990()
	b := a.Clone()
	b.ContextSwitch = 999
	if a.ContextSwitch == b.ContextSwitch {
		t.Error("Clone shares storage with the original")
	}
}

func TestPaperAnchorsPresent(t *testing.T) {
	c := Default1990()
	if c.HubSetup != 700*sim.Nanosecond {
		t.Errorf("HubSetup = %v, paper says 700ns", c.HubSetup)
	}
	if c.ContextSwitch != 20*sim.Microsecond {
		t.Errorf("ContextSwitch = %v, paper says 20us", c.ContextSwitch)
	}
	if c.VMEWord != sim.Microsecond {
		t.Errorf("VMEWord = %v, paper says ~1us", c.VMEWord)
	}
	if c.FiberBytesPerSec != 100_000_000/8 {
		t.Errorf("fiber rate = %d, paper says 100 Mbit/s", c.FiberBytesPerSec)
	}
	if c.VMEDMABytesPerSec != 30_000_000/8 {
		t.Errorf("VME DMA rate = %d, paper says ~30 Mbit/s", c.VMEDMABytesPerSec)
	}
}
