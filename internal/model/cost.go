// Package model holds the calibrated cost model for the simulated Nectar
// hardware. Every constant is either stated directly in the paper (cited),
// derived from a stated quantity, or calibrated so that a stated end-to-end
// result is reproduced; each comment says which.
//
// The model is a plain struct so experiments and ablations can perturb
// individual costs (e.g. zeroing the TCP checksum cost for the Figure 7
// "TCP w/o checksum" curve).
package model

import "nectar/internal/sim"

// CostModel gathers every timing constant used by the hardware and runtime
// models. All durations are virtual time.
type CostModel struct {
	// --- Network fabric (paper §2.1) ---

	// FiberBytesPerSec is the fiber-optic line rate. Paper: 100 Mbit/s.
	FiberBytesPerSec int64
	// HubSetup is the HUB latency to set up a connection and deliver the
	// first byte through a single HUB. Paper: 700 ns.
	HubSetup sim.Duration
	// HubPerHop is the added cut-through latency per additional HUB hop in
	// a multi-HUB route. Derived: same order as HubSetup.
	HubPerHop sim.Duration

	// --- VME bus (paper §6.1, §6.3) ---

	// VMEWord is the cost of one programmed-I/O read or write of a 32-bit
	// word across the VME bus. Paper: "each read or write over the VME bus
	// takes about 1 µs".
	VMEWord sim.Duration
	// VMEDMABytesPerSec is the block-transfer bandwidth of the VME bus used
	// by the CAB DMA engine. Paper: "the VME bus ... is about 30 Mbit/sec".
	VMEDMABytesPerSec int64
	// VMEDMASetup is the fixed cost to program one VME DMA transfer.
	// Calibrated (Figure 8 flattening point).
	VMEDMASetup sim.Duration

	// --- CAB CPU & runtime (paper §2.2, §3.1) ---

	// ContextSwitch is a full thread context switch (SPARC register-window
	// save/restore). Paper: "20 µsec is typical".
	ContextSwitch sim.Duration
	// InterruptEntry is the cost to take an interrupt and enter the
	// handler (no full context switch). Derived: a few µs on a 16.5 MHz
	// SPARC; calibrated within the Figure 6 budget.
	InterruptEntry sim.Duration
	// InterruptExit is the cost to return from an interrupt handler.
	InterruptExit sim.Duration
	// SchedulerDispatch is the non-switch bookkeeping to pick the next
	// thread (ready-queue ops). Derived from CPU rate.
	SchedulerDispatch sim.Duration

	// --- Memory & DMA (paper §2.2) ---

	// DMASetup is the fixed cost for the CPU to program one fiber<->memory
	// DMA transfer. Calibrated (Figure 7 small-message region).
	DMASetup sim.Duration
	// MemCopyBytesPerSec is the CPU copy bandwidth of the 35 ns SRAM data
	// memory (word loop on a 16.5 MHz SPARC, ~4 B / 4 cycles ≈ 16 MB/s).
	MemCopyBytesPerSec int64

	// --- Runtime primitive costs (calibrated against Figure 6's 163 µs
	// one-way breakdown with its ~40/40/20 split; each is tens of
	// instructions on the CAB CPU) ---

	// MailboxBeginPut / EndPut / BeginGet / EndGet are the CPU costs of the
	// two-phase mailbox operations when executed on the CAB.
	MailboxBeginPut sim.Duration
	MailboxEndPut   sim.Duration
	MailboxBeginGet sim.Duration
	MailboxEndGet   sim.Duration
	// MailboxEnqueue moves a message between mailboxes by pointer surgery
	// (paper §3.3); cheap by design.
	MailboxEnqueue sim.Duration
	// HeapAlloc / HeapFree are buffer allocator costs (first-fit heap).
	HeapAlloc sim.Duration
	HeapFree  sim.Duration
	// SyncOp is the cost of a sync Write/Read/Cancel on the CAB (§3.4).
	SyncOp sim.Duration
	// HostSignal is the CPU cost of posting to a signal queue and raising
	// the cross-bus interrupt (§3.2).
	HostSignal sim.Duration

	// --- Protocol processing costs (per packet, on the CAB CPU) ---

	// DatalinkProcess is datalink-layer header handling per packet.
	// Paper Figure 6 shows "datalink 8" (µs).
	DatalinkProcess sim.Duration
	// IPInput is IP input-path processing excluding the header checksum
	// (sanity checks, dispatch). Derived: ~100 instructions.
	IPInput sim.Duration
	// IPOutput is IP_Output header-fill cost.
	IPOutput sim.Duration
	// IPHeaderChecksum is the software checksum over the 20-byte IP header.
	IPHeaderChecksum sim.Duration
	// TCPInput / TCPOutput are fixed per-segment TCP costs excluding the
	// data checksum.
	TCPInput  sim.Duration
	TCPOutput sim.Duration
	// UDPProcess is fixed per-datagram UDP cost.
	UDPProcess sim.Duration
	// NectarTransport is fixed per-packet cost of the Nectar-specific
	// transport protocols (datagram/RMP/RRP); lean by design.
	NectarTransport sim.Duration
	// ChecksumBytesPerSec is the software Internet-checksum rate on the
	// CAB CPU. Calibrated: the paper attributes the Figure 7 TCP-vs-RMP
	// gap "mostly" to TCP software checksums; ~18 MB/s on a 16.5 MHz SPARC
	// (word loop with adds) reproduces that gap.
	ChecksumBytesPerSec int64

	// --- Host (Sun-4) costs (paper §6.1) ---

	// HostMessageCreate / HostMessageRead: Figure 6 attributes ~20 % of the
	// one-way latency to "the host creating and reading the message"
	// (fixed part; per-byte VME costs are charged separately).
	HostMessageCreate sim.Duration
	HostMessageRead   sim.Duration
	// HostPollIteration is one spin of a host polling loop on a host
	// condition variable (a VME read plus loop overhead).
	HostPollIteration sim.Duration
	// HostSyscall is a host system call (used by the blocking Wait path
	// and by the netdev usage level). ~1990 UNIX: tens of µs.
	HostSyscall sim.Duration
	// HostInterrupt is host-side interrupt dispatch to the CAB driver.
	HostInterrupt sim.Duration
	// HostStackPerPacket is the host-resident BSD network stack's
	// per-packet CPU cost (socket write, mbuf handling, IP+TCP/UDP on the
	// host) used by the §5.1 network-device level and the Ethernet
	// baseline. One constant serves both: the paper's 6.4 vs 7.2 Mbit/s
	// comparison is then explained mechanically by what differs — the
	// VME crossing vs the on-board interface.
	HostStackPerPacket sim.Duration

	// --- Ethernet baseline (paper §6.3) ---

	// EtherBytesPerSec is the Ethernet line rate (10 Mbit/s).
	EtherBytesPerSec int64
	// EtherDriverPerPacket is the on-board Ethernet interface's driver +
	// copy cost per packet (no VME crossing).
	EtherDriverPerPacket sim.Duration
}

// Default1990 returns the cost model calibrated to the paper's prototype
// (16.5 MHz SPARC CAB, Sun-4 hosts, 100 Mbit/s fiber, VME backplane).
func Default1990() *CostModel {
	return &CostModel{
		FiberBytesPerSec: 100_000_000 / 8, // 100 Mbit/s (§2.1)
		HubSetup:         700 * sim.Nanosecond,
		HubPerHop:        700 * sim.Nanosecond,

		VMEWord:           1 * sim.Microsecond, // §6.1
		VMEDMABytesPerSec: 30_000_000 / 8,      // §6.3
		VMEDMASetup:       8 * sim.Microsecond, // calibrated

		ContextSwitch:     20 * sim.Microsecond, // §3.1
		InterruptEntry:    4 * sim.Microsecond,  // calibrated (Fig 6)
		InterruptExit:     2 * sim.Microsecond,
		SchedulerDispatch: 3 * sim.Microsecond,

		DMASetup:           4 * sim.Microsecond,
		MemCopyBytesPerSec: 16_000_000,

		MailboxBeginPut: 6 * sim.Microsecond,
		MailboxEndPut:   6 * sim.Microsecond,
		MailboxBeginGet: 5 * sim.Microsecond,
		MailboxEndGet:   5 * sim.Microsecond,
		MailboxEnqueue:  3 * sim.Microsecond,
		HeapAlloc:       4 * sim.Microsecond,
		HeapFree:        3 * sim.Microsecond,
		SyncOp:          2 * sim.Microsecond,
		HostSignal:      4 * sim.Microsecond,

		DatalinkProcess:  8 * sim.Microsecond, // Figure 6
		IPInput:          7 * sim.Microsecond,
		IPOutput:         6 * sim.Microsecond,
		IPHeaderChecksum: 3 * sim.Microsecond,
		TCPInput:         12 * sim.Microsecond,
		TCPOutput:        12 * sim.Microsecond,
		UDPProcess:       8 * sim.Microsecond,
		NectarTransport:  5 * sim.Microsecond,

		ChecksumBytesPerSec: 18_000_000,

		HostMessageCreate: 14 * sim.Microsecond,
		HostMessageRead:   14 * sim.Microsecond,
		HostPollIteration: 3 * sim.Microsecond,
		HostSyscall:       60 * sim.Microsecond,
		HostInterrupt:     30 * sim.Microsecond,

		HostStackPerPacket:   1400 * sim.Microsecond, // calibrated: E5 anchors (6.4 / 7.2 Mbit/s)
		EtherBytesPerSec:     10_000_000 / 8,
		EtherDriverPerPacket: 260 * sim.Microsecond, // calibrated with HostStackPerPacket
	}
}

// Clone returns a deep copy, for ablations that perturb single costs.
func (c *CostModel) Clone() *CostModel {
	d := *c
	return &d
}

// FiberTime is the serialization time of n bytes on the fiber.
func (c *CostModel) FiberTime(n int) sim.Duration {
	return bytesTime(n, c.FiberBytesPerSec)
}

// VMEDMATime is the block-DMA time for n bytes across the VME bus.
func (c *CostModel) VMEDMATime(n int) sim.Duration {
	return bytesTime(n, c.VMEDMABytesPerSec)
}

// ChecksumTime is the software checksum time over n bytes on the CAB CPU.
func (c *CostModel) ChecksumTime(n int) sim.Duration {
	return bytesTime(n, c.ChecksumBytesPerSec)
}

// MemCopyTime is the CPU copy time for n bytes of CAB data memory.
func (c *CostModel) MemCopyTime(n int) sim.Duration {
	return bytesTime(n, c.MemCopyBytesPerSec)
}

// EtherTime is the serialization time of n bytes on the Ethernet baseline.
func (c *CostModel) EtherTime(n int) sim.Duration {
	return bytesTime(n, c.EtherBytesPerSec)
}

// VMEWords is the PIO cost of transferring n bytes word-by-word.
func (c *CostModel) VMEWords(n int) sim.Duration {
	words := (n + 3) / 4
	return sim.Duration(words) * c.VMEWord
}

func bytesTime(n int, bytesPerSec int64) sim.Duration {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return sim.Duration(int64(n) * sim.Second.Nanos() / bytesPerSec)
}
