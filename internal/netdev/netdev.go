// Package netdev implements the paper's network-device usage level
// (§5.1): the CAB is treated as a conventional network interface, and IP
// and higher protocols run on the host as usual. The device driver and a
// server thread on the CAB share a pool of buffers: to send a packet, the
// driver writes it into a free output buffer and notifies the server,
// which transmits it over Nectar; arriving packets are received into free
// input buffers and the driver is informed.
//
// The advantage of this level is binary compatibility; the price — paid
// in the paper's Figure 8 comparison (6.4 Mbit/s vs 24-28 Mbit/s for the
// protocol-engine level) — is per-packet host stack execution and a VME
// copy for every 1500-byte packet instead of one mapped write per
// message. The host-resident BSD stack is represented by its calibrated
// per-packet CPU cost (HostStackPerPacket); the driver, buffer pool,
// doorbells and frames are real.
package netdev

import (
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
)

// MTU is the interface MTU presented to the host stack, Ethernet-style
// (the level exists for binary compatibility with the familiar network
// services, so it inherits conventional packet sizes).
const MTU = 1500

// Driver is the host-side network-interface driver plus its CAB-side
// server thread.
type Driver struct {
	dl    *datalink.Layer
	rt    *mailbox.Runtime
	iface *hostif.IF

	outPool *mailbox.Mailbox // host -> CAB: packets to transmit
	inPool  *mailbox.Mailbox // CAB -> host: received packets

	txPackets, rxPackets uint64
}

// meta on an output packet: destination node.
type txMeta struct{ dst wire.NodeID }

// New installs the network-device level on a node. It coexists with the
// CAB-resident stacks (its frames use a dedicated datalink type).
func New(dl *datalink.Layer, rt *mailbox.Runtime, iface *hostif.IF) *Driver {
	d := &Driver{
		dl:      dl,
		rt:      rt,
		iface:   iface,
		outPool: rt.Create("netdev.out"),
		inPool:  rt.Create("netdev.in"),
	}
	d.outPool.SetCapacity(64 << 10)
	d.inPool.SetCapacity(64 << 10)
	dl.Register(wire.TypeRaw, d)
	rt.CAB().Sched.Fork("netdev-server", threads.SystemPriority, d.serverThread)
	return d
}

// Output hands one packet (the raw bytes produced by the host stack) to
// the interface: the driver copies it into a free output buffer in CAB
// memory (a VME PIO copy) and notifies the CAB server.
func (d *Driver) Output(ctx exec.Context, dst wire.NodeID, pkt []byte) {
	if len(pkt) > MTU {
		panic("netdev: packet exceeds MTU")
	}
	m := d.outPool.BeginPut(ctx, len(pkt))
	m.Write(ctx, 0, pkt) // the per-packet VME crossing
	m.Meta = &txMeta{dst: dst}
	d.outPool.EndPut(ctx, m)
}

// Input returns the next received packet, copied out of the input pool
// (the second VME crossing), blocking until one arrives.
func (d *Driver) Input(ctx exec.Context) []byte {
	m := d.inPool.BeginGetPoll(ctx)
	out := make([]byte, m.Len())
	m.Read(ctx, 0, out)
	d.inPool.EndGet(ctx, m)
	return out
}

// serverThread is the CAB-side server of §5.1, transmitting and receiving
// packets over Nectar on the driver's behalf.
func (d *Driver) serverThread(t *threads.Thread) {
	ctx := exec.OnCAB(t)
	for {
		m := d.outPool.BeginGet(ctx)
		if meta, ok := m.Meta.(*txMeta); ok {
			d.txPackets++
			_ = d.dl.Send(ctx, wire.TypeRaw, meta.dst, m.Data())
		}
		d.outPool.EndGet(ctx, m)
	}
}

// --- datalink.Protocol ---

// InputMailbox implements datalink.Protocol.
func (d *Driver) InputMailbox() *mailbox.Mailbox { return d.inPool }

// StartOfData implements datalink.Protocol.
func (d *Driver) StartOfData(t *threads.Thread, src wire.NodeID, hdr []byte) bool {
	return true
}

// EndOfData implements datalink.Protocol: the packet is already in an
// input-pool buffer; publish it and inform the driver.
func (d *Driver) EndOfData(t *threads.Thread, src wire.NodeID, m *mailbox.Msg) {
	ctx := exec.OnCAB(t)
	d.rxPackets++
	m.From = wire.MailboxAddr{Node: src}
	d.inPool.EndPut(ctx, m)
}

// Stats returns (packets transmitted, packets received).
func (d *Driver) Stats() (tx, rx uint64) { return d.txPackets, d.rxPackets }

// HostStack bundles the modeled host-resident protocol stack: per-packet
// CPU charges around real driver operations.
type HostStack struct {
	drv *Driver
}

// NewHostStack wraps a driver.
func NewHostStack(d *Driver) *HostStack { return &HostStack{drv: d} }

// SendStream pushes total bytes to dst through the host stack in
// MTU-sized packets, charging the stack's per-packet cost.
func (s *HostStack) SendStream(ctx exec.Context, dst wire.NodeID, total int) {
	buf := make([]byte, MTU)
	for sent := 0; sent < total; {
		n := total - sent
		if n > MTU {
			n = MTU
		}
		ctx.Compute(ctx.Cost().HostStackPerPacket)
		s.drv.Output(ctx, dst, buf[:n])
		sent += n
	}
}

// RecvStream consumes total bytes from the interface through the host
// stack.
func (s *HostStack) RecvStream(ctx exec.Context, total int) {
	for got := 0; got < total; {
		pkt := s.drv.Input(ctx)
		ctx.Compute(ctx.Cost().HostStackPerPacket)
		got += len(pkt)
	}
}
