package netdev

import (
	"bytes"
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/host"
	"nectar/internal/hw/hub"
	"nectar/internal/model"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

type node struct {
	cab  *cab.CAB
	host *host.Host
	drv  *Driver
}

func twoNodes(t *testing.T) (*sim.Kernel, *node, *node) {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	h := hub.New(k, cost, "hub", hub.DefaultPorts)
	mk := func(id wire.NodeID, port int) *node {
		c := cab.New(k, cost, id)
		ho := host.New(k, cost, "host", c)
		f := hostif.New(ho, c)
		c.ConnectFiber(fiber.NewLink(k, cost, "up", h.InPort(port)))
		h.ConnectOut(port, fiber.NewLink(k, cost, "down", c))
		rt := mailbox.NewRuntime(c)
		rt.AttachHost(f)
		dl := datalink.NewLayer(c, rt)
		return &node{cab: c, host: ho, drv: New(dl, rt, f)}
	}
	a := mk(1, 0)
	b := mk(2, 1)
	a.cab.SetRoute(2, []byte{1})
	b.cab.SetRoute(1, []byte{0})
	return k, a, b
}

func TestPacketRoundTrip(t *testing.T) {
	k, a, b := twoNodes(t)
	pkt := bytes.Repeat([]byte{0xAB}, 777)
	var got []byte
	b.host.Run("recv", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.host)
		got = b.drv.Input(ctx)
	})
	a.host.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.host)
		a.drv.Output(ctx, 2, pkt)
	})
	if err := k.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pkt) {
		t.Fatalf("got %d bytes, want %d", len(got), len(pkt))
	}
	tx, _ := a.drv.Stats()
	_, rx := b.drv.Stats()
	if tx != 1 || rx != 1 {
		t.Errorf("stats tx=%d rx=%d", tx, rx)
	}
}

func TestStreamOrderAndCompleteness(t *testing.T) {
	k, a, b := twoNodes(t)
	const n = 20
	var got []byte
	b.host.Run("recv", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.host)
		for i := 0; i < n; i++ {
			pkt := b.drv.Input(ctx)
			got = append(got, pkt[0])
		}
	})
	a.host.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.host)
		for i := byte(0); i < n; i++ {
			a.drv.Output(ctx, 2, []byte{i})
		}
	})
	if err := k.RunFor(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestOversizePacketPanics(t *testing.T) {
	k, a, _ := twoNodes(t)
	a.host.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.host)
		a.drv.Output(ctx, 2, make([]byte, MTU+1))
	})
	if err := k.RunFor(sim.Millisecond); err == nil {
		t.Error("oversize packet did not fail")
	}
}

func TestHostStackThroughputShape(t *testing.T) {
	// The host-resident stack must be far slower than the fiber allows:
	// the per-packet stack cost plus VME copies dominate (paper §6.3).
	k, a, b := twoNodes(t)
	const total = 64 << 10
	sa := NewHostStack(a.drv)
	sb := NewHostStack(b.drv)
	done := false
	var start, end sim.Time
	b.host.Run("recv", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.host)
		sb.RecvStream(ctx, total)
		end = th.Now()
		done = true
	})
	a.host.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.host)
		start = th.Now()
		sa.SendStream(ctx, 2, total)
	})
	for !done {
		if err := k.RunFor(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if k.Now() > sim.Time(10*sim.Second) {
			t.Fatal("stream stalled")
		}
	}
	mbps := float64(total) * 8 / sim.Duration(end-start).Seconds() / 1e6
	if mbps < 4 || mbps > 9 {
		t.Errorf("netdev stream = %.1f Mbit/s, want ~6.4 (paper)", mbps)
	}
}
