package sockets

import (
	"testing"

	"nectar/internal/proto/tcp"
	"nectar/internal/rt/exec"
)

func TestUnconnectedSocketErrors(t *testing.T) {
	sk := &Socket{}
	var ctx exec.Context // the error paths never touch the context
	if err := sk.Send(ctx, []byte("x")); err == nil {
		t.Error("send on unconnected socket succeeded")
	}
	if _, err := sk.Accept(ctx); err == nil {
		t.Error("accept on non-listening socket succeeded")
	}
	if sk.State() != tcp.Closed {
		t.Errorf("state = %v, want Closed", sk.State())
	}
}
