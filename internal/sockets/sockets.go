// Package sockets implements the paper's §5.2 Berkeley-socket emulation:
// "an emulation library will be provided for applications that can be
// re-linked", giving host processes the familiar connection-oriented API
// while transport protocol processing stays offloaded on the CAB.
//
// Blocking connection operations (connect, accept) cannot run in the
// host's doorbell interrupt context, so the library posts them to a
// CAB-resident socket server, which forks a worker thread per request —
// the paper's task model — and signals completion through a sync-style
// status word. Data transfer uses the TCP send-request mailbox and the
// connection's receive mailbox directly, so the fast path stays zero-copy
// shared memory with no system calls.
package sockets

import (
	"fmt"

	"nectar/internal/proto/tcp"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/rt/threads"
)

// API is the per-node socket library instance.
type API struct {
	tcp   *tcp.Layer
	rt    *mailbox.Runtime
	iface *hostif.IF
	pool  *syncs.Pool
}

// New creates the socket library for one node.
func New(t *tcp.Layer, rt *mailbox.Runtime, iface *hostif.IF, pool *syncs.Pool) *API {
	return &API{tcp: t, rt: rt, iface: iface, pool: pool}
}

// Socket is one connection endpoint, usable from host processes (the
// intended §5.2 clients) and CAB tasks alike.
type Socket struct {
	api  *API
	conn *tcp.Conn
	ln   *tcp.Listener
}

// completion codes passed through the status sync.
const (
	stOK   uint32 = 1
	stFail uint32 = 2
)

// runOnCAB ships a blocking operation to a fresh CAB worker thread (host
// callers) or runs it inline (CAB callers), then waits for its status.
func (a *API) runOnCAB(ctx exec.Context, name string, op func(ct exec.Context) bool) error {
	if !ctx.IsHost() {
		if !op(ctx) {
			return fmt.Errorf("sockets: %s failed", name)
		}
		return nil
	}
	status := a.pool.Alloc(ctx)
	a.iface.PostToCAB(ctx, "socket."+name, func(t *threads.Thread) {
		// Interrupt context: fork the worker that may block.
		a.rt.CAB().Sched.Fork("socket-"+name, threads.SystemPriority, func(w *threads.Thread) {
			wctx := exec.OnCAB(w)
			if op(wctx) {
				status.Write(wctx, stOK)
			} else {
				status.Write(wctx, stFail)
			}
		})
	})
	if status.Read(ctx) != stOK {
		return fmt.Errorf("sockets: %s failed", name)
	}
	return nil
}

// Connect opens a connection to ip:port, like connect(2).
func (a *API) Connect(ctx exec.Context, ip uint32, port uint16) (*Socket, error) {
	sk := &Socket{api: a}
	err := a.runOnCAB(ctx, "connect", func(ct exec.Context) bool {
		c, err := a.tcp.Connect(ct, ip, port)
		if err != nil {
			return false
		}
		sk.conn = c
		return true
	})
	if err != nil {
		return nil, err
	}
	return sk, nil
}

// Listen binds a listening socket on port, like socket+bind+listen(2).
func (a *API) Listen(port uint16) (*Socket, error) {
	ln, err := a.tcp.Listen(port)
	if err != nil {
		return nil, err
	}
	return &Socket{api: a, ln: ln}, nil
}

// Accept waits for an inbound connection, like accept(2).
func (sk *Socket) Accept(ctx exec.Context) (*Socket, error) {
	if sk.ln == nil {
		return nil, fmt.Errorf("sockets: accept on a non-listening socket")
	}
	out := &Socket{api: sk.api}
	err := sk.api.runOnCAB(ctx, "accept", func(ct exec.Context) bool {
		out.conn = sk.ln.Accept(ct)
		return out.conn != nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Send queues data on the connection, like send(2). From a host process
// the bytes cross the VME bus once, into the TCP send-request mailbox.
func (sk *Socket) Send(ctx exec.Context, data []byte) error {
	if sk.conn == nil {
		return fmt.Errorf("sockets: send on an unconnected socket")
	}
	sk.conn.Send(ctx, data)
	return nil
}

// Recv returns the next chunk of received data, like recv(2); nil means
// the peer closed (EOF). Host callers poll the mapped receive mailbox —
// the no-system-call fast path.
func (sk *Socket) Recv(ctx exec.Context) []byte {
	if sk.conn == nil {
		return nil
	}
	var m *mailbox.Msg
	if ctx.IsHost() {
		m = sk.conn.RecvPoll(ctx)
	} else {
		m = sk.conn.Recv(ctx)
	}
	if m == nil {
		return nil
	}
	out := make([]byte, m.Len())
	m.Read(ctx, 0, out)
	sk.conn.RecvDone(ctx, m)
	return out
}

// Close shuts the connection down, like close(2).
func (sk *Socket) Close(ctx exec.Context) error {
	if sk.conn == nil {
		return nil
	}
	return sk.api.runOnCAB(ctx, "close", func(ct exec.Context) bool {
		sk.conn.Close(ct)
		return true
	})
}

// State exposes the underlying connection state (diagnostics).
func (sk *Socket) State() tcp.State {
	if sk.conn == nil {
		return tcp.Closed
	}
	return sk.conn.State()
}
