// Package nectarine implements the Nectar application interface (paper
// §3.5): "a library linked into an application's address space" providing
// a procedural interface to the Nectar communication protocols and direct
// access to mailboxes in CAB memory, presenting the same interface on both
// the CAB and the host.
//
// Nectarine hides the host-CAB plumbing: an Endpoint carries the caller's
// execution context, so the same application code runs as a host process
// or as a CAB-resident task — the paper's application-level communication
// engine usage (§5.3).
package nectarine

import (
	"fmt"

	"nectar/internal/hw/host"
	"nectar/internal/proto/nectar"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/rt/threads"
)

// API is the per-node Nectarine library instance.
type API struct {
	mrt   *mailbox.Runtime
	pool  *syncs.Pool
	trans *nectar.Transports
	host  *host.Host
	tasks map[string]func(ep *Endpoint) // remotely startable tasks (§3.5)
}

// New creates the Nectarine instance for one node and starts its control
// task (the service behind remote mailbox/task creation, §3.5).
func New(mrt *mailbox.Runtime, pool *syncs.Pool, trans *nectar.Transports, h *host.Host) *API {
	a := &API{mrt: mrt, pool: pool, trans: trans, host: h, tasks: map[string]func(ep *Endpoint){}}
	a.startControl()
	return a
}

// Endpoint is an application's handle: a task (host process or CAB
// thread) plus its node's Nectarine instance.
type Endpoint struct {
	api      *API
	ctx      exec.Context
	ctlReply *mailbox.Mailbox // lazily created reply box for control calls
}

// RunOnHost starts an application task as a host process and hands it an
// Endpoint.
func (a *API) RunOnHost(name string, fn func(ep *Endpoint)) *threads.Thread {
	return a.host.Run(name, func(t *threads.Thread) {
		fn(&Endpoint{api: a, ctx: exec.OnHost(t, a.host)})
	})
}

// RunOnCAB starts an application task as an application-priority CAB
// thread (paper §5.3: "application-specific code can be executed on the
// CAB") and hands it an Endpoint.
func (a *API) RunOnCAB(name string, fn func(ep *Endpoint)) *threads.Thread {
	return a.mrt.CAB().Sched.Fork(name, threads.AppPriority, func(t *threads.Thread) {
		fn(&Endpoint{api: a, ctx: exec.OnCAB(t)})
	})
}

// Ctx exposes the raw execution context for interop with lower layers.
func (ep *Endpoint) Ctx() exec.Context { return ep.ctx }

// Thread returns the endpoint's thread.
func (ep *Endpoint) Thread() *threads.Thread { return ep.ctx.T }

// OnHost reports whether the task runs on the host.
func (ep *Endpoint) OnHost() bool { return ep.ctx.IsHost() }

// NewMailbox creates a mailbox on this node.
func (ep *Endpoint) NewMailbox(name string) *mailbox.Mailbox {
	return ep.api.mrt.Create(name)
}

// NewSync allocates a sync from the caller's pool.
func (ep *Endpoint) NewSync() *syncs.Sync {
	return ep.api.pool.Alloc(ep.ctx)
}

// --- Message construction/consumption (two-phase mailbox interface) ---

// Put writes data into box as one message (Begin_Put/Write/End_Put).
func (ep *Endpoint) Put(box *mailbox.Mailbox, data []byte) {
	m := box.BeginPut(ep.ctx, len(data))
	m.Write(ep.ctx, 0, data)
	box.EndPut(ep.ctx, m)
}

// Get removes the next message from box and copies it out (Begin_Get/
// Read/End_Get), blocking until one arrives.
func (ep *Endpoint) Get(box *mailbox.Mailbox) []byte {
	m := box.BeginGet(ep.ctx)
	return ep.consume(box, m)
}

// GetPoll is Get with the spinning low-latency wait.
func (ep *Endpoint) GetPoll(box *mailbox.Mailbox) []byte {
	m := box.BeginGetPoll(ep.ctx)
	return ep.consume(box, m)
}

func (ep *Endpoint) consume(box *mailbox.Mailbox, m *mailbox.Msg) []byte {
	out := make([]byte, m.Len())
	m.Read(ep.ctx, 0, out)
	box.EndGet(ep.ctx, m)
	return out
}

// --- Transport operations ---

// SendDatagram sends an unreliable datagram to the remote mailbox dst.
func (ep *Endpoint) SendDatagram(dst wire.MailboxAddr, data []byte) {
	if !ep.OnHost() {
		_ = ep.api.trans.Datagram.SendDirect(ep.ctx, dst, 0, data)
		return
	}
	ep.api.trans.Datagram.Send(ep.ctx, dst, 0, data, nil)
}

// SendReliable sends data over RMP and blocks until it is acknowledged,
// returning the transport status (nectar.StatusOK on success).
func (ep *Endpoint) SendReliable(dst wire.MailboxAddr, data []byte) uint32 {
	if !ep.OnHost() {
		return ep.api.trans.RMP.SendBlocking(ep.ctx, dst, 0, data)
	}
	st := ep.NewSync()
	ep.api.trans.RMP.Send(ep.ctx, dst, 0, data, st)
	return st.Read(ep.ctx)
}

// Call performs a request-response (RPC) exchange with the service
// mailbox dst: it sends data, waits for the reply, and returns the reply
// payload. replyBox is the caller's reply mailbox (create one per client
// task).
func (ep *Endpoint) Call(dst wire.MailboxAddr, data []byte, replyBox *mailbox.Mailbox) ([]byte, error) {
	st := ep.NewSync()
	ep.api.trans.RRP.Call(ep.ctx, dst, data, replyBox, st)
	if s := st.Read(ep.ctx); s != nectar.StatusOK {
		return nil, fmt.Errorf("nectarine: call failed with status %d", s)
	}
	m := replyBox.BeginGetPoll(ep.ctx)
	return ep.consume(replyBox, m), nil
}

// Serve receives one request from a service mailbox, applies fn, and
// sends the reply. It returns after serving one request; servers loop.
func (ep *Endpoint) Serve(service *mailbox.Mailbox, fn func(req []byte) []byte) {
	m := service.BeginGet(ep.ctx)
	req := make([]byte, m.Len())
	m.Read(ep.ctx, 0, req)
	reply := fn(req)
	ep.api.trans.RRP.Reply(ep.ctx, m, reply)
	service.EndGet(ep.ctx, m)
}
