package nectarine

import (
	"encoding/binary"
	"fmt"

	"nectar/internal/proto/nectar"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
)

// ControlBox is the well-known mailbox ID of every node's Nectarine
// control task, which implements paper §3.5: Nectarine "allows
// applications to create mailboxes and tasks on other hosts or CABs".
const ControlBox wire.MailboxID = 1000

// Control-request opcodes.
const (
	ctlCreateMailbox byte = 'M'
	ctlStartTask     byte = 'T'
)

// RegisterTask makes fn startable by name from remote nodes (closures
// cannot travel over the network, so tasks are registered on the node
// that will run them and started remotely by name).
func (a *API) RegisterTask(name string, fn func(ep *Endpoint)) {
	a.tasks[name] = fn
}

// startControl launches the control task serving remote create/start
// requests. Called once from New.
func (a *API) startControl() {
	ctl := a.mrt.CreateWithID(ControlBox, "nectarine.ctl")
	a.mrt.CAB().Sched.Fork("nectarine-ctl", threads.SystemPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		for {
			m := ctl.BeginGet(ctx)
			reply := a.handleControl(ctx, m.Data())
			a.trans.RRP.Reply(ctx, m, reply)
			ctl.EndGet(ctx, m)
		}
	})
}

// handleControl executes one control request and builds the reply.
func (a *API) handleControl(ctx exec.Context, req []byte) []byte {
	if len(req) < 1 {
		return []byte{0}
	}
	switch req[0] {
	case ctlCreateMailbox:
		mb := a.mrt.Create(string(req[1:]))
		out := make([]byte, 3)
		out[0] = 1
		binary.BigEndian.PutUint16(out[1:], uint16(mb.ID()))
		return out
	case ctlStartTask:
		name := string(req[1:])
		fn, ok := a.tasks[name]
		if !ok {
			return []byte{0}
		}
		a.RunOnCAB(name, fn)
		return []byte{1}
	}
	return []byte{0}
}

// CreateRemoteMailbox creates a mailbox on another node and returns its
// network-wide address (paper §3.5). The caller can then pass the address
// to transports or remote tasks.
func (ep *Endpoint) CreateRemoteMailbox(node wire.NodeID, name string) (wire.MailboxAddr, error) {
	reply, err := ep.control(node, append([]byte{ctlCreateMailbox}, name...))
	if err != nil {
		return wire.MailboxAddr{}, err
	}
	if len(reply) != 3 || reply[0] != 1 {
		return wire.MailboxAddr{}, fmt.Errorf("nectarine: remote mailbox creation refused")
	}
	return wire.MailboxAddr{Node: node, Box: wire.MailboxID(binary.BigEndian.Uint16(reply[1:]))}, nil
}

// StartRemoteTask starts a task registered (by name) on another node's
// Nectarine instance, executing on that node's CAB (paper §3.5).
func (ep *Endpoint) StartRemoteTask(node wire.NodeID, name string) error {
	reply, err := ep.control(node, append([]byte{ctlStartTask}, name...))
	if err != nil {
		return err
	}
	if len(reply) != 1 || reply[0] != 1 {
		return fmt.Errorf("nectarine: no task %q registered on node %d", name, node)
	}
	return nil
}

// control performs one request-response exchange with a remote control
// task, lazily creating the caller's control-reply mailbox.
func (ep *Endpoint) control(node wire.NodeID, req []byte) ([]byte, error) {
	if ep.ctlReply == nil {
		ep.ctlReply = ep.NewMailbox("nectarine.ctlreply")
	}
	st := ep.NewSync()
	ep.api.trans.RRP.Call(ep.ctx, wire.MailboxAddr{Node: node, Box: ControlBox}, req, ep.ctlReply, st)
	if s := st.Read(ep.ctx); s != nectar.StatusOK {
		return nil, fmt.Errorf("nectarine: control call to node %d failed with status %d", node, s)
	}
	m := ep.ctlReply.BeginGetPoll(ep.ctx)
	out := make([]byte, m.Len())
	m.Read(ep.ctx, 0, out)
	ep.ctlReply.EndGet(ep.ctx, m)
	return out, nil
}
