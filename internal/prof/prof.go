// Package prof is the runtime performance observatory: a low-overhead
// wall-clock profiling layer for the simulator itself. internal/obs
// observes the *simulated* system on virtual time; prof observes the
// *simulator* on wall time — where the real seconds of a sharded run go
// (compute inside safe windows, spinning or parked at the window barrier,
// draining cross-shard outboxes, choosing the next window), the same
// methodology the paper's Figure 6 applies to a TCP send, pointed back at
// the engine that reproduces it.
//
// Design rules, in priority order:
//
//   - Provably zero-cost when disabled. Every collector type is
//     nil-receiver tolerant; the sharded scheduler holds nil pointers
//     until profiling is enabled, so the disabled hot path is a nil check
//     and the kernel/barrier paths stay at exactly 0 allocs (guarded by
//     AllocsPerRun tests here and in internal/sim).
//   - Cheap when enabled. All aggregation is fixed-size arithmetic on
//     preallocated structs: log2 bucket histograms, power-of-two
//     rescaling timelines, plain field accumulation. Nothing on the
//     per-window path allocates; the target is <5% overhead on a
//     barrier-dominated run.
//   - Deterministically renderable. Report marshals with a fixed field
//     order (the same canonical-JSON discipline as internal/obs
//     snapshots), so two identical runs produce structurally identical
//     profiles; only the measured wall-clock magnitudes differ.
//
// This package is inside the determinism contract (nectar-vet's walltime
// analyzer covers it) precisely because it is the one place wall-clock
// readings are legitimate: the two time.* call sites below carry reasoned
// //nectar:allow-walltime waivers, and the waiver inventory check in CI
// pins them here.
package prof

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// epoch anchors every reading: all timestamps handled by this package are
// monotonic nanosecond deltas from process start, never absolute wall
// times, so arithmetic between any two readings is safe.
var epoch = time.Now() //nectar:allow-walltime profiler epoch: readings are monotonic deltas, never absolute times

// nowNanos is the profiler's clock: monotonic nanoseconds since the
// process epoch. It is the single wall-clock sampling point of the
// package (and of the whole deterministic tree).
func nowNanos() int64 {
	return int64(time.Since(epoch)) //nectar:allow-walltime wall-clock sampling is the profiler's purpose
}

// ---------------------------------------------------------------------
// Log2 histogram
// ---------------------------------------------------------------------

// Hist accumulates non-negative int64 samples (nanoseconds or counts)
// into log2 buckets. Observe is allocation-free; quantiles are derived at
// export time with bucket resolution, clamped to the observed extrema —
// the same scheme as obs.Histogram, duplicated here so the collector
// stays free of simulation-facing dependencies.
type Hist struct {
	buckets [65]uint64 // bucket i holds samples with bits.Len64(v) == i
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// Observe records one sample (negatives clamp to zero).
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// quantile returns an upper bound for the q-quantile at bucket
// resolution, clamped to [min, max].
func (h *Hist) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			var ub int64
			if i > 0 {
				ub = int64(uint64(1)<<uint(i) - 1)
			}
			if ub < h.min {
				ub = h.min
			}
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// HistStats is the exported summary of a Hist. Values are in the unit
// the embedding field names (microseconds for the *_us fields of Report,
// raw counts for events_per_window).
type HistStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Stats summarizes the histogram, dividing every value by div (1e3 turns
// nanosecond samples into microsecond stats; 1 keeps counts).
func (h *Hist) Stats(div float64) HistStats {
	if h == nil || div == 0 {
		return HistStats{}
	}
	return HistStats{
		Count: h.count,
		Sum:   float64(h.sum) / div,
		Min:   float64(h.min) / div,
		P50:   float64(h.quantile(0.50)) / div,
		P90:   float64(h.quantile(0.90)) / div,
		P99:   float64(h.quantile(0.99)) / div,
		Max:   float64(h.max) / div,
	}
}

// ---------------------------------------------------------------------
// Per-shard activity timeline
// ---------------------------------------------------------------------

// timelineBuckets is the fixed resolution of a shard activity timeline.
const timelineBuckets = 256

// timeline records busy wall-time per fixed-width bucket since the
// profile epoch. When an interval lands past the last bucket the whole
// timeline rescales by merging adjacent pairs and doubling the bucket
// width (HDR-style), so memory stays constant for arbitrarily long runs
// while resolution degrades gracefully.
type timeline struct {
	widthNs int64 // nanoseconds per bucket, power of two
	busyNs  [timelineBuckets]int64
}

// initialTimelineWidth is 65.536us per bucket: a 256-bucket timeline
// covers ~16.8ms before its first rescale, which matches the wall clock
// of the stock pdes experiment within one doubling.
const initialTimelineWidth = 1 << 16

// add accrues the busy interval [t0, t1) (nanos relative to the profile
// start) into the timeline, splitting it across bucket boundaries.
func (tl *timeline) add(t0, t1 int64) {
	if t1 <= t0 {
		return
	}
	if t0 < 0 {
		t0 = 0
	}
	if tl.widthNs == 0 {
		tl.widthNs = initialTimelineWidth
	}
	for t0 < t1 {
		i := t0 / tl.widthNs
		for i >= timelineBuckets {
			tl.rescale()
			i = t0 / tl.widthNs
		}
		end := (i + 1) * tl.widthNs
		if end > t1 {
			end = t1
		}
		tl.busyNs[i] += end - t0
		t0 = end
	}
}

// rescale halves the resolution: bucket i becomes buckets 2i + 2i+1.
func (tl *timeline) rescale() {
	for i := 0; i < timelineBuckets/2; i++ {
		tl.busyNs[i] = tl.busyNs[2*i] + tl.busyNs[2*i+1]
	}
	for i := timelineBuckets / 2; i < timelineBuckets; i++ {
		tl.busyNs[i] = 0
	}
	tl.widthNs *= 2
}

// ---------------------------------------------------------------------
// Collectors
// ---------------------------------------------------------------------

// Worker is the per-shard collector. Exactly one worker goroutine writes
// it during windows (the scheduler only reads it between runs, behind the
// worker-join barrier), so all fields are plain — the same single-writer
// discipline as the shard kernels themselves.
type Worker struct {
	shard  int
	baseNs int64 // profile start, for timeline bucketing

	computeNs int64  // wall time inside runBounded for published windows
	events    uint64 // kernel dispatches inside those windows
	windows   uint64 // published windows executed
	spinNs    int64  // barrier waits resolved by spinning
	parkNs    int64  // barrier waits that parked on the wake channel
	parks     uint64 // how many waits parked
	waits     uint64 // total barrier waits

	tl timeline
}

// Now samples the profiler clock; on a nil receiver it returns 0 without
// reading the clock, so the disabled barrier path stays a nil check.
func (w *Worker) Now() int64 {
	if w == nil {
		return 0
	}
	return nowNanos()
}

// Wait accrues one completed barrier wait that started at t0, classified
// by whether the worker had to park on its wake channel. It returns its
// end sample: passing it as the next phase's start makes the worker's
// intervals tile its wall clock exactly (stopwatch chaining), so the
// collector's own bookkeeping is attributed to a phase instead of
// leaking into unaccounted gaps.
func (w *Worker) Wait(t0 int64, parked bool) int64 {
	if w == nil {
		return 0
	}
	t1 := nowNanos()
	if parked {
		w.parkNs += t1 - t0
		w.parks++
	} else {
		w.spinNs += t1 - t0
	}
	w.waits++
	return t1
}

// Compute accrues one published window's execution that started at t0 and
// dispatched events kernel events, and marks the interval busy on the
// shard's timeline. Returns its end sample (stopwatch chaining).
func (w *Worker) Compute(t0 int64, events uint64) int64 {
	if w == nil {
		return 0
	}
	t1 := nowNanos()
	w.computeNs += t1 - t0
	w.events += events
	w.windows++
	w.tl.add(t0-w.baseNs, t1-w.baseNs)
	return t1
}

// Profile is the run-level collector, owned and written by the coupling
// scheduler goroutine (workers write only their own Worker structs).
type Profile struct {
	startNs int64
	workers []*Worker

	runs        uint64
	wallNs      int64 // accumulated wall time inside Coupling.run
	spawnJoinNs int64 // starting and joining the shard workers
	chooseNs    int64 // computing NET, the safe bound, and the active set
	barrierNs   int64 // publishing windows and awaiting worker completion
	drainNs     int64 // injecting buffered cross-shard messages

	windows       uint64
	multiWindows  uint64
	inlineWindows uint64

	// Inline windows (one active shard) run on the scheduler goroutine;
	// their cost is attributed per shard here, not in Worker, so every
	// field of this struct keeps a single writer.
	inlineNs     []int64
	inlineEvents []uint64
	inlineTl     []timeline

	drainInj   []uint64 // per source shard
	drainBytes []uint64 // per source shard

	winSpan   Hist // safe-window width beyond the earliest event, virtual ns
	lookahead Hist // per-gateway EarliestOutput(net) - net, virtual ns
	winEvents Hist // kernel dispatches per window
}

// New creates a profile for a coupling of the given shard count.
func New(shards int) *Profile {
	p := &Profile{startNs: nowNanos()}
	p.workers = make([]*Worker, shards)
	for i := range p.workers {
		p.workers[i] = &Worker{shard: i, baseNs: p.startNs}
	}
	p.inlineNs = make([]int64, shards)
	p.inlineEvents = make([]uint64, shards)
	p.inlineTl = make([]timeline, shards)
	p.drainInj = make([]uint64, shards)
	p.drainBytes = make([]uint64, shards)
	return p
}

// Shards returns the number of per-shard collectors.
func (p *Profile) Shards() int {
	if p == nil {
		return 0
	}
	return len(p.workers)
}

// Worker returns shard i's collector (nil when the profile is nil or i is
// out of range, which downstream methods tolerate).
func (p *Profile) Worker(i int) *Worker {
	if p == nil || i < 0 || i >= len(p.workers) {
		return nil
	}
	return p.workers[i]
}

// Now samples the profiler clock (0 on a nil profile).
func (p *Profile) Now() int64 {
	if p == nil {
		return 0
	}
	return nowNanos()
}

// RunEnd accrues one Coupling.run invocation that started at t0.
func (p *Profile) RunEnd(t0 int64) {
	if p == nil {
		return
	}
	p.wallNs += nowNanos() - t0
	p.runs++
}

// SpawnJoin accrues worker start/stop overhead that started at t0 and
// returns its end sample (stopwatch chaining: the scheduler passes each
// phase's end as the next phase's start, so the phase intervals tile the
// run's wall clock exactly and AccountedFraction stays near 1 even when
// windows last microseconds).
func (p *Profile) SpawnJoin(t0 int64) int64 {
	if p == nil {
		return 0
	}
	t1 := nowNanos()
	p.spawnJoinNs += t1 - t0
	return t1
}

// Choose accrues one window-selection phase that started at t0: spanNs is
// the safe window's virtual width beyond the earliest event (bound -
// minNET), active the number of shards with events inside it. Returns its
// end sample (stopwatch chaining).
func (p *Profile) Choose(t0, spanNs int64, active int) int64 {
	if p == nil {
		return 0
	}
	t1 := nowNanos()
	p.chooseNs += t1 - t0
	p.winSpan.Observe(spanNs)
	p.windows++
	if active > 1 {
		p.multiWindows++
	}
	return t1
}

// ChooseAbort folds a window-selection phase that ended without a window
// (idle, horizon reached, or stall error) into the choose time.
func (p *Profile) ChooseAbort(t0 int64) {
	if p == nil {
		return
	}
	p.chooseNs += nowNanos() - t0
}

// Lookahead records one gateway's effective lookahead (virtual ns) during
// window selection.
func (p *Profile) Lookahead(ns int64) {
	if p == nil {
		return
	}
	p.lookahead.Observe(ns)
}

// Barrier accrues one publish-and-await phase that started at t0 and
// returns its end sample (stopwatch chaining).
func (p *Profile) Barrier(t0 int64) int64 {
	if p == nil {
		return 0
	}
	t1 := nowNanos()
	p.barrierNs += t1 - t0
	return t1
}

// Inline accrues one single-active-shard window executed inline on the
// scheduler goroutine for the given shard, dispatching events events.
// Returns its end sample (stopwatch chaining).
func (p *Profile) Inline(t0 int64, shard int, events uint64) int64 {
	if p == nil {
		return 0
	}
	t1 := nowNanos()
	p.inlineNs[shard] += t1 - t0
	p.inlineEvents[shard] += events
	p.inlineWindows++
	p.inlineTl[shard].add(t0-p.startNs, t1-p.startNs)
	return t1
}

// WindowEvents records the total kernel dispatches of one window.
func (p *Profile) WindowEvents(n uint64) {
	if p == nil {
		return
	}
	p.winEvents.Observe(int64(n))
}

// DrainOut attributes n buffered injections totalling bytes wire bytes to
// their source shard.
func (p *Profile) DrainOut(src int, n, bytes uint64) {
	if p == nil {
		return
	}
	p.drainInj[src] += n
	p.drainBytes[src] += bytes
}

// Drain accrues one outbox-drain phase that started at t0 and returns its
// end sample — the start of the next window's choose phase.
func (p *Profile) Drain(t0 int64) int64 {
	if p == nil {
		return 0
	}
	t1 := nowNanos()
	p.drainNs += t1 - t0
	return t1
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

// SchedReport is the scheduler-goroutine phase breakdown. Its phases are
// disjoint intervals of the scheduler thread, so their sum plus the
// shards' published-window compute (which the scheduler spends awaiting
// inside barrier_seconds) accounts for the run's wall clock.
type SchedReport struct {
	SpawnJoinSeconds float64 `json:"spawn_join_seconds"`
	ChooseSeconds    float64 `json:"choose_seconds"`
	BarrierSeconds   float64 `json:"barrier_seconds"`
	InlineSeconds    float64 `json:"inline_compute_seconds"`
	DrainSeconds     float64 `json:"drain_seconds"`
	DrainInjections  uint64  `json:"drain_injections"`
	DrainBytes       uint64  `json:"drain_bytes"`
}

// ShardReport is one shard's breakdown: where its worker's wall clock
// went (compute vs spin vs park), plus the inline windows the scheduler
// ran on its behalf and its share of cross-shard traffic.
type ShardReport struct {
	Shard              int     `json:"shard"`
	ComputeSeconds     float64 `json:"compute_seconds"`
	InlineSeconds      float64 `json:"inline_compute_seconds"`
	SpinWaitSeconds    float64 `json:"spin_wait_seconds"`
	ParkWaitSeconds    float64 `json:"park_wait_seconds"`
	Waits              uint64  `json:"waits"`
	Parks              uint64  `json:"parks"`
	Windows            uint64  `json:"windows"`
	Events             uint64  `json:"events"`
	DrainOutInjections uint64  `json:"drain_out_injections"`
	DrainOutBytes      uint64  `json:"drain_out_bytes"`
	// Utilization is the shard's busy fraction of the profiled wall
	// clock: (compute + inline) / wall.
	Utilization float64 `json:"utilization"`
}

// ShardTimeline is one shard's busy-time series: BusyNs[i] is the wall
// time shard work (published or inline windows) occupied during bucket i
// of width BucketNs, starting at the profile epoch. Trailing all-zero
// buckets are trimmed.
type ShardTimeline struct {
	Shard    int     `json:"shard"`
	BucketNs int64   `json:"bucket_ns"`
	BusyNs   []int64 `json:"busy_ns"`
}

// Report is the exported profile: the `profile` section of
// BENCH_pdes.json and the input of cmd/nectar-prof. Field order is the
// canonical serialization order (encoding/json preserves struct order),
// so reports are structurally deterministic.
type Report struct {
	WallSeconds float64 `json:"wall_seconds"`
	Runs        uint64  `json:"runs"`
	Shards      int     `json:"shards"`

	Windows       uint64 `json:"windows"`
	MultiWindows  uint64 `json:"multi_windows"`
	InlineWindows uint64 `json:"inline_windows"`

	Sched     SchedReport   `json:"sched"`
	PerShard  []ShardReport `json:"per_shard"`
	Imbalance float64       `json:"imbalance"`
	// AccountedFraction is (spawn_join + choose + barrier + inline +
	// drain) / wall: how much of the scheduler thread's wall clock the
	// phase breakdown explains. The CI smoke job requires >= 0.95.
	AccountedFraction float64 `json:"accounted_fraction"`

	WindowSpanUS    HistStats `json:"window_span_us"`
	LookaheadUS     HistStats `json:"lookahead_us"`
	EventsPerWindow HistStats `json:"events_per_window"`

	// VirtualNS is the virtual time the profiled runs covered, filled by
	// the embedder; it turns the window count into a rate (windows per
	// virtual millisecond) that is comparable across machines — the
	// at-a-glance lookahead-regression signal.
	VirtualNS int64 `json:"virtual_ns,omitempty"`

	// Sampling counters filled by the embedder (internal/bench): total
	// kernel dispatches across shard kernels and wire-path traffic.
	KernelDispatches uint64 `json:"kernel_dispatches,omitempty"`
	WireFrames       uint64 `json:"wire_frames,omitempty"`
	WireBytes        uint64 `json:"wire_bytes,omitempty"`
	CrossShardFrames uint64 `json:"cross_shard_frames,omitempty"`

	Timeline []ShardTimeline `json:"timeline,omitempty"`
}

const nsPerSec = 1e9

// Report exports the profile. It must only be called when no Coupling.run
// is in flight (the workers' fields are read un-synchronized; the
// worker-join barrier at the end of each run orders them).
func (p *Profile) Report() *Report {
	if p == nil {
		return nil
	}
	r := &Report{
		WallSeconds:   float64(p.wallNs) / nsPerSec,
		Runs:          p.runs,
		Shards:        len(p.workers),
		Windows:       p.windows,
		MultiWindows:  p.multiWindows,
		InlineWindows: p.inlineWindows,
		Sched: SchedReport{
			SpawnJoinSeconds: float64(p.spawnJoinNs) / nsPerSec,
			ChooseSeconds:    float64(p.chooseNs) / nsPerSec,
			BarrierSeconds:   float64(p.barrierNs) / nsPerSec,
			DrainSeconds:     float64(p.drainNs) / nsPerSec,
		},
		WindowSpanUS:    p.winSpan.Stats(1e3),
		LookaheadUS:     p.lookahead.Stats(1e3),
		EventsPerWindow: p.winEvents.Stats(1),
	}
	var inlineTotal int64
	var busyMax, busySum int64
	for i, w := range p.workers {
		inlineTotal += p.inlineNs[i]
		busy := w.computeNs + p.inlineNs[i]
		if busy > busyMax {
			busyMax = busy
		}
		busySum += busy
		sr := ShardReport{
			Shard:              i,
			ComputeSeconds:     float64(w.computeNs) / nsPerSec,
			InlineSeconds:      float64(p.inlineNs[i]) / nsPerSec,
			SpinWaitSeconds:    float64(w.spinNs) / nsPerSec,
			ParkWaitSeconds:    float64(w.parkNs) / nsPerSec,
			Waits:              w.waits,
			Parks:              w.parks,
			Windows:            w.windows,
			Events:             w.events + p.inlineEvents[i],
			DrainOutInjections: p.drainInj[i],
			DrainOutBytes:      p.drainBytes[i],
		}
		if p.wallNs > 0 {
			sr.Utilization = float64(busy) / float64(p.wallNs)
		}
		r.PerShard = append(r.PerShard, sr)
		r.Sched.DrainInjections += p.drainInj[i]
		r.Sched.DrainBytes += p.drainBytes[i]

		// Timeline: merge the worker's published-window activity with the
		// scheduler's inline activity for the shard, at the coarser width.
		tl := mergeTimelines(&w.tl, &p.inlineTl[i])
		if len(tl.BusyNs) > 0 {
			tl.Shard = i
			r.Timeline = append(r.Timeline, tl)
		}
	}
	r.Sched.InlineSeconds = float64(inlineTotal) / nsPerSec
	if busyMax > 0 && busySum > 0 {
		mean := float64(busySum) / float64(len(p.workers))
		r.Imbalance = float64(busyMax) / mean
	}
	if p.wallNs > 0 {
		accounted := p.spawnJoinNs + p.chooseNs + p.barrierNs + inlineTotal + p.drainNs
		r.AccountedFraction = float64(accounted) / float64(p.wallNs)
	}
	return r
}

// mergeTimelines folds two timelines into one exported series at the
// coarser bucket width, trimming trailing zeros.
func mergeTimelines(a, b *timeline) ShardTimeline {
	wa, wb := a.widthNs, b.widthNs
	w := wa
	if wb > w {
		w = wb
	}
	if w == 0 {
		return ShardTimeline{}
	}
	coarsen := func(tl *timeline) [timelineBuckets]int64 {
		out := tl.busyNs
		for tl.widthNs != 0 && tl.widthNs < w {
			for i := 0; i < timelineBuckets/2; i++ {
				out[i] = out[2*i] + out[2*i+1]
			}
			for i := timelineBuckets / 2; i < timelineBuckets; i++ {
				out[i] = 0
			}
			tl = &timeline{widthNs: tl.widthNs * 2, busyNs: out}
		}
		return out
	}
	ba, bb := coarsen(a), coarsen(b)
	last := -1
	var busy [timelineBuckets]int64
	for i := range busy {
		busy[i] = ba[i] + bb[i]
		if busy[i] > 0 {
			last = i
		}
	}
	if last < 0 {
		return ShardTimeline{}
	}
	return ShardTimeline{BucketNs: w, BusyNs: append([]int64(nil), busy[:last+1]...)}
}

// JSON renders the report as indented, field-order-deterministic JSON.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil { // only on unmarshalable types; Report has none
		panic(err)
	}
	return b
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

// Check validates the report's internal consistency: the phase seconds
// must be non-negative, the scheduler breakdown must account for at least
// minAccounted of the wall clock, window counts must be coherent, and
// per-shard events must sum to the events the window histogram saw. It
// is the contract the CI profile smoke job enforces on BENCH_pdes.json.
func (r *Report) Check(minAccounted float64) error {
	if r == nil {
		return fmt.Errorf("prof: no profile section")
	}
	if r.WallSeconds <= 0 {
		return fmt.Errorf("prof: wall_seconds = %v, want > 0", r.WallSeconds)
	}
	if r.Shards < 2 {
		return fmt.Errorf("prof: shards = %d, want >= 2 (profiles cover sharded runs)", r.Shards)
	}
	if len(r.PerShard) != r.Shards {
		return fmt.Errorf("prof: per_shard has %d entries, want %d", len(r.PerShard), r.Shards)
	}
	for _, s := range []struct {
		name string
		v    float64
	}{
		{"spawn_join_seconds", r.Sched.SpawnJoinSeconds},
		{"choose_seconds", r.Sched.ChooseSeconds},
		{"barrier_seconds", r.Sched.BarrierSeconds},
		{"inline_compute_seconds", r.Sched.InlineSeconds},
		{"drain_seconds", r.Sched.DrainSeconds},
	} {
		if s.v < 0 {
			return fmt.Errorf("prof: sched.%s = %v, want >= 0", s.name, s.v)
		}
	}
	phases := r.Sched.SpawnJoinSeconds + r.Sched.ChooseSeconds + r.Sched.BarrierSeconds +
		r.Sched.InlineSeconds + r.Sched.DrainSeconds
	if phases > r.WallSeconds*1.05 {
		return fmt.Errorf("prof: phase seconds sum %.6f exceeds wall clock %.6f", phases, r.WallSeconds)
	}
	if r.AccountedFraction < minAccounted {
		return fmt.Errorf("prof: accounted_fraction %.3f < %.3f (phase sum %.6fs of %.6fs wall)",
			r.AccountedFraction, minAccounted, phases, r.WallSeconds)
	}
	if r.Windows == 0 {
		return fmt.Errorf("prof: windows = 0, want > 0")
	}
	if r.MultiWindows+r.InlineWindows > r.Windows {
		return fmt.Errorf("prof: multi (%d) + inline (%d) windows exceed total %d",
			r.MultiWindows, r.InlineWindows, r.Windows)
	}
	if r.WindowSpanUS.Count != r.Windows {
		return fmt.Errorf("prof: window_span_us.count = %d, want windows = %d", r.WindowSpanUS.Count, r.Windows)
	}
	var shardWindows, shardEvents uint64
	for _, s := range r.PerShard {
		shardWindows += s.Windows
		shardEvents += s.Events
		if s.ComputeSeconds < 0 || s.SpinWaitSeconds < 0 || s.ParkWaitSeconds < 0 {
			return fmt.Errorf("prof: shard %d has negative phase seconds", s.Shard)
		}
	}
	if ev := uint64(r.EventsPerWindow.Sum); ev != shardEvents {
		return fmt.Errorf("prof: per-shard events sum to %d but windows dispatched %d", shardEvents, ev)
	}
	if r.KernelDispatches > 0 && shardEvents > r.KernelDispatches {
		return fmt.Errorf("prof: windowed events %d exceed kernel dispatches %d", shardEvents, r.KernelDispatches)
	}
	return nil
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

// FormatBreakdown renders the Fig-6-style top-N table: every phase of
// every thread of the simulator, sorted by wall-clock cost, with its
// share of the profiled wall clock — the table that says where the
// seconds of a sharded run actually went.
func (r *Report) FormatBreakdown(topN int) string {
	type row struct {
		name    string
		seconds float64
	}
	rows := []row{
		{"sched.choose (NET/bound/active-set)", r.Sched.ChooseSeconds},
		{"sched.barrier (publish+await workers)", r.Sched.BarrierSeconds},
		{"sched.drain (cross-shard outboxes)", r.Sched.DrainSeconds},
		{"sched.spawn+join (worker lifecycle)", r.Sched.SpawnJoinSeconds},
		{"sched.inline (single-shard windows)", r.Sched.InlineSeconds},
	}
	for _, s := range r.PerShard {
		rows = append(rows,
			row{fmt.Sprintf("shard%d.compute (published windows)", s.Shard), s.ComputeSeconds},
			row{fmt.Sprintf("shard%d.wait.spin", s.Shard), s.SpinWaitSeconds},
			row{fmt.Sprintf("shard%d.wait.park", s.Shard), s.ParkWaitSeconds},
		)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].seconds > rows[j].seconds })
	if topN > 0 && topN < len(rows) {
		rows = rows[:topN]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wall-clock breakdown (%.3fs profiled wall, %d windows, %d runs)\n",
		r.WallSeconds, r.Windows, r.Runs)
	fmt.Fprintf(&b, "  %-40s %12s %8s\n", "phase", "seconds", "% wall")
	for _, rw := range rows {
		pct := 0.0
		if r.WallSeconds > 0 {
			pct = 100 * rw.seconds / r.WallSeconds
		}
		fmt.Fprintf(&b, "  %-40s %12.6f %7.1f%%\n", rw.name, rw.seconds, pct)
	}
	fmt.Fprintf(&b, "  accounted: %.1f%% of scheduler wall clock; imbalance %.2fx\n",
		100*r.AccountedFraction, r.Imbalance)
	return b.String()
}

// FormatHistograms renders the window-size, lookahead, and batching
// distributions.
func (r *Report) FormatHistograms() string {
	var b strings.Builder
	line := func(name, unit string, h HistStats) {
		fmt.Fprintf(&b, "  %-18s n=%-8d p50=%-10.6g p90=%-10.6g p99=%-10.6g max=%-10.6g %s\n",
			name, h.Count, h.P50, h.P90, h.P99, h.Max, unit)
	}
	b.WriteString("window distributions\n")
	line("window span", "us virtual", r.WindowSpanUS)
	line("gateway lookahead", "us virtual", r.LookaheadUS)
	line("events/window", "events", r.EventsPerWindow)
	if r.Windows > 0 {
		mean := 0.0
		if r.EventsPerWindow.Count > 0 {
			mean = r.EventsPerWindow.Sum / float64(r.EventsPerWindow.Count)
		}
		fmt.Fprintf(&b, "  batching: %.1f events/window mean", mean)
		if r.VirtualNS > 0 {
			fmt.Fprintf(&b, ", %.1f windows/virtual-ms", float64(r.Windows)/(float64(r.VirtualNS)/1e6))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// timelineGlyphs maps a bucket's utilization to a display glyph, darkest
// at fully busy.
var timelineGlyphs = []rune{' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'}

// FormatTimeline renders the per-shard activity timeline: one row per
// shard, wall time left to right, each column a bucket whose glyph
// encodes the fraction of that bucket the shard spent computing. cols
// bounds the width (adjacent buckets merge to fit); 0 means 100.
func (r *Report) FormatTimeline(cols int) string {
	if len(r.Timeline) == 0 {
		return "per-shard timeline: no activity recorded\n"
	}
	if cols <= 0 {
		cols = 100
	}
	// Common width: max bucket count may exceed cols; merge factor m.
	maxLen := 0
	for _, tl := range r.Timeline {
		if len(tl.BusyNs) > maxLen {
			maxLen = len(tl.BusyNs)
		}
	}
	m := (maxLen + cols - 1) / cols
	if m < 1 {
		m = 1
	}
	var b strings.Builder
	span := float64(r.Timeline[0].BucketNs*int64(m)) / 1e6
	fmt.Fprintf(&b, "per-shard activity timeline (column = %.3gms wall; ' '=idle '@'=busy)\n", span)
	for _, tl := range r.Timeline {
		fmt.Fprintf(&b, "  shard %d |", tl.Shard)
		for i := 0; i < len(tl.BusyNs); i += m {
			var busy, width int64
			for j := i; j < i+m && j < len(tl.BusyNs); j++ {
				busy += tl.BusyNs[j]
				width += tl.BucketNs
			}
			frac := float64(busy) / float64(width)
			g := int(frac * float64(len(timelineGlyphs)))
			if g >= len(timelineGlyphs) {
				g = len(timelineGlyphs) - 1
			}
			if g < 0 {
				g = 0
			}
			b.WriteRune(timelineGlyphs[g])
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// Format renders the full human-readable profile: timeline, breakdown,
// histograms, and traffic counters.
func (r *Report) Format(topN int) string {
	var b strings.Builder
	b.WriteString(r.FormatTimeline(100))
	b.WriteByte('\n')
	b.WriteString(r.FormatBreakdown(topN))
	b.WriteByte('\n')
	b.WriteString(r.FormatHistograms())
	if r.KernelDispatches > 0 || r.WireFrames > 0 {
		fmt.Fprintf(&b, "traffic: %d kernel dispatches, %d wire frames (%d bytes), %d cross-shard frames, %d drained injections (%d bytes)\n",
			r.KernelDispatches, r.WireFrames, r.WireBytes, r.CrossShardFrames,
			r.Sched.DrainInjections, r.Sched.DrainBytes)
	}
	return b.String()
}
