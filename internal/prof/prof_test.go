package prof

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestHistQuantiles feeds a known distribution and checks the quantile
// summary: ordered percentiles, exact count/sum, and clamping of the
// bucket upper bound to the observed extrema.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	var sum int64
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
		sum += i
	}
	s := h.Stats(1)
	if s.Count != 1000 {
		t.Errorf("count = %d, want 1000", s.Count)
	}
	if s.Sum != float64(sum) {
		t.Errorf("sum = %v, want %v", s.Sum, float64(sum))
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Errorf("min/max = %v/%v, want 1/1000", s.Min, s.Max)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("quantiles not ordered: p50=%v p90=%v p99=%v max=%v", s.P50, s.P90, s.P99, s.Max)
	}
	// Log2 buckets give upper bounds: the true p50 is 500, so the bucket
	// bound must land in [500, 1023]; p99 (true 990) in [990, 1023].
	if s.P50 < 500 || s.P50 > 1023 {
		t.Errorf("p50 = %v, want within [500, 1023]", s.P50)
	}
	if s.P99 < 990 || s.P99 > 1000 {
		t.Errorf("p99 = %v, want within [990, 1000] (clamped to max)", s.P99)
	}
}

// TestHistSingleAndNegative covers the degenerate shapes: one sample makes
// every percentile that sample, and negatives clamp to zero.
func TestHistSingleAndNegative(t *testing.T) {
	var h Hist
	h.Observe(42)
	s := h.Stats(1)
	if s.P50 != 42 || s.P90 != 42 || s.P99 != 42 || s.Min != 42 || s.Max != 42 {
		t.Errorf("single-sample stats = %+v, want all 42", s)
	}
	var n Hist
	n.Observe(-5)
	if got := n.Stats(1); got.Min != 0 || got.Max != 0 || got.Count != 1 {
		t.Errorf("negative sample stats = %+v, want clamped to zero", got)
	}
}

// TestHistStatsDiv checks unit scaling (nanos -> micros).
func TestHistStatsDiv(t *testing.T) {
	var h Hist
	h.Observe(2000)
	s := h.Stats(1e3)
	if s.Max != 2.0 || s.Sum != 2.0 {
		t.Errorf("divided stats = %+v, want max=sum=2.0", s)
	}
	if got := (&h).Stats(0); got.Count != 0 {
		t.Errorf("zero divisor must yield empty stats, got %+v", got)
	}
}

// TestTimelineSplitAndConserve: intervals split across bucket boundaries
// and total busy time is conserved exactly.
func TestTimelineSplitAndConserve(t *testing.T) {
	var tl timeline
	w := int64(initialTimelineWidth)
	tl.add(w/2, w/2+w) // spans buckets 0 and 1
	if tl.busyNs[0] != w/2 || tl.busyNs[1] != w/2 {
		t.Errorf("split = %d/%d, want %d/%d", tl.busyNs[0], tl.busyNs[1], w/2, w/2)
	}
	var total int64
	for _, b := range tl.busyNs {
		total += b
	}
	if total != w {
		t.Errorf("total busy = %d, want %d", total, w)
	}
}

// TestTimelineRescale: an interval past the last bucket doubles the width
// (merging adjacent pairs) until it fits, conserving recorded time.
func TestTimelineRescale(t *testing.T) {
	var tl timeline
	w := int64(initialTimelineWidth)
	tl.add(0, 10)                  // bucket 0
	tl.add(w, w+10)                // bucket 1
	far := w * timelineBuckets * 3 // forces two doublings
	tl.add(far, far+10)
	if tl.widthNs != w*4 {
		t.Errorf("width = %d, want %d after two rescales", tl.widthNs, w*4)
	}
	var total int64
	for _, b := range tl.busyNs {
		total += b
	}
	if total != 30 {
		t.Errorf("total busy = %d, want 30 (conserved across rescale)", total)
	}
	if tl.busyNs[0] != 20 {
		t.Errorf("bucket 0 = %d, want 20 (buckets 0 and 1 merged twice)", tl.busyNs[0])
	}
}

// TestTimelineIgnoresEmptyAndClamps: empty/inverted intervals are no-ops
// and negative starts clamp to the epoch.
func TestTimelineIgnoresEmptyAndClamps(t *testing.T) {
	var tl timeline
	tl.add(100, 100)
	tl.add(200, 100)
	if tl.widthNs != 0 {
		t.Error("empty intervals must not initialize the timeline")
	}
	tl.add(-50, 50)
	if tl.busyNs[0] != 50 {
		t.Errorf("negative start: bucket 0 = %d, want 50", tl.busyNs[0])
	}
}

// TestNilCollectorsZeroCost is the disabled-path contract: every collector
// method must tolerate a nil receiver and allocate nothing — this is what
// lets the scheduler hold nil pointers instead of branching on a flag.
func TestNilCollectorsZeroCost(t *testing.T) {
	var w *Worker
	var p *Profile
	var h *Hist
	allocs := testing.AllocsPerRun(1000, func() {
		_ = w.Now()
		w.Wait(0, true)
		w.Compute(0, 3)
		_ = p.Now()
		_ = p.Worker(0)
		_ = p.Shards()
		p.RunEnd(0)
		p.SpawnJoin(0)
		p.Choose(0, 10, 2)
		p.ChooseAbort(0)
		p.Lookahead(700)
		p.Barrier(0)
		p.Inline(0, 0, 1)
		p.WindowEvents(4)
		p.DrainOut(0, 1, 64)
		p.Drain(0)
		h.Observe(5)
	})
	if allocs != 0 {
		t.Errorf("nil collector calls allocate %.1f allocs/op, want 0", allocs)
	}
	if r := p.Report(); r != nil {
		t.Error("nil profile must report nil")
	}
}

// TestEnabledHotPathZeroAlloc: the per-window collector calls must not
// allocate even when profiling is enabled (fixed-size arithmetic only) —
// the <5% overhead budget has no room for GC pressure.
func TestEnabledHotPathZeroAlloc(t *testing.T) {
	p := New(2)
	w := p.Worker(0)
	allocs := testing.AllocsPerRun(1000, func() {
		t0 := w.Now()
		w.Wait(t0, false)
		t1 := w.Now()
		w.Compute(t1, 2)
		tc := p.Now()
		p.Lookahead(700)
		p.Choose(tc, 1000, 2)
		p.WindowEvents(4)
		tb := p.Now()
		p.Barrier(tb)
		td := p.Now()
		p.DrainOut(0, 1, 64)
		p.Drain(td)
	})
	if allocs != 0 {
		t.Errorf("enabled per-window path allocates %.1f allocs/op, want 0", allocs)
	}
}

// driveProfile simulates one plausible run against the real clock: two
// shards, three windows (two published, one inline), one drain.
func driveProfile() *Profile {
	p := New(2)
	tRun := p.Now()
	tSpawn := p.Now()
	p.SpawnJoin(tSpawn)
	for win := 0; win < 2; win++ {
		tc := p.Now()
		p.Lookahead(700)
		p.Lookahead(900)
		p.Choose(tc, 700, 2)
		tb := p.Now()
		for i := 0; i < 2; i++ {
			w := p.Worker(i)
			t0 := w.Now()
			w.Wait(t0, i == 1)
			t1 := w.Now()
			spin(64)
			w.Compute(t1, 3)
		}
		p.Barrier(tb)
		p.WindowEvents(6)
		td := p.Now()
		p.DrainOut(0, 2, 256)
		p.Drain(td)
	}
	tc := p.Now()
	p.Choose(tc, 1200, 1)
	ti := p.Now()
	spin(64)
	p.Inline(ti, 1, 4)
	p.WindowEvents(4)
	td := p.Now()
	p.Drain(td)
	tc = p.Now()
	p.ChooseAbort(tc) // horizon reached
	p.SpawnJoin(p.Now())
	p.RunEnd(tRun)
	return p
}

// spin burns a little real time so measured intervals are nonzero.
func spin(n int) {
	acc := 0
	for i := 0; i < n*1000; i++ {
		acc += i
	}
	if acc == -1 {
		panic("unreachable")
	}
}

// TestProfileReportConsistency drives a synthetic run and checks the
// exported report coheres: counts line up, Check passes, and two marshals
// are byte-identical (structural determinism).
func TestProfileReportConsistency(t *testing.T) {
	p := driveProfile()
	r := p.Report()
	if r.Windows != 3 || r.MultiWindows != 2 || r.InlineWindows != 1 {
		t.Errorf("windows = %d/%d/%d, want 3 total, 2 multi, 1 inline",
			r.Windows, r.MultiWindows, r.InlineWindows)
	}
	if r.Runs != 1 || r.Shards != 2 || len(r.PerShard) != 2 {
		t.Errorf("runs/shards = %d/%d (per_shard %d), want 1/2/2", r.Runs, r.Shards, len(r.PerShard))
	}
	if got := r.PerShard[0].Events + r.PerShard[1].Events; got != 16 {
		t.Errorf("total shard events = %d, want 16", got)
	}
	if r.PerShard[1].Parks != 2 || r.PerShard[0].Parks != 0 {
		t.Errorf("parks = %d/%d, want 0/2", r.PerShard[0].Parks, r.PerShard[1].Parks)
	}
	if r.Sched.DrainInjections != 4 || r.Sched.DrainBytes != 512 {
		t.Errorf("drain = %d inj / %d bytes, want 4/512", r.Sched.DrainInjections, r.Sched.DrainBytes)
	}
	if r.LookaheadUS.Count != 4 {
		t.Errorf("lookahead count = %d, want 4", r.LookaheadUS.Count)
	}
	if r.Imbalance < 1 {
		t.Errorf("imbalance = %v, want >= 1", r.Imbalance)
	}
	// The synthetic driver does nothing between phase samples, so nearly
	// all wall time is inside measured phases.
	if err := r.Check(0.5); err != nil {
		t.Errorf("Check: %v\n%s", err, r.JSON())
	}
	if len(r.Timeline) == 0 {
		t.Error("no shard timeline recorded despite compute activity")
	}
	if !bytes.Equal(r.JSON(), r.JSON()) {
		t.Error("Report.JSON not deterministic across calls")
	}
}

// TestReportCheckRejects enumerates the inconsistencies Check exists to
// catch — each mutation of a valid report must fail with a distinct error.
func TestReportCheckRejects(t *testing.T) {
	valid := func() *Report { return driveProfile().Report() }
	cases := []struct {
		name string
		mut  func(*Report)
		want string
	}{
		{"nil report", nil, "no profile"},
		{"zero wall", func(r *Report) { r.WallSeconds = 0 }, "wall_seconds"},
		{"one shard", func(r *Report) { r.Shards = 1; r.PerShard = r.PerShard[:1] }, "shards"},
		{"per-shard mismatch", func(r *Report) { r.PerShard = r.PerShard[:1] }, "per_shard"},
		{"negative phase", func(r *Report) { r.Sched.DrainSeconds = -1 }, "drain_seconds"},
		{"phase overflow", func(r *Report) { r.Sched.BarrierSeconds = r.WallSeconds * 2 }, "exceeds wall clock"},
		{"unaccounted", func(r *Report) { r.AccountedFraction = 0.1 }, "accounted_fraction"},
		{"no windows", func(r *Report) { r.Windows = 0 }, "windows"},
		{"window overflow", func(r *Report) { r.InlineWindows = r.Windows + 1 }, "exceed total"},
		{"span count", func(r *Report) { r.WindowSpanUS.Count++ }, "window_span_us"},
		{"event mismatch", func(r *Report) { r.PerShard[0].Events++ }, "events"},
		{"dispatch bound", func(r *Report) { r.KernelDispatches = 1 }, "dispatches"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r *Report
			if tc.mut != nil {
				r = valid()
				tc.mut(r)
			}
			err := r.Check(0.5)
			if err == nil {
				t.Fatalf("Check accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReportJSONRoundTrip: the profile section must survive the
// BENCH_pdes.json round trip (what cmd/nectar-prof -in consumes).
func TestReportJSONRoundTrip(t *testing.T) {
	r := driveProfile().Report()
	r.KernelDispatches = 16
	r.WireFrames = 8
	var back Report
	if err := json.Unmarshal(r.JSON(), &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.JSON(), r.JSON()) {
		t.Error("report changed across JSON round trip")
	}
	if err := back.Check(0.5); err != nil {
		t.Errorf("round-tripped report fails Check: %v", err)
	}
}

// TestFormatRendersEverySection smoke-tests the human rendering: timeline,
// breakdown rows, histograms, and traffic counters all appear.
func TestFormatRendersEverySection(t *testing.T) {
	r := driveProfile().Report()
	r.KernelDispatches = 16
	r.WireFrames = 8
	out := r.Format(0)
	for _, want := range []string{
		"per-shard activity timeline",
		"wall-clock breakdown",
		"sched.barrier",
		"shard0.compute",
		"shard1.wait.park",
		"window span",
		"gateway lookahead",
		"events/window",
		"kernel dispatches",
		"accounted:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	if top := r.FormatBreakdown(3); strings.Count(top, "\n") > 6 {
		t.Errorf("FormatBreakdown(3) did not truncate:\n%s", top)
	}
}

// TestMergeTimelines covers the width-mismatch merge path used when a
// shard has both published-window (worker) and inline (scheduler) activity
// at different resolutions.
func TestMergeTimelines(t *testing.T) {
	var a, b timeline
	a.add(0, 100)
	b.add(0, 50)
	for b.widthNs < 4*initialTimelineWidth {
		b.rescale()
	}
	m := mergeTimelines(&a, &b)
	if m.BucketNs != 4*initialTimelineWidth {
		t.Errorf("merged width = %d, want coarser %d", m.BucketNs, 4*initialTimelineWidth)
	}
	var total int64
	for _, v := range m.BusyNs {
		total += v
	}
	if total != 150 {
		t.Errorf("merged busy = %d, want 150", total)
	}
	if empty := mergeTimelines(&timeline{}, &timeline{}); len(empty.BusyNs) != 0 {
		t.Error("merging empty timelines must yield an empty series")
	}
}
