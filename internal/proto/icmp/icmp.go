// Package icmp implements ICMP echo (ping) on the CAB. As in the paper
// (§4.1), ICMP is implemented as a mailbox upcall rather than a server
// thread: its handler runs as a side effect of IP's Enqueue into the ICMP
// input mailbox, with no context switch.
package icmp

import (
	"nectar/internal/proto/ip"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/rt/threads"
)

// Layer is the ICMP instance on one CAB.
type Layer struct {
	ip    *ip.Layer
	inBox *mailbox.Mailbox

	echoes, replies, unreachSent, unreachRecv uint64
	waiters                                   map[uint32]*pingWait // keyed by id<<16|seq
	onUnreachable                             func(origProto uint8, origDst uint32)
}

type pingWait struct {
	status *syncs.Sync
}

// NewLayer installs ICMP on an IP layer as an input-mailbox upcall.
func NewLayer(l *ip.Layer) *Layer {
	ic := &Layer{
		ip:      l,
		inBox:   l.Runtime().Create("icmp.in"),
		waiters: make(map[uint32]*pingWait),
	}
	ic.inBox.SetUpcall(ic.upcall)
	l.Register(wire.ProtoICMP, ic)
	// Answer datagrams for unbound protocols with destination unreachable
	// (protocol-unreachable code 2, RFC 792).
	l.OnUnreachable(func(ctx exec.Context, h wire.IPv4Header, dg []byte) {
		ic.unreachSent++
		// Quote the original header plus the first 8 payload bytes.
		n := wire.IPv4HeaderLen + 8
		if n > len(dg) {
			n = len(dg)
		}
		quote := make([]byte, n)
		copy(quote, dg[:n])
		_ = ic.sendUnreachable(ctx, h.Src, quote)
	})
	return ic
}

// OnUnreachable registers an application callback fired when a
// destination-unreachable message arrives, identifying the failed
// datagram's protocol and destination.
func (ic *Layer) OnUnreachable(fn func(origProto uint8, origDst uint32)) {
	ic.onUnreachable = fn
}

func (ic *Layer) sendUnreachable(ctx exec.Context, dst uint32, quote []byte) error {
	msg := make([]byte, wire.ICMPHeaderLen+len(quote))
	h := wire.ICMPHeader{Type: wire.ICMPUnreachable, Code: 2}
	h.Marshal(msg)
	copy(msg[wire.ICMPHeaderLen:], quote)
	ctx.Compute(ctx.Cost().ChecksumTime(len(msg)))
	c := wire.ChecksumICMP(msg)
	msg[2], msg[3] = byte(c>>8), byte(c)
	return ic.ip.Output(ctx, wire.IPv4Header{Protocol: wire.ProtoICMP, Dst: dst}, msg)
}

// InputMailbox implements ip.Upper.
func (ic *Layer) InputMailbox() *mailbox.Mailbox { return ic.inBox }

// Ping sends an echo request carrying len(payload) bytes to dst. status
// receives 1 when the matching echo reply arrives. (RTT measurement is
// done by the caller around the sync.)
func (ic *Layer) Ping(ctx exec.Context, dst uint32, id, seq uint16, payload []byte, status *syncs.Sync) error {
	ic.waiters[uint32(id)<<16|uint32(seq)] = &pingWait{status: status}
	return ic.send(ctx, dst, wire.ICMPEcho, id, seq, payload)
}

func (ic *Layer) send(ctx exec.Context, dst uint32, typ uint8, id, seq uint16, payload []byte) error {
	msg := make([]byte, wire.ICMPHeaderLen+len(payload))
	h := wire.ICMPHeader{Type: typ, ID: id, Seq: seq}
	h.Marshal(msg)
	copy(msg[wire.ICMPHeaderLen:], payload)
	ctx.Compute(ctx.Cost().ChecksumTime(len(msg)))
	c := wire.ChecksumICMP(msg)
	msg[2], msg[3] = byte(c>>8), byte(c)
	return ic.ip.Output(ctx, wire.IPv4Header{Protocol: wire.ProtoICMP, Dst: dst}, msg)
}

// upcall processes arriving ICMP messages in the caller's (interrupt)
// context.
func (ic *Layer) upcall(t *threads.Thread, box *mailbox.Mailbox) {
	ctx := exec.OnCAB(t)
	for {
		m := box.BeginGetNB(ctx)
		if m == nil {
			return
		}
		ic.handle(ctx, m)
		box.EndGet(ctx, m)
	}
}

func (ic *Layer) handle(ctx exec.Context, m *mailbox.Msg) {
	data := m.Data()
	var iph wire.IPv4Header
	if iph.Unmarshal(data) != nil || len(data) < wire.IPv4HeaderLen+wire.ICMPHeaderLen {
		return
	}
	body := data[wire.IPv4HeaderLen:]
	ctx.Compute(ctx.Cost().ChecksumTime(len(body)))
	if !wire.VerifyChecksum(body) {
		return
	}
	var h wire.ICMPHeader
	_ = h.Unmarshal(body)
	switch h.Type {
	case wire.ICMPEcho:
		ic.echoes++
		_ = ic.send(ctx, iph.Src, wire.ICMPEchoReply, h.ID, h.Seq, body[wire.ICMPHeaderLen:])
	case wire.ICMPEchoReply:
		ic.replies++
		key := uint32(h.ID)<<16 | uint32(h.Seq)
		if w, ok := ic.waiters[key]; ok {
			delete(ic.waiters, key)
			if w.status != nil {
				w.status.Write(ctx, 1)
			}
		}
	case wire.ICMPUnreachable:
		ic.unreachRecv++
		quote := body[wire.ICMPHeaderLen:]
		var orig wire.IPv4Header
		if orig.Unmarshal(quote) == nil && ic.onUnreachable != nil {
			ic.onUnreachable(orig.Protocol, orig.Dst)
		}
	}
}

// Stats returns (echo requests served, echo replies received,
// unreachables sent, unreachables received).
func (ic *Layer) Stats() (echoes, replies, unreachSent, unreachRecv uint64) {
	return ic.echoes, ic.replies, ic.unreachSent, ic.unreachRecv
}
