package icmp

import (
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/hub"
	"nectar/internal/model"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/ip"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

type node struct {
	cab  *cab.CAB
	ip   *ip.Layer
	icmp *Layer
}

func twoNodes(t *testing.T) (*sim.Kernel, *node, *node) {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	h := hub.New(k, cost, "hub", hub.DefaultPorts)
	mk := func(id wire.NodeID, port int) *node {
		c := cab.New(k, cost, id)
		c.ConnectFiber(fiber.NewLink(k, cost, "up", h.InPort(port)))
		h.ConnectOut(port, fiber.NewLink(k, cost, "down", c))
		rt := mailbox.NewRuntime(c)
		dl := datalink.NewLayer(c, rt)
		l := ip.NewLayer(dl, rt)
		return &node{cab: c, ip: l, icmp: NewLayer(l)}
	}
	a := mk(1, 0)
	b := mk(2, 1)
	a.cab.SetRoute(2, []byte{1})
	b.cab.SetRoute(1, []byte{0})
	return k, a, b
}

func TestEchoWithPayload(t *testing.T) {
	k, a, b := twoNodes(t)
	// A sync stand-in: the ping status is checked via stats because this
	// minimal rig has no syncs pool; nil status is allowed.
	a.cab.Sched.Fork("ping", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		if err := a.icmp.Ping(ctx, wire.NodeIP(2), 9, 4, []byte("payload-echoes-back"), nil); err != nil {
			k.Fatalf("ping: %v", err)
		}
	})
	if err := k.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	echoes, _, _, _ := b.icmp.Stats()
	if echoes != 1 {
		t.Errorf("b served %d echoes, want 1", echoes)
	}
	_, replies, _, _ := a.icmp.Stats()
	if replies != 1 {
		t.Errorf("a received %d replies, want 1", replies)
	}
}

func TestCorruptedICMPDropped(t *testing.T) {
	// Corruption is caught by the hardware CRC at the datalink layer; the
	// ICMP checksum is a second line of defense exercised here directly by
	// mangling a message that passes CRC (we simulate by sending a bogus
	// checksum from a hand-built frame path: simplest is corrupting on
	// the wire and confirming no echo is served).
	k, a, b := twoNodes(t)
	a.cab.OutLink().CorruptNext(1)
	a.cab.Sched.Fork("ping", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		_ = a.icmp.Ping(ctx, wire.NodeIP(2), 1, 1, []byte("mangled"), nil)
	})
	if err := k.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	echoes, _, _, _ := b.icmp.Stats()
	if echoes != 0 {
		t.Errorf("corrupted echo was served (%d)", echoes)
	}
}

func TestUpcallServesWithoutThread(t *testing.T) {
	// ICMP is a mailbox upcall (paper §4.1): serving an echo must not
	// require any dedicated ICMP thread or extra context switches beyond
	// the interrupt path.
	k, a, b := twoNodes(t)
	before := b.cab.Sched.Switches()
	a.cab.Sched.Fork("ping", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		_ = a.icmp.Ping(ctx, wire.NodeIP(2), 2, 2, nil, nil)
	})
	if err := k.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	echoes, _, _, _ := b.icmp.Stats()
	if echoes != 1 {
		t.Fatalf("echo not served")
	}
	if sw := b.cab.Sched.Switches() - before; sw != 0 {
		t.Errorf("serving the echo cost %d context switches, want 0 (upcall)", sw)
	}
}
