package nectar

import (
	"fmt"

	"nectar/internal/obs"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// RMP is the Nectar reliable message protocol (paper §4): "a simple
// stop-and-wait protocol". One message per peer is outstanding at a time;
// the receiver acknowledges every data packet and delivers in-order,
// deduplicating by sequence number; the sender retransmits on a fixed
// timeout. RMP does no software checksum — it relies on the CRC computed
// by the CAB hardware (paper §6.2), which is why it outruns TCP in
// Figure 7.
type RMP struct {
	dl      *datalink.Layer
	rt      *mailbox.Runtime
	sendBox *mailbox.Mailbox
	inBox   *mailbox.Mailbox
	peers   map[wire.NodeID]*rmpPeer
	window  int // max outstanding messages per peer (1 = paper's stop-and-wait)

	sent, acked, retrans, delivered, dups, noBox uint64
	timeouts                                     *obs.Counter // requests failed after MaxRetries

	obs  *obs.Observer
	node int
}

type rmpPeer struct {
	// Sender side.
	txSeq    uint32
	pending  []*rmpReq // FIFO; the first `inFlight` entries are sent, unacked
	inFlight int
	timer    sim.Timer

	// Receiver side.
	rxExpected uint32
}

// rmpReq is one queued reliable send.
type rmpReq struct {
	dst     wire.MailboxAddr
	srcBox  wire.MailboxID
	data    []byte       // payload to transmit (CAB memory or caller bytes)
	reqMsg  *mailbox.Msg // send-box message to release on completion (nil for direct sends)
	status  *syncs.Sync
	done    *threads.Cond // for blocking direct senders
	doneSt  uint32
	seq     uint32
	retries int
}

// NewRMP installs the reliable message protocol on a CAB.
func NewRMP(dl *datalink.Layer, rt *mailbox.Runtime, _ *syncs.Pool) *RMP {
	r := &RMP{
		dl:      dl,
		rt:      rt,
		sendBox: rt.Create("rmp.send"),
		inBox:   rt.Create("rmp.in"),
		peers:   make(map[wire.NodeID]*rmpPeer),
		window:  1,
	}
	dl.Register(wire.TypeRMP, r)
	rt.CAB().Sched.Fork("rmp-send", threads.SystemPriority, r.sendThread)
	r.node = int(rt.CAB().Node())
	r.obs = obs.Ensure(rt.CAB().Kernel())
	m := r.obs.Metrics()
	scope := fmt.Sprintf("cab%d", r.node)
	m.Gauge(obs.LayerRMP, "sent", scope, func() uint64 { return r.sent })
	m.Gauge(obs.LayerRMP, "acked", scope, func() uint64 { return r.acked })
	m.Gauge(obs.LayerRMP, "retransmits", scope, func() uint64 { return r.retrans })
	m.Gauge(obs.LayerRMP, "delivered", scope, func() uint64 { return r.delivered })
	m.Gauge(obs.LayerRMP, "dups", scope, func() uint64 { return r.dups })
	m.Gauge(obs.LayerRMP, "no_box", scope, func() uint64 { return r.noBox })
	r.timeouts = m.Counter(obs.LayerRMP, "timeouts", scope)
	return r
}

// SetWindow sets the maximum number of outstanding (unacknowledged)
// messages per peer. 1 is the paper's simple stop-and-wait protocol; a
// larger window is this reproduction's extension (the wire format already
// reserves a Window field), used by the windowed-RMP ablation to measure
// what stop-and-wait costs on a 100 Mbit/s fiber.
func (r *RMP) SetWindow(n int) {
	if n < 1 {
		n = 1
	}
	r.window = n
}

func (r *RMP) peer(n wire.NodeID) *rmpPeer {
	p, ok := r.peers[n]
	if !ok {
		p = &rmpPeer{}
		r.peers[n] = p
	}
	return p
}

// Send submits a reliable message to the remote mailbox dst through the
// send-request mailbox. status (optional) receives StatusOK once the
// message is acknowledged, or StatusTimeout if retransmissions are
// exhausted.
func (r *RMP) Send(ctx exec.Context, dst wire.MailboxAddr, srcBox wire.MailboxID, data []byte, status *syncs.Sync) {
	submitRequest(ctx, r.sendBox, reqHeader{
		DstNode: dst.Node, DstBox: dst.Box, SrcBox: srcBox,
	}, data, status)
}

// SendBlocking transmits a reliable message from a CAB thread and blocks
// until it is acknowledged (or fails), returning the completion status.
// This is the direct path CAB-resident senders use (paper §4.2) and the
// workload of the Figure 7 throughput experiment.
func (r *RMP) SendBlocking(ctx exec.Context, dst wire.MailboxAddr, srcBox wire.MailboxID, data []byte) uint32 {
	if ctx.IsHost() {
		panic("rmp: SendBlocking from host context; use Send")
	}
	req := &rmpReq{
		dst: dst, srcBox: srcBox, data: data,
		done: threads.NewCond(r.rt.CAB().Sched, "rmp.done"),
	}
	mu := threads.NewMutex("rmp.wait")
	r.enqueue(ctx, req)
	mu.Lock(ctx.T)
	for req.doneSt == 0 {
		req.done.Wait(ctx.T, mu)
	}
	mu.Unlock(ctx.T)
	return req.doneSt
}

// sendThread services the send-request mailbox.
func (r *RMP) sendThread(t *threads.Thread) {
	ctx := exec.OnCAB(t)
	for {
		m := r.sendBox.BeginGet(ctx)
		var rh reqHeader
		rh.unmarshal(m.Data())
		m.TrimPrefix(ctx, reqHeaderLen)
		req := &rmpReq{
			dst:    wire.MailboxAddr{Node: rh.DstNode, Box: rh.DstBox},
			srcBox: rh.SrcBox,
			data:   m.Data(),
			reqMsg: m,
		}
		if s, ok := m.Meta.(*syncs.Sync); ok {
			req.status = s
		}
		r.enqueue(ctx, req)
	}
}

// enqueue queues a request on its peer and pumps the window.
func (r *RMP) enqueue(ctx exec.Context, req *rmpReq) {
	p := r.peer(req.dst.Node)
	req.seq = p.txSeq
	p.txSeq++
	p.pending = append(p.pending, req)
	r.pump(ctx, p)
}

// pump transmits queued requests while the window has room.
func (r *RMP) pump(ctx exec.Context, p *rmpPeer) {
	for p.inFlight < r.window && p.inFlight < len(p.pending) {
		req := p.pending[p.inFlight]
		p.inFlight++
		if !r.transmit(ctx, p, req) {
			return // NoRoute completion restructured the queue
		}
	}
}

// transmit sends one request and (re)arms the peer's timer. It reports
// false if the request failed immediately.
func (r *RMP) transmit(ctx exec.Context, p *rmpPeer, req *rmpReq) bool {
	ctx.Compute(ctx.Cost().NectarTransport)
	var hb [wire.NectarHeaderLen]byte
	h := wire.NectarHeader{
		DstBox: req.dst.Box, SrcBox: req.srcBox,
		Seq: req.seq, Flags: wire.FlagData, Len: uint16(len(req.data)),
		Window: uint8(r.window),
	}
	h.Marshal(hb[:])
	r.sent++
	if r.obs.Tracing() {
		r.obs.InstantSeq(r.node, obs.LayerRMP, "send", uint64(req.seq), len(req.data))
	}
	if err := r.dl.Send(ctx, wire.TypeRMP, req.dst.Node, hb[:], req.data); err != nil {
		r.completeHead(ctx, p, StatusNoRoute)
		return false
	}
	r.armTimer(p, req)
	return true
}

func (r *RMP) armTimer(p *rmpPeer, req *rmpReq) {
	p.timer.Stop()
	k := r.rt.CAB().Kernel()
	p.timer = k.After(RTO, func() {
		r.rt.CAB().Sched.RaiseInterrupt("rmp-rto", func(t *threads.Thread) {
			r.timeout(exec.OnCAB(t), p, req)
		})
	})
}

// timeout retransmits every outstanding request (go-back-N) or fails the
// head once its retries are exhausted.
func (r *RMP) timeout(ctx exec.Context, p *rmpPeer, req *rmpReq) {
	if p.inFlight == 0 {
		return // acked while the interrupt was pending
	}
	head := p.pending[0]
	head.retries++
	if head.retries > MaxRetries {
		r.timeouts.Inc()
		if r.obs.Tracing() {
			r.obs.InstantSeq(r.node, obs.LayerRMP, "timeout", uint64(head.seq), len(head.data))
		}
		r.completeHead(ctx, p, StatusTimeout)
		return
	}
	r.retrans++
	if r.obs.Tracing() {
		r.obs.InstantSeq(r.node, obs.LayerRMP, "rto", uint64(head.seq), len(head.data))
	}
	for i := 0; i < p.inFlight; i++ {
		if !r.transmit(ctx, p, p.pending[i]) {
			return
		}
	}
}

// handleAck processes a cumulative acknowledgment: ackNext is the
// receiver's next expected sequence, so everything below it is delivered.
func (r *RMP) handleAck(ctx exec.Context, p *rmpPeer, ackNext uint32) {
	progressed := false
	for p.inFlight > 0 && seqLT32(p.pending[0].seq, ackNext) {
		r.completeHead(ctx, p, StatusOK)
		progressed = true
	}
	if progressed {
		if p.inFlight > 0 {
			r.armTimer(p, p.pending[0])
		} else {
			p.timer.Stop()
			p.timer = sim.Timer{}
		}
		r.pump(ctx, p)
	}
}

// seqLT32 compares sequence numbers mod 2^32.
func seqLT32(a, b uint32) bool { return int32(a-b) < 0 }

// completeHead finishes the head-of-line request with status st.
func (r *RMP) completeHead(ctx exec.Context, p *rmpPeer, st uint32) {
	req := p.pending[0]
	p.pending = p.pending[1:]
	if p.inFlight > 0 {
		p.inFlight--
	}
	if st == StatusOK {
		r.acked++
	} else {
		// A failed head poisons the pipeline: stop the timer; later
		// requests will be driven by pump on the next enqueue/ack.
		p.timer.Stop()
		p.timer = sim.Timer{}
	}
	if req.status != nil {
		req.status.Write(ctx, st)
	}
	if req.reqMsg != nil {
		r.sendBox.EndGet(ctx, req.reqMsg)
	}
	if req.done != nil {
		req.doneSt = st
		req.done.Broadcast()
	}
	if st != StatusOK {
		r.pump(ctx, p)
	}
}

// ack transmits a cumulative acknowledgment carrying the receiver's next
// expected sequence number.
func (r *RMP) ack(ctx exec.Context, src wire.NodeID, nextExpected uint32) {
	var hb [wire.NectarHeaderLen]byte
	h := wire.NectarHeader{Seq: nextExpected, Flags: wire.FlagAck}
	h.Marshal(hb[:])
	// Best effort; a lost ack is recovered by the sender's retransmit.
	_ = r.dl.Send(ctx, wire.TypeRMP, src, hb[:])
}

// --- datalink.Protocol ---

// InputMailbox implements datalink.Protocol.
func (r *RMP) InputMailbox() *mailbox.Mailbox { return r.inBox }

// StartOfData implements datalink.Protocol.
func (r *RMP) StartOfData(t *threads.Thread, src wire.NodeID, hdr []byte) bool {
	t.Compute(t.Cost().NectarTransport / 2)
	var h wire.NectarHeader
	if err := h.Unmarshal(hdr); err != nil {
		return false
	}
	return int(h.Len)+wire.NectarHeaderLen == len(hdr)
}

// EndOfData implements datalink.Protocol: acks and acking, in-order
// delivery with duplicate suppression.
func (r *RMP) EndOfData(t *threads.Thread, src wire.NodeID, m *mailbox.Msg) {
	ctx := exec.OnCAB(t)
	t.Compute(t.Cost().NectarTransport / 2)
	var h wire.NectarHeader
	if err := h.Unmarshal(m.Data()); err != nil {
		r.inBox.AbortPut(ctx, m)
		return
	}
	p := r.peer(src)
	switch {
	case h.Flags&wire.FlagAck != 0:
		r.inBox.AbortPut(ctx, m) // acks carry no payload to deliver
		r.handleAck(ctx, p, h.Seq)
	case h.Flags&wire.FlagData != 0:
		if h.Seq != p.rxExpected {
			// Duplicate or out-of-order: drop and re-ack cumulatively.
			r.dups++
			r.inBox.AbortPut(ctx, m)
			r.ack(ctx, src, p.rxExpected)
			return
		}
		dst, ok := r.rt.Lookup(h.DstBox)
		if !ok {
			r.noBox++
			r.inBox.AbortPut(ctx, m)
			r.ack(ctx, src, p.rxExpected)
			return
		}
		p.rxExpected++
		r.ack(ctx, src, p.rxExpected)
		m.TrimPrefix(ctx, wire.NectarHeaderLen)
		m.From = wire.MailboxAddr{Node: src, Box: h.SrcBox}
		r.delivered++
		if r.obs.Tracing() {
			r.obs.InstantSeq(r.node, obs.LayerRMP, "deliver", uint64(h.Seq), m.Len())
		}
		r.inBox.Enqueue(ctx, m, dst)
	default:
		r.inBox.AbortPut(ctx, m)
	}
}

// Stats returns RMP counters.
func (r *RMP) Stats() (sent, acked, retrans, delivered, dups uint64) {
	return r.sent, r.acked, r.retrans, r.delivered, r.dups
}

func (r *RMP) String() string {
	return fmt.Sprintf("rmp(node %d)", r.rt.CAB().Node())
}
