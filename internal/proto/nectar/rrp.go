package nectar

import (
	"fmt"

	"nectar/internal/obs"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// RRP is the Nectar request-response protocol (paper §4): "the transport
// mechanism for client-server RPC calls". A request is retransmitted until
// its reply arrives (the reply acts as the acknowledgment); servers keep a
// per-client cache of the last reply so a retransmitted request is
// answered without re-executing the service (at-most-once execution).
type RRP struct {
	dl      *datalink.Layer
	rt      *mailbox.Runtime
	sendBox *mailbox.Mailbox
	inBox   *mailbox.Mailbox

	nextXID uint32
	pending map[uint32]*rrpCall
	dedup   map[wire.MailboxAddr]*rrpServerEntry

	calls, replies, retrans, dedupHits, noBox uint64

	obs  *obs.Observer
	node int
}

// rrpCall is an outstanding client request.
type rrpCall struct {
	xid      uint32
	dst      wire.MailboxAddr
	srcBox   wire.MailboxID
	data     []byte
	reqMsg   *mailbox.Msg // send-box message retained for retransmission
	status   *syncs.Sync
	replyBox *mailbox.Mailbox
	timer    sim.Timer
	retries  int
}

// rrpServerEntry is the per-client duplicate-suppression state.
type rrpServerEntry struct {
	lastSeen  uint32 // highest request xid delivered to the service
	lastXID   uint32 // xid of the cached reply
	replyData []byte // cached reply payload for retransmitted requests
	haveReply bool
}

// NewRRP installs the request-response protocol on a CAB.
func NewRRP(dl *datalink.Layer, rt *mailbox.Runtime, _ *syncs.Pool) *RRP {
	r := &RRP{
		dl:      dl,
		rt:      rt,
		sendBox: rt.Create("rrp.send"),
		inBox:   rt.Create("rrp.in"),
		pending: make(map[uint32]*rrpCall),
		dedup:   make(map[wire.MailboxAddr]*rrpServerEntry),
	}
	dl.Register(wire.TypeRRP, r)
	rt.CAB().Sched.Fork("rrp-send", threads.SystemPriority, r.sendThread)
	r.node = int(rt.CAB().Node())
	r.obs = obs.Ensure(rt.CAB().Kernel())
	m := r.obs.Metrics()
	scope := fmt.Sprintf("cab%d", r.node)
	m.Gauge(obs.LayerRRP, "calls", scope, func() uint64 { return r.calls })
	m.Gauge(obs.LayerRRP, "replies", scope, func() uint64 { return r.replies })
	m.Gauge(obs.LayerRRP, "retransmits", scope, func() uint64 { return r.retrans })
	m.Gauge(obs.LayerRRP, "dedup_hits", scope, func() uint64 { return r.dedupHits })
	m.Gauge(obs.LayerRRP, "no_box", scope, func() uint64 { return r.noBox })
	return r
}

// Call issues a request to the service mailbox dst. The reply is delivered
// into replyBox; status receives StatusOK when it arrives (or a failure
// code). The caller then collects the reply with replyBox.BeginGet.
//
// Typical client (host process or CAB thread):
//
//	st := pool.Alloc(ctx)
//	rrp.Call(ctx, service, req, replyBox, st)
//	if st.Read(ctx) == nectar.StatusOK {
//	    reply := replyBox.BeginGetPoll(ctx)
//	    ...
//	}
func (r *RRP) Call(ctx exec.Context, dst wire.MailboxAddr, data []byte, replyBox *mailbox.Mailbox, status *syncs.Sync) {
	if ctx.IsHost() {
		m := r.sendBox.BeginPut(ctx, reqHeaderLen+len(data))
		var hb [reqHeaderLen]byte
		h := reqHeader{DstNode: dst.Node, DstBox: dst.Box, SrcBox: replyBox.ID(), Kind: kindSend}
		h.marshal(hb[:])
		m.Write(ctx, 0, hb[:])
		if len(data) > 0 {
			m.Write(ctx, reqHeaderLen, data)
		}
		m.Meta = &rrpSubmitMeta{status: status, replyBox: replyBox}
		r.sendBox.EndPut(ctx, m)
		return
	}
	r.startCall(ctx, &rrpCall{dst: dst, srcBox: replyBox.ID(), data: data, status: status, replyBox: replyBox})
}

// rrpSubmitMeta carries the client references a host request needs on the
// CAB side.
type rrpSubmitMeta struct {
	status   *syncs.Sync
	replyBox *mailbox.Mailbox
}

// Reply sends the response for a request message previously delivered to
// a service mailbox (m carries the client's address and transaction ID).
// Works from CAB threads and host processes.
func (r *RRP) Reply(ctx exec.Context, req *mailbox.Msg, data []byte) {
	if ctx.IsHost() {
		m := r.sendBox.BeginPut(ctx, reqHeaderLen+len(data))
		var hb [reqHeaderLen]byte
		h := reqHeader{DstNode: req.From.Node, DstBox: req.From.Box, Kind: kindReply, XID: req.Tag}
		h.marshal(hb[:])
		m.Write(ctx, 0, hb[:])
		if len(data) > 0 {
			m.Write(ctx, reqHeaderLen, data)
		}
		r.sendBox.EndPut(ctx, m)
		return
	}
	r.sendReply(ctx, req.From, req.Tag, data)
}

// sendThread services host-submitted calls and replies.
func (r *RRP) sendThread(t *threads.Thread) {
	ctx := exec.OnCAB(t)
	for {
		m := r.sendBox.BeginGet(ctx)
		var rh reqHeader
		rh.unmarshal(m.Data())
		m.TrimPrefix(ctx, reqHeaderLen)
		switch rh.Kind {
		case kindSend:
			meta, _ := m.Meta.(*rrpSubmitMeta)
			call := &rrpCall{
				dst:    wire.MailboxAddr{Node: rh.DstNode, Box: rh.DstBox},
				srcBox: rh.SrcBox,
				data:   m.Data(),
				reqMsg: m,
			}
			if meta != nil {
				call.status = meta.status
				call.replyBox = meta.replyBox
			}
			r.startCall(ctx, call)
		case kindReply:
			r.sendReply(ctx, wire.MailboxAddr{Node: rh.DstNode, Box: rh.DstBox}, rh.XID, m.Data())
			r.sendBox.EndGet(ctx, m)
		default:
			r.sendBox.EndGet(ctx, m)
		}
	}
}

// startCall registers and transmits a new request.
func (r *RRP) startCall(ctx exec.Context, c *rrpCall) {
	r.nextXID++
	c.xid = r.nextXID
	r.pending[c.xid] = c
	r.calls++
	if r.obs.Tracing() {
		r.obs.InstantSeq(r.node, obs.LayerRRP, "call", uint64(c.xid), len(c.data))
	}
	r.transmitReq(ctx, c)
}

func (r *RRP) transmitReq(ctx exec.Context, c *rrpCall) {
	ctx.Compute(ctx.Cost().NectarTransport)
	var hb [wire.NectarHeaderLen]byte
	h := wire.NectarHeader{
		DstBox: c.dst.Box, SrcBox: c.srcBox,
		Seq: c.xid, Flags: wire.FlagData, Len: uint16(len(c.data)),
	}
	h.Marshal(hb[:])
	if err := r.dl.Send(ctx, wire.TypeRRP, c.dst.Node, hb[:], c.data); err != nil {
		r.finishCall(ctx, c, StatusNoRoute)
		return
	}
	k := r.rt.CAB().Kernel()
	c.timer = k.After(RTO, func() {
		r.rt.CAB().Sched.RaiseInterrupt("rrp-rto", func(t *threads.Thread) {
			r.timeout(exec.OnCAB(t), c)
		})
	})
}

func (r *RRP) timeout(ctx exec.Context, c *rrpCall) {
	if r.pending[c.xid] != c {
		return // completed while the interrupt was pending
	}
	c.retries++
	if c.retries > MaxRetries {
		r.finishCall(ctx, c, StatusTimeout)
		return
	}
	r.retrans++
	if r.obs.Tracing() {
		r.obs.InstantSeq(r.node, obs.LayerRRP, "rto", uint64(c.xid), len(c.data))
	}
	r.transmitReq(ctx, c)
}

// finishCall completes a call with status st (reply delivery happens
// separately in EndOfData).
func (r *RRP) finishCall(ctx exec.Context, c *rrpCall, st uint32) {
	delete(r.pending, c.xid)
	c.timer.Stop()
	c.timer = sim.Timer{}
	if c.reqMsg != nil {
		r.sendBox.EndGet(ctx, c.reqMsg)
		c.reqMsg = nil
	}
	if c.status != nil {
		c.status.Write(ctx, st)
	}
}

// sendReply transmits (and caches) a reply to client addr for transaction
// xid.
func (r *RRP) sendReply(ctx exec.Context, client wire.MailboxAddr, xid uint32, data []byte) {
	e := r.serverEntry(client)
	e.lastXID = xid
	e.replyData = append(e.replyData[:0], data...)
	e.haveReply = true
	r.replies++
	if r.obs.Tracing() {
		r.obs.InstantSeq(r.node, obs.LayerRRP, "reply", uint64(xid), len(data))
	}
	r.transmitReply(ctx, client, xid, e.replyData)
}

func (r *RRP) transmitReply(ctx exec.Context, client wire.MailboxAddr, xid uint32, data []byte) {
	ctx.Compute(ctx.Cost().NectarTransport)
	var hb [wire.NectarHeaderLen]byte
	h := wire.NectarHeader{
		DstBox: client.Box,
		Seq:    xid, Flags: wire.FlagReply, Len: uint16(len(data)),
	}
	h.Marshal(hb[:])
	// Best effort: a lost reply is recovered by the client's request
	// retransmission hitting the dedup cache.
	_ = r.dl.Send(ctx, wire.TypeRRP, client.Node, hb[:], data)
}

func (r *RRP) serverEntry(client wire.MailboxAddr) *rrpServerEntry {
	e, ok := r.dedup[client]
	if !ok {
		e = &rrpServerEntry{}
		r.dedup[client] = e
	}
	return e
}

// --- datalink.Protocol ---

// InputMailbox implements datalink.Protocol.
func (r *RRP) InputMailbox() *mailbox.Mailbox { return r.inBox }

// StartOfData implements datalink.Protocol.
func (r *RRP) StartOfData(t *threads.Thread, src wire.NodeID, hdr []byte) bool {
	t.Compute(t.Cost().NectarTransport / 2)
	var h wire.NectarHeader
	if err := h.Unmarshal(hdr); err != nil {
		return false
	}
	return int(h.Len)+wire.NectarHeaderLen == len(hdr)
}

// EndOfData implements datalink.Protocol: dispatch requests to service
// mailboxes (with duplicate suppression) and replies to waiting calls.
func (r *RRP) EndOfData(t *threads.Thread, src wire.NodeID, m *mailbox.Msg) {
	ctx := exec.OnCAB(t)
	t.Compute(t.Cost().NectarTransport / 2)
	var h wire.NectarHeader
	if err := h.Unmarshal(m.Data()); err != nil {
		r.inBox.AbortPut(ctx, m)
		return
	}
	switch {
	case h.Flags&wire.FlagReply != 0:
		c, ok := r.pending[h.Seq]
		if !ok {
			r.inBox.AbortPut(ctx, m) // stale reply
			return
		}
		m.TrimPrefix(ctx, wire.NectarHeaderLen)
		m.From = wire.MailboxAddr{Node: src, Box: h.SrcBox}
		if c.replyBox != nil {
			r.inBox.Enqueue(ctx, m, c.replyBox)
		} else {
			r.inBox.AbortPut(ctx, m)
		}
		r.finishCall(ctx, c, StatusOK)

	case h.Flags&wire.FlagData != 0:
		client := wire.MailboxAddr{Node: src, Box: h.SrcBox}
		e := r.serverEntry(client)
		if h.Seq == e.lastXID && e.haveReply {
			// Duplicate of an answered request: resend the cached reply.
			r.dedupHits++
			r.inBox.AbortPut(ctx, m)
			r.transmitReply(ctx, client, h.Seq, e.replyData)
			return
		}
		if h.Seq <= e.lastSeen && e.lastSeen != 0 {
			// Already delivered (the service may still be working on
			// it): drop the duplicate; the client keeps retrying until
			// the reply is cached. At-most-once execution.
			r.dedupHits++
			r.inBox.AbortPut(ctx, m)
			return
		}
		dst, ok := r.rt.Lookup(h.DstBox)
		if !ok {
			r.noBox++
			r.inBox.AbortPut(ctx, m)
			return
		}
		e.lastSeen = h.Seq
		m.TrimPrefix(ctx, wire.NectarHeaderLen)
		m.From = client
		m.Tag = h.Seq
		r.inBox.Enqueue(ctx, m, dst)

	default:
		r.inBox.AbortPut(ctx, m)
	}
}

// Stats returns RRP counters.
func (r *RRP) Stats() (calls, replies, retrans, dedupHits uint64) {
	return r.calls, r.replies, r.retrans, r.dedupHits
}
