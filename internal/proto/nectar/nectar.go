// Package nectar implements the Nectar-specific transport protocols of
// paper §4: an unreliable datagram protocol, the reliable message protocol
// (RMP — "a simple stop-and-wait protocol"), and the request-response
// protocol (RRP) that provides the transport mechanism for client-server
// RPC.
//
// All three share the structure the paper describes for its transports:
// a send-request mailbox through which host processes submit work to a
// protocol thread on the CAB (CAB-resident senders call the protocol
// directly, without involving the thread), an input mailbox registered
// with the datalink layer, delivery into destination mailboxes with the
// copy-free Enqueue operation, and completion status returned to senders
// through syncs (§3.4).
package nectar

import (
	"encoding/binary"

	"nectar/internal/proto/datalink"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/sim"
)

// Send completion status values written to a request's sync.
const (
	StatusOK      uint32 = 1 // delivered (RMP/RRP: acknowledged)
	StatusTimeout uint32 = 2 // retransmissions exhausted
	StatusNoRoute uint32 = 3 // destination unknown to the datalink layer
	StatusNoBox   uint32 = 4 // RRP: reply arrived but carried an error
)

// RTO is the retransmission timeout of RMP and RRP. The prototype's fiber
// RTTs are well under a millisecond; a fixed conservative timer suits the
// low-loss dedicated network (1990-era stacks used coarse fixed timers).
const RTO = 10 * sim.Millisecond

// MaxRetries bounds retransmission attempts before a request fails.
const MaxRetries = 5

// reqHeaderLen is the length of the request header that prefixes every
// message in a protocol's send-request mailbox.
const reqHeaderLen = 12

// reqHeader is the send-request header written by senders into a
// protocol's send-request mailbox (paper §4.2 describes the equivalent
// TCP send-request interface).
type reqHeader struct {
	DstNode wire.NodeID
	DstBox  wire.MailboxID
	SrcBox  wire.MailboxID // reply/source mailbox on the sender's node
	Kind    uint8          // kindSend or kindReply (RRP servers)
	XID     uint32         // RRP reply transaction id
}

const (
	kindSend  uint8 = 0
	kindReply uint8 = 1
)

func (h *reqHeader) marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:], uint16(h.DstNode))
	binary.BigEndian.PutUint16(b[2:], uint16(h.DstBox))
	binary.BigEndian.PutUint16(b[4:], uint16(h.SrcBox))
	b[6] = h.Kind
	b[7] = 0
	binary.BigEndian.PutUint32(b[8:], h.XID)
}

func (h *reqHeader) unmarshal(b []byte) {
	h.DstNode = wire.NodeID(binary.BigEndian.Uint16(b[0:]))
	h.DstBox = wire.MailboxID(binary.BigEndian.Uint16(b[2:]))
	h.SrcBox = wire.MailboxID(binary.BigEndian.Uint16(b[4:]))
	h.Kind = b[6]
	h.XID = binary.BigEndian.Uint32(b[8:])
}

// Transports bundles the three Nectar transports installed on one CAB.
type Transports struct {
	Datagram *Datagram
	RMP      *RMP
	RRP      *RRP
}

// Attach creates the three protocols on a CAB, registers them with its
// datalink layer, and starts their protocol threads.
func Attach(dl *datalink.Layer, rt *mailbox.Runtime, pool *syncs.Pool) *Transports {
	return &Transports{
		Datagram: NewDatagram(dl, rt, pool),
		RMP:      NewRMP(dl, rt, pool),
		RRP:      NewRRP(dl, rt, pool),
	}
}

// writeStatus writes st to the sync attached to a send request, if any.
func writeStatus(ctx exec.Context, m *mailbox.Msg, st uint32) {
	if s, ok := m.Meta.(*syncs.Sync); ok && s != nil {
		s.Write(ctx, st)
	}
}

// submitRequest writes a send request (header + data) into a protocol's
// send-request mailbox; the protocol thread on the CAB picks it up. status
// may be nil.
func submitRequest(ctx exec.Context, box *mailbox.Mailbox, h reqHeader, data []byte, status *syncs.Sync) {
	m := box.BeginPut(ctx, reqHeaderLen+len(data))
	var hb [reqHeaderLen]byte
	h.marshal(hb[:])
	m.Write(ctx, 0, hb[:])
	if len(data) > 0 {
		m.Write(ctx, reqHeaderLen, data)
	}
	m.Meta = status
	box.EndPut(ctx, m)
}
