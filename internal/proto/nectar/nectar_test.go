package nectar

import (
	"bytes"
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/host"
	"nectar/internal/hw/hub"
	"nectar/internal/model"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/hostif"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// node is one fully wired host/CAB pair with the Nectar transports.
type node struct {
	cab   *cab.CAB
	host  *host.Host
	rt    *mailbox.Runtime
	pool  *syncs.Pool
	trans *Transports
}

func twoNodes(t *testing.T) (*sim.Kernel, *node, *node) {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	h := hub.New(k, cost, "hub", hub.DefaultPorts)
	mk := func(id wire.NodeID, port int) *node {
		c := cab.New(k, cost, id)
		ho := host.New(k, cost, "host", c)
		f := hostif.New(ho, c)
		c.ConnectFiber(fiber.NewLink(k, cost, "up", h.InPort(port)))
		h.ConnectOut(port, fiber.NewLink(k, cost, "down", c))
		rt := mailbox.NewRuntime(c)
		rt.AttachHost(f)
		pool := syncs.NewPool(f)
		dl := datalink.NewLayer(c, rt)
		return &node{cab: c, host: ho, rt: rt, pool: pool, trans: Attach(dl, rt, pool)}
	}
	a := mk(1, 0)
	b := mk(2, 1)
	a.cab.SetRoute(2, []byte{1})
	b.cab.SetRoute(1, []byte{0})
	return k, a, b
}

func TestDatagramQueuePathWithStatusSync(t *testing.T) {
	k, a, b := twoNodes(t)
	sink := b.rt.Create("sink")
	var st uint32
	var got []byte
	a.host.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.host)
		s := a.pool.Alloc(ctx)
		a.trans.Datagram.Send(ctx, sink.Addr(), 0, []byte("queued"), s)
		st = s.Read(ctx)
	})
	b.cab.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := sink.BeginGet(ctx)
		got = append([]byte(nil), m.Data()...)
		sink.EndGet(ctx, m)
	})
	if err := k.RunFor(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st != StatusOK {
		t.Errorf("status = %d", st)
	}
	if string(got) != "queued" {
		t.Errorf("got %q", got)
	}
}

func TestDatagramNoRouteStatus(t *testing.T) {
	k, a, _ := twoNodes(t)
	var st uint32
	a.host.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.host)
		s := a.pool.Alloc(ctx)
		a.trans.Datagram.Send(ctx, wire.MailboxAddr{Node: 77, Box: 1}, 0, []byte("x"), s)
		st = s.Read(ctx)
	})
	if err := k.RunFor(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st != StatusNoRoute {
		t.Errorf("status = %d, want NoRoute", st)
	}
}

func TestDatagramUnknownMailboxDropped(t *testing.T) {
	k, a, b := twoNodes(t)
	a.cab.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		_ = a.trans.Datagram.SendDirect(ctx, wire.MailboxAddr{Node: 2, Box: 999}, 0, []byte("void"))
	})
	if err := k.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, _, noBox := b.trans.Datagram.Stats()
	if noBox != 1 {
		t.Errorf("noBox = %d", noBox)
	}
	if used := b.cab.Heap.Used(); used > 16<<10 {
		t.Errorf("dropped datagram leaked: heap used %d", used)
	}
}

func TestRMPTimeoutExhaustsRetries(t *testing.T) {
	k, a, b := twoNodes(t)
	sink := b.rt.Create("sink")
	a.cab.OutLink().DropNext(1 + MaxRetries) // kill original + all retries
	var st uint32
	a.cab.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		st = a.trans.RMP.SendBlocking(ctx, sink.Addr(), 0, []byte("doomed"))
	})
	if err := k.RunFor(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if st != StatusTimeout {
		t.Errorf("status = %d, want Timeout", st)
	}
	_, _, retrans, _, _ := a.trans.RMP.Stats()
	if retrans != uint64(MaxRetries) {
		t.Errorf("retrans = %d, want %d", retrans, MaxRetries)
	}
}

func TestRMPPipelinedQueueing(t *testing.T) {
	// Multiple queued sends to one peer proceed in order, one in flight
	// at a time (stop-and-wait).
	k, a, b := twoNodes(t)
	sink := b.rt.Create("sink")
	var got []byte
	a.host.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.host)
		for i := byte(0); i < 8; i++ {
			a.trans.RMP.Send(ctx, sink.Addr(), 0, []byte{i}, nil)
		}
	})
	b.cab.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := 0; i < 8; i++ {
			m := sink.BeginGet(ctx)
			got = append(got, m.Data()[0])
			sink.EndGet(ctx, m)
		}
	})
	if err := k.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("got %v", got)
	}
}

func TestRMPDuplicateSuppressedOnAckLoss(t *testing.T) {
	// Lose the first ACK: the sender retransmits; the receiver must ack
	// again but deliver only once.
	k, a, b := twoNodes(t)
	sink := b.rt.Create("sink")
	b.cab.OutLink().DropNext(1) // the receiver's first ack
	delivered := 0
	a.cab.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		if st := a.trans.RMP.SendBlocking(ctx, sink.Addr(), 0, []byte("once")); st != StatusOK {
			k.Fatalf("status %d", st)
		}
	})
	b.cab.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for {
			m := sink.BeginGet(ctx)
			delivered++
			sink.EndGet(ctx, m)
		}
	})
	if err := k.RunFor(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d times, want exactly 1", delivered)
	}
	_, _, _, _, dups := b.trans.RMP.Stats()
	if dups != 1 {
		t.Errorf("dups = %d, want 1", dups)
	}
}

func TestRRPRequestLossRecovered(t *testing.T) {
	k, a, b := twoNodes(t)
	service := b.rt.Create("svc")
	replyBox := a.rt.Create("rep")
	a.cab.OutLink().DropNext(1) // lose the request; client must retransmit
	b.cab.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := service.BeginGet(ctx)
		b.trans.RRP.Reply(ctx, m, []byte("pong"))
		service.EndGet(ctx, m)
	})
	var reply []byte
	a.cab.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		st := a.pool.Alloc(ctx)
		a.trans.RRP.Call(ctx, service.Addr(), []byte("ping"), replyBox, st)
		if st.Read(ctx) == StatusOK {
			m := replyBox.BeginGet(ctx)
			reply = append([]byte(nil), m.Data()...)
			replyBox.EndGet(ctx, m)
		}
	})
	if err := k.RunFor(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if string(reply) != "pong" {
		t.Fatalf("reply = %q", reply)
	}
	_, _, retrans, _ := a.trans.RRP.Stats()
	if retrans == 0 {
		t.Error("no retransmission recorded")
	}
}

func TestRRPTimeout(t *testing.T) {
	// No server at all: the call must fail with StatusTimeout.
	k, a, b := twoNodes(t)
	replyBox := a.rt.Create("rep")
	var st uint32
	a.cab.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s := a.pool.Alloc(ctx)
		a.trans.RRP.Call(ctx, wire.MailboxAddr{Node: 2, Box: 999}, []byte("x"), replyBox, s)
		st = s.Read(ctx)
	})
	_ = b
	if err := k.RunFor(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if st != StatusTimeout {
		t.Errorf("status = %d, want Timeout", st)
	}
}

func TestRRPHostServer(t *testing.T) {
	// Reply from a host process goes through the send-request mailbox.
	k, a, b := twoNodes(t)
	service := b.rt.Create("svc")
	replyBox := a.rt.Create("rep")
	b.host.Run("server", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.host)
		m := service.BeginGetPoll(ctx)
		b.trans.RRP.Reply(ctx, m, []byte("from-host"))
		service.EndGet(ctx, m)
	})
	var reply []byte
	a.cab.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		s := a.pool.Alloc(ctx)
		a.trans.RRP.Call(ctx, service.Addr(), []byte("hi"), replyBox, s)
		if s.Read(ctx) == StatusOK {
			m := replyBox.BeginGet(ctx)
			reply = append([]byte(nil), m.Data()...)
			replyBox.EndGet(ctx, m)
		}
	})
	if err := k.RunFor(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if string(reply) != "from-host" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestReqHeaderRoundTrip(t *testing.T) {
	h := reqHeader{DstNode: 3, DstBox: 9, SrcBox: 12, Kind: kindReply, XID: 0xDEADBEEF}
	var b [reqHeaderLen]byte
	h.marshal(b[:])
	var g reqHeader
	g.unmarshal(b[:])
	if g != h {
		t.Errorf("round trip: %+v != %+v", g, h)
	}
}

func TestRMPWindowedDeliveryInOrder(t *testing.T) {
	// The windowed-RMP extension must preserve exactly-once in-order
	// delivery, including under loss (go-back-N recovery).
	k, a, b := twoNodes(t)
	a.trans.RMP.SetWindow(4)
	sink := b.rt.Create("sink")
	a.cab.OutLink().DropNext(3) // lose an early burst
	var got []byte
	a.host.Run("send", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.host)
		for i := byte(0); i < 16; i++ {
			a.trans.RMP.Send(ctx, sink.Addr(), 0, []byte{i}, nil)
		}
	})
	b.cab.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := 0; i < 16; i++ {
			m := sink.BeginGet(ctx)
			got = append(got, m.Data()[0])
			sink.EndGet(ctx, m)
		}
	})
	if err := k.RunFor(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("delivered %d of 16", len(got))
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
}

func TestRMPWindowedKeepsPipelineFull(t *testing.T) {
	// With window 4, several data frames must be on the wire before the
	// first ack returns (sent count outpaces acked early on).
	k, a, b := twoNodes(t)
	a.trans.RMP.SetWindow(4)
	sink := b.rt.Create("sink")
	sink.SetCapacity(1 << 20)
	a.cab.Sched.Fork("send", threads.SystemPriority, func(th *threads.Thread) {
		// Queue from the CAB side: a host sender is VME-bound and would
		// never have more than one message ready at a time.
		ctx := exec.OnCAB(th)
		buf := make([]byte, 2048)
		for i := 0; i < 12; i++ {
			a.trans.RMP.Send(ctx, sink.Addr(), 0, buf, nil)
		}
	})
	maxOutstanding := 0
	done := false
	b.cab.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := 0; i < 12; i++ {
			m := sink.BeginGet(ctx)
			sink.EndGet(ctx, m)
		}
		done = true
	})
	// Sample the in-flight depth on a fine timer; the drain thread runs
	// too late to see it (acks are processed at interrupt level).
	var sampler func()
	sampler = func() {
		if done {
			return
		}
		sent, acked, _, _, _ := a.trans.RMP.Stats()
		if d := int(sent - acked); d > maxOutstanding {
			maxOutstanding = d
		}
		k.After(5*sim.Microsecond, sampler)
	}
	k.After(0, func() { sampler() })
	if err := k.RunFor(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if maxOutstanding < 2 {
		t.Errorf("max outstanding = %d; window not pipelining", maxOutstanding)
	}
}
