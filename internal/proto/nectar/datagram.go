package nectar

import (
	"fmt"

	"nectar/internal/obs"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/syncs"
	"nectar/internal/rt/threads"
)

// Datagram is the Nectar unreliable datagram protocol (paper §4, §6.1):
// fire-and-forget delivery of a message to a remote mailbox. It is the
// protocol behind the paper's 325 µs host-to-host round trip.
type Datagram struct {
	dl      *datalink.Layer
	rt      *mailbox.Runtime
	sendBox *mailbox.Mailbox
	inBox   *mailbox.Mailbox

	sent, delivered, noBox uint64

	// Precomputed per-node mark names (Markf's variadic args allocate on
	// every call even with tracing off).
	markReq, markDeliver string

	obs  *obs.Observer
	node int
}

// NewDatagram installs the datagram protocol on a CAB.
func NewDatagram(dl *datalink.Layer, rt *mailbox.Runtime, _ *syncs.Pool) *Datagram {
	d := &Datagram{
		dl:      dl,
		rt:      rt,
		sendBox: rt.Create("datagram.send"),
		inBox:   rt.Create("datagram.in"),
	}
	dl.Register(wire.TypeDatagram, d)
	rt.CAB().Sched.Fork("datagram-send", threads.SystemPriority, d.sendThread)
	d.node = int(rt.CAB().Node())
	d.markReq = fmt.Sprintf("datagram.req.%d", d.node)
	d.markDeliver = fmt.Sprintf("datagram.deliver.%d", d.node)
	d.obs = obs.Ensure(rt.CAB().Kernel())
	m := d.obs.Metrics()
	scope := fmt.Sprintf("cab%d", d.node)
	m.Gauge(obs.LayerDatagram, "sent", scope, func() uint64 { return d.sent })
	m.Gauge(obs.LayerDatagram, "delivered", scope, func() uint64 { return d.delivered })
	m.Gauge(obs.LayerDatagram, "no_box", scope, func() uint64 { return d.noBox })
	return d
}

// SendBox returns the send-request mailbox (for latency instrumentation).
func (d *Datagram) SendBox() *mailbox.Mailbox { return d.sendBox }

// Send submits a datagram for transmission to the remote mailbox dst.
// srcBox names the sender's reply mailbox (0 if none); status, if
// non-nil, receives a completion code once the datagram has been handed
// to the network (delivery itself is unacknowledged).
//
// Host processes enqueue a request for the CAB's datagram thread; the
// same path works from CAB threads, but CAB-resident senders can use
// SendDirect to bypass the thread handoff.
func (d *Datagram) Send(ctx exec.Context, dst wire.MailboxAddr, srcBox wire.MailboxID, data []byte, status *syncs.Sync) {
	submitRequest(ctx, d.sendBox, reqHeader{
		DstNode: dst.Node, DstBox: dst.Box, SrcBox: srcBox,
	}, data, status)
}

// SendDirect transmits a datagram immediately from a CAB context (paper
// §4.2: "CAB-resident senders can do this directly without involving the
// ... send thread").
func (d *Datagram) SendDirect(ctx exec.Context, dst wire.MailboxAddr, srcBox wire.MailboxID, data []byte) error {
	ctx.Compute(ctx.Cost().NectarTransport)
	var hb [wire.NectarHeaderLen]byte
	h := wire.NectarHeader{DstBox: dst.Box, SrcBox: srcBox, Flags: wire.FlagData, Len: uint16(len(data))}
	h.Marshal(hb[:])
	d.sent++
	if d.obs.Tracing() {
		d.obs.InstantSeq(d.node, obs.LayerDatagram, "send", uint64(dst.Box), len(data))
	}
	return d.dl.Send(ctx, wire.TypeDatagram, dst.Node, hb[:], data)
}

// sendThread services the send-request mailbox.
func (d *Datagram) sendThread(t *threads.Thread) {
	ctx := exec.OnCAB(t)
	for {
		m := d.sendBox.BeginGet(ctx)
		t.Sched().Kernel().Mark(d.markReq)
		var rh reqHeader
		rh.unmarshal(m.Data())
		err := d.SendDirect(ctx, wire.MailboxAddr{Node: rh.DstNode, Box: rh.DstBox}, rh.SrcBox, m.Data()[reqHeaderLen:])
		st := StatusOK
		if err != nil {
			st = StatusNoRoute
		}
		writeStatus(ctx, m, st)
		d.sendBox.EndGet(ctx, m)
	}
}

// --- datalink.Protocol ---

// InputMailbox implements datalink.Protocol.
func (d *Datagram) InputMailbox() *mailbox.Mailbox { return d.inBox }

// StartOfData implements datalink.Protocol: sanity-check the transport
// header while the payload streams in.
func (d *Datagram) StartOfData(t *threads.Thread, src wire.NodeID, hdr []byte) bool {
	t.Compute(t.Cost().NectarTransport / 2)
	var h wire.NectarHeader
	if err := h.Unmarshal(hdr); err != nil {
		return false
	}
	return int(h.Len)+wire.NectarHeaderLen == len(hdr)
}

// EndOfData implements datalink.Protocol: strip the transport header and
// move the message to the destination mailbox without copying.
func (d *Datagram) EndOfData(t *threads.Thread, src wire.NodeID, m *mailbox.Msg) {
	ctx := exec.OnCAB(t)
	t.Compute(t.Cost().NectarTransport / 2)
	var h wire.NectarHeader
	if err := h.Unmarshal(m.Data()); err != nil {
		d.inBox.AbortPut(ctx, m)
		return
	}
	dst, ok := d.rt.Lookup(h.DstBox)
	if !ok {
		d.noBox++
		d.inBox.AbortPut(ctx, m)
		return
	}
	m.TrimPrefix(ctx, wire.NectarHeaderLen)
	m.From = wire.MailboxAddr{Node: src, Box: h.SrcBox}
	d.delivered++
	if d.obs.Tracing() {
		d.obs.InstantSeq(d.node, obs.LayerDatagram, "deliver", uint64(h.DstBox), m.Len())
	}
	d.inBox.Enqueue(ctx, m, dst)
	t.Sched().Kernel().Mark(d.markDeliver)
}

// Stats returns (sent, delivered, dropped-for-unknown-mailbox).
func (d *Datagram) Stats() (sent, delivered, noBox uint64) {
	return d.sent, d.delivered, d.noBox
}
