package datalink

import (
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/hub"
	"nectar/internal/model"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// rig wires two CABs through one HUB with datalink layers.
type rig struct {
	k        *sim.Kernel
	a, b     *cab.CAB
	la, lb   *Layer
	rta, rtb *mailbox.Runtime
}

func newRig(t *testing.T, rxThread bool) *rig {
	t.Helper()
	k := sim.NewKernel()
	cost := model.Default1990()
	h := hub.New(k, cost, "hub", hub.DefaultPorts)
	a := cab.New(k, cost, 1)
	b := cab.New(k, cost, 2)
	if rxThread {
		a.SetRxInterruptMode(false)
		b.SetRxInterruptMode(false)
	}
	a.ConnectFiber(fiber.NewLink(k, cost, "a->hub", h.InPort(0)))
	h.ConnectOut(0, fiber.NewLink(k, cost, "hub->a", a))
	b.ConnectFiber(fiber.NewLink(k, cost, "b->hub", h.InPort(1)))
	h.ConnectOut(1, fiber.NewLink(k, cost, "hub->b", b))
	a.SetRoute(2, []byte{1})
	b.SetRoute(1, []byte{0})
	rta := mailbox.NewRuntime(a)
	rtb := mailbox.NewRuntime(b)
	return &rig{k: k, a: a, b: b, la: NewLayer(a, rta), lb: NewLayer(b, rtb), rta: rta, rtb: rtb}
}

// echoProto is a test protocol that records deliveries.
type echoProto struct {
	rt       *mailbox.Runtime
	in       *mailbox.Mailbox
	got      [][]byte
	srcs     []wire.NodeID
	vetoNext bool
	sodCalls int
}

func newEchoProto(rt *mailbox.Runtime) *echoProto {
	return &echoProto{rt: rt, in: rt.Create("test.in")}
}

func (p *echoProto) InputMailbox() *mailbox.Mailbox { return p.in }

func (p *echoProto) StartOfData(t *threads.Thread, src wire.NodeID, hdr []byte) bool {
	p.sodCalls++
	if p.vetoNext {
		p.vetoNext = false
		return false
	}
	return true
}

func (p *echoProto) EndOfData(t *threads.Thread, src wire.NodeID, m *mailbox.Msg) {
	ctx := exec.OnCAB(t)
	p.got = append(p.got, append([]byte(nil), m.Data()...))
	p.srcs = append(p.srcs, src)
	p.in.EndPut(ctx, m)
}

func TestSendReceive(t *testing.T) {
	r := newRig(t, false)
	p := newEchoProto(r.rtb)
	r.lb.Register(wire.TypeDatagram, p)
	r.a.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		if err := r.la.Send(ctx, wire.TypeDatagram, 2, []byte("part1-"), []byte("part2")); err != nil {
			r.k.Fatalf("send: %v", err)
		}
	})
	if err := r.k.RunFor(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(p.got) != 1 || string(p.got[0]) != "part1-part2" {
		t.Fatalf("got %q", p.got)
	}
	if p.srcs[0] != 1 {
		t.Errorf("src = %d", p.srcs[0])
	}
	if p.sodCalls != 1 {
		t.Errorf("start-of-data calls = %d", p.sodCalls)
	}
}

func TestUnknownTypeDropped(t *testing.T) {
	r := newRig(t, false)
	r.a.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		_ = r.la.Send(ctx, 0x77, 2, []byte("orphan"))
	})
	if err := r.k.RunFor(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, unknown, _, _, _ := r.lb.Stats()
	if unknown != 1 {
		t.Errorf("unknownType = %d, want 1", unknown)
	}
}

func TestStartOfDataVetoDropsFrame(t *testing.T) {
	r := newRig(t, false)
	p := newEchoProto(r.rtb)
	p.vetoNext = true
	r.lb.Register(wire.TypeDatagram, p)
	r.a.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		_ = r.la.Send(ctx, wire.TypeDatagram, 2, []byte("bad"))
		_ = r.la.Send(ctx, wire.TypeDatagram, 2, []byte("good"))
	})
	if err := r.k.RunFor(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(p.got) != 1 || string(p.got[0]) != "good" {
		t.Fatalf("got %q, want only the non-vetoed frame", p.got)
	}
	_, _, _, _, vetoed := r.lb.Stats()
	if vetoed != 1 {
		t.Errorf("vetoed = %d", vetoed)
	}
	// The vetoed frame's buffer must have been released.
	if used := r.b.Heap.Used(); used > 4096 {
		t.Errorf("heap used = %d; vetoed frame leaked", used)
	}
}

func TestCorruptedFrameDroppedByCRC(t *testing.T) {
	r := newRig(t, false)
	p := newEchoProto(r.rtb)
	r.lb.Register(wire.TypeDatagram, p)
	r.a.OutLink().CorruptNext(1)
	r.a.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		_ = r.la.Send(ctx, wire.TypeDatagram, 2, []byte("mangled"))
		_ = r.la.Send(ctx, wire.TypeDatagram, 2, []byte("clean"))
	})
	if err := r.k.RunFor(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(p.got) != 1 || string(p.got[0]) != "clean" {
		t.Fatalf("got %q", p.got)
	}
	_, _, _, crcDrops, _ := r.lb.Stats()
	if crcDrops != 1 {
		t.Errorf("crcDrops = %d", crcDrops)
	}
}

func TestNoBufferDrop(t *testing.T) {
	r := newRig(t, false)
	p := newEchoProto(r.rtb)
	p.in.SetCapacity(64) // tiny input pool
	r.lb.Register(wire.TypeDatagram, p)
	r.a.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		_ = r.la.Send(ctx, wire.TypeDatagram, 2, make([]byte, 200))
	})
	if err := r.k.RunFor(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(p.got) != 0 {
		t.Fatal("oversized frame delivered despite no buffer")
	}
	_, _, noBuf, _, _ := r.lb.Stats()
	if noBuf != 1 {
		t.Errorf("noBuffer = %d", noBuf)
	}
}

func TestRxThreadModeDelivers(t *testing.T) {
	// Ablation A1: the polling-thread input path must be functionally
	// identical.
	r := newRig(t, true)
	p := newEchoProto(r.rtb)
	r.lb.Register(wire.TypeDatagram, p)
	r.a.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := byte(0); i < 5; i++ {
			_ = r.la.Send(ctx, wire.TypeDatagram, 2, []byte{i})
			th.Sleep(50 * sim.Microsecond)
		}
	})
	if err := r.k.RunFor(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(p.got) != 5 {
		t.Fatalf("delivered %d of 5 in rx-thread mode", len(p.got))
	}
	for i, g := range p.got {
		if g[0] != byte(i) {
			t.Fatalf("order broken in rx-thread mode: %v", p.got)
		}
	}
	// No start-of-packet interrupts should have been taken for data
	// frames (only the queue handoff runs in kernel context).
	if got := r.b.Sched.Interrupts(); got != 0 {
		t.Errorf("interrupts = %d in rx-thread mode, want 0", got)
	}
}

func TestInterruptModeOrdering(t *testing.T) {
	// Back-to-back frames must be delivered in transmit order even when
	// interrupts queue up (regression test for the switch-window
	// interrupt reordering bug).
	r := newRig(t, false)
	p := newEchoProto(r.rtb)
	r.lb.Register(wire.TypeDatagram, p)
	const n = 50
	r.a.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for i := byte(0); i < n; i++ {
			_ = r.la.Send(ctx, wire.TypeDatagram, 2, []byte{i})
		}
	})
	if err := r.k.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(p.got) != n {
		t.Fatalf("delivered %d of %d", len(p.got), n)
	}
	for i, g := range p.got {
		if g[0] != byte(i) {
			t.Fatalf("frame %d out of order (got %d)", i, g[0])
		}
	}
}

func TestNoRouteError(t *testing.T) {
	r := newRig(t, false)
	errs := 0
	r.a.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		if err := r.la.Send(ctx, wire.TypeDatagram, 99, []byte("x")); err != nil {
			errs++
		}
	})
	if err := r.k.RunFor(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if errs != 1 {
		t.Error("send to unknown node did not error")
	}
}
