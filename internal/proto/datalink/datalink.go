// Package datalink implements the CAB's datalink layer (paper §4.1): it
// reads the datalink header of an arriving frame, allocates buffer space
// in the appropriate protocol input mailbox, initiates the DMA that places
// the payload there, and issues the start-of-data and end-of-data upcalls
// to the bound transport protocol — the start-of-data upcall running while
// the remainder of the packet is still being received, "so that useful
// work can be done" (e.g. IP's header sanity check).
//
// Reception normally happens at interrupt time, as in the paper's
// production configuration. The §3.1 ablation — moving protocol input
// processing into a high-priority system thread — is selected with
// cab.SetRxInterruptMode(false) before NewLayer; arriving frames are then
// queued to a dedicated rx thread and processed there, paying extra
// context switches but spending less time with interrupts disabled.
package datalink

import (
	"fmt"

	"nectar/internal/hw/cab"
	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Protocol is a transport bound to a datalink frame type.
type Protocol interface {
	// InputMailbox is the mailbox that receives this protocol's frames
	// (paper §4.1: "this mailbox constitutes the entire receive interface
	// between IP and higher protocols" — same structure one level down).
	InputMailbox() *mailbox.Mailbox
	// StartOfData is the upcall issued once the protocol header has
	// arrived, while the payload may still be streaming in. hdr aliases
	// the frame's payload prefix. Returning false drops the frame.
	StartOfData(t *threads.Thread, src wire.NodeID, hdr []byte) bool
	// EndOfData is the upcall issued when the complete, CRC-verified
	// payload sits in m (a message reserved in InputMailbox but not yet
	// delivered). The protocol delivers it (EndPut/Enqueue) or aborts.
	EndOfData(t *threads.Thread, src wire.NodeID, m *mailbox.Msg)
}

// Layer is the datalink software on one CAB.
type Layer struct {
	cab    *cab.CAB
	rt     *mailbox.Runtime
	cost   *model.CostModel
	protos map[uint8]Protocol

	// Polling-thread mode (ablation A1).
	rxQ    []*rxItem
	rxCond *threads.Cond
	rxMu   *threads.Mutex

	// Drop counters.
	unknownType uint64
	noBuffer    uint64
	crcDrops    uint64
	vetoed      uint64
	delivered   uint64

	// Precomputed per-node mark names: Markf's variadic args would
	// allocate on every frame even with tracing off.
	markTx, markRx string

	obs *obs.Observer
}

type rxItem struct {
	desc *cab.RxDesc             // start-of-packet work, or
	run  func(t *threads.Thread) // an end-of-data action
}

// NewLayer installs the datalink layer on a CAB. The mailbox runtime
// provides input-mailbox storage.
func NewLayer(c *cab.CAB, rt *mailbox.Runtime) *Layer {
	l := &Layer{cab: c, rt: rt, cost: c.Cost(), protos: make(map[uint8]Protocol)}
	l.markTx = fmt.Sprintf("dl.tx.%d", c.Node())
	l.markRx = fmt.Sprintf("dl.rx.%d", c.Node())
	if c.RxInterruptMode() {
		c.OnReceive(func(t *threads.Thread, d *cab.RxDesc) { l.receive(t, d) })
	} else {
		l.rxCond = threads.NewCond(c.Sched, "datalink.rx")
		l.rxMu = threads.NewMutex("datalink.rxmu")
		c.OnReceive(func(_ *threads.Thread, d *cab.RxDesc) {
			// Kernel context: queue for the rx thread.
			l.rxQ = append(l.rxQ, &rxItem{desc: d})
			l.rxCond.Signal()
		})
		c.Sched.Fork("datalink-rx", threads.SystemPriority, l.rxThread)
	}
	l.obs = obs.Ensure(c.Kernel())
	m := l.obs.Metrics()
	scope := fmt.Sprintf("cab%d", c.Node())
	m.Gauge(obs.LayerDatalink, "delivered", scope, func() uint64 { return l.delivered })
	m.Gauge(obs.LayerDatalink, "unknown_type", scope, func() uint64 { return l.unknownType })
	m.Gauge(obs.LayerDatalink, "no_buffer", scope, func() uint64 { return l.noBuffer })
	m.Gauge(obs.LayerDatalink, "crc_drops", scope, func() uint64 { return l.crcDrops })
	m.Gauge(obs.LayerDatalink, "vetoed", scope, func() uint64 { return l.vetoed })
	return l
}

// Register binds a protocol to a frame type.
func (l *Layer) Register(typ uint8, p Protocol) { l.protos[typ] = p }

// Send transmits a frame of the given type to dst, gathering the payload
// spans without copying (paper §4.1's IP_Output: header template from one
// buffer, data from another). Callable from CAB threads and interrupt
// handlers.
func (l *Layer) Send(ctx exec.Context, typ uint8, dst wire.NodeID, payload ...[]byte) error {
	// Transmit-preparation bracket: every transmit path goes through this
	// function and consumes the datalink+DMA compute below before the
	// frame can reach the fiber, which is what lets a shard gateway bound
	// the board's earliest future transmission (see CAB.BeginTxPrep).
	prep := l.cost.DatalinkProcess + l.cost.DMASetup
	l.cab.BeginTxPrep(l.cab.Kernel().Now() + sim.Time(prep))
	defer l.cab.EndTxPrep()
	ctx.Compute(prep)
	l.cab.Kernel().Mark(l.markTx)
	if l.obs.Tracing() {
		n := 0
		for _, p := range payload {
			n += len(p)
		}
		l.obs.InstantSeq(int(l.cab.Node()), obs.LayerDatalink, "tx", uint64(dst), n)
	}
	return l.cab.Transmit(dst, wire.DatalinkHeader{Type: typ}, false, payload...)
}

// rxThread is the polling-mode input thread (ablation A1).
func (l *Layer) rxThread(t *threads.Thread) {
	for {
		l.rxMu.Lock(t)
		for len(l.rxQ) == 0 {
			l.rxCond.Wait(t, l.rxMu)
		}
		item := l.rxQ[0]
		l.rxQ = l.rxQ[1:]
		l.rxMu.Unlock(t)
		if item.run != nil {
			item.run(t)
		} else {
			l.receive(t, item.desc)
		}
	}
}

// receive processes one arriving frame: header parse, buffer reservation,
// start-of-data upcall, DMA, end-of-data upcall.
//
//nectar:takes-ownership d released on every drop path, otherwise retired by the receive DMA
func (l *Layer) receive(t *threads.Thread, d *cab.RxDesc) {
	ctx := exec.OnCAB(t)
	l.cab.Kernel().Mark(l.markRx)
	span := l.obs.BeginSeq(int(l.cab.Node()), obs.LayerDatalink, "rx", 0, 0, len(d.Frame))
	ctx.Compute(l.cost.DatalinkProcess)

	var hdr wire.DatalinkHeader
	if err := hdr.Unmarshal(d.Frame); err != nil {
		l.crcDrops++ // mangled beyond parsing
		l.obs.End(span, int(l.cab.Node()), obs.LayerDatalink, "rx")
		d.Release()
		return
	}
	p, ok := l.protos[hdr.Type]
	if !ok {
		l.unknownType++
		l.obs.End(span, int(l.cab.Node()), obs.LayerDatalink, "rx")
		d.Release()
		return
	}
	payload := d.Payload()
	m := p.InputMailbox().BeginPutNB(ctx, len(payload))
	if m == nil {
		// No buffer: the frame is lost, as when the paper's input pool
		// overflows; reliable transports recover by retransmission.
		l.noBuffer++
		l.obs.End(span, int(l.cab.Node()), obs.LayerDatalink, "rx")
		d.Release()
		return
	}
	if !p.StartOfData(t, hdr.Src, payload) {
		l.vetoed++
		p.InputMailbox().AbortPut(ctx, m)
		l.obs.End(span, int(l.cab.Node()), obs.LayerDatalink, "rx")
		d.Release()
		return
	}
	ctx.Compute(l.cost.DMASetup)
	l.cab.StartRxDMA(d, m.Data(), func(ok bool) {
		// Kernel context at DMA completion: deliver the end-of-data
		// event the way this CAB is configured.
		deliver := func(t2 *threads.Thread) {
			ctx2 := exec.OnCAB(t2)
			if !ok {
				l.crcDrops++
				p.InputMailbox().AbortPut(ctx2, m)
				l.obs.End(span, int(l.cab.Node()), obs.LayerDatalink, "rx")
				return
			}
			l.delivered++
			m.Span = span // protocols parent their delivery spans on the rx span
			p.EndOfData(t2, hdr.Src, m)
			l.obs.End(span, int(l.cab.Node()), obs.LayerDatalink, "rx")
		}
		if l.cab.RxInterruptMode() {
			l.cab.Sched.RaiseInterrupt("end-of-data", deliver)
		} else {
			l.rxMu2Deliver(deliver)
		}
	})
}

// rxMu2Deliver runs an end-of-data action on the rx thread in polling
// mode. The action is queued as a closure item.
func (l *Layer) rxMu2Deliver(fn func(t *threads.Thread)) {
	l.rxQ = append(l.rxQ, &rxItem{run: fn})
	l.rxCond.Signal()
}

// Stats returns drop/delivery counters.
func (l *Layer) Stats() (delivered, unknownType, noBuffer, crcDrops, vetoed uint64) {
	return l.delivered, l.unknownType, l.noBuffer, l.crcDrops, l.vetoed
}
