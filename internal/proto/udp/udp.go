// Package udp implements UDP on the CAB. Per paper §4.1, UDP has its own
// server thread: the thread blocks on the UDP input mailbox, verifies the
// checksum, strips the headers in place, and enqueues the payload to the
// bound port's socket mailbox with no copying.
package udp

import (
	"fmt"

	"nectar/internal/obs"
	"nectar/internal/proto/ip"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
)

// Layer is the UDP instance on one CAB.
type Layer struct {
	ip      *ip.Layer
	inBox   *mailbox.Mailbox
	sendBox *mailbox.Mailbox // host send requests (like TCP's, §4.2)
	ports   map[uint16]*Socket

	delivered, badChecksum, noPort uint64

	obs  *obs.Observer
	node int
}

// udpSendMeta routes a host send request to its socket.
type udpSendMeta struct {
	sock    *Socket
	dstIP   uint32
	dstPort uint16
}

// Socket is a bound UDP port; arriving datagrams land in its mailbox.
type Socket struct {
	layer *Layer
	port  uint16
	Box   *mailbox.Mailbox
}

// NewLayer installs UDP on an IP layer and starts its server thread.
func NewLayer(l *ip.Layer, rt *mailbox.Runtime) *Layer {
	u := &Layer{
		ip:      l,
		inBox:   rt.Create("udp.in"),
		sendBox: rt.Create("udp.sendreq"),
		ports:   make(map[uint16]*Socket),
	}
	l.Register(wire.ProtoUDP, u)
	rt.CAB().Sched.Fork("udp-input", threads.SystemPriority, u.inputThread)
	rt.CAB().Sched.Fork("udp-send", threads.SystemPriority, u.sendThread)
	u.node = int(rt.CAB().Node())
	u.obs = obs.Ensure(rt.CAB().Kernel())
	m := u.obs.Metrics()
	scope := fmt.Sprintf("cab%d", u.node)
	m.Gauge(obs.LayerUDP, "delivered", scope, func() uint64 { return u.delivered })
	m.Gauge(obs.LayerUDP, "bad_checksum", scope, func() uint64 { return u.badChecksum })
	m.Gauge(obs.LayerUDP, "no_port", scope, func() uint64 { return u.noPort })
	return u
}

// sendThread transmits host-submitted datagrams on the CAB.
func (u *Layer) sendThread(t *threads.Thread) {
	ctx := exec.OnCAB(t)
	for {
		m := u.sendBox.BeginGet(ctx)
		if meta, ok := m.Meta.(*udpSendMeta); ok {
			_ = meta.sock.SendTo(ctx, meta.dstIP, meta.dstPort, m.Data())
		}
		u.sendBox.EndGet(ctx, m)
	}
}

// InputMailbox implements ip.Upper.
func (u *Layer) InputMailbox() *mailbox.Mailbox { return u.inBox }

// Bind claims a UDP port and returns its socket.
func (u *Layer) Bind(port uint16) (*Socket, error) {
	if _, taken := u.ports[port]; taken {
		return nil, fmt.Errorf("udp: port %d in use", port)
	}
	s := &Socket{
		layer: u,
		port:  port,
		Box:   u.ip.Runtime().Create(fmt.Sprintf("udp.port%d", port)),
	}
	u.ports[port] = s
	return s, nil
}

// SendTo transmits a datagram from this socket. The UDP checksum is
// computed in software over the real bytes (and charged at the CAB's
// software checksum rate).
func (s *Socket) SendTo(ctx exec.Context, dstIP uint32, dstPort uint16, data []byte) error {
	u := s.layer
	if ctx.IsHost() {
		// Host processes submit through the send-request mailbox; the
		// CAB's UDP send thread transmits (the data crosses the VME bus
		// exactly once, into the request buffer).
		m := u.sendBox.BeginPut(ctx, len(data))
		m.Write(ctx, 0, data)
		m.Meta = &udpSendMeta{sock: s, dstIP: dstIP, dstPort: dstPort}
		u.sendBox.EndPut(ctx, m)
		return nil
	}
	ctx.Compute(ctx.Cost().UDPProcess)
	dg := make([]byte, wire.UDPHeaderLen+len(data))
	h := wire.UDPHeader{SrcPort: s.port, DstPort: dstPort, Len: uint16(len(dg))}
	h.Marshal(dg)
	copy(dg[wire.UDPHeaderLen:], data)
	ctx.Compute(ctx.Cost().ChecksumTime(len(dg)))
	c := wire.ChecksumUDP(u.ip.Addr(), dstIP, dg)
	dg[6], dg[7] = byte(c>>8), byte(c)
	return u.ip.Output(ctx, wire.IPv4Header{Protocol: wire.ProtoUDP, Dst: dstIP}, dg)
}

// Recv blocks until a datagram arrives on this socket and returns its
// message (payload only; the source is in Msg.From-style metadata: the
// source IP's node in From.Node and the source port in Tag). Callers
// release it with Done.
func (s *Socket) Recv(ctx exec.Context) *mailbox.Msg {
	return s.Box.BeginGet(ctx)
}

// RecvPoll is Recv with the polling wait (host fast path).
func (s *Socket) RecvPoll(ctx exec.Context) *mailbox.Msg {
	return s.Box.BeginGetPoll(ctx)
}

// Done releases a received datagram's buffer.
func (s *Socket) Done(ctx exec.Context, m *mailbox.Msg) {
	s.Box.EndGet(ctx, m)
}

// inputThread is the paper's UDP server thread.
func (u *Layer) inputThread(t *threads.Thread) {
	ctx := exec.OnCAB(t)
	for {
		m := u.inBox.BeginGet(ctx)
		u.handle(ctx, m)
	}
}

func (u *Layer) handle(ctx exec.Context, m *mailbox.Msg) {
	ctx.Compute(ctx.Cost().UDPProcess)
	data := m.Data()
	var iph wire.IPv4Header
	if iph.Unmarshal(data) != nil || len(data) < wire.IPv4HeaderLen+wire.UDPHeaderLen {
		u.inBox.EndGet(ctx, m)
		return
	}
	dg := data[wire.IPv4HeaderLen:]
	var h wire.UDPHeader
	_ = h.Unmarshal(dg)
	if h.Checksum != 0 {
		ctx.Compute(ctx.Cost().ChecksumTime(len(dg)))
		want := wire.ChecksumUDP(iph.Src, iph.Dst, dg)
		if want != h.Checksum {
			u.badChecksum++
			u.inBox.EndGet(ctx, m)
			return
		}
	}
	s, ok := u.ports[h.DstPort]
	if !ok {
		u.noPort++
		u.inBox.EndGet(ctx, m)
		return
	}
	// Strip IP+UDP headers in place and hand the payload to the socket.
	m.TrimPrefix(ctx, wire.IPv4HeaderLen+wire.UDPHeaderLen)
	if node, ok := wire.IPNode(iph.Src); ok {
		m.From = wire.MailboxAddr{Node: node}
	}
	m.Tag = uint32(h.SrcPort)
	u.delivered++
	if u.obs.Tracing() {
		u.obs.InstantSeq(u.node, obs.LayerUDP, "deliver", uint64(h.DstPort), m.Len())
	}
	u.inBox.Enqueue(ctx, m, s.Box)
}

// Stats returns UDP counters.
func (u *Layer) Stats() (delivered, badChecksum, noPort uint64) {
	return u.delivered, u.badChecksum, u.noPort
}
