package udp

import (
	"testing"

	"nectar/internal/hw/cab"
	"nectar/internal/model"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/ip"
	"nectar/internal/rt/mailbox"
	"nectar/internal/sim"
)

func layer(t *testing.T) *Layer {
	t.Helper()
	k := sim.NewKernel()
	c := cab.New(k, model.Default1990(), 1)
	rt := mailbox.NewRuntime(c)
	dl := datalink.NewLayer(c, rt)
	return NewLayer(ip.NewLayer(dl, rt), rt)
}

func TestBindConflicts(t *testing.T) {
	u := layer(t)
	if _, err := u.Bind(53); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Bind(53); err == nil {
		t.Error("double bind succeeded")
	}
	if _, err := u.Bind(54); err != nil {
		t.Errorf("second port refused: %v", err)
	}
}

func TestSocketBoxesDistinct(t *testing.T) {
	u := layer(t)
	s1, _ := u.Bind(1)
	s2, _ := u.Bind(2)
	if s1.Box == s2.Box {
		t.Error("sockets share a mailbox")
	}
}
